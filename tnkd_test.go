package tnkd

// End-to-end tests of the public facade: every exported pipeline must
// be reachable and coherent through the tnkd package alone.

import (
	"bytes"
	"fmt"
	"testing"
)

func testDataset(t testing.TB) *Dataset {
	t.Helper()
	return GenerateDataset(ScaledConfig(0.025))
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	data := testDataset(t)
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != data.Len() {
		t.Fatalf("round trip: %d != %d", back.Len(), data.Len())
	}
}

func TestFacadeStructuralPipeline(t *testing.T) {
	data := testDataset(t)
	g := BuildGraph(data, GraphOptions{Attr: TransitHours, Vertices: UniformLabels})
	if g.NumEdges() != data.Len() {
		t.Fatalf("graph edges %d != transactions %d", g.NumEdges(), data.Len())
	}
	opts := DefaultStructuralOptions()
	opts.Partitions = 20
	opts.Support = 6
	opts.Repetitions = 1
	opts.MaxEdges = 3
	res, err := MineStructural(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no structural patterns through the facade")
	}
}

func TestFacadeSplitGraphCoversEdges(t *testing.T) {
	data := testDataset(t)
	g := BuildGraph(data, GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	parts := SplitGraph(g, SplitOptions{K: 10, Strategy: DepthFirst})
	total := 0
	for _, p := range parts {
		total += p.NumEdges()
	}
	if total != g.NumEdges() {
		t.Fatalf("partitions cover %d of %d edges", total, g.NumEdges())
	}
}

func TestFacadeTemporalPipeline(t *testing.T) {
	data := testDataset(t)
	opts := DefaultTemporalMineOptions()
	opts.Partition.MaxVertexLabels = 25
	opts.MaxEdges = 3
	res, err := MineTemporal(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partition.Transactions) == 0 {
		t.Fatal("no temporal transactions through the facade")
	}
}

func TestFacadeSubdue(t *testing.T) {
	data := testDataset(t)
	g := BuildGraph(data, GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	opts := DefaultSubdueOptions()
	opts.Limit = 8
	opts.MaxInstances = 80
	opts.MaxSteps = 20000
	res := Subdue(g, opts)
	if len(res.Best) == 0 {
		t.Fatal("SUBDUE found nothing through the facade")
	}
}

func TestFacadeDynamicExtensions(t *testing.T) {
	data := testDataset(t)
	g := BuildDynamicGraph(data, GrossWeight, nil)
	if len(g.Edges) != data.Len() {
		t.Fatalf("dynamic edges %d != transactions %d", len(g.Edges), data.Len())
	}
	paths := FindRepeatedPaths(g, TimePathQuery{MinLegs: 2, MaxLegs: 2, MaxGap: 2, Window: 10, Support: 4})
	if len(paths) == 0 {
		t.Error("no repeated paths (chains are planted, expected hits)")
	}
	periodic := DetectPeriodicity(g, 8, 0.7)
	if len(periodic) == 0 {
		t.Error("no periodic lanes (weekly lanes are planted)")
	}
	rules := MineLaneRules(g, LaneRuleQuery{MinSupport: 4, MinConfidence: 0.8, MaxSpreadDegrees: 10})
	if len(rules) == 0 {
		t.Error("no lane co-occurrence rules (hub spokes share schedules)")
	}
}

func TestFacadePatternRanking(t *testing.T) {
	data := testDataset(t)
	g := BuildGraph(data, GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	parts := SplitGraph(g, SplitOptions{K: 20, Strategy: BreadthFirst})
	res, err := MineFrequentSubgraphs(parts, FSGOptions{MinSupport: 5, MaxEdges: 2, MaxSteps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	scores := RankPatterns(res, parts)
	if len(scores) != len(res.Patterns) {
		t.Fatalf("scores %d != patterns %d", len(scores), len(res.Patterns))
	}
}

func TestFacadeConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.NumTransactions = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// ExampleSplitGraph demonstrates Algorithm 2: partitioning the single
// OD graph into edge-disjoint sub-graph transactions.
func ExampleSplitGraph() {
	data := GenerateDataset(ScaledConfig(0.025))
	g := BuildGraph(data, GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	parts := SplitGraph(g, SplitOptions{K: 8, Strategy: BreadthFirst})
	total := 0
	for _, p := range parts {
		total += p.NumEdges()
	}
	fmt.Println(total == g.NumEdges())
	// Output: true
}

// ExampleMineFrequentSubgraphs demonstrates direct FSG-style mining
// over explicit graph transactions.
func ExampleMineFrequentSubgraphs() {
	data := GenerateDataset(ScaledConfig(0.025))
	g := BuildGraph(data, GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	parts := SplitGraph(g, SplitOptions{K: 16, Strategy: BreadthFirst})
	res, err := MineFrequentSubgraphs(parts, FSGOptions{MinSupport: 8, MaxEdges: 2, MaxSteps: 50000})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Patterns) > 0)
	// Output: true
}

// ExampleDetectPeriodicity demonstrates the Section 9 periodicity
// extension: weekly dedicated lanes surface with period 7.
func ExampleDetectPeriodicity() {
	data := GenerateDataset(ScaledConfig(0.025))
	g := BuildDynamicGraph(data, GrossWeight, nil)
	weekly := 0
	for _, lane := range DetectPeriodicity(g, 10, 0.8) {
		if lane.Period == 7 {
			weekly++
		}
	}
	fmt.Println(weekly > 0)
	// Output: true
}
