package tnkd

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design
// choices called out in DESIGN.md. Each benchmark regenerates its
// artifact through internal/experiments and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem`
// reproduces the entire evaluation. Run cmd/experiments for the
// human-readable report.

import (
	"sync"
	"testing"

	"tnkd/internal/dataset"
	"tnkd/internal/experiments"
	"tnkd/internal/fsg"
	"tnkd/internal/partition"
	"tnkd/internal/pattern"
	"tnkd/internal/subdue"
)

var (
	benchOnce   sync.Once
	benchParams experiments.Params
)

// params generates the shared quick-scale dataset once.
func params(b *testing.B) experiments.Params {
	b.Helper()
	benchOnce.Do(func() { benchParams = experiments.NewParams(experiments.QuickScale) })
	return benchParams
}

// BenchmarkTable1DatasetSummary regenerates the Section 3 / Table 1
// data description.
func BenchmarkTable1DatasetSummary(b *testing.B) {
	p := params(b)
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable1(p)
	}
	b.ReportMetric(float64(res.Summary.DistinctODPairs), "od-pairs")
	b.ReportMetric(float64(res.Summary.OutDegMax), "max-out-degree")
}

// BenchmarkFigure1SubdueMDL regenerates Figure 1: SUBDUE with the MDL
// principle on the truncated OD_GW graph.
func BenchmarkFigure1SubdueMDL(b *testing.B) {
	p := params(b)
	var res *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure1(p)
	}
	if len(res.Best) > 0 {
		b.ReportMetric(float64(res.Best[0].Instances), "top-instances")
		b.ReportMetric(float64(res.Best[0].Graph.NumEdges()), "top-edges")
	}
}

// BenchmarkSection51SubdueSize regenerates the Size-principle
// contrast of Section 5.1.
func BenchmarkSection51SubdueSize(b *testing.B) {
	p := params(b)
	var res *experiments.Section51SizeResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection51Size(p)
	}
	b.ReportMetric(float64(res.MaxPatternSize), "size-max-vertices")
	b.ReportMetric(float64(res.MDLMaxSize), "mdl-max-vertices")
}

// BenchmarkSection51SubdueScaling regenerates the runtime-scaling
// narrative of Section 5.1 (superlinear growth with graph size).
func BenchmarkSection51SubdueScaling(b *testing.B) {
	p := params(b)
	var res *experiments.Section51ScalingResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection51Scaling(p, []int{25, 50, 75})
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(float64(last.Elapsed.Microseconds()), "largest-us")
}

// BenchmarkFigure2FSGBreadthFirst regenerates Figure 2: hub-and-spoke
// patterns under breadth-first partitioning of OD_TH.
func BenchmarkFigure2FSGBreadthFirst(b *testing.B) {
	p := params(b)
	var res *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure2(p)
	}
	b.ReportMetric(float64(res.NumPatterns), "patterns")
	if res.HubPattern != nil {
		b.ReportMetric(float64(res.HubPattern.Support), "hub-support")
	}
}

// BenchmarkFigure3FSGDepthFirst regenerates Figure 3: chain patterns
// under depth-first partitioning of OD_TD.
func BenchmarkFigure3FSGDepthFirst(b *testing.B) {
	p := params(b)
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure3(p)
	}
	b.ReportMetric(float64(res.ChainEdgesDF), "df-chain-edges")
	b.ReportMetric(float64(res.ChainEdgesBF), "bf-chain-edges")
}

// BenchmarkSection522PartitionSweep regenerates the partition-size
// sweep (average pattern counts per strategy).
func BenchmarkSection522PartitionSweep(b *testing.B) {
	p := params(b)
	var res *experiments.Section522SweepResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection522Sweep(p)
	}
	b.ReportMetric(res.AvgBF, "avg-bf-patterns")
	b.ReportMetric(res.AvgDF, "avg-df-patterns")
}

// BenchmarkFootnote2PartitionRecall regenerates the planted-pattern
// recall study (footnote 2: >= 50% recall).
func BenchmarkFootnote2PartitionRecall(b *testing.B) {
	p := params(b)
	var res *experiments.Footnote2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFootnote2(p)
	}
	b.ReportMetric(res.MinRecall*100, "min-recall-pct")
}

// BenchmarkTable2TemporalPartition regenerates Table 2.
func BenchmarkTable2TemporalPartition(b *testing.B) {
	p := params(b)
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable2(p)
	}
	b.ReportMetric(float64(res.Stats.NumTransactions), "transactions")
	b.ReportMetric(res.Stats.AvgEdges, "avg-edges")
}

// BenchmarkTable3FilteredTemporal regenerates Table 3.
func BenchmarkTable3FilteredTemporal(b *testing.B) {
	p := params(b)
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable3(p)
	}
	b.ReportMetric(float64(res.Stats.NumTransactions), "transactions")
	b.ReportMetric(res.Stats.AvgVertices, "avg-vertices")
}

// BenchmarkFigure4TemporalPatterns regenerates Figure 4 / Section
// 6.1: temporally frequent patterns at 5% support.
func BenchmarkFigure4TemporalPatterns(b *testing.B) {
	p := params(b)
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure4(p)
	}
	b.ReportMetric(float64(res.NumPatterns), "patterns")
	b.ReportMetric(float64(res.LargestEdges), "largest-edges")
}

// BenchmarkSection8FSGCandidateBlowup regenerates the Section 8
// candidate-explosion study.
func BenchmarkSection8FSGCandidateBlowup(b *testing.B) {
	p := params(b)
	var res *experiments.Section8Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection8(p, 5000)
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(float64(last.Candidates), "candidates-at-max-labels")
}

// BenchmarkSection71Apriori regenerates the association experiments.
func BenchmarkSection71Apriori(b *testing.B) {
	p := params(b)
	var res *experiments.Section71Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection71(p)
	}
	b.ReportMetric(res.GeoRule.Confidence, "geo-confidence")
}

// BenchmarkSection72DecisionTree regenerates the classification
// experiments (~96% accuracy, GROSS_WEIGHT root).
func BenchmarkSection72DecisionTree(b *testing.B) {
	p := params(b)
	var res *experiments.Section72Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection72(p)
	}
	b.ReportMetric(res.ModeAccuracy*100, "accuracy-pct")
}

// BenchmarkFigure5EMClusters regenerates the Figure 5 cluster table.
func BenchmarkFigure5EMClusters(b *testing.B) {
	p := params(b)
	var res *experiments.Figure56Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure56(p)
	}
	b.ReportMetric(float64(res.OutlierSize), "outlier-size")
}

// BenchmarkFigure6ClusterMeans regenerates the Figure 6 series
// (per-cluster mean distance/hours; short- vs long-haul split).
func BenchmarkFigure6ClusterMeans(b *testing.B) {
	p := params(b)
	var res *experiments.Figure56Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure56(p)
	}
	b.ReportMetric(float64(res.ShortHaul), "short-haul-clusters")
	b.ReportMetric(float64(res.LongHaul), "long-haul-clusters")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationBinningVsExact contrasts binned edge labels with
// exact labels: exact labels collapse the frequent-pattern count (the
// paper's motivation for binning).
func BenchmarkAblationBinningVsExact(b *testing.B) {
	p := params(b)
	run := func(exact bool) int {
		g := p.Data.BuildGraph(dataset.GraphOptions{
			Attr: dataset.GrossWeight, Vertices: dataset.UniformLabels, ExactLabels: exact,
		})
		parts := SplitGraph(g, SplitOptions{K: 24, Strategy: partition.BreadthFirst})
		res, err := fsg.Mine(parts, fsg.Options{MinSupport: 5, MaxEdges: 2, MaxSteps: 50000})
		if err != nil {
			b.Fatal(err)
		}
		return len(res.Patterns)
	}
	var binned, exact int
	for i := 0; i < b.N; i++ {
		binned = run(false)
		exact = run(true)
	}
	b.ReportMetric(float64(binned), "binned-patterns")
	b.ReportMetric(float64(exact), "exact-patterns")
}

// BenchmarkAblationOverlapCounting contrasts SUBDUE's non-overlapping
// instance counting with total (overlapping) embedding counts.
func BenchmarkAblationOverlapCounting(b *testing.B) {
	p := params(b)
	g := p.Data.BuildGraph(dataset.GraphOptions{Attr: dataset.GrossWeight, Vertices: dataset.UniformLabels})
	var res *subdue.Result
	for i := 0; i < b.N; i++ {
		res = subdue.Discover(g, subdue.Options{
			Principle: subdue.MDL, BeamWidth: 4, MaxBest: 3,
			Limit: 12, MaxInstances: 100, MaxSteps: 20000, MinInstances: 2,
		})
	}
	if len(res.Best) > 0 {
		b.ReportMetric(float64(res.Best[0].Instances), "nonoverlap-instances")
	}
}

// BenchmarkAblationVertexLabeling contrasts uniform vs unique vertex
// labels on the same mining task: unique labels fragment structural
// support (Section 5 vs Section 6 labeling).
func BenchmarkAblationVertexLabeling(b *testing.B) {
	p := params(b)
	run := func(v dataset.VertexLabeling) int {
		g := p.Data.BuildGraph(dataset.GraphOptions{Attr: dataset.GrossWeight, Vertices: v})
		parts := SplitGraph(g, SplitOptions{K: 24, Strategy: partition.BreadthFirst})
		res, err := fsg.Mine(parts, fsg.Options{MinSupport: 8, MaxEdges: 2, MaxSteps: 50000})
		if err != nil {
			b.Fatal(err)
		}
		return len(res.Patterns)
	}
	var uniform, unique int
	for i := 0; i < b.N; i++ {
		uniform = run(dataset.UniformLabels)
		unique = run(dataset.UniqueLabels)
	}
	b.ReportMetric(float64(uniform), "uniform-patterns")
	b.ReportMetric(float64(unique), "unique-patterns")
}

// BenchmarkAblationPartitionStrategy compares BF, DF and the effect
// of repetition count on pattern yield at fixed support.
func BenchmarkAblationPartitionStrategy(b *testing.B) {
	p := params(b)
	g := p.Data.BuildGraph(dataset.GraphOptions{Attr: dataset.TransitHours, Vertices: dataset.UniformLabels})
	run := func(strat partition.Strategy, reps int) int {
		res, err := MineStructural(g, StructuralOptions{
			Strategy: strat, Partitions: 24, Repetitions: reps,
			Support: 6, MaxEdges: 3, MaxSteps: 50000, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		return len(res.Patterns)
	}
	var bf1, bf3, df1 int
	for i := 0; i < b.N; i++ {
		bf1 = run(partition.BreadthFirst, 1)
		bf3 = run(partition.BreadthFirst, 3)
		df1 = run(partition.DepthFirst, 1)
	}
	b.ReportMetric(float64(bf1), "bf-1rep")
	b.ReportMetric(float64(bf3), "bf-3rep")
	b.ReportMetric(float64(df1), "df-1rep")
}

// --- Engine benches: serial vs parallel mining pipelines ---

var (
	pipeOnce sync.Once
	pipeData *dataset.Dataset
)

// pipelineData generates the ScaledConfig(0.05) dataset the engine
// benchmarks mine, once.
func pipelineData(b *testing.B) *dataset.Dataset {
	b.Helper()
	pipeOnce.Do(func() { pipeData = dataset.Generate(dataset.DefaultConfig().Scaled(0.05)) })
	return pipeData
}

// benchmarkStructuralPipeline runs Algorithm 1 (BF partitioning +
// FSG across partitions, 3 repetitions) at ScaledConfig(0.05) with
// the given engine worker count.
func benchmarkStructuralPipeline(b *testing.B, parallelism int) {
	data := pipelineData(b)
	g := data.BuildGraph(dataset.GraphOptions{
		Attr: dataset.TransitHours, Vertices: dataset.UniformLabels,
	})
	b.ResetTimer()
	var res *StructuralResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = MineStructural(g, StructuralOptions{
			Strategy:    partition.BreadthFirst,
			Partitions:  40,
			Repetitions: 3,
			Support:     12,
			MaxEdges:    5,
			MaxSteps:    200000,
			Seed:        17,
			Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
}

// BenchmarkStructuralPipelineSerial is the single-worker baseline.
func BenchmarkStructuralPipelineSerial(b *testing.B) { benchmarkStructuralPipeline(b, 1) }

// BenchmarkStructuralPipelineParallel uses all CPUs; compare ns/op
// against the serial baseline for the engine speedup.
func BenchmarkStructuralPipelineParallel(b *testing.B) { benchmarkStructuralPipeline(b, 0) }

// benchmarkTemporalPipeline runs the Section 6 pipeline (per-day
// partitioning + FSG over day batches) at ScaledConfig(0.05).
func benchmarkTemporalPipeline(b *testing.B, parallelism int) {
	data := pipelineData(b)
	b.ResetTimer()
	var res *TemporalMineResult
	for i := 0; i < b.N; i++ {
		opts := DefaultTemporalMineOptions()
		opts.Parallelism = parallelism
		var err error
		res, err = MineTemporal(data, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Mining.Patterns)), "patterns")
	b.ReportMetric(float64(len(res.Partition.Transactions)), "transactions")
}

// BenchmarkTemporalPipelineSerial is the single-worker baseline.
func BenchmarkTemporalPipelineSerial(b *testing.B) { benchmarkTemporalPipeline(b, 1) }

// BenchmarkTemporalPipelineParallel uses all CPUs.
func BenchmarkTemporalPipelineParallel(b *testing.B) { benchmarkTemporalPipeline(b, 0) }

// --- Delta-mining benches: fold appended days vs full re-mine ---

var (
	deltaOnce  sync.Once
	deltaPrior fsg.Prior
	deltaAdded []*Graph
	deltaOpts  fsg.Options
)

// deltaWorkload builds the reference temporal workload split at the
// last day boundary that adds transactions: the prefix is mined once
// (the persisted state a real deployment would already hold) and the
// suffix is what MineDelta folds in. Mining-only on purpose — the
// partition build is identical for both paths and would only dilute
// the comparison.
func deltaWorkload(b *testing.B) {
	b.Helper()
	deltaOnce.Do(func() {
		data := pipelineData(b)
		popts := DefaultTemporalMineOptions().Partition
		whole := partition.Temporal(data, popts)
		full := whole.Transactions
		var prefix []*Graph
		for back := 1; back < 30; back++ {
			p := popts
			p.MaxDays = whole.DaysTotal - back
			prefix = partition.Temporal(data, p).Transactions
			if len(prefix) > 0 && len(prefix) < len(full) {
				break
			}
		}
		if len(prefix) == 0 || len(prefix) == len(full) {
			b.Fatal("no day boundary splits the temporal workload")
		}
		prevOpts := fsg.Options{
			MinSupport: fsg.MinSupportFraction(len(prefix), 0.05),
			MaxEdges:   8, MaxSteps: 200000,
		}
		prev, err := fsg.Mine(prefix, prevOpts)
		if err != nil {
			b.Fatal(err)
		}
		levels := make(map[int][]fsg.Pattern)
		for i := range prev.Patterns {
			p := prev.Patterns[i]
			levels[p.Graph.NumEdges()] = append(levels[p.Graph.NumEdges()], p)
		}
		deltaPrior = fsg.Prior{Txns: prefix, Levels: levels, MinSupport: prevOpts.MinSupport}
		deltaAdded = full[len(prefix):]
		deltaOpts = fsg.Options{
			MinSupport: fsg.MinSupportFraction(len(full), 0.05),
			MaxEdges:   8, MaxSteps: 200000,
		}
	})
}

// BenchmarkTemporalDeltaFold folds the appended days into the
// persisted prior with MineDelta — compare ns/op against
// BenchmarkTemporalDeltaRemine for the incremental speedup (the
// acceptance target is fold < 30% of re-mine).
func BenchmarkTemporalDeltaFold(b *testing.B) {
	deltaWorkload(b)
	b.ResetTimer()
	var res *fsg.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fsg.MineDelta(deltaPrior, deltaAdded, deltaOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
	b.ReportMetric(float64(len(deltaAdded)), "added-txns")
}

// BenchmarkTemporalDeltaRemine mines the combined day set from
// scratch — the cost a deployment pays without delta mining.
func BenchmarkTemporalDeltaRemine(b *testing.B) {
	deltaWorkload(b)
	all := append(append([]*Graph(nil), deltaPrior.Txns...), deltaAdded...)
	b.ResetTimer()
	var res *fsg.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fsg.Mine(all, deltaOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
}

// --- Sliding-window benches: retire+fold one slide vs fresh window mine ---

var (
	windowOnce    sync.Once
	windowPrior   fsg.Prior
	windowAdded   []*Graph
	windowRetired pattern.TIDSet
	windowNext    []*Graph // the slid window's transactions (re-mine input)
	windowOpts    fsg.Options
)

// windowWorkload builds the reference sliding-window slide: a mined
// prior window over the temporal partition, slid forward by the
// smallest day count that both retires transactions off the front and
// folds new ones in at the back (the synthetic calendar has empty
// days, so a one-day slide can be a no-op). Mining-only on purpose,
// like deltaWorkload.
func windowWorkload(b *testing.B) {
	b.Helper()
	windowOnce.Do(func() {
		data := pipelineData(b)
		popts := DefaultTemporalMineOptions().Partition
		whole := partition.Temporal(data, popts)
		nDays := len(whole.DayStarts)
		// Back boundary: the last day split that actually adds
		// transactions (same rule as deltaWorkload). Front boundary:
		// the first day split that actually retires some.
		pHi := 0
		for back := 1; back < 30 && pHi == 0; back++ {
			if lo, hi := whole.WindowRange(1, nDays-back); hi > lo && hi < len(whole.Transactions) {
				pHi = hi
			}
		}
		nLo := 0
		for front := 1; front < 30 && nLo == 0; front++ {
			if lo, _ := whole.WindowRange(1+front, nDays); lo > 0 {
				nLo = lo
			}
		}
		if pHi == 0 || nLo == 0 || nLo >= pHi {
			b.Fatal("no slide of the temporal workload both retires and adds transactions")
		}
		priorTxns := whole.Transactions[:pHi]
		windowAdded = whole.Transactions[pHi:]
		windowNext = whole.Transactions[nLo:]
		for tid := 0; tid < nLo; tid++ {
			windowRetired.Add(tid)
		}
		prevOpts := fsg.Options{
			MinSupport: fsg.MinSupportFraction(len(priorTxns), 0.05),
			MaxEdges:   8, MaxSteps: 200000,
		}
		prev, err := fsg.Mine(priorTxns, prevOpts)
		if err != nil {
			b.Fatal(err)
		}
		levels := make(map[int][]fsg.Pattern)
		for i := range prev.Patterns {
			p := prev.Patterns[i]
			levels[p.Graph.NumEdges()] = append(levels[p.Graph.NumEdges()], p)
		}
		windowPrior = fsg.Prior{Txns: priorTxns, Levels: levels, MinSupport: prevOpts.MinSupport}
		windowOpts = fsg.Options{
			MinSupport: fsg.MinSupportFraction(len(windowNext), 0.05),
			MaxEdges:   8, MaxSteps: 200000,
		}
	})
}

// BenchmarkWindowAdvance slides the mined window one step with
// AdvanceWindow (retire the fallen-off days, fold the arrived ones) —
// compare ns/op against BenchmarkWindowRemine for the incremental
// speedup (the acceptance target is slide < 30% of re-mine).
func BenchmarkWindowAdvance(b *testing.B) {
	windowWorkload(b)
	b.ResetTimer()
	var res *fsg.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fsg.AdvanceWindow(windowPrior, windowAdded, windowRetired, windowOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
	b.ReportMetric(float64(windowRetired.Len()), "retired-txns")
	b.ReportMetric(float64(len(windowAdded)), "added-txns")
}

// BenchmarkWindowRetire isolates the retirement half of a slide —
// the word-parallel TID-column subtraction, survivor renumbering and
// embedding pruning, without the fold. Its share of the advance cost
// is the most a tombstoned store layout (marking TIDs dead in place
// instead of compacting) could ever save; see DESIGN.md's
// tombstone-vs-compact discussion.
func BenchmarkWindowRetire(b *testing.B) {
	windowWorkload(b)
	ropts := windowOpts
	ropts.MinSupport = windowPrior.MinSupport
	b.ResetTimer()
	var res *fsg.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fsg.RetireDelta(windowPrior, windowRetired, ropts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
}

// BenchmarkWindowRemine mines the slid window's transactions from
// scratch — the cost a deployment pays without retirement.
func BenchmarkWindowRemine(b *testing.B) {
	windowWorkload(b)
	b.ResetTimer()
	var res *fsg.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fsg.Mine(windowNext, windowOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Patterns)), "patterns")
}

// BenchmarkSection9DynamicExtensions regenerates the future-work
// extension report: repeated connection paths, weekly cadences and
// spatially filtered lane rules.
func BenchmarkSection9DynamicExtensions(b *testing.B) {
	p := params(b)
	var res *experiments.Section9Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunSection9(p)
	}
	b.ReportMetric(float64(res.RepeatedPaths), "repeated-paths")
	b.ReportMetric(float64(res.WeeklyLanes), "weekly-lanes")
	b.ReportMetric(float64(res.FilteredRules), "filtered-rules")
}
