// Command tndingest is the crash-safe continuous-ingest daemon: it
// watches <dir>/spool for JSON transaction batches (and accepts them
// over POST /v1/ingest), folds each arrival into the current store
// generation with the exact delta miner, publishes generation N+1 via
// write-to-temp + fsync + atomic rename under a journaled intent
// record, triggers tndserve's hot remount, and garbage-collects
// generations older than -keep.
//
// Usage:
//
//	tndingest -dir data [-seed base.tnd] [-addr :8322]
//	          [-remount http://localhost:8321/v1/admin/remount]
//	          [-support-fraction 0.05 | -min-support N]
//	          [-window N] [-keep 3] [-max-attempts 5] [-poll 500ms]
//
// The daemon is restart-idempotent at every step: kill -9 it at any
// point and the restart resumes from the journal — generation N keeps
// serving, no batch is lost or folded twice, and the fold chain stays
// byte-identical to an uninterrupted run (see the ingest-crash-matrix
// CI job).
//
// -window N turns the daemon from append-only into a true sliding
// window over the last N ingest units (batches; an adopted seed store
// counts as one unit): each fold retires the units that fall off the
// front — subtracting their TIDs from every pattern column and
// renumbering the survivors — before folding the new batch in, so
// every published generation is byte-identical to a fresh mine of
// exactly the window's transactions. Retirement publishes go through
// the same journal protocol as append folds, so the crash guarantees
// above hold unchanged; `/v1/ingest/status` reports the served
// window's bounds, unit count and last retired-transaction count.
//
// Batch-stream generator mode (for replaying the Section 6 temporal
// data as an arrival stream):
//
//	tndingest -make-batches out/ -scale 0.04 -from-day 151 -days 157
//
// writes one batch file per non-empty day in [from-day, days] — the
// same per-day transaction slices a one-shot `tndtemporal -days N`
// run mines, so spooling them into a daemon seeded with the
// -days (from-day - 1) store converges to the identical pattern set.
//
// Endpoints: POST /v1/ingest (spool a batch, 202), GET
// /v1/ingest/status (health JSON), GET /metrics (Prometheus text),
// GET /healthz. SIGINT/SIGTERM shut the daemon down cleanly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tnkd/internal/experiments"
	"tnkd/internal/ingest"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndingest: ")
	dir := flag.String("dir", "", "data directory (spool/, store/, applied/, poison/, ingest.journal)")
	seed := flag.String("seed", "", "store file adopted as the initial generation when store/ is empty")
	addr := flag.String("addr", ":8322", "listen address")
	remountURL := flag.String("remount", "", "tndserve remount endpoint to POST each published generation to (e.g. http://localhost:8321/v1/admin/remount)")
	supportFraction := flag.Float64("support-fraction", 0, "recompute absolute support per fold as this fraction of the combined transaction count (0 = use -min-support or inherit the store's)")
	minSupport := flag.Int("min-support", 0, "fixed absolute support threshold (0 = inherit from the current store)")
	window := flag.Int("window", 0, "slide a window of the most recent N ingest units (batches; a seed store is one unit): older units retire on every fold, each generation byte-identical to a fresh mine of the window (0 = append-only)")
	keep := flag.Int("keep", 3, "generations retained by GC (current plus keep-1 predecessors)")
	checkpointEvery := flag.Int("checkpoint-every", 512, "journal records between checkpoints (compaction to the retained window's publish set)")
	maxAttempts := flag.Int("max-attempts", 5, "fold attempts before a failing batch is quarantined to poison/")
	poll := flag.Duration("poll", 500*time.Millisecond, "spool scan interval")
	parallelism := flag.Int("parallelism", 0, "fold worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited)")
	accessLog := flag.Bool("access-log", true, "log one JSON line per event on stderr")

	makeBatches := flag.String("make-batches", "", "write per-day batch files to this directory instead of running the daemon")
	scale := flag.Float64("scale", 0.05, "(make-batches) synthetic dataset scale")
	fromDay := flag.Int("from-day", 1, "(make-batches) first day to emit, 1-based")
	days := flag.Int("days", 0, "(make-batches) last day to emit (0 = all days)")
	flag.Parse()

	if *makeBatches != "" {
		if err := writeBatchFiles(*makeBatches, *scale, *fromDay, *days); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *dir == "" {
		log.Fatal("-dir is required")
	}
	if *seed != "" {
		// Pre-flight the seed at flag time: a mistyped path must fail
		// in milliseconds, not after the first batch arrives.
		r, err := store.Open(*seed)
		if err != nil {
			log.Fatal(err)
		}
		r.Close() //nolint:errcheck
	}

	logger := obs.Discard()
	if *accessLog {
		logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	opts := ingest.Options{
		Dir:             *dir,
		Seed:            *seed,
		SupportFraction: *supportFraction,
		MinSupport:      *minSupport,
		Window:          *window,
		KeepGenerations: *keep,
		CheckpointEvery: *checkpointEvery,
		MaxAttempts:     *maxAttempts,
		PollInterval:    *poll,
		Parallelism:     *parallelism,
		MaxEmbeddings:   *maxEmbeddings,
		Logger:          logger,
	}
	if *remountURL != "" {
		opts.Remount = httpRemount(*remountURL)
	}
	d, err := ingest.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	log.Printf("generation %d mounted from %s", d.Generation(), d.CurrentPath())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: d.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("http: %v", err)
			stop()
		}
	}()

	if err := d.Run(ctx); err != nil {
		log.Fatal(err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx) //nolint:errcheck
	log.Print("shut down cleanly")
}

// httpRemount returns a Remount callback that POSTs the published
// path to tndserve's admin endpoint. A 409 means the server already
// serves an equal-or-newer generation (e.g. its own -watch spool got
// there first) — reported as ErrRemountStale, which the daemon treats
// as success.
func httpRemount(url string) func(path string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	return func(path string) error {
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		body, err := json.Marshal(map[string]string{"path": abs})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusConflict:
			return fmt.Errorf("%w: %s", ingest.ErrRemountStale, bytes.TrimSpace(msg))
		default:
			return fmt.Errorf("remount %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}
}

// writeBatchFiles slices the Figure 4 temporal partition into per-day
// batch files b-NNNNNN.json (numbered by day), skipping days the
// partition filtered empty.
func writeBatchFiles(outDir string, scale float64, fromDay, lastDay int) error {
	if fromDay < 1 {
		return fmt.Errorf("-from-day must be >= 1, got %d", fromDay)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	p := experiments.NewParams(scale)
	p.Days = lastDay
	part := experiments.Figure4Partition(p)
	nDays := len(part.DayStarts)
	if fromDay > nDays {
		return fmt.Errorf("-from-day %d is beyond the partition's %d days", fromDay, nDays)
	}
	written := 0
	for day := fromDay; day <= nDays; day++ {
		start := part.DayStarts[day-1]
		end := len(part.Transactions)
		if day < nDays {
			end = part.DayStarts[day]
		}
		if start == end {
			continue // day fully filtered away
		}
		name := fmt.Sprintf("b-%06d.json", day)
		data, err := ingest.EncodeBatch(name, part.Transactions[start:end])
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, name), data, 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s: %d transactions (day %d)", name, end-start, day)
		written++
	}
	log.Printf("%d batch files in %s (days %d..%d)", written, outDir, fromDay, nDays)
	return nil
}
