// Command tndgen generates the calibrated synthetic OD dataset and
// writes it as CSV (Table 1 schema). At -scale 1 it reproduces every
// published statistic of the paper's six-month dataset.
//
// Usage:
//
//	tndgen [-scale 1.0] [-seed N] [-out file.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tnkd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndgen: ")
	scale := flag.Float64("scale", 1.0, "dataset scale in (0, 1]")
	seed := flag.Int64("seed", 0, "generator seed (0 = default)")
	out := flag.String("out", "", "output path (default stdout)")
	arff := flag.Bool("arff", false, "write Weka ARFF instead of CSV")
	flag.Parse()

	cfg := tnkd.DefaultConfig()
	if *scale < 1 {
		cfg = tnkd.ScaledConfig(*scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	data := tnkd.GenerateDataset(cfg)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if *arff {
		if err := data.WriteARFF(w, ""); err != nil {
			log.Fatal(err)
		}
	} else if err := data.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, data.Summarize())
}
