// Command tndfsg runs the Section 5.2 structural experiments:
// Algorithm 1 (partition the single OD graph breadth- or depth-first,
// mine frequent subgraphs across partitions) plus the partition-size
// sweep and the planted-pattern recall study.
//
// Usage:
//
//	tndfsg [-scale 0.05] [-strategy bf|df] [-sweep] [-recall] [-parallelism N] [-maxembeddings N] [-store out.tnd]
//
// -store persists the headline structural mine (patterns, TID lists,
// embeddings and the partitioned transactions) to an internal/store
// file that cmd/tndserve can answer queries from.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tnkd/internal/experiments"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndfsg: ")
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale")
	strategy := flag.String("strategy", "bf", "partitioning strategy: bf or df")
	sweep := flag.Bool("sweep", false, "run the partition-size sweep (Section 5.2.2)")
	recall := flag.Bool("recall", false, "run the planted-pattern recall study (footnote 2)")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	storePath := flag.String("store", "", "persist the mined patterns + embeddings to this store file (serve with tndserve)")
	flag.Parse()
	if *storePath != "" {
		if err := store.CheckWritable(*storePath); err != nil {
			log.Fatal(err)
		}
	}

	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	p.StorePath = *storePath
	switch strings.ToLower(*strategy) {
	case "bf":
		fmt.Print(experiments.RunFigure2(p))
	case "df":
		fmt.Print(experiments.RunFigure3(p))
	default:
		log.Fatalf("unknown strategy %q (want bf or df)", *strategy)
	}
	if *sweep {
		fmt.Print(experiments.RunSection522Sweep(p))
	}
	if *recall {
		fmt.Print(experiments.RunFootnote2(p))
	}
}
