// Command tndfsg runs the Section 5.2 structural experiments:
// Algorithm 1 (partition the single OD graph breadth- or depth-first,
// mine frequent subgraphs across partitions) plus the partition-size
// sweep and the planted-pattern recall study.
//
// Usage:
//
//	tndfsg [-scale 0.05] [-strategy bf|df] [-sweep] [-recall] [-parallelism N] [-maxembeddings N] [-store out.tnd] [-delta-from prev.tnd]
//
// -store persists the headline structural mine (patterns, TID lists,
// embeddings and the partitioned transactions) to an internal/store
// file that cmd/tndserve can answer queries from.
//
// -delta-from appends one more Algorithm 1 repetition to a
// previously persisted structural store (same scale and strategy)
// instead of re-mining the existing repetitions; the union — and the
// store written by -store — is identical to a full run at the
// combined repetition count.
//
// -progress streams one line to stderr per mined level as each
// repetition's mine completes it (candidates, frequent, embeddings,
// elapsed), so a long run is never silent; stdout stays
// byte-identical with or without the flag.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"tnkd/internal/experiments"
	"tnkd/internal/fsg"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// progressLine renders one completed mining level for -progress,
// writing to stderr so the stdout tables CI diffs are untouched.
func progressLine(stage string, ev fsg.LevelProgress) {
	line := fmt.Sprintf("%s: level %d: candidates=%d frequent=%d embeddings=%d patterns=%d elapsed=%s",
		stage, ev.Edges, ev.Candidates, ev.Frequent, ev.Embeddings, ev.Patterns,
		ev.Elapsed.Round(time.Millisecond))
	if ev.Delta {
		line += fmt.Sprintf(" reused=%d promoted=%d", ev.Reused, ev.Promoted)
	}
	log.Print(line)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndfsg: ")
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale")
	strategy := flag.String("strategy", "bf", "partitioning strategy: bf or df")
	sweep := flag.Bool("sweep", false, "run the partition-size sweep (Section 5.2.2)")
	recall := flag.Bool("recall", false, "run the planted-pattern recall study (footnote 2)")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	storePath := flag.String("store", "", "persist the mined patterns + embeddings to this store file (serve with tndserve)")
	deltaFrom := flag.String("delta-from", "", "append one more Algorithm 1 repetition to this previously mined structural store instead of re-mining it (union identical to a full run at the combined repetition count)")
	progress := flag.Bool("progress", false, "stream one line per mined level to stderr while mining (stdout stays byte-identical)")
	flag.Parse()
	// Both store paths pre-flight at flag time, so a mistyped path
	// fails in milliseconds instead of after partitioning and mining.
	if *storePath != "" {
		if err := store.CheckWritable(*storePath); err != nil {
			log.Fatal(err)
		}
	}
	if *deltaFrom != "" {
		if err := checkDeltaSource(*deltaFrom); err != nil {
			log.Fatal(err)
		}
	}

	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	p.StorePath = *storePath
	p.DeltaFrom = *deltaFrom
	if *progress {
		p.Progress = progressLine
		p.Logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	switch strings.ToLower(*strategy) {
	case "bf":
		fmt.Print(experiments.RunFigure2(p))
	case "df":
		fmt.Print(experiments.RunFigure3(p))
	default:
		log.Fatalf("unknown strategy %q (want bf or df)", *strategy)
	}
	if *sweep {
		fmt.Print(experiments.RunSection522Sweep(p))
	}
	if *recall {
		fmt.Print(experiments.RunFootnote2(p))
	}
}

// checkDeltaSource validates a -delta-from store at flag time: it
// must open as a store (header + footer only — milliseconds) and
// pass the shared delta-source checks for an Algorithm 1 store. The
// deeper parameter match (partitions, seed, strategy, support) is
// verified against the store's metadata before mining starts.
func checkDeltaSource(path string) error {
	r, err := store.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	return r.ValidateDeltaSource(true)
}
