// Command tndserve is the pattern query daemon: an HTTP/JSON server
// over one or more persisted pattern/embedding stores (written by
// tndfsg/tndtemporal/experiments with -store). It answers pattern
// lookup by code (singly or in batches), support and TID queries,
// per-level listings, and per-location occurrence queries — all
// decoded from the stored embedding lists, never by re-mining or
// re-matching.
//
// Usage:
//
//	tndserve -store out.tnd [-store more.tnd ...] [-addr :8321]
//	         [-parallelism N] [-cache-bytes N]
//	         [-watch spool/ [-watch-interval 1s]]
//	         [-access-log=false] [-pprof-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/stores
//	GET  /v1/levels
//	GET  /v1/levels/{edges}
//	GET  /v1/patterns/{code}
//	POST /v1/patterns:batch            {"codes": ["...", ...]}
//	GET  /v1/patterns/{code}/support
//	GET  /v1/patterns/{code}/occurrences[?limit=N]
//	GET  /v1/locations/{label}/patterns
//	POST /v1/admin/remount             {"store": "name", "path": "new.tnd"}
//
// A running daemon can hot-swap a mounted store for a newer
// generation of the same lineage (a delta-mined descendant) without
// a restart and without dropping requests: POST /v1/admin/remount,
// or point -watch at a spool directory and drop new store files in —
// each is validated for provenance (generation must advance, lineage
// must match) and mounted when its file stops changing.
//
// Every request is counted and timed into the built-in metrics
// registry, exposed in Prometheus text form at GET /metrics, and
// logged as one JSON line on stderr (disable with -access-log=false).
// -pprof-addr starts net/http/pprof on a second, private listener —
// profiling stays off the serving port and off by default.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tnkd/internal/obs"
	"tnkd/internal/serve"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndserve: ")
	var paths []string
	flag.Func("store", "store file to serve (repeatable)", func(v string) error {
		paths = append(paths, v)
		return nil
	})
	addr := flag.String("addr", ":8321", "listen address")
	parallelism := flag.Int("parallelism", 0, "worker count for store scans (0 = all CPUs)")
	cacheBytes := flag.Int("cache-bytes", 0, "per-mount pattern-body cache budget (0 = 8 MiB, negative disables)")
	watch := flag.String("watch", "", "spool directory to poll for newer-generation stores to hot-swap in")
	watchInterval := flag.Duration("watch-interval", time.Second, "spool poll interval")
	accessLog := flag.Bool("access-log", true, "log one JSON line per request on stderr")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060; empty disables)")
	flag.Parse()
	if len(paths) == 0 {
		log.Fatal("at least one -store file is required")
	}

	var mounts []serve.Mount
	used := make(map[string]int)
	for _, p := range paths {
		r, err := store.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		used[strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))]++
		mounts = append(mounts, serve.Mount{Name: name, Reader: r})
		codes := "exact codes"
		if !r.Exact() {
			codes = "legacy v1 codes (approximate matches possible)"
		}
		locIdx := "lazy location index"
		if _, _, ok := r.LocationIndex(); ok {
			locIdx = "persisted location index"
		}
		log.Printf("mounted %s: format v%d (%s, %s), %d transactions, %d patterns across %d levels",
			p, r.Version(), codes, locIdx, r.NumTransactions(), r.NumPatterns(), len(r.Levels()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := obs.Discard()
	if *accessLog {
		logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	srv := serve.New(mounts, serve.Options{
		Parallelism:       *parallelism,
		PatternCacheBytes: *cacheBytes,
		Logger:            logger,
	})
	if *pprofAddr != "" {
		// pprof rides DefaultServeMux (the blank import registered it)
		// on its own listener, so profiling endpoints never share the
		// public serving port.
		log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	if *watch != "" {
		log.Printf("watching %s for newer-generation stores (every %s)", *watch, *watchInterval)
		go srv.WatchSpool(ctx, *watch, *watchInterval, log.Printf)
	}
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	// The server owns the readers now: remounts already closed any
	// replaced ones, Close drains and closes the rest.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}
