// Command tndserve is the pattern query daemon: an HTTP/JSON server
// over one or more persisted pattern/embedding stores (written by
// tndfsg/tndtemporal/experiments with -store). It answers pattern
// lookup by code, support and TID queries, per-level listings, and
// per-location occurrence queries — all decoded from the stored
// embedding lists, never by re-mining or re-matching.
//
// Usage:
//
//	tndserve -store out.tnd [-store more.tnd ...] [-addr :8321] [-parallelism N]
//
// Endpoints:
//
//	GET /healthz
//	GET /v1/stores
//	GET /v1/levels
//	GET /v1/levels/{edges}
//	GET /v1/patterns/{code}
//	GET /v1/patterns/{code}/support
//	GET /v1/patterns/{code}/occurrences[?limit=N]
//	GET /v1/locations/{label}/patterns
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"tnkd/internal/serve"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndserve: ")
	var paths []string
	flag.Func("store", "store file to serve (repeatable)", func(v string) error {
		paths = append(paths, v)
		return nil
	})
	addr := flag.String("addr", ":8321", "listen address")
	parallelism := flag.Int("parallelism", 0, "worker count for store scans (0 = all CPUs)")
	flag.Parse()
	if len(paths) == 0 {
		log.Fatal("at least one -store file is required")
	}

	var mounts []serve.Mount
	used := make(map[string]int)
	for _, p := range paths {
		r, err := store.Open(p)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		used[strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))]++
		mounts = append(mounts, serve.Mount{Name: name, Reader: r})
		codes := "exact codes"
		if !r.Exact() {
			codes = "legacy v1 codes (approximate matches possible)"
		}
		log.Printf("mounted %s: format v%d (%s), %d transactions, %d patterns across %d levels",
			p, r.Version(), codes, r.NumTransactions(), r.NumPatterns(), len(r.Levels()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := serve.New(mounts, serve.Options{Parallelism: *parallelism})
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}
