// Command tndstats prints the Section 3 / Table 1 data description
// for a dataset: transaction counts, distinct locations and OD pairs,
// attribute ranges, and OD-graph degree statistics.
//
// Usage:
//
//	tndstats [-in file.csv | -scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tnkd"
	"tnkd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndstats: ")
	in := flag.String("in", "", "input CSV (default: generate synthetic data)")
	scale := flag.Float64("scale", 1.0, "synthetic dataset scale when no -in")
	flag.Parse()

	var data *tnkd.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		data, err = tnkd.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := tnkd.DefaultConfig()
		if *scale < 1 {
			cfg = tnkd.ScaledConfig(*scale)
		}
		data = tnkd.GenerateDataset(cfg)
	}
	res := experiments.RunTable1(experiments.Params{Data: data, Scale: *scale})
	fmt.Print(res)
}
