// Command tndstats prints the Section 3 / Table 1 data description
// for a dataset — transaction counts, distinct locations and OD
// pairs, attribute ranges, and OD-graph degree statistics — or, with
// -store, the statistics of a persisted pattern/embedding store
// (per-level pattern counts, support distribution, embedding volume
// and completeness) without re-mining anything.
//
// Usage:
//
//	tndstats [-in file.csv | -scale 0.1]
//	tndstats -store out.tnd [-recover] [-patterns | -json]
//
// -store reports provenance alongside the level tables: the delta
// chain (generation, parent path), the sliding-window bounds when the
// store was produced by a windowed run (`window: units=START..END
// retired=N`, plus the per-unit sizes an ingest daemon records), the
// Algorithm 1 partitioning parameters for structural stores, and the
// TID-column encoding split (list vs bitset columns, array vs bitmap
// containers, on-disk bytes).
//
// -recover salvages a store whose writing run died mid-level by
// reading the last intact checkpoint footer.
//
// -patterns dumps every pattern record as one deterministic line
// (level, canonical code, support, TID list) with no timestamps or
// provenance, so two stores hold the same mining result exactly when
// their dumps are byte-identical — `diff` of two dumps is the
// delta-mining equivalence check CI runs.
//
// -json emits the same store statistics as a single JSON object so CI
// can assert on fields with jq instead of grepping the human table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"tnkd"
	"tnkd/internal/experiments"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndstats: ")
	in := flag.String("in", "", "input CSV (default: generate synthetic data)")
	scale := flag.Float64("scale", 1.0, "synthetic dataset scale when no -in")
	storePath := flag.String("store", "", "report pattern/support/embedding statistics from this persisted store instead of a dataset")
	recover := flag.Bool("recover", false, "with -store: salvage a store whose writing run died mid-level (reads the last intact checkpoint footer)")
	patterns := flag.Bool("patterns", false, "with -store: dump every pattern record (level, code, support, TID list) as deterministic diff-able lines instead of aggregate statistics")
	jsonOut := flag.Bool("json", false, "with -store: emit the statistics as one JSON object (machine-readable twin of the table)")
	flag.Parse()
	if *jsonOut && *storePath == "" {
		log.Fatal("-json requires -store (dataset descriptions have no JSON form)")
	}
	if *jsonOut && *patterns {
		log.Fatal("-json and -patterns are mutually exclusive (the pattern dump is already machine-diffable)")
	}

	if *storePath != "" {
		open := store.Open
		if *recover {
			open = store.Recover
		}
		r, err := open(*storePath)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		if *patterns {
			dump, err := store.DumpPatterns(r)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(dump)
			return
		}
		st := store.ReadStats(r)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(st); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(st)
		return
	}

	var data *tnkd.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		data, err = tnkd.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := tnkd.DefaultConfig()
		if *scale < 1 {
			cfg = tnkd.ScaledConfig(*scale)
		}
		data = tnkd.GenerateDataset(cfg)
	}
	res := experiments.RunTable1(experiments.Params{Data: data, Scale: *scale})
	fmt.Print(res)
}
