// Command tndtemporal runs the Section 6 temporal experiments:
// per-day partitioning statistics (Tables 2 and 3) and frequent
// repeated-route mining (Figure 4), plus the Section 8 candidate
// blow-up study.
//
// Usage:
//
//	tndtemporal [-scale 0.05] [-mine] [-blowup] [-parallelism N] [-maxembeddings N] [-store out.tnd]
//
// -store persists the Figure 4 mine (patterns, TID lists, embeddings
// and the per-day transactions) to an internal/store file that
// cmd/tndserve can answer queries from.
package main

import (
	"flag"
	"fmt"
	"log"

	"tnkd/internal/experiments"
	"tnkd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndtemporal: ")
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale")
	mine := flag.Bool("mine", true, "run frequent-pattern mining (Figure 4)")
	blowup := flag.Bool("blowup", false, "run the Section 8 candidate blow-up study")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	storePath := flag.String("store", "", "persist the Figure 4 mine (patterns + embeddings + per-day transactions) to this store file (serve with tndserve)")
	flag.Parse()
	if *storePath != "" {
		if err := store.CheckWritable(*storePath); err != nil {
			log.Fatal(err)
		}
	}

	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	p.StorePath = *storePath
	fmt.Print(experiments.RunTable2(p))
	fmt.Println()
	fmt.Print(experiments.RunTable3(p))
	if *mine {
		fmt.Println()
		fmt.Print(experiments.RunFigure4(p))
	}
	if *blowup {
		fmt.Println()
		fmt.Print(experiments.RunSection8(p, 0))
	}
}
