// Command tndtemporal runs the Section 6 temporal experiments:
// per-day partitioning statistics (Tables 2 and 3) and frequent
// repeated-route mining (Figure 4), plus the Section 8 candidate
// blow-up study.
//
// Usage:
//
//	tndtemporal [-scale 0.05] [-mine] [-blowup] [-parallelism N] [-maxembeddings N] [-days N] [-window N] [-store out.tnd] [-delta-from prev.tnd]
//
// -store persists the Figure 4 mine (patterns, TID lists, embeddings
// and the per-day transactions) to an internal/store file that
// cmd/tndserve can answer queries from.
//
// -delta-from folds the days appended since prev.tnd was written into
// it instead of re-mining every day (incremental delta mining); the
// output — and the store written by -store — is identical to a full
// re-mine of the combined days. -days limits the run to the earliest
// N calendar days, which is how a delta sequence is simulated from a
// fixed dataset: mine -days K -store a.tnd, then -days K+1
// -delta-from a.tnd -store b.tnd.
//
// -window N mines only the most recent N calendar days (a sliding
// window; support is computed over the window's transactions).
// Combined with -delta-from, the run *slides* the stored window
// instead of re-mining it: days that fell off the front are retired
// (their TIDs subtracted from every pattern column) and the newly
// arrived days are folded in, producing a store byte-identical to a
// fresh -window mine of the same days — `tndstats -patterns` diffs
// empty. The window only moves forward: widening it, or dropping
// -window against a windowed store, requires a fresh mine.
//
// -progress streams one line to stderr per mined level as the level
// completes (candidates, frequent, embeddings, reuse/promotion
// tallies, elapsed), so a long mine is never silent; stdout stays
// byte-identical with or without the flag. Delta runs additionally
// log their fold provenance (generation, appended TIDs, reuse vs
// recount) as JSON lines on stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"tnkd/internal/experiments"
	"tnkd/internal/fsg"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// progressLine renders one completed mining level for -progress. It
// writes through the stderr logger, so stdout (the experiment tables
// CI diffs) is untouched.
func progressLine(stage string, ev fsg.LevelProgress) {
	line := fmt.Sprintf("%s: level %d: candidates=%d frequent=%d embeddings=%d patterns=%d elapsed=%s",
		stage, ev.Edges, ev.Candidates, ev.Frequent, ev.Embeddings, ev.Patterns,
		ev.Elapsed.Round(time.Millisecond))
	if ev.Delta {
		line += fmt.Sprintf(" reused=%d promoted=%d", ev.Reused, ev.Promoted)
	}
	log.Print(line)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndtemporal: ")
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale")
	mine := flag.Bool("mine", true, "run frequent-pattern mining (Figure 4)")
	blowup := flag.Bool("blowup", false, "run the Section 8 candidate blow-up study")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	days := flag.Int("days", 0, "limit the run to the earliest N calendar days (0 = all); a -days K run's transactions are an exact prefix of the -days K+1 run's")
	window := flag.Int("window", 0, "mine only the most recent N calendar days (0 = all); with -delta-from, slides the stored window forward (retire + fold), byte-identical to a fresh -window mine")
	storePath := flag.String("store", "", "persist the Figure 4 mine (patterns + embeddings + per-day transactions) to this store file (serve with tndserve)")
	deltaFrom := flag.String("delta-from", "", "fold the newly arrived days into this previously mined store instead of re-mining from scratch (output identical to a full re-mine)")
	progress := flag.Bool("progress", false, "stream one line per mined level to stderr while mining (stdout stays byte-identical)")
	flag.Parse()
	// Both store paths pre-flight at flag time, so a mistyped path
	// fails in milliseconds instead of after the dataset is built and
	// partitioned.
	if *storePath != "" {
		if err := store.CheckWritable(*storePath); err != nil {
			log.Fatal(err)
		}
	}
	if *deltaFrom != "" {
		if err := checkDeltaSource(*deltaFrom); err != nil {
			log.Fatal(err)
		}
	}

	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	p.Days = *days
	p.Window = *window
	p.StorePath = *storePath
	p.DeltaFrom = *deltaFrom
	if *progress {
		p.Progress = progressLine
		p.Logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	fmt.Print(experiments.RunTable2(p))
	fmt.Println()
	fmt.Print(experiments.RunTable3(p))
	if *mine {
		fmt.Println()
		fmt.Print(experiments.RunFigure4(p))
	}
	if *blowup {
		fmt.Println()
		fmt.Print(experiments.RunSection8(p, 0))
	}
}

// checkDeltaSource validates a -delta-from store at flag time: it
// must open as a store (header + footer only — milliseconds) and
// pass the shared delta-source checks for a transaction-set store.
// Everything else (prefix match against the freshly partitioned
// days) is verified before mining starts.
func checkDeltaSource(path string) error {
	r, err := store.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	return r.ValidateDeltaSource(false)
}
