// Command tndclassic runs the Section 7 conventional-mining
// experiments: Apriori association rules (7.1), C4.5-style
// classification (7.2) and EM clustering (7.3 / Figures 5 and 6).
//
// Usage:
//
//	tndclassic [-scale 0.05] [-assoc] [-classify] [-cluster]
//
// With no selection flags, all three run.
package main

import (
	"flag"
	"fmt"

	"tnkd/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale")
	assoc := flag.Bool("assoc", false, "association rules only")
	classify := flag.Bool("classify", false, "classification only")
	cluster := flag.Bool("cluster", false, "clustering only")
	flag.Parse()

	all := !*assoc && !*classify && !*cluster
	p := experiments.NewParams(*scale)
	if all || *assoc {
		fmt.Print(experiments.RunSection71(p))
	}
	if all || *classify {
		fmt.Print(experiments.RunSection72(p))
	}
	if all || *cluster {
		fmt.Print(experiments.RunFigure56(p))
	}
}
