// Command tndsubdue runs the Section 5.1 SUBDUE experiments: beam
// search substructure discovery on a truncated, uniformly labeled OD
// graph, under the MDL or Size principle.
//
// Usage:
//
//	tndsubdue [-scale 0.1] [-principle mdl|size] [-scaling] [-parallelism N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tnkd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndsubdue: ")
	scale := flag.Float64("scale", 0.1, "synthetic dataset scale")
	principle := flag.String("principle", "mdl", "evaluation principle: mdl or size")
	scaling := flag.Bool("scaling", false, "also run the runtime-scaling series")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	flag.Parse()

	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	switch strings.ToLower(*principle) {
	case "mdl":
		fmt.Print(experiments.RunFigure1(p))
	case "size":
		fmt.Print(experiments.RunSection51Size(p))
	default:
		log.Fatalf("unknown principle %q (want mdl or size)", *principle)
	}
	if *scaling {
		fmt.Print(experiments.RunSection51Scaling(p, nil))
	}
}
