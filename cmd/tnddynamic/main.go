// Command tnddynamic runs the Section 9 future-work extensions
// implemented by this repository: dynamic-graph connection-path
// mining, route periodicity detection, and spatially filtered lane
// co-occurrence rules.
//
// Usage:
//
//	tnddynamic [-scale 0.025] [-paths] [-periodic] [-rules]
//
// With no selection flags, all three run.
package main

import (
	"flag"
	"fmt"

	"tnkd"
	"tnkd/internal/dynamic"
)

func main() {
	scale := flag.Float64("scale", 0.025, "synthetic dataset scale")
	paths := flag.Bool("paths", false, "repeated connection paths only")
	periodic := flag.Bool("periodic", false, "periodicity detection only")
	rules := flag.Bool("rules", false, "lane co-occurrence rules only")
	flag.Parse()
	all := !*paths && !*periodic && !*rules

	data := tnkd.GenerateDataset(tnkd.ScaledConfig(*scale))
	g := dynamic.FromDataset(data, tnkd.GrossWeight, nil)
	fmt.Printf("dynamic graph: %d timed edges over %d days\n\n", len(g.Edges), g.Days)

	if all || *paths {
		found := dynamic.FindRepeatedPaths(g, dynamic.TimePathQuery{
			MinLegs: 2, MaxLegs: 3, MaxGap: 2, Window: 14, Support: 4,
		})
		fmt.Printf("repeated connection paths (>= 4 time-disjoint runs): %d\n", len(found))
		for i, p := range found {
			if i == 8 {
				fmt.Println("  ...")
				break
			}
			fmt.Println(" ", p)
		}
		fmt.Println()
	}
	if all || *periodic {
		periodicLanes := dynamic.DetectPeriodicity(g, 6, 0.6)
		fmt.Printf("periodic lanes (>= 6 runs, >= 60%% regular cadence): %d\n", len(periodicLanes))
		for i, p := range periodicLanes {
			if i == 8 {
				fmt.Println("  ...")
				break
			}
			fmt.Println(" ", p)
		}
		fmt.Println()
	}
	if all || *rules {
		laneRules := dynamic.LaneRules(g, dynamic.LaneRuleQuery{
			MinSupport: 6, MinConfidence: 0.8, MaxSpreadDegrees: 8,
		})
		fmt.Printf("spatially filtered lane co-occurrence rules: %d\n", len(laneRules))
		for i, r := range laneRules {
			if i == 8 {
				fmt.Println("  ...")
				break
			}
			fmt.Println(" ", r)
		}
	}
}
