// Command experiments regenerates every table and figure of the
// paper's evaluation in one run and prints a consolidated report (the
// source of EXPERIMENTS.md's measured column).
//
// Usage:
//
//	experiments [-scale 0.05] [-parallelism N] [-maxembeddings N]
//
// Scale 1 reproduces the full-size experiments; expect graph-mining
// sections to take correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"time"

	"tnkd/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale in (0, 1]")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	flag.Parse()

	start := time.Now()
	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	fmt.Printf("# Knowledge Discovery from Transportation Network Data — reproduction report\n")
	fmt.Printf("# scale=%.3f transactions=%d\n\n", *scale, p.Data.Len())

	sections := []struct {
		name string
		run  func() fmt.Stringer
	}{
		{"Table 1", func() fmt.Stringer { return experiments.RunTable1(p) }},
		{"Figure 1", func() fmt.Stringer { return experiments.RunFigure1(p) }},
		{"Section 5.1 (Size)", func() fmt.Stringer { return experiments.RunSection51Size(p) }},
		{"Section 5.1 (scaling)", func() fmt.Stringer { return experiments.RunSection51Scaling(p, nil) }},
		{"Figure 2", func() fmt.Stringer { return experiments.RunFigure2(p) }},
		{"Figure 3", func() fmt.Stringer { return experiments.RunFigure3(p) }},
		{"Section 5.2.2 sweep", func() fmt.Stringer { return experiments.RunSection522Sweep(p) }},
		{"Footnote 2 recall", func() fmt.Stringer { return experiments.RunFootnote2(p) }},
		{"Table 2", func() fmt.Stringer { return experiments.RunTable2(p) }},
		{"Table 3", func() fmt.Stringer { return experiments.RunTable3(p) }},
		{"Figure 4", func() fmt.Stringer { return experiments.RunFigure4(p) }},
		{"Section 8 blow-up", func() fmt.Stringer { return experiments.RunSection8(p, 0) }},
		{"Section 7.1", func() fmt.Stringer { return experiments.RunSection71(p) }},
		{"Section 7.2", func() fmt.Stringer { return experiments.RunSection72(p) }},
		{"Figures 5 & 6", func() fmt.Stringer { return experiments.RunFigure56(p) }},
		{"Section 9 extensions", func() fmt.Stringer { return experiments.RunSection9(p) }},
	}
	for _, s := range sections {
		t0 := time.Now()
		out := s.run()
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", s.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("# total: %v\n", time.Since(start).Round(time.Millisecond))
}
