// Command experiments regenerates every table and figure of the
// paper's evaluation in one run and prints a consolidated report (the
// source of EXPERIMENTS.md's measured column).
//
// Usage:
//
//	experiments [-scale 0.05] [-parallelism N] [-maxembeddings N] [-store prefix]
//
// -store persists the three headline mining runs to store files
// <prefix>_figure2.tnd, <prefix>_figure3.tnd and <prefix>_figure4.tnd
// for cmd/tndserve.
//
// Scale 1 reproduces the full-size experiments; expect graph-mining
// sections to take correspondingly longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tnkd/internal/experiments"
	"tnkd/internal/store"
)

func main() {
	scale := flag.Float64("scale", 0.05, "synthetic dataset scale in (0, 1]")
	parallelism := flag.Int("parallelism", 0, "mining worker count (0 = all CPUs, 1 = serial)")
	maxEmbeddings := flag.Int("maxembeddings", 0, "per-level FSG embedding budget (0 = default, -1 = unlimited); over budget the incremental support counter falls back to full isomorphism")
	storePrefix := flag.String("store", "", "persist the figure 2/3/4 mines to <prefix>_figure{2,3,4}.tnd store files (serve with tndserve)")
	flag.Parse()

	start := time.Now()
	p := experiments.NewParams(*scale)
	p.Parallelism = *parallelism
	p.MaxEmbeddings = *maxEmbeddings
	// withStore copies the shared params with the per-figure store
	// path (empty prefix = no persistence anywhere).
	withStore := func(figure string) experiments.Params {
		q := p
		if *storePrefix != "" {
			q.StorePath = fmt.Sprintf("%s_%s.tnd", *storePrefix, figure)
		}
		return q
	}
	if *storePrefix != "" {
		// Fail a mistyped prefix now, not an hour into the suite.
		for _, figure := range []string{"figure2", "figure3", "figure4"} {
			if err := store.CheckWritable(withStore(figure).StorePath); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("# Knowledge Discovery from Transportation Network Data — reproduction report\n")
	fmt.Printf("# scale=%.3f transactions=%d\n\n", *scale, p.Data.Len())

	sections := []struct {
		name string
		run  func() fmt.Stringer
	}{
		{"Table 1", func() fmt.Stringer { return experiments.RunTable1(p) }},
		{"Figure 1", func() fmt.Stringer { return experiments.RunFigure1(p) }},
		{"Section 5.1 (Size)", func() fmt.Stringer { return experiments.RunSection51Size(p) }},
		{"Section 5.1 (scaling)", func() fmt.Stringer { return experiments.RunSection51Scaling(p, nil) }},
		{"Figure 2", func() fmt.Stringer { return experiments.RunFigure2(withStore("figure2")) }},
		{"Figure 3", func() fmt.Stringer { return experiments.RunFigure3(withStore("figure3")) }},
		{"Section 5.2.2 sweep", func() fmt.Stringer { return experiments.RunSection522Sweep(p) }},
		{"Footnote 2 recall", func() fmt.Stringer { return experiments.RunFootnote2(p) }},
		{"Table 2", func() fmt.Stringer { return experiments.RunTable2(p) }},
		{"Table 3", func() fmt.Stringer { return experiments.RunTable3(p) }},
		{"Figure 4", func() fmt.Stringer { return experiments.RunFigure4(withStore("figure4")) }},
		{"Section 8 blow-up", func() fmt.Stringer { return experiments.RunSection8(p, 0) }},
		{"Section 7.1", func() fmt.Stringer { return experiments.RunSection71(p) }},
		{"Section 7.2", func() fmt.Stringer { return experiments.RunSection72(p) }},
		{"Figures 5 & 6", func() fmt.Stringer { return experiments.RunFigure56(p) }},
		{"Section 9 extensions", func() fmt.Stringer { return experiments.RunSection9(p) }},
	}
	for _, s := range sections {
		t0 := time.Now()
		out := s.run()
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", s.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("# total: %v\n", time.Since(start).Round(time.Millisecond))
}
