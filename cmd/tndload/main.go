// Command tndload is the load generator for tndserve: it discovers
// the served pattern codes, hammers the daemon with a mixed workload
// (point lookups, batches, support, locations, store listings) from
// concurrent workers for a fixed duration, and prints per-class
// latency percentiles and throughput as JSON on stdout.
//
// Usage:
//
//	tndload -base-url http://127.0.0.1:8321 [-duration 10s]
//	        [-workers 4] [-batch 32] [-max-codes N] [-label L ...]
//
// The CI serve-load job runs it against a daemon that is hot-swapped
// to a newer store generation mid-run and gates on the output:
// failures must stay zero and batch resolution must beat point
// queries on codes per second.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"tnkd/internal/serve/loadtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tndload: ")
	baseURL := flag.String("base-url", "http://127.0.0.1:8321", "server to drive")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	workers := flag.Int("workers", 4, "concurrent client workers")
	batch := flag.Int("batch", 32, "codes per batch request")
	maxCodes := flag.Int("max-codes", 0, "cap the discovered code set (0 = all)")
	var labels []string
	flag.Func("label", "location label to query (repeatable; discovered when omitted)", func(v string) error {
		labels = append(labels, v)
		return nil
	})
	flag.Parse()

	ctx := context.Background()
	codes, discovered, err := loadtest.Discover(ctx, nil, *baseURL)
	if err != nil {
		log.Fatal(err)
	}
	if *maxCodes > 0 && len(codes) > *maxCodes {
		codes = codes[:*maxCodes]
	}
	if len(labels) == 0 {
		labels = discovered
	}
	log.Printf("driving %s: %d codes, %d labels, %d workers for %s",
		*baseURL, len(codes), len(labels), *workers, *duration)

	res, err := loadtest.Run(ctx, loadtest.Options{
		BaseURL:   *baseURL,
		Workers:   *workers,
		Duration:  *duration,
		BatchSize: *batch,
		Codes:     codes,
		Labels:    labels,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
	if res.Failures > 0 {
		log.Fatalf("%d of %d requests failed", res.Failures, res.Requests)
	}
	// Two-sided proof: the server's own /metrics counters must agree
	// with the client tallies above. Absence of /metrics (an older
	// daemon) skips the check; disagreement fails the run.
	switch {
	case res.Server == nil:
		log.Print("server exposes no /metrics; client/server cross-check skipped")
	case !res.Server.Match:
		log.Fatalf("client/server cross-check failed: %s", res.Server.Detail)
	default:
		log.Printf("server cross-check: %d requests confirmed server-side, 0 failed", res.Server.RequestsDelta)
	}
}
