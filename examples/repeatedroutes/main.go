// Repeated routes: the Section 6 pipeline. Partition the OD data by
// day (an OD pair is active between its pickup and delivery dates),
// label vertices with their locations, and mine patterns that repeat
// across days — recurring lanes and hub fan-outs a carrier can
// schedule dedicated capacity for.
package main

import (
	"fmt"
	"log"

	"tnkd"
)

func main() {
	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.025))

	opts := tnkd.DefaultTemporalMineOptions()
	opts.Partition.MaxVertexLabels = 40 // scale the paper's <200-label filter
	opts.MaxEdges = 4
	res, err := tnkd.MineTemporal(data, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("temporally partitioned transactions (Table 2/3 style):")
	fmt.Print(res.Stats)

	fmt.Printf("\nfrequent repeated routes at support %d (%d patterns):\n\n",
		res.Support, len(res.Mining.Patterns))
	shown := 0
	for _, p := range res.Mining.Patterns {
		if p.Graph.NumEdges() < 2 {
			continue // single recurring lanes are common; show shapes
		}
		fmt.Printf("pattern repeated on %d days:\n%s\n", p.Support, p.Graph.Dump())
		shown++
		if shown == 5 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("(only single-lane repeats at this scale; raise -scale for richer shapes)")
		for i, p := range res.Mining.Patterns {
			if i == 3 {
				break
			}
			fmt.Printf("lane repeated on %d days:\n%s\n", p.Support, p.Graph.Dump())
		}
	}
}
