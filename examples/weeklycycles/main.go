// Weekly cycles: the Section 9 "challenge problem" the paper leaves
// open, implemented here — find routes that repeat over a time window
// even though "the entire path is not connected at any given time
// instant": a truck runs leg 1 on Monday, leg 2 on Tuesday, and the
// whole tour repeats week after week. Then check which lanes have a
// detectable weekly cadence.
package main

import (
	"fmt"

	"tnkd"
	"tnkd/internal/dynamic"
)

func main() {
	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.025))
	g := dynamic.FromDataset(data, tnkd.GrossWeight, nil)
	fmt.Printf("dynamic graph: %d timed edges over %d days\n\n", len(g.Edges), g.Days)

	// Multi-leg tours: consecutive legs at most two days apart, whole
	// tour inside a week, repeated at least four separate times.
	tours := dynamic.FindRepeatedPaths(g, dynamic.TimePathQuery{
		MinLegs: 2,
		MaxLegs: 3,
		MaxGap:  2,
		Window:  7,
		Support: 4,
	})
	fmt.Printf("repeated multi-leg tours: %d\n", len(tours))
	for i, tour := range tours {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		first := tour.Occurrences[0]
		fmt.Printf("  %s — %d runs, first on day %d\n",
			tour, len(tour.Occurrences), first.Starts[0])
	}

	// Dedicated-lane candidates: pickups with a near-weekly cadence.
	fmt.Println("\nweekly dedicated-lane candidates:")
	lanes := dynamic.DetectPeriodicity(g, 8, 0.7)
	shown := 0
	for _, lane := range lanes {
		if lane.Period < 6 || lane.Period > 15 {
			continue // only near-weekly cadences
		}
		fmt.Printf("  %s\n", lane)
		shown++
		if shown == 6 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none at this scale; raise -scale)")
	}
}
