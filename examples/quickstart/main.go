// Quickstart: generate a small synthetic OD dataset, build the
// transit-hours OD graph, partition it breadth-first and mine the
// frequent structural patterns (the Section 5 pipeline end to end).
package main

import (
	"fmt"
	"log"

	"tnkd"
)

func main() {
	// 1. Data: a 2.5%-scale synthetic six-month OD dataset.
	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.025))
	fmt.Println("dataset:", data.Summarize())

	// 2. Graph: one vertex per location, one edge per shipment, edge
	// labels = binned transit hours, all vertices labeled alike so
	// only structure matters.
	g := tnkd.BuildGraph(data, tnkd.GraphOptions{
		Attr:     tnkd.TransitHours,
		Vertices: tnkd.UniformLabels,
	})
	fmt.Println("graph:", g)

	// 3. Mine: Algorithm 1 — partition the single graph into
	// transactions, run frequent-subgraph discovery, repeat with
	// fresh partitionings and union the results.
	opts := tnkd.DefaultStructuralOptions()
	opts.Partitions = 20
	opts.Support = 6
	opts.Repetitions = 2
	opts.MaxEdges = 4
	res, err := tnkd.MineStructural(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frequent structural patterns: %d\n", len(res.Patterns))
	for i, p := range res.Patterns {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("pattern %d: %d edges, support %d (found in %d/%d runs)\n",
			i+1, p.Graph.NumEdges(), p.Support, p.Runs, opts.Repetitions)
	}
	if best := res.MaxPattern(); best != nil {
		fmt.Println("largest pattern:")
		fmt.Print(best.Graph.Dump())
	}
}
