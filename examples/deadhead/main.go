// Deadhead analysis: run SUBDUE on the gross-weight OD graph to
// surface asymmetric flow patterns — lanes with significant traffic
// one way and little or none coming back, which force carriers to
// move empty trucks ("deadheading"). This is the Figure 1 scenario:
// the paper's transportation experts read such patterns as pricing
// opportunities outside classic route optimization.
package main

import (
	"fmt"

	"tnkd"
	"tnkd/internal/graph"
	"tnkd/internal/subdue"
)

func main() {
	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.025))
	g := tnkd.BuildGraph(data, tnkd.GraphOptions{
		Attr:     tnkd.GrossWeight,
		Vertices: tnkd.UniformLabels,
	})
	fmt.Println("graph:", g)

	// Discover substructures with the MDL principle, as in the
	// paper's Figure 1 run (beam 4, best 3). The expansion limit is
	// bounded: SUBDUE's unbounded default is exactly the multi-hour
	// run the paper reports on 100-vertex graphs.
	opts := tnkd.DefaultSubdueOptions()
	opts.Limit = 20
	opts.MaxInstances = 150
	opts.MaxSteps = 50000
	res := tnkd.Subdue(g, opts)

	fmt.Printf("substructures expanded: %d\n\n", res.Considered)
	for i, s := range res.Best {
		fmt.Printf("--- best %d ---\n%s", i+1, subdue.Render(s))
		if chainLen := chainLength(s.Graph); chainLen >= 2 {
			fmt.Printf("  ^ a %d-hop one-way chain: candidate deadhead corridor —\n", chainLen)
			fmt.Println("    heavy flow down the chain with no return edge; consider")
			fmt.Println("    discounted backhaul pricing on the reverse lanes.")
		}
		fmt.Println()
	}
}

// chainLength returns k when g is a directed path with k edges, else 0.
func chainLength(g *graph.Graph) int {
	starts, ends, mids := 0, 0, 0
	for _, v := range g.Vertices() {
		in, out := g.InDegree(v), g.OutDegree(v)
		switch {
		case in == 0 && out == 1:
			starts++
		case in == 1 && out == 0:
			ends++
		case in == 1 && out == 1:
			mids++
		default:
			return 0
		}
	}
	if starts == 1 && ends == 1 && g.NumEdges() == g.NumVertices()-1 {
		return g.NumEdges()
	}
	return 0
}
