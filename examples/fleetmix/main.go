// Fleet mix analysis: the Section 7 conventional-mining pipeline.
// Flatten the OD transactions into tables and answer three
// operational questions with classic miners:
//
//  1. What drives the TL / LTL mode split? (decision tree)
//  2. Which lane geographies dominate? (association rules)
//  3. What service tiers exist? (EM clustering: short-haul,
//     long-haul, and the air-freight outliers)
package main

import (
	"fmt"
	"log"

	"tnkd"
	"tnkd/internal/core"
	"tnkd/internal/mining/apriori"
	"tnkd/internal/mining/dtree"
	"tnkd/internal/mining/emcluster"
)

func main() {
	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.025))
	fmt.Println("dataset:", data.Summarize())

	// 1. Mode classification (Section 7.2).
	attrs, raw := core.Discretize(data, core.DefaultDiscretizeConfig())
	rows := make([]dtree.Instance, len(raw))
	for i, r := range raw {
		rows[i] = dtree.Instance(r)
	}
	tree, err := dtree.Train(attrs, rows, "TRANS_MODE", dtree.Options{MinLeaf: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTRANS_MODE tree: root=%s depth=%d leaves=%d training accuracy=%.1f%%\n",
		tree.RootAttr(), tree.Depth(), tree.NumLeaves(), tree.Accuracy(rows)*100)

	// 2. Geography rules (Section 7.1, Experiment 2).
	items := make([]apriori.Itemset, len(raw))
	for i, r := range raw {
		items[i] = apriori.Itemset{
			{Attr: "ORIGIN_LATITUDE", Value: r[0]},
			{Attr: "ORIGIN_LONGITUDE", Value: r[1]},
		}
	}
	rules, err := apriori.Mine(items, apriori.Options{MinSupport: 0.1, MinConfidence: 0.75, MaxLen: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop origin-geography rules:")
	for i, r := range rules.Rules {
		if i == 3 {
			break
		}
		fmt.Println(" ", r)
	}

	// 3. Service tiers (Section 7.3 / Figures 5-6).
	numAttrs, matrix := core.NumericMatrix(data)
	opts := emcluster.DefaultOptions()
	model, asg, err := emcluster.Fit(numAttrs, matrix, opts)
	if err != nil {
		log.Fatal(err)
	}
	dist, _ := model.ClusterMeans("TOTAL_DISTANCE")
	hours, _ := model.ClusterMeans("MOVE_TRANSIT_HOURS")
	fmt.Printf("\nEM clusters (k=%d):\n", model.K)
	for k := 0; k < model.K; k++ {
		if asg.Sizes[k] == 0 {
			continue
		}
		tier := "short-haul"
		switch {
		case dist[k] > 3000 && hours[k] < 24:
			tier = "AIR FREIGHT OUTLIER"
		case dist[k] >= 600:
			tier = "long-haul"
		}
		fmt.Printf("  cluster %d: n=%-5d mean distance %6.0f mi, transit %5.1f h  -> %s\n",
			k, asg.Sizes[k], dist[k], hours[k], tier)
	}
}
