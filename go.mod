module tnkd

go 1.24
