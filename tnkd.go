// Package tnkd (Transportation Network Knowledge Discovery) is the
// public API of a from-scratch Go reproduction of
//
//	Jiang, Vaidya, Balaporia, Clifton, Banich.
//	"Knowledge Discovery from Transportation Network Data", ICDE 2005.
//
// The paper studies mining a six-month origin–destination freight
// dataset modeled as one large labeled directed multigraph. This
// package exposes the full pipeline:
//
//   - Dataset: the Table 1 transaction schema, a CSV codec and a
//     calibrated synthetic generator standing in for the proprietary
//     data (see DESIGN.md for the substitution argument).
//   - Graph construction: the OD_GW / OD_TH / OD_TD labeled graphs
//     with uniform (structural) or unique (temporal) vertex labels.
//   - SUBDUE: single-graph substructure discovery with the MDL and
//     Size principles (Section 5.1).
//   - Structural mining: Algorithm 1 — breadth-/depth-first graph
//     partitioning plus FSG-style frequent-subgraph mining across
//     partitions (Section 5.2).
//   - Temporal mining: per-day partitioning plus frequent-subgraph
//     mining of repeated routes (Section 6).
//   - Conventional mining: Apriori association rules, C4.5-style
//     classification and EM clustering over the flattened data
//     (Section 7).
//
// Every graph miner executes on a shared worker-pool engine
// (internal/engine): FSG support counting, SUBDUE beam evaluation,
// Algorithm 1's repeated partitionings and the per-day temporal
// batches all fan out across CPUs, controlled by the Parallelism
// field of the corresponding Options struct (0 = all CPUs, 1 =
// serial). Mining results are bit-identical at every worker count.
//
// Both miners share a pattern-with-embeddings store
// (internal/pattern): frequent patterns carry per-transaction
// embedding lists, so FSG counts a candidate's support by extending
// its parent's embeddings across the one new edge instead of
// re-running a full subgraph-isomorphism search per transaction, and
// SUBDUE's instance growth rides the same representation. Embedding
// memory is metered by the MaxEmbeddings option of FSGOptions,
// StructuralOptions and TemporalMineOptions (0 = default budget,
// negative = unlimited): over-budget patterns keep warm-start seeds
// and fall back to classic searches, reproducing the paper's
// memory/speed trade-off as a controlled dial.
//
// # Quick start
//
//	data := tnkd.GenerateDataset(tnkd.ScaledConfig(0.05))
//	g := tnkd.BuildGraph(data, tnkd.GraphOptions{
//		Attr:     tnkd.TransitHours,
//		Vertices: tnkd.UniformLabels,
//	})
//	res, err := tnkd.MineStructural(g, tnkd.DefaultStructuralOptions())
//
// Every experiment (table and figure) in the paper's evaluation can
// be regenerated with the runners in Experiments (see EXPERIMENTS.md
// and cmd/experiments).
package tnkd

import (
	"io"

	"tnkd/internal/bin"
	"tnkd/internal/core"
	"tnkd/internal/dataset"
	"tnkd/internal/dynamic"
	"tnkd/internal/fsg"
	"tnkd/internal/graph"
	"tnkd/internal/interest"
	"tnkd/internal/partition"
	"tnkd/internal/subdue"
)

// Re-exported dataset types.
type (
	// Dataset is an in-memory OD transaction table.
	Dataset = dataset.Dataset
	// Transaction is one shipment row (Table 1 schema).
	Transaction = dataset.Transaction
	// LatLon is a 0.1-degree-rounded coordinate pair.
	LatLon = dataset.LatLon
	// GenConfig controls the synthetic data generator.
	GenConfig = dataset.GenConfig
	// GraphOptions controls OD-graph construction.
	GraphOptions = dataset.GraphOptions
	// EdgeAttr selects the edge-labeling attribute.
	EdgeAttr = dataset.EdgeAttr
	// Summary carries the Section 3 dataset statistics.
	Summary = dataset.Summary
)

// Re-exported graph and miner types.
type (
	// Graph is a labeled directed multigraph.
	Graph = graph.Graph
	// StructuralOptions configures Algorithm 1.
	StructuralOptions = core.StructuralOptions
	// StructuralResult is Algorithm 1's output.
	StructuralResult = core.StructuralResult
	// TemporalMineOptions configures the Section 6 pipeline.
	TemporalMineOptions = core.TemporalMineOptions
	// TemporalMineResult is the Section 6 output.
	TemporalMineResult = core.TemporalMineResult
	// SubdueOptions configures substructure discovery.
	SubdueOptions = subdue.Options
	// SubdueResult is a SUBDUE discovery outcome.
	SubdueResult = subdue.Result
	// FSGOptions configures frequent-subgraph mining directly.
	FSGOptions = fsg.Options
	// FSGResult is a frequent-subgraph mining outcome.
	FSGResult = fsg.Result
	// SplitOptions configures Algorithm 2 partitioning.
	SplitOptions = partition.SplitOptions
)

// Edge-labeling attributes (Section 3's three graph variants).
const (
	GrossWeight   = dataset.GrossWeight
	TransitHours  = dataset.TransitHours
	TotalDistance = dataset.TotalDistance
)

// Vertex labeling schemes.
const (
	// UniformLabels makes all vertices identical, for structural
	// self-similarity mining (Section 5).
	UniformLabels = dataset.UniformLabels
	// UniqueLabels ties vertices to locations, for temporally
	// repeated routes (Section 6).
	UniqueLabels = dataset.UniqueLabels
)

// Partitioning strategies (Algorithm 2).
const (
	BreadthFirst = partition.BreadthFirst
	DepthFirst   = partition.DepthFirst
)

// SUBDUE evaluation principles (Section 5.1).
const (
	MDL  = subdue.MDL
	Size = subdue.Size
)

// DefaultConfig returns the full-scale generator configuration that
// reproduces the published dataset statistics (98,292 transactions,
// 4,038 locations, 20,900 OD pairs, ...).
func DefaultConfig() GenConfig { return dataset.DefaultConfig() }

// ScaledConfig returns the generator configuration scaled to a
// fraction of full size; useful for fast experiments.
func ScaledConfig(f float64) GenConfig { return dataset.DefaultConfig().Scaled(f) }

// GenerateDataset produces a deterministic synthetic OD dataset.
func GenerateDataset(cfg GenConfig) *Dataset { return dataset.Generate(cfg) }

// ReadCSV loads a dataset written by (*Dataset).WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// BuildGraph converts a dataset into one of the labeled OD graphs.
func BuildGraph(d *Dataset, opts GraphOptions) *Graph { return d.BuildGraph(opts) }

// SplitGraph partitions a single graph into edge-disjoint sub-graph
// transactions (Algorithm 2).
func SplitGraph(g *Graph, opts SplitOptions) []*Graph { return partition.SplitGraph(g, opts) }

// MineStructural runs Algorithm 1: repeated partition-and-mine over a
// single graph (Section 5.2).
func MineStructural(g *Graph, opts StructuralOptions) (*StructuralResult, error) {
	return core.MineStructural(g, opts)
}

// DefaultStructuralOptions mirrors the paper's breadth-first run.
func DefaultStructuralOptions() StructuralOptions { return core.DefaultStructuralOptions() }

// MineTemporal runs the Section 6 pipeline: per-day partitioning and
// frequent-subgraph mining of repeated routes.
func MineTemporal(d *Dataset, opts TemporalMineOptions) (*TemporalMineResult, error) {
	return core.MineTemporal(d, opts)
}

// DefaultTemporalMineOptions mirrors the paper's successful temporal
// run (weight labels, component split, 5% support, label cap 200).
func DefaultTemporalMineOptions() TemporalMineOptions { return core.DefaultTemporalMineOptions() }

// Subdue runs substructure discovery over a single graph
// (Section 5.1).
func Subdue(g *Graph, opts SubdueOptions) *SubdueResult { return subdue.Discover(g, opts) }

// DefaultSubdueOptions mirrors the paper's MDL run (beam 4, best 3).
func DefaultSubdueOptions() SubdueOptions { return subdue.DefaultOptions() }

// MineFrequentSubgraphs runs the FSG-style miner directly over an
// explicit transaction set.
func MineFrequentSubgraphs(txns []*Graph, opts FSGOptions) (*FSGResult, error) {
	return fsg.Mine(txns, opts)
}

// Extension API: the Section 9 future-work challenges implemented by
// this repository (dynamic-graph mining, periodicity, interestingness
// metrics).
type (
	// DynamicGraph is a graph whose edges exist over day intervals.
	DynamicGraph = dynamic.Graph
	// TimePathQuery constrains repeated-connection-path search.
	TimePathQuery = dynamic.TimePathQuery
	// RepeatedPath is a route repeated across time windows.
	RepeatedPath = dynamic.RepeatedPath
	// Periodicity is the detected cadence of a lane.
	Periodicity = dynamic.Periodicity
	// LaneRuleQuery configures day-level lane co-occurrence mining.
	LaneRuleQuery = dynamic.LaneRuleQuery
	// LaneRule is a spatially filtered co-occurrence rule.
	LaneRule = dynamic.LaneRule
	// PatternScore is the interestingness evaluation of one mined
	// pattern.
	PatternScore = interest.Score
	// Binner discretises continuous attributes into labeled ranges.
	Binner = bin.Binner
)

// BuildDynamicGraph converts a dataset into a dynamic graph whose
// timed edges span each load's pickup–delivery window. A nil binner
// selects the attribute's paper-default binning.
func BuildDynamicGraph(d *Dataset, attr EdgeAttr, binner Binner) *DynamicGraph {
	return dynamic.FromDataset(d, attr, binner)
}

// FindRepeatedPaths mines multi-leg routes repeated over bounded time
// windows (the paper's dynamic-graph challenge).
func FindRepeatedPaths(g *DynamicGraph, q TimePathQuery) []RepeatedPath {
	return dynamic.FindRepeatedPaths(g, q)
}

// DetectPeriodicity finds lanes with a dominant repetition cadence.
func DetectPeriodicity(g *DynamicGraph, minOccur int, minRegularity float64) []Periodicity {
	return dynamic.DetectPeriodicity(g, minOccur, minRegularity)
}

// MineLaneRules finds day-level lane co-occurrence rules with the
// paper's spatio-temporal-closeness filter.
func MineLaneRules(g *DynamicGraph, q LaneRuleQuery) []LaneRule {
	return dynamic.LaneRules(g, q)
}

// RankPatterns scores mined frequent subgraphs against an
// independent-edge null model (lift/leverage), the paper's missing
// "interestingness metric for graph mining".
func RankPatterns(res *FSGResult, txns []*Graph) []PatternScore {
	return interest.Rank(res, txns, interest.Options{})
}
