package dataset

import (
	"fmt"
	"io"
)

// WriteARFF writes the dataset in Weka's ARFF format, the tool the
// paper used for its Section 7 experiments. The two date attributes
// are included as Weka DATE attributes; the paper excluded them from
// mining because Weka maps DATE to REAL, but the export keeps the
// full Table 1 schema so the file round-trips the source data.
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	if relation == "" {
		relation = "transportation_od"
	}
	header := fmt.Sprintf(`@RELATION %s

@ATTRIBUTE ID NUMERIC
@ATTRIBUTE REQ_PICKUP_DT DATE "yyyy-MM-dd"
@ATTRIBUTE REQ_DELIVERY_DT DATE "yyyy-MM-dd"
@ATTRIBUTE ORIGIN_LATITUDE NUMERIC
@ATTRIBUTE ORIGIN_LONGITUDE NUMERIC
@ATTRIBUTE DEST_LATITUDE NUMERIC
@ATTRIBUTE DEST_LONGITUDE NUMERIC
@ATTRIBUTE TOTAL_DISTANCE NUMERIC
@ATTRIBUTE GROSS_WEIGHT NUMERIC
@ATTRIBUTE MOVE_TRANSIT_HOURS NUMERIC
@ATTRIBUTE TRANS_MODE {TL,LTL}

@DATA
`, relation)
	if _, err := io.WriteString(w, header); err != nil {
		return fmt.Errorf("dataset: write ARFF header: %w", err)
	}
	for _, t := range d.Transactions {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%s\n",
			t.ID,
			t.ReqPickup.Format("2006-01-02"),
			t.ReqDelivery.Format("2006-01-02"),
			t.Origin.Lat, t.Origin.Lon,
			t.Dest.Lat, t.Dest.Lon,
			t.Distance, t.GrossWeight, t.TransitHours, t.Mode)
		if err != nil {
			return fmt.Errorf("dataset: write ARFF row %d: %w", t.ID, err)
		}
	}
	return nil
}
