package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column order of the CSV codec, mirroring Table 1.
var csvHeader = []string{
	"ID", "REQ_PICKUP_DT", "REQ_DELIVERY_DT",
	"ORIGIN_LATITUDE", "ORIGIN_LONGITUDE",
	"DEST_LATITUDE", "DEST_LONGITUDE",
	"TOTAL_DISTANCE", "GROSS_WEIGHT", "MOVE_TRANSIT_HOURS", "TRANS_MODE",
}

const csvDateLayout = "2006-01-02"

// WriteCSV writes d to w with a Table 1 header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, t := range d.Transactions {
		rec[0] = strconv.Itoa(t.ID)
		rec[1] = t.ReqPickup.Format(csvDateLayout)
		rec[2] = t.ReqDelivery.Format(csvDateLayout)
		rec[3] = strconv.FormatFloat(t.Origin.Lat, 'f', 1, 64)
		rec[4] = strconv.FormatFloat(t.Origin.Lon, 'f', 1, 64)
		rec[5] = strconv.FormatFloat(t.Dest.Lat, 'f', 1, 64)
		rec[6] = strconv.FormatFloat(t.Dest.Lon, 'f', 1, 64)
		rec[7] = strconv.FormatFloat(t.Distance, 'f', 1, 64)
		rec[8] = strconv.FormatFloat(t.GrossWeight, 'f', 1, 64)
		rec[9] = strconv.FormatFloat(t.TransitHours, 'f', 2, 64)
		rec[10] = string(t.Mode)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write transaction %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, header[i], want)
		}
	}
	d := &Dataset{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		d.Transactions = append(d.Transactions, t)
	}
	return d, nil
}

func parseRecord(rec []string) (Transaction, error) {
	var t Transaction
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return t, fmt.Errorf("bad ID %q: %w", rec[0], err)
	}
	t.ID = id
	if t.ReqPickup, err = time.Parse(csvDateLayout, rec[1]); err != nil {
		return t, fmt.Errorf("bad REQ_PICKUP_DT %q: %w", rec[1], err)
	}
	if t.ReqDelivery, err = time.Parse(csvDateLayout, rec[2]); err != nil {
		return t, fmt.Errorf("bad REQ_DELIVERY_DT %q: %w", rec[2], err)
	}
	floats := make([]float64, 6)
	for i, col := range rec[3:9] {
		if floats[i], err = strconv.ParseFloat(col, 64); err != nil {
			return t, fmt.Errorf("bad %s %q: %w", csvHeader[3+i], col, err)
		}
	}
	t.Origin = LatLon{floats[0], floats[1]}
	t.Dest = LatLon{floats[2], floats[3]}
	t.Distance = floats[4]
	t.GrossWeight = floats[5]
	if t.TransitHours, err = strconv.ParseFloat(rec[9], 64); err != nil {
		return t, fmt.Errorf("bad MOVE_TRANSIT_HOURS %q: %w", rec[9], err)
	}
	switch Mode(rec[10]) {
	case Truckload, LessThanTruckload:
		t.Mode = Mode(rec[10])
	default:
		return t, fmt.Errorf("bad TRANS_MODE %q", rec[10])
	}
	return t, nil
}
