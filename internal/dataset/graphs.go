package dataset

import (
	"strconv"

	"tnkd/internal/bin"
	"tnkd/internal/graph"
)

// EdgeAttr selects which transaction attribute labels the edges of an
// OD graph (Section 3 defines the three variants).
type EdgeAttr int

// The three edge-labeling attributes of Section 3.
const (
	// GrossWeight labels edges with binned GROSS_WEIGHT (graph OD_GW).
	GrossWeight EdgeAttr = iota
	// TransitHours labels edges with binned MOVE_TRANSIT_HOURS (OD_TH).
	TransitHours
	// TotalDistance labels edges with binned TOTAL_DISTANCE (OD_TD).
	TotalDistance
)

// String returns the paper's name for the graph variant.
func (a EdgeAttr) String() string {
	switch a {
	case GrossWeight:
		return "OD_GW"
	case TransitHours:
		return "OD_TH"
	case TotalDistance:
		return "OD_TD"
	}
	return "OD_??"
}

// Value extracts the attribute value from a transaction.
func (a EdgeAttr) Value(t Transaction) float64 {
	switch a {
	case GrossWeight:
		return t.GrossWeight
	case TransitHours:
		return t.TransitHours
	default:
		return t.Distance
	}
}

// DefaultBinner returns the paper's binning for the attribute: seven
// equal-width 6,500 lb weight bins (Figure 4 shows the intervals
// [0, 6500] and [13000, 19500]), ten transit-hour bins, ten distance
// bins.
func (a EdgeAttr) DefaultBinner() bin.Binner {
	switch a {
	case GrossWeight:
		return bin.NewEqualWidth(0, 45500, 7)
	case TransitHours:
		return bin.NewEqualWidth(0, 150, 10)
	default:
		return bin.NewEqualWidth(0, 3200, 10)
	}
}

// VertexLabeling selects how OD-graph vertices are labeled.
type VertexLabeling int

const (
	// UniformLabels gives every vertex the same label so that only
	// structure matters (Section 5: structurally similar routes).
	UniformLabels VertexLabeling = iota
	// UniqueLabels labels each vertex with its lat-lon so patterns
	// are tied to locations (Section 6: temporally repeated routes).
	UniqueLabels
)

// uniformVertexLabel is the shared label under UniformLabels.
const uniformVertexLabel = "*"

// GraphOptions controls BuildGraph.
type GraphOptions struct {
	Attr     EdgeAttr
	Vertices VertexLabeling
	// Binner bins the edge attribute; nil selects Attr.DefaultBinner().
	Binner bin.Binner
	// ExactLabels, when set, labels edges with the exact attribute
	// value instead of a bin interval. The paper notes this leads to
	// few frequent patterns (edge labels become nearly unique); it is
	// exposed for the binning ablation.
	ExactLabels bool
}

// BuildGraph converts the dataset into the labeled directed
// multigraph of Section 3: one vertex per distinct location, one edge
// per transaction, edge label the (binned) chosen attribute.
func (d *Dataset) BuildGraph(opts GraphOptions) *graph.Graph {
	binner := opts.Binner
	if binner == nil {
		binner = opts.Attr.DefaultBinner()
	}
	g := graph.New(opts.Attr.String())
	idx := make(map[LatLon]graph.VertexID)
	vertexOf := func(p LatLon) graph.VertexID {
		if id, ok := idx[p]; ok {
			return id
		}
		label := uniformVertexLabel
		if opts.Vertices == UniqueLabels {
			label = p.String()
		}
		id := g.AddVertex(label)
		idx[p] = id
		return id
	}
	for _, t := range d.Transactions {
		from := vertexOf(t.Origin)
		to := vertexOf(t.Dest)
		v := opts.Attr.Value(t)
		var label string
		if opts.ExactLabels {
			label = exactLabel(v)
		} else {
			label = bin.LabelOf(binner, v)
		}
		g.AddEdge(from, to, label)
	}
	return g
}

// exactLabel renders the raw attribute value with full precision.
func exactLabel(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
