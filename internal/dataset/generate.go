package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// GenConfig controls the calibrated synthetic generator. The defaults
// (see DefaultConfig) reproduce every dataset statistic published in
// Section 3 of the paper; tests use scaled-down configs via Scaled.
type GenConfig struct {
	Seed int64

	NumTransactions int // total rows (paper: 98,292)
	NumLocations    int // distinct lat-lon pairs (paper: 4,038)
	NumOrigins      int // distinct origins (paper: 1,797)
	NumDestinations int // distinct destinations (paper: 3,770)
	NumODPairs      int // distinct OD pairs (paper: 20,900)
	Days            int // span of the dataset in days (paper: ~182)

	// Planted structural motifs (Sections 1, 5 and 6 describe these
	// as the "good" shapes in transportation networks).
	HubMotifs      int // hub-and-spoke instances (Figure 2 pattern)
	HubFanoutMin   int
	HubFanoutMax   int
	ChainMotifs    int // delivery-route chains (Figure 3 pattern)
	ChainLenMin    int
	ChainLenMax    int
	DeadheadMotifs int // A->B->C flows with no return traffic (Figure 1)

	MegaHubFanout      int // max out-degree (paper: 2,373)
	ConsolidationFanin int // max in-degree (paper: 832)
	AirFreightLoads    int // PNW->Hawaii outliers (paper: 3, cluster 0)

	// WeekendHubs are small hub-and-spoke operations that distribute
	// on weekends, when the rest of the network is nearly idle. They
	// give the per-day graph sizes the bimodal shape of Table 2 (73
	// transactions of size 1-10 next to 65 of size 1000+) and supply
	// the small recurring patterns Figure 4 finds on the quiet dates.
	WeekendHubs      int
	WeekendHubFanout int

	ModeNoise float64 // fraction of TRANS_MODE labels flipped (drives the ~96% J4.8 accuracy)
}

// DefaultConfig returns the full-scale configuration matching the
// published dataset statistics.
func DefaultConfig() GenConfig {
	return GenConfig{
		Seed:               20050405, // ICDE 2005 conference dates
		NumTransactions:    98292,
		NumLocations:       4038,
		NumOrigins:         1797,
		NumDestinations:    3770,
		NumODPairs:         20900,
		Days:               182,
		HubMotifs:          300,
		HubFanoutMin:       8,
		HubFanoutMax:       12,
		ChainMotifs:        80,
		ChainLenMin:        12,
		ChainLenMax:        15,
		DeadheadMotifs:     50,
		MegaHubFanout:      2373,
		ConsolidationFanin: 832,
		AirFreightLoads:    3,
		WeekendHubs:        14,
		WeekendHubFanout:   4,
		ModeNoise:          0.04,
	}
}

// Scaled returns a copy of c with all volume parameters multiplied by
// f (0 < f <= 1), keeping internal consistency (origins + destinations
// - locations stays non-negative, fanouts within location counts).
func (c GenConfig) Scaled(f float64) GenConfig {
	if f <= 0 || f > 1 {
		panic("dataset: Scaled factor must be in (0, 1]")
	}
	scale := func(n, min int) int {
		v := int(math.Round(float64(n) * f))
		if v < min {
			v = min
		}
		return v
	}
	s := c
	s.NumTransactions = scale(c.NumTransactions, 200)
	s.NumLocations = scale(c.NumLocations, 60)
	s.NumOrigins = scale(c.NumOrigins, 30)
	s.NumDestinations = scale(c.NumDestinations, 50)
	if s.NumOrigins+s.NumDestinations < s.NumLocations {
		s.NumLocations = s.NumOrigins + s.NumDestinations
	}
	if s.NumOrigins > s.NumLocations {
		s.NumOrigins = s.NumLocations
	}
	if s.NumDestinations > s.NumLocations {
		s.NumDestinations = s.NumLocations
	}
	s.NumODPairs = scale(c.NumODPairs, 80)
	maxPairs := s.NumOrigins * s.NumDestinations / 2
	if s.NumODPairs > maxPairs {
		s.NumODPairs = maxPairs
	}
	s.HubMotifs = scale(c.HubMotifs, 4)
	s.ChainMotifs = scale(c.ChainMotifs, 2)
	s.DeadheadMotifs = scale(c.DeadheadMotifs, 2)
	s.MegaHubFanout = scale(c.MegaHubFanout, 20)
	if s.MegaHubFanout > s.NumDestinations-1 {
		s.MegaHubFanout = s.NumDestinations - 1
	}
	s.ConsolidationFanin = scale(c.ConsolidationFanin, 10)
	if s.ConsolidationFanin > s.NumOrigins-1 {
		s.ConsolidationFanin = s.NumOrigins - 1
	}
	s.WeekendHubs = scale(c.WeekendHubs, 5)
	return s
}

// TestConfig returns a small, fast configuration for unit tests
// (about 1/40 of full scale).
func TestConfig() GenConfig { return DefaultConfig().Scaled(0.025) }

// region is a rectangular sampling region for synthetic locations.
type region struct {
	latLo, latHi float64
	lonLo, lonHi float64
	weight       float64
}

// The regional mix is chosen so that (a) the longitude band
// (-84.76, -75.43] is dominated ~7:1 by the latitude band
// (39.8, 44.08], reproducing the paper's 0.87-confidence association
// rule, and (b) the Midwest around the carrier's Green Bay home base
// carries the densest traffic.
var regions = []region{
	{40.0, 44.0, -84.7, -75.5, 0.21}, // Great Lakes / Northeast corridor
	{32.0, 39.0, -84.7, -75.5, 0.04}, // Southeast within the same longitude band
	{40.8, 44.4, -75.4, -67.2, 0.07}, // New England / Mid-Atlantic seaboard (exclusively northern longitudes)
	{38.0, 47.0, -97.0, -85.0, 0.33}, // Upper Midwest (carrier heartland)
	{29.0, 36.5, -106.0, -85.0, 0.15},
	{32.0, 48.5, -124.0, -107.0, 0.14},
	{35.0, 48.0, -106.0, -97.0, 0.06},
}

// Fixed named locations used by planted motifs.
var (
	locGreenBay = LatLon{44.5, -88.0} // mega-hub origin
	locSeattle  = LatLon{47.6, -122.3}
	locPortland = LatLon{45.5, -122.7}
	locHonolulu = LatLon{21.3, -157.9} // air-freight destination
	locChicago  = LatLon{41.9, -87.6}  // consolidation destination
)

type laneKind int

const (
	laneRandom laneKind = iota
	laneHubSpoke
	laneChain
	laneDeadheadMain
	laneDeadheadReturn
	laneMegaHub
	laneConsolidation
	laneAir
)

// lane is one distinct OD pair and its shipment profile.
type lane struct {
	origin, dest LatLon
	kind         laneKind
	baseWeight   float64 // pounds
	count        int     // transactions on this lane
	recurring    bool    // weekly cadence vs. uniform dates
	days         []int   // explicit pickup-day schedule (overrides count-based dates)
	distance     float64 // road miles (fixed per lane)
	speed        float64 // effective mph for transit-hour synthesis
}

// Generate produces a synthetic OD dataset according to cfg. The
// output is deterministic for a given configuration.
func Generate(cfg GenConfig) *Dataset {
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.buildLocations()
	g.buildLanes()
	g.calibrateCounts()
	return g.emit()
}

type generator struct {
	cfg GenConfig
	rng *rand.Rand

	locs    []LatLon
	origins []LatLon // locs[:NumOrigins]
	dests   []LatLon // locs[len-NumDestinations:]

	lanes         []*lane
	laneSet       map[ODPair]bool
	originCovered map[LatLon]bool
	destCovered   map[LatLon]bool
	outDeg        map[LatLon]int
}

func (g *generator) buildLocations() {
	cfg := g.cfg
	seen := map[LatLon]bool{
		locGreenBay: true, locSeattle: true, locPortland: true,
		locHonolulu: true, locChicago: true,
	}
	// Interior locations sampled from the regional mix (all
	// locations except the five named ones).
	interior := []LatLon{}
	for len(interior) < cfg.NumLocations-5 {
		r := g.pickRegion()
		p := LatLon{
			Lat: r.latLo + g.rng.Float64()*(r.latHi-r.latLo),
			Lon: r.lonLo + g.rng.Float64()*(r.lonHi-r.lonLo),
		}.Round01()
		if seen[p] {
			continue
		}
		seen[p] = true
		interior = append(interior, p)
	}
	g.rng.Shuffle(len(interior), func(i, j int) { interior[i], interior[j] = interior[j], interior[i] })

	// Layout: origins are the prefix, destinations the suffix, and
	// the overlap in the middle. Named motif locations are pinned:
	// Green Bay / Seattle / Portland must be origins, Honolulu must
	// be destination-only, Chicago must be a destination.
	locs := make([]LatLon, 0, cfg.NumLocations)
	locs = append(locs, locGreenBay, locSeattle, locPortland)
	// Split the interior so that Chicago and Honolulu land in the
	// destination suffix.
	destOnlyStart := cfg.NumLocations - 2 // reserve final slots
	locs = append(locs, interior[:destOnlyStart-3]...)
	locs = append(locs, locChicago, locHonolulu)
	// Chicago should be inside the destination range; Honolulu is
	// last so it is destination-only as long as NumOrigins <
	// NumLocations-1, which all configurations guarantee.
	g.locs = locs
	g.origins = locs[:cfg.NumOrigins]
	g.dests = locs[cfg.NumLocations-cfg.NumDestinations:]
}

func (g *generator) pickRegion() region {
	r := g.rng.Float64()
	acc := 0.0
	for _, reg := range regions {
		acc += reg.weight
		if r < acc {
			return reg
		}
	}
	return regions[len(regions)-1]
}

// addLane registers a lane for the given pair if it is new; it
// returns the lane and whether it was created. Origins other than the
// mega-hub are capped below MegaHubFanout distinct destinations so
// the published maximum out-degree stays pinned to the mega-hub.
func (g *generator) addLane(o, d LatLon, kind laneKind) (*lane, bool) {
	if o == d {
		return nil, false
	}
	if o != locGreenBay && g.outDeg[o] >= g.cfg.MegaHubFanout-1 {
		return nil, false
	}
	pair := ODPair{o, d}
	if g.laneSet[pair] {
		return nil, false
	}
	g.laneSet[pair] = true
	ln := &lane{origin: o, dest: d, kind: kind}
	g.lanes = append(g.lanes, ln)
	g.originCovered[o] = true
	g.destCovered[d] = true
	g.outDeg[o]++
	return ln, true
}

func (g *generator) buildLanes() {
	cfg := g.cfg
	g.laneSet = make(map[ODPair]bool, cfg.NumODPairs)
	g.originCovered = make(map[LatLon]bool, cfg.NumOrigins)
	g.destCovered = make(map[LatLon]bool, cfg.NumDestinations)
	g.outDeg = make(map[LatLon]int, cfg.NumOrigins)

	// (f) Air-freight outliers: Pacific Northwest to Hawaii.
	if ln, ok := g.addLane(locSeattle, locHonolulu, laneAir); ok {
		ln.baseWeight = 1800
		ln.count = (cfg.AirFreightLoads + 1) / 2
	}
	if ln, ok := g.addLane(locPortland, locHonolulu, laneAir); ok {
		ln.baseWeight = 2200
		ln.count = cfg.AirFreightLoads / 2
	}

	// (a) Hub-and-spoke motifs: a hub origin delivering to nearby
	// destinations with a small set of weight classes (Figure 2).
	// All spokes of a hub ship on the hub's distribution days, so
	// the fan-out recurs as a unit — both across space (structural
	// mining, Figure 2) and across days (temporal mining, Figure 4).
	for i := 0; i < cfg.HubMotifs; i++ {
		hub := g.origins[g.rng.Intn(len(g.origins))]
		if hub == locGreenBay {
			continue
		}
		fanout := cfg.HubFanoutMin + g.rng.Intn(cfg.HubFanoutMax-cfg.HubFanoutMin+1)
		spokes := g.nearbyDests(hub, 4.0, fanout)
		sched := g.weeklySchedule(14) // bi-weekly distribution days
		for j, d := range spokes {
			ln, ok := g.addLane(hub, d, laneHubSpoke)
			if !ok {
				continue
			}
			// Cycle through three weight classes so the hub's spokes
			// carry a repeatable label multiset.
			switch j % 3 {
			case 0:
				ln.baseWeight = 3000 + g.rng.Float64()*2500 // bin [0, 6500)
			case 1:
				ln.baseWeight = 8000 + g.rng.Float64()*4000 // bin [6500, 13000)
			default:
				ln.baseWeight = 14000 + g.rng.Float64()*5000 // bin [13000, 19500)
			}
			ln.recurring = true
			count := 6 + g.rng.Intn(5)
			if count > len(sched) {
				count = len(sched)
			}
			ln.days = append([]int(nil), sched[:count]...)
			ln.count = len(ln.days)
		}
	}

	// (b) Delivery-route chains: v1 -> v2 -> ... -> vk over locations
	// that are both origins and destinations (Figure 3).
	overlapLo := cfg.NumLocations - cfg.NumDestinations
	overlap := g.locs[overlapLo:cfg.NumOrigins]
	for i := 0; i < cfg.ChainMotifs && len(overlap) > cfg.ChainLenMax; i++ {
		length := cfg.ChainLenMin + g.rng.Intn(cfg.ChainLenMax-cfg.ChainLenMin+1)
		start := overlap[g.rng.Intn(len(overlap))]
		sched := g.weeklySchedule(14) // runs of the whole route
		runs := 8 + g.rng.Intn(5)
		if runs > len(sched) {
			runs = len(sched)
		}
		prev := start
		for j := 0; j < length; j++ {
			next := g.nearbyFrom(overlap, prev, 2.5)
			if next == prev {
				break
			}
			if ln, ok := g.addLane(prev, next, laneChain); ok {
				ln.baseWeight = 1500 + g.rng.Float64()*4000 // light LTL
				ln.recurring = true
				// Leg j of run r departs j days after the run starts,
				// so the route is a repeated connection path over
				// time (Section 9's dynamic-path pattern).
				for _, s := range sched[:runs] {
					day := s + j
					if day >= cfg.Days {
						day = cfg.Days - 1
					}
					ln.days = append(ln.days, day)
				}
				ln.count = len(ln.days)
			}
			prev = next
		}
	}

	// (c) Deadhead corridors: heavy A->B and B->C with almost no
	// return traffic (the Figure 1 pattern SUBDUE surfaces). All
	// three locations are drawn from the origin∩destination overlap
	// so every leg respects the role layout.
	for i := 0; i < cfg.DeadheadMotifs && len(overlap) >= 3; i++ {
		a := overlap[g.rng.Intn(len(overlap))]
		b := g.nearbyFrom(overlap, a, 6.0)
		c := g.nearbyFrom(overlap, b, 6.0)
		if a == b || b == c || a == c {
			continue
		}
		if ln, ok := g.addLane(a, b, laneDeadheadMain); ok {
			ln.baseWeight = 30000 + g.rng.Float64()*12000
			ln.recurring = true
			ln.count = 40 + g.rng.Intn(30)
		}
		if ln, ok := g.addLane(b, c, laneDeadheadMain); ok {
			ln.baseWeight = 30000 + g.rng.Float64()*12000
			ln.recurring = true
			ln.count = 40 + g.rng.Intn(30)
		}
		// Sparse return leg (usually absent entirely).
		if g.rng.Float64() < 0.3 {
			if ln, ok := g.addLane(c, a, laneDeadheadReturn); ok {
				ln.baseWeight = 5000
				ln.count = 1 + g.rng.Intn(2)
			}
		}
	}

	// (d) Consolidation center: many origins feed one destination,
	// giving the published max in-degree.
	fanin := cfg.ConsolidationFanin
	perm := g.rng.Perm(len(g.origins))
	added := 0
	for _, oi := range perm {
		if added >= fanin {
			break
		}
		if g.origins[oi] == locGreenBay {
			continue
		}
		if ln, ok := g.addLane(g.origins[oi], locChicago, laneConsolidation); ok {
			ln.baseWeight = 6000 + g.rng.Float64()*9000
			ln.count = 1 + g.rng.Intn(3)
			added++
		}
	}

	// (d2) Weekend micro-hubs: small fan-outs that distribute on
	// Saturdays or Sundays, when the rest of the network is nearly
	// idle. These populate the quiet dates of Table 2's bimodal size
	// distribution and recur across weekends (Figure 4's patterns).
	for i := 0; i < cfg.WeekendHubs; i++ {
		hub := g.origins[g.rng.Intn(len(g.origins))]
		if hub == locGreenBay {
			continue
		}
		fanout := 2 + g.rng.Intn(cfg.WeekendHubFanout)
		spokes := g.nearbyDests(hub, 4.0, fanout)
		sched := g.weekendSchedule()
		for j, d := range spokes {
			ln, ok := g.addLane(hub, d, laneHubSpoke)
			if !ok {
				continue
			}
			switch j % 2 {
			case 0:
				ln.baseWeight = 3000 + g.rng.Float64()*3000 // bin [0, 6500)
			default:
				ln.baseWeight = 14000 + g.rng.Float64()*5000 // bin [13000, 19500)
			}
			ln.recurring = true
			// Every week or every other week on the same weekend day.
			stride := 1 + g.rng.Intn(2)
			for k := 0; k < len(sched); k += stride {
				ln.days = append(ln.days, sched[k])
			}
			ln.count = len(ln.days)
		}
	}

	// (e) Mega-hub: Green Bay ships to MegaHubFanout distinct
	// destinations, giving the published max out-degree.
	permD := g.rng.Perm(len(g.dests))
	added = 0
	for _, di := range permD {
		if added >= cfg.MegaHubFanout {
			break
		}
		d := g.dests[di]
		if d == locHonolulu || d == locChicago {
			// Hawaii traffic is air freight only; the consolidation
			// center's in-degree stays pinned at ConsolidationFanin.
			continue
		}
		if ln, ok := g.addLane(locGreenBay, d, laneMegaHub); ok {
			ln.baseWeight = 10000 + g.rng.Float64()*30000
			ln.count = 1 + g.rng.Intn(3)
			added++
		}
	}

	// Coverage: every origin ships at least once and every
	// destination receives at least once, matching the published
	// minimum in/out degrees of 1.
	for _, o := range g.origins {
		if len(g.lanes) >= cfg.NumODPairs {
			break
		}
		if g.originCovered[o] {
			continue
		}
		d := g.randomDest(o)
		if ln, ok := g.addLane(o, d, laneRandom); ok {
			ln.baseWeight = g.randomWeight()
			ln.count = g.geometricCount(0.5, 50)
		}
	}
	for _, d := range g.dests {
		if len(g.lanes) >= cfg.NumODPairs {
			break
		}
		if g.destCovered[d] || d == locHonolulu {
			continue
		}
		o := g.origins[g.rng.Intn(len(g.origins))]
		for o == locGreenBay {
			o = g.origins[g.rng.Intn(len(g.origins))]
		}
		if ln, ok := g.addLane(o, d, laneRandom); ok {
			ln.baseWeight = g.randomWeight()
			ln.count = g.geometricCount(0.5, 50)
		}
	}

	// Random background lanes up to the target OD-pair count, with a
	// Zipf-like skew over origins. The mega-hub origin is excluded so
	// its out-degree stays pinned at MegaHubFanout.
	zipf := g.zipfWeights(len(g.origins), 0.75)
	for len(g.lanes) < cfg.NumODPairs {
		o := g.origins[g.sampleIndex(zipf)]
		if o == locGreenBay {
			continue
		}
		d := g.randomDest(o)
		if ln, ok := g.addLane(o, d, laneRandom); ok {
			ln.baseWeight = g.randomWeight()
			ln.count = g.geometricCount(0.74, 200)
		}
	}

	// Fix per-lane physical attributes.
	for _, ln := range g.lanes {
		if ln.kind == laneAir {
			// Recorded as >3,000 "miles" moved in under a day.
			ln.distance = 3050 + g.rng.Float64()*200
			ln.speed = 250 // air
			continue
		}
		ln.distance = roadMiles(ln.origin, ln.dest)
		if ln.baseWeight < 10000 {
			ln.speed = 14 + g.rng.Float64()*10 // LTL: multi-stop, slow effective speed
		} else {
			ln.speed = 38 + g.rng.Float64()*10 // TL: direct
		}
	}
}

// randomWeight draws a background load weight: mostly LTL and TL
// class, a tail of heavy and rare project cargo so the overall range
// approaches the paper's ~500 tons.
func (g *generator) randomWeight() float64 {
	r := g.rng.Float64()
	switch {
	case r < 0.40:
		return 500 + g.rng.Float64()*9000 // LTL
	case r < 0.85:
		return 10500 + g.rng.Float64()*33000 // TL
	case r < 0.995:
		return 44000 + g.rng.Float64()*56000 // heavy
	default:
		return 200000 + g.rng.Float64()*800000 // project cargo
	}
}

func (g *generator) geometricCount(continueProb float64, max int) int {
	count := 1
	for count < max && g.rng.Float64() < continueProb {
		count++
	}
	return count
}

func (g *generator) zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	for i := 1; i < n; i++ {
		w[i] += w[i-1] // cumulative
	}
	return w
}

func (g *generator) sampleIndex(cum []float64) int {
	r := g.rng.Float64() * cum[len(cum)-1]
	idx := sort.SearchFloat64s(cum, r)
	if idx >= len(cum) {
		idx = len(cum) - 1
	}
	return idx
}

// randomDest picks a destination for origin o: usually one within a
// 10-degree box (regional freight), otherwise uniform nationwide,
// never Honolulu (Hawaii traffic is air freight only).
func (g *generator) randomDest(o LatLon) LatLon {
	if g.rng.Float64() < 0.7 {
		near := g.nearbyDests(o, 10.0, 1)
		if len(near) > 0 {
			return near[0]
		}
	}
	for {
		d := g.dests[g.rng.Intn(len(g.dests))]
		if d != locHonolulu && d != locChicago {
			return d
		}
	}
}

// nearbyDests returns up to n destinations within a deg-degree box of
// p (excluding p itself), randomly sampled.
func (g *generator) nearbyDests(p LatLon, deg float64, n int) []LatLon {
	var cands []LatLon
	for _, d := range g.dests {
		if d == p || d == locHonolulu || d == locChicago {
			continue
		}
		if math.Abs(d.Lat-p.Lat) <= deg && math.Abs(d.Lon-p.Lon) <= deg {
			cands = append(cands, d)
		}
	}
	if len(cands) <= n {
		return cands
	}
	g.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands[:n]
}

// nearbyFrom returns a random member of pool within deg degrees of p,
// or p itself if none exists.
func (g *generator) nearbyFrom(pool []LatLon, p LatLon, deg float64) LatLon {
	var cands []LatLon
	for _, q := range pool {
		if q == p {
			continue
		}
		if math.Abs(q.Lat-p.Lat) <= deg && math.Abs(q.Lon-p.Lon) <= deg {
			cands = append(cands, q)
		}
	}
	if len(cands) == 0 {
		return p
	}
	return cands[g.rng.Intn(len(cands))]
}

// calibrateCounts adjusts per-lane transaction counts so the total is
// exactly cfg.NumTransactions.
func (g *generator) calibrateCounts() {
	total := 0
	for _, ln := range g.lanes {
		total += ln.count
	}
	adjustable := make([]*lane, 0, len(g.lanes))
	for _, ln := range g.lanes {
		if ln.kind == laneRandom || ln.kind == laneMegaHub || ln.kind == laneConsolidation {
			adjustable = append(adjustable, ln)
		}
	}
	if len(adjustable) == 0 {
		adjustable = g.lanes
	}
	for total < g.cfg.NumTransactions {
		adjustable[g.rng.Intn(len(adjustable))].count++
		total++
	}
	// Trim first from adjustable lanes, then (if they bottom out at
	// one transaction each) from any lane, so the loop always
	// terminates.
	for _, pool := range [][]*lane{adjustable, g.lanes} {
		for total > g.cfg.NumTransactions {
			reduced := false
			for _, ln := range pool {
				if total <= g.cfg.NumTransactions {
					break
				}
				if ln.count > 1 {
					ln.count--
					total--
					reduced = true
				}
			}
			if !reduced {
				break
			}
		}
	}
}

// baseDate is the first day of the synthetic six-month window.
var baseDate = time.Date(2004, time.January, 5, 0, 0, 0, 0, time.UTC)

func (g *generator) emit() *Dataset {
	cfg := g.cfg
	txns := make([]Transaction, 0, cfg.NumTransactions)
	for _, ln := range g.lanes {
		days := g.laneDays(ln)
		for _, day := range days {
			txns = append(txns, g.makeTransaction(ln, day))
		}
	}
	sort.Slice(txns, func(i, j int) bool {
		if !txns[i].ReqPickup.Equal(txns[j].ReqPickup) {
			return txns[i].ReqPickup.Before(txns[j].ReqPickup)
		}
		if txns[i].Origin != txns[j].Origin {
			return lessLatLon(txns[i].Origin, txns[j].Origin)
		}
		return lessLatLon(txns[i].Dest, txns[j].Dest)
	})
	for i := range txns {
		txns[i].ID = i + 1
	}
	return &Dataset{Transactions: txns}
}

func lessLatLon(a, b LatLon) bool {
	if a.Lat != b.Lat {
		return a.Lat < b.Lat
	}
	return a.Lon < b.Lon
}

// weeklySchedule returns distribution days spaced `step` days apart
// from a random weekday start, spanning the generation window.
func (g *generator) weeklySchedule(step int) []int {
	if step < 1 {
		step = 7
	}
	start := g.rng.Intn(7)
	for isWeekend(start) {
		start = g.rng.Intn(7)
	}
	var days []int
	for day := start; day < g.cfg.Days; day += step {
		days = append(days, day)
	}
	if len(days) == 0 {
		days = []int{0}
	}
	return days
}

// weekendSchedule returns every Saturday or Sunday (picked once) in
// the generation window.
func (g *generator) weekendSchedule() []int {
	target := time.Saturday
	if g.rng.Intn(2) == 1 {
		target = time.Sunday
	}
	var days []int
	for day := 0; day < g.cfg.Days; day++ {
		if baseDate.AddDate(0, 0, day).Weekday() == target {
			days = append(days, day)
		}
	}
	if len(days) == 0 {
		days = []int{0}
	}
	return days
}

// laneDays picks the pickup-day offsets for a lane's transactions:
// an explicit schedule when the lane has one, weekly cadence with
// jitter for recurring lanes, weekday-biased uniform otherwise.
func (g *generator) laneDays(ln *lane) []int {
	if len(ln.days) > 0 {
		return ln.days
	}
	days := make([]int, 0, ln.count)
	if ln.recurring {
		start := g.rng.Intn(7)
		for isWeekend(start) {
			start = g.rng.Intn(7)
		}
		step := 7 * (1 + g.rng.Intn(2)) // weekly or bi-weekly
		day := start
		for len(days) < ln.count {
			jitter := g.rng.Intn(3) - 1
			d := day + jitter
			if d < 0 {
				d = 0
			}
			if d >= g.cfg.Days {
				d = g.rng.Intn(g.cfg.Days)
			}
			days = append(days, d)
			day += step
			if day >= g.cfg.Days {
				day = g.rng.Intn(7)
			}
		}
		return days
	}
	for len(days) < ln.count {
		d := g.rng.Intn(g.cfg.Days)
		for tries := 0; tries < 3 && isWeekend(d) && g.rng.Float64() < 0.9; tries++ {
			d = g.rng.Intn(g.cfg.Days) // weekends are nearly idle
		}
		days = append(days, d)
	}
	return days
}

func isWeekend(dayOffset int) bool {
	wd := baseDate.AddDate(0, 0, dayOffset).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

func (g *generator) makeTransaction(ln *lane, day int) Transaction {
	pickup := baseDate.AddDate(0, 0, day)
	weight := ln.baseWeight * (0.95 + g.rng.Float64()*0.10)
	hours := ln.distance/ln.speed + 1 + g.rng.Float64()*6
	if ln.kind == laneAir {
		hours = 10 + g.rng.Float64()*10 // under 24 hours
	}
	if hours > 140 {
		hours = 140 - g.rng.Float64()*10
	}
	transitDays := int(math.Ceil(hours / 24))
	if transitDays < 1 {
		transitDays = 1
	}
	delivery := pickup.AddDate(0, 0, transitDays)

	mode := Truckload
	if weight < 10000 {
		mode = LessThanTruckload
	}
	if g.rng.Float64() < g.cfg.ModeNoise {
		if mode == Truckload {
			mode = LessThanTruckload
		} else {
			mode = Truckload
		}
	}
	return Transaction{
		ReqPickup:    pickup,
		ReqDelivery:  delivery,
		Origin:       ln.origin,
		Dest:         ln.dest,
		Distance:     math.Round(ln.distance*10) / 10,
		GrossWeight:  math.Round(weight),
		TransitHours: math.Round(hours*100) / 100,
		Mode:         mode,
	}
}

// roadMiles approximates road distance as great-circle distance
// scaled by a circuity factor.
func roadMiles(a, b LatLon) float64 {
	const earthRadiusMi = 3958.8
	const circuity = 1.18
	lat1, lon1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	lat2, lon2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dlat, dlon := lat2-lat1, lon2-lon1
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	d := 2 * earthRadiusMi * math.Asin(math.Sqrt(h))
	miles := d * circuity
	if miles < 5 {
		miles = 5
	}
	return miles
}

// Validate checks internal consistency of a configuration before
// generation and returns a descriptive error for unusable settings.
func (c GenConfig) Validate() error {
	switch {
	case c.NumTransactions < 1:
		return fmt.Errorf("dataset: NumTransactions %d < 1", c.NumTransactions)
	case c.NumLocations < 10:
		return fmt.Errorf("dataset: NumLocations %d < 10", c.NumLocations)
	case c.NumOrigins < 1 || c.NumOrigins > c.NumLocations:
		return fmt.Errorf("dataset: NumOrigins %d out of range [1, %d]", c.NumOrigins, c.NumLocations)
	case c.NumDestinations < 1 || c.NumDestinations > c.NumLocations:
		return fmt.Errorf("dataset: NumDestinations %d out of range [1, %d]", c.NumDestinations, c.NumLocations)
	case c.NumOrigins+c.NumDestinations < c.NumLocations:
		return fmt.Errorf("dataset: origins (%d) + destinations (%d) < locations (%d)",
			c.NumOrigins, c.NumDestinations, c.NumLocations)
	case c.NumODPairs < 1:
		return fmt.Errorf("dataset: NumODPairs %d < 1", c.NumODPairs)
	case c.Days < 1:
		return fmt.Errorf("dataset: Days %d < 1", c.Days)
	case c.ModeNoise < 0 || c.ModeNoise > 1:
		return fmt.Errorf("dataset: ModeNoise %f out of [0, 1]", c.ModeNoise)
	}
	return nil
}
