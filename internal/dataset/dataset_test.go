package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testData(t testing.TB) *Dataset {
	t.Helper()
	return Generate(TestConfig())
}

func TestGenerateMatchesConfig(t *testing.T) {
	cfg := TestConfig()
	d := Generate(cfg)
	s := d.Summarize()
	if s.NumTransactions != cfg.NumTransactions {
		t.Errorf("transactions = %d, want %d", s.NumTransactions, cfg.NumTransactions)
	}
	if s.DistinctODPairs != cfg.NumODPairs {
		t.Errorf("od pairs = %d, want %d", s.DistinctODPairs, cfg.NumODPairs)
	}
	if s.DistinctLocations > cfg.NumLocations {
		t.Errorf("locations = %d > %d", s.DistinctLocations, cfg.NumLocations)
	}
	if s.DistinctOrigins > cfg.NumOrigins {
		t.Errorf("origins = %d > %d", s.DistinctOrigins, cfg.NumOrigins)
	}
	if s.DistinctDestinations > cfg.NumDestinations {
		t.Errorf("destinations = %d > %d", s.DistinctDestinations, cfg.NumDestinations)
	}
	if s.OutDegMax != cfg.MegaHubFanout {
		t.Errorf("max out-degree = %d, want %d", s.OutDegMax, cfg.MegaHubFanout)
	}
	if s.InDegMax != cfg.ConsolidationFanin {
		t.Errorf("max in-degree = %d, want %d", s.InDegMax, cfg.ConsolidationFanin)
	}
	// At full scale both minimums are exactly 1 (verified in the
	// EXPERIMENTS harness); at test scale they stay small.
	if s.OutDegMin < 1 || s.OutDegMin > 2 || s.InDegMin < 1 || s.InDegMin > 2 {
		t.Errorf("degree minimums = %d/%d, want 1..2", s.OutDegMin, s.InDegMin)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestConfig())
	b := Generate(TestConfig())
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Transactions {
		if a.Transactions[i] != b.Transactions[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
}

func TestGenerateAirFreightOutliers(t *testing.T) {
	d := testData(t)
	honolulu := LatLon{21.3, -157.9}
	air := 0
	for _, tx := range d.Transactions {
		if tx.Dest == honolulu {
			air++
			if tx.TransitHours >= 24 {
				t.Errorf("air shipment with %v transit hours, want < 24", tx.TransitHours)
			}
			if tx.Distance <= 3000 {
				t.Errorf("air shipment distance = %v, want > 3000", tx.Distance)
			}
		} else if tx.TransitHours < 24 && tx.Distance > 3000 {
			// The defining property of the paper's cluster 0: only air
			// freight moves 3,000+ miles in under a day.
			t.Errorf("road shipment moved %v mi in %v h", tx.Distance, tx.TransitHours)
		}
	}
	if air != TestConfig().AirFreightLoads {
		t.Errorf("air shipments = %d, want %d", air, TestConfig().AirFreightLoads)
	}
}

func TestGenerateModeMatchesWeight(t *testing.T) {
	d := testData(t)
	agree := 0
	for _, tx := range d.Transactions {
		expected := Truckload
		if tx.GrossWeight < 10000 {
			expected = LessThanTruckload
		}
		if tx.Mode == expected {
			agree++
		}
	}
	rate := float64(agree) / float64(d.Len())
	if rate < 0.93 || rate > 0.99 {
		t.Errorf("weight-mode agreement %.3f, want ~0.96 (4%% noise)", rate)
	}
}

func TestGenerateDatesWithinWindow(t *testing.T) {
	cfg := TestConfig()
	d := Generate(cfg)
	last := baseDate.AddDate(0, 0, cfg.Days-1)
	for _, tx := range d.Transactions {
		if tx.ReqPickup.Before(baseDate) || tx.ReqPickup.After(last) {
			t.Fatalf("pickup %v outside [%v, %v]", tx.ReqPickup, baseDate, last)
		}
		if tx.ReqDelivery.Before(tx.ReqPickup) {
			t.Fatalf("delivery %v before pickup %v", tx.ReqDelivery, tx.ReqPickup)
		}
		if tx.ReqDelivery.Sub(tx.ReqPickup) > 10*24*time.Hour {
			t.Fatalf("active window too long: %v", tx.ReqDelivery.Sub(tx.ReqPickup))
		}
	}
}

func TestGenerateCoordinatesRounded(t *testing.T) {
	d := testData(t)
	for _, tx := range d.Transactions[:50] {
		for _, p := range []LatLon{tx.Origin, tx.Dest} {
			if math.Abs(p.Lat*10-math.Round(p.Lat*10)) > 1e-9 {
				t.Fatalf("latitude %v not on 0.1 grid", p.Lat)
			}
			if math.Abs(p.Lon*10-math.Round(p.Lon*10)) > 1e-9 {
				t.Fatalf("longitude %v not on 0.1 grid", p.Lon)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testData(t)
	small := &Dataset{Transactions: d.Transactions[:200]}
	var buf bytes.Buffer
	if err := small.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != small.Len() {
		t.Fatalf("round-trip length %d != %d", back.Len(), small.Len())
	}
	for i := range small.Transactions {
		a, b := small.Transactions[i], back.Transactions[i]
		if a.ID != b.ID || a.Origin != b.Origin || a.Dest != b.Dest || a.Mode != b.Mode {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.ReqPickup.Equal(b.ReqPickup) || !a.ReqDelivery.Equal(b.ReqDelivery) {
			t.Fatalf("row %d dates mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header": "X,Y\n",
		"bad mode": "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,MOVE_TRANSIT_HOURS,TRANS_MODE\n" +
			"1,2004-01-05,2004-01-06,44.5,-88.0,41.9,-87.6,200,5000,6,WRONG\n",
		"bad date": "ID,REQ_PICKUP_DT,REQ_DELIVERY_DT,ORIGIN_LATITUDE,ORIGIN_LONGITUDE,DEST_LATITUDE,DEST_LONGITUDE,TOTAL_DISTANCE,GROSS_WEIGHT,MOVE_TRANSIT_HOURS,TRANS_MODE\n" +
			"1,notadate,2004-01-06,44.5,-88.0,41.9,-87.6,200,5000,6,TL\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBuildGraphStructural(t *testing.T) {
	d := testData(t)
	g := d.BuildGraph(GraphOptions{Attr: GrossWeight, Vertices: UniformLabels})
	if g.Name != "OD_GW" {
		t.Errorf("name = %s", g.Name)
	}
	if g.NumEdges() != d.Len() {
		t.Errorf("edges = %d, want one per transaction (%d)", g.NumEdges(), d.Len())
	}
	if labels := g.VertexLabels(); len(labels) != 1 || labels[0] != "*" {
		t.Errorf("uniform labels = %v", labels)
	}
	if n := len(g.EdgeLabels()); n < 2 || n > 7 {
		t.Errorf("weight-bin labels = %d, want 2..7", n)
	}
}

func TestBuildGraphUniqueLabels(t *testing.T) {
	d := testData(t)
	g := d.BuildGraph(GraphOptions{Attr: TransitHours, Vertices: UniqueLabels})
	if g.Name != "OD_TH" {
		t.Errorf("name = %s", g.Name)
	}
	if len(g.VertexLabels()) != g.NumVertices() {
		t.Errorf("unique labels: %d labels for %d vertices", len(g.VertexLabels()), g.NumVertices())
	}
}

func TestBuildGraphExactLabelsExplode(t *testing.T) {
	d := testData(t)
	small := &Dataset{Transactions: d.Transactions[:500]}
	binned := small.BuildGraph(GraphOptions{Attr: GrossWeight})
	exact := small.BuildGraph(GraphOptions{Attr: GrossWeight, ExactLabels: true})
	if len(exact.EdgeLabels()) <= len(binned.EdgeLabels())*10 {
		t.Errorf("exact labels = %d, binned = %d; expected explosion (the paper's motivation for binning)",
			len(exact.EdgeLabels()), len(binned.EdgeLabels()))
	}
}

func TestScaledConfigValid(t *testing.T) {
	for _, f := range []float64{0.01, 0.025, 0.1, 0.5, 1.0} {
		cfg := DefaultConfig().Scaled(f)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Scaled(%v): %v", f, err)
		}
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scaled(0) should panic")
		}
	}()
	DefaultConfig().Scaled(0)
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := TestConfig()
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.NumTransactions = 0 },
		func(c *GenConfig) { c.NumLocations = 5 },
		func(c *GenConfig) { c.NumOrigins = 0 },
		func(c *GenConfig) { c.NumOrigins = c.NumLocations + 1 },
		func(c *GenConfig) { c.NumDestinations = 0 },
		func(c *GenConfig) { c.Days = 0 },
		func(c *GenConfig) { c.ModeNoise = 1.5 },
		func(c *GenConfig) { c.NumOrigins = 10; c.NumDestinations = 10 },
	}
	for i, mutate := range mutations {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestRound01Property(t *testing.T) {
	f := func(lat, lon float64) bool {
		if math.IsNaN(lat) || math.IsInf(lat, 0) || math.Abs(lat) > 1e6 {
			return true
		}
		if math.IsNaN(lon) || math.IsInf(lon, 0) || math.Abs(lon) > 1e6 {
			return true
		}
		p := LatLon{lat, lon}.Round01()
		return math.Abs(p.Lat*10-math.Round(p.Lat*10)) < 1e-6 &&
			math.Abs(p.Lon*10-math.Round(p.Lon*10)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterDatesAndSample(t *testing.T) {
	d := testData(t)
	s := d.Summarize()
	mid := s.MinPickup.AddDate(0, 0, 30)
	first := d.FilterDates(s.MinPickup, mid)
	if first.Len() == 0 || first.Len() >= d.Len() {
		t.Errorf("filtered = %d of %d", first.Len(), d.Len())
	}
	for _, tx := range first.Transactions {
		if tx.ReqPickup.After(mid) {
			t.Fatal("date filter leaked")
		}
	}
	half := d.Sample(2)
	if got, want := half.Len(), (d.Len()+1)/2; got != want {
		t.Errorf("sample = %d, want %d", got, want)
	}
}

func TestLatLonString(t *testing.T) {
	p := LatLon{44.5, -88.0}
	if p.String() != "44.5,-88.0" {
		t.Errorf("String = %q", p.String())
	}
}

func TestLocationsSortedDistinct(t *testing.T) {
	d := testData(t)
	locs := d.Locations()
	for i := 1; i < len(locs); i++ {
		if !lessLatLon(locs[i-1], locs[i]) {
			t.Fatalf("locations not strictly sorted at %d: %v %v", i, locs[i-1], locs[i])
		}
	}
}

func TestWriteARFF(t *testing.T) {
	d := testData(t)
	small := &Dataset{Transactions: d.Transactions[:10]}
	var buf bytes.Buffer
	if err := small.WriteARFF(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"@RELATION transportation_od",
		"@ATTRIBUTE TRANS_MODE {TL,LTL}",
		"@DATA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ARFF missing %q", want)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < 10+14 {
		t.Errorf("ARFF too short: %d lines", lines)
	}
}
