// Package dataset models the origin–destination (OD) transportation
// transactions of Section 3 / Table 1 of the paper, provides a CSV
// codec, summary statistics, a calibrated synthetic data generator
// (the paper's six-month Schneider National dataset is proprietary),
// and construction of the three labeled OD graphs OD_GW, OD_TH and
// OD_TD used throughout the experiments.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mode is the TRANS_MODE attribute: Truckload or Less-than-Truckload.
type Mode string

// The two shipment modes in the dataset.
const (
	Truckload         Mode = "TL"
	LessThanTruckload Mode = "LTL"
)

// LatLon is a latitude/longitude pair rounded to the nearest 0.1
// degree, as in the source data.
type LatLon struct {
	Lat, Lon float64
}

// Round01 returns p with both coordinates rounded to 0.1 degree.
func (p LatLon) Round01() LatLon {
	return LatLon{Lat: math.Round(p.Lat*10) / 10, Lon: math.Round(p.Lon*10) / 10}
}

// String renders the point as "lat,lon" with one decimal, the unique
// vertex label format of Section 6.
func (p LatLon) String() string { return fmt.Sprintf("%.1f,%.1f", p.Lat, p.Lon) }

// Transaction is one row of the OD dataset: a single load moved from
// origin to destination (Table 1 of the paper).
type Transaction struct {
	ID           int       // unique transaction identifier
	ReqPickup    time.Time // requested pickup date
	ReqDelivery  time.Time // requested delivery date
	Origin       LatLon    // origin, to nearest 0.1 degree
	Dest         LatLon    // destination, to nearest 0.1 degree
	Distance     float64   // road miles between origin and destination
	GrossWeight  float64   // weight of the load, pounds
	TransitHours float64   // hours to get from origin to destination
	Mode         Mode      // TL or LTL
}

// ODPair returns the (origin, destination) pair of t.
func (t Transaction) ODPair() ODPair { return ODPair{t.Origin, t.Dest} }

// ODPair is an ordered origin–destination pair; the dataset contains
// 20,900 distinct ones.
type ODPair struct {
	Origin, Dest LatLon
}

// Dataset is an in-memory OD transaction table.
type Dataset struct {
	Transactions []Transaction
}

// Len returns the number of transactions.
func (d *Dataset) Len() int { return len(d.Transactions) }

// Summary holds the dataset-level statistics reported in Section 3.
type Summary struct {
	NumTransactions      int
	DistinctLocations    int // distinct lat-lon pairs (origins ∪ destinations)
	DistinctOrigins      int
	DistinctDestinations int
	DistinctODPairs      int
	Days                 int // distinct pickup dates
	MinPickup, MaxPickup time.Time
	WeightMin, WeightMax float64
	DistMin, DistMax     float64
	HoursMin, HoursMax   float64

	// Degree statistics over distinct OD pairs (the form the paper
	// reports: out 1/2373/12, in 1/832/6).
	OutDegMin, OutDegMax int
	OutDegAvg            float64
	InDegMin, InDegMax   int
	InDegAvg             float64
}

// Summarize computes the Section 3 statistics for d.
func (d *Dataset) Summarize() Summary {
	s := Summary{NumTransactions: len(d.Transactions)}
	if len(d.Transactions) == 0 {
		return s
	}
	origins := make(map[LatLon]bool)
	dests := make(map[LatLon]bool)
	locs := make(map[LatLon]bool)
	pairs := make(map[ODPair]bool)
	days := make(map[string]bool)
	s.WeightMin, s.DistMin, s.HoursMin = math.Inf(1), math.Inf(1), math.Inf(1)
	s.MinPickup = d.Transactions[0].ReqPickup
	s.MaxPickup = d.Transactions[0].ReqPickup
	for _, t := range d.Transactions {
		origins[t.Origin] = true
		dests[t.Dest] = true
		locs[t.Origin] = true
		locs[t.Dest] = true
		pairs[t.ODPair()] = true
		days[t.ReqPickup.Format("2006-01-02")] = true
		s.WeightMin = math.Min(s.WeightMin, t.GrossWeight)
		s.WeightMax = math.Max(s.WeightMax, t.GrossWeight)
		s.DistMin = math.Min(s.DistMin, t.Distance)
		s.DistMax = math.Max(s.DistMax, t.Distance)
		s.HoursMin = math.Min(s.HoursMin, t.TransitHours)
		s.HoursMax = math.Max(s.HoursMax, t.TransitHours)
		if t.ReqPickup.Before(s.MinPickup) {
			s.MinPickup = t.ReqPickup
		}
		if t.ReqPickup.After(s.MaxPickup) {
			s.MaxPickup = t.ReqPickup
		}
	}
	s.DistinctOrigins = len(origins)
	s.DistinctDestinations = len(dests)
	s.DistinctLocations = len(locs)
	s.DistinctODPairs = len(pairs)
	s.Days = len(days)

	outDeg := make(map[LatLon]int, len(origins))
	inDeg := make(map[LatLon]int, len(dests))
	for p := range pairs {
		outDeg[p.Origin]++
		inDeg[p.Dest]++
	}
	s.OutDegMin, s.OutDegMax, s.OutDegAvg = degreeStats(outDeg)
	s.InDegMin, s.InDegMax, s.InDegAvg = degreeStats(inDeg)
	return s
}

func degreeStats(deg map[LatLon]int) (min, max int, avg float64) {
	min = -1
	total := 0
	for _, d := range deg {
		total += d
		if min == -1 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == -1 {
		min = 0
	}
	if len(deg) > 0 {
		avg = float64(total) / float64(len(deg))
	}
	return min, max, avg
}

// String renders the summary in the style of Section 3.
func (s Summary) String() string {
	return fmt.Sprintf(
		"transactions=%d locations=%d origins=%d destinations=%d od-pairs=%d days=%d\n"+
			"weight=[%.0f, %.0f] lbs, distance=[%.0f, %.0f] mi, transit=[%.1f, %.1f] h\n"+
			"out-degree min/max/avg = %d/%d/%.0f, in-degree min/max/avg = %d/%d/%.0f",
		s.NumTransactions, s.DistinctLocations, s.DistinctOrigins,
		s.DistinctDestinations, s.DistinctODPairs, s.Days,
		s.WeightMin, s.WeightMax, s.DistMin, s.DistMax, s.HoursMin, s.HoursMax,
		s.OutDegMin, s.OutDegMax, s.OutDegAvg, s.InDegMin, s.InDegMax, s.InDegAvg)
}

// Locations returns the distinct lat-lon pairs appearing as origin or
// destination, in deterministic (lat, lon) order.
func (d *Dataset) Locations() []LatLon {
	set := make(map[LatLon]bool)
	for _, t := range d.Transactions {
		set[t.Origin] = true
		set[t.Dest] = true
	}
	locs := make([]LatLon, 0, len(set))
	for p := range set {
		locs = append(locs, p)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Lat != locs[j].Lat {
			return locs[i].Lat < locs[j].Lat
		}
		return locs[i].Lon < locs[j].Lon
	})
	return locs
}

// FilterDates returns a dataset containing the transactions whose
// requested pickup date falls in [from, to] (inclusive).
func (d *Dataset) FilterDates(from, to time.Time) *Dataset {
	out := &Dataset{}
	for _, t := range d.Transactions {
		if !t.ReqPickup.Before(from) && !t.ReqPickup.After(to) {
			out.Transactions = append(out.Transactions, t)
		}
	}
	return out
}

// Sample returns a dataset containing every k-th transaction,
// preserving order. Sample(1) copies the dataset.
func (d *Dataset) Sample(k int) *Dataset {
	if k < 1 {
		k = 1
	}
	out := &Dataset{}
	for i := 0; i < len(d.Transactions); i += k {
		out.Transactions = append(out.Transactions, d.Transactions[i])
	}
	return out
}
