package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tnd_test_ops_total", "kind", "put")
	g := r.Gauge("tnd_test_depth")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(2)
				g.Add(-2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	// Same name+labels must return the same instrument.
	if r.Counter("tnd_test_ops_total", "kind", "put") != c {
		t.Fatal("lookup did not return the existing counter")
	}
	// Label order must not matter.
	a := r.Counter("tnd_test_multi", "b", "2", "a", "1")
	b := r.Counter("tnd_test_multi", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Add(1)
	g.Set(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tnd_test_x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("tnd_test_x")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tnd_test_seconds", []float64{0.01, 0.1, 1})
	// 100 observations: 50 in (0,0.01], 40 in (0.01,0.1], 9 in
	// (0.1,1], 1 in +Inf.
	for i := 0; i < 50; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.5)
	}
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 50*0.005 + 40*0.05 + 9*0.5 + 5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	wantBuckets := []int64{50, 40, 9, 1}
	for i, n := range s.Buckets {
		if n != wantBuckets[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, n, wantBuckets[i])
		}
	}
	// p50 falls exactly at the top of the first bucket.
	if p50 := s.Quantile(0.5); math.Abs(p50-0.01) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.01", p50)
	}
	// p99 lands in the (0.1,1] bucket: rank 99 of 90..99 -> 0.1 + 0.9*(9/9).
	if p99 := s.Quantile(0.99); p99 < 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want within (0.1,1]", p99)
	}
	// Quantile in the +Inf bucket reports the highest finite bound.
	if p := s.Quantile(1); p != 1 {
		t.Fatalf("p100 = %g, want 1 (capped at highest bound)", p)
	}
	// Boundary semantics: a value equal to a bound is <= that bound.
	h2 := r.Histogram("tnd_test_exact_seconds", []float64{1, 2})
	h2.Observe(1)
	if got := h2.Snapshot().Buckets[0]; got != 1 {
		t.Fatalf("observation at bound landed in bucket %v", h2.Snapshot().Buckets)
	}
}

func TestHistogramConcurrentExact(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per || s.Buckets[0] != workers*per {
		t.Fatalf("count=%d bucket0=%d, want %d", s.Count, s.Buckets[0], workers*per)
	}
	if math.Abs(s.Sum-float64(workers*per)*0.5) > 1e-6 {
		t.Fatalf("sum = %g, want %g", s.Sum, float64(workers*per)*0.5)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tnd_test_requests_total", "route", "GET /v1/patterns/{code}").Add(3)
	r.Gauge("tnd_test_depth").Set(7)
	r.Histogram("tnd_test_seconds", []float64{0.5, 1}, "route", "GET /x").Observe(0.25)
	r.Counter("tnd_test_esc_total", "v", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tnd_test_requests_total counter\n",
		`tnd_test_requests_total{route="GET /v1/patterns/{code}"} 3` + "\n",
		"# TYPE tnd_test_depth gauge\n",
		"tnd_test_depth 7\n",
		"# TYPE tnd_test_seconds histogram\n",
		`tnd_test_seconds_bucket{route="GET /x",le="0.5"} 1` + "\n",
		`tnd_test_seconds_bucket{route="GET /x",le="1"} 1` + "\n",
		`tnd_test_seconds_bucket{route="GET /x",le="+Inf"} 1` + "\n",
		`tnd_test_seconds_sum{route="GET /x"} 0.25` + "\n",
		`tnd_test_seconds_count{route="GET /x"} 1` + "\n",
		`tnd_test_esc_total{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Each family emits exactly one TYPE line.
	if n := strings.Count(out, "# TYPE tnd_test_seconds "); n != 1 {
		t.Fatalf("TYPE lines for histogram = %d, want 1", n)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("tnd_b_total").Inc()
	r.Counter("tnd_a_total", "m", "y").Inc()
	r.Counter("tnd_a_total", "m", "x").Inc()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Labels != `m="x"` || snap[1].Labels != `m="y"` || snap[2].Name != "tnd_b_total" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
}

func TestLoggerConvention(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	l.Info("remount", "mount", "base", "generation", 2)
	l.Debug("dropped")
	var rec map[string]any
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "\n") {
		t.Fatalf("expected exactly one log line, got %q", buf.String())
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, line)
	}
	if rec["msg"] != "remount" || rec["mount"] != "base" {
		t.Fatalf("unexpected record %v", rec)
	}
	Discard().Info("nowhere")
}
