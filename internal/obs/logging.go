package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a logger following the repo's structured-logging
// convention: one JSON object per line to w, lower-case snake_case
// attribute keys, durations as slog.Duration attrs. Binaries log to
// stderr so machine-readable stdout output stays byte-identical.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops every record; the nil-object
// for optional Logger fields so call sites never nil-check.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
