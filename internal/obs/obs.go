// Package obs is the repo's zero-dependency observability substrate:
// a metrics registry of atomic counters, gauges and fixed-bucket
// histograms, rendered in Prometheus text exposition format, plus the
// structured-logging convention (log/slog, one JSON object per line).
//
// Naming scheme: every metric is prefixed "tnd_", counters end in
// "_total", gauges and histograms name their unit ("_bytes",
// "_seconds"). Series are distinguished by label pairs (mount, route,
// level, ...) passed at lookup time; lookups are get-or-create and
// cheap enough for hot paths when the returned instrument is cached,
// but hot paths should still hold the instrument, not the name.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Library instrumentation
// (engine, store) registers here; servers may substitute their own
// registry via options for test isolation.
var Default = NewRegistry()

// Counter is a monotonically increasing value. All methods are safe
// for concurrent use and nil-safe: a nil *Counter discards updates,
// so optional instrumentation needs no guards at the call site.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0; negative deltas
// are a programming error but are applied as-is rather than panicking
// on a hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depths, open
// readers, resident bytes). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bucket upper bounds are
// set at registration and immutable; an implicit +Inf bucket catches
// the tail. Observe is lock-free: a bucket increment, a count
// increment, and a CAS loop folding the value into the float sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the "le" bucket; past the last bound lands
	// in the implicit +Inf bucket at index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Snapshot returns a consistent-enough copy for tests and quantile
// extraction. Individual loads are atomic; the snapshot as a whole is
// not a single linearization point, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile is Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a point-in-time copy of a Histogram.
// Buckets[i] counts observations in (Bounds[i-1], Bounds[i]]; the
// final entry is the +Inf bucket.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Bounds  []float64
	Buckets []int64
}

// Quantile extracts an estimated quantile (0 <= q <= 1) by linear
// interpolation inside the owning bucket, Prometheus-style. Values in
// the +Inf bucket report the highest finite bound. Returns 0 when
// the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if float64(cum) < rank || n == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets is the default bound set for request/drain latency
// histograms, in seconds: ~25 µs to 10 s, roughly ×2.5 per step so
// 14 buckets cover five decades with usable p99 resolution.
var LatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is the default bound set for small-count distributions
// (batch sizes, codes per request).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels string // canonical rendered form: `a="x",b="y"` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	kind   metricKind
	bounds []float64 // histograms only
	series map[string]*series
}

// Registry owns a namespace of metric families. Lookups are
// get-or-create: the first lookup of a name fixes its kind (and
// bucket bounds for histograms); a later lookup under a different
// kind panics, since that is always a programming error.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter named name with the given label pairs
// (key, value, key, value, ...), creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge named name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram named name with the given label
// pairs. bounds is consulted only on the first lookup of name; every
// series in a family shares the family's bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, bounds, labels).h
}

// labelKey canonicalizes label pairs: sorted by key, rendered as
// `k="escaped"` joined by commas. Odd-length label lists panic.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Series is one named+labeled instrument in a Snapshot.
type Series struct {
	Name   string
	Labels string // canonical `k="v",...` form, "" when unlabeled
	Kind   string // "counter", "gauge" or "histogram"
	Value  int64  // counter/gauge value; histogram count
	Hist   *HistogramSnapshot
}

// Snapshot returns every series in the registry, sorted by name then
// labels — the test-facing view of the registry.
func (r *Registry) Snapshot() []Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for _, f := range r.fams {
		for _, s := range f.series {
			sr := Series{Name: f.name, Labels: s.labels, Kind: f.kind.String()}
			switch f.kind {
			case kindCounter:
				sr.Value = s.c.Value()
			case kindGauge:
				sr.Value = s.g.Value()
			case kindHistogram:
				h := s.h.Snapshot()
				sr.Hist = &h
				sr.Value = h.Count
			}
			out = append(out, sr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (0.0.4): a # TYPE line per family, one line per series,
// histogram families expanded into cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Regroup by family to emit each # TYPE line once; Snapshot is
	// already sorted by name so families are contiguous.
	kinds := make(map[string]string, len(snap))
	for _, s := range snap {
		kinds[s.Name] = s.Kind
	}
	var b strings.Builder
	lastFam := ""
	for _, s := range snap {
		if s.Name != lastFam {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, kinds[s.Name])
			lastFam = s.Name
		}
		switch s.Kind {
		case "counter", "gauge":
			writeSample(&b, s.Name, s.Labels, "", fmt.Sprintf("%d", s.Value))
		case "histogram":
			var cum int64
			for i, n := range s.Hist.Buckets {
				cum += n
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = formatFloat(s.Hist.Bounds[i])
				}
				writeSample(&b, s.Name+"_bucket", s.Labels, `le="`+le+`"`, fmt.Sprintf("%d", cum))
			}
			writeSample(&b, s.Name+"_sum", s.Labels, "", formatFloat(s.Hist.Sum))
			writeSample(&b, s.Name+"_count", s.Labels, "", fmt.Sprintf("%d", s.Hist.Count))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
