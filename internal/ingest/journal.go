package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"

	"tnkd/internal/faultfs"
)

// The ingest journal is an append-only intent log: one line per
// record, each `%08x <json>\n` — a CRC-32 of the JSON payload, a
// space, the payload. Every append is followed by fsync, so a record
// is either fully durable or torn; replay stops at the first torn or
// CRC-mismatched line and truncates the tail, which makes a crash
// mid-append indistinguishable from a crash just before it. Records:
//
//	begin      {batch, sha, gen, store}  — fold intent, before any store write
//	publish    {batch, sha, gen, store}  — generation durably committed (CURRENT renamed)
//	quarantine {batch, sha, reason}      — batch moved to poison/
//	gc         {store}                   — old generation about to be removed
//
// Replay rebuilds the applied-batch set (publish records are the
// double-apply guard) and resolves dangling begins: a begin whose
// store file is durable and whose CURRENT pointer already advanced is
// completed idempotently; anything else is rolled back by deleting
// the partial store file and letting the batch re-fold from the
// spool.
type journalRecord struct {
	Op     string `json:"op"`
	Batch  string `json:"batch,omitempty"`
	SHA    string `json:"sha,omitempty"`
	Gen    int    `json:"gen,omitempty"`
	Store  string `json:"store,omitempty"`
	Reason string `json:"reason,omitempty"`
	Unix   int64  `json:"unix,omitempty"`
}

type journal struct {
	fs   faultfs.FS
	path string
	f    faultfs.File
}

// openJournal replays path (tolerating a torn tail, which it
// truncates away) and opens it for appending.
func openJournal(fsys faultfs.FS, path string) (*journal, []journalRecord, error) {
	recs, keep, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if fi, serr := os.Stat(path); serr == nil && fi.Size() > keep {
		if err := fsys.Truncate(path, keep); err != nil {
			return nil, nil, fmt.Errorf("ingest: truncate torn journal tail: %w", err)
		}
	}
	f, err := fsys.Append(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open journal: %w", err)
	}
	return &journal{fs: fsys, path: path, f: f}, recs, nil
}

// replayJournal parses every intact record and returns them plus the
// byte offset the journal is valid up to.
func replayJournal(path string) ([]journalRecord, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: read journal: %w", err)
	}
	var recs []journalRecord
	var keep int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: an append died mid-line
		}
		rec, ok := parseJournalLine(data[off : off+nl])
		if !ok {
			break // CRC mismatch: treat everything from here as torn
		}
		recs = append(recs, rec)
		off += nl + 1
		keep = int64(off)
	}
	return recs, keep, nil
}

func parseJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// append writes one record and fsyncs it — the durability point every
// processing step pivots on.
func (j *journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("ingest: journal marshal: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := io.WriteString(j.f, line); err != nil {
		return fmt.Errorf("ingest: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ingest: journal sync: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	return j.f.Close()
}
