package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"tnkd/internal/faultfs"
)

// The ingest journal is an append-only intent log: one line per
// record, each `%08x <json>\n` — a CRC-32 of the JSON payload, a
// space, the payload. Every append is followed by fsync, so a record
// is either fully durable or torn; replay stops at the first torn or
// CRC-mismatched line and truncates the tail, which makes a crash
// mid-append indistinguishable from a crash just before it. Records:
//
//	begin      {batch, sha, gen, store}  — fold intent, before any store write
//	publish    {batch, sha, gen, store}  — generation durably committed (CURRENT renamed)
//	quarantine {batch, sha, reason}      — batch moved to poison/
//	gc         {store}                   — old generation about to be removed
//
// Replay rebuilds the applied-batch set (publish records are the
// double-apply guard) and resolves dangling begins: a begin whose
// store file is durable — and whose Meta.SourceBatch/SourceSHA prove
// it was written by *that* begin's batch, not a same-named generation
// from a different batch — is completed idempotently; anything else
// is left for the batch to re-fold from the spool, and a store file
// referenced by CURRENT or by any publish record is never removed.
//
// The journal is periodically checkpointed (rewrite, see the daemon's
// maybeCheckpoint): compacted via write-temp + rename down to the
// publish records of the retained generation window, which bounds
// replay time and memory for a long-lived daemon.
type journalRecord struct {
	Op     string `json:"op"`
	Batch  string `json:"batch,omitempty"`
	SHA    string `json:"sha,omitempty"`
	Gen    int    `json:"gen,omitempty"`
	Store  string `json:"store,omitempty"`
	Reason string `json:"reason,omitempty"`
	Unix   int64  `json:"unix,omitempty"`
}

// errJournal marks journal I/O trouble. It is a daemon-level fault —
// the journal file has nothing to do with any particular batch — so
// the processing loop surfaces it and retries next tick instead of
// charging it to a batch's quarantine counter.
var errJournal = errors.New("ingest: journal unavailable")

type journal struct {
	fs   faultfs.FS
	path string
	f    faultfs.File // nil after a failed rewrite; append reopens lazily
	// count is the number of durable records (replayed + appended
	// since); the daemon checkpoints when it crosses a threshold.
	count int
}

// openJournal replays path (tolerating a torn tail, which it
// truncates away) and opens it for appending.
func openJournal(fsys faultfs.FS, path string) (*journal, []journalRecord, error) {
	recs, keep, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if fi, serr := os.Stat(path); serr == nil && fi.Size() > keep {
		if err := fsys.Truncate(path, keep); err != nil {
			return nil, nil, fmt.Errorf("ingest: truncate torn journal tail: %w", err)
		}
	}
	f, err := fsys.Append(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open journal: %w", err)
	}
	return &journal{fs: fsys, path: path, f: f, count: len(recs)}, recs, nil
}

// replayJournal parses every intact record and returns them plus the
// byte offset the journal is valid up to.
func replayJournal(path string) ([]journalRecord, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: read journal: %w", err)
	}
	var recs []journalRecord
	var keep int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: an append died mid-line
		}
		rec, ok := parseJournalLine(data[off : off+nl])
		if !ok {
			break // CRC mismatch: treat everything from here as torn
		}
		recs = append(recs, rec)
		off += nl + 1
		keep = int64(off)
	}
	return recs, keep, nil
}

func parseJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// append writes one record and fsyncs it — the durability point every
// processing step pivots on. All failures carry errJournal so the
// daemon classifies them as its own trouble, not the batch's.
func (j *journal) append(rec journalRecord) error {
	if j.f == nil {
		f, err := j.fs.Append(j.path)
		if err != nil {
			return fmt.Errorf("%w: reopen: %w", errJournal, err)
		}
		j.f = f
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: marshal: %w", errJournal, err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := io.WriteString(j.f, line); err != nil {
		return fmt.Errorf("%w: append: %w", errJournal, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("%w: sync: %w", errJournal, err)
	}
	j.count++
	return nil
}

// rewrite atomically replaces the journal with exactly recs — the
// checkpoint/compaction step. The old journal stays intact until the
// rename, so a crash anywhere leaves either the full history or the
// compacted one, never a mix. The append handle is closed before the
// rename (a handle to the replaced inode would silently drop every
// later record) and reopened lazily if reopening here fails.
func (j *journal) rewrite(recs []journalRecord) error {
	tmp := j.path + ".tmp"
	f, err := j.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("%w: checkpoint create: %w", errJournal, err)
	}
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("%w: checkpoint marshal: %w", errJournal, err)
		}
		if _, err := fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("%w: checkpoint write: %w", errJournal, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return fmt.Errorf("%w: checkpoint sync: %w", errJournal, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%w: checkpoint close: %w", errJournal, err)
	}
	if j.f != nil {
		j.f.Close() //nolint:errcheck // about to replace the file under it
		j.f = nil
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("%w: checkpoint rename: %w", errJournal, err)
	}
	if err := j.fs.SyncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("%w: checkpoint dir sync: %w", errJournal, err)
	}
	j.count = len(recs)
	nf, err := j.fs.Append(j.path)
	if err != nil {
		// The compacted journal is durable; the next append reopens.
		return fmt.Errorf("%w: checkpoint reopen: %w", errJournal, err)
	}
	j.f = nf
	return nil
}

func (j *journal) Close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
