package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tnkd/internal/faultfs"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// restart reopens a daemon on a healthy filesystem with fresh
// counters — the standard second act of every recovery test.
func restart(t testing.TB, opts Options) *Daemon {
	t.Helper()
	opts.FS = faultfs.OS{}
	opts.Metrics = obs.NewRegistry()
	d, err := New(opts)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	t.Cleanup(func() { d.Close() }) //nolint:errcheck
	return d
}

// TestDanglingBeginNotCompletedForOtherBatch reproduces the silent
// data-loss scenario: batch aa's fold fails transiently (its begin
// record dangles), batch bb then publishes the very generation aa's
// begin named, and the daemon crashes before aa retries. Recovery
// must NOT treat bb's committed generation as proof that aa was
// folded — aa has to re-fold from the spool.
func TestDanglingBeginNotCompletedForOtherBatch(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{},
		// aa's publish rename fails once; bb's then succeeds.
		faultfs.Fault{Op: faultfs.OpRename, Path: "gen-000001.tnd", Kind: faultfs.Error},
		// Crash while archiving bb, after bb's publish record landed.
		faultfs.Fault{Op: faultfs.OpRename, Path: spoolDir + "/bb-batch.json", Kind: faultfs.Crash},
	)
	d, opts := newTestDaemon(t, func(o *Options) { o.FS = inj })
	spoolBatch(t, opts.Dir, "aa-batch.json", testTxns(4, 6))
	spoolBatch(t, opts.Dir, "bb-batch.json", testTxns(6, 8))
	if err := d.Tick(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Tick err = %v, want simulated crash", err)
	}
	d.Close() //nolint:errcheck // crashed

	d2 := restart(t, opts)
	drain(t, d2, nil)

	// aa must have been folded after the restart (to generation 2, on
	// top of bb's generation 1), not journaled away as published.
	if got := d2.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2 (aa re-folded on top of bb)", got)
	}
	if st := d2.Status(); st.Folds != 1 {
		t.Errorf("restart folds = %d, want exactly 1 (aa)", st.Folds)
	}
	want := refDump(t, append(append(testTxns(0, 4), testTxns(6, 8)...), testTxns(4, 6)...))
	if got := currentDump(t, d2); got != want {
		t.Errorf("recovered dump differs from one-shot mine — aa's transactions were lost")
	}
	for _, name := range []string{"aa-batch.json", "bb-batch.json"} {
		if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, name)); err != nil {
			t.Errorf("batch %s not archived: %v", name, err)
		}
	}
}

// TestDanglingBeginRollbackSparesLiveGeneration covers the rollback
// side of the same defect: aa's dangling begin names gen 1, but by
// crash time gen 1 is a committed predecessor published by bb (cc
// moved CURRENT on to gen 2). Recovery must not delete gen 1 — it is
// live lineage inside the keep window.
func TestDanglingBeginRollbackSparesLiveGeneration(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{},
		faultfs.Fault{Op: faultfs.OpRename, Path: "gen-000001.tnd", Kind: faultfs.Error},
		faultfs.Fault{Op: faultfs.OpRename, Path: spoolDir + "/cc-batch.json", Kind: faultfs.Crash},
	)
	d, opts := newTestDaemon(t, func(o *Options) { o.FS = inj })
	spoolBatch(t, opts.Dir, "aa-batch.json", testTxns(4, 6))
	spoolBatch(t, opts.Dir, "bb-batch.json", testTxns(6, 8))
	spoolBatch(t, opts.Dir, "cc-batch.json", testTxns(8, 10))
	if err := d.Tick(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Tick err = %v, want simulated crash", err)
	}
	d.Close() //nolint:errcheck // crashed

	d2 := restart(t, opts)
	gen1 := filepath.Join(opts.Dir, storeDir, genName(1))
	r, err := store.Open(gen1)
	if err != nil {
		t.Fatalf("recovery removed live generation 1: %v", err)
	}
	got1, err := store.DumpPatterns(r)
	r.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	if want1 := refDump(t, append(testTxns(0, 4), testTxns(6, 8)...)); got1 != want1 {
		t.Errorf("generation 1 content changed across recovery")
	}

	drain(t, d2, nil)
	if got := d2.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3 (aa re-folded on top of cc)", got)
	}
	want := refDump(t, append(append(append(testTxns(0, 4), testTxns(6, 8)...), testTxns(8, 10)...), testTxns(4, 6)...))
	if got := currentDump(t, d2); got != want {
		t.Errorf("final dump differs from one-shot mine")
	}
	// KeepGenerations defaults to 3: generation 1 is still inside the
	// window after the fold to 3 and must have survived GC too.
	if _, err := os.Stat(gen1); err != nil {
		t.Errorf("generation 1 missing after drain: %v", err)
	}
}

// TestJournalFailureNotChargedToBatch injects a write error on the
// journal itself with MaxAttempts=1: if the begin-append failure were
// charged to the batch, one journal hiccup would quarantine perfectly
// good data. It must instead surface as daemon trouble and the batch
// must fold on the next tick.
func TestJournalFailureNotChargedToBatch(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpWrite, Path: journalFile, Kind: faultfs.Error,
	})
	d, opts := newTestDaemon(t, func(o *Options) {
		o.FS = inj
		o.MaxAttempts = 1
	})
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.Quarantines != 0 || st.Poisoned != 0 {
		t.Fatalf("journal failure quarantined the batch: %+v", st)
	}
	if st.FoldFailures != 1 || st.LastError == "" {
		t.Errorf("journal failure not surfaced: %+v", st)
	}
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := d.Status(); st.Generation != 1 || st.Quarantines != 0 {
		t.Fatalf("batch did not fold after journal recovered: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, "b-000001.json")); err != nil {
		t.Errorf("batch not archived: %v", err)
	}
}

// TestGCJournalFailureDoesNotKillTick: a transient journal write
// failure during GC must skip the pass and retry next tick, not
// propagate out of Tick (where cmd/tndingest would log.Fatal).
func TestGCJournalFailureDoesNotKillTick(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	drain(t, d, nil)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with a tight GC window and a journal write fault: the
	// first journal write of the first tick is gc's intent record.
	opts.KeepGenerations = 1
	opts.Metrics = obs.NewRegistry()
	opts.FS = faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpWrite, Path: journalFile, Kind: faultfs.Error,
	})
	d2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	gen0 := filepath.Join(opts.Dir, storeDir, genName(0))
	if err := d2.Tick(); err != nil {
		t.Fatalf("Tick returned %v — a transient journal error must not kill the daemon", err)
	}
	if st := d2.Status(); st.LastError == "" {
		t.Error("gc journal failure not surfaced in status")
	}
	if _, err := os.Stat(gen0); err != nil {
		t.Errorf("generation removed although its gc record never became durable: %v", err)
	}
	// Next tick the fault is spent: GC completes.
	if err := d2.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gen0); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("generation 0 still present after retried GC: %v", err)
	}
}

// TestJournalCheckpointBoundsReplay folds enough batches to cross the
// checkpoint threshold and asserts the journal compacts down to the
// retained window's publish records, applied/ is pruned alongside,
// and a restart still honours the double-apply guard for retained
// batches — while a batch older than the window re-folds as new data
// (the documented guard-window semantics).
func TestJournalCheckpointBoundsReplay(t *testing.T) {
	d, opts := newTestDaemon(t, func(o *Options) {
		o.KeepGenerations = 2
		o.CheckpointEvery = 4
	})
	batches := []string{"b-000001.json", "b-000002.json", "b-000003.json", "b-000004.json"}
	for i, name := range batches {
		spoolBatch(t, opts.Dir, name, testTxns(4+i, 5+i))
	}
	drain(t, d, nil)
	if got := d.Generation(); got != 4 {
		t.Fatalf("generation = %d, want 4", got)
	}

	recs, _, err := replayJournal(filepath.Join(opts.Dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records after checkpoint, want 2 (publish of gens 3 and 4): %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Op != "publish" || r.Gen < 3 {
			t.Errorf("checkpointed journal kept %+v, want only in-window publish records", r)
		}
	}
	ents, err := os.ReadDir(filepath.Join(opts.Dir, appliedDir))
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	for _, e := range ents {
		applied = append(applied, e.Name())
	}
	if len(applied) != 2 || applied[0] != "b-000003.json" || applied[1] != "b-000004.json" {
		t.Errorf("applied/ after prune = %v, want the window's two batches", applied)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay is tiny, guard intact for retained batches.
	d2 := restart(t, opts)
	if len(d2.published) != 2 {
		t.Errorf("restart rebuilt %d published entries, want 2", len(d2.published))
	}
	spoolBatch(t, opts.Dir, "b-000004.json", testTxns(7, 8)) // same bytes as the folded copy
	drain(t, d2, nil)
	if st := d2.Status(); st.Folds != 0 || st.Generation != 4 {
		t.Fatalf("retained batch was re-folded after checkpoint: %+v", st)
	}

	// A batch whose generation aged out of the window is no longer
	// guarded: re-spooling it folds it again as new data.
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 5))
	drain(t, d2, nil)
	if st := d2.Status(); st.Folds != 1 || st.Generation != 5 {
		t.Errorf("aged-out batch should re-fold as new data: %+v", st)
	}
}
