package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tnkd/internal/faultfs"
	"tnkd/internal/graph"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// TestWindowSlideConvergence is the ingest half of the sliding-window
// exactness claim: a daemon with Window=3 folds four batches onto a
// one-unit seed, and after every fold the published generation must be
// byte-identical to a one-shot mine of exactly the window's
// transactions, with the window provenance (unit bounds, per-unit
// sizes, retired count) visible in both the store metadata and the
// /v1/ingest/status view.
func TestWindowSlideConvergence(t *testing.T) {
	d, opts := newTestDaemon(t, func(o *Options) { o.Window = 3 })

	steps := []struct {
		name       string
		txns       []*graph.Graph // arriving batch
		window     []*graph.Graph // expected window contents after the fold
		start, end int            // expected 1-based unit bounds
		units      []int          // expected Meta.WindowSizes
		retired    int            // transactions retired by this fold
	}{
		{"b-000001.json", testTxns(4, 6), testTxns(0, 6), 1, 2, []int{4, 2}, 0},
		{"b-000002.json", testTxns(6, 8), testTxns(0, 8), 1, 3, []int{4, 2, 2}, 0},
		{"b-000003.json", testTxns(8, 10), testTxns(4, 10), 2, 4, []int{2, 2, 2}, 4},
		{"b-000004.json", testTxns(10, 12), testTxns(6, 12), 3, 5, []int{2, 2, 2}, 2},
	}
	for i, s := range steps {
		spoolBatch(t, opts.Dir, s.name, s.txns)
		drain(t, d, nil)
		if got := d.Generation(); got != i+1 {
			t.Fatalf("after %s: generation = %d, want %d", s.name, got, i+1)
		}
		if got, want := currentDump(t, d), refDump(t, s.window); got != want {
			t.Errorf("after %s: dump differs from one-shot mine of the window", s.name)
		}
		st := d.Status()
		if st.Window != 3 || st.WindowStart != s.start || st.WindowEnd != s.end ||
			st.WindowUnits != len(s.units) || st.Retired != s.retired {
			t.Errorf("after %s: status window = cfg %d units %d..%d (%d) retired %d, want cfg 3 units %d..%d (%d) retired %d",
				s.name, st.Window, st.WindowStart, st.WindowEnd, st.WindowUnits, st.Retired,
				s.start, s.end, len(s.units), s.retired)
		}
		r, err := store.Open(d.CurrentPath())
		if err != nil {
			t.Fatal(err)
		}
		m := r.Meta()
		if len(m.WindowSizes) != len(s.units) {
			t.Fatalf("after %s: WindowSizes = %v, want %v", s.name, m.WindowSizes, s.units)
		}
		total := 0
		for j, u := range m.WindowSizes {
			if u != s.units[j] {
				t.Errorf("after %s: WindowSizes = %v, want %v", s.name, m.WindowSizes, s.units)
			}
			total += u
		}
		if n := r.NumTransactions(); n != total || n != len(s.window) {
			t.Errorf("after %s: store holds %d transactions, WindowSizes sum %d, want %d",
				s.name, n, total, len(s.window))
		}
		r.Close() //nolint:errcheck
	}

	// The window state lives in the store metadata alone, so a clean
	// restart must keep sliding from where the old daemon stopped.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	spoolBatch(t, opts.Dir, "b-000005.json", testTxns(12, 14))
	drain(t, d2, nil)
	if got := d2.Generation(); got != 5 {
		t.Fatalf("generation after restart = %d, want 5", got)
	}
	if got, want := currentDump(t, d2), refDump(t, testTxns(8, 14)); got != want {
		t.Errorf("post-restart slide differs from one-shot mine of the window")
	}
	if st := d2.Status(); st.WindowStart != 4 || st.WindowEnd != 6 || st.Retired != 2 {
		t.Errorf("post-restart status window = %d..%d retired %d, want 4..6 retired 2", st.WindowStart, st.WindowEnd, st.Retired)
	}
}

// TestCrashMatrixWindow reruns the crash matrix with a sliding window
// small enough that the second fold retires the seed unit: every
// filesystem operation of the run — including the ones inside the
// retirement publish — gets a kill-and-restart leg, and recovery must
// converge to the byte-identical store a never-killed windowed daemon
// publishes (a fresh mine of exactly the final window's transactions).
func TestCrashMatrixWindow(t *testing.T) {
	tmpl, topts := crashTemplate(t)
	topts.Window = 2
	// Final window after both folds: units [b1, b2] — the seed's 4
	// transactions retired during the second fold's publish.
	want := refDump(t, testTxns(4, 8))

	probeDir := t.TempDir()
	copyDir(t, tmpl, probeDir)
	probe := faultfs.NewInjector(faultfs.OS{})
	popts := topts
	popts.Dir = filepath.Join(probeDir, "data")
	popts.Seed = filepath.Join(probeDir, "seed.tnd")
	popts.FS = probe
	popts.Metrics = obs.NewRegistry()
	pd, err := New(popts)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, pd, nil)
	pd.Close() //nolint:errcheck
	ops := probe.Ops()
	if ops < 20 {
		t.Fatalf("clean windowed run used only %d fs ops — injection coverage looks broken", ops)
	}
	t.Logf("clean windowed run: %d injectable ops", ops)

	for k := 0; k < ops; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, tmpl, dir)
			opts := topts
			opts.Dir = filepath.Join(dir, "data")
			opts.Seed = filepath.Join(dir, "seed.tnd")
			opts.Metrics = obs.NewRegistry()
			opts.FS = faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
				Op: faultfs.OpAny, After: k, Kind: faultfs.Crash, Keep: -1,
			})

			d, err := New(opts)
			if err == nil {
				for i := 0; i < 20 && err == nil; i++ {
					err = d.Tick()
					if d.Status().SpoolBacklog == 0 {
						break
					}
				}
				d.Close() //nolint:errcheck // possibly crashed mid-write
			}
			if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("unexpected non-crash error: %v", err)
			}

			runToCompletion(t, opts)
			r, err := store.Open(filepath.Join(opts.Dir, storeDir, genName(2)))
			if err != nil {
				t.Fatalf("final generation missing: %v", err)
			}
			defer r.Close()
			m := r.Meta()
			if m.Generation != 2 {
				t.Fatalf("final generation = %d, want 2", m.Generation)
			}
			if m.WindowStart != 2 || m.WindowEnd != 3 || m.Retired != 4 || len(m.WindowSizes) != 2 {
				t.Errorf("final window meta = units %d..%d retired %d sizes %v, want 2..3 retired 4 sizes [2 2]",
					m.WindowStart, m.WindowEnd, m.Retired, m.WindowSizes)
			}
			got, err := store.DumpPatterns(r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("recovered dump differs from uninterrupted windowed mine")
			}
			for _, name := range []string{"b-000001.json", "b-000002.json"} {
				if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, name)); err != nil {
					t.Errorf("batch %s not archived exactly once: %v", name, err)
				}
			}
			if ents, _ := os.ReadDir(filepath.Join(opts.Dir, poisonDir)); len(ents) != 0 {
				t.Errorf("crash recovery poisoned %d entries", len(ents))
			}
			if ents, _ := os.ReadDir(filepath.Join(opts.Dir, spoolDir)); len(ents) != 0 {
				t.Errorf("%d spool entries left behind", len(ents))
			}
		})
	}
}
