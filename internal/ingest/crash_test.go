package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tnkd/internal/faultfs"
	"tnkd/internal/obs"
	"tnkd/internal/serve"
	"tnkd/internal/store"
)

// copyDir clones a template data directory so every crash-matrix leg
// starts from the identical pre-run state.
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashTemplate builds the shared starting state: a seed store plus
// two spooled batches, no daemon run yet — so seed adoption itself is
// inside the crash matrix.
func crashTemplate(t testing.TB) (tmpl string, opts Options) {
	t.Helper()
	tmpl = t.TempDir()
	seed := filepath.Join(tmpl, "seed.tnd")
	mineToStore(t, seed, testTxns(0, 4), 0)
	data := filepath.Join(tmpl, "data")
	if err := os.MkdirAll(filepath.Join(data, spoolDir), 0o755); err != nil {
		t.Fatal(err)
	}
	spoolBatch(t, data, "b-000001.json", testTxns(4, 6))
	spoolBatch(t, data, "b-000002.json", testTxns(6, 8))
	opts = Options{
		Dir:        data,
		Seed:       seed,
		MinSupport: testMinSupport,
		JitterSeed: 1,
	}
	return tmpl, opts
}

// runToCompletion drives a daemon on a healthy filesystem until both
// batches are folded.
func runToCompletion(t testing.TB, opts Options) {
	t.Helper()
	opts.FS = nil
	opts.Metrics = obs.NewRegistry()
	d, err := New(opts)
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	defer d.Close()
	clock := newFakeClock()
	d.now = clock.Now
	drain(t, d, clock)
}

// TestCrashMatrix is the tentpole proof: enumerate every filesystem
// operation of a clean adopt-and-fold-two-batches run, kill the
// daemon at each one (with the interrupted write torn in half),
// restart on a healthy filesystem, and require exact convergence —
// the same generation count, a pattern dump byte-identical to a
// one-shot mine, both batches archived exactly once, nothing lost,
// nothing poisoned.
func TestCrashMatrix(t *testing.T) {
	tmpl, topts := crashTemplate(t)
	want := refDump(t, testTxns(0, 8))

	// Probe the clean run's op count.
	probeDir := t.TempDir()
	copyDir(t, tmpl, probeDir)
	probe := faultfs.NewInjector(faultfs.OS{})
	popts := topts
	popts.Dir = filepath.Join(probeDir, "data")
	popts.Seed = filepath.Join(probeDir, "seed.tnd")
	popts.FS = probe
	popts.Metrics = obs.NewRegistry()
	pd, err := New(popts)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, pd, nil)
	pd.Close() //nolint:errcheck
	ops := probe.Ops()
	if ops < 20 {
		t.Fatalf("clean run used only %d fs ops — injection coverage looks broken", ops)
	}
	t.Logf("clean run: %d injectable ops", ops)

	for k := 0; k < ops; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, tmpl, dir)
			opts := topts
			opts.Dir = filepath.Join(dir, "data")
			opts.Seed = filepath.Join(dir, "seed.tnd")
			opts.Metrics = obs.NewRegistry()
			opts.FS = faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
				Op: faultfs.OpAny, After: k, Kind: faultfs.Crash, Keep: -1,
			})

			d, err := New(opts)
			if err == nil {
				// Tick until the crash bites or the work happens to finish
				// (the fault can land after the last op of the run).
				for i := 0; i < 20 && err == nil; i++ {
					err = d.Tick()
					if d.Status().SpoolBacklog == 0 {
						break
					}
				}
				d.Close() //nolint:errcheck // possibly crashed mid-write
			}
			if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("unexpected non-crash error: %v", err)
			}

			// Restart on a healthy filesystem and require convergence.
			runToCompletion(t, opts)
			r, err := store.Open(filepath.Join(opts.Dir, storeDir, genName(2)))
			if err != nil {
				t.Fatalf("final generation missing: %v", err)
			}
			defer r.Close()
			if g := r.Meta().Generation; g != 2 {
				t.Fatalf("final generation = %d, want 2", g)
			}
			got, err := store.DumpPatterns(r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("recovered dump differs from uninterrupted one-shot mine")
			}
			for _, name := range []string{"b-000001.json", "b-000002.json"} {
				if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, name)); err != nil {
					t.Errorf("batch %s not archived exactly once: %v", name, err)
				}
			}
			if ents, _ := os.ReadDir(filepath.Join(opts.Dir, poisonDir)); len(ents) != 0 {
				t.Errorf("crash recovery poisoned %d entries", len(ents))
			}
			if ents, _ := os.ReadDir(filepath.Join(opts.Dir, spoolDir)); len(ents) != 0 {
				t.Errorf("%d spool entries left behind", len(ents))
			}
		})
	}
}

// TestServingContinuityUnderCrashLoop is the headline robustness
// claim: a serve.Server keeps answering every query from generation N
// while the ingest daemon dies at seeded-random filesystem operations
// and restarts, over and over, until all batches are folded. Zero
// failed queries, generations only move forward, and the final store
// matches the one-shot mine.
func TestServingContinuityUnderCrashLoop(t *testing.T) {
	tmpl, topts := crashTemplate(t)
	const batches = 4
	data := filepath.Join(tmpl, "data")
	spoolBatch(t, data, "b-000003.json", testTxns(8, 10))
	spoolBatch(t, data, "b-000004.json", testTxns(10, 12))
	want := refDump(t, testTxns(0, 12))

	dir := t.TempDir()
	copyDir(t, tmpl, dir)
	topts.Dir = filepath.Join(dir, "data")
	topts.Seed = filepath.Join(dir, "seed.tnd")

	// Adopt the seed cleanly so the server has a generation to mount,
	// but leave every batch unfolded.
	boot, err := New(Options{Dir: topts.Dir, Seed: topts.Seed, MinSupport: testMinSupport, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	genPath := boot.CurrentPath()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := store.Open(genPath)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New([]serve.Mount{{Name: "tiny", Reader: rd}}, serve.Options{
		Parallelism: 2, Metrics: obs.NewRegistry(),
	})
	defer srv.Close() //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remount := func(path string) error {
		_, err := srv.RemountAuto(path)
		if errors.Is(err, serve.ErrProvenance) {
			return ErrRemountStale
		}
		return err
	}

	// Query hammer: every response must be a 200 with a parseable
	// store listing, and each client's sequential observations of the
	// served generation must never regress. (Monotonicity is per
	// client, not global: a response served from generation N may
	// legitimately finish its write after a concurrent client already
	// observed N+1 — the swap drains in-flight requests.)
	stop := make(chan struct{})
	var failures atomic.Int64
	var lastGen atomic.Int64
	var regressions atomic.Int64
	var queries atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			prev := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/v1/stores")
				if err != nil {
					failures.Add(1)
					continue
				}
				var stores []struct {
					Generation int `json:"generation"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&stores)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != http.StatusOK || len(stores) != 1 {
					failures.Add(1)
					continue
				}
				queries.Add(1)
				g := int64(stores[0].Generation)
				if g < prev {
					regressions.Add(1)
				}
				prev = g
				for {
					cur := lastGen.Load()
					if g <= cur || lastGen.CompareAndSwap(cur, g) {
						break
					}
				}
			}
		}()
	}

	// Crash loop: run the daemon with a crash scheduled at a seeded-
	// random op count, let it die, restart, repeat until the spool
	// drains; a final fault-free pass proves convergence.
	rng := rand.New(rand.NewSource(42))
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; ; round++ {
		if time.Now().After(deadline) {
			t.Fatal("crash loop did not converge in time")
		}
		opts := topts
		opts.Metrics = obs.NewRegistry()
		opts.Remount = remount
		opts.JitterSeed = int64(round + 1)
		done := false
		if round < 40 {
			opts.FS = faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
				Op: faultfs.OpAny, After: rng.Intn(60), Kind: faultfs.Crash, Keep: -1,
			})
		}
		d, err := New(opts)
		if err == nil {
			clock := newFakeClock()
			d.now = clock.Now
			var terr error
			for i := 0; i < 60 && terr == nil; i++ {
				terr = d.Tick()
				st := d.Status()
				if st.SpoolBacklog == 0 && !st.PendingRemount {
					done = true
					break
				}
				clock.Advance(time.Minute)
			}
			err = terr
			d.Close() //nolint:errcheck
		}
		if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("round %d: unexpected error: %v", round, err)
		}
		if done {
			break
		}
	}
	// Let the hammer observe the final remounted generation before
	// stopping it.
	for waited := 0; lastGen.Load() != batches && waited < 200; waited++ {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if q := queries.Load(); q == 0 {
		t.Fatal("query hammer never completed a request")
	}
	if f := failures.Load(); f != 0 {
		t.Errorf("%d failed queries during crash loop", f)
	}
	if r := regressions.Load(); r != 0 {
		t.Errorf("served generation regressed %d times", r)
	}
	if g := lastGen.Load(); g != batches {
		t.Errorf("final served generation = %d, want %d", g, batches)
	}

	// The served store is byte-identical to the uninterrupted mine.
	final := filepath.Join(topts.Dir, storeDir, genName(batches))
	fr, err := store.Open(final)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	got, err := store.DumpPatterns(fr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("served store differs from one-shot mine")
	}
}
