package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// maxBatchBytes caps a POSTed batch body; spool files written by hand
// are not limited.
const maxBatchBytes = 64 << 20

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/ingest          accept a batch into the spool (202)
//	GET  /v1/ingest/status   daemon health as JSON
//	GET  /metrics            Prometheus text format
//	GET  /healthz            liveness
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", d.handleIngest)
	mux.HandleFunc("GET /v1/ingest/status", d.handleStatus)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		d.opts.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleIngest validates the batch and stages it into the spool via a
// dotted temp name + rename, so the processing loop (and any other
// spool consumer) never sees a half-written file. The fold itself is
// asynchronous: 202, not 200. A client-supplied name that is already
// waiting in the spool is a 409 — silently renaming over a pending
// batch would discard it.
func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(data) > maxBatchBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", maxBatchBytes)
		return
	}
	b, txns, err := DecodeBatch(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(txns) == 0 {
		httpError(w, http.StatusBadRequest, "ingest: batch has no transactions")
		return
	}
	d.mu.Lock()
	d.postSeq++
	seq := d.postSeq
	d.mu.Unlock()
	name := sanitizeBatchName(b.Name)
	if name == "" {
		name = fmt.Sprintf("b-%d-%04d.json", d.now().UnixNano(), seq)
	}
	final := d.path(spoolDir, name)
	tmp := d.path(spoolDir, fmt.Sprintf(".%s.%d.tmp", name, seq))
	if err := d.writeFileSync(tmp, data); err != nil {
		httpError(w, http.StatusInternalServerError, "stage batch: %v", err)
		return
	}
	// Commit under the lock so two same-named posts cannot both pass
	// the existence check: a client-supplied name must never rename
	// over a different batch still waiting in the spool.
	d.mu.Lock()
	if _, err := os.Stat(final); err == nil {
		d.mu.Unlock()
		d.fs.Remove(tmp) //nolint:errcheck // best-effort cleanup
		httpError(w, http.StatusConflict, "batch %q is already spooled; use a different name or omit it", name)
		return
	}
	err = d.fs.Rename(tmp, final)
	d.mu.Unlock()
	if err != nil {
		d.fs.Remove(tmp) //nolint:errcheck // best-effort cleanup
		httpError(w, http.StatusInternalServerError, "spool batch: %v", err)
		return
	}
	d.mBatchesReceived.Inc()
	d.logger.Info("ingest: batch spooled", "batch", name, "transactions", len(txns), "bytes", len(data))
	writeJSON(w, http.StatusAccepted, map[string]any{
		"batch":        name,
		"transactions": len(txns),
	})
}

// sanitizeBatchName reduces a client-supplied name to a safe spool
// basename; anything that survives as a dotfile or temp name (which
// the spool scan would skip forever) is rejected to "".
func sanitizeBatchName(name string) string {
	name = filepath.Base(strings.TrimSpace(name))
	if name == "." || name == string(filepath.Separator) {
		return ""
	}
	if !eligibleBatchName(name) {
		return ""
	}
	if !strings.HasSuffix(name, ".json") {
		name += ".json"
	}
	return name
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Status())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
