// Package ingest is the crash-safe continuous-ingest daemon behind
// cmd/tndingest: it watches a spool directory (and accepts POSTed
// batches) of JSON transaction batches, folds each arrival into the
// current store generation with fsg.AdvanceWindow (retiring the
// units that fall off a configured sliding window, or a pure
// fsg.MineDelta append when Options.Window is 0), publishes
// generation N+1 via write-to-temp + fsync + atomic rename with a
// journaled intent record, triggers the serving layer's hot remount,
// and GCs generations older than K.
//
// Every durability step runs through a faultfs.FS, so the crash-
// matrix tests can kill the daemon at any filesystem operation and
// restart it; the journal (journal.go) plus the CURRENT pointer file
// make every step either idempotently completable or cleanly
// restartable, so a killed-and-restarted daemon converges to the
// byte-identical store a never-killed one produces, never loses a
// spool file, and never applies one twice.
//
// Failure policy: transient errors (fold failure, remount rejection,
// disk trouble) retry under exponential backoff with jitter;
// undecodable batches and batches that keep failing are quarantined
// to poison/ with a structured reason file, so one bad batch cannot
// wedge the pipeline. A corrupt *prior* (fsg.ErrDeltaPrior) and
// journal I/O trouble (errJournal) are daemon-level errors: they are
// surfaced and retried but never charged to the batch that happened
// to trigger them.
package ingest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tnkd/internal/faultfs"
	"tnkd/internal/fsg"
	"tnkd/internal/obs"
	"tnkd/internal/pattern"
	"tnkd/internal/store"
)

// Directory layout under Options.Dir:
//
//	spool/    incoming batch files (*.json); processed in name order
//	store/    gen-NNNNNN.tnd generations + CURRENT pointer + .tmp staging
//	applied/  batches already folded (the anti-double-apply archive)
//	poison/   quarantined batches + <name>.reason.json
//	ingest.journal
const (
	spoolDir    = "spool"
	storeDir    = "store"
	appliedDir  = "applied"
	poisonDir   = "poison"
	currentFile = "CURRENT"
	journalFile = "ingest.journal"
)

func genName(gen int) string { return fmt.Sprintf("gen-%06d.tnd", gen) }

// ErrRemountStale tells the retry loop a remount "failure" actually
// means the serving layer is already at or past the published
// generation (its own spool watch may have raced us there) — success,
// not an error. The cmd layer maps tndserve's 409 responses to it.
var ErrRemountStale = errors.New("ingest: serving layer already at or past this generation")

// errBadBatch marks a batch that can never succeed (undecodable,
// empty): quarantined immediately instead of retried.
var errBadBatch = errors.New("ingest: bad batch")

// Options configures a Daemon.
type Options struct {
	// Dir is the data directory root (required); see the layout above.
	Dir string
	// Seed, when non-empty, is a store file adopted as the initial
	// generation when store/ holds none.
	Seed string
	// FS is the filesystem layer for every durability-relevant
	// mutation (nil = the real OS). Tests thread a faultfs.Injector.
	FS faultfs.FS

	// SupportFraction, when > 0, recomputes the absolute support
	// threshold per fold as a fraction of the combined transaction
	// count — matching core.MineTemporal's SupportFraction semantics,
	// so a fold chain stays byte-identical to a one-shot fractional
	// mine. 0 falls back to MinSupport, then to the current store's
	// recorded threshold.
	SupportFraction float64
	// MinSupport is a fixed absolute support threshold (used when
	// SupportFraction is 0; 0 = inherit the store's Meta.MinSupport).
	MinSupport int
	// MaxEdges/MaxSteps/MaxCandidates/MaxEmbeddings/Parallelism are
	// the fsg.Options knobs for each fold; zero values keep fsg
	// defaults, except MaxEdges/MaxSteps which default to the
	// temporal pipeline's 8/200000 so an ingest fold chain matches
	// cmd/tndtemporal's one-shot results.
	MaxEdges      int
	MaxSteps      int
	MaxCandidates int
	MaxEmbeddings int
	Parallelism   int

	// Window, when > 0, caps the store at the most recent Window
	// ingest units (batches; whatever the adopted seed store held
	// counts as one unit). Each fold then *slides* the window: the
	// arriving batch becomes a new unit, units beyond the cap retire
	// off the front (their TIDs subtracted from every pattern column
	// via fsg.AdvanceWindow, survivors renumbered), and the published
	// generation is byte-identical to a fresh mine of exactly the
	// window's transactions. The unit composition is persisted in
	// Meta.WindowSizes, so a restarted daemon rebuilds the window
	// from the store alone — retirement publishes are journaled and
	// crash-recovered exactly like append folds. SupportFraction is
	// computed over the window's transactions. 0 = append-only
	// (supports only grow; the pre-window behaviour).
	Window int

	// KeepGenerations is GC's K: the current generation plus K-1
	// predecessors survive (minimum 1; default 3). Keep it above 1 so
	// a serving layer still draining the previous generation never
	// has its file unlinked mid-swap (mmaps survive the unlink, but
	// a restarting server would not find the file).
	KeepGenerations int
	// MaxAttempts is how many times a transiently failing batch is
	// tried before quarantine (default 5).
	MaxAttempts int
	// RetryBase/RetryMax bound the exponential backoff between
	// attempts (defaults 100ms and 30s); jitter is ±25%.
	RetryBase time.Duration
	RetryMax  time.Duration
	// JitterSeed seeds the backoff jitter (0 = time-seeded).
	JitterSeed int64
	// PollInterval is Run's spool scan cadence (default 500ms).
	PollInterval time.Duration
	// CheckpointEvery is how many journal records may accumulate
	// before the journal is compacted down to the retained window's
	// publish records and applied/ is pruned alongside (default 512).
	// Compaction bounds restart replay time and memory for a daemon
	// that ingests forever; it also bounds the double-apply guard to
	// the GC window (see maybeCheckpoint).
	CheckpointEvery int

	// Remount, when non-nil, is called with the absolute path of each
	// newly published generation to trigger the serving hot-swap
	// (in-process: serve.Server.RemountAuto; out-of-process: POST to
	// tndserve's /v1/admin/remount). Failures retry under backoff and
	// never quarantine anything; ErrRemountStale counts as success.
	Remount func(path string) error

	// Metrics is the registry ingest instruments into (nil =
	// obs.Default). Logger receives structured logs (nil = discard).
	Metrics *obs.Registry
	Logger  *slog.Logger
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

type attempt struct {
	n    int
	next time.Time
}

// Daemon is the continuous-ingest loop. Run/Tick must be driven from
// one goroutine; Status, Handler and the HTTP endpoints are safe to
// use concurrently with it.
type Daemon struct {
	opts    Options
	fs      faultfs.FS
	journal *journal
	logger  *slog.Logger
	rng     *rand.Rand
	now     func() time.Time
	started time.Time

	// Tick-goroutine state (no lock needed).
	published map[string]int      // batch key -> generation, the double-apply guard
	attempts  map[string]*attempt // batch key -> backoff state
	remountAt time.Time
	remountN  int

	// Shared with the HTTP handlers, under mu.
	mu             sync.Mutex
	reader         *store.Reader
	curGen         int
	curPath        string
	lastFold       time.Duration
	lastErr        string
	pendingRemount string
	postSeq        int

	mFolds, mFoldFailures, mRetries, mQuarantines *obs.Counter
	mRemountFailures, mGC, mBatchesReceived       *obs.Counter
	mGeneration, mSpoolBacklog, mGenAge           *obs.Gauge
	mFoldSeconds                                  *obs.Histogram
}

// New opens (or initialises) the data directory, replays the journal,
// resolves any interrupted publication, and returns a ready daemon.
// The caller owns Close.
func New(opts Options) (*Daemon, error) {
	if opts.Dir == "" {
		return nil, errors.New("ingest: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.KeepGenerations < 1 {
		opts.KeepGenerations = 3
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 30 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 512
	}
	if opts.MaxEdges == 0 {
		opts.MaxEdges = 8
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200000
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default
	}
	if opts.Logger == nil {
		opts.Logger = obs.Discard()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	d := &Daemon{
		opts:      opts,
		fs:        opts.FS,
		logger:    opts.Logger,
		rng:       rand.New(rand.NewSource(seed)),
		now:       opts.Now,
		started:   opts.Now(),
		published: make(map[string]int),
		attempts:  make(map[string]*attempt),
	}
	m := opts.Metrics
	d.mFolds = m.Counter("tnd_ingest_folds_total")
	d.mFoldFailures = m.Counter("tnd_ingest_fold_failures_total")
	d.mRetries = m.Counter("tnd_ingest_retries_total")
	d.mQuarantines = m.Counter("tnd_ingest_quarantines_total")
	d.mRemountFailures = m.Counter("tnd_ingest_remount_failures_total")
	d.mGC = m.Counter("tnd_ingest_gc_total")
	d.mBatchesReceived = m.Counter("tnd_ingest_batches_received_total")
	d.mGeneration = m.Gauge("tnd_ingest_generation")
	d.mSpoolBacklog = m.Gauge("tnd_ingest_spool_backlog")
	d.mGenAge = m.Gauge("tnd_ingest_generation_age_seconds")
	d.mFoldSeconds = m.Histogram("tnd_ingest_fold_seconds", obs.LatencyBuckets)

	for _, sub := range []string{spoolDir, storeDir, appliedDir, poisonDir} {
		if err := os.MkdirAll(d.path(sub), 0o755); err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
	}
	j, recs, err := openJournal(d.fs, d.path(journalFile))
	if err != nil {
		return nil, err
	}
	d.journal = j
	if err := d.recover(recs); err != nil {
		j.Close() //nolint:errcheck // already failing
		return nil, err
	}
	// Startup is the one moment every begin is provably resolved, so a
	// history that outgrew the threshold is compacted right away —
	// the restart already paid the full replay; the next one must not.
	if err := d.maybeCheckpoint(); err != nil && errors.Is(err, faultfs.ErrCrashed) {
		j.Close() //nolint:errcheck
		return nil, err
	}
	if d.opts.Remount != nil {
		// Re-announce the current generation on every start: the swap
		// is idempotent (a stale candidate is rejected harmlessly) and
		// a crash between publish and remount must not strand the
		// serving layer on an old generation forever.
		d.pendingRemount = d.curPath
	}
	d.mGeneration.Set(int64(d.curGen))
	return d, nil
}

func (d *Daemon) path(parts ...string) string {
	return filepath.Join(append([]string{d.opts.Dir}, parts...)...)
}

// Close releases the journal and the current store reader. It does
// not stop a concurrent Run — cancel its context first.
func (d *Daemon) Close() error {
	var first error
	if d.journal != nil {
		if err := d.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.mu.Lock()
	r := d.reader
	d.reader = nil
	d.mu.Unlock()
	if r != nil {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Generation returns the currently published generation.
func (d *Daemon) Generation() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.curGen
}

// CurrentPath returns the file path of the current generation.
func (d *Daemon) CurrentPath() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.curPath
}

// --- recovery ---

// recover establishes the current generation and resolves every
// journaled intent against what actually reached the disk.
func (d *Daemon) recover(recs []journalRecord) error {
	// Double-apply guard: batches with a durable publish record.
	// publishedStores tracks the store files those records name — a
	// begin resolution must never remove one of them.
	dangling := map[string]journalRecord{} // key -> last unresolved begin
	publishedStores := map[string]bool{}
	for _, r := range recs {
		key := r.Batch + "@" + r.SHA
		switch r.Op {
		case "begin":
			dangling[key] = r
		case "publish":
			d.published[key] = r.Gen
			publishedStores[r.Store] = true
			delete(dangling, key)
		case "quarantine":
			delete(dangling, key)
		}
	}

	if err := d.mountCurrent(); err != nil {
		return err
	}

	// Resolve dangling begins in journal order. More than one can
	// dangle at once (a transiently failing batch leaves its begin
	// open while later batches proceed), which is why every resolution
	// below is gated on the store file's own batch identity.
	keys := make([]string, 0, len(dangling))
	for k := range dangling {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return dangling[keys[i]].Unix < dangling[keys[j]].Unix })
	for _, k := range keys {
		if err := d.resolveBegin(dangling[k], publishedStores); err != nil {
			return err
		}
	}

	// Sweep staging strays: interrupted folds and CURRENT renames.
	ents, err := os.ReadDir(d.path(storeDir))
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := d.fs.Remove(d.path(storeDir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("ingest: sweep %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// mountCurrent opens the generation CURRENT points at, falling back
// to the highest openable gen-*.tnd, then to adopting Options.Seed.
func (d *Daemon) mountCurrent() error {
	if name := d.readCurrent(); name != "" {
		if r, err := store.Open(d.path(storeDir, name)); err == nil {
			d.setCurrent(r)
			return nil
		}
		// CURRENT names a missing or torn file — a crash window or
		// manual surgery; fall through to the scan.
		d.logger.Warn("ingest: CURRENT target did not open, scanning generations", "current", name)
	}
	names, err := d.genFiles()
	if err != nil {
		return err
	}
	for i := len(names) - 1; i >= 0; i-- {
		r, err := store.Open(d.path(storeDir, names[i]))
		if err != nil {
			d.logger.Warn("ingest: generation did not open, trying predecessor", "store", names[i], "error", err.Error())
			continue
		}
		d.setCurrent(r)
		return d.writeCurrent(names[i])
	}
	if d.opts.Seed != "" {
		return d.adoptSeed()
	}
	return errors.New("ingest: no store generation found and no Options.Seed to adopt")
}

func (d *Daemon) readCurrent() string {
	data, err := os.ReadFile(d.path(storeDir, currentFile))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// genFiles returns the gen-*.tnd names in store/ in ascending
// generation order.
func (d *Daemon) genFiles() ([]string, error) {
	ents, err := os.ReadDir(d.path(storeDir))
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var names []string
	for _, e := range ents {
		var g int
		if n, _ := fmt.Sscanf(e.Name(), "gen-%06d.tnd", &g); n == 1 && e.Name() == genName(g) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *Daemon) setCurrent(r *store.Reader) {
	d.mu.Lock()
	old := d.reader
	d.reader = r
	d.curGen = r.Meta().Generation
	d.curPath = r.Path()
	d.mu.Unlock()
	if old != nil {
		old.Close() //nolint:errcheck // replaced reader; nothing to do about it
	}
}

// adoptSeed copies Options.Seed into the generation chain as its
// recorded generation and points CURRENT at it.
func (d *Daemon) adoptSeed() error {
	r, err := store.Open(d.opts.Seed)
	if err != nil {
		return fmt.Errorf("ingest: open seed: %w", err)
	}
	if err := r.ValidateDeltaSource(false); err != nil {
		r.Close() //nolint:errcheck
		return fmt.Errorf("ingest: seed cannot source delta folds: %w", err)
	}
	name := genName(r.Meta().Generation)
	data, err := os.ReadFile(d.opts.Seed)
	if err != nil {
		r.Close() //nolint:errcheck
		return fmt.Errorf("ingest: read seed: %w", err)
	}
	r.Close() //nolint:errcheck // reopened from the adopted copy below
	tmp := d.path(storeDir, name+".tmp")
	if err := d.writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("ingest: stage seed: %w", err)
	}
	if err := d.fs.Rename(tmp, d.path(storeDir, name)); err != nil {
		return fmt.Errorf("ingest: adopt seed: %w", err)
	}
	if err := d.fs.SyncDir(d.path(storeDir)); err != nil {
		return fmt.Errorf("ingest: adopt seed: %w", err)
	}
	ar, err := store.Open(d.path(storeDir, name))
	if err != nil {
		return fmt.Errorf("ingest: open adopted seed: %w", err)
	}
	d.setCurrent(ar)
	d.logger.Info("ingest: adopted seed store", "seed", d.opts.Seed, "store", name, "generation", ar.Meta().Generation)
	return d.writeCurrent(name)
}

// writeFileSync writes data via the fault-injectable FS: create,
// write, fsync, close.
func (d *Daemon) writeFileSync(path string, data []byte) error {
	f, err := d.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}

// writeCurrent atomically repoints CURRENT — the publication commit
// point.
func (d *Daemon) writeCurrent(storeName string) error {
	tmp := d.path(storeDir, currentFile+".tmp")
	if err := d.writeFileSync(tmp, []byte(storeName+"\n")); err != nil {
		return fmt.Errorf("ingest: stage CURRENT: %w", err)
	}
	if err := d.fs.Rename(tmp, d.path(storeDir, currentFile)); err != nil {
		return fmt.Errorf("ingest: commit CURRENT: %w", err)
	}
	if err := d.fs.SyncDir(d.path(storeDir)); err != nil {
		return fmt.Errorf("ingest: sync CURRENT: %w", err)
	}
	return nil
}

// beginOwnsStore reports whether meta proves the store file was
// written by exactly the batch the begin record names. Publication is
// only ever completed on a match: generation numbers repeat across
// batches (every in-flight fold targets curGen+1), so name and
// generation alone cannot identify who wrote a file.
func beginOwnsStore(m store.Meta, b journalRecord) bool {
	return m.SourceBatch == b.Batch && m.SourceSHA == b.SHA
}

// resolveBegin decides what a dangling begin record means against the
// disk: a durable store file carrying this begin's own batch identity
// (Meta.SourceBatch/SourceSHA) is finished idempotently; everything
// else leaves the batch in the spool to re-fold. Rollback is
// deliberately timid — a gen file referenced by CURRENT or by any
// publish record is live data and is never removed, even when a
// failed batch's begin happens to name it.
func (d *Daemon) resolveBegin(b journalRecord, publishedStores map[string]bool) error {
	final := d.path(storeDir, b.Store)
	if b.Store == genName(d.curGen) && d.curPath == final {
		if beginOwnsStore(d.reader.Meta(), b) {
			// Crash landed between the CURRENT rename and the publish
			// record: the publication committed. Record and archive.
			return d.completePublication(b)
		}
		// The current generation was published by a *different* batch
		// that reused this begin's target name (this begin's fold
		// failed transiently before the crash). The batch is unfolded:
		// leave it in the spool and touch nothing.
		d.logger.Info("ingest: dangling intent superseded by another batch, will re-fold",
			"store", b.Store, "batch", b.Batch)
		return nil
	}
	if b.Gen == d.curGen+1 {
		if r, err := store.Open(final); err == nil {
			// The fold finished and the store file is durable, but the
			// crash hit before CURRENT advanced. The file was fsynced
			// before its rename, so an openable file here is complete:
			// finish the publication rather than redo the fold — but
			// only if this begin's batch is the one that wrote it.
			m := r.Meta()
			if m.Generation == b.Gen && filepath.Base(m.Parent) == genName(d.curGen) && beginOwnsStore(m, b) {
				if err := d.writeCurrent(b.Store); err != nil {
					r.Close() //nolint:errcheck
					return err
				}
				d.setCurrent(r)
				d.mGeneration.Set(int64(d.curGen))
				d.logger.Info("ingest: completed interrupted publication", "store", b.Store, "generation", b.Gen, "batch", b.Batch)
				return d.completePublication(b)
			}
			r.Close() //nolint:errcheck
			if !beginOwnsStore(m, b) {
				// Another in-flight batch's durable fold — its own begin
				// record resolves it. Hands off.
				return nil
			}
		}
	}
	// The fold never committed. Remove the stray file only when it is
	// provably not live data: ahead of the committed chain, unnamed by
	// any publish record, and either unopenable or carrying this
	// begin's own batch identity. Anything else stays on disk — a
	// re-fold renames over it, and GC handles aged-out generations.
	if b.Gen > d.curGen && !publishedStores[b.Store] && b.Store != genName(d.curGen) {
		remove := true
		if r, err := store.Open(final); err == nil {
			remove = beginOwnsStore(r.Meta(), b)
			r.Close() //nolint:errcheck
		}
		if remove {
			if err := d.fs.Remove(final); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("ingest: roll back %s: %w", b.Store, err)
			}
			d.logger.Info("ingest: rolled back interrupted fold", "store", b.Store, "batch", b.Batch)
			return nil
		}
	}
	d.logger.Info("ingest: dangling intent left unresolved, batch will re-fold", "store", b.Store, "batch", b.Batch)
	return nil
}

// completePublication appends the publish record for a committed
// generation and archives its batch if it still sits in the spool.
func (d *Daemon) completePublication(b journalRecord) error {
	key := b.Batch + "@" + b.SHA
	if err := d.journal.append(journalRecord{Op: "publish", Batch: b.Batch, SHA: b.SHA, Gen: b.Gen, Store: b.Store, Unix: d.now().Unix()}); err != nil {
		return err
	}
	d.published[key] = b.Gen
	spool := d.path(spoolDir, b.Batch)
	if _, err := os.Stat(spool); err == nil {
		if err := d.fs.Rename(spool, d.path(appliedDir, b.Batch)); err != nil {
			return fmt.Errorf("ingest: archive %s: %w", b.Batch, err)
		}
	}
	return nil
}

// --- the processing loop ---

// Run drives Tick until ctx is cancelled. It returns non-nil only on
// a crash-simulation error (tests) — real filesystem trouble is
// retried forever under backoff, because a store daemon's job is to
// outlive transient disk pressure.
func (d *Daemon) Run(ctx context.Context) error {
	tick := time.NewTicker(d.opts.PollInterval)
	defer tick.Stop()
	for {
		if err := d.Tick(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// Tick is one processing pass: fold every due spool batch, trigger a
// pending remount, GC old generations, refresh gauges. It returns
// non-nil only when the injected filesystem reports a simulated
// crash; every real-world error is absorbed into retry state.
func (d *Daemon) Tick() error {
	if err := d.processSpool(); err != nil {
		return err
	}
	if err := d.tryRemount(); err != nil {
		return err
	}
	if err := d.gc(); err != nil {
		return err
	}
	d.refreshGauges()
	return nil
}

// eligibleBatchName mirrors the serve spool rule: no dotfiles, no
// temp markers — POSTed batches are staged under dotted names and
// renamed in atomically.
func eligibleBatchName(name string) bool {
	return !strings.HasPrefix(name, ".") &&
		!strings.Contains(name, ".tmp") && !strings.Contains(name, ".partial")
}

func (d *Daemon) listSpool() ([]string, error) {
	ents, err := os.ReadDir(d.path(spoolDir))
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !eligibleBatchName(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (d *Daemon) processSpool() error {
	names, err := d.listSpool()
	if err != nil {
		d.setLastErr(err)
		return nil
	}
	for _, name := range names {
		data, err := os.ReadFile(d.path(spoolDir, name))
		if err != nil {
			continue // raced away
		}
		sum := sha256.Sum256(data)
		key := name + "@" + hex.EncodeToString(sum[:8])
		if _, done := d.published[key]; done {
			// Already folded in a previous life (the crash hit after
			// publish but before archive): archive without reapplying.
			// Any backoff state is stale — nothing is retried for a
			// published batch, and a lingering entry would block
			// journal checkpointing forever.
			delete(d.attempts, key)
			if err := d.fs.Rename(d.path(spoolDir, name), d.path(appliedDir, name)); err != nil {
				if errors.Is(err, faultfs.ErrCrashed) {
					return err
				}
				d.setLastErr(err)
			}
			d.logger.Info("ingest: batch already applied, archived", "batch", name)
			continue
		}
		if at := d.attempts[key]; at != nil && d.now().Before(at.next) {
			continue
		}
		err = d.applyBatch(name, key, hex.EncodeToString(sum[:8]), data)
		switch {
		case err == nil:
			delete(d.attempts, key)
		case errors.Is(err, faultfs.ErrCrashed):
			return err
		case errors.Is(err, fsg.ErrDeltaPrior):
			// The *prior* store is unusable — a daemon-level fault, not
			// this batch's. Surface it and retry next tick; quarantining
			// the batch would scapegoat good data.
			d.mFoldFailures.Inc()
			d.setLastErr(err)
			d.logger.Error("ingest: current store cannot seed delta folds", "error", err.Error())
			return nil
		case errors.Is(err, errJournal):
			// Journal trouble (disk pressure on the journal file) is
			// likewise the daemon's fault, never the batch's: retry the
			// whole pass next tick without touching its attempt count.
			d.mFoldFailures.Inc()
			d.setLastErr(err)
			d.logger.Error("ingest: journal unavailable, retrying next tick", "batch", name, "error", err.Error())
			return nil
		default:
			d.mFoldFailures.Inc()
			d.setLastErr(err)
			at := d.attempts[key]
			if at == nil {
				at = &attempt{}
				d.attempts[key] = at
			}
			at.n++
			if errors.Is(err, errBadBatch) || at.n >= d.opts.MaxAttempts {
				if qerr := d.quarantine(name, key, err, at.n); qerr != nil {
					if errors.Is(qerr, faultfs.ErrCrashed) {
						return qerr
					}
					d.setLastErr(qerr)
					continue // quarantine itself failed; keep the attempt state
				}
				delete(d.attempts, key)
			} else {
				at.next = d.now().Add(d.backoff(at.n))
				d.mRetries.Inc()
				d.logger.Warn("ingest: fold failed, will retry", "batch", name, "attempt", at.n, "error", err.Error())
			}
		}
	}
	return nil
}

// applyBatch runs the full fold→publish pipeline for one batch. Step
// order is the crash-safety argument:
//
//  1. journal begin (intent durable before any store mutation)
//  2. fold to store/gen-N+1.tnd.tmp (bufio-buffered; checkpointed
//     footers but no rename — invisible to everyone)
//  3. fsync via Writer.Close, atomic rename into gen-N+1.tnd, fsync dir
//  4. CURRENT := gen-N+1.tnd via write-temp + rename  ← commit point
//  5. journal publish (recovery reconstructs it from 4 if we die here)
//  6. archive the spool file (recovery redoes it from the publish map)
//  7. queue the remount trigger (idempotent, retried, never fatal)
func (d *Daemon) applyBatch(name, key, sha string, data []byte) error {
	_, txns, err := DecodeBatch(data)
	if err != nil {
		return fmt.Errorf("%w: %v", errBadBatch, err)
	}
	if len(txns) == 0 {
		return fmt.Errorf("%w: no transactions", errBadBatch)
	}
	gen := d.curGen + 1
	storeName := genName(gen)
	if err := d.journal.append(journalRecord{Op: "begin", Batch: name, SHA: sha, Gen: gen, Store: storeName, Unix: d.now().Unix()}); err != nil {
		return err
	}
	start := time.Now()

	m := d.reader.Meta()
	priorTxns, err := d.reader.Transactions()
	if err != nil {
		return fmt.Errorf("%w: rehydrate transactions: %v", fsg.ErrDeltaPrior, err)
	}
	levels, err := d.reader.AllLevelPatterns()
	if err != nil {
		return fmt.Errorf("%w: rehydrate levels: %v", fsg.ErrDeltaPrior, err)
	}
	// Window accounting: the prior store's unit composition comes from
	// its own metadata (a store without WindowSizes — a seed, or a
	// pre-window generation — is one unit), the arriving batch appends
	// a unit, and units beyond the cap retire off the front. All of it
	// derives from (prior store, batch) alone, so a crash-recovering
	// daemon recomputes the identical fold.
	units := m.WindowSizes
	if len(units) == 0 && len(priorTxns) > 0 {
		units = []int{len(priorTxns)}
	}
	priorEnd := m.WindowEnd
	if priorEnd == 0 {
		priorEnd = len(units)
	}
	priorStart := m.WindowStart
	if priorStart == 0 {
		priorStart = 1
	}
	newUnits := append(append([]int(nil), units...), len(txns))
	winStart, winEnd := priorStart, priorEnd+1
	retireCount := 0
	if d.opts.Window > 0 {
		for len(newUnits) > d.opts.Window {
			retireCount += newUnits[0]
			newUnits = newUnits[1:]
			winStart++
		}
	}

	support := m.MinSupport
	if d.opts.SupportFraction > 0 {
		support = fsg.MinSupportFraction(len(priorTxns)-retireCount+len(txns), d.opts.SupportFraction)
	} else if d.opts.MinSupport > 0 {
		support = d.opts.MinSupport
	}
	prior := fsg.Prior{Txns: priorTxns, Levels: levels, MinSupport: m.MinSupport, Generation: m.Generation}

	meta := store.Meta{
		Name:        m.Name,
		Kind:        m.Kind,
		MinSupport:  support,
		Parent:      d.curPath,
		Generation:  gen,
		SourceBatch: name,
		SourceSHA:   sha,
		Note:        fmt.Sprintf("ingest fold of batch %s (+%d transactions)", name, len(txns)),
	}
	if d.opts.Window > 0 {
		meta.WindowStart, meta.WindowEnd = winStart, winEnd
		meta.Retired = retireCount
		meta.WindowSizes = newUnits
		meta.Note = fmt.Sprintf("ingest window slide on batch %s (+%d transactions, -%d retired, units %d..%d)",
			name, len(txns), retireCount, winStart, winEnd)
	}
	tmp := d.path(storeDir, storeName+".tmp")
	w, err := store.CreateFS(d.fs, tmp, meta)
	if err != nil {
		return err
	}
	whole := append(priorTxns[retireCount:len(priorTxns):len(priorTxns)], txns...)
	if err := w.WriteTransactions(whole); err != nil {
		w.Abort() //nolint:errcheck // crashed FS cannot clean up; recovery sweeps .tmp
		return err
	}
	fsgOpts := fsg.Options{
		MinSupport:    support,
		MaxEdges:      d.opts.MaxEdges,
		MaxSteps:      d.opts.MaxSteps,
		MaxCandidates: d.opts.MaxCandidates,
		MaxEmbeddings: d.opts.MaxEmbeddings,
		Parallelism:   d.opts.Parallelism,
		Logger:        d.logger,
		Checkpoint: func(lv fsg.LevelStats, pats []fsg.Pattern) error {
			return w.WriteLevel(lv.Edges, pats)
		},
	}
	var retired pattern.TIDSet
	for i := 0; i < retireCount; i++ {
		retired.Add(i)
	}
	if _, err := fsg.AdvanceWindow(prior, txns, retired, fsgOpts); err != nil {
		w.Abort() //nolint:errcheck
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	final := d.path(storeDir, storeName)
	if err := d.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := d.fs.SyncDir(d.path(storeDir)); err != nil {
		return err
	}
	if err := d.writeCurrent(storeName); err != nil {
		return err
	}
	// The publication is durable from here: recovery completes the
	// rest idempotently, so later errors must not re-fold the batch.
	d.published[key] = gen
	nr, err := store.Open(final)
	if err != nil {
		return err
	}
	d.setCurrent(nr)
	elapsed := time.Since(start)
	d.mu.Lock()
	d.lastFold = elapsed
	d.lastErr = ""
	if d.opts.Remount != nil {
		d.pendingRemount = final
	}
	d.mu.Unlock()
	d.mFolds.Inc()
	d.mFoldSeconds.Observe(elapsed.Seconds())
	d.mGeneration.Set(int64(gen))
	d.logger.Info("ingest: published generation",
		"batch", name, "generation", gen, "store", storeName,
		"transactions", len(txns), "retired", retireCount,
		"fold_ms", float64(elapsed.Microseconds())/1000)
	if err := d.journal.append(journalRecord{Op: "publish", Batch: name, SHA: sha, Gen: gen, Store: storeName, Unix: d.now().Unix()}); err != nil {
		return err
	}
	if err := d.fs.Rename(d.path(spoolDir, name), d.path(appliedDir, name)); err != nil {
		return err
	}
	return nil
}

// quarantine moves a poisonous batch out of the pipeline with a
// structured reason: journal intent, reason file, then the move.
func (d *Daemon) quarantine(name, key string, cause error, tries int) error {
	sha := ""
	if i := strings.LastIndex(key, "@"); i >= 0 {
		sha = key[i+1:]
	}
	if err := d.journal.append(journalRecord{Op: "quarantine", Batch: name, SHA: sha, Reason: cause.Error(), Unix: d.now().Unix()}); err != nil {
		return err
	}
	reason, err := json.MarshalIndent(map[string]any{
		"batch":    name,
		"sha":      sha,
		"error":    cause.Error(),
		"attempts": tries,
		"unix":     d.now().Unix(),
	}, "", " ")
	if err != nil {
		return err
	}
	if err := d.writeFileSync(d.path(poisonDir, name+".reason.json"), append(reason, '\n')); err != nil {
		return fmt.Errorf("ingest: write quarantine reason: %w", err)
	}
	if err := d.fs.Rename(d.path(spoolDir, name), d.path(poisonDir, name)); err != nil {
		return fmt.Errorf("ingest: quarantine %s: %w", name, err)
	}
	d.mQuarantines.Inc()
	d.logger.Error("ingest: quarantined batch", "batch", name, "attempts", tries, "error", cause.Error())
	return nil
}

// tryRemount pushes the latest published generation at the serving
// layer. Failures back off and retry forever — the fold pipeline
// keeps running, generation N keeps serving, and nothing is ever
// quarantined over a serving hiccup.
func (d *Daemon) tryRemount() error {
	d.mu.Lock()
	pending := d.pendingRemount
	d.mu.Unlock()
	if pending == "" || d.opts.Remount == nil {
		return nil
	}
	if d.now().Before(d.remountAt) {
		return nil
	}
	err := d.opts.Remount(pending)
	if err == nil || errors.Is(err, ErrRemountStale) {
		d.mu.Lock()
		if d.pendingRemount == pending {
			d.pendingRemount = ""
		}
		d.mu.Unlock()
		d.remountN = 0
		if err != nil {
			d.logger.Info("ingest: serving layer already current", "store", pending)
		} else {
			d.logger.Info("ingest: remounted serving layer", "store", pending)
		}
		return nil
	}
	if errors.Is(err, faultfs.ErrCrashed) {
		return err
	}
	d.mRemountFailures.Inc()
	d.remountN++
	d.remountAt = d.now().Add(d.backoff(d.remountN))
	d.setLastErr(fmt.Errorf("remount: %w", err))
	d.logger.Warn("ingest: remount failed, will retry", "store", pending, "attempt", d.remountN, "error", err.Error())
	return nil
}

// gc removes generations older than the KeepGenerations window, then
// checkpoints the journal when it has grown past the threshold. Every
// non-crash error here is transient daemon trouble: surfaced, the
// pass abandoned, retried next tick — GC must never kill the daemon.
func (d *Daemon) gc() error {
	names, err := d.genFiles()
	if err != nil {
		d.setLastErr(err)
		return nil
	}
	cut := d.curGen - d.opts.KeepGenerations + 1
	for _, name := range names {
		var g int
		fmt.Sscanf(name, "gen-%06d.tnd", &g) //nolint:errcheck // genFiles validated the shape
		if g >= cut {
			continue
		}
		if err := d.journal.append(journalRecord{Op: "gc", Store: name, Unix: d.now().Unix()}); err != nil {
			if errors.Is(err, faultfs.ErrCrashed) {
				return err
			}
			d.setLastErr(err)
			d.logger.Warn("ingest: gc journal append failed, retrying next tick", "store", name, "error", err.Error())
			return nil
		}
		if err := d.fs.Remove(d.path(storeDir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			if errors.Is(err, faultfs.ErrCrashed) {
				return err
			}
			d.setLastErr(err)
			continue
		}
		d.mGC.Inc()
		d.logger.Info("ingest: removed old generation", "store", name)
	}
	return d.maybeCheckpoint()
}

// maybeCheckpoint compacts the journal down to the publish records of
// the retained generation window once it has grown past
// CheckpointEvery records, and prunes applied/ to the batches those
// records name. Without this the journal, the in-memory publish map
// and applied/ all grow with all-time batch count, and every restart
// replays the full history. Compaction only runs when no batch is
// mid-retry: a retrying batch has a dangling begin in the journal,
// and dropping it would orphan the rollback state a crash right now
// would need.
//
// Dropping a publish record also drops its double-apply guard, so the
// guard window equals the GC window: re-spooling a batch whose
// generation aged out re-folds it as new data (documented semantics —
// applied/ is pruned in the same step precisely so an operator cannot
// find an "already applied" copy of a batch the daemon no longer
// remembers).
func (d *Daemon) maybeCheckpoint() error {
	if d.journal.count < d.opts.CheckpointEvery || len(d.attempts) != 0 {
		return nil
	}
	cut := d.curGen - d.opts.KeepGenerations + 1
	type pub struct {
		key string
		gen int
	}
	var keep []pub
	drop := map[string]bool{} // batch names whose publish records age out
	for key, gen := range d.published {
		name := key
		if i := strings.LastIndex(key, "@"); i >= 0 {
			name = key[:i]
		}
		if gen >= cut {
			keep = append(keep, pub{key: key, gen: gen})
			delete(drop, name)
			continue
		}
		drop[name] = true
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].gen < keep[j].gen })
	recs := make([]journalRecord, 0, len(keep))
	retained := map[string]bool{}
	for _, p := range keep {
		name, sha := p.key, ""
		if i := strings.LastIndex(p.key, "@"); i >= 0 {
			name, sha = p.key[:i], p.key[i+1:]
		}
		retained[name] = true
		recs = append(recs, journalRecord{Op: "publish", Batch: name, SHA: sha, Gen: p.gen, Store: genName(p.gen), Unix: d.now().Unix()})
	}
	if err := d.journal.rewrite(recs); err != nil {
		if errors.Is(err, faultfs.ErrCrashed) {
			return err
		}
		d.setLastErr(err)
		d.logger.Warn("ingest: journal checkpoint failed, retrying next tick", "error", err.Error())
		return nil
	}
	// The compacted journal is durable: shed the aged-out state. The
	// applied/ sweep is self-healing — it removes anything the
	// retained publish set no longer names, so a crash mid-sweep just
	// leaves files the next checkpoint removes.
	for key, gen := range d.published {
		if gen < cut {
			delete(d.published, key)
		}
	}
	if ents, err := os.ReadDir(d.path(appliedDir)); err == nil {
		for _, e := range ents {
			if e.IsDir() || retained[e.Name()] {
				continue
			}
			if err := d.fs.Remove(d.path(appliedDir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
				if errors.Is(err, faultfs.ErrCrashed) {
					return err
				}
				d.setLastErr(err)
			}
		}
	}
	d.logger.Info("ingest: checkpointed journal", "records", len(recs), "pruned", len(drop))
	return nil
}

func (d *Daemon) backoff(n int) time.Duration {
	b := d.opts.RetryBase
	for i := 1; i < n; i++ {
		b *= 2
		if b >= d.opts.RetryMax {
			b = d.opts.RetryMax
			break
		}
	}
	// ±25% jitter keeps a fleet of retries from thundering together.
	j := b / 4
	if j > 0 {
		b += time.Duration(d.rng.Int63n(int64(2*j))) - j
	}
	if b > d.opts.RetryMax {
		b = d.opts.RetryMax
	}
	return b
}

func (d *Daemon) setLastErr(err error) {
	d.mu.Lock()
	d.lastErr = err.Error()
	d.mu.Unlock()
}

func (d *Daemon) refreshGauges() {
	if names, err := d.listSpool(); err == nil {
		d.mSpoolBacklog.Set(int64(len(names)))
	}
	d.mu.Lock()
	created := int64(0)
	if d.reader != nil {
		created = d.reader.Meta().CreatedUnix
	}
	d.mu.Unlock()
	if created > 0 {
		age := d.now().Unix() - created
		if age < 0 {
			age = 0
		}
		d.mGenAge.Set(age)
	}
}

// countDir is a cheap entry count for status (reason files excluded).
func (d *Daemon) countDir(sub string, skipSuffix string) int {
	ents, err := os.ReadDir(d.path(sub))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() || (skipSuffix != "" && strings.HasSuffix(e.Name(), skipSuffix)) {
			continue
		}
		if !eligibleBatchName(e.Name()) {
			continue
		}
		n++
	}
	return n
}

// Status is the GET /v1/ingest/status view.
type Status struct {
	Generation     int     `json:"generation"`
	Store          string  `json:"store"`
	Transactions   int     `json:"transactions"`
	Patterns       int     `json:"patterns"`
	LastFoldMillis float64 `json:"last_fold_ms"`
	Folds          int64   `json:"folds"`
	FoldFailures   int64   `json:"fold_failures"`
	Retries        int64   `json:"retries"`
	Quarantines    int64   `json:"quarantines"`
	SpoolBacklog   int     `json:"spool_backlog"`
	Poisoned       int     `json:"poisoned"`
	PendingRemount bool    `json:"pending_remount"`
	LastError      string  `json:"last_error,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// Window is the configured sliding-window width in batches (0 =
	// append-only, the window never retires anything). The remaining
	// window fields describe the currently served generation and come
	// from its store metadata: WindowStart..WindowEnd are the 1-based
	// unit bounds of the window, WindowUnits the batches currently
	// inside it, and Retired the transactions the last slide retired.
	Window      int `json:"window,omitempty"`
	WindowStart int `json:"window_start,omitempty"`
	WindowEnd   int `json:"window_end,omitempty"`
	WindowUnits int `json:"window_units,omitempty"`
	Retired     int `json:"retired,omitempty"`
}

// Status reports the daemon's health — safe to call concurrently with
// the processing loop.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	st := Status{
		Generation:     d.curGen,
		LastFoldMillis: float64(d.lastFold.Microseconds()) / 1000,
		PendingRemount: d.pendingRemount != "",
		LastError:      d.lastErr,
	}
	st.Window = d.opts.Window
	if d.reader != nil {
		st.Store = filepath.Base(d.curPath)
		st.Transactions = d.reader.NumTransactions()
		st.Patterns = d.reader.NumPatterns()
		m := d.reader.Meta()
		st.WindowStart = m.WindowStart
		st.WindowEnd = m.WindowEnd
		st.WindowUnits = len(m.WindowSizes)
		st.Retired = m.Retired
	}
	d.mu.Unlock()
	st.Folds = d.mFolds.Value()
	st.FoldFailures = d.mFoldFailures.Value()
	st.Retries = d.mRetries.Value()
	st.Quarantines = d.mQuarantines.Value()
	st.SpoolBacklog = d.countDir(spoolDir, "")
	st.Poisoned = d.countDir(poisonDir, ".reason.json")
	st.UptimeSeconds = d.now().Sub(d.started).Seconds()
	return st
}
