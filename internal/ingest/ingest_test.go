package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tnkd/internal/faultfs"
	"tnkd/internal/fsg"
	"tnkd/internal/graph"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// testTxn builds one deterministic small transaction: A->B "x",
// B->C "y", plus C->A "z" on odd indices, so minsup-2 patterns of
// several sizes exist across any window of them.
func testTxn(i int) *graph.Graph {
	g := graph.New(fmt.Sprintf("t%d", i))
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	if i%2 == 1 {
		g.AddEdge(c, a, "z")
	}
	return g
}

func testTxns(from, to int) []*graph.Graph {
	out := make([]*graph.Graph, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, testTxn(i))
	}
	return out
}

const testMinSupport = 2

// mineToStore writes a checkpointed mine of txns to path — the same
// recipe the daemon's fold uses, so dumps are comparable.
func mineToStore(t testing.TB, path string, txns []*graph.Graph, gen int) {
	t.Helper()
	w, err := store.Create(path, store.Meta{
		Name: "tiny", Kind: "fsg", MinSupport: testMinSupport, Generation: gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	opts := fsg.Options{
		MinSupport: testMinSupport,
		MaxEdges:   8,
		Checkpoint: func(lv fsg.LevelStats, pats []fsg.Pattern) error {
			return w.WriteLevel(lv.Edges, pats)
		},
	}
	if _, err := fsg.Mine(txns, opts); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// refDump is the one-shot oracle: mine all txns in one go and dump.
// An ingest fold chain over the same transactions must match it
// byte-for-byte.
func refDump(t testing.TB, txns []*graph.Graph) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "ref.tnd")
	mineToStore(t, p, txns, 0)
	r, err := store.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d, err := store.DumpPatterns(r)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func currentDump(t testing.TB, d *Daemon) string {
	t.Helper()
	r, err := store.Open(d.CurrentPath())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dump, err := store.DumpPatterns(r)
	if err != nil {
		t.Fatal(err)
	}
	return dump
}

func spoolBatch(t testing.TB, dir, name string, txns []*graph.Graph) {
	t.Helper()
	data, err := EncodeBatch(name, txns)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, spoolDir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// fakeClock lets tests hop over retry backoff without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestDaemon seeds a fresh data dir with a 4-transaction store and
// returns a running daemon plus its options for restarts.
func newTestDaemon(t testing.TB, mut func(*Options)) (*Daemon, Options) {
	t.Helper()
	dir := t.TempDir()
	seed := filepath.Join(dir, "seed.tnd")
	mineToStore(t, seed, testTxns(0, 4), 0)
	opts := Options{
		Dir:        filepath.Join(dir, "data"),
		Seed:       seed,
		MinSupport: testMinSupport,
		JitterSeed: 1,
		Metrics:    obs.NewRegistry(),
		Now:        newFakeClock().Now,
	}
	if mut != nil {
		mut(&opts)
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() }) //nolint:errcheck
	return d, opts
}

// drain ticks until the spool is empty and nothing is pending,
// hopping the clock over any scheduled backoff.
func drain(t testing.TB, d *Daemon, clock *fakeClock) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if err := d.Tick(); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		st := d.Status()
		if st.SpoolBacklog == 0 && !st.PendingRemount {
			return
		}
		if clock != nil {
			clock.Advance(time.Minute)
		}
	}
	t.Fatalf("spool did not drain: %+v", d.Status())
}

func TestHappyPathConvergence(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	spoolBatch(t, opts.Dir, "b-000002.json", testTxns(6, 8))
	drain(t, d, nil)

	if got := d.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	want := refDump(t, testTxns(0, 8))
	if got := currentDump(t, d); got != want {
		t.Errorf("fold chain dump differs from one-shot mine:\n%s", got)
	}
	st := d.Status()
	if st.Folds != 2 || st.FoldFailures != 0 || st.Quarantines != 0 {
		t.Errorf("status = %+v, want 2 clean folds", st)
	}
	for _, name := range []string{"b-000001.json", "b-000002.json"} {
		if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, name)); err != nil {
			t.Errorf("batch %s not archived: %v", name, err)
		}
	}
	// The generation chain must carry lineage the serving layer's
	// provenance check accepts.
	r, err := store.Open(d.CurrentPath())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if m := r.Meta(); filepath.Base(m.Parent) != genName(1) {
		t.Errorf("generation 2 parent = %q, want gen-000001.tnd", m.Parent)
	}
}

// TestRestartIsIdempotent proves a clean stop/start neither refolds
// nor loses anything.
func TestRestartIsIdempotent(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	drain(t, d, nil)
	want := currentDump(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	drain(t, d2, nil)
	if got := d2.Generation(); got != 1 {
		t.Fatalf("generation after restart = %d, want 1", got)
	}
	if got := currentDump(t, d2); got != want {
		t.Errorf("restart changed the published store")
	}
}

func TestQuarantineBadBatch(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	if err := os.WriteFile(filepath.Join(opts.Dir, spoolDir, "bad.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	drain(t, d, nil)
	if _, err := os.Stat(filepath.Join(opts.Dir, poisonDir, "bad.json")); err != nil {
		t.Fatalf("bad batch not quarantined: %v", err)
	}
	reason, err := os.ReadFile(filepath.Join(opts.Dir, poisonDir, "bad.json.reason.json"))
	if err != nil {
		t.Fatalf("no quarantine reason: %v", err)
	}
	var rj struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(reason, &rj); err != nil || rj.Error == "" {
		t.Errorf("reason file not structured JSON with an error: %s", reason)
	}
	st := d.Status()
	if st.Quarantines != 1 || st.Poisoned != 1 || st.Generation != 0 {
		t.Errorf("status after quarantine = %+v", st)
	}
}

// TestRetryBackoffThenSuccess injects one transient rename failure:
// the batch must retry after backoff and then fold cleanly.
func TestRetryBackoffThenSuccess(t *testing.T) {
	clock := newFakeClock()
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpRename, Path: "gen-000001.tnd", Kind: faultfs.Error,
	})
	d, opts := newTestDaemon(t, func(o *Options) {
		o.FS = inj
		o.Now = clock.Now
	})
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))

	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.Generation != 0 || st.Retries != 1 || st.FoldFailures != 1 {
		t.Fatalf("after injected failure: %+v", st)
	}
	// Before the backoff elapses the batch must not be retried.
	if err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := d.Status(); st.Retries != 1 {
		t.Fatalf("retried before backoff elapsed: %+v", st)
	}
	clock.Advance(time.Minute)
	drain(t, d, clock)
	if st := d.Status(); st.Generation != 1 || st.Quarantines != 0 {
		t.Fatalf("after retry: %+v", st)
	}
	if got, want := currentDump(t, d), refDump(t, testTxns(0, 6)); got != want {
		t.Errorf("retried fold dump differs from one-shot mine")
	}
}

// TestQuarantineAfterMaxAttempts keeps the rename failing: the batch
// must land in poison/ after MaxAttempts tries, and later batches
// must still fold — one bad apple cannot wedge the pipeline.
func TestQuarantineAfterMaxAttempts(t *testing.T) {
	clock := newFakeClock()
	// Exactly MaxAttempts rename faults: the poisoned batch burns all
	// three, so the healthy batch after it folds cleanly.
	inj := faultfs.NewInjector(faultfs.OS{})
	for i := 0; i < 3; i++ {
		inj.AddFault(faultfs.Fault{Op: faultfs.OpRename, Path: "gen-000001.tnd", Kind: faultfs.Error})
	}
	d, opts := newTestDaemon(t, func(o *Options) {
		o.FS = inj
		o.Now = clock.Now
		o.MaxAttempts = 3
	})
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	for i := 0; i < 10; i++ {
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Minute)
		if d.Status().Quarantines > 0 {
			break
		}
	}
	st := d.Status()
	if st.Quarantines != 1 || st.Poisoned != 1 {
		t.Fatalf("batch not quarantined after max attempts: %+v", st)
	}
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2 (third attempt quarantines)", st.Retries)
	}

	// A fresh, healthy batch folds on to generation 1 from here. Its
	// transactions differ from the poisoned batch, so the published
	// history is exactly seed + this batch.
	spoolBatch(t, opts.Dir, "b-000002.json", testTxns(6, 8))
	drain(t, d, clock)
	if st := d.Status(); st.Generation != 1 {
		t.Fatalf("pipeline wedged after quarantine: %+v", st)
	}
	want := refDump(t, append(testTxns(0, 4), testTxns(6, 8)...))
	if got := currentDump(t, d); got != want {
		t.Errorf("post-quarantine fold dump differs from one-shot mine")
	}
}

// TestDoubleApplyGuard crashes the daemon after the publication
// committed but before the spool file was archived — the window where
// a naive restart would fold the batch twice.
func TestDoubleApplyGuard(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpRename, Path: spoolDir + "/b-000001.json", Kind: faultfs.Crash,
	})
	d, opts := newTestDaemon(t, func(o *Options) { o.FS = inj })
	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	if err := d.Tick(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Tick err = %v, want simulated crash", err)
	}
	d.Close() //nolint:errcheck // crashed

	opts.FS = faultfs.OS{}           // the restart runs on a healthy filesystem
	opts.Metrics = obs.NewRegistry() // fresh counters: folds must stay 0
	d2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	drain(t, d2, nil)
	st := d2.Status()
	if st.Generation != 1 || st.Folds != 0 {
		t.Fatalf("restart refolded an already-published batch: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, appliedDir, "b-000001.json")); err != nil {
		t.Errorf("batch not archived on recovery: %v", err)
	}
	if got, want := currentDump(t, d2), refDump(t, testTxns(0, 6)); got != want {
		t.Errorf("recovered dump differs from one-shot mine")
	}
}

// TestGCKeepsWindow folds enough generations to trip GC and checks
// exactly the KeepGenerations newest survive.
func TestGCKeepsWindow(t *testing.T) {
	d, opts := newTestDaemon(t, func(o *Options) { o.KeepGenerations = 2 })
	for i := 0; i < 4; i++ {
		spoolBatch(t, opts.Dir, fmt.Sprintf("b-%06d.json", i+1), testTxns(4+i, 5+i))
	}
	drain(t, d, nil)
	if got := d.Generation(); got != 4 {
		t.Fatalf("generation = %d, want 4", got)
	}
	names, err := d.genFiles()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{genName(3), genName(4)}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("surviving generations = %v, want %v", names, want)
	}
	if st := d.Status(); st.Generation != 4 {
		t.Errorf("status generation = %d", st.Generation)
	}
}

// TestRemountRetries drives the remount trigger through failure,
// stale rejection and success.
func TestRemountRetries(t *testing.T) {
	clock := newFakeClock()
	var calls []string
	fail := 2
	d, opts := newTestDaemon(t, func(o *Options) {
		o.Now = clock.Now
		o.Remount = func(path string) error {
			calls = append(calls, filepath.Base(path))
			if fail > 0 {
				fail--
				return errors.New("connection refused")
			}
			return nil
		}
	})
	// New queues a re-announce of the adopted generation.
	drain(t, d, clock)
	if len(calls) < 3 || calls[len(calls)-1] != genName(0) {
		t.Fatalf("remount calls = %v, want retries until success on gen 0", calls)
	}
	n := len(calls)

	spoolBatch(t, opts.Dir, "b-000001.json", testTxns(4, 6))
	drain(t, d, clock)
	if len(calls) != n+1 || calls[len(calls)-1] != genName(1) {
		t.Fatalf("remount calls after fold = %v, want one more for gen 1", calls)
	}
	if st := d.Status(); st.PendingRemount {
		t.Errorf("remount still pending: %+v", st)
	}

	// ErrRemountStale counts as success: no retry storm.
	d.opts.Remount = func(string) error { return ErrRemountStale }
	d.mu.Lock()
	d.pendingRemount = d.curPath
	d.mu.Unlock()
	drain(t, d, clock)
	if st := d.Status(); st.PendingRemount {
		t.Errorf("stale remount left pending: %+v", st)
	}
}

func TestHTTPIngestAndStatus(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	data, err := EncodeBatch("posted", testTxns(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/ingest = %d, want 202", resp.StatusCode)
	}
	var acc struct {
		Batch        string `json:"batch"`
		Transactions int    `json:"transactions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.Batch != "posted.json" || acc.Transactions != 2 {
		t.Fatalf("accept body = %+v", acc)
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, spoolDir, "posted.json")); err != nil {
		t.Fatalf("posted batch not spooled: %v", err)
	}

	// Garbage is rejected at the door, not spooled for later failure.
	resp2, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST garbage = %d, want 400", resp2.StatusCode)
	}

	drain(t, d, nil)

	var st Status
	getJSON(t, ts.URL+"/v1/ingest/status", &st)
	if st.Generation != 1 || st.Folds != 1 || st.SpoolBacklog != 0 {
		t.Fatalf("status = %+v", st)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"tnd_ingest_generation 1",
		"tnd_ingest_folds_total 1",
		"tnd_ingest_batches_received_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPIngestNameConflict: a client-supplied name that is already
// waiting in the spool must be rejected with 409, never renamed over
// — that would silently discard the pending batch.
func TestHTTPIngestNameConflict(t *testing.T) {
	d, opts := newTestDaemon(t, nil)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	first, err := EncodeBatch("dup", testTxns(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}

	second, err := EncodeBatch("dup", testTxns(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(second))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting POST = %d, want 409", resp2.StatusCode)
	}
	got, err := os.ReadFile(filepath.Join(opts.Dir, spoolDir, "dup.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first) {
		t.Error("conflicting POST overwrote the pending batch")
	}
	// No temp staging files may linger after the rejection.
	ents, err := os.ReadDir(filepath.Join(opts.Dir, spoolDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "dup.json" {
			t.Errorf("leftover spool entry %q after 409", e.Name())
		}
	}

	// Once the batch is folded and archived the name is free again.
	drain(t, d, nil)
	resp3, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(second))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("POST after fold = %d, want 202", resp3.StatusCode)
	}
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeBatchName(t *testing.T) {
	cases := map[string]string{
		"day-151":          "day-151.json",
		"day-151.json":     "day-151.json",
		"../../etc/passwd": "passwd.json",
		".hidden":          "",
		"x.tmp":            "",
		"x.partial.json":   "",
		"":                 "",
		"  spaced  ":       "spaced.json",
	}
	for in, want := range cases {
		if got := sanitizeBatchName(in); got != want {
			t.Errorf("sanitizeBatchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	txns := testTxns(0, 3)
	data, err := EncodeBatch("rt", txns)
	if err != nil {
		t.Fatal(err)
	}
	b, decoded, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "rt" || len(decoded) != 3 {
		t.Fatalf("round trip: name=%q n=%d", b.Name, len(decoded))
	}
	for i, g := range decoded {
		if g.NumVertices() != txns[i].NumVertices() || g.NumEdges() != txns[i].NumEdges() {
			t.Errorf("txn %d shape changed in round trip", i)
		}
	}
	// Validation failures.
	for name, body := range map[string]string{
		"dup vertex":   `{"transactions":[{"vertices":[{"id":1,"label":"A"},{"id":1,"label":"B"}],"edges":[{"from":1,"to":1,"label":"e"}]}]}`,
		"unknown edge": `{"transactions":[{"vertices":[{"id":1,"label":"A"}],"edges":[{"from":1,"to":2,"label":"e"}]}]}`,
		"no edges":     `{"transactions":[{"vertices":[{"id":1,"label":"A"}],"edges":[]}]}`,
	} {
		if _, _, err := DecodeBatch([]byte(body)); err == nil {
			t.Errorf("%s: DecodeBatch accepted invalid batch", name)
		}
	}
}

// TestJournalTornTail appends records, tears the tail, and proves
// replay keeps the intact prefix and reopening truncates the tear.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	j, recs, err := openJournal(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		if err := j.append(journalRecord{Op: "begin", Batch: fmt.Sprintf("b%d", i), Gen: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close() //nolint:errcheck

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := openJournal(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close() //nolint:errcheck
	if len(recs) != 2 || recs[1].Batch != "b1" {
		t.Fatalf("torn replay = %+v, want the 2 intact records", recs)
	}
	// The torn bytes are gone: a new append produces a valid record
	// directly after the intact prefix.
	if err := j2.append(journalRecord{Op: "begin", Batch: "b9"}); err != nil {
		t.Fatal(err)
	}
	_, recs2, err := openJournal(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 3 || recs2[2].Batch != "b9" {
		t.Fatalf("post-truncation journal = %+v", recs2)
	}
}
