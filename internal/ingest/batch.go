package ingest

import (
	"encoding/json"
	"fmt"

	"tnkd/internal/graph"
)

// Batch JSON is the spool file / POST /v1/ingest wire format: a named
// list of graph transactions in the same adjacency shape the serving
// layer emits (vertices {id,label}, edges {id,from,to,label}), so a
// client can round-trip graphs between the two daemons without a
// translation layer.

// VertexJSON is one transaction vertex.
type VertexJSON struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
}

// EdgeJSON is one directed labeled transaction edge.
type EdgeJSON struct {
	ID    int    `json:"id"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// GraphJSON is one transaction in adjacency form.
type GraphJSON struct {
	Name     string       `json:"name,omitempty"`
	Vertices []VertexJSON `json:"vertices"`
	Edges    []EdgeJSON   `json:"edges"`
}

// Batch is one ingest unit: the transactions appended to the served
// store by a single delta fold (one generation).
type Batch struct {
	// Name, when set, names the spool file the batch lands under
	// (sanitised); unnamed POSTed batches get a timestamped name.
	Name string `json:"name,omitempty"`
	// Transactions are folded in listed order; their TIDs continue
	// the current store's transaction numbering.
	Transactions []GraphJSON `json:"transactions"`
}

// DecodeBatch parses and validates batch JSON into graph
// transactions. Vertex IDs are remapped to densely assigned ones in
// listed order; edges must reference listed vertices.
func DecodeBatch(data []byte) (*Batch, []*graph.Graph, error) {
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("ingest: batch JSON: %w", err)
	}
	txns := make([]*graph.Graph, 0, len(b.Transactions))
	for i, gj := range b.Transactions {
		name := gj.Name
		if name == "" {
			name = fmt.Sprintf("txn/%d", i)
		}
		g := graph.New(name)
		ids := make(map[int]graph.VertexID, len(gj.Vertices))
		for _, v := range gj.Vertices {
			if _, dup := ids[v.ID]; dup {
				return nil, nil, fmt.Errorf("ingest: batch transaction %d: duplicate vertex id %d", i, v.ID)
			}
			ids[v.ID] = g.AddVertex(v.Label)
		}
		for _, e := range gj.Edges {
			from, ok := ids[e.From]
			if !ok {
				return nil, nil, fmt.Errorf("ingest: batch transaction %d: edge %d references unknown vertex %d", i, e.ID, e.From)
			}
			to, ok := ids[e.To]
			if !ok {
				return nil, nil, fmt.Errorf("ingest: batch transaction %d: edge %d references unknown vertex %d", i, e.ID, e.To)
			}
			g.AddEdge(from, to, e.Label)
		}
		if g.NumEdges() == 0 {
			return nil, nil, fmt.Errorf("ingest: batch transaction %d has no edges", i)
		}
		txns = append(txns, g)
	}
	return &b, txns, nil
}

// EncodeBatch renders transactions as batch JSON — the inverse of
// DecodeBatch, used by the arrival-stream generator and tests.
func EncodeBatch(name string, txns []*graph.Graph) ([]byte, error) {
	b := Batch{Name: name, Transactions: make([]GraphJSON, 0, len(txns))}
	for _, g := range txns {
		gj := GraphJSON{Name: g.Name, Vertices: []VertexJSON{}, Edges: []EdgeJSON{}}
		for _, v := range g.Vertices() {
			gj.Vertices = append(gj.Vertices, VertexJSON{ID: int(v), Label: g.Vertex(v).Label})
		}
		for _, e := range g.Edges() {
			ed := g.Edge(e)
			gj.Edges = append(gj.Edges, EdgeJSON{ID: int(e), From: int(ed.From), To: int(ed.To), Label: ed.Label})
		}
		b.Transactions = append(b.Transactions, gj)
	}
	return json.MarshalIndent(&b, "", " ")
}
