// Package pattern is the shared pattern-with-embeddings store of the
// mining layers: a pattern graph coupled with its exact canonical
// code, the TID list of supporting transactions, and per-TID
// embedding lists (vertex/edge maps into each transaction).
//
// It is the FSG embedding-list idea — the frequent-itemset TID-list
// optimisation carried down to vertex maps — applied to the paper's
// dominant cost (Sections 5–8 of Jiang et al., ICDE 2005): level-wise
// support counting. A (k+1)-edge candidate's occurrences are exactly
// the one-edge extensions of its k-edge parent's occurrences, so
// support counting can extend stored parent embeddings instead of
// re-proving containment from scratch with a full subgraph-
// isomorphism search per (candidate × transaction).
//
// Embedding lists trade memory for that speed, which is the very
// trade-off that made the original FSG exhaust memory on
// transportation-scale data (Section 8). The store therefore meters
// itself: CountOptions.MaxEmbeddings bounds the embeddings a pattern
// may retain, and EnforceBudget bounds a whole level; a pattern over
// budget is demoted to warm-start seeds (SeedsPerTID per
// transaction), and its extensions fall back to an isomorphism
// search only when the seeds miss, so memory stays bounded, results
// stay exact, and the worst case costs what classic counting cost.
//
// The same representation serves both transaction-set mining (FSG:
// many transactions, TID lists) and single-graph discovery (SUBDUE:
// one target, instance lists — see NewSingle).
package pattern

import (
	"strings"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// Pattern couples a pattern graph with its code, support and
// embeddings. The Graph must have dense IDs (true of every graph
// built by Clone+AddVertex+AddEdge), because embeddings are stored in
// dense form.
type Pattern struct {
	Graph *graph.Graph
	// Code is the exact canonical code of Graph (iso.Code): equal
	// codes certify isomorphism, so every dedup site keys patterns by
	// plain string equality. Patterns decoded from legacy version-1
	// stores may instead carry an approximate "~"-prefixed code
	// (pre-canonical miners); only that compat path still needs the
	// SameGraph fallback on equality.
	Code string
	// Support is the number of supporting transactions, TIDs.Len().
	Support int
	// TIDs is the set of supporting transaction indices, stored as
	// word-parallel roaring-style containers; positional iteration
	// (TIDs.All) is ascending and aligns with Embs.
	TIDs TIDSet
	// Embs, when tracked, holds one embedding list per supporting
	// transaction, aligned positionally with TIDs. With Overflowed
	// unset the lists are complete: every embedding of Graph in
	// txns[tid] appears in the tid's list exactly once. (A list may be
	// empty in the degenerate case of a transaction supporting a
	// single-edge pattern only through self-loops, which admit no
	// injective embedding.) With Overflowed set, the lists of the TIDs
	// in Partial are seeds — at most SeedsPerTID true embeddings that
	// warm-start extension counting but cannot prove absence — while
	// the lists of TIDs outside Partial are still complete.
	Embs [][]iso.DenseEmbedding
	// Overflowed marks that at least one transaction's complete
	// enumeration exceeded its budget (or that lists were dropped
	// entirely): support data stays valid, and Partial says which
	// per-TID lists are seeds rather than complete.
	Overflowed bool
	// Partial, on an Overflowed pattern with lists, is the subset of
	// TIDs whose lists are seeds-only. A pattern demoted wholesale has
	// Partial == TIDs; a pattern whose budget tripped midway keeps its
	// already-complete prefix outside Partial, so one exploding
	// transaction no longer costs the whole pattern its lists. Empty
	// on an Overflowed pattern means "unknown" (legacy data): every
	// list is treated as seeds.
	Partial TIDSet
}

// SeedsPerTID is the number of embeddings retained per transaction
// when a pattern's complete enumeration overflows its budget. Seeds
// are true embeddings: if one extends across a candidate's new edge,
// the candidate is supported with no search at all; only when every
// seed fails does support counting fall back to a full isomorphism
// search. Small on purpose — seed memory is O(patterns × TIDs ×
// SeedsPerTID) and sits outside the MaxEmbeddings meter.
const SeedsPerTID = 2

// HasEmbeddings reports whether the per-TID embedding lists are
// present and all complete.
func (p *Pattern) HasEmbeddings() bool {
	return !p.Overflowed && p.Embs != nil
}

// HasSeeds reports whether at least warm-start seed lists are
// present.
func (p *Pattern) HasSeeds() bool { return p.Embs != nil }

// CompleteAt reports whether the pattern's embedding list for tid is
// a complete enumeration (tid must be a member of TIDs): true for an
// unoverflowed tracked pattern, and true on an overflowed one exactly
// when per-TID retention kept that transaction's list out of Partial.
func (p *Pattern) CompleteAt(tid int) bool {
	if p.Embs == nil {
		return false
	}
	if !p.Overflowed {
		return true
	}
	return p.Partial.Len() > 0 && !p.Partial.Contains(tid)
}

// NumEmbeddings returns the total number of stored embeddings across
// all TIDs.
func (p *Pattern) NumEmbeddings() int {
	n := 0
	for _, l := range p.Embs {
		n += len(l)
	}
	return n
}

// retainedEmbeddings counts the embeddings held in complete lists —
// the unit the MaxEmbeddings meter budgets. Seeds (the Partial TIDs'
// lists) sit outside the meter by design.
func (p *Pattern) retainedEmbeddings() int {
	if p.Embs == nil {
		return 0
	}
	if !p.Overflowed {
		return p.NumEmbeddings()
	}
	if p.Partial.Len() == 0 {
		return 0 // unknown which lists are complete: all treated as seeds
	}
	n := 0
	cur := p.Partial.Cursor()
	for pi, tid := range p.TIDs.All() {
		if !cur.Contains(tid) {
			n += len(p.Embs[pi])
		}
	}
	return n
}

// DropEmbeddings discards the embedding lists entirely and marks the
// pattern overflowed; support data is untouched. Extensions of the
// pattern count by classic search only.
func (p *Pattern) DropEmbeddings() {
	p.Embs = nil
	p.Overflowed = true
	p.Partial = TIDSet{}
}

// DemoteToSeeds truncates each per-TID list to at most SeedsPerTID
// embeddings and marks the pattern overflowed with every TID partial:
// what remains are warm-start seeds, no longer a complete
// enumeration.
func (p *Pattern) DemoteToSeeds() {
	for i, l := range p.Embs {
		if len(l) > SeedsPerTID {
			p.Embs[i] = l[:SeedsPerTID:SeedsPerTID]
		}
	}
	p.Overflowed = true
	if p.Embs != nil {
		p.Partial = p.TIDs.Clone()
	}
}

// NewSingle returns a Pattern over one implicit transaction (TID 0)
// holding the given instance list — the single-graph (SUBDUE) view of
// the store.
func NewSingle(g *graph.Graph, code string, embs []iso.DenseEmbedding) *Pattern {
	return &Pattern{
		Graph:   g,
		Code:    code,
		Support: 1,
		TIDs:    NewTIDSet(0),
		Embs:    [][]iso.DenseEmbedding{embs},
	}
}

// Instances returns the embedding list of a single-graph pattern
// (nil when embeddings are not tracked).
func (p *Pattern) Instances() []iso.DenseEmbedding {
	if len(p.Embs) == 0 {
		return nil
	}
	return p.Embs[0]
}

// SameGraph reports whether two pattern graphs with the given codes
// are isomorphic. It exists only for legacy version-1 stores (and as
// a test oracle): the mining path emits exact canonical codes, whose
// plain equality decides isomorphism, but v1 stores may hold the old
// approximate "~"-prefixed codes, which collide between
// non-isomorphic graphs and need an explicit isomorphism check on
// equality.
func SameGraph(codeA string, a *graph.Graph, codeB string, b *graph.Graph) bool {
	if codeA != codeB {
		return false
	}
	if ApproxCode(codeA) {
		return iso.Isomorphic(a, b)
	}
	return true
}

// ApproxCode reports whether code is a legacy approximate code (the
// "~"-prefixed hashed invariants of pre-canonical miners, still
// found in version-1 stores), which needs the SameGraph isomorphism
// fallback on equality. No current miner emits one.
func ApproxCode(code string) bool { return strings.HasPrefix(code, "~") }

// CountOptions tunes CountExtension.
type CountOptions struct {
	// MaxEmbeddings bounds the embeddings the child pattern may
	// retain (0 = unlimited); over budget the child overflows and
	// keeps counting by existence checks only.
	MaxEmbeddings int
	// MaxSteps bounds each fallback isomorphism search (0 =
	// unlimited); searches that exceed it count as non-containment
	// when they found nothing.
	MaxSteps int
}

// CountStats meters one CountExtension call.
type CountStats struct {
	// IsoTests is the number of full isomorphism searches run (only
	// the fallback path runs any).
	IsoTests int
	// BudgetedTests counts searches aborted on MaxSteps with nothing
	// found, treated as non-containment.
	BudgetedTests int
	// Generated is the number of embeddings enumerated — the memory
	// unit MaxEmbeddings budgets.
	Generated int
}

// CountExtension computes the support of child — parent.Graph plus
// the single edge newEdge (IDs preserved) — over txns, incrementally
// when it can. Three tiers, degrading gracefully:
//
//   - Complete parent: each parent embedding is extended across
//     newEdge, so a transaction supports child iff at least one
//     extension exists, and the extensions are exactly child's
//     embeddings there — no isomorphism search at all. The child's
//     lists stay complete until the MaxEmbeddings budget trips
//     (enforced during enumeration: symmetric patterns in dense
//     transactions have combinatorially many embeddings, and the
//     whole point of the meter is never to materialise them), after
//     which the child keeps SeedsPerTID seeds per transaction.
//   - Seeded parent: each seed is tried against newEdge; a hit
//     proves support with no search (a seed extension is a true
//     embedding), and only when every seed misses does a classic
//     budgeted search decide — harvesting one embedding as the
//     child's seed when it succeeds.
//   - Untracked parent (no lists at all): the classic budgeted
//     containment test per transaction, exactly the pre-embedding
//     counter's cost profile.
//
// The tiers apply per transaction: an overflowed parent with per-TID
// partial retention still counts its complete-list TIDs in the first
// tier, and only its Partial TIDs pay the seeded tier.
//
// tidFilter is the candidate TID set (by downward closure, the
// intersection of all isomorphic parents' TID columns); it must be a
// subset of parent.TIDs on the embedding paths. Support counts are
// exact in every tier.
func CountExtension(txns []*graph.Graph, parent *Pattern, child *graph.Graph, code string, newEdge graph.EdgeID, tidFilter TIDSet, opts CountOptions) (*Pattern, CountStats) {
	out := &Pattern{Graph: child, Code: code}
	st := countExtensionInto(out, 0, txns, parent, newEdge, tidFilter, opts)
	return out, st
}

// CountExtensionFrom continues an extension count from a previously
// counted column: base already holds the child pattern's graph, code,
// TID list and embedding lists over the transactions of a prior run
// (a store record rebased onto the child's IDs — see Rebase), and
// counting proceeds over tidFilter, which must be ascending, disjoint
// from and strictly after base.TIDs (the delta-appended transaction
// range). This is the TID-column append of incremental delta mining:
// a pattern already proven over the old transactions pays only for
// the new ones.
//
// The embedding budget resumes where the base column left off (base's
// complete-list embeddings count against opts.MaxEmbeddings exactly
// as if the whole column had been enumerated in one run), appended
// lists stay complete per transaction exactly when the parent's list
// there is complete and the budget holds, and a base without lists (a
// bare store record) keeps the merged column bare — new TIDs are
// decided by existence only. Supports and TID lists are exact in
// every case. base is mutated in place and returned.
func CountExtensionFrom(base *Pattern, txns []*graph.Graph, parent *Pattern, newEdge graph.EdgeID, tidFilter TIDSet, opts CountOptions) (*Pattern, CountStats) {
	if base.Embs == nil && base.TIDs.Len() > 0 {
		// No old lists to align appended lists with: the merged
		// column stays bare (Embs nil) and overflowed.
		base.Overflowed = true
	}
	if opts.MaxEmbeddings > 0 && base.retainedEmbeddings() > opts.MaxEmbeddings {
		// The resumed column already exceeds this run's budget (the
		// prior run was mined under a larger or unlimited one).
		// Demote before resuming, exactly where the one-shot meter
		// would have tripped — otherwise lim would go non-positive in
		// the loop, which ExtendEmbedding reads as unlimited, and the
		// appended transactions would enumerate with no cap at all.
		base.DemoteToSeeds()
	}
	st := countExtensionInto(base, base.retainedEmbeddings(), txns, parent, newEdge, tidFilter, opts)
	return base, st
}

// countExtensionInto is the shared counting loop of CountExtension
// and CountExtensionFrom: it appends the supported transactions of
// tidFilter (and their embedding lists, when out tracks lists) to
// out, with retained complete-list embeddings already counted against
// the budget.
//
// Completeness is decided per transaction. A budget trip truncates
// only the tripping transaction's list to seeds (marking it Partial)
// and stops complete retention for the rest of the loop — the
// complete lists stored before the trip survive, so one exploding
// transaction no longer drops the whole pattern's lists. The
// post-trip transactions still extend the parent's complete lists
// where it has them (absence stays provable without a search); only
// the parent's own Partial TIDs pay the seeded tier's fallback.
func countExtensionInto(out *Pattern, retained int, txns []*graph.Graph, parent *Pattern, newEdge graph.EdgeID, tidFilter TIDSet, opts CountOptions) CountStats {
	var st CountStats
	budget := opts.MaxEmbeddings
	child := out.Graph

	// A column that starts bare but non-empty (CountExtensionFrom on
	// a bare base) must stay bare: appended lists could not align
	// with the TIDs already present.
	trackLists := out.Embs != nil || out.TIDs.Len() == 0
	// exhausted latches once the budget trips: later transactions
	// keep seeds only, exactly the demoted worst case of old runs.
	exhausted := false
	fmax := tidFilter.Max()
	fcur := tidFilter.Cursor()
	pcur := parent.Partial.Cursor()
	var buf []iso.DenseEmbedding
	for pi, tid := range parent.TIDs.All() {
		if tid > fmax {
			break
		}
		if !fcur.Contains(tid) {
			continue
		}
		// An untracked parent (no lists at all) behaves as a seeded
		// parent with zero seeds: every transaction decides by
		// search, at exactly the classic counter's cost.
		var pembs []iso.DenseEmbedding
		if parent.Embs != nil {
			pembs = parent.Embs[pi]
		}
		parentComplete := parent.Embs != nil &&
			(!parent.Overflowed || (parent.Partial.Len() > 0 && !pcur.Contains(tid)))
		txn := txns[tid]

		// Extend the parent's embeddings (all of them when the
		// parent's list here is complete, else up to SeedsPerTID
		// hits; a single hit decides a column that keeps no lists).
		storeComplete := parentComplete && trackLists && !exhausted
		lim := SeedsPerTID
		if !trackLists {
			lim = 1
		} else if storeComplete {
			lim = 0
			if budget > 0 {
				lim = budget - retained + 1
			}
		}
		buf = buf[:0]
		tripped := false
		for _, pe := range pembs {
			buf = iso.ExtendEmbedding(txn, child, pe, newEdge, lim, buf)
			if lim > 0 && len(buf) >= lim {
				tripped = storeComplete
				break
			}
		}
		st.Generated += len(buf)

		if len(buf) == 0 {
			if parentComplete {
				continue // complete parent lists prove absence
			}
			// Seeds missed: a classic search decides, harvesting the
			// child's seed on success.
			st.IsoTests++
			embs, completed := iso.Embeddings(txn, child, iso.Options{Limit: 1, MaxSteps: opts.MaxSteps})
			if len(embs) == 0 {
				if !completed {
					st.BudgetedTests++
				}
				continue
			}
			st.Generated += len(embs)
			out.TIDs.Add(tid)
			if trackLists {
				out.Embs = append(out.Embs, embs)
				out.Partial.Add(tid)
				out.Overflowed = true
			}
			continue
		}

		out.TIDs.Add(tid)
		if tripped {
			// This transaction's complete enumeration just tripped
			// the budget: keep seeds for it alone and stop complete
			// retention from here on.
			exhausted = true
			if len(buf) > SeedsPerTID {
				buf = buf[:SeedsPerTID]
			}
		}
		if trackLists {
			out.Embs = append(out.Embs, append([]iso.DenseEmbedding(nil), buf...))
			if storeComplete && !tripped {
				retained += len(buf)
			} else {
				out.Partial.Add(tid)
				out.Overflowed = true
			}
		}
	}
	out.Support = out.TIDs.Len()
	return st
}

// Rebase re-expresses a stored pattern over child's vertex/edge IDs:
// child must be isomorphic to stored.Graph (the caller certifies this
// with equal exact canonical codes), and the result carries child as
// its graph with every embedding list rewritten into child's dense ID
// space, so a delta run can graft a persisted TID column onto the
// candidate graph its own candidate generation produced. TID lists
// are copied (the delta loop appends to them); embedding contents are
// shared read-only with stored. A stored record without lists rebases
// to a bare overflowed column. Returns false when no isomorphism from
// stored.Graph onto child exists — the codes lied — in which case the
// caller must fall back to counting from scratch.
func Rebase(stored *Pattern, child *graph.Graph, code string) (*Pattern, bool) {
	out := &Pattern{
		Graph:      child,
		Code:       code,
		Support:    stored.Support,
		TIDs:       stored.TIDs.Clone(),
		Partial:    stored.Partial.Clone(),
		Overflowed: stored.Overflowed,
	}
	if stored.Embs == nil {
		if out.TIDs.Len() > 0 {
			out.Overflowed = true
		}
		return out, true
	}
	if sameDense(stored.Graph, child) {
		// The common case: the delta run generated the candidate with
		// exactly the construction the previous run persisted, so the
		// ID spaces already agree and the lists transfer as-is.
		out.Embs = append([][]iso.DenseEmbedding(nil), stored.Embs...)
		return out, true
	}
	// Isomorphic but differently constructed: one small search on the
	// pattern graphs (equal sizes, so any embedding is an isomorphism)
	// yields the vertex/edge permutation to rewrite the lists with.
	maps, _ := iso.Embeddings(child, stored.Graph, iso.Options{Limit: 1})
	if len(maps) == 0 {
		return nil, false
	}
	vmap, emap := maps[0].Verts, maps[0].Edges // storedID -> childID
	out.Embs = make([][]iso.DenseEmbedding, len(stored.Embs))
	for i, list := range stored.Embs {
		if list == nil {
			continue
		}
		rewritten := make([]iso.DenseEmbedding, len(list))
		for j, emb := range list {
			verts := make([]graph.VertexID, len(emb.Verts))
			for s, tv := range emb.Verts {
				verts[vmap[s]] = tv
			}
			edges := make([]graph.EdgeID, len(emb.Edges))
			for s, te := range emb.Edges {
				edges[emap[s]] = te
			}
			rewritten[j] = iso.DenseEmbedding{Verts: verts, Edges: edges}
		}
		out.Embs[i] = rewritten
	}
	return out, true
}

// sameDense reports whether two dense-ID pattern graphs are identical
// slot for slot (same labels on the same vertex IDs, same
// (from, to, label) on the same edge IDs) — the cheap identity test
// that lets Rebase skip the isomorphism search when the delta run
// reconstructed a candidate exactly as the previous run built it.
func sameDense(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.VertexCap() != b.VertexCap() || a.EdgeCap() != b.EdgeCap() {
		return false
	}
	for id := 0; id < a.VertexCap(); id++ {
		v := graph.VertexID(id)
		if a.HasVertex(v) != b.HasVertex(v) {
			return false
		}
		if a.HasVertex(v) && a.Vertex(v).Label != b.Vertex(v).Label {
			return false
		}
	}
	for id := 0; id < a.EdgeCap(); id++ {
		e := graph.EdgeID(id)
		if a.HasEdge(e) != b.HasEdge(e) {
			return false
		}
		if !a.HasEdge(e) {
			continue
		}
		ea, eb := a.Edge(e), b.Edge(e)
		if ea.From != eb.From || ea.To != eb.To || ea.Label != eb.Label {
			return false
		}
	}
	return true
}

// EnforceBudget walks patterns in order and demotes complete
// embedding lists to seeds once the cumulative retained count exceeds
// budget (0 = unlimited) — the level-wide memory meter, the embedding
// analogue of FSG's per-level candidate budget. Seed memory
// (SeedsPerTID per supporting transaction) sits outside the meter by
// design, so only complete-list embeddings (a partially retained
// pattern's complete columns included) are counted and demotable. It
// returns the number of complete-list embeddings retained.
func EnforceBudget(pats []Pattern, budget int) int {
	retained := 0
	for i := range pats {
		p := &pats[i]
		n := p.retainedEmbeddings()
		if n == 0 {
			continue
		}
		if budget > 0 && retained+n > budget {
			p.DemoteToSeeds()
			continue
		}
		retained += n
	}
	return retained
}
