// Package pattern is the shared pattern-with-embeddings store of the
// mining layers: a pattern graph coupled with its exact canonical
// code, the TID list of supporting transactions, and per-TID
// embedding lists (vertex/edge maps into each transaction).
//
// It is the FSG embedding-list idea — the frequent-itemset TID-list
// optimisation carried down to vertex maps — applied to the paper's
// dominant cost (Sections 5–8 of Jiang et al., ICDE 2005): level-wise
// support counting. A (k+1)-edge candidate's occurrences are exactly
// the one-edge extensions of its k-edge parent's occurrences, so
// support counting can extend stored parent embeddings instead of
// re-proving containment from scratch with a full subgraph-
// isomorphism search per (candidate × transaction).
//
// Embedding lists trade memory for that speed, which is the very
// trade-off that made the original FSG exhaust memory on
// transportation-scale data (Section 8). The store therefore meters
// itself: CountOptions.MaxEmbeddings bounds the embeddings a pattern
// may retain, and EnforceBudget bounds a whole level; a pattern over
// budget is demoted to warm-start seeds (SeedsPerTID per
// transaction), and its extensions fall back to an isomorphism
// search only when the seeds miss, so memory stays bounded, results
// stay exact, and the worst case costs what classic counting cost.
//
// The same representation serves both transaction-set mining (FSG:
// many transactions, TID lists) and single-graph discovery (SUBDUE:
// one target, instance lists — see NewSingle).
package pattern

import (
	"strings"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// Pattern couples a pattern graph with its code, support and
// embeddings. The Graph must have dense IDs (true of every graph
// built by Clone+AddVertex+AddEdge), because embeddings are stored in
// dense form.
type Pattern struct {
	Graph *graph.Graph
	// Code is the exact canonical code of Graph (iso.Code): equal
	// codes certify isomorphism, so every dedup site keys patterns by
	// plain string equality. Patterns decoded from legacy version-1
	// stores may instead carry an approximate "~"-prefixed code
	// (pre-canonical miners); only that compat path still needs the
	// SameGraph fallback on equality.
	Code string
	// Support is the number of supporting transactions, len(TIDs).
	Support int
	// TIDs are the indices of supporting transactions, ascending.
	TIDs []int
	// Embs, when tracked, holds one embedding list per supporting
	// transaction, aligned with TIDs. With Overflowed unset the lists
	// are complete: every embedding of Graph in txns[TIDs[i]] appears
	// in Embs[i] exactly once. (A list may be empty in the degenerate
	// case of a transaction supporting a single-edge pattern only
	// through self-loops, which admit no injective embedding.) With
	// Overflowed set the lists are seeds — at most SeedsPerTID true
	// embeddings per transaction that warm-start extension counting
	// but cannot prove absence.
	Embs [][]iso.DenseEmbedding
	// Overflowed marks that the complete enumeration exceeded its
	// budget: support data stays valid and Embs (if non-nil) holds
	// seeds, but deciding an extension's support may need a fallback
	// isomorphism search.
	Overflowed bool
}

// SeedsPerTID is the number of embeddings retained per transaction
// when a pattern's complete enumeration overflows its budget. Seeds
// are true embeddings: if one extends across a candidate's new edge,
// the candidate is supported with no search at all; only when every
// seed fails does support counting fall back to a full isomorphism
// search. Small on purpose — seed memory is O(patterns × TIDs ×
// SeedsPerTID) and sits outside the MaxEmbeddings meter.
const SeedsPerTID = 2

// HasEmbeddings reports whether the per-TID embedding lists are
// present and complete.
func (p *Pattern) HasEmbeddings() bool {
	return !p.Overflowed && p.Embs != nil
}

// HasSeeds reports whether at least warm-start seed lists are
// present.
func (p *Pattern) HasSeeds() bool { return p.Embs != nil }

// NumEmbeddings returns the total number of stored embeddings across
// all TIDs.
func (p *Pattern) NumEmbeddings() int {
	n := 0
	for _, l := range p.Embs {
		n += len(l)
	}
	return n
}

// DropEmbeddings discards the embedding lists entirely and marks the
// pattern overflowed; support data is untouched. Extensions of the
// pattern count by classic search only.
func (p *Pattern) DropEmbeddings() {
	p.Embs = nil
	p.Overflowed = true
}

// DemoteToSeeds truncates each per-TID list to at most SeedsPerTID
// embeddings and marks the pattern overflowed: what remains are
// warm-start seeds, no longer a complete enumeration.
func (p *Pattern) DemoteToSeeds() {
	for i, l := range p.Embs {
		if len(l) > SeedsPerTID {
			p.Embs[i] = l[:SeedsPerTID:SeedsPerTID]
		}
	}
	p.Overflowed = true
}

// NewSingle returns a Pattern over one implicit transaction (TID 0)
// holding the given instance list — the single-graph (SUBDUE) view of
// the store.
func NewSingle(g *graph.Graph, code string, embs []iso.DenseEmbedding) *Pattern {
	return &Pattern{
		Graph:   g,
		Code:    code,
		Support: 1,
		TIDs:    []int{0},
		Embs:    [][]iso.DenseEmbedding{embs},
	}
}

// Instances returns the embedding list of a single-graph pattern
// (nil when embeddings are not tracked).
func (p *Pattern) Instances() []iso.DenseEmbedding {
	if len(p.Embs) == 0 {
		return nil
	}
	return p.Embs[0]
}

// SameGraph reports whether two pattern graphs with the given codes
// are isomorphic. It exists only for legacy version-1 stores (and as
// a test oracle): the mining path emits exact canonical codes, whose
// plain equality decides isomorphism, but v1 stores may hold the old
// approximate "~"-prefixed codes, which collide between
// non-isomorphic graphs and need an explicit isomorphism check on
// equality.
func SameGraph(codeA string, a *graph.Graph, codeB string, b *graph.Graph) bool {
	if codeA != codeB {
		return false
	}
	if ApproxCode(codeA) {
		return iso.Isomorphic(a, b)
	}
	return true
}

// ApproxCode reports whether code is a legacy approximate code (the
// "~"-prefixed hashed invariants of pre-canonical miners, still
// found in version-1 stores), which needs the SameGraph isomorphism
// fallback on equality. No current miner emits one.
func ApproxCode(code string) bool { return strings.HasPrefix(code, "~") }

// CountOptions tunes CountExtension.
type CountOptions struct {
	// MaxEmbeddings bounds the embeddings the child pattern may
	// retain (0 = unlimited); over budget the child overflows and
	// keeps counting by existence checks only.
	MaxEmbeddings int
	// MaxSteps bounds each fallback isomorphism search (0 =
	// unlimited); searches that exceed it count as non-containment
	// when they found nothing.
	MaxSteps int
}

// CountStats meters one CountExtension call.
type CountStats struct {
	// IsoTests is the number of full isomorphism searches run (only
	// the fallback path runs any).
	IsoTests int
	// BudgetedTests counts searches aborted on MaxSteps with nothing
	// found, treated as non-containment.
	BudgetedTests int
	// Generated is the number of embeddings enumerated — the memory
	// unit MaxEmbeddings budgets.
	Generated int
}

// CountExtension computes the support of child — parent.Graph plus
// the single edge newEdge (IDs preserved) — over txns, incrementally
// when it can. Three tiers, degrading gracefully:
//
//   - Complete parent: each parent embedding is extended across
//     newEdge, so a transaction supports child iff at least one
//     extension exists, and the extensions are exactly child's
//     embeddings there — no isomorphism search at all. The child's
//     lists stay complete until the MaxEmbeddings budget trips
//     (enforced during enumeration: symmetric patterns in dense
//     transactions have combinatorially many embeddings, and the
//     whole point of the meter is never to materialise them), after
//     which the child keeps SeedsPerTID seeds per transaction.
//   - Seeded parent: each seed is tried against newEdge; a hit
//     proves support with no search (a seed extension is a true
//     embedding), and only when every seed misses does a classic
//     budgeted search decide — harvesting one embedding as the
//     child's seed when it succeeds.
//   - Untracked parent (no lists at all): the classic budgeted
//     containment test per transaction, exactly the pre-embedding
//     counter's cost profile.
//
// tidFilter must be ascending and is the candidate TID set (by
// downward closure, the intersection of all isomorphic parents' TID
// lists); it must be a subset of parent.TIDs on the embedding paths.
// Support counts are exact in every tier.
func CountExtension(txns []*graph.Graph, parent *Pattern, child *graph.Graph, code string, newEdge graph.EdgeID, tidFilter []int, opts CountOptions) (*Pattern, CountStats) {
	out := &Pattern{Graph: child, Code: code}
	if !parent.HasEmbeddings() {
		out.Overflowed = true // seeds (or their absence) beget seeds
	}
	st := countExtensionInto(out, 0, txns, parent, newEdge, tidFilter, opts)
	return out, st
}

// CountExtensionFrom continues an extension count from a previously
// counted column: base already holds the child pattern's graph, code,
// TID list and embedding lists over the transactions of a prior run
// (a store record rebased onto the child's IDs — see Rebase), and
// counting proceeds over tidFilter, which must be ascending, disjoint
// from and strictly after base.TIDs (the delta-appended transaction
// range). This is the TID-column append of incremental delta mining:
// a pattern already proven over the old transactions pays only for
// the new ones.
//
// The embedding budget resumes where the base column left off (base's
// retained embeddings count against opts.MaxEmbeddings exactly as if
// the whole column had been enumerated in one run), the merged column
// can only stay complete when both the base column and the parent's
// lists are complete, and a base without lists (a bare store record)
// keeps the merged column bare — new TIDs are decided by existence
// only. Supports and TID lists are exact in every case. base is
// mutated in place and returned.
func CountExtensionFrom(base *Pattern, txns []*graph.Graph, parent *Pattern, newEdge graph.EdgeID, tidFilter []int, opts CountOptions) (*Pattern, CountStats) {
	if base.Embs == nil && len(base.TIDs) > 0 {
		// No old lists to align appended lists with: the merged
		// column stays bare (Embs nil) and overflowed.
		base.Overflowed = true
	}
	if !parent.HasEmbeddings() {
		// New-TID lists extended from seeds cannot be proven
		// complete, so the merged column cannot be either.
		base.Overflowed = true
	}
	if opts.MaxEmbeddings > 0 && !base.Overflowed && base.NumEmbeddings() > opts.MaxEmbeddings {
		// The resumed column already exceeds this run's budget (the
		// prior run was mined under a larger or unlimited one).
		// Demote before resuming, exactly where the one-shot meter
		// would have tripped — otherwise lim would go non-positive in
		// the loop, which ExtendEmbedding reads as unlimited, and the
		// appended transactions would enumerate with no cap at all.
		base.Overflowed = true
	}
	if base.Overflowed && base.Embs != nil {
		base.DemoteToSeeds() // honor the seeds-only invariant of Overflowed
	}
	retained := 0
	if !base.Overflowed {
		retained = base.NumEmbeddings()
	}
	st := countExtensionInto(base, retained, txns, parent, newEdge, tidFilter, opts)
	return base, st
}

// countExtensionInto is the shared counting loop of CountExtension
// and CountExtensionFrom: it appends the supported transactions of
// tidFilter (and their embedding lists, when out tracks lists) to
// out, with retained complete-list embeddings already counted against
// the budget.
func countExtensionInto(out *Pattern, retained int, txns []*graph.Graph, parent *Pattern, newEdge graph.EdgeID, tidFilter []int, opts CountOptions) CountStats {
	var st CountStats
	budget := opts.MaxEmbeddings
	child := out.Graph

	complete := parent.HasEmbeddings()
	// A column that starts bare but non-empty (CountExtensionFrom on
	// a bare base) must stay bare: appended lists could not align
	// with the TIDs already present.
	trackLists := out.Embs != nil || len(out.TIDs) == 0
	fi := 0
	var buf []iso.DenseEmbedding
	for pi, tid := range parent.TIDs {
		for fi < len(tidFilter) && tidFilter[fi] < tid {
			fi++
		}
		if fi >= len(tidFilter) {
			break
		}
		if tidFilter[fi] != tid {
			continue
		}
		// An untracked parent (no lists at all) behaves as a seeded
		// parent with zero seeds: every transaction decides by
		// search, at exactly the classic counter's cost.
		var pembs []iso.DenseEmbedding
		if parent.Embs != nil {
			pembs = parent.Embs[pi]
		}
		txn := txns[tid]

		// Extend the parent's embeddings (all of them when both sides
		// are complete, else up to SeedsPerTID hits; a single hit
		// decides a column that keeps no lists).
		lim := SeedsPerTID
		if complete && !out.Overflowed {
			lim = 0
			if budget > 0 {
				lim = budget - retained + 1
			}
		}
		if !trackLists {
			lim = 1
		}
		buf = buf[:0]
		overBudget := false
		for _, pe := range pembs {
			buf = iso.ExtendEmbedding(txn, child, pe, newEdge, lim, buf)
			if lim > 0 && len(buf) >= lim {
				overBudget = complete && !out.Overflowed && trackLists
				break
			}
		}
		st.Generated += len(buf)

		if len(buf) == 0 {
			if complete {
				continue // complete lists prove absence
			}
			// Seeds missed: a classic search decides, harvesting the
			// child's seed on success.
			st.IsoTests++
			embs, completed := iso.Embeddings(txn, child, iso.Options{Limit: 1, MaxSteps: opts.MaxSteps})
			if len(embs) == 0 {
				if !completed {
					st.BudgetedTests++
				}
				continue
			}
			st.Generated += len(embs)
			out.TIDs = append(out.TIDs, tid)
			if trackLists {
				out.Embs = append(out.Embs, embs)
			}
			continue
		}

		out.TIDs = append(out.TIDs, tid)
		if overBudget {
			// The complete enumeration just tripped the budget:
			// demote everything stored so far to seeds and continue
			// in seeded mode.
			out.DemoteToSeeds()
			if len(buf) > SeedsPerTID {
				buf = buf[:SeedsPerTID]
			}
		}
		if trackLists {
			out.Embs = append(out.Embs, append([]iso.DenseEmbedding(nil), buf...))
			if !out.Overflowed {
				retained += len(buf)
			}
		}
	}
	out.Support = len(out.TIDs)
	return st
}

// Rebase re-expresses a stored pattern over child's vertex/edge IDs:
// child must be isomorphic to stored.Graph (the caller certifies this
// with equal exact canonical codes), and the result carries child as
// its graph with every embedding list rewritten into child's dense ID
// space, so a delta run can graft a persisted TID column onto the
// candidate graph its own candidate generation produced. TID lists
// are copied (the delta loop appends to them); embedding contents are
// shared read-only with stored. A stored record without lists rebases
// to a bare overflowed column. Returns false when no isomorphism from
// stored.Graph onto child exists — the codes lied — in which case the
// caller must fall back to counting from scratch.
func Rebase(stored *Pattern, child *graph.Graph, code string) (*Pattern, bool) {
	out := &Pattern{
		Graph:      child,
		Code:       code,
		Support:    stored.Support,
		TIDs:       append([]int(nil), stored.TIDs...),
		Overflowed: stored.Overflowed,
	}
	if stored.Embs == nil {
		if len(out.TIDs) > 0 {
			out.Overflowed = true
		}
		return out, true
	}
	if sameDense(stored.Graph, child) {
		// The common case: the delta run generated the candidate with
		// exactly the construction the previous run persisted, so the
		// ID spaces already agree and the lists transfer as-is.
		out.Embs = append([][]iso.DenseEmbedding(nil), stored.Embs...)
		return out, true
	}
	// Isomorphic but differently constructed: one small search on the
	// pattern graphs (equal sizes, so any embedding is an isomorphism)
	// yields the vertex/edge permutation to rewrite the lists with.
	maps, _ := iso.Embeddings(child, stored.Graph, iso.Options{Limit: 1})
	if len(maps) == 0 {
		return nil, false
	}
	vmap, emap := maps[0].Verts, maps[0].Edges // storedID -> childID
	out.Embs = make([][]iso.DenseEmbedding, len(stored.Embs))
	for i, list := range stored.Embs {
		if list == nil {
			continue
		}
		rewritten := make([]iso.DenseEmbedding, len(list))
		for j, emb := range list {
			verts := make([]graph.VertexID, len(emb.Verts))
			for s, tv := range emb.Verts {
				verts[vmap[s]] = tv
			}
			edges := make([]graph.EdgeID, len(emb.Edges))
			for s, te := range emb.Edges {
				edges[emap[s]] = te
			}
			rewritten[j] = iso.DenseEmbedding{Verts: verts, Edges: edges}
		}
		out.Embs[i] = rewritten
	}
	return out, true
}

// sameDense reports whether two dense-ID pattern graphs are identical
// slot for slot (same labels on the same vertex IDs, same
// (from, to, label) on the same edge IDs) — the cheap identity test
// that lets Rebase skip the isomorphism search when the delta run
// reconstructed a candidate exactly as the previous run built it.
func sameDense(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.VertexCap() != b.VertexCap() || a.EdgeCap() != b.EdgeCap() {
		return false
	}
	for id := 0; id < a.VertexCap(); id++ {
		v := graph.VertexID(id)
		if a.HasVertex(v) != b.HasVertex(v) {
			return false
		}
		if a.HasVertex(v) && a.Vertex(v).Label != b.Vertex(v).Label {
			return false
		}
	}
	for id := 0; id < a.EdgeCap(); id++ {
		e := graph.EdgeID(id)
		if a.HasEdge(e) != b.HasEdge(e) {
			return false
		}
		if !a.HasEdge(e) {
			continue
		}
		ea, eb := a.Edge(e), b.Edge(e)
		if ea.From != eb.From || ea.To != eb.To || ea.Label != eb.Label {
			return false
		}
	}
	return true
}

// EnforceBudget walks patterns in order and demotes complete
// embedding lists to seeds once the cumulative retained count exceeds
// budget (0 = unlimited) — the level-wide memory meter, the embedding
// analogue of FSG's per-level candidate budget. Seed memory
// (SeedsPerTID per supporting transaction) sits outside the meter by
// design. It returns the number of complete-list embeddings retained.
func EnforceBudget(pats []Pattern, budget int) int {
	retained := 0
	for i := range pats {
		p := &pats[i]
		if !p.HasEmbeddings() {
			continue
		}
		n := p.NumEmbeddings()
		if budget > 0 && retained+n > budget {
			p.DemoteToSeeds()
			continue
		}
		retained += n
	}
	return retained
}
