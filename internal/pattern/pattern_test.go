package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/synth"
)

// cycle builds a directed cycle of n uniformly labeled vertices —
// the shape whose hashed invariants used to collide (C12 vs C6+C6).
func cycle(g *graph.Graph, n int) {
	first := g.AddVertex("*")
	cur := first
	for i := 1; i < n; i++ {
		next := g.AddVertex("*")
		g.AddEdge(cur, next, "e")
		cur = next
	}
	g.AddEdge(cur, first, "e")
}

// TestExactCodesSeparateFormerCollision is the engineered collision
// of the pre-canonical era: C12 and C6+C6 are non-isomorphic but
// share vertex and edge invariants, so their hashed "~" codes used
// to collide and dedup leaned on the SameGraph isomorphism fallback.
// Exact canonical codes must separate the pair outright — and
// SameGraph (now the v1-store compat oracle) must agree with plain
// code equality on exact codes.
func TestExactCodesSeparateFormerCollision(t *testing.T) {
	c12 := graph.New("c12")
	cycle(c12, 12)
	twoC6 := graph.New("2c6")
	cycle(twoC6, 6)
	cycle(twoC6, 6)

	codeA, codeB := iso.Code(c12), iso.Code(twoC6)
	if ApproxCode(codeA) || ApproxCode(codeB) {
		t.Fatalf("the mining path must not emit approximate codes, got %q / %q", codeA, codeB)
	}
	if codeA == codeB {
		t.Fatal("exact codes failed to separate C12 from C6+C6")
	}
	if SameGraph(codeA, c12, codeB, twoC6) {
		t.Fatal("SameGraph merged non-isomorphic graphs with distinct exact codes")
	}
	c12b := graph.New("c12b")
	cycle(c12b, 12)
	if !SameGraph(codeA, c12, iso.Code(c12b), c12b) {
		t.Fatal("SameGraph split isomorphic graphs with equal exact codes")
	}
}

// TestSameGraphLegacyApproxSemantics pins the v1-store compat path:
// legacy "~" codes collide between non-isomorphic graphs, so
// SameGraph must confirm equality with an isomorphism check instead
// of trusting the code.
func TestSameGraphLegacyApproxSemantics(t *testing.T) {
	c12 := graph.New("c12")
	cycle(c12, 12)
	twoC6 := graph.New("2c6")
	cycle(twoC6, 6)
	cycle(twoC6, 6)
	c12b := graph.New("c12b")
	cycle(c12b, 12)

	// A v1 store could hold both graphs under one colliding "~" code.
	legacy := "~2kp0mbcgyyppw"
	if !ApproxCode(legacy) {
		t.Fatal("legacy code not recognised as approximate")
	}
	if SameGraph(legacy, c12, legacy, twoC6) {
		t.Fatal("SameGraph trusted a colliding legacy code")
	}
	if !SameGraph(legacy, c12, legacy, c12b) {
		t.Fatal("SameGraph split isomorphic graphs sharing a legacy code")
	}
	if SameGraph(legacy, c12, "~other", c12b) {
		t.Fatal("SameGraph merged distinct legacy codes")
	}
}

// TestSameGraphMatchesIsomorphicOnSynthPairs cross-checks the compat
// oracle against exact isomorphism on seeded random graph pairs from
// the synth generator.
func TestSameGraphMatchesIsomorphicOnSynthPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(20050405))
	patterns := synth.DefaultPatterns()
	build := func(seed int64, copies, noise int) *graph.Graph {
		return synth.Plant(synth.PlantConfig{
			Seed:             seed,
			Patterns:         patterns[:1+rng.Intn(len(patterns))],
			CopiesPerPattern: copies,
			NoiseEdges:       noise,
			NoiseLabels:      []string{"w1", "w2"},
		}).Graph
	}
	for trial := 0; trial < 20; trial++ {
		seedA := int64(trial)
		seedB := seedA
		copies := 1 + rng.Intn(3)
		noise := rng.Intn(4)
		if trial%2 == 0 {
			seedB = seedA + 100 // usually a different graph
		}
		a := build(seedA, copies, noise)
		b := build(seedB, copies, noise)
		codeA, codeB := iso.Code(a), iso.Code(b)
		got := SameGraph(codeA, a, codeB, b)
		want := iso.Isomorphic(a, b)
		if got != want {
			t.Fatalf("trial %d: SameGraph=%v but Isomorphic=%v (codes %q / %q)",
				trial, got, want, codeA, codeB)
		}
	}
}

// twoTxns builds a pair of transactions sharing a v0-e-v1 lane.
func twoTxns() []*graph.Graph {
	txns := make([]*graph.Graph, 2)
	for i := range txns {
		g := graph.New(fmt.Sprintf("t%d", i))
		a := g.AddVertex("v0")
		b := g.AddVertex("v1")
		c := g.AddVertex("v2")
		g.AddEdge(a, b, "e")
		g.AddEdge(b, c, "f")
		txns[i] = g
	}
	return txns
}

// TestCountExtensionIncrementalAndFallback checks both counting paths
// directly on a tiny handmade case.
func TestCountExtensionIncrementalAndFallback(t *testing.T) {
	txns := twoTxns()
	pg := graph.New("p")
	pa := pg.AddVertex("v0")
	pb := pg.AddVertex("v1")
	pg.AddEdge(pa, pb, "e")
	parent := &Pattern{
		Graph: pg, Code: iso.Code(pg), Support: 2, TIDs: NewTIDSet(0, 1),
		Embs: [][]iso.DenseEmbedding{
			{{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}},
			{{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}},
		},
	}
	child := pg.Clone()
	pc := child.AddVertex("v2")
	ne := child.AddEdge(pb, pc, "f")

	got, st := CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{})
	if got.Support != 2 || fmt.Sprint(got.TIDs) != "[0 1]" {
		t.Fatalf("incremental: support %d tids %v", got.Support, got.TIDs)
	}
	if st.IsoTests != 0 || !got.HasEmbeddings() || got.NumEmbeddings() != 2 {
		t.Fatalf("incremental: isoTests=%d embeddings=%d", st.IsoTests, got.NumEmbeddings())
	}

	parent.DropEmbeddings()
	got, st = CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{})
	if got.Support != 2 || st.IsoTests != 2 {
		t.Fatalf("fallback: support %d isoTests %d", got.Support, st.IsoTests)
	}
	if got.HasEmbeddings() {
		t.Fatal("fallback must leave the child untracked (overflow propagates)")
	}

	// A one-embedding budget overflows the child but keeps counting.
	got, _ = CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{MaxEmbeddings: 1})
	if got.Support != 2 || got.HasEmbeddings() || !got.Overflowed {
		t.Fatalf("budgeted: support %d hasEmbs %v overflowed %v",
			got.Support, got.HasEmbeddings(), got.Overflowed)
	}
}

// TestEnforceBudget checks the level-wide prefix enforcement.
func TestEnforceBudget(t *testing.T) {
	mk := func(n int) Pattern {
		embs := make([]iso.DenseEmbedding, n)
		return Pattern{Embs: [][]iso.DenseEmbedding{embs}, TIDs: NewTIDSet(0)}
	}
	pats := []Pattern{mk(3), mk(4), mk(2)}
	if retained := EnforceBudget(pats, 5); retained != 5 {
		t.Fatalf("retained %d, want 5 (3 + dropped 4 + 2)", retained)
	}
	if pats[0].Overflowed || !pats[1].Overflowed || pats[2].Overflowed {
		t.Fatalf("wrong drop pattern: %v %v %v",
			pats[0].Overflowed, pats[1].Overflowed, pats[2].Overflowed)
	}
	pats = []Pattern{mk(3), mk(4)}
	if retained := EnforceBudget(pats, 0); retained != 7 {
		t.Fatalf("unlimited retained %d, want 7", retained)
	}
}

// validEmbedding checks that emb really maps pat into txn: labels
// agree and every pattern edge's witness connects the mapped
// endpoints.
func validEmbedding(t *testing.T, txn, pat *graph.Graph, emb iso.DenseEmbedding) {
	t.Helper()
	for pv, tv := range emb.Verts {
		if pat.Vertex(graph.VertexID(pv)).Label != txn.Vertex(tv).Label {
			t.Fatalf("vertex %d label mismatch after rebase", pv)
		}
	}
	for pe, te := range emb.Edges {
		ped, ted := pat.Edge(graph.EdgeID(pe)), txn.Edge(te)
		if ped.Label != ted.Label ||
			emb.Verts[ped.From] != ted.From || emb.Verts[ped.To] != ted.To {
			t.Fatalf("edge %d witness mismatch after rebase", pe)
		}
	}
}

// TestRebasePermutedConstruction rebases a stored pattern whose graph
// was built in a different vertex/edge order than the delta run's
// candidate — the slow path that must rewrite every embedding through
// the pattern-level isomorphism.
func TestRebasePermutedConstruction(t *testing.T) {
	txns := twoTxns()
	// Candidate construction: A(v0)->B(v1)->C(v2), edges e then f.
	child := graph.New("cand")
	ca := child.AddVertex("v0")
	cb := child.AddVertex("v1")
	cc := child.AddVertex("v2")
	child.AddEdge(ca, cb, "e")
	child.AddEdge(cb, cc, "f")
	// Stored construction: same pattern, IDs permuted — C first, f
	// before e.
	sg := graph.New("stored")
	sc := sg.AddVertex("v2")
	sa := sg.AddVertex("v0")
	sb := sg.AddVertex("v1")
	sg.AddEdge(sb, sc, "f")
	sg.AddEdge(sa, sb, "e")
	code := iso.Code(child)
	if iso.Code(sg) != code {
		t.Fatal("fixture graphs must share a canonical code")
	}
	stored := &Pattern{
		Graph: sg, Code: code, Support: 2, TIDs: NewTIDSet(0, 1),
		// Stored embeddings are in stored-ID order: Verts[sc]=2,
		// Verts[sa]=0, Verts[sb]=1; Edges[f]=1, Edges[e]=0.
		Embs: [][]iso.DenseEmbedding{
			{{Verts: []graph.VertexID{2, 0, 1}, Edges: []graph.EdgeID{1, 0}}},
			{{Verts: []graph.VertexID{2, 0, 1}, Edges: []graph.EdgeID{1, 0}}},
		},
	}
	out, ok := Rebase(stored, child, code)
	if !ok {
		t.Fatal("rebase failed on isomorphic constructions")
	}
	if out.Graph != child || out.Support != 2 || fmt.Sprint(out.TIDs) != "[0 1]" || !out.HasEmbeddings() {
		t.Fatalf("rebase mangled the column: %+v", out)
	}
	for i, tid := range out.TIDs.All() {
		for _, emb := range out.Embs[i] {
			validEmbedding(t, txns[tid], child, emb)
		}
	}
	// The identity construction takes the fast path and must agree.
	fast, ok := Rebase(&Pattern{Graph: child, Code: code, Support: 2, TIDs: NewTIDSet(0, 1),
		Embs: out.Embs}, child, code)
	if !ok || fast.NumEmbeddings() != out.NumEmbeddings() {
		t.Fatal("identity rebase diverged")
	}
	// A bare record rebases to a bare overflowed column.
	bare, ok := Rebase(&Pattern{Graph: sg, Code: code, Support: 2, TIDs: NewTIDSet(0, 1)}, child, code)
	if !ok || bare.Embs != nil || !bare.Overflowed {
		t.Fatalf("bare rebase: %+v", bare)
	}
}

// TestCountExtensionFromContinuesColumn appends one transaction's
// worth of counting to a pre-counted column and must agree with
// counting the whole column in one shot — including the bare-base
// degradation, where the merged column keeps no lists but stays
// support-exact.
func TestCountExtensionFromContinuesColumn(t *testing.T) {
	txns := twoTxns()
	pg := graph.New("p")
	pa := pg.AddVertex("v0")
	pb := pg.AddVertex("v1")
	pg.AddEdge(pa, pb, "e")
	parentEmb := iso.DenseEmbedding{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}
	parent := &Pattern{
		Graph: pg, Code: iso.Code(pg), Support: 2, TIDs: NewTIDSet(0, 1),
		Embs: [][]iso.DenseEmbedding{{parentEmb}, {parentEmb.Clone()}},
	}
	child := pg.Clone()
	pc := child.AddVertex("v2")
	ne := child.AddEdge(pb, pc, "f")
	code := "c"

	oneShot, _ := CountExtension(txns, parent, child, code, ne, parent.TIDs, CountOptions{})

	// The same column, counted as TID 0 from the store + TID 1 fresh.
	base := &Pattern{Graph: child, Code: code, Support: 1, TIDs: NewTIDSet(0),
		Embs: [][]iso.DenseEmbedding{append([]iso.DenseEmbedding(nil), oneShot.Embs[0]...)}}
	cont, st := CountExtensionFrom(base, txns, parent, ne, NewTIDSet(1), CountOptions{})
	if fmt.Sprint(cont.TIDs) != fmt.Sprint(oneShot.TIDs) || cont.Support != oneShot.Support {
		t.Fatalf("continued column diverged: %v vs %v", cont.TIDs, oneShot.TIDs)
	}
	if !cont.HasEmbeddings() || cont.NumEmbeddings() != oneShot.NumEmbeddings() {
		t.Fatalf("continued column lost lists: %d vs %d", cont.NumEmbeddings(), oneShot.NumEmbeddings())
	}
	if st.IsoTests != 0 {
		t.Fatalf("complete parent lists should prove the appended TID without search, ran %d", st.IsoTests)
	}

	// A bare base (store record whose lists were dropped) stays bare
	// but exact.
	bare := &Pattern{Graph: child, Code: code, Support: 1, TIDs: NewTIDSet(0)}
	cont, _ = CountExtensionFrom(bare, txns, parent, ne, NewTIDSet(1), CountOptions{})
	if fmt.Sprint(cont.TIDs) != fmt.Sprint(oneShot.TIDs) || cont.Embs != nil || !cont.Overflowed {
		t.Fatalf("bare base: tids=%v embs=%v overflowed=%v", cont.TIDs, cont.Embs, cont.Overflowed)
	}
}

// TestCountExtensionFromClampsOversizedBase resumes a column whose
// stored embeddings already exceed this run's budget (the prior run
// was mined under a larger one): the base must demote to seeds
// before counting, or the loop's remaining-budget arithmetic would
// go negative and enumerate the appended transactions without any
// cap.
func TestCountExtensionFromClampsOversizedBase(t *testing.T) {
	txns := twoTxns()
	pg := graph.New("p")
	pa := pg.AddVertex("v0")
	pb := pg.AddVertex("v1")
	pg.AddEdge(pa, pb, "e")
	parentEmb := iso.DenseEmbedding{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}
	parent := &Pattern{
		Graph: pg, Code: iso.Code(pg), Support: 2, TIDs: NewTIDSet(0, 1),
		Embs: [][]iso.DenseEmbedding{{parentEmb}, {parentEmb.Clone()}},
	}
	child := pg.Clone()
	pc := child.AddVertex("v2")
	ne := child.AddEdge(pb, pc, "f")

	// Base column holds 4 embeddings for TID 0; the delta run's
	// budget is 3.
	over := make([]iso.DenseEmbedding, 4)
	for i := range over {
		over[i] = iso.DenseEmbedding{Verts: []graph.VertexID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	}
	base := &Pattern{Graph: child, Code: "c", Support: 1, TIDs: NewTIDSet(0),
		Embs: [][]iso.DenseEmbedding{over}}
	got, _ := CountExtensionFrom(base, txns, parent, ne, NewTIDSet(1), CountOptions{MaxEmbeddings: 3})
	if got.Support != 2 || fmt.Sprint(got.TIDs) != "[0 1]" {
		t.Fatalf("clamped resume lost exactness: support=%d tids=%v", got.Support, got.TIDs)
	}
	if !got.Overflowed {
		t.Fatal("over-budget base must leave the merged column overflowed")
	}
	for i, l := range got.Embs {
		if len(l) > SeedsPerTID {
			t.Fatalf("list %d kept %d embeddings; demotion to seeds did not happen", i, len(l))
		}
	}
}
