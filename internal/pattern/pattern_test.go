package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/synth"
)

// cycle builds a directed cycle of n uniformly labeled vertices —
// the shape whose hashed invariants used to collide (C12 vs C6+C6).
func cycle(g *graph.Graph, n int) {
	first := g.AddVertex("*")
	cur := first
	for i := 1; i < n; i++ {
		next := g.AddVertex("*")
		g.AddEdge(cur, next, "e")
		cur = next
	}
	g.AddEdge(cur, first, "e")
}

// TestExactCodesSeparateFormerCollision is the engineered collision
// of the pre-canonical era: C12 and C6+C6 are non-isomorphic but
// share vertex and edge invariants, so their hashed "~" codes used
// to collide and dedup leaned on the SameGraph isomorphism fallback.
// Exact canonical codes must separate the pair outright — and
// SameGraph (now the v1-store compat oracle) must agree with plain
// code equality on exact codes.
func TestExactCodesSeparateFormerCollision(t *testing.T) {
	c12 := graph.New("c12")
	cycle(c12, 12)
	twoC6 := graph.New("2c6")
	cycle(twoC6, 6)
	cycle(twoC6, 6)

	codeA, codeB := iso.Code(c12), iso.Code(twoC6)
	if ApproxCode(codeA) || ApproxCode(codeB) {
		t.Fatalf("the mining path must not emit approximate codes, got %q / %q", codeA, codeB)
	}
	if codeA == codeB {
		t.Fatal("exact codes failed to separate C12 from C6+C6")
	}
	if SameGraph(codeA, c12, codeB, twoC6) {
		t.Fatal("SameGraph merged non-isomorphic graphs with distinct exact codes")
	}
	c12b := graph.New("c12b")
	cycle(c12b, 12)
	if !SameGraph(codeA, c12, iso.Code(c12b), c12b) {
		t.Fatal("SameGraph split isomorphic graphs with equal exact codes")
	}
}

// TestSameGraphLegacyApproxSemantics pins the v1-store compat path:
// legacy "~" codes collide between non-isomorphic graphs, so
// SameGraph must confirm equality with an isomorphism check instead
// of trusting the code.
func TestSameGraphLegacyApproxSemantics(t *testing.T) {
	c12 := graph.New("c12")
	cycle(c12, 12)
	twoC6 := graph.New("2c6")
	cycle(twoC6, 6)
	cycle(twoC6, 6)
	c12b := graph.New("c12b")
	cycle(c12b, 12)

	// A v1 store could hold both graphs under one colliding "~" code.
	legacy := "~2kp0mbcgyyppw"
	if !ApproxCode(legacy) {
		t.Fatal("legacy code not recognised as approximate")
	}
	if SameGraph(legacy, c12, legacy, twoC6) {
		t.Fatal("SameGraph trusted a colliding legacy code")
	}
	if !SameGraph(legacy, c12, legacy, c12b) {
		t.Fatal("SameGraph split isomorphic graphs sharing a legacy code")
	}
	if SameGraph(legacy, c12, "~other", c12b) {
		t.Fatal("SameGraph merged distinct legacy codes")
	}
}

// TestSameGraphMatchesIsomorphicOnSynthPairs cross-checks the compat
// oracle against exact isomorphism on seeded random graph pairs from
// the synth generator.
func TestSameGraphMatchesIsomorphicOnSynthPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(20050405))
	patterns := synth.DefaultPatterns()
	build := func(seed int64, copies, noise int) *graph.Graph {
		return synth.Plant(synth.PlantConfig{
			Seed:             seed,
			Patterns:         patterns[:1+rng.Intn(len(patterns))],
			CopiesPerPattern: copies,
			NoiseEdges:       noise,
			NoiseLabels:      []string{"w1", "w2"},
		}).Graph
	}
	for trial := 0; trial < 20; trial++ {
		seedA := int64(trial)
		seedB := seedA
		copies := 1 + rng.Intn(3)
		noise := rng.Intn(4)
		if trial%2 == 0 {
			seedB = seedA + 100 // usually a different graph
		}
		a := build(seedA, copies, noise)
		b := build(seedB, copies, noise)
		codeA, codeB := iso.Code(a), iso.Code(b)
		got := SameGraph(codeA, a, codeB, b)
		want := iso.Isomorphic(a, b)
		if got != want {
			t.Fatalf("trial %d: SameGraph=%v but Isomorphic=%v (codes %q / %q)",
				trial, got, want, codeA, codeB)
		}
	}
}

// twoTxns builds a pair of transactions sharing a v0-e-v1 lane.
func twoTxns() []*graph.Graph {
	txns := make([]*graph.Graph, 2)
	for i := range txns {
		g := graph.New(fmt.Sprintf("t%d", i))
		a := g.AddVertex("v0")
		b := g.AddVertex("v1")
		c := g.AddVertex("v2")
		g.AddEdge(a, b, "e")
		g.AddEdge(b, c, "f")
		txns[i] = g
	}
	return txns
}

// TestCountExtensionIncrementalAndFallback checks both counting paths
// directly on a tiny handmade case.
func TestCountExtensionIncrementalAndFallback(t *testing.T) {
	txns := twoTxns()
	pg := graph.New("p")
	pa := pg.AddVertex("v0")
	pb := pg.AddVertex("v1")
	pg.AddEdge(pa, pb, "e")
	parent := &Pattern{
		Graph: pg, Code: iso.Code(pg), Support: 2, TIDs: []int{0, 1},
		Embs: [][]iso.DenseEmbedding{
			{{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}},
			{{Verts: []graph.VertexID{0, 1}, Edges: []graph.EdgeID{0}}},
		},
	}
	child := pg.Clone()
	pc := child.AddVertex("v2")
	ne := child.AddEdge(pb, pc, "f")

	got, st := CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{})
	if got.Support != 2 || fmt.Sprint(got.TIDs) != "[0 1]" {
		t.Fatalf("incremental: support %d tids %v", got.Support, got.TIDs)
	}
	if st.IsoTests != 0 || !got.HasEmbeddings() || got.NumEmbeddings() != 2 {
		t.Fatalf("incremental: isoTests=%d embeddings=%d", st.IsoTests, got.NumEmbeddings())
	}

	parent.DropEmbeddings()
	got, st = CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{})
	if got.Support != 2 || st.IsoTests != 2 {
		t.Fatalf("fallback: support %d isoTests %d", got.Support, st.IsoTests)
	}
	if got.HasEmbeddings() {
		t.Fatal("fallback must leave the child untracked (overflow propagates)")
	}

	// A one-embedding budget overflows the child but keeps counting.
	got, _ = CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{MaxEmbeddings: 1})
	if got.Support != 2 || got.HasEmbeddings() || !got.Overflowed {
		t.Fatalf("budgeted: support %d hasEmbs %v overflowed %v",
			got.Support, got.HasEmbeddings(), got.Overflowed)
	}
}

// TestEnforceBudget checks the level-wide prefix enforcement.
func TestEnforceBudget(t *testing.T) {
	mk := func(n int) Pattern {
		embs := make([]iso.DenseEmbedding, n)
		return Pattern{Embs: [][]iso.DenseEmbedding{embs}, TIDs: []int{0}}
	}
	pats := []Pattern{mk(3), mk(4), mk(2)}
	if retained := EnforceBudget(pats, 5); retained != 5 {
		t.Fatalf("retained %d, want 5 (3 + dropped 4 + 2)", retained)
	}
	if pats[0].Overflowed || !pats[1].Overflowed || pats[2].Overflowed {
		t.Fatalf("wrong drop pattern: %v %v %v",
			pats[0].Overflowed, pats[1].Overflowed, pats[2].Overflowed)
	}
	pats = []Pattern{mk(3), mk(4)}
	if retained := EnforceBudget(pats, 0); retained != 7 {
		t.Fatalf("unlimited retained %d, want 7", retained)
	}
}
