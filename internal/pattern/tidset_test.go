package pattern

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// sortedOracle is the reference model: a deduplicated ascending []int.
func sortedOracle(tids []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range tids {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

func intersectOracle(a, b []int) []int {
	out := []int{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionOracle(a, b []int) []int {
	return sortedOracle(append(append([]int{}, a...), b...))
}

func subtractOracle(a, b []int) []int {
	inB := map[int]bool{}
	for _, v := range b {
		inB[v] = true
	}
	out := []int{}
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func eqSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomTIDs draws n TIDs from a universe chosen to stress the
// container machinery: some draws stay inside one chunk, some span
// the 65536 chunk boundary, some push single chunks past the 4096
// array→bitmap threshold.
func randomTIDs(rng *rand.Rand, n, universe int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(universe)
	}
	return out
}

func TestTIDSetAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	universes := []int{1, 100, 4096, 4097, 65535, 65536, 65537, 200000, 1 << 20}
	for trial := 0; trial < 400; trial++ {
		uni := universes[rng.Intn(len(universes))]
		na, nb := rng.Intn(3*uni/2+2), rng.Intn(3*uni/2+2)
		if na > 30000 {
			na = 30000
		}
		if nb > 30000 {
			nb = 30000
		}
		rawA, rawB := randomTIDs(rng, na, uni), randomTIDs(rng, nb, uni)
		oa, ob := sortedOracle(rawA), sortedOracle(rawB)
		sa, sb := TIDSetFromSlice(rawA), TIDSetFromSlice(rawB)

		if got := sa.Slice(); !eqSlices(got, oa) {
			t.Fatalf("trial %d: Slice mismatch: got %d members, want %d", trial, len(got), len(oa))
		}
		if sa.Len() != len(oa) {
			t.Fatalf("trial %d: Len=%d want %d", trial, sa.Len(), len(oa))
		}
		wantMax, wantMin := -1, -1
		if len(oa) > 0 {
			wantMin, wantMax = oa[0], oa[len(oa)-1]
		}
		if sa.Min() != wantMin || sa.Max() != wantMax {
			t.Fatalf("trial %d: Min/Max=%d/%d want %d/%d", trial, sa.Min(), sa.Max(), wantMin, wantMax)
		}

		wantAnd := intersectOracle(oa, ob)
		if got := sa.And(sb); !eqSlices(got.Slice(), wantAnd) {
			t.Fatalf("trial %d: And mismatch (|a|=%d |b|=%d uni=%d): got %d want %d members",
				trial, len(oa), len(ob), uni, got.Len(), len(wantAnd))
		} else if !got.Equal(TIDSetFromSlice(wantAnd)) {
			t.Fatalf("trial %d: And result not Equal to rebuilt oracle set", trial)
		}
		if got := sa.AndCard(sb); got != len(wantAnd) {
			t.Fatalf("trial %d: AndCard=%d want %d", trial, got, len(wantAnd))
		}
		if got := sa.Or(sb); !eqSlices(got.Slice(), unionOracle(oa, ob)) {
			t.Fatalf("trial %d: Or mismatch", trial)
		}
		wantSub := subtractOracle(oa, ob)
		if got := sa.AndNot(sb); !eqSlices(got.Slice(), wantSub) {
			t.Fatalf("trial %d: AndNot mismatch (|a|=%d |b|=%d uni=%d): got %d want %d members",
				trial, len(oa), len(ob), uni, got.Len(), len(wantSub))
		} else if !got.Equal(TIDSetFromSlice(wantSub)) {
			t.Fatalf("trial %d: AndNot result not Equal to rebuilt oracle set", trial)
		} else if got.Len() != len(oa)-sa.AndCard(sb) {
			t.Fatalf("trial %d: AndNot cardinality inconsistent with AndCard", trial)
		}
		if got := sa.AndNot(sa); got.Len() != 0 || len(got.cons) != 0 {
			t.Fatalf("trial %d: a\\a kept %d members in %d containers", trial, got.Len(), len(got.cons))
		}

		lo := 0
		if uni > 1 {
			lo = rng.Intn(uni)
		}
		wantTrim := []int{}
		for _, v := range oa {
			if v >= lo {
				wantTrim = append(wantTrim, v)
			}
		}
		if got := sa.TrimBelow(lo).Slice(); !eqSlices(got, wantTrim) {
			t.Fatalf("trial %d: TrimBelow(%d) mismatch", trial, lo)
		}

		off := rng.Intn(100000)
		shifted := sa.Offset(off)
		wantShift := make([]int, len(oa))
		for i, v := range oa {
			wantShift[i] = v + off
		}
		if got := shifted.Slice(); !eqSlices(got, wantShift) {
			t.Fatalf("trial %d: Offset(%d) mismatch", trial, off)
		}

		// Membership: every member present, random non-members absent;
		// the monotone cursor agrees on an ascending probe sweep.
		cur := sa.Cursor()
		probe := append(append([]int{}, oa...), randomTIDs(rng, 50, uni+1000)...)
		sort.Ints(probe)
		inA := map[int]bool{}
		for _, v := range oa {
			inA[v] = true
		}
		for _, v := range probe {
			if sa.Contains(v) != inA[v] {
				t.Fatalf("trial %d: Contains(%d)=%v want %v", trial, v, sa.Contains(v), inA[v])
			}
			if cur.Contains(v) != inA[v] {
				t.Fatalf("trial %d: Cursor.Contains(%d) disagrees with oracle", trial, v)
			}
		}

		// Positional iteration aligns with the sorted oracle.
		for pos, tid := range sa.All() {
			if oa[pos] != tid {
				t.Fatalf("trial %d: All() pos %d = %d, oracle %d", trial, pos, tid, oa[pos])
			}
		}

		cl := sa.Clone()
		if !cl.Equal(sa) {
			t.Fatalf("trial %d: Clone not Equal", trial)
		}
	}
}

// TestTIDSetContainerBoundaries pins behaviour exactly at the
// array→bitmap threshold (4096) and the chunk boundary (65536).
func TestTIDSetContainerBoundaries(t *testing.T) {
	for _, n := range []int{tidArrayMax - 1, tidArrayMax, tidArrayMax + 1, 2 * tidArrayMax} {
		var s TIDSet
		for i := 0; i < n; i++ {
			s.Add(i * 2) // spread within one chunk up to 16382
		}
		if s.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		wantBitmap := n > tidArrayMax
		if got := s.cons[0].bits != nil; got != wantBitmap {
			t.Fatalf("n=%d: bitmap=%v want %v", n, got, wantBitmap)
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i * 2) {
				t.Fatalf("n=%d: missing member %d", n, i*2)
			}
			if s.Contains(i*2 + 1) {
				t.Fatalf("n=%d: phantom member %d", n, i*2+1)
			}
		}
		// Intersecting with a set that keeps only every 4th member must
		// drop back to an array container (canonical invariant).
		var quarter TIDSet
		for i := 0; i < n; i += 4 {
			quarter.Add(i * 2)
		}
		got := s.And(quarter)
		if got.Len() != quarter.Len() {
			t.Fatalf("n=%d: And quarter len=%d want %d", n, got.Len(), quarter.Len())
		}
		if got.Len() <= tidArrayMax && len(got.cons) > 0 && got.cons[0].bits != nil {
			t.Fatalf("n=%d: And result kept bitmap container at cardinality %d", n, got.Len())
		}
		// Subtracting three quarters of a bitmap container must demote
		// the remainder back to an array (canonical invariant).
		rest := s.AndNot(s.AndNot(quarter))
		if rest.Len() != quarter.Len() {
			t.Fatalf("n=%d: AndNot complement len=%d want %d", n, rest.Len(), quarter.Len())
		}
		if rest.Len() <= tidArrayMax && len(rest.cons) > 0 && rest.cons[0].bits != nil {
			t.Fatalf("n=%d: AndNot result kept bitmap container at cardinality %d", n, rest.Len())
		}
		if !rest.Equal(quarter) {
			t.Fatalf("n=%d: AndNot complement differs from quarter set", n)
		}
	}

	across := NewTIDSet(65534, 65535, 65536, 65537, 131071, 131072)
	if len(across.keys) != 3 {
		t.Fatalf("chunk split: %d chunks, want 3", len(across.keys))
	}
	if got := across.Slice(); !eqSlices(got, []int{65534, 65535, 65536, 65537, 131071, 131072}) {
		t.Fatalf("chunk boundary slice mismatch: %v", got)
	}
	if got := across.TrimBelow(65536).Slice(); !eqSlices(got, []int{65536, 65537, 131071, 131072}) {
		t.Fatalf("TrimBelow at chunk boundary: %v", got)
	}
	// Subtraction that empties a middle chunk must prune its container
	// entirely, and chunks absent from the subtrahend copy over whole.
	diff := across.AndNot(NewTIDSet(65536, 65537, 131071, 200000))
	if got := diff.Slice(); !eqSlices(got, []int{65534, 65535, 131072}) {
		t.Fatalf("AndNot across chunks: %v", got)
	}
	if len(diff.keys) != 2 {
		t.Fatalf("AndNot kept %d chunks, want 2 (emptied container not pruned)", len(diff.keys))
	}
}

func TestTIDSetStringMatchesIntSlice(t *testing.T) {
	cases := [][]int{nil, {0}, {0, 1}, {3, 70000, 70001}}
	for _, c := range cases {
		s := TIDSetFromSlice(c)
		want := fmt.Sprint(append([]int{}, c...))
		if c == nil {
			want = "[]"
		}
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("String: got %q want %q", got, want)
		}
	}
}
