package pattern

import (
	"fmt"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// hubTxn builds a transaction with one v0 hub fanning out to `fan` v1
// leaves over "e" edges: vertex 0 is the hub, vertex i+1 is leaf i,
// edge i is hub->leaf i. A k-leaf star pattern has fan!/(fan-k)!
// embeddings here, so one large fan explodes combinatorially while
// small fans stay tiny — the exact shape per-TID retention exists for.
func hubTxn(name string, fan int) *graph.Graph {
	g := graph.New(name)
	hub := g.AddVertex("v0")
	for i := 0; i < fan; i++ {
		g.AddEdge(hub, g.AddVertex("v1"), "e")
	}
	return g
}

// singleEdgeParent is the v0-e->v1 single-edge pattern with complete
// embedding lists over hub transactions, the shape level-1 mining
// hands to the extension counter.
func singleEdgeParent(txns []*graph.Graph) *Pattern {
	pg := graph.New("p")
	pg.AddEdge(pg.AddVertex("v0"), pg.AddVertex("v1"), "e")
	p := &Pattern{Graph: pg, Code: iso.Code(pg), TIDs: NewTIDSet()}
	for tid, txn := range txns {
		fan := txn.NumEdges()
		embs := make([]iso.DenseEmbedding, fan)
		for i := range embs {
			embs[i] = iso.DenseEmbedding{
				Verts: []graph.VertexID{0, graph.VertexID(i + 1)},
				Edges: []graph.EdgeID{graph.EdgeID(i)},
			}
		}
		p.TIDs.Add(tid)
		p.Embs = append(p.Embs, embs)
	}
	p.Support = p.TIDs.Len()
	return p
}

// twoLeafStar extends the single-edge parent with a second hub edge:
// v0-e->v1 plus v0-e->v1', fan*(fan-1) ordered embeddings per hub
// transaction.
func twoLeafStar(parent *Pattern) (*graph.Graph, graph.EdgeID) {
	child := parent.Graph.Clone()
	ne := child.AddEdge(0, child.AddVertex("v1"), "e")
	return child, ne
}

// TestPartialRetentionKeepsCompleteTIDs pins the per-TID overflow
// semantics: when one exploding transaction trips the MaxEmbeddings
// budget, the complete lists counted before the trip survive, only the
// tripping and later transactions demote to seeds, and Partial records
// exactly that split — while support and TIDs stay exact throughout.
func TestPartialRetentionKeepsCompleteTIDs(t *testing.T) {
	txns := []*graph.Graph{hubTxn("small0", 2), hubTxn("big", 40), hubTxn("small1", 2)}
	parent := singleEdgeParent(txns)
	child, ne := twoLeafStar(parent)

	// Budget 10: TID 0 retains its full 2-embedding list, TID 1's
	// 40*39 enumeration trips mid-transaction, TID 2 rides after the
	// trip — both demote to seeds.
	got, _ := CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{MaxEmbeddings: 10})
	if got.Support != 3 || fmt.Sprint(got.TIDs) != "[0 1 2]" {
		t.Fatalf("support stayed exact? support=%d tids=%v", got.Support, got.TIDs)
	}
	if !got.Overflowed || got.Embs == nil {
		t.Fatalf("budget trip must leave a seeded overflowed column: overflowed=%v hasLists=%v", got.Overflowed, got.Embs != nil)
	}
	if fmt.Sprint(got.Partial) != "[1 2]" {
		t.Fatalf("partial TIDs %v, want [1 2] (the tripping txn and everything after)", got.Partial)
	}
	if !got.CompleteAt(0) || got.CompleteAt(1) || got.CompleteAt(2) {
		t.Fatalf("CompleteAt split wrong: %v %v %v", got.CompleteAt(0), got.CompleteAt(1), got.CompleteAt(2))
	}
	// TID 0's list is the full 2*1 ordered enumeration; the partial
	// TIDs keep at most SeedsPerTID warm-start seeds.
	if len(got.Embs[0]) != 2 {
		t.Fatalf("complete list holds %d embeddings, want the full enumeration of 2", len(got.Embs[0]))
	}
	for _, i := range []int{1, 2} {
		if len(got.Embs[i]) == 0 || len(got.Embs[i]) > SeedsPerTID {
			t.Fatalf("partial list %d holds %d embeddings, want 1..%d seeds", i, len(got.Embs[i]), SeedsPerTID)
		}
	}

	// The unlimited-budget run agrees on every mined fact.
	free, _ := CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{})
	if free.Support != got.Support || !free.TIDs.Equal(got.TIDs) || free.Overflowed || free.Partial.Len() != 0 {
		t.Fatalf("unlimited run diverged: %+v", free)
	}
}

// TestPartialRetentionExtendsWithoutSearch pins the payoff of keeping
// complete lists on a partially-overflowed parent: a TID whose parent
// list is complete proves absence with no isomorphism search, and the
// Partial TIDs' seeds prove presence with no search either — the next
// level mines off a tripped column at zero fallback cost here.
func TestPartialRetentionExtendsWithoutSearch(t *testing.T) {
	txns := []*graph.Graph{hubTxn("small0", 2), hubTxn("big", 40), hubTxn("small1", 3)}
	parent := singleEdgeParent(txns)
	child, ne := twoLeafStar(parent)

	mid, _ := CountExtension(txns, parent, child, "c", ne, parent.TIDs, CountOptions{MaxEmbeddings: 10})
	if fmt.Sprint(mid.Partial) != "[1 2]" {
		t.Fatalf("fixture: partial %v, want [1 2]", mid.Partial)
	}

	// Extend to the three-leaf star. TID 0 (fan 2) cannot host it:
	// its complete list proves the absence. TIDs 1 and 2 host it and
	// their seeds extend directly.
	gchild := child.Clone()
	ne2 := gchild.AddEdge(0, gchild.AddVertex("v1"), "e")
	out, st := CountExtension(txns, mid, gchild, "g", ne2, mid.TIDs, CountOptions{MaxEmbeddings: 10})
	if out.Support != 2 || fmt.Sprint(out.TIDs) != "[1 2]" {
		t.Fatalf("grandchild lost exactness: support=%d tids=%v", out.Support, out.TIDs)
	}
	if st.IsoTests != 0 {
		t.Fatalf("ran %d fallback searches, want 0: complete lists prove absence, seeds prove presence", st.IsoTests)
	}
}

// TestPartialColumnSurvivesRebase checks Rebase carries the Partial
// set alongside the TIDs when a persisted column is grafted onto a
// delta run's candidate.
func TestPartialColumnSurvivesRebase(t *testing.T) {
	txns := []*graph.Graph{hubTxn("a", 2), hubTxn("b", 40)}
	parent := singleEdgeParent(txns)
	child, ne := twoLeafStar(parent)
	stored, _ := CountExtension(txns, parent, child, iso.Code(child), ne, parent.TIDs, CountOptions{MaxEmbeddings: 4})
	if stored.Partial.Len() == 0 {
		t.Fatal("fixture did not produce a partial column")
	}
	out, ok := Rebase(stored, child, stored.Code)
	if !ok {
		t.Fatal("rebase failed")
	}
	if !out.Partial.Equal(stored.Partial) || !out.TIDs.Equal(stored.TIDs) || out.Overflowed != stored.Overflowed {
		t.Fatalf("rebase dropped the partial column: %+v", out)
	}
	if !out.CompleteAt(0) || out.CompleteAt(1) {
		t.Fatalf("rebased CompleteAt split wrong: %v %v", out.CompleteAt(0), out.CompleteAt(1))
	}
}
