package pattern

import (
	"math/rand"
	"testing"
)

// intersectSortedTIDs is the sorted-[]int merge the miner used before
// TIDSet — kept here verbatim as the benchmark baseline.
func intersectSortedTIDs(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// benchSets draws two random TID sets of the given density over the
// universe. density 0.5 models the hot fsg case (high-support
// patterns over the reference workload's transaction count); density
// 0.01 models sparse low-support columns that stay in array
// containers.
func benchSets(universe int, density float64) (a, b []int) {
	rng := rand.New(rand.NewSource(1902))
	for v := 0; v < universe; v++ {
		if rng.Float64() < density {
			a = append(a, v)
		}
		if rng.Float64() < density {
			b = append(b, v)
		}
	}
	return a, b
}

func BenchmarkTIDIntersect(b *testing.B) {
	cases := []struct {
		name     string
		universe int
		density  float64
	}{
		{"dense50pct-128k", 1 << 17, 0.50},
		{"mid10pct-128k", 1 << 17, 0.10},
		{"sparse1pct-128k", 1 << 17, 0.01},
	}
	for _, c := range cases {
		la, lb := benchSets(c.universe, c.density)
		sa, sb := TIDSetFromSlice(la), TIDSetFromSlice(lb)
		b.Run(c.name+"/sorted-slice", func(b *testing.B) {
			b.ReportMetric(float64(len(la)), "members")
			for i := 0; i < b.N; i++ {
				sink = len(intersectSortedTIDs(la, lb))
			}
		})
		b.Run(c.name+"/tidset-and", func(b *testing.B) {
			b.ReportMetric(float64(sa.Len()), "members")
			for i := 0; i < b.N; i++ {
				got := sa.And(sb)
				sink = got.Len()
			}
		})
		b.Run(c.name+"/tidset-andcard", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = sa.AndCard(sb)
			}
		})
	}
}

var sink int
