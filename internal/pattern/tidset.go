package pattern

import (
	"fmt"
	"iter"
	"math/bits"
	"sort"
	"strconv"
)

// TIDSet is a compressed set of transaction IDs — the representation
// behind Pattern.TIDs. It is a roaring-style two-level structure
// (Chambi et al., "Better bitmap performance with Roaring bitmaps"):
// TIDs are chunked by their high bits (tid >> 16) and each chunk is
// stored as either a sorted array of the low 16 bits (small chunks)
// or a 1024-word bitmap (dense chunks), so the set operations the
// miner's hot loops run — downward-closure intersection, delta-fold
// trimming, membership probes — work a word at a time instead of an
// element at a time.
//
// The container invariant is canonical: a chunk with at most
// tidArrayMax members is always an array, a larger chunk is always a
// bitmap. Every constructor and set operation restores the invariant,
// which is what makes Equal a plain payload comparison.
//
// Like the []int it replaces, a TIDSet is built once (ascending Add
// calls or a constructor) and then treated as immutable by everything
// that shares it; the query methods are safe for concurrent readers.
type TIDSet struct {
	keys []uint32       // ascending chunk keys (tid >> 16)
	cons []tidContainer // cons[i] holds the chunk keys[i]
	card int            // total members across all containers
}

const (
	tidChunkShift = 16
	tidChunkMask  = 1<<tidChunkShift - 1
	// tidArrayMax is the array→bitmap conversion threshold: past this
	// cardinality the 8 KiB bitmap is smaller than the sorted array
	// would be (4096 × 2 bytes) and word-parallel besides.
	tidArrayMax = 4096
	// tidWords is the word count of a bitmap container (2^16 bits).
	tidWords = 1 << (tidChunkShift - 6)
)

// tidContainer is one 2^16-TID chunk: exactly one of arr/bits is
// non-nil. arr holds the low 16 bits sorted ascending; bits is a
// tidWords-long bitmap. n caches the cardinality.
type tidContainer struct {
	arr  []uint16
	bits []uint64
	n    int
}

// NewTIDSet builds a set from the given TIDs (any order, duplicates
// ignored). All TIDs must be non-negative.
func NewTIDSet(tids ...int) TIDSet {
	return TIDSetFromSlice(tids)
}

// TIDSetFromSlice builds a set from a slice of TIDs (any order,
// duplicates ignored).
func TIDSetFromSlice(tids []int) TIDSet {
	var s TIDSet
	if len(tids) == 0 {
		return s
	}
	if !sort.IntsAreSorted(tids) {
		sorted := append([]int(nil), tids...)
		sort.Ints(sorted)
		tids = sorted
	}
	for _, tid := range tids {
		s.Add(tid)
	}
	return s
}

// Add inserts tid. Ascending inserts (the mining order) are O(1)
// amortised; out-of-order inserts cost a binary search and possibly a
// mid-slice insertion.
func (s *TIDSet) Add(tid int) {
	if tid < 0 {
		panic("pattern: negative TID")
	}
	key := uint32(tid >> tidChunkShift)
	low := uint16(tid & tidChunkMask)
	// Fast path: appending at or into the last chunk.
	ci := len(s.keys) - 1
	if ci < 0 || s.keys[ci] < key {
		s.keys = append(s.keys, key)
		s.cons = append(s.cons, tidContainer{arr: []uint16{low}, n: 1})
		s.card++
		return
	}
	if s.keys[ci] != key {
		ci = sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
		if ci == len(s.keys) || s.keys[ci] != key {
			s.keys = append(s.keys, 0)
			copy(s.keys[ci+1:], s.keys[ci:])
			s.keys[ci] = key
			s.cons = append(s.cons, tidContainer{})
			copy(s.cons[ci+1:], s.cons[ci:])
			s.cons[ci] = tidContainer{arr: []uint16{low}, n: 1}
			s.card++
			return
		}
	}
	c := &s.cons[ci]
	if c.bits != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&b == 0 {
			c.bits[w] |= b
			c.n++
			s.card++
		}
		return
	}
	// Array container: ascending append fast path first.
	if last := len(c.arr) - 1; last < 0 || c.arr[last] < low {
		c.arr = append(c.arr, low)
	} else {
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
		if i < len(c.arr) && c.arr[i] == low {
			return
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[i+1:], c.arr[i:])
		c.arr[i] = low
	}
	c.n++
	s.card++
	if c.n > tidArrayMax {
		c.toBitmap()
	}
}

func (c *tidContainer) toBitmap() {
	bits := make([]uint64, tidWords)
	for _, v := range c.arr {
		bits[v>>6] |= uint64(1) << (v & 63)
	}
	c.bits, c.arr = bits, nil
}

// toArray restores the canonical array form of a bitmap container
// whose cardinality dropped to tidArrayMax or below.
func (c *tidContainer) toArray() {
	arr := make([]uint16, 0, c.n)
	for w, word := range c.bits {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.arr, c.bits = arr, nil
}

// canonical enforces the array/bitmap threshold invariant.
func (c *tidContainer) canonical() {
	if c.bits != nil && c.n <= tidArrayMax {
		c.toArray()
	}
}

func (c *tidContainer) contains(low uint16) bool {
	if c.bits != nil {
		return c.bits[low>>6]&(uint64(1)<<(low&63)) != 0
	}
	i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
	return i < len(c.arr) && c.arr[i] == low
}

// Len returns the number of TIDs in the set.
func (s TIDSet) Len() int { return s.card }

// IsEmpty reports whether the set has no members.
func (s TIDSet) IsEmpty() bool { return s.card == 0 }

// Contains reports whether tid is a member.
func (s TIDSet) Contains(tid int) bool {
	if tid < 0 {
		return false
	}
	key := uint32(tid >> tidChunkShift)
	ci := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	if ci == len(s.keys) || s.keys[ci] != key {
		return false
	}
	return s.cons[ci].contains(uint16(tid & tidChunkMask))
}

// Min returns the smallest member, or -1 if the set is empty.
func (s TIDSet) Min() int {
	if s.card == 0 {
		return -1
	}
	c, base := &s.cons[0], int(s.keys[0])<<tidChunkShift
	if c.bits != nil {
		for w, word := range c.bits {
			if word != 0 {
				return base + w<<6 + bits.TrailingZeros64(word)
			}
		}
	}
	return base + int(c.arr[0])
}

// Max returns the largest member, or -1 if the set is empty.
func (s TIDSet) Max() int {
	if s.card == 0 {
		return -1
	}
	last := len(s.cons) - 1
	c, base := &s.cons[last], int(s.keys[last])<<tidChunkShift
	if c.bits != nil {
		for w := tidWords - 1; w >= 0; w-- {
			if word := c.bits[w]; word != 0 {
				return base + w<<6 + 63 - bits.LeadingZeros64(word)
			}
		}
	}
	return base + int(c.arr[len(c.arr)-1])
}

// Slice returns the members ascending as a fresh []int.
func (s TIDSet) Slice() []int {
	return s.AppendTo(make([]int, 0, s.card))
}

// AppendTo appends the members ascending to dst and returns it.
func (s TIDSet) AppendTo(dst []int) []int {
	for ci := range s.cons {
		base := int(s.keys[ci]) << tidChunkShift
		c := &s.cons[ci]
		if c.bits != nil {
			for w, word := range c.bits {
				for word != 0 {
					dst = append(dst, base+w<<6+bits.TrailingZeros64(word))
					word &= word - 1
				}
			}
			continue
		}
		for _, v := range c.arr {
			dst = append(dst, base+int(v))
		}
	}
	return dst
}

// All iterates the members ascending as (position, tid) pairs — the
// positional index is what aligns Pattern.TIDs with Pattern.Embs.
func (s TIDSet) All() iter.Seq2[int, int] {
	return func(yield func(int, int) bool) {
		pos := 0
		for ci := range s.cons {
			base := int(s.keys[ci]) << tidChunkShift
			c := &s.cons[ci]
			if c.bits != nil {
				for w, word := range c.bits {
					for word != 0 {
						if !yield(pos, base+w<<6+bits.TrailingZeros64(word)) {
							return
						}
						pos++
						word &= word - 1
					}
				}
				continue
			}
			for _, v := range c.arr {
				if !yield(pos, base+int(v)) {
					return
				}
				pos++
			}
		}
	}
}

// Values iterates the members ascending.
func (s TIDSet) Values() iter.Seq[int] {
	return func(yield func(int) bool) {
		for _, tid := range s.All() {
			if !yield(tid) {
				return
			}
		}
	}
}

// Clone returns a deep copy that shares no storage with s.
func (s TIDSet) Clone() TIDSet {
	out := TIDSet{card: s.card}
	if len(s.keys) == 0 {
		return out
	}
	out.keys = append([]uint32(nil), s.keys...)
	out.cons = make([]tidContainer, len(s.cons))
	for i := range s.cons {
		c := &s.cons[i]
		out.cons[i] = tidContainer{n: c.n}
		if c.bits != nil {
			out.cons[i].bits = append([]uint64(nil), c.bits...)
		} else {
			out.cons[i].arr = append([]uint16(nil), c.arr...)
		}
	}
	return out
}

// Equal reports whether s and o hold the same members. Thanks to the
// canonical container invariant this is a direct payload comparison.
func (s TIDSet) Equal(o TIDSet) bool {
	if s.card != o.card || len(s.keys) != len(o.keys) {
		return false
	}
	for i := range s.keys {
		if s.keys[i] != o.keys[i] || s.cons[i].n != o.cons[i].n {
			return false
		}
		a, b := &s.cons[i], &o.cons[i]
		if (a.bits != nil) != (b.bits != nil) {
			return false
		}
		if a.bits != nil {
			for w := range a.bits {
				if a.bits[w] != b.bits[w] {
					return false
				}
			}
			continue
		}
		for j := range a.arr {
			if a.arr[j] != b.arr[j] {
				return false
			}
		}
	}
	return true
}

// And returns the intersection of s and o as a new set. Matching
// bitmap chunks intersect 64 members per AND.
func (s TIDSet) And(o TIDSet) TIDSet {
	var out TIDSet
	i, j := 0, 0
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			i++
		case s.keys[i] > o.keys[j]:
			j++
		default:
			if c := andContainers(&s.cons[i], &o.cons[j]); c.n > 0 {
				out.keys = append(out.keys, s.keys[i])
				out.cons = append(out.cons, c)
				out.card += c.n
			}
			i++
			j++
		}
	}
	return out
}

// AndCard returns the cardinality of the intersection without
// materialising it.
func (s TIDSet) AndCard(o TIDSet) int {
	n, i, j := 0, 0, 0
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			i++
		case s.keys[i] > o.keys[j]:
			j++
		default:
			n += andCardContainers(&s.cons[i], &o.cons[j])
			i++
			j++
		}
	}
	return n
}

func andContainers(a, b *tidContainer) tidContainer {
	switch {
	case a.bits != nil && b.bits != nil:
		bitsOut := make([]uint64, tidWords)
		n := 0
		for w := range bitsOut {
			bitsOut[w] = a.bits[w] & b.bits[w]
			n += bits.OnesCount64(bitsOut[w])
		}
		c := tidContainer{bits: bitsOut, n: n}
		c.canonical()
		return c
	case a.bits != nil:
		return andArrayBitmap(b.arr, a.bits)
	case b.bits != nil:
		return andArrayBitmap(a.arr, b.bits)
	default:
		// Both arrays: sorted merge, galloping when very unbalanced.
		x, y := a.arr, b.arr
		if len(x) > len(y) {
			x, y = y, x
		}
		arr := make([]uint16, 0, len(x))
		if len(y) >= 32*len(x) {
			lo := 0
			for _, v := range x {
				i := lo + sort.Search(len(y)-lo, func(i int) bool { return y[lo+i] >= v })
				if i < len(y) && y[i] == v {
					arr = append(arr, v)
					i++
				}
				lo = i
			}
		} else {
			i, j := 0, 0
			for i < len(x) && j < len(y) {
				switch {
				case x[i] < y[j]:
					i++
				case x[i] > y[j]:
					j++
				default:
					arr = append(arr, x[i])
					i++
					j++
				}
			}
		}
		return tidContainer{arr: arr, n: len(arr)}
	}
}

func andArrayBitmap(arr []uint16, bm []uint64) tidContainer {
	out := make([]uint16, 0, len(arr))
	for _, v := range arr {
		if bm[v>>6]&(uint64(1)<<(v&63)) != 0 {
			out = append(out, v)
		}
	}
	return tidContainer{arr: out, n: len(out)}
}

func andCardContainers(a, b *tidContainer) int {
	switch {
	case a.bits != nil && b.bits != nil:
		n := 0
		for w := range a.bits {
			n += bits.OnesCount64(a.bits[w] & b.bits[w])
		}
		return n
	case a.bits != nil:
		return countArrayInBitmap(b.arr, a.bits)
	case b.bits != nil:
		return countArrayInBitmap(a.arr, b.bits)
	default:
		n, i, j := 0, 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	}
}

func countArrayInBitmap(arr []uint16, bm []uint64) int {
	n := 0
	for _, v := range arr {
		if bm[v>>6]&(uint64(1)<<(v&63)) != 0 {
			n++
		}
	}
	return n
}

// AndNot returns the set difference s \ o as a new set — the
// word-parallel TID subtraction behind transaction retirement
// (fsg.RetireDelta): matching bitmap chunks clear 64 members per
// AND-NOT. Chunks of s with no counterpart in o copy over whole;
// chunks whose difference comes out empty are dropped, so the result
// keeps the canonical container invariant.
func (s TIDSet) AndNot(o TIDSet) TIDSet {
	var out TIDSet
	j := 0
	for i := range s.keys {
		for j < len(o.keys) && o.keys[j] < s.keys[i] {
			j++
		}
		if j == len(o.keys) || o.keys[j] != s.keys[i] {
			c := s.cons[i].clone()
			out.keys = append(out.keys, s.keys[i])
			out.cons = append(out.cons, c)
			out.card += c.n
			continue
		}
		if c := andNotContainers(&s.cons[i], &o.cons[j]); c.n > 0 {
			out.keys = append(out.keys, s.keys[i])
			out.cons = append(out.cons, c)
			out.card += c.n
		}
		j++
	}
	return out
}

func andNotContainers(a, b *tidContainer) tidContainer {
	switch {
	case a.bits != nil && b.bits != nil:
		bitsOut := make([]uint64, tidWords)
		n := 0
		for w := range bitsOut {
			bitsOut[w] = a.bits[w] &^ b.bits[w]
			n += bits.OnesCount64(bitsOut[w])
		}
		c := tidContainer{bits: bitsOut, n: n}
		c.canonical()
		return c
	case a.bits != nil:
		// Bitmap minus array: copy the words, clear each array member.
		bitsOut := append([]uint64(nil), a.bits...)
		for _, v := range b.arr {
			bitsOut[v>>6] &^= uint64(1) << (v & 63)
		}
		n := 0
		for _, w := range bitsOut {
			n += bits.OnesCount64(w)
		}
		c := tidContainer{bits: bitsOut, n: n}
		c.canonical()
		return c
	case b.bits != nil:
		// Array minus bitmap: keep the probes that miss.
		arr := make([]uint16, 0, len(a.arr))
		for _, v := range a.arr {
			if b.bits[v>>6]&(uint64(1)<<(v&63)) == 0 {
				arr = append(arr, v)
			}
		}
		return tidContainer{arr: arr, n: len(arr)}
	default:
		// Both arrays: sorted merge, skipping common members.
		arr := make([]uint16, 0, len(a.arr))
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				arr = append(arr, a.arr[i])
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				i++
				j++
			}
		}
		arr = append(arr, a.arr[i:]...)
		return tidContainer{arr: arr, n: len(arr)}
	}
}

// Or returns the union of s and o as a new set.
func (s TIDSet) Or(o TIDSet) TIDSet {
	var out TIDSet
	i, j := 0, 0
	appendChunk := func(key uint32, c *tidContainer) {
		cp := tidContainer{n: c.n}
		if c.bits != nil {
			cp.bits = append([]uint64(nil), c.bits...)
		} else {
			cp.arr = append([]uint16(nil), c.arr...)
		}
		out.keys = append(out.keys, key)
		out.cons = append(out.cons, cp)
		out.card += cp.n
	}
	for i < len(s.keys) || j < len(o.keys) {
		switch {
		case j == len(o.keys) || (i < len(s.keys) && s.keys[i] < o.keys[j]):
			appendChunk(s.keys[i], &s.cons[i])
			i++
		case i == len(s.keys) || o.keys[j] < s.keys[i]:
			appendChunk(o.keys[j], &o.cons[j])
			j++
		default:
			c := orContainers(&s.cons[i], &o.cons[j])
			out.keys = append(out.keys, s.keys[i])
			out.cons = append(out.cons, c)
			out.card += c.n
			i++
			j++
		}
	}
	return out
}

func orContainers(a, b *tidContainer) tidContainer {
	if a.bits == nil && b.bits == nil && a.n+b.n <= tidArrayMax {
		arr := make([]uint16, 0, a.n+b.n)
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				arr = append(arr, a.arr[i])
				i++
			case a.arr[i] > b.arr[j]:
				arr = append(arr, b.arr[j])
				j++
			default:
				arr = append(arr, a.arr[i])
				i++
				j++
			}
		}
		arr = append(arr, a.arr[i:]...)
		arr = append(arr, b.arr[j:]...)
		return tidContainer{arr: arr, n: len(arr)}
	}
	bitsOut := make([]uint64, tidWords)
	fill := func(c *tidContainer) {
		if c.bits != nil {
			for w := range bitsOut {
				bitsOut[w] |= c.bits[w]
			}
			return
		}
		for _, v := range c.arr {
			bitsOut[v>>6] |= uint64(1) << (v & 63)
		}
	}
	fill(a)
	fill(b)
	n := 0
	for _, w := range bitsOut {
		n += bits.OnesCount64(w)
	}
	c := tidContainer{bits: bitsOut, n: n}
	c.canonical()
	return c
}

// TrimBelow returns the subset of members >= lo — the delta fold's
// "appended transactions only" filter.
func (s TIDSet) TrimBelow(lo int) TIDSet {
	if lo <= 0 || s.card == 0 {
		return s
	}
	key := uint32(lo >> tidChunkShift)
	low := uint16(lo & tidChunkMask)
	ci := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	var out TIDSet
	if ci < len(s.keys) && s.keys[ci] == key {
		c := &s.cons[ci]
		var keep tidContainer
		if c.bits != nil {
			bitsOut := make([]uint64, tidWords)
			w := int(low >> 6)
			bitsOut[w] = c.bits[w] &^ (uint64(1)<<(low&63) - 1)
			copy(bitsOut[w+1:], c.bits[w+1:])
			n := 0
			for _, word := range bitsOut {
				n += bits.OnesCount64(word)
			}
			keep = tidContainer{bits: bitsOut, n: n}
			keep.canonical()
		} else {
			i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
			if i < len(c.arr) {
				keep = tidContainer{arr: append([]uint16(nil), c.arr[i:]...)}
				keep.n = len(keep.arr)
			}
		}
		if keep.n > 0 {
			out.keys = append(out.keys, key)
			out.cons = append(out.cons, keep)
			out.card += keep.n
		}
		ci++
	}
	for ; ci < len(s.keys); ci++ {
		c := s.cons[ci].clone()
		out.keys = append(out.keys, s.keys[ci])
		out.cons = append(out.cons, c)
		out.card += c.n
	}
	return out
}

func (c *tidContainer) clone() tidContainer {
	cp := tidContainer{n: c.n}
	if c.bits != nil {
		cp.bits = append([]uint64(nil), c.bits...)
	} else {
		cp.arr = append([]uint16(nil), c.arr...)
	}
	return cp
}

// Offset returns a new set with k added to every member — the
// structural store's per-repetition TID shift, and (with negative k)
// the survivor renumbering after a prefix retirement (every member
// must then be >= -k; a violation panics, since a negative TID can
// never be a valid transaction index). Members shift in ascending
// order, so the rebuild stays on Add's O(1) append fast path.
func (s TIDSet) Offset(k int) TIDSet {
	if k == 0 {
		return s.Clone()
	}
	var out TIDSet
	for tid := range s.Values() {
		out.Add(tid + k)
	}
	return out
}

// Cursor returns a monotone membership prober: successive Contains
// calls with ascending TIDs advance a chunk cursor instead of
// re-searching the key directory. The cursor is call-site-local
// state, so concurrent readers each take their own.
func (s *TIDSet) Cursor() TIDCursor { return TIDCursor{s: s} }

// TIDCursor probes one TIDSet with ascending TIDs. Probing out of
// order may miss members (it only moves forward).
type TIDCursor struct {
	s  *TIDSet
	ci int
}

// Contains reports membership of tid, assuming tid is >= every
// previously probed value.
func (c *TIDCursor) Contains(tid int) bool {
	key := uint32(tid >> tidChunkShift)
	s := c.s
	for c.ci < len(s.keys) && s.keys[c.ci] < key {
		c.ci++
	}
	if c.ci == len(s.keys) || s.keys[c.ci] != key {
		return false
	}
	return s.cons[c.ci].contains(uint16(tid & tidChunkMask))
}

// TIDChunk is one container of a TIDSet, exposed for serialisation
// (internal/store's bitset column encoding): exactly one of Arr/Bits
// is non-nil. The payload slices are the set's own storage and must
// be treated as read-only.
type TIDChunk struct {
	Key  uint32   // tid >> 16 of every member
	Arr  []uint16 // sorted low 16 bits (array container)
	Bits []uint64 // tidWords-long bitmap (bitmap container)
	N    int      // cardinality
}

// NumChunks returns the number of containers.
func (s TIDSet) NumChunks() int { return len(s.cons) }

// Chunks iterates the containers ascending by key.
func (s TIDSet) Chunks() iter.Seq[TIDChunk] {
	return func(yield func(TIDChunk) bool) {
		for i := range s.cons {
			c := &s.cons[i]
			if !yield(TIDChunk{Key: s.keys[i], Arr: c.arr, Bits: c.bits, N: c.n}) {
				return
			}
		}
	}
}

// AddChunk appends one decoded container: keys must arrive ascending
// and exactly one of Arr (strictly ascending) / Bits (length 1024)
// must be non-nil. The set takes ownership of the payload slice and
// restores the canonical array/bitmap threshold itself, so decoders
// need not trust the on-disk representation choice.
func (s *TIDSet) AddChunk(ch TIDChunk) error {
	if n := len(s.keys); n > 0 && s.keys[n-1] >= ch.Key {
		return fmt.Errorf("pattern: TID chunk key %d after %d (keys must ascend)", ch.Key, s.keys[n-1])
	}
	if (ch.Arr == nil) == (ch.Bits == nil) {
		return fmt.Errorf("pattern: TID chunk needs exactly one of array/bitmap payloads")
	}
	c := tidContainer{}
	if ch.Bits != nil {
		if len(ch.Bits) != tidWords {
			return fmt.Errorf("pattern: TID bitmap chunk has %d words, want %d", len(ch.Bits), tidWords)
		}
		c.bits = ch.Bits
		for _, w := range ch.Bits {
			c.n += bits.OnesCount64(w)
		}
	} else {
		for i := 1; i < len(ch.Arr); i++ {
			if ch.Arr[i-1] >= ch.Arr[i] {
				return fmt.Errorf("pattern: TID array chunk not strictly ascending at %d", i)
			}
		}
		c.arr = ch.Arr
		c.n = len(ch.Arr)
	}
	if c.n == 0 {
		return fmt.Errorf("pattern: empty TID chunk %d", ch.Key)
	}
	if c.arr != nil && c.n > tidArrayMax {
		c.toBitmap()
	}
	c.canonical()
	s.keys = append(s.keys, ch.Key)
	s.cons = append(s.cons, c)
	s.card += c.n
	return nil
}

// String renders the set exactly like fmt.Sprint of the ascending
// []int it replaces (e.g. "[0 1 5]"), keeping logs and test output
// stable across the representation change.
func (s TIDSet) String() string {
	b := make([]byte, 0, 2+8*s.card)
	b = append(b, '[')
	first := true
	for tid := range s.Values() {
		if !first {
			b = append(b, ' ')
		}
		first = false
		b = strconv.AppendInt(b, int64(tid), 10)
	}
	return string(append(b, ']'))
}
