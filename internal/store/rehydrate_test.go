package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// TestRehydrationRoundTrip writes a randomised store and reads it
// back through the bulk rehydration path delta mining uses —
// Transactions, LevelPatterns, AllLevelPatterns — asserting
// element-for-element equality with what was written.
func TestRehydrationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	txns := []*graph.Graph{randGraph(rng, "t0"), randGraph(rng, "t1"), randGraph(rng, "t2")}
	levels := map[int][]pattern.Pattern{
		1: {randPattern(rng, 1, len(txns)), randPattern(rng, 1, len(txns))},
		2: {randPattern(rng, 2, len(txns))},
	}
	path := tmpStore(t)
	writeStore(t, path, Meta{Name: "rehydrate", Kind: "fsg"}, txns, levels)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gotTxns, err := r.Transactions()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTxns) != len(txns) {
		t.Fatalf("rehydrated %d transactions, wrote %d", len(gotTxns), len(txns))
	}
	for i := range txns {
		sameGraphBytes(t, txns[i], gotTxns[i])
	}
	all, err := r.AllLevelPatterns()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(levels) {
		t.Fatalf("rehydrated %d levels, wrote %d", len(all), len(levels))
	}
	for edges, want := range levels {
		got, err := r.LevelPatterns(edges)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("level %d: rehydrated %d patterns, wrote %d", edges, len(got), len(want))
		}
		for i := range want {
			samePattern(t, &want[i], &got[i])
			samePattern(t, &all[edges][i], &got[i])
		}
	}
	if got, err := r.LevelPatterns(99); err != nil || len(got) != 0 {
		t.Fatalf("absent level: %v patterns, err %v", got, err)
	}
}

// TestVerifyPrefix pins the delta pre-condition check: the stored
// transactions must be an exact byte prefix of the supplied list.
func TestVerifyPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	txns := []*graph.Graph{randGraph(rng, "a"), randGraph(rng, "b"), randGraph(rng, "c")}
	path := tmpStore(t)
	writeStore(t, path, Meta{Kind: "fsg"}, txns[:2], nil)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.VerifyPrefix(txns); err != nil {
		t.Fatalf("true prefix rejected: %v", err)
	}
	if err := r.VerifyPrefix(txns[:2]); err != nil {
		t.Fatalf("exact match rejected: %v", err)
	}
	if err := r.VerifyPrefix(txns[:1]); err == nil || !strings.Contains(err.Error(), "must extend") {
		t.Fatalf("shorter list accepted: %v", err)
	}
	reordered := []*graph.Graph{txns[1], txns[0], txns[2]}
	if err := r.VerifyPrefix(reordered); err == nil || !strings.Contains(err.Error(), "not a prefix") {
		t.Fatalf("reordered list accepted: %v", err)
	}
}

// TestMetaProvenanceRoundTrip checks the delta/Algorithm 1 metadata
// extension survives the JSON index and renders in the stats report —
// and that a store written without it reads back as generation 0.
func TestMetaProvenanceRoundTrip(t *testing.T) {
	path := tmpStore(t)
	meta := Meta{
		Name: "prov", Kind: "structural", MinSupport: 3,
		Parent: "/some/parent.tnd", Generation: 2,
		Repetitions: 4, Partitions: 80, Seed: 17, Strategy: "BF",
	}
	writeStore(t, path, meta, []*graph.Graph{graph.New("t")}, nil)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Meta()
	if got.Parent != meta.Parent || got.Generation != meta.Generation ||
		got.Repetitions != meta.Repetitions || got.Partitions != meta.Partitions ||
		got.Seed != meta.Seed || got.Strategy != meta.Strategy {
		t.Fatalf("provenance mangled: %+v", got)
	}
	report := ReadStats(r).String()
	for _, want := range []string{"generation=2", "parent=/some/parent.tnd", "repetitions=4", "strategy=BF"} {
		if !strings.Contains(report, want) {
			t.Fatalf("stats report lacks %q:\n%s", want, report)
		}
	}

	plain := tmpStore(t)
	writeStore(t, plain, Meta{Kind: "fsg"}, []*graph.Graph{graph.New("t")}, nil)
	pr, err := Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if m := pr.Meta(); m.Parent != "" || m.Generation != 0 || m.Repetitions != 0 {
		t.Fatalf("full-mine store grew provenance: %+v", m)
	}
}

// TestDumpPatternsEquivalence pins the dump as an equality oracle:
// two stores with the same mined content dump identically regardless
// of metadata, and any support/TID difference shows.
func TestDumpPatternsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	txns := []*graph.Graph{randGraph(rng, "a"), randGraph(rng, "b")}
	levels := map[int][]pattern.Pattern{1: {randPattern(rng, 1, len(txns))}}

	dump := func(meta Meta, lv map[int][]pattern.Pattern) string {
		path := filepath.Join(t.TempDir(), "d.tnd")
		writeStore(t, path, meta, txns, lv)
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		s, err := DumpPatterns(r)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	a := dump(Meta{Name: "x", Kind: "fsg"}, levels)
	b := dump(Meta{Name: "y", Kind: "temporal", Parent: "p", Generation: 3, CreatedUnix: 1}, levels)
	if a != b {
		t.Fatalf("metadata leaked into the dump:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, fmt.Sprintf("support=%d", levels[1][0].Support)) {
		t.Fatalf("dump lacks support: %s", a)
	}
	changed := map[int][]pattern.Pattern{1: {levels[1][0]}}
	changed[1][0].Support++
	changed[1][0].TIDs = changed[1][0].TIDs.Clone()
	if c := dump(Meta{Kind: "fsg"}, changed); c == a {
		t.Fatal("support change did not change the dump")
	}
}
