package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

// --- helpers ---

func tmpStore(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.tnd")
}

// randGraph builds a random connected-ish dense graph.
func randGraph(rng *rand.Rand, name string) *graph.Graph {
	g := graph.New(name)
	nv := 1 + rng.Intn(6)
	for i := 0; i < nv; i++ {
		g.AddVertex(fmt.Sprintf("L%d", rng.Intn(4)))
	}
	ne := rng.Intn(8)
	for i := 0; i < ne; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(nv)), graph.VertexID(rng.Intn(nv)),
			fmt.Sprintf("w%d", rng.Intn(3)))
	}
	return g
}

// randPattern builds a random pattern record exercising every flag
// combination: nil lists, seed lists, complete lists, empty per-TID
// lists, exact and "~"-approximate codes.
func randPattern(rng *rand.Rand, edges, numTxns int) pattern.Pattern {
	g := graph.New("pat")
	nv := 1 + rng.Intn(4)
	for i := 0; i < nv; i++ {
		g.AddVertex(fmt.Sprintf("L%d", rng.Intn(3)))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(nv)), graph.VertexID(rng.Intn(nv)), "e")
	}
	code := fmt.Sprintf("~%x", rng.Uint64()) // fsg-style approximate code
	if rng.Intn(3) == 0 {
		code = fmt.Sprintf("v%d:exact(%d)", nv, rng.Intn(100)) // exact-style code
	}
	var tids []int
	for t := 0; t < numTxns; t++ {
		if rng.Intn(2) == 0 {
			tids = append(tids, t)
		}
	}
	if len(tids) == 0 {
		tids = []int{rng.Intn(numTxns)}
	}
	p := pattern.Pattern{Graph: g, Code: code, Support: len(tids), TIDs: pattern.TIDSetFromSlice(tids)}
	switch rng.Intn(4) {
	case 0: // no lists, overflowed (DropEmbeddings shape)
		p.Overflowed = true
	case 1: // complete lists, possibly with empty per-TID slots
		p.Embs = randEmbs(rng, len(tids), nv, edges, true)
	case 2: // seed lists (budget-overflowed pattern)
		p.Embs = randEmbs(rng, len(tids), nv, edges, false)
		p.Overflowed = true
		if rng.Intn(2) == 0 {
			// Per-TID partial retention: mark a nonempty subset of the
			// TIDs as seeds-only.
			for _, tid := range tids {
				if rng.Intn(2) == 0 {
					p.Partial.Add(tid)
				}
			}
			if p.Partial.IsEmpty() {
				p.Partial.Add(tids[rng.Intn(len(tids))])
			}
		}
	case 3: // non-overflowed with no lists at all (level untracked)
	}
	return p
}

func randEmbs(rng *rand.Rand, n, nv, ne int, allowEmpty bool) [][]iso.DenseEmbedding {
	out := make([][]iso.DenseEmbedding, n)
	for i := range out {
		cnt := rng.Intn(4)
		if !allowEmpty && cnt == 0 {
			cnt = 1
		}
		for j := 0; j < cnt; j++ {
			verts := make([]graph.VertexID, nv)
			for k := range verts {
				verts[k] = graph.VertexID(rng.Intn(50))
			}
			edges := make([]graph.EdgeID, ne)
			for k := range edges {
				edges[k] = graph.EdgeID(rng.Intn(80))
			}
			out[i] = append(out[i], iso.DenseEmbedding{Verts: verts, Edges: edges})
		}
	}
	return out
}

// sameGraphBytes compares two graphs by full observable state: name,
// caps, live sets, labels and wiring.
func sameGraphBytes(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("graph name %q != %q", got.Name, want.Name)
	}
	if want.VertexCap() != got.VertexCap() || want.EdgeCap() != got.EdgeCap() {
		t.Fatalf("caps (%d,%d) != (%d,%d)", got.VertexCap(), got.EdgeCap(), want.VertexCap(), want.EdgeCap())
	}
	for id := 0; id < want.VertexCap(); id++ {
		v := graph.VertexID(id)
		if want.HasVertex(v) != got.HasVertex(v) {
			t.Fatalf("vertex %d liveness mismatch", id)
		}
		if want.HasVertex(v) && want.Vertex(v).Label != got.Vertex(v).Label {
			t.Fatalf("vertex %d label %q != %q", id, got.Vertex(v).Label, want.Vertex(v).Label)
		}
	}
	for id := 0; id < want.EdgeCap(); id++ {
		e := graph.EdgeID(id)
		if want.HasEdge(e) != got.HasEdge(e) {
			t.Fatalf("edge %d liveness mismatch", id)
		}
		if want.HasEdge(e) && want.Edge(e) != got.Edge(e) {
			t.Fatalf("edge %d %+v != %+v", id, got.Edge(e), want.Edge(e))
		}
	}
}

func samePattern(t *testing.T, want, got *pattern.Pattern) {
	t.Helper()
	sameGraphBytes(t, want.Graph, got.Graph)
	if want.Code != got.Code {
		t.Fatalf("code %q != %q", got.Code, want.Code)
	}
	if want.Support != got.Support {
		t.Fatalf("support %d != %d", got.Support, want.Support)
	}
	if !want.TIDs.Equal(got.TIDs) {
		t.Fatalf("TIDs %v != %v", got.TIDs, want.TIDs)
	}
	if !want.Partial.Equal(got.Partial) {
		t.Fatalf("partial TIDs %v != %v", got.Partial, want.Partial)
	}
	if want.Overflowed != got.Overflowed {
		t.Fatalf("overflowed %v != %v", got.Overflowed, want.Overflowed)
	}
	if (want.Embs == nil) != (got.Embs == nil) {
		t.Fatalf("embs presence %v != %v", got.Embs != nil, want.Embs != nil)
	}
	if want.Embs == nil {
		return
	}
	if len(want.Embs) != len(got.Embs) {
		t.Fatalf("embs lists %d != %d", len(got.Embs), len(want.Embs))
	}
	for i := range want.Embs {
		if len(want.Embs[i]) != len(got.Embs[i]) {
			t.Fatalf("embs[%d] len %d != %d", i, len(got.Embs[i]), len(want.Embs[i]))
		}
		for j := range want.Embs[i] {
			if !reflect.DeepEqual(want.Embs[i][j], got.Embs[i][j]) {
				t.Fatalf("embs[%d][%d] %+v != %+v", i, j, got.Embs[i][j], want.Embs[i][j])
			}
		}
	}
}

// writeStore persists txns + levels and returns the path.
func writeStore(t *testing.T, path string, meta Meta, txns []*graph.Graph, levels map[int][]pattern.Pattern) {
	t.Helper()
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevels(levels); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- round-trip property tests ---

// TestRoundTripProperty drives the codec with randomised patterns
// covering every storage shape: save→load must reproduce
// byte-identical graphs, codes, TID lists and dense embeddings,
// including "~"-approximate codes and budget-overflowed patterns with
// empty or absent lists.
func TestRoundTripProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		numTxns := 1 + rng.Intn(6)
		txns := make([]*graph.Graph, numTxns)
		for i := range txns {
			txns[i] = randGraph(rng, fmt.Sprintf("txn%d", i))
		}
		levels := map[int][]pattern.Pattern{}
		for _, edges := range []int{1, 2, 3} {
			n := rng.Intn(5)
			for i := 0; i < n; i++ {
				levels[edges] = append(levels[edges], randPattern(rng, edges, numTxns))
			}
			if len(levels[edges]) == 0 {
				delete(levels, edges)
			}
		}
		path := filepath.Join(t.TempDir(), fmt.Sprintf("trial%d.tnd", trial))
		meta := Meta{Name: "prop", Kind: "fsg", MinSupport: 1, Note: "round-trip property"}
		writeStore(t, path, meta, txns, levels)

		r, err := Open(path)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.NumTransactions() != numTxns {
			t.Fatalf("trial %d: %d transactions, want %d", trial, r.NumTransactions(), numTxns)
		}
		if got := r.Meta(); got.Name != meta.Name || got.Kind != meta.Kind || got.Note != meta.Note {
			t.Fatalf("trial %d: meta %+v != %+v", trial, got, meta)
		}
		for i, want := range txns {
			got, err := r.Transaction(i)
			if err != nil {
				t.Fatal(err)
			}
			sameGraphBytes(t, want, got)
			// Cached second read returns the same instance.
			again, _ := r.Transaction(i)
			if again != got {
				t.Fatalf("trial %d: transaction %d not cached", trial, i)
			}
		}
		idx := 0
		for _, edges := range sortedLevelEdges(levels) {
			start, end := r.LevelRange(edges)
			if end-start != len(levels[edges]) {
				t.Fatalf("trial %d: level %d has %d records, want %d", trial, edges, end-start, len(levels[edges]))
			}
			for i := range levels[edges] {
				want := &levels[edges][i]
				got, err := r.Pattern(start + i)
				if err != nil {
					t.Fatal(err)
				}
				samePattern(t, want, got)
				// The embedding-skipping decode agrees on everything
				// before the embedding section.
				lite, err := r.PatternLite(start + i)
				if err != nil {
					t.Fatal(err)
				}
				if lite.Code != want.Code || lite.Support != want.Support ||
					!lite.TIDs.Equal(want.TIDs) ||
					lite.Overflowed != want.Overflowed || lite.Embs != nil {
					t.Fatalf("trial %d: PatternLite diverged: %+v", trial, lite)
				}
				sameGraphBytes(t, want.Graph, lite.Graph)
				info := r.Info(start + i)
				if info.Code != want.Code || info.Support != want.Support ||
					info.Edges != edges || info.Embeddings != want.NumEmbeddings() ||
					info.HasEmbeddings != want.HasEmbeddings() || info.Overflowed != want.Overflowed {
					t.Fatalf("trial %d: index entry %+v does not match pattern", trial, info)
				}
				found := false
				for _, ri := range r.FindByCode(want.Code) {
					if ri == start+i {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: code %q not indexed to record %d", trial, want.Code, start+i)
				}
				idx++
			}
		}
		if idx != r.NumPatterns() {
			t.Fatalf("trial %d: walked %d records, store has %d", trial, idx, r.NumPatterns())
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRoundTripTombstonedGraph checks that graphs with removed
// vertices and edges (tombstoned ID slots) survive the codec with
// their ID space intact — the property stored embeddings depend on.
func TestRoundTripTombstonedGraph(t *testing.T) {
	g := graph.New("tomb")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	e0 := g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	g.AddEdge(c, a, "z")
	g.RemoveEdge(e0)
	g.RemoveVertex(a) // also tombstones edge c->a
	path := tmpStore(t)
	writeStore(t, path, Meta{}, []*graph.Graph{g}, nil)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Transaction(0)
	if err != nil {
		t.Fatal(err)
	}
	sameGraphBytes(t, g, got)
	if got.Dump() != g.Dump() {
		t.Fatalf("dump mismatch:\n%s\nvs\n%s", got.Dump(), g.Dump())
	}
}

// TestEmptyStore: a store with no transactions and no levels is valid.
func TestEmptyStore(t *testing.T) {
	path := tmpStore(t)
	w, err := Create(path, Meta{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTransactions() != 0 || r.NumPatterns() != 0 || len(r.Levels()) != 0 {
		t.Fatalf("empty store reports %d txns, %d patterns", r.NumTransactions(), r.NumPatterns())
	}
}

// --- format versioning and corruption ---

func validStorePath(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	txns := []*graph.Graph{randGraph(rng, "t0"), randGraph(rng, "t1")}
	pats := map[int][]pattern.Pattern{1: {randPattern(rng, 1, 2)}}
	path := tmpStore(t)
	writeStore(t, path, Meta{Name: "v"}, txns, pats)
	return path
}

func corrupt(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if off < 0 {
		st, _ := f.Stat()
		off += st.Size()
	}
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestRejectWrongMagic: a non-store file must fail with a clear error
// naming the magic, not a garbage decode.
func TestRejectWrongMagic(t *testing.T) {
	path := validStorePath(t)
	corrupt(t, path, 0, []byte("NOTASTOR"))
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

// TestRejectWrongVersion: an unknown format version must be rejected
// with both versions named.
func TestRejectWrongVersion(t *testing.T) {
	path := validStorePath(t)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], FormatVersion+7)
	corrupt(t, path, int64(len(magic)), v[:])
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// TestRejectTruncated: a file cut off mid-footer must be rejected by
// Open (its tail is not a trailer).
func TestRejectTruncated(t *testing.T) {
	path := validStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-trailerSize/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated store opened")
	}
	// A header-only fragment (no checkpoint ever completed) is
	// rejected by Open and unrecoverable.
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	w.f.Close()
	if _, err := Open(path); err == nil {
		t.Fatal("header-only fragment opened")
	}
}

// TestCheckpointRecovery: every WriteTransactions/WriteLevel ends
// with a footer, so a run that dies mid-level leaves its completed
// checkpoints salvageable: Open rejects the file, Recover serves it
// as of the last intact footer. On a cleanly Closed store, Recover
// == Open.
func TestCheckpointRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	txns := []*graph.Graph{randGraph(rng, "t0"), randGraph(rng, "t1"), randGraph(rng, "t2")}
	level1 := []pattern.Pattern{randPattern(rng, 1, 3), randPattern(rng, 1, 3)}
	level2 := []pattern.Pattern{randPattern(rng, 2, 3)}

	path := tmpStore(t)
	w, err := Create(path, Meta{Name: "crashy", Kind: "fsg"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, level1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(2, level2); err != nil {
		t.Fatal(err)
	}
	// Simulate the process dying mid-level-3: partial record bytes
	// after the level-2 checkpoint, then no more writes.
	if err := w.write([]byte("partial level 3 record bytes......")); err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	w.f.Close()

	if _, err := Open(path); err == nil {
		t.Fatal("crashed store opened without recovery")
	}
	r, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTransactions() != len(txns) || r.NumPatterns() != len(level1)+len(level2) {
		t.Fatalf("recovered %d txns / %d patterns, want %d / %d",
			r.NumTransactions(), r.NumPatterns(), len(txns), len(level1)+len(level2))
	}
	for i, want := range append(append([]pattern.Pattern{}, level1...), level2...) {
		got, err := r.Pattern(i)
		if err != nil {
			t.Fatal(err)
		}
		samePattern(t, &want, got)
	}

	// Dying between the level-1 and level-2 checkpoints (mid-level-2):
	// recovery lands on the level-1 footer.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.tnd")
	// Find the level-1 footer: the second endMagic occurrence
	// (WriteTransactions wrote the first), then keep a few bytes more.
	first := strings.Index(string(data), endMagic)
	second := first + len(endMagic) + strings.Index(string(data[first+len(endMagic):]), endMagic)
	if err := os.WriteFile(cut, data[:second+len(endMagic)+5], 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(cut)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.NumPatterns() != len(level1) || len(r2.Levels()) != 1 {
		t.Fatalf("mid-level-2 recovery found %d patterns in %d levels, want %d in 1",
			r2.NumPatterns(), len(r2.Levels()), len(level1))
	}

	// A cleanly closed store recovers to itself.
	clean := validStorePath(t)
	rc, err := Recover(clean)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ro, err := Open(clean)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if rc.NumPatterns() != ro.NumPatterns() || rc.NumTransactions() != ro.NumTransactions() {
		t.Fatal("Recover diverged from Open on a clean store")
	}
}

// TestRejectIndexCorruption: flipping bytes inside the footer index
// must fail the CRC check.
func TestRejectIndexCorruption(t *testing.T) {
	path := validStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idxOff := binary.LittleEndian.Uint64(data[len(data)-trailerSize:])
	corrupt(t, path, int64(idxOff), []byte{0xff, 0xff, 0xff})
	_, err = Open(path)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

// --- writer validation ---

func TestWriterValidation(t *testing.T) {
	g := graph.New("p")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.AddEdge(a, b, "x")
	txn := randGraph(rand.New(rand.NewSource(3)), "t")

	newW := func() *Writer {
		w, err := Create(tmpStore(t), Meta{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Abort() })
		return w
	}

	w := newW()
	if err := w.WriteLevel(1, nil); err == nil {
		t.Fatal("WriteLevel before WriteTransactions accepted")
	}
	if err := w.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions([]*graph.Graph{txn}); err == nil {
		t.Fatal("double WriteTransactions accepted")
	}
	if err := w.WriteLevel(2, []pattern.Pattern{{Graph: g, Code: "c", Support: 1, TIDs: pattern.NewTIDSet(0)}}); err == nil {
		t.Fatal("edge-count mismatch accepted")
	}
	if err := w.WriteLevel(1, []pattern.Pattern{{Graph: g, Code: "c", Support: 1, TIDs: pattern.NewTIDSet(5)}}); err == nil {
		t.Fatal("out-of-range TID accepted")
	}
	if err := w.WriteLevel(1, []pattern.Pattern{{
		Graph: g, Code: "c", Support: 1, TIDs: pattern.NewTIDSet(0),
		Embs: make([][]iso.DenseEmbedding, 2),
	}}); err == nil {
		t.Fatal("misaligned embedding lists accepted")
	}
	if err := w.WriteLevel(1, []pattern.Pattern{{
		Graph: g, Code: "c", Support: 1, TIDs: pattern.NewTIDSet(0), Overflowed: true,
		Partial: pattern.NewTIDSet(0),
	}}); err == nil {
		t.Fatal("partial TIDs without lists accepted")
	}
	if err := w.WriteLevel(1, []pattern.Pattern{{Graph: g, Code: "c", Support: 1, TIDs: pattern.NewTIDSet(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, nil); err == nil {
		t.Fatal("repeated level accepted")
	}
}

// TestAbortRemovesFile: Abort on a partial write leaves nothing
// behind.
func TestAbortRemovesFile(t *testing.T) {
	path := tmpStore(t)
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted store still exists: %v", err)
	}
}
