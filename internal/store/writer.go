package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sort"
	"time"

	"tnkd/internal/faultfs"
	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// Writer streams one store file: header first, then the transaction
// set, then each mining level as it completes, then Close. Every
// WriteTransactions/WriteLevel call ends with a freshly written
// footer and a flush, so completed checkpoints survive the writing
// process and remain recoverable (see Recover); Close seals the file
// so Open accepts it directly.
//
// Writer is not safe for concurrent use. The level-wise miners call
// it from the mining goroutine between levels, which is exactly the
// checkpoint cadence the format wants.
type Writer struct {
	path    string
	fs      faultfs.FS
	f       faultfs.File
	bw      *bufio.Writer
	off     uint64
	meta    Meta
	txns    []span
	levels  []levelInfo
	recs    []recInfo
	footers int
	state   writerState
	// layout selects the pattern-record byte layout, normally
	// FormatVersion. The store compat tests set it to an older value
	// (before patching the header) to synthesize genuine legacy files
	// with the current writer machinery.
	layout int

	// Location-index accumulation (layout >= 4): WriteTransactions
	// retains the transaction graphs so WriteLevel can invert each
	// record's embeddings into per-label hits as it serialises them.
	locTxns  []*graph.Graph
	locHits  map[string][]LocationHit
	locNoEmb int
	// locDisabled drops the (optional) index section for the whole
	// store: set when some record's embeddings cannot be inverted
	// (references outside their transactions — the codec round-trips
	// such records faithfully, but they cannot be located). Readers of
	// a store without the section fall back to the lazy scan, which
	// surfaces the same records as corrupt at query time.
	locDisabled bool
}

type writerState int

const (
	writerOpen writerState = iota
	writerClosed
	writerAborted
)

// Create opens path for writing (truncating any existing file) and
// writes the format header. The caller must finish with Close (or
// Abort on failure paths).
func Create(path string, meta Meta) (*Writer, error) {
	return CreateFS(faultfs.OS{}, path, meta)
}

// CreateFS is Create on an explicit filesystem layer. The fault-
// injection tests and the ingest daemon thread a faultfs.Injector
// through here so every durability step of the writer — buffered
// writes, footer flushes, the final sync — can be torn or killed at a
// chosen operation.
func CreateFS(fsys faultfs.FS, path string, meta Meta) (*Writer, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: create: %w", err)
	}
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	w := &Writer{path: path, fs: fsys, f: f, bw: bufio.NewWriterSize(f, 1<<16), meta: meta, layout: FormatVersion}
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], FormatVersion)
	if err := w.write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Path returns the file path the writer was created with.
func (w *Writer) Path() string { return w.path }

// SetLayout pins the writer to an older format version: record and
// index byte layout plus the header version field. It exists for the
// cross-package compat tests that need genuine legacy files produced
// by the current writer machinery (the in-package tests reach the
// layout field directly); version 2 is the floor because v1 and v2
// share one byte layout — synthesize a v1 store by writing layout 2
// and patching the header afterwards. Must be called before any
// WriteTransactions/WriteLevel.
func (w *Writer) SetLayout(version int) error {
	if w.state != writerOpen {
		return fmt.Errorf("store: SetLayout on closed writer")
	}
	if w.txns != nil || len(w.recs) > 0 {
		return fmt.Errorf("store: SetLayout after writing began")
	}
	if version < 2 || version > FormatVersion {
		return fmt.Errorf("store: SetLayout(%d) outside writable range [2, %d]", version, FormatVersion)
	}
	w.layout = version
	// The header was written (buffered) by Create; rewrite its version
	// field in place. Flush first so the WriteAt lands after it.
	if err := w.flush(); err != nil {
		return err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], uint32(version))
	if _, err := w.f.WriteAt(v[:], int64(len(magic))); err != nil {
		return fmt.Errorf("store: SetLayout %s: %w", w.path, err)
	}
	return nil
}

func (w *Writer) write(b []byte) error {
	n, err := w.bw.Write(b)
	w.off += uint64(n)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", w.path, err)
	}
	return nil
}

// WriteTransactions persists the transaction set the pattern records'
// TIDs and embeddings refer to. It must be called exactly once,
// before any WriteLevel.
func (w *Writer) WriteTransactions(txns []*graph.Graph) error {
	if w.state != writerOpen {
		return fmt.Errorf("store: WriteTransactions on closed writer")
	}
	if w.txns != nil {
		return fmt.Errorf("store: WriteTransactions called twice")
	}
	if len(w.recs) > 0 {
		return fmt.Errorf("store: WriteTransactions after WriteLevel")
	}
	if w.layout >= 4 {
		// Retained for the location-index inversion in WriteLevel; the
		// caller already holds these graphs, so this is a slice of
		// pointers, not a copy.
		w.locTxns = txns
		w.locHits = make(map[string][]LocationHit)
	}
	w.txns = make([]span, 0, len(txns))
	var e enc
	for _, t := range txns {
		e.buf = e.buf[:0]
		encodeGraph(&e, t)
		w.txns = append(w.txns, span{off: w.off, len: uint64(len(e.buf))})
		if err := w.write(e.buf); err != nil {
			return err
		}
	}
	return w.writeFooter()
}

// WriteLevel appends one completed mining level: every pattern must
// have exactly `edges` edges, ascending TID lists, and embedding
// lists (when present) aligned with the TID list. Levels are expected
// in increasing edge order, each at most once — the layout invariant
// that makes the level directory a contiguous partition of the
// record space.
func (w *Writer) WriteLevel(edges int, pats []pattern.Pattern) error {
	if w.state != writerOpen {
		return fmt.Errorf("store: WriteLevel on closed writer")
	}
	if w.txns == nil {
		return fmt.Errorf("store: WriteLevel before WriteTransactions")
	}
	if n := len(w.levels); n > 0 && w.levels[n-1].edges >= edges {
		return fmt.Errorf("store: WriteLevel(%d) after level %d (levels must ascend)", edges, w.levels[n-1].edges)
	}
	lv := levelInfo{edges: edges, start: len(w.recs)}
	var e enc
	for i := range pats {
		p := &pats[i]
		if err := validatePattern(p, edges, len(w.txns)); err != nil {
			return err
		}
		if w.layout >= 4 && !w.locDisabled {
			w.indexLocations(p, len(w.recs))
		}
		e.buf = e.buf[:0]
		flags := encodePattern(&e, p, w.layout)
		w.recs = append(w.recs, recInfo{
			span:       span{off: w.off, len: uint64(len(e.buf))},
			code:       p.Code,
			support:    uint32(p.Support),
			embeddings: uint32(p.NumEmbeddings()),
			flags:      flags,
		})
		if err := w.write(e.buf); err != nil {
			return err
		}
		lv.count++
	}
	w.levels = append(w.levels, lv)
	return w.writeFooter()
}

// indexLocations folds record rec's embeddings into the location
// index being accumulated for the v4 footer section. Appending per
// record keeps each label's hit list in ascending record order — the
// order the serving layer's lazy scan produces, so a persisted index
// is interchangeable with a lazily built one. A record whose
// embeddings cannot be inverted (dangling references) disables the
// whole optional section rather than failing the write: the codec's
// contract is to round-trip records faithfully, locatable or not.
func (w *Writer) indexLocations(p *pattern.Pattern, rec int) {
	perLabel, err := invertEmbeddings(p, rec, func(tid int) (*graph.Graph, error) {
		return w.locTxns[tid], nil // validatePattern already bounded the TIDs
	})
	if err != nil {
		w.locDisabled = true
		w.locHits = nil
		return
	}
	if perLabel == nil {
		w.locNoEmb++
		return
	}
	for label, h := range perLabel {
		w.locHits[label] = append(w.locHits[label], *h)
	}
}

// patternFlags computes the semantic flag bits of a record (the
// encoding bit flagTIDBitset is added by encodePattern, which is
// where the choice is made).
func patternFlags(p *pattern.Pattern) byte {
	var flags byte
	if p.Embs != nil {
		flags |= flagHasEmbs
	}
	if p.Overflowed {
		flags |= flagOverflowed
	}
	if p.Embs != nil && p.Partial.Len() > 0 {
		flags |= flagPartial
	}
	return flags
}

// validatePattern enforces the record invariants the codec and the
// readers rely on, so a malformed pattern fails loudly at write time
// instead of decoding wrong later.
func validatePattern(p *pattern.Pattern, edges, numTxns int) error {
	if p.Graph == nil {
		return fmt.Errorf("store: pattern %q has no graph", p.Code)
	}
	if p.Graph.NumEdges() != edges {
		return fmt.Errorf("store: pattern %q has %d edges in a %d-edge level", p.Code, p.Graph.NumEdges(), edges)
	}
	if max := p.TIDs.Max(); max >= numTxns {
		return fmt.Errorf("store: pattern %q TID %d beyond %d transactions", p.Code, max, numTxns)
	}
	if p.Embs != nil && len(p.Embs) != p.TIDs.Len() {
		return fmt.Errorf("store: pattern %q has %d embedding lists for %d TIDs", p.Code, len(p.Embs), p.TIDs.Len())
	}
	if p.Partial.Len() > 0 {
		if !p.Overflowed {
			return fmt.Errorf("store: pattern %q has partial TIDs but is not overflowed", p.Code)
		}
		if p.Embs == nil {
			return fmt.Errorf("store: pattern %q has partial TIDs but no lists", p.Code)
		}
		if p.Partial.AndCard(p.TIDs) != p.Partial.Len() {
			return fmt.Errorf("store: pattern %q partial TIDs are not a subset of its TIDs", p.Code)
		}
	}
	return nil
}

// flush pushes buffered bytes to the OS so a completed level survives
// a later crash of the writing process.
func (w *Writer) flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flush %s: %w", w.path, err)
	}
	return nil
}

// writeFooter appends the current index + trailer and flushes — the
// per-checkpoint durability step. Each WriteTransactions/WriteLevel
// call ends with a footer, so at every point between checkpoints the
// file ends with a valid trailer describing everything written so
// far: a run that dies mid-level leaves its completed levels
// recoverable (Recover scans back to the last intact footer).
// Superseded footers are dead bytes in the body that no index entry
// references — a copy of the then-current index per checkpoint, a
// few percent of file size in practice, the price of crash safety.
func (w *Writer) writeFooter() error {
	w.footers++
	idx := w.encodeIndex()
	idxOff := w.off
	if err := w.write(idx); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], idxOff)
	binary.LittleEndian.PutUint64(tr[8:], uint64(len(idx)))
	binary.LittleEndian.PutUint32(tr[16:], crc32.ChecksumIEEE(idx))
	copy(tr[20:], endMagic)
	if err := w.write(tr[:]); err != nil {
		return err
	}
	return w.flush()
}

// Close writes the final footer, syncs, and closes the file. On any
// failure Close aborts itself — the handle is released and the
// partial file removed — so callers need no cleanup of their own.
func (w *Writer) Close() error {
	if w.state != writerOpen {
		return fmt.Errorf("store: Close on closed writer")
	}
	if err := w.finish(); err != nil {
		w.Abort()
		return err
	}
	w.state = writerClosed
	return nil
}

func (w *Writer) finish() error {
	if w.txns == nil {
		// An empty but valid store still needs a transaction section.
		w.txns = []span{}
	}
	// Every Write* call already ended with a footer identical to the
	// one Close would write; only a store with no checkpoints at all
	// still needs its first.
	if w.footers == 0 {
		if err := w.writeFooter(); err != nil {
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", w.path, err)
	}
	return nil
}

// Abort closes and removes a partially written store (a failed Close
// calls it automatically); never call it after a successful Close.
func (w *Writer) Abort() error {
	if w.state == writerAborted {
		return nil
	}
	w.state = writerAborted
	w.f.Close()
	if err := w.fs.Remove(w.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: abort %s: %w", w.path, err)
	}
	return nil
}

// encodeIndex serialises the footer index block: meta JSON,
// transaction spans, level directory and per-record index entries.
func (w *Writer) encodeIndex() []byte {
	var e enc
	metaJSON, err := json.Marshal(w.meta)
	if err != nil {
		// Meta is a plain struct of marshalable fields; this cannot
		// fail for any constructible value.
		metaJSON = []byte("{}")
	}
	e.str(string(metaJSON))
	e.uvarint(uint64(len(w.txns)))
	for _, s := range w.txns {
		e.uvarint(s.off)
		e.uvarint(s.len)
	}
	e.uvarint(uint64(len(w.levels)))
	for _, lv := range w.levels {
		e.uvarint(uint64(lv.edges))
		e.uvarint(uint64(lv.count))
		for _, r := range w.recs[lv.start : lv.start+lv.count] {
			e.uvarint(r.off)
			e.uvarint(r.len)
			e.str(r.code)
			e.uvarint(uint64(r.support))
			e.uvarint(uint64(r.embeddings))
			e.byte(r.flags)
		}
	}
	if w.layout >= 4 {
		encodeLocIndex(&e, w.locHits, w.locNoEmb, !w.locDisabled)
	}
	return e.buf
}

// sortedLevelEdges returns the distinct edge counts of a
// pattern-per-level map in ascending order — the order WriteLevel
// requires. Shared by the post-hoc store writers (Algorithm 1 unions
// arrive grouped, not streamed).
func sortedLevelEdges[T any](byEdges map[int][]T) []int {
	out := make([]int, 0, len(byEdges))
	for e := range byEdges {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// WriteLevels writes a whole pattern set grouped by edge count in
// ascending level order — the non-streaming path for runs that union
// results after mining (core.MineStructural).
func (w *Writer) WriteLevels(byEdges map[int][]pattern.Pattern) error {
	for _, edges := range sortedLevelEdges(byEdges) {
		if err := w.WriteLevel(edges, byEdges[edges]); err != nil {
			return err
		}
	}
	return nil
}

// CheckWritable verifies that path can be created for writing,
// without disturbing anything already there: an existing file is
// opened (not truncated) and left intact, a probe file is created
// and removed. CLIs run it at flag time so a mistyped -store path
// fails in milliseconds with a clear error instead of surfacing
// after minutes of mining — and a pre-existing store survives until
// the real write actually replaces it.
func CheckWritable(path string) error {
	_, statErr := os.Stat(path)
	existed := statErr == nil
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: create: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: create: %w", err)
	}
	if !existed {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: create: %w", err)
		}
	}
	return nil
}
