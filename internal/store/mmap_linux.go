//go:build linux

package store

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The returned cleanup unmaps; a
// nil byte slice (with nil error) means the caller should fall back
// to pread-style access.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Not fatal: some filesystems refuse mmap; ReadAt still works.
		return nil, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
