package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tnkd/internal/faultfs"
	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// faultFixture is one deterministic store payload shared by every
// fault-injection test: three transactions and two levels, written
// through an injected filesystem.
type faultFixture struct {
	txns   []*graph.Graph
	level1 []pattern.Pattern
	level2 []pattern.Pattern
}

func newFaultFixture() *faultFixture {
	rng := rand.New(rand.NewSource(7))
	return &faultFixture{
		txns:   []*graph.Graph{randGraph(rng, "t0"), randGraph(rng, "t1"), randGraph(rng, "t2")},
		level1: []pattern.Pattern{randPattern(rng, 1, 3), randPattern(rng, 1, 3)},
		level2: []pattern.Pattern{randPattern(rng, 2, 3)},
	}
}

// write streams the fixture through fsys, returning the first error.
// The op sequence (small payload, one bufio flush per checkpoint) is:
// create, write(hdr+txns+footer), write(level1+footer),
// write(level2+footer), sync, close.
func (fx *faultFixture) write(fsys faultfs.FS, path string) error {
	w, err := CreateFS(fsys, path, Meta{Name: "faulty", Kind: "fsg"})
	if err != nil {
		return err
	}
	if err := w.WriteTransactions(fx.txns); err != nil {
		w.Abort() //nolint:errcheck // crashed FS cannot clean up
		return err
	}
	if err := w.WriteLevel(1, fx.level1); err != nil {
		w.Abort() //nolint:errcheck
		return err
	}
	if err := w.WriteLevel(2, fx.level2); err != nil {
		w.Abort() //nolint:errcheck
		return err
	}
	return w.Close()
}

// dumps returns the canonical pattern dump of each clean prefix state
// of the fixture: transactions only, +level1, +level1+level2. Any
// recovered store must be byte-identical to one of these.
func (fx *faultFixture) dumps(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	out := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, "ref.tnd")
		w, err := Create(p, Meta{Name: "faulty", Kind: "fsg"})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTransactions(fx.txns); err != nil {
			t.Fatal(err)
		}
		if i >= 1 {
			if err := w.WriteLevel(1, fx.level1); err != nil {
				t.Fatal(err)
			}
		}
		if i >= 2 {
			if err := w.WriteLevel(2, fx.level2); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DumpPatterns(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		out = append(out, d)
	}
	return out
}

func recoveredDump(t *testing.T, path string) string {
	t.Helper()
	r, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer r.Close()
	d, err := DumpPatterns(r)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRecoverTornFooter tears the last bytes off the final
// checkpoint's trailer — the torn-footer shape a crash mid-footer
// leaves — and proves Open rejects the file while Recover falls back
// to the previous intact checkpoint.
func TestRecoverTornFooter(t *testing.T) {
	fx := newFaultFixture()
	refs := fx.dumps(t)
	for _, keep := range []int{-2, -6, -20} {
		path := tmpStore(t)
		fsys := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
			Op: faultfs.OpWrite, After: 2, Kind: faultfs.Crash, Keep: keep,
		})
		err := fx.write(fsys, path)
		if !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("keep=%d: write err = %v, want ErrCrashed", keep, err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("keep=%d: torn store opened without recovery", keep)
		}
		if got := recoveredDump(t, path); got != refs[1] {
			t.Errorf("keep=%d: recovered dump differs from clean level-1 store:\n%s", keep, got)
		}
	}
}

// TestRecoverShortFinalWrite halves the final checkpoint write — a
// short write deep in the level-2 records — and proves recovery lands
// on the level-1 checkpoint.
func TestRecoverShortFinalWrite(t *testing.T) {
	fx := newFaultFixture()
	refs := fx.dumps(t)
	path := tmpStore(t)
	fsys := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpWrite, After: 2, Kind: faultfs.Crash, Keep: -1,
	})
	if err := fx.write(fsys, path); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("write err = %v, want ErrCrashed", err)
	}
	if got := recoveredDump(t, path); got != refs[1] {
		t.Errorf("recovered dump differs from clean level-1 store:\n%s", got)
	}
}

// TestRecoverNothingToRecover tears the very first checkpoint: no
// intact footer ever hits the disk, so Recover must fail too — there
// is nothing to serve.
func TestRecoverNothingToRecover(t *testing.T) {
	fx := newFaultFixture()
	path := tmpStore(t)
	fsys := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpWrite, Kind: faultfs.Crash, Keep: -1,
	})
	if err := fx.write(fsys, path); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("write err = %v, want ErrCrashed", err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("headerless torn store opened")
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("Recover succeeded on a store with no intact footer")
	}
}

// TestCloseSyncFailure fails the final fsync: Close must report the
// error and abort (remove) the file rather than leave an unsynced
// store that Open would happily accept.
func TestCloseSyncFailure(t *testing.T) {
	fx := newFaultFixture()
	path := tmpStore(t)
	fsys := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
		Op: faultfs.OpSync, Kind: faultfs.Error,
	})
	if err := fx.write(fsys, path); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write err = %v, want injected sync failure", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file survived a failed Close: stat err = %v", err)
	}
}

// TestWriterCrashMatrix kills the writer at every filesystem
// operation in turn and proves each torn file either recovers to a
// byte-identical clean prefix checkpoint or is cleanly unrecoverable
// — never a wrong answer.
func TestWriterCrashMatrix(t *testing.T) {
	fx := newFaultFixture()
	refs := fx.dumps(t)

	// Count the clean run's ops.
	probe := faultfs.NewInjector(faultfs.OS{})
	if err := fx.write(probe, tmpStore(t)); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()
	if ops < 5 {
		t.Fatalf("expected at least 5 ops in a clean run, counted %d", ops)
	}

	for k := 0; k < ops; k++ {
		path := tmpStore(t)
		fsys := faultfs.NewInjector(faultfs.OS{}, faultfs.Fault{
			Op: faultfs.OpAny, After: k, Kind: faultfs.Crash, Keep: -1,
		})
		err := fx.write(fsys, path)
		if err == nil {
			// The crash hit the final close; everything durable already.
			r, oerr := Open(path)
			if oerr != nil {
				t.Fatalf("k=%d: clean-close store did not open: %v", k, oerr)
			}
			r.Close()
			continue
		}
		if _, serr := os.Stat(path); errors.Is(serr, os.ErrNotExist) {
			continue // crashed before or during create — nothing on disk
		}
		r, rerr := Recover(path)
		if rerr != nil {
			// Unrecoverable is legal only before the first checkpoint
			// became durable (crash at create or inside the first write).
			if k > 1 {
				t.Errorf("k=%d: unrecoverable after first checkpoint: %v", k, rerr)
			}
			continue
		}
		d, derr := DumpPatterns(r)
		r.Close()
		if derr != nil {
			t.Errorf("k=%d: recovered store failed to dump: %v", k, derr)
			continue
		}
		ok := false
		for _, ref := range refs {
			if d == ref {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("k=%d: recovered dump matches no clean prefix checkpoint:\n%s", k, d)
		}
	}
}
