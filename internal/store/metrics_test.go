package store

import (
	"math/rand"
	"testing"

	"tnkd/internal/graph"
)

// Lifecycle counters are process-global; assertions are delta-based.
func TestReaderLifecycleMetrics(t *testing.T) {
	path := tmpStore(t)
	rng := rand.New(rand.NewSource(1))
	writeStore(t, path, Meta{Name: "m"}, []*graph.Graph{randGraph(rng, "g")}, nil)

	opens0 := readerOpens.Value()
	errs0 := readerOpenErrors.Value()
	live0 := readersOpen.Value()
	mm0, pr0 := readerMmaps.Value(), readerPreads.Value()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := readerOpens.Value() - opens0; d != 1 {
		t.Fatalf("opens delta = %d, want 1", d)
	}
	if d := readersOpen.Value() - live0; d != 1 {
		t.Fatalf("readers_open delta = %d, want 1", d)
	}
	if d := (readerMmaps.Value() - mm0) + (readerPreads.Value() - pr0); d != 1 {
		t.Fatalf("mmap+pread delta = %d, want exactly 1", d)
	}
	// Double Close must decrement the gauge exactly once.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if d := readersOpen.Value() - live0; d != 0 {
		t.Fatalf("readers_open after close delta = %d, want 0", d)
	}

	if _, err := Open(path + ".missing"); err == nil {
		t.Fatal("expected open error")
	}
	if d := readerOpenErrors.Value() - errs0; d != 1 {
		t.Fatalf("open_errors delta = %d, want 1", d)
	}
}
