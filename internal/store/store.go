// Package store is the on-disk persistence layer for mined patterns
// and their embeddings: a versioned binary file format that holds a
// transaction set together with level-ordered pattern records
// (pattern graph, isomorphism-invariant code, TID list, dense per-TID
// embedding lists — the internal/pattern representation, whose flat
// dense arrays are already serialisation-shaped).
//
// The format is built for the two access patterns the ROADMAP's
// serving layer needs:
//
//   - Streaming writes. A mining run checkpoints each Apriori level
//     as it completes (fsg.Options.Checkpoint): Writer appends the
//     level's records and then a fresh footer, flushing both, so at
//     every point between checkpoints the file ends with a valid
//     trailer describing everything written so far. A run that dies
//     mid-level leaves a file Open rejects (its tail is a partial
//     record, not a trailer) but Recover salvages: it scans back to
//     the last intact footer and serves the store as of that
//     checkpoint. Superseded footers become small dead gaps in the
//     body that no index entry references.
//   - Random reads. Reader memory-maps the file (falling back to
//     pread on platforms without mmap) and loads only the footer
//     index at Open: per-record offsets, codes, supports and level
//     directory. Pattern lookup by code is a map hit plus one record
//     decode; nothing else is read. Transactions decode lazily and
//     are cached, so "where does pattern P occur?" is answered from
//     the stored embeddings without ever re-running an isomorphism
//     search.
//
// File layout (all integers little-endian or uvarint):
//
//	header   magic "TNDSTOR1" (8 bytes) | format version (uint32)
//	body     transaction records, then pattern records in level order
//	         (with a superseded footer after each checkpoint)
//	index    meta JSON | transaction spans | level directory with
//	         per-record (offset, length, code, support, embeddings,
//	         flags)
//	trailer  index offset (uint64) | index length (uint64) |
//	         index CRC-32 (uint32) | end magic "TNDSTEND"
//
// Wrong magic, unknown version, a missing trailer or a CRC mismatch
// all fail Open with a clear error — never a garbage decode.
package store

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

const (
	// magic opens every store file: 7 identifying bytes plus a
	// format-generation digit.
	magic = "TNDSTOR1"
	// endMagic closes every complete store file; its absence means
	// the writing run died before Close.
	endMagic = "TNDSTEND"
	// FormatVersion is the version written by this build. Version
	// history:
	//
	//	1  original layout; pattern codes are the pre-canonical
	//	   miners' quasi-canonical strings — approximate "~"-prefixed
	//	   codes may collide between non-isomorphic patterns, so code
	//	   lookups bucket and callers disambiguate with
	//	   pattern.SameGraph.
	//	2  identical byte layout; pattern codes are exact canonical
	//	   codes (iso.Code) — equal code ⟺ isomorphic, so code lookup
	//	   is an exact map hit with no disambiguation.
	//	3  pattern records move the flags byte before the TID column,
	//	   the column becomes self-describing (delta-coded list or
	//	   roaring-style bitset containers, whichever is smaller — see
	//	   encodeTIDColumn), and overflowed records with lists may
	//	   carry a second column marking which per-TID lists are seeds
	//	   (pattern.Pattern.Partial). Graph, code, support and
	//	   embedding encodings are unchanged, so transaction records —
	//	   and therefore delta-prefix verification — are byte-identical
	//	   across v2/v3.
	//	4  record and transaction layouts identical to v3; the footer
	//	   index gains a per-location inverted index section after the
	//	   level directory (vertex label -> records whose stored
	//	   embeddings touch it, with occurrence counts and TID
	//	   columns — see encodeLocIndex). The writer computes the
	//	   section from the embeddings it is already serialising, so
	//	   servers mount new stores instantly warm instead of paying a
	//	   full-store scan on the first location query; v3-and-older
	//	   stores fall back to that lazy scan.
	//
	// Readers accept versions [MinReadVersion, FormatVersion] and
	// expose the opened version via Reader.Version so serving layers
	// can keep the legacy disambiguation path for v1 stores.
	FormatVersion = 4
	// MinReadVersion is the oldest version Open still reads.
	MinReadVersion = 1

	headerSize  = len(magic) + 4
	trailerSize = 8 + 8 + 4 + len(endMagic)
)

// Meta is the run-level metadata persisted with a store. It is JSON
// in the index block, so fields can grow without a format-version
// bump.
type Meta struct {
	// Name identifies the mined input (e.g. the source graph name).
	Name string `json:"name,omitempty"`
	// Kind is the pipeline that produced the store: "fsg",
	// "structural" (Algorithm 1; transactions are the concatenated
	// partitionings of every repetition, pattern TIDs offset per
	// repetition) or "temporal" (Section 6 per-day transactions).
	Kind string `json:"kind,omitempty"`
	// MinSupport is the absolute support threshold of the run.
	MinSupport int `json:"min_support,omitempty"`
	// CreatedUnix is the write time in Unix seconds.
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Note carries free-form provenance (repetition layout, abort
	// reasons, ...).
	Note string `json:"note,omitempty"`

	// Delta provenance. A store produced by folding new transactions
	// into a previous store (core MineDelta paths) records its parent
	// chain here; a full mine leaves both zero. Meta is JSON in the
	// index block, so these fields read back as zero values from
	// stores written before they existed — no format-version bump.

	// Parent is the path of the store this one was delta-mined from
	// ("" for a full mine).
	Parent string `json:"parent,omitempty"`
	// Generation counts delta generations: 0 for a full mine, parent
	// generation + 1 for each fold.
	Generation int `json:"generation,omitempty"`

	// SourceBatch/SourceSHA identify the ingest batch whose fold
	// produced this store (empty outside the ingest daemon). Ingest
	// recovery matches them against a journaled fold intent, so a
	// dangling intent can only ever complete against the store file
	// its own batch wrote — never against a same-named generation
	// published by a different batch.
	SourceBatch string `json:"source_batch,omitempty"`
	SourceSHA   string `json:"source_sha,omitempty"`

	// Window provenance. A store produced by a sliding-window step
	// (core AdvanceWindow paths) records which stretch of the source
	// stream its transactions cover; append-only and full-mine stores
	// leave all of these zero. Like the delta fields, they read back
	// as zero values from older stores — no format-version bump.

	// WindowStart/WindowEnd bound the window as 1-based ordinals of
	// the pipeline's slide unit (days for the temporal pipeline,
	// ingest batches for the daemon; the seed store is unit 1). Both
	// zero = not a windowed store; WindowStart 1 with WindowEnd set =
	// a windowed run that has not yet retired anything.
	WindowStart int `json:"window_start,omitempty"`
	WindowEnd   int `json:"window_end,omitempty"`
	// Retired is the number of prior-generation transactions the step
	// that wrote this store retired (0 for a pure append). The writer
	// compacts: retired TIDs are gone and survivors are renumbered
	// from 0, so the store is indistinguishable from a fresh mine of
	// the window.
	Retired int `json:"retired,omitempty"`
	// WindowSizes is the per-unit transaction count of every unit
	// still inside the window, oldest first (ingest daemon only). Its
	// sum is the store's transaction count; a restarting daemon
	// rebuilds the window composition from this field alone.
	WindowSizes []int `json:"window_sizes,omitempty"`

	// Algorithm 1 provenance (Kind "structural" only): the exact
	// partitioning parameters of the run, which a structural delta
	// (appending repetitions) must reproduce to keep the shared RNG
	// stream — and therefore the mined output — identical to a full
	// run at the combined repetition count.

	// Repetitions is the number of Algorithm 1 repetitions whose
	// records the store holds.
	Repetitions int `json:"repetitions,omitempty"`
	// Partitions is Algorithm 1's k.
	Partitions int `json:"partitions,omitempty"`
	// Seed is the partitioning RNG seed.
	Seed int64 `json:"seed,omitempty"`
	// Strategy is the SplitGraph traversal order ("breadth-first" /
	// "depth-first").
	Strategy string `json:"strategy,omitempty"`
}

// pattern record flags.
const (
	flagHasEmbs    = 1 << 0 // Embs lists present (complete or seeds)
	flagOverflowed = 1 << 1 // some lists are seeds / absent, not complete
	// v3 additions. flagTIDBitset mirrors the TID column's on-disk
	// encoding choice (the column is self-describing; the flag copy
	// makes the encoding visible from the footer index alone, for
	// tndstats). flagPartial announces the per-TID completeness
	// column after the embedding section.
	flagTIDBitset = 1 << 2 // TID column stored as bitset containers
	flagPartial   = 1 << 3 // per-TID partial-completeness column present
)

// span locates one record in the file body.
type span struct {
	off, len uint64
}

// recInfo is the footer index entry of one pattern record: enough to
// answer listing, support and statistics queries without decoding the
// record itself.
type recInfo struct {
	span
	code       string
	support    uint32
	embeddings uint32
	flags      byte
}

// levelInfo is one level-directory entry: level-ordered records
// [start, start+count) in global record order.
type levelInfo struct {
	edges int
	start int
	count int
}

// LevelInfo describes one stored mining level (JSON-tagged: it is
// served verbatim by internal/serve).
type LevelInfo struct {
	// Edges is the pattern size of the level.
	Edges int `json:"edges"`
	// Patterns is the number of pattern records in the level.
	Patterns int `json:"patterns"`
}

// --- encoding primitives ---

// enc is an append-only encode buffer.
type enc struct {
	buf []byte
}

func (e *enc) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// dec decodes from a byte slice, latching the first error so callers
// can decode a whole structure and check once.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("store: truncated record (byte at %d/%d)", d.off, len(d.buf))
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("store: truncated record (uvarint at %d/%d)", d.off, len(d.buf))
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint length and bounds it by the remaining bytes
// (each element costs at least one byte), so corrupt lengths fail
// cleanly instead of attempting a huge allocation.
func (d *dec) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)-d.off) {
		d.fail("store: corrupt record (count %d exceeds %d remaining bytes)", v, len(d.buf)-d.off)
		return 0
	}
	return int(v)
}

func (d *dec) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("store: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return nil
}

// --- graph codec ---

// encodeGraph serialises g with its ID space intact: tombstoned
// vertex and edge slots are preserved as dead markers, so decoded
// graphs carry identical IDs and stored embeddings (which reference
// transaction vertex/edge IDs) stay valid.
func encodeGraph(e *enc, g *graph.Graph) {
	e.str(g.Name)
	vcap := g.VertexCap()
	e.uvarint(uint64(vcap))
	for id := 0; id < vcap; id++ {
		if g.HasVertex(graph.VertexID(id)) {
			e.byte(1)
			e.str(g.Vertex(graph.VertexID(id)).Label)
		} else {
			e.byte(0)
		}
	}
	ecap := g.EdgeCap()
	e.uvarint(uint64(ecap))
	for id := 0; id < ecap; id++ {
		if g.HasEdge(graph.EdgeID(id)) {
			ed := g.Edge(graph.EdgeID(id))
			e.byte(1)
			e.uvarint(uint64(ed.From))
			e.uvarint(uint64(ed.To))
			e.str(ed.Label)
		} else {
			e.byte(0)
		}
	}
}

// decodeGraph rebuilds a graph slot by slot. Dead slots are recreated
// by adding a placeholder and removing it, which reproduces the
// original dense ID assignment exactly; a dead edge's endpoints are
// unobservable through the graph API, so the placeholder wiring is
// semantically identical to the original.
func decodeGraph(d *dec) *graph.Graph {
	g := graph.New(d.str())
	vcap := d.count()
	var deadV []graph.VertexID
	for i := 0; i < vcap; i++ {
		if d.byte() == 1 {
			g.AddVertex(d.str())
		} else {
			deadV = append(deadV, g.AddVertex(""))
		}
		if d.err != nil {
			return nil
		}
	}
	ecap := d.count()
	var deadE []graph.EdgeID
	for i := 0; i < ecap; i++ {
		if d.byte() == 1 {
			from, to := int(d.uvarint()), int(d.uvarint())
			label := d.str()
			if d.err != nil {
				return nil
			}
			if from >= vcap || to >= vcap {
				d.fail("store: corrupt graph record (edge endpoint %d/%d beyond %d vertices)", from, to, vcap)
				return nil
			}
			g.AddEdge(graph.VertexID(from), graph.VertexID(to), label)
		} else {
			if vcap == 0 {
				d.fail("store: corrupt graph record (dead edge slot in vertex-less graph)")
				return nil
			}
			deadE = append(deadE, g.AddEdge(0, 0, ""))
		}
	}
	for _, id := range deadE {
		g.RemoveEdge(id)
	}
	for _, id := range deadV {
		g.RemoveVertex(id)
	}
	return g
}

// --- TID column codec ---

// TID column encodings (the kind byte opening every column).
const (
	tidColList   = 0 // uvarint count + delta-coded uvarint members
	tidColBitset = 1 // uvarint chunk count + per-chunk containers
)

// bitset container kinds.
const (
	tidConArray  = 0 // uvarint count + count × uint16 LE low bits
	tidConBitmap = 1 // 1024 × uint64 LE (8192 raw bytes)
)

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// tidColumnSizes computes the encoded byte size of both encodings
// without materialising either, so the writer can pick the smaller.
func tidColumnSizes(s pattern.TIDSet) (listSize, bitsetSize int) {
	listSize = 1 + uvarintLen(uint64(s.Len()))
	prev := 0
	for tid := range s.Values() {
		listSize += uvarintLen(uint64(tid - prev))
		prev = tid
	}
	bitsetSize = 1 + uvarintLen(uint64(s.NumChunks()))
	for ch := range s.Chunks() {
		bitsetSize += uvarintLen(uint64(ch.Key)) + 1
		if ch.Bits != nil {
			bitsetSize += 8 * len(ch.Bits)
		} else {
			bitsetSize += uvarintLen(uint64(len(ch.Arr))) + 2*len(ch.Arr)
		}
	}
	return listSize, bitsetSize
}

// encodeTIDColumn serialises one TID column self-describingly,
// choosing whichever of the two encodings is smaller (ties go to the
// delta-coded list). Returns true when the bitset encoding was
// chosen, so the record flags can mirror the choice into the index.
func encodeTIDColumn(e *enc, s pattern.TIDSet) bool {
	listSize, bitsetSize := tidColumnSizes(s)
	if listSize <= bitsetSize {
		e.byte(tidColList)
		e.uvarint(uint64(s.Len()))
		prev := 0
		for tid := range s.Values() {
			e.uvarint(uint64(tid - prev))
			prev = tid
		}
		return false
	}
	e.byte(tidColBitset)
	e.uvarint(uint64(s.NumChunks()))
	for ch := range s.Chunks() {
		e.uvarint(uint64(ch.Key))
		if ch.Bits != nil {
			e.byte(tidConBitmap)
			for _, w := range ch.Bits {
				e.buf = binary.LittleEndian.AppendUint64(e.buf, w)
			}
			continue
		}
		e.byte(tidConArray)
		e.uvarint(uint64(len(ch.Arr)))
		for _, v := range ch.Arr {
			e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
		}
	}
	return true
}

// tidColumnInfo describes one decoded column's on-disk shape — the
// raw material of the tndstats encoding report.
type tidColumnInfo struct {
	bitset          bool
	bytes           int
	arrays, bitmaps int
}

// decodeTIDColumn rebuilds one self-describing TID column.
func decodeTIDColumn(d *dec) (pattern.TIDSet, tidColumnInfo) {
	var s pattern.TIDSet
	info := tidColumnInfo{}
	start := d.off
	switch kind := d.byte(); kind {
	case tidColList:
		n := d.count()
		prev := 0
		for i := 0; i < n && d.err == nil; i++ {
			prev += int(d.uvarint())
			s.Add(prev)
		}
	case tidColBitset:
		info.bitset = true
		chunks := d.count()
		for i := 0; i < chunks && d.err == nil; i++ {
			key := d.uvarint()
			var ch pattern.TIDChunk
			ch.Key = uint32(key)
			switch ckind := d.byte(); ckind {
			case tidConArray:
				n := d.count()
				if d.err != nil {
					return s, info
				}
				if rem := len(d.buf) - d.off; 2*n > rem {
					d.fail("store: corrupt TID column (array container %d×2 bytes exceeds %d remaining)", n, rem)
					return s, info
				}
				arr := make([]uint16, n)
				for j := range arr {
					arr[j] = binary.LittleEndian.Uint16(d.buf[d.off:])
					d.off += 2
				}
				ch.Arr = arr
				info.arrays++
			case tidConBitmap:
				if rem := len(d.buf) - d.off; 8*1024 > rem {
					d.fail("store: corrupt TID column (bitmap container exceeds %d remaining bytes)", rem)
					return s, info
				}
				words := make([]uint64, 1024)
				for j := range words {
					words[j] = binary.LittleEndian.Uint64(d.buf[d.off:])
					d.off += 8
				}
				ch.Bits = words
				info.bitmaps++
			default:
				d.fail("store: unknown TID container kind %d", ckind)
				return s, info
			}
			if err := s.AddChunk(ch); err != nil {
				d.fail("store: corrupt TID column: %v", err)
				return s, info
			}
		}
	default:
		d.fail("store: unknown TID column encoding %d", kind)
	}
	info.bytes = d.off - start
	return s, info
}

// --- pattern codec ---

// encodePattern serialises one pattern record in the given layout
// version and returns the flags byte written (the index stores a
// copy). Layout 3 — the current one — writes graph, code, support,
// flags, the self-describing TID column, the embedding section, then
// the Partial column when flagPartial is set. Layout 2 (kept for the
// compat tests that synthesize legacy stores) writes the historical
// order — TID list as a plain delta-coded list, then flags, then
// embeddings — and cannot represent per-TID partial marks.
// Embedding lists are written as flat uvarint runs, one list per TID,
// identically in both layouts.
func encodePattern(e *enc, p *pattern.Pattern, layout int) byte {
	encodeGraph(e, p.Graph)
	e.str(p.Code)
	e.uvarint(uint64(p.Support))
	flags := patternFlags(p)
	if layout < 3 {
		flags &= flagHasEmbs | flagOverflowed
		e.uvarint(uint64(p.TIDs.Len()))
		prev := 0
		for tid := range p.TIDs.Values() {
			e.uvarint(uint64(tid - prev))
			prev = tid
		}
		e.byte(flags)
		encodeEmbSection(e, p)
		return flags
	}
	// The flags byte must precede the column it describes, so decide
	// the encoding (a size computation, no second buffer) first.
	listSize, bitsetSize := tidColumnSizes(p.TIDs)
	if bitsetSize < listSize {
		flags |= flagTIDBitset
	}
	e.byte(flags)
	encodeTIDColumn(e, p.TIDs)
	encodeEmbSection(e, p)
	if flags&flagPartial != 0 {
		encodeTIDColumn(e, p.Partial)
	}
	return flags
}

func encodeEmbSection(e *enc, p *pattern.Pattern) {
	if p.Embs == nil {
		return
	}
	for _, list := range p.Embs {
		e.uvarint(uint64(len(list)))
		for _, emb := range list {
			e.uvarint(uint64(len(emb.Verts)))
			for _, v := range emb.Verts {
				e.uvarint(uint64(v))
			}
			e.uvarint(uint64(len(emb.Edges)))
			for _, ed := range emb.Edges {
				e.uvarint(uint64(ed))
			}
		}
	}
}

// decodePatternHead rebuilds everything up to the embedding section —
// graph, code, support, flags, TID column — leaving the decoder
// positioned at the embedding section (if the flags announce one).
// On overflowed legacy records (version < 3) with lists, every list
// is conservatively marked partial: the legacy writers demoted
// wholesale, so that is also exact.
func decodePatternHead(d *dec, version int) (*pattern.Pattern, byte, tidColumnInfo) {
	p := &pattern.Pattern{Graph: decodeGraph(d)}
	p.Code = d.str()
	p.Support = int(d.uvarint())
	if d.err != nil {
		return nil, 0, tidColumnInfo{}
	}
	if version >= 3 {
		flags := d.byte()
		p.Overflowed = flags&flagOverflowed != 0
		tids, info := decodeTIDColumn(d)
		p.TIDs = tids
		return p, flags, info
	}
	start := d.off
	n := d.count()
	if d.err != nil {
		return nil, 0, tidColumnInfo{}
	}
	prev := 0
	for i := 0; i < n; i++ {
		prev += int(d.uvarint())
		p.TIDs.Add(prev)
	}
	info := tidColumnInfo{bytes: d.off - start}
	flags := d.byte()
	p.Overflowed = flags&flagOverflowed != 0
	if p.Overflowed && flags&flagHasEmbs != 0 {
		p.Partial = p.TIDs.Clone()
	}
	return p, flags, info
}

// --- location index codec (format v4) ---

// LocationHit is one entry of the persisted per-location inverted
// index: a pattern record whose stored embeddings touch the label,
// with the occurrence count (embeddings containing at least one
// vertex of the label) and the supporting TIDs.
type LocationHit struct {
	// Record is the global record index.
	Record int
	// Occurrences counts embeddings touching the label.
	Occurrences int
	// TIDs are the transactions holding those embeddings.
	TIDs pattern.TIDSet
}

// locIndex is the in-memory form of the persisted section: hits per
// label in ascending record order, plus the count of records that
// store no embeddings at all (and so cannot appear under any label).
type locIndex struct {
	byLabel map[string][]LocationHit
	noEmb   int
	bytes   int // encoded size, for the stats report
}

// encodeLocIndex serialises the section: a presence byte (the section
// is optional — a writer that cannot invert a record's embeddings,
// e.g. because they dangle outside their transactions, omits the
// index and lets servers fall back to the lazy build), then the
// no-embeddings record count, then per label (ascending) its hit list
// with delta-coded record indices, occurrence counts and
// self-describing TID columns.
func encodeLocIndex(e *enc, byLabel map[string][]LocationHit, noEmb int, present bool) {
	if !present {
		e.byte(0)
		return
	}
	e.byte(1)
	e.uvarint(uint64(noEmb))
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	e.uvarint(uint64(len(labels)))
	for _, l := range labels {
		e.str(l)
		hits := byLabel[l]
		e.uvarint(uint64(len(hits)))
		prev := 0
		for _, h := range hits {
			e.uvarint(uint64(h.Record - prev))
			prev = h.Record
			e.uvarint(uint64(h.Occurrences))
			encodeTIDColumn(e, h.TIDs)
		}
	}
}

// decodeLocIndex rebuilds the section, validating every hit against
// the already-parsed record and transaction counts — a store is
// external input, so a corrupt index must fail Open, not serve
// out-of-range record references.
func decodeLocIndex(d *dec, numRecs, numTxns int) (locIndex, bool) {
	start := d.off
	idx := locIndex{byLabel: map[string][]LocationHit{}}
	switch present := d.byte(); present {
	case 0:
		return idx, false
	case 1:
	default:
		d.fail("store: corrupt location index (presence byte %d)", present)
		return idx, false
	}
	noEmb := d.uvarint()
	if d.err == nil && noEmb > uint64(numRecs) {
		d.fail("store: corrupt location index (%d no-embedding records of %d)", noEmb, numRecs)
		return idx, false
	}
	idx.noEmb = int(noEmb)
	nLabels := d.count()
	for i := 0; i < nLabels && d.err == nil; i++ {
		label := d.str()
		nHits := d.count()
		hits := make([]LocationHit, 0, nHits)
		rec := -1
		for j := 0; j < nHits && d.err == nil; j++ {
			delta := int(d.uvarint())
			if j == 0 {
				rec = delta
			} else {
				rec += delta
			}
			occ := int(d.uvarint())
			tids, _ := decodeTIDColumn(d)
			if d.err != nil {
				break
			}
			if rec >= numRecs {
				d.fail("store: corrupt location index (label %q references record %d of %d)", label, rec, numRecs)
				break
			}
			if occ < 1 || tids.Len() < 1 || tids.Len() > occ {
				d.fail("store: corrupt location index (label %q record %d: %d occurrences over %d TIDs)", label, rec, occ, tids.Len())
				break
			}
			if tids.Max() >= numTxns {
				d.fail("store: corrupt location index (label %q TID %d beyond %d transactions)", label, tids.Max(), numTxns)
				break
			}
			hits = append(hits, LocationHit{Record: rec, Occurrences: occ, TIDs: tids})
		}
		if d.err == nil {
			idx.byLabel[label] = hits
		}
	}
	idx.bytes = d.off - start
	return idx, d.err == nil
}

// invertEmbeddings computes one record's contribution to the
// location index: for every vertex label its stored embeddings touch,
// the occurrence count and supporting TIDs — exactly the inversion
// the serving layer's lazy scan performs, done once at write time.
// txn resolves a TID to its transaction graph. Records storing no
// embeddings return nil (they cannot be located without re-matching).
func invertEmbeddings(p *pattern.Pattern, rec int, txn func(tid int) (*graph.Graph, error)) (map[string]*LocationHit, error) {
	if p.NumEmbeddings() == 0 {
		return nil, nil
	}
	out := make(map[string]*LocationHit)
	var embLabels []string // distinct labels within one embedding
	for j, tid := range p.TIDs.All() {
		if len(p.Embs[j]) == 0 {
			continue
		}
		g, err := txn(tid)
		if err != nil {
			return nil, err
		}
		for _, emb := range p.Embs[j] {
			embLabels = embLabels[:0]
			for _, tv := range emb.Verts {
				if !g.HasVertex(tv) {
					return nil, fmt.Errorf("store: pattern %q embedding references missing vertex %d in transaction %d", p.Code, tv, tid)
				}
				label := g.Vertex(tv).Label
				seen := false
				for _, l := range embLabels {
					if l == label {
						seen = true
						break
					}
				}
				if !seen {
					embLabels = append(embLabels, label)
				}
			}
			for _, label := range embLabels {
				h := out[label]
				if h == nil {
					h = &LocationHit{Record: rec}
					out[label] = h
				}
				h.Occurrences++
				if h.TIDs.IsEmpty() || h.TIDs.Max() != tid {
					h.TIDs.Add(tid)
				}
			}
		}
	}
	return out, nil
}

// decodePattern rebuilds one pattern record. Per-TID lists written
// empty decode as nil slots inside a non-nil Embs, preserving the
// HasSeeds/HasEmbeddings semantics of the in-memory store.
func decodePattern(d *dec, version int) *pattern.Pattern {
	p, flags, _ := decodePatternHead(d, version)
	if p == nil || flags&flagHasEmbs == 0 || d.err != nil {
		return p
	}
	n := p.TIDs.Len()
	p.Embs = make([][]iso.DenseEmbedding, n)
	for i := range p.Embs {
		cnt := d.count()
		if d.err != nil {
			return nil
		}
		if cnt == 0 {
			continue
		}
		list := make([]iso.DenseEmbedding, cnt)
		for j := range list {
			nv := d.count()
			if d.err != nil {
				return nil
			}
			verts := make([]graph.VertexID, nv)
			for k := range verts {
				verts[k] = graph.VertexID(d.uvarint())
			}
			ne := d.count()
			if d.err != nil {
				return nil
			}
			edges := make([]graph.EdgeID, ne)
			for k := range edges {
				edges[k] = graph.EdgeID(d.uvarint())
			}
			list[j] = iso.DenseEmbedding{Verts: verts, Edges: edges}
		}
		p.Embs[i] = list
	}
	if version >= 3 && flags&flagPartial != 0 {
		p.Partial, _ = decodeTIDColumn(d)
	}
	return p
}
