package store

import (
	"fmt"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// tinyTxns builds n one-edge transactions — enough TID space to force
// bitset columns without heavyweight fixtures.
func tinyTxns(n int) []*graph.Graph {
	txns := make([]*graph.Graph, n)
	for i := range txns {
		g := graph.New(fmt.Sprintf("t%d", i))
		a := g.AddVertex("A")
		b := g.AddVertex("B")
		g.AddEdge(a, b, "e")
		txns[i] = g
	}
	return txns
}

func edgePattern(code string, tids pattern.TIDSet) pattern.Pattern {
	g := graph.New("pat")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.AddEdge(a, b, "e")
	return pattern.Pattern{Graph: g, Code: code, Support: tids.Len(), TIDs: tids}
}

// TestTIDColumnEncodingsRoundTrip pins the writer's
// smaller-encoding-wins choice and both decode paths: a dense column
// spanning a chunk boundary must be stored as bitset containers, a
// sparse one as a delta list, and both must decode to identical sets.
func TestTIDColumnEncodingsRoundTrip(t *testing.T) {
	const numTxns = 70000 // crosses the 65536 chunk boundary
	dense := pattern.NewTIDSet()
	for tid := 0; tid < numTxns; tid++ {
		dense.Add(tid)
	}
	sparse := pattern.NewTIDSet(3, 4096, 65535, 65536, 69999)

	path := tmpStore(t)
	writeStore(t, path, Meta{Name: "enc", Kind: "fsg"}, tinyTxns(numTxns),
		map[int][]pattern.Pattern{1: {
			edgePattern("dense", dense),
			edgePattern("sparse", sparse),
		}})

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range []pattern.TIDSet{dense, sparse} {
		got, err := r.PatternLite(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.TIDs.Equal(want) {
			t.Fatalf("record %d: decoded %d TIDs, wrote %d", i, got.TIDs.Len(), want.Len())
		}
	}

	st := ReadStats(r)
	if len(st.Levels) != 1 {
		t.Fatalf("levels = %d", len(st.Levels))
	}
	lv := st.Levels[0]
	if lv.BitsetCols != 1 || lv.ListCols != 1 {
		t.Fatalf("encoding split: %d bitset / %d list, want 1/1", lv.BitsetCols, lv.ListCols)
	}
	// The dense column holds two chunks: 0..65535 full (bitmap) and
	// 65536..69999 (4464 members, bitmap — past the 4096 array max).
	if lv.BitmapCons != 2 || lv.ArrayCons != 0 {
		t.Fatalf("containers: %d bitmaps / %d arrays, want 2/0", lv.BitmapCons, lv.ArrayCons)
	}
	if lv.ColumnBytes <= 2*8*1024 || lv.ColumnBytes > 2*8*1024+64 {
		t.Fatalf("column bytes %d, want just over two bitmap containers", lv.ColumnBytes)
	}
	report := st.String()
	for _, want := range []string{"list-cols", "bitset-cols", "picks the smaller"} {
		if !strings.Contains(report, want) {
			t.Fatalf("stats report lacks %q:\n%s", want, report)
		}
	}
}

// TestTIDColumnArrayContainers covers the array-container side of the
// writer choice: a column dense enough to beat the delta list but
// under the 4096-member bitmap threshold stores array containers.
func TestTIDColumnArrayContainers(t *testing.T) {
	// 3000 spread members: delta gaps of ~43 are one byte each, so the
	// list costs ~3000 bytes... array container costs 2 bytes/member
	// plus headers — the list wins. Use wide gaps (multi-byte deltas)
	// to flip the choice: members spaced 300 apart have 2-byte deltas.
	s := pattern.NewTIDSet()
	numTxns := 0
	for i := 0; i < 3000; i++ {
		s.Add(i * 20) // 60000 span, single chunk, one-byte deltas of 20
		numTxns = i*20 + 1
	}
	// One-byte deltas: list = ~3001 bytes, array container = 6000+ —
	// list wins here.
	path := tmpStore(t)
	writeStore(t, path, Meta{Kind: "fsg"}, tinyTxns(numTxns),
		map[int][]pattern.Pattern{1: {edgePattern("spread", s)}})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lv := ReadStats(r).Levels[0]
	if lv.ListCols != 1 || lv.BitsetCols != 0 {
		t.Fatalf("one-byte-delta column stored as bitset (%d/%d)", lv.ListCols, lv.BitsetCols)
	}
	r.Close()

	// A mixed column — chunk 0 completely full, chunk 1 sparse — is
	// where array containers appear: the full chunk's bitmap (8 KiB
	// vs a 64 KiB delta list) pays for the bitset encoding, and the
	// sparse tail rides along as an array container.
	w := pattern.NewTIDSet()
	for tid := 0; tid < 65536; tid++ {
		w.Add(tid)
	}
	for i := 0; i < 100; i++ {
		w.Add(65536 + i*500)
	}
	path2 := tmpStore(t)
	writeStore(t, path2, Meta{Kind: "fsg"}, tinyTxns(65536+100*500),
		map[int][]pattern.Pattern{1: {edgePattern("mixed", w)}})
	r2, err := Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	lv2 := ReadStats(r2).Levels[0]
	if lv2.BitsetCols != 1 || lv2.ArrayCons != 1 || lv2.BitmapCons != 1 {
		t.Fatalf("mixed column: bitset=%d arrays=%d bitmaps=%d, want 1/1/1",
			lv2.BitsetCols, lv2.ArrayCons, lv2.BitmapCons)
	}
	got, err := r2.PatternLite(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TIDs.Equal(w) {
		t.Fatal("mixed column mangled by the array-container round trip")
	}
}

// TestV2ListRehydratesToBitset is the upgrade path: a legacy-layout
// store (delta-coded TID lists) opens, its patterns rehydrate into
// TIDSets, and rewriting them through the current writer produces
// bitset columns where they are smaller — without changing the mined
// facts.
func TestV2ListRehydratesToBitset(t *testing.T) {
	const numTxns = 9000
	dense := pattern.NewTIDSet()
	for tid := 0; tid < numTxns; tid++ {
		dense.Add(tid)
	}
	txns := tinyTxns(numTxns)

	legacy := tmpStore(t)
	w, err := Create(legacy, Meta{Name: "old", Kind: "fsg"})
	if err != nil {
		t.Fatal(err)
	}
	w.layout = 2
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, []pattern.Pattern{edgePattern("p", dense)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	patchVersion(t, legacy, 2)

	r, err := Open(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("legacy store opened as v%d", r.Version())
	}
	oldDump, err := DumpPatterns(r)
	if err != nil {
		t.Fatal(err)
	}
	lv := ReadStats(r).Levels[0]
	if lv.BitsetCols != 0 || lv.ListCols != 1 {
		t.Fatalf("v2 store reports bitset columns (%d/%d)", lv.BitsetCols, lv.ListCols)
	}
	pats, err := r.LevelPatterns(1)
	if err != nil {
		t.Fatal(err)
	}
	gotTxns, err := r.Transactions()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !pats[0].TIDs.Equal(dense) {
		t.Fatal("v2 list did not rehydrate into the full TIDSet")
	}

	rewritten := tmpStore(t)
	writeStore(t, rewritten, Meta{Name: "new", Kind: "fsg"}, gotTxns,
		map[int][]pattern.Pattern{1: pats})
	r2, err := Open(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Version() != FormatVersion {
		t.Fatalf("rewritten store is v%d", r2.Version())
	}
	if lv := ReadStats(r2).Levels[0]; lv.BitsetCols != 1 {
		t.Fatalf("dense rewritten column not bitset-encoded: %+v", lv)
	}
	newDump, err := DumpPatterns(r2)
	if err != nil {
		t.Fatal(err)
	}
	if oldDump != newDump {
		t.Fatalf("rehydration changed the mined facts:\n%s\nvs\n%s", oldDump, newDump)
	}
}
