//go:build !linux

package store

import "os"

// mmapFile reports no mapping on platforms without the syscall;
// Reader falls back to pread-style access.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, nil
}
