package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"tnkd/internal/graph"
	"tnkd/internal/obs"
	"tnkd/internal/pattern"
)

// Reader lifecycle metrics on the process-wide registry: opens (and
// failures), whether each open mapped the body or fell back to pread,
// and how many readers are live right now.
var (
	readerOpens      = obs.Default.Counter("tnd_store_opens_total")
	readerOpenErrors = obs.Default.Counter("tnd_store_open_errors_total")
	readerMmaps      = obs.Default.Counter("tnd_store_mmap_total")
	readerPreads     = obs.Default.Counter("tnd_store_pread_fallback_total")
	readersOpen      = obs.Default.Gauge("tnd_store_readers_open")
)

// Reader serves random-access queries over one store file. Open
// verifies magic, version, trailer and index checksum, loads only the
// footer index (per-record offsets, codes, supports, level
// directory), and memory-maps the body when the platform allows it —
// pattern lookup by code is a map hit plus one record decode, and a
// multi-gigabyte store opens without reading its body.
//
// Reader is safe for concurrent use: record decodes read the
// immutable mapping (or pread), and the lazy transaction cache is
// lock-protected. Decoded transactions are shared between callers and
// must be treated as read-only (the graph label index is built for
// exactly that sharing).
type Reader struct {
	path    string
	f       *os.File
	data    []byte // nil when mmap is unavailable
	munmap  func() error
	size    int64
	version uint32
	meta    Meta
	txnSpan []span
	levels  []levelInfo
	recs    []recInfo
	byCode  map[string][]int
	loc     *locIndex // persisted location index (format v4+), nil before

	mu       sync.Mutex
	closed   bool
	txnCache []*graph.Graph
}

// opened records a successful Open/Recover in the lifecycle metrics.
func (r *Reader) opened() *Reader {
	readerOpens.Inc()
	readersOpen.Add(1)
	if r.data != nil {
		readerMmaps.Inc()
	} else {
		readerPreads.Inc()
	}
	return r
}

// Open validates and indexes a store file. A file whose writing run
// died between checkpoints is rejected ("missing end marker") —
// Recover salvages its completed checkpoints.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		readerOpenErrors.Inc()
		return nil, fmt.Errorf("store: open: %w", err)
	}
	size, version, err := checkHeader(path, f)
	if err != nil {
		f.Close()
		readerOpenErrors.Inc()
		return nil, err
	}
	r, err := readerAt(path, f, size, size, version)
	if err != nil {
		f.Close()
		readerOpenErrors.Inc()
		return nil, err
	}
	return r.opened(), nil
}

// Recover opens a store whose writing run may have died mid-write:
// it scans backwards for the most recent intact footer (every
// WriteTransactions/WriteLevel checkpoint ends with one) and serves
// the store as of that checkpoint. On a cleanly Closed file it is
// equivalent to Open.
func Recover(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		readerOpenErrors.Inc()
		return nil, fmt.Errorf("store: open: %w", err)
	}
	size, version, err := checkHeader(path, f)
	if err != nil {
		f.Close()
		readerOpenErrors.Inc()
		return nil, err
	}
	if r, err := readerAt(path, f, size, size, version); err == nil {
		return r.opened(), nil
	}
	end, err := lastFooterEnd(f, size, size)
	for err == nil && end > 0 {
		if r, rerr := readerAt(path, f, size, end, version); rerr == nil {
			return r.opened(), nil
		}
		// A false marker hit (magic bytes inside record data) or a
		// damaged footer: keep scanning backwards.
		end, err = lastFooterEnd(f, size, end-1)
	}
	f.Close()
	readerOpenErrors.Inc()
	if err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("store: %s: no intact checkpoint footer found — nothing to recover", path)
}

// checkHeader validates magic and version, returning the file size
// and the store's format version.
func checkHeader(path string, f *os.File) (int64, uint32, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("store: stat %s: %w", path, err)
	}
	size := st.Size()
	if size < int64(headerSize+trailerSize) {
		return 0, 0, fmt.Errorf("store: %s: file too short (%d bytes) to be a store", path, size)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, 0, fmt.Errorf("store: read header of %s: %w", path, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("store: %s: bad magic %q (want %q) — not a store file", path, hdr[:len(magic)], magic)
	}
	v := binary.LittleEndian.Uint32(hdr[len(magic):])
	if v < MinReadVersion || v > FormatVersion {
		return 0, 0, fmt.Errorf("store: %s: unsupported format version %d (this build reads versions %d through %d)",
			path, v, MinReadVersion, FormatVersion)
	}
	return size, v, nil
}

// lastFooterEnd scans backwards from limit for the latest end-magic
// occurrence that could terminate a footer, returning the logical
// end (exclusive) of that candidate footer, or 0 when none remains.
func lastFooterEnd(f *os.File, size, limit int64) (int64, error) {
	const chunk = 64 << 10
	em := []byte(endMagic)
	hi := limit
	if hi > size {
		hi = size
	}
	for hi >= int64(headerSize+trailerSize) {
		lo := hi - chunk
		if lo < int64(headerSize) {
			lo = int64(headerSize)
		}
		buf := make([]byte, hi-lo)
		if _, err := f.ReadAt(buf, lo); err != nil {
			return 0, fmt.Errorf("store: recovery scan: %w", err)
		}
		for i := len(buf) - len(em); i >= 0; i-- {
			if string(buf[i:i+len(em)]) == endMagic {
				end := lo + int64(i) + int64(len(em))
				if end >= int64(headerSize+trailerSize) {
					return end, nil
				}
			}
		}
		if lo == int64(headerSize) {
			break
		}
		// Overlap by len(em)-1 so a marker straddling chunks is seen.
		hi = lo + int64(len(em)) - 1
	}
	return 0, nil
}

// readerAt builds a reader over the store whose footer ends at
// logicalEnd (== fileSize for a cleanly closed store; earlier for a
// recovered checkpoint). All offsets are validated against
// logicalEnd, wraparound included.
func readerAt(path string, f *os.File, fileSize, logicalEnd int64, version uint32) (*Reader, error) {
	if logicalEnd < int64(headerSize+trailerSize) || logicalEnd > fileSize {
		return nil, fmt.Errorf("store: %s: invalid footer position %d", path, logicalEnd)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], logicalEnd-int64(trailerSize)); err != nil {
		return nil, fmt.Errorf("store: read trailer of %s: %w", path, err)
	}
	if string(tr[20:]) != endMagic {
		return nil, fmt.Errorf("store: %s: missing end marker — the writing run died between checkpoints (try Recover)", path)
	}
	idxOff := binary.LittleEndian.Uint64(tr[0:])
	idxLen := binary.LittleEndian.Uint64(tr[8:])
	idxCRC := binary.LittleEndian.Uint32(tr[16:])
	idxEnd := uint64(logicalEnd - int64(trailerSize))
	if idxOff < uint64(headerSize) || idxLen > idxEnd || idxOff != idxEnd-idxLen {
		return nil, fmt.Errorf("store: %s: corrupt trailer (index %d+%d, footer at %d)", path, idxOff, idxLen, logicalEnd)
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		return nil, fmt.Errorf("store: read index of %s: %w", path, err)
	}
	if crc := crc32.ChecksumIEEE(idx); crc != idxCRC {
		return nil, fmt.Errorf("store: %s: index checksum mismatch (file %08x, computed %08x) — corrupt store", path, idxCRC, crc)
	}
	r := &Reader{path: path, f: f, size: int64(idxOff), version: version}
	if err := r.parseIndex(idx); err != nil {
		return nil, err
	}
	data, munmap, err := mmapFile(f, fileSize)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	r.data, r.munmap = data, munmap
	r.txnCache = make([]*graph.Graph, len(r.txnSpan))
	r.byCode = make(map[string][]int, len(r.recs))
	for i := range r.recs {
		r.byCode[r.recs[i].code] = append(r.byCode[r.recs[i].code], i)
	}
	return r, nil
}

func (r *Reader) parseIndex(idx []byte) error {
	d := &dec{buf: idx}
	metaJSON := d.str()
	if d.err == nil {
		if err := json.Unmarshal([]byte(metaJSON), &r.meta); err != nil {
			return fmt.Errorf("store: %s: corrupt meta block: %w", r.path, err)
		}
	}
	numTxns := d.count()
	if d.err == nil && numTxns > 0 {
		r.txnSpan = make([]span, numTxns)
		for i := range r.txnSpan {
			r.txnSpan[i] = span{off: d.uvarint(), len: d.uvarint()}
		}
	}
	numLevels := d.count()
	for l := 0; l < numLevels && d.err == nil; l++ {
		lv := levelInfo{edges: int(d.uvarint()), start: len(r.recs), count: d.count()}
		for i := 0; i < lv.count && d.err == nil; i++ {
			r.recs = append(r.recs, recInfo{
				span:       span{off: d.uvarint(), len: d.uvarint()},
				code:       d.str(),
				support:    uint32(d.uvarint()),
				embeddings: uint32(d.uvarint()),
				flags:      d.byte(),
			})
		}
		r.levels = append(r.levels, lv)
	}
	if d.err == nil && r.version >= 4 {
		if idx, present := decodeLocIndex(d, len(r.recs), numTxns); present {
			r.loc = &idx
		}
	}
	if err := d.done(); err != nil {
		return fmt.Errorf("store: %s: corrupt index: %w", r.path, err)
	}
	// Bounds checks are subtraction-form so an adversarial offset
	// cannot wrap uint64 past the limit. r.size is the index start:
	// every record the index describes precedes the index itself.
	limit := uint64(r.size)
	for i := range r.recs {
		if s := r.recs[i].span; s.len > limit || s.off > limit-s.len {
			return fmt.Errorf("store: %s: corrupt index (record beyond file end)", r.path)
		}
	}
	for i := range r.txnSpan {
		if s := r.txnSpan[i]; s.len > limit || s.off > limit-s.len {
			return fmt.Errorf("store: %s: corrupt index (transaction beyond file end)", r.path)
		}
	}
	return nil
}

// Close releases the mapping and the file handle. Close is
// idempotent so the readers-open gauge stays exact under defer +
// explicit double-close patterns.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	readersOpen.Add(-1)
	var err error
	if r.munmap != nil {
		err = r.munmap()
		r.munmap = nil
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the file path the reader was opened from.
func (r *Reader) Path() string { return r.path }

// Version returns the store's format version. Version 2 stores carry
// exact canonical codes (FindByCode is an exact lookup); version 1
// stores may carry legacy approximate "~" codes whose matches need
// pattern.SameGraph disambiguation.
func (r *Reader) Version() int { return int(r.version) }

// Exact reports whether the store's codes are exact canonical codes
// (format version >= 2): equal code ⟺ isomorphic pattern, no
// disambiguation needed on FindByCode hits.
func (r *Reader) Exact() bool { return r.version >= 2 }

// Meta returns the run-level metadata persisted with the store.
func (r *Reader) Meta() Meta { return r.meta }

// NumTransactions returns the size of the stored transaction set.
func (r *Reader) NumTransactions() int { return len(r.txnSpan) }

// NumPatterns returns the total number of pattern records.
func (r *Reader) NumPatterns() int { return len(r.recs) }

// Levels lists the stored mining levels in ascending edge order.
func (r *Reader) Levels() []LevelInfo {
	out := make([]LevelInfo, len(r.levels))
	for i, lv := range r.levels {
		out[i] = LevelInfo{Edges: lv.edges, Patterns: lv.count}
	}
	return out
}

// LevelRange returns the global record index range [start, end) of
// the level with the given edge count (0, 0 when absent).
func (r *Reader) LevelRange(edges int) (start, end int) {
	for _, lv := range r.levels {
		if lv.edges == edges {
			return lv.start, lv.start + lv.count
		}
	}
	return 0, 0
}

// PatternInfo is the decoded footer-index entry of one record: the
// queryable facts that need no record decode.
type PatternInfo struct {
	// Index is the global record index (Pattern's argument).
	Index int
	// Edges is the record's level.
	Edges int
	// Code is the pattern's isomorphism-invariant code.
	Code string
	// Support is the stored support count.
	Support int
	// Embeddings is the number of stored embeddings across TIDs.
	Embeddings int
	// HasEmbeddings reports complete per-TID lists (not seeds).
	HasEmbeddings bool
	// Overflowed mirrors pattern.Pattern.Overflowed.
	Overflowed bool
}

// Info returns the index entry of record i without touching the
// file body.
func (r *Reader) Info(i int) PatternInfo {
	rec := &r.recs[i]
	return PatternInfo{
		Index:         i,
		Edges:         r.edgesOf(i),
		Code:          rec.code,
		Support:       int(rec.support),
		Embeddings:    int(rec.embeddings),
		HasEmbeddings: rec.flags&flagHasEmbs != 0 && rec.flags&flagOverflowed == 0,
		Overflowed:    rec.flags&flagOverflowed != 0,
	}
}

func (r *Reader) edgesOf(i int) int {
	for _, lv := range r.levels {
		if i >= lv.start && i < lv.start+lv.count {
			return lv.edges
		}
	}
	return 0
}

// LocationIndex returns the persisted per-location inverted index of
// a format-v4 store: hits per vertex label in ascending record order,
// plus the count of records that store no embeddings at all. ok is
// false for stores written before v4 — callers fall back to a lazy
// full-store scan (the serving layer's pre-v4 path). The returned map
// and hit slices are the reader's own: treat them as read-only.
func (r *Reader) LocationIndex() (byLabel map[string][]LocationHit, noEmb int, ok bool) {
	if r.loc == nil {
		return nil, 0, false
	}
	return r.loc.byLabel, r.loc.noEmb, true
}

// LocationIndexInfo describes the persisted location-index section
// for the stats report: presence, label and hit counts, and its exact
// encoded size inside the footer index block.
type LocationIndexInfo struct {
	Present bool `json:"present"`
	Labels  int  `json:"labels"`
	Hits    int  `json:"hits"`
	NoEmb   int  `json:"no_embedding_records"`
	Bytes   int  `json:"bytes"`
}

// LocationIndexStats summarises the persisted location index (zero
// Present for pre-v4 stores).
func (r *Reader) LocationIndexStats() LocationIndexInfo {
	if r.loc == nil {
		return LocationIndexInfo{}
	}
	info := LocationIndexInfo{Present: true, Labels: len(r.loc.byLabel), NoEmb: r.loc.noEmb, Bytes: r.loc.bytes}
	for _, hits := range r.loc.byLabel {
		info.Hits += len(hits)
	}
	return info
}

// FindByCode returns the global record indices whose code equals the
// given code, in store order. On version 2 stores this is an exact
// lookup: every returned record holds the same pattern (Algorithm 1
// stores keep one record per repetition, so several exact hits are
// still normal). On legacy version 1 stores an approximate "~" code
// may collide between non-isomorphic patterns — callers that need
// one specific graph disambiguate with pattern.SameGraph, the
// retained compat path.
func (r *Reader) FindByCode(code string) []int {
	return r.byCode[code]
}

// readSpan returns the bytes of one record: a sub-slice of the
// mapping when mapped (zero copy), a fresh pread buffer otherwise.
func (r *Reader) readSpan(s span) ([]byte, error) {
	if r.data != nil {
		return r.data[s.off : s.off+s.len : s.off+s.len], nil
	}
	buf := make([]byte, s.len)
	if _, err := r.f.ReadAt(buf, int64(s.off)); err != nil {
		return nil, fmt.Errorf("store: read %s: %w", r.path, err)
	}
	return buf, nil
}

// Pattern decodes record i in full: graph, code, TID list and
// embedding lists.
func (r *Reader) Pattern(i int) (*pattern.Pattern, error) {
	if i < 0 || i >= len(r.recs) {
		return nil, fmt.Errorf("store: pattern index %d out of range [0, %d)", i, len(r.recs))
	}
	buf, err := r.readSpan(r.recs[i].span)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: buf}
	p := decodePattern(d, int(r.version))
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("store: %s record %d: %w", r.path, i, err)
	}
	return p, nil
}

// PatternLite decodes record i without its embedding section — the
// cheap path for support/TID queries, which pays the graph + TID
// decode only (embedding runs dominate a record's bytes). The
// returned Pattern has Embs nil regardless of what is stored; use
// Info(i).Embeddings for the stored count and Pattern(i) for the
// lists.
func (r *Reader) PatternLite(i int) (*pattern.Pattern, error) {
	if i < 0 || i >= len(r.recs) {
		return nil, fmt.Errorf("store: pattern index %d out of range [0, %d)", i, len(r.recs))
	}
	buf, err := r.readSpan(r.recs[i].span)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: buf}
	p, _, _ := decodePatternHead(d, int(r.version))
	if d.err != nil {
		return nil, fmt.Errorf("store: %s record %d: %w", r.path, i, d.err)
	}
	return p, nil
}

// columnInfo decodes record i's header just far enough to describe
// its TID column's on-disk shape — the stats decode pass.
func (r *Reader) columnInfo(i int) (tidColumnInfo, error) {
	buf, err := r.readSpan(r.recs[i].span)
	if err != nil {
		return tidColumnInfo{}, err
	}
	d := &dec{buf: buf}
	_, _, info := decodePatternHead(d, int(r.version))
	if d.err != nil {
		return tidColumnInfo{}, fmt.Errorf("store: %s record %d: %w", r.path, i, d.err)
	}
	return info, nil
}

// Transactions decodes the whole stored transaction set in TID order
// (through the cache, so graphs are shared with other callers and
// must be treated as read-only) — the bulk half of the reader→writer
// rehydration path delta mining runs on.
func (r *Reader) Transactions() ([]*graph.Graph, error) {
	out := make([]*graph.Graph, len(r.txnSpan))
	for tid := range r.txnSpan {
		g, err := r.Transaction(tid)
		if err != nil {
			return nil, err
		}
		out[tid] = g
	}
	return out, nil
}

// LevelPatterns decodes every pattern record of the level with the
// given edge count, in store order, embeddings included — the pattern
// half of the rehydration path. A level the store does not hold
// returns an empty slice.
func (r *Reader) LevelPatterns(edges int) ([]pattern.Pattern, error) {
	start, end := r.LevelRange(edges)
	out := make([]pattern.Pattern, 0, end-start)
	for i := start; i < end; i++ {
		p, err := r.Pattern(i)
		if err != nil {
			return nil, err
		}
		out = append(out, *p)
	}
	return out, nil
}

// AllLevelPatterns rehydrates every stored level, keyed by edge
// count — the Prior.Levels shape delta mining consumes.
func (r *Reader) AllLevelPatterns() (map[int][]pattern.Pattern, error) {
	out := make(map[int][]pattern.Pattern, len(r.levels))
	for _, lv := range r.levels {
		pats, err := r.LevelPatterns(lv.edges)
		if err != nil {
			return nil, err
		}
		out[lv.edges] = pats
	}
	return out, nil
}

// ValidateDeltaSource checks the properties every delta consumer
// needs from an opened source store, in one place so the flag-time
// pre-flights (cmd/tndtemporal, cmd/tndfsg) and the mining-time
// checks (core's DeltaFrom paths) cannot drift: exact canonical
// codes (format v2+ — approximate v1 codes cannot key delta dedup),
// and the right store kind — structural (Algorithm 1, which also
// needs repetition provenance to continue the RNG stream) or a
// transaction-set store (fsg/temporal). Deeper validation (prefix
// match, parameter match) needs the run's own inputs and stays with
// the pipelines.
func (r *Reader) ValidateDeltaSource(structural bool) error {
	kind := r.meta.Kind
	if structural {
		if kind != "structural" {
			return fmt.Errorf("store: delta source %s has kind %q, want \"structural\" — fold transaction-set stores with the temporal delta path instead", r.path, kind)
		}
	} else if kind == "structural" {
		return fmt.Errorf("store: delta source %s is an Algorithm 1 store (one record per repetition) — fold repetitions into it with the structural delta path instead", r.path)
	}
	if !r.Exact() {
		return fmt.Errorf("store: delta source %s is a version-%d store with approximate codes — re-mine it with this build first", r.path, r.Version())
	}
	if structural && r.meta.Repetitions < 1 {
		return fmt.Errorf("store: delta source %s records no repetition provenance — written before delta mining existed; re-mine it with this build first", r.path)
	}
	return nil
}

// VerifyPrefix checks that this store's transaction set is exactly
// the first NumTransactions entries of txns, byte-for-byte under the
// store codec. Delta mining rests on stored TID lists staying valid
// over the combined transaction list, which they only do when the new
// list extends the old one — a reordered partition, a different
// dataset or a mismatched filter all fail here with the first
// offending TID instead of silently mining garbage.
func (r *Reader) VerifyPrefix(txns []*graph.Graph) error {
	if len(txns) < len(r.txnSpan) {
		return fmt.Errorf("store: %s holds %d transactions but only %d were supplied — the new transaction set must extend the stored one", r.path, len(r.txnSpan), len(txns))
	}
	var e enc
	for tid := range r.txnSpan {
		stored, err := r.readSpan(r.txnSpan[tid])
		if err != nil {
			return err
		}
		e.buf = e.buf[:0]
		encodeGraph(&e, txns[tid])
		if !bytes.Equal(stored, e.buf) {
			return fmt.Errorf("store: %s transaction %d differs from the supplied transaction set — not a prefix, cannot delta-mine from this store", r.path, tid)
		}
	}
	return nil
}

// Transaction decodes transaction tid, caching the result; repeated
// occurrence queries over the same transactions decode each once.
// The returned graph is shared — treat it as read-only.
func (r *Reader) Transaction(tid int) (*graph.Graph, error) {
	if tid < 0 || tid >= len(r.txnSpan) {
		return nil, fmt.Errorf("store: transaction %d out of range [0, %d)", tid, len(r.txnSpan))
	}
	r.mu.Lock()
	if g := r.txnCache[tid]; g != nil {
		r.mu.Unlock()
		return g, nil
	}
	r.mu.Unlock()
	buf, err := r.readSpan(r.txnSpan[tid])
	if err != nil {
		return nil, err
	}
	d := &dec{buf: buf}
	g := decodeGraph(d)
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("store: %s transaction %d: %w", r.path, tid, err)
	}
	r.mu.Lock()
	if cached := r.txnCache[tid]; cached != nil {
		g = cached // a racing decode won; share one instance
	} else {
		r.txnCache[tid] = g
	}
	r.mu.Unlock()
	return g, nil
}
