package store

import (
	"fmt"
	"strings"
	"time"
)

// LevelStats aggregates one stored level from the footer index alone
// (no record decodes).
type LevelStats struct {
	Edges      int `json:"edges"`
	Patterns   int `json:"patterns"`
	MinSupport int `json:"min_support"`
	MaxSupport int `json:"max_support"`
	SumSupport int `json:"sum_support"`
	Embeddings int `json:"embeddings"`
	// Complete counts patterns with complete embedding lists;
	// Seeded counts overflowed patterns that kept warm-start seeds;
	// Bare counts patterns with no lists at all.
	Complete int `json:"complete"`
	Seeded   int `json:"seeded"`
	Bare     int `json:"bare"`
	// TID-column encoding: ListCols and BitsetCols count records by
	// the encoding the writer picked (v3 stores; everything before v3
	// is a delta-coded list). ArrayCons and BitmapCons count the
	// containers inside bitset columns, and ColumnBytes is the
	// on-disk size of every TID column in the level.
	ListCols    int `json:"list_cols"`
	BitsetCols  int `json:"bitset_cols"`
	ArrayCons   int `json:"array_containers"`
	BitmapCons  int `json:"bitmap_containers"`
	ColumnBytes int `json:"column_bytes"`
}

// Stats is the whole-store statistics report backing `tndstats
// -store`. The JSON shape (tndstats -json) is the machine-readable
// twin of the String table and is what CI asserts on with jq.
type Stats struct {
	Path         string       `json:"path"`
	Version      int          `json:"version"`
	Meta         Meta         `json:"meta"`
	Transactions int          `json:"transactions"`
	Patterns     int          `json:"patterns"`
	Embeddings   int          `json:"embeddings"`
	Levels       []LevelStats `json:"levels"`
	// LocIndex describes the persisted per-location inverted index
	// section (format v4+; zero Present before).
	LocIndex LocationIndexInfo `json:"location_index"`
}

// ReadStats aggregates a store's index into a statistics report.
func ReadStats(r *Reader) Stats {
	st := Stats{
		Path:         r.Path(),
		Version:      r.Version(),
		Meta:         r.Meta(),
		Transactions: r.NumTransactions(),
		Patterns:     r.NumPatterns(),
		LocIndex:     r.LocationIndexStats(),
	}
	for _, lv := range r.levels {
		ls := LevelStats{Edges: lv.edges, Patterns: lv.count}
		for i := lv.start; i < lv.start+lv.count; i++ {
			info := r.Info(i)
			if ls.MinSupport == 0 || info.Support < ls.MinSupport {
				ls.MinSupport = info.Support
			}
			if info.Support > ls.MaxSupport {
				ls.MaxSupport = info.Support
			}
			ls.SumSupport += info.Support
			ls.Embeddings += info.Embeddings
			switch {
			case info.HasEmbeddings:
				ls.Complete++
			case info.Overflowed && info.Embeddings > 0:
				ls.Seeded++
			default:
				ls.Bare++
			}
			// Encoding split from the index flags alone; the decode
			// pass below fills in container counts and byte sizes.
			if r.recs[i].flags&flagTIDBitset != 0 {
				ls.BitsetCols++
			} else {
				ls.ListCols++
			}
			if ci, err := r.columnInfo(i); err == nil {
				ls.ArrayCons += ci.arrays
				ls.BitmapCons += ci.bitmaps
				ls.ColumnBytes += ci.bytes
			}
		}
		st.Embeddings += ls.Embeddings
		st.Levels = append(st.Levels, ls)
	}
	return st
}

// String renders the report in the repository's table style.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Store: %s ===\n", s.Path)
	m := s.Meta
	fmt.Fprintf(&b, "format=v%d kind=%s name=%q min-support=%d", s.Version, orUnset(m.Kind), m.Name, m.MinSupport)
	if m.CreatedUnix != 0 {
		fmt.Fprintf(&b, " created=%s", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	b.WriteByte('\n')
	if m.Parent != "" || m.Generation > 0 {
		fmt.Fprintf(&b, "delta: generation=%d parent=%s\n", m.Generation, m.Parent)
	}
	if m.WindowStart > 0 || m.WindowEnd > 0 {
		fmt.Fprintf(&b, "window: units=%d..%d retired=%d", m.WindowStart, m.WindowEnd, m.Retired)
		if len(m.WindowSizes) > 0 {
			fmt.Fprintf(&b, " sizes=%v", m.WindowSizes)
		}
		b.WriteByte('\n')
	}
	if m.Repetitions > 0 {
		fmt.Fprintf(&b, "algorithm1: repetitions=%d partitions=%d strategy=%s seed=%d\n",
			m.Repetitions, m.Partitions, m.Strategy, m.Seed)
	}
	if m.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", m.Note)
	}
	fmt.Fprintf(&b, "transactions=%d patterns=%d stored embeddings=%d\n",
		s.Transactions, s.Patterns, s.Embeddings)
	if len(s.Levels) == 0 {
		return b.String()
	}
	b.WriteString("edges  patterns  support(min/avg/max)  embeddings  complete  seeded  bare\n")
	for _, lv := range s.Levels {
		avg := 0.0
		if lv.Patterns > 0 {
			avg = float64(lv.SumSupport) / float64(lv.Patterns)
		}
		fmt.Fprintf(&b, "%5d  %8d  %8d/%6.1f/%4d  %10d  %8d  %6d  %4d\n",
			lv.Edges, lv.Patterns, lv.MinSupport, avg, lv.MaxSupport,
			lv.Embeddings, lv.Complete, lv.Seeded, lv.Bare)
	}
	if s.Version >= 3 {
		b.WriteString("TID columns (writer picks the smaller encoding per record):\n")
	} else {
		b.WriteString("TID columns (pre-v3 store: delta-coded lists only):\n")
	}
	b.WriteString("edges  list-cols  bitset-cols  array-cons  bitmap-cons  column-bytes\n")
	for _, lv := range s.Levels {
		fmt.Fprintf(&b, "%5d  %9d  %11d  %10d  %11d  %12d\n",
			lv.Edges, lv.ListCols, lv.BitsetCols, lv.ArrayCons, lv.BitmapCons, lv.ColumnBytes)
	}
	if s.LocIndex.Present {
		fmt.Fprintf(&b, "location index (v4, persisted at write time): labels=%d hits=%d no-embedding-records=%d bytes=%d\n",
			s.LocIndex.Labels, s.LocIndex.Hits, s.LocIndex.NoEmb, s.LocIndex.Bytes)
	} else if s.Version >= 4 {
		b.WriteString("location index: absent (some embeddings could not be inverted at write time; servers build it lazily)\n")
	} else {
		b.WriteString("location index: absent (pre-v4 store: servers build it lazily on the first location query)\n")
	}
	return b.String()
}

func orUnset(s string) string {
	if s == "" {
		return "unset"
	}
	return s
}

// DumpPatterns renders every pattern record as one line of exact
// mining output — level, canonical code, support, full TID list — in
// store order, with nothing time-, path- or provenance-dependent.
// Two stores hold the same mining result if and only if their dumps
// are equal, which is what the delta-mining end-to-end check diffs
// (`tndstats -store x -patterns`): a delta fold must be
// line-for-line identical to the full re-mine it replaces.
func DumpPatterns(r *Reader) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "transactions=%d patterns=%d\n", r.NumTransactions(), r.NumPatterns())
	for _, lv := range r.levels {
		fmt.Fprintf(&b, "level %d: %d patterns\n", lv.edges, lv.count)
		for i := lv.start; i < lv.start+lv.count; i++ {
			p, err := r.PatternLite(i)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "  %s support=%d tids=", p.Code, p.Support)
			for j, tid := range p.TIDs.All() {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", tid)
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
