package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// patchVersion rewrites the format-version field of a store file in
// place — the uint32 following the magic.
func patchVersion(t *testing.T, path string, version uint32) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], version)
	if _, err := f.WriteAt(v[:], int64(len(magic))); err != nil {
		t.Fatal(err)
	}
}

// chainPattern builds a 2-edge chain a-e->b-f->c over the given
// labels.
func chainPattern(l0, l1, l2 string) *graph.Graph {
	g := graph.New("pat")
	a := g.AddVertex(l0)
	b := g.AddVertex(l1)
	c := g.AddVertex(l2)
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "f")
	return g
}

// writeLegacyStore synthesizes a version-1 store: records carry the
// pre-canonical "~" codes, including two non-isomorphic patterns
// sharing one colliding code. The byte layout of v1 and v2 is
// identical, so a Writer set to the layout-2 record codec with its
// header version patched back to 1 produces a faithful v1 store.
func writeLegacyStore(t *testing.T, path string) (collA, collB *graph.Graph) {
	t.Helper()
	txn := graph.New("t0")
	a := txn.AddVertex("A")
	b := txn.AddVertex("B")
	c := txn.AddVertex("C")
	txn.AddEdge(a, b, "e")
	txn.AddEdge(b, c, "f")

	w, err := Create(path, Meta{Name: "legacy", Kind: "fsg", MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.layout = 2 // legacy record byte layout (v1 and v2 are identical)
	if err := w.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	// Two non-isomorphic 2-edge patterns stored under one colliding
	// legacy code, plus an honest record under its own code.
	collA = chainPattern("A", "B", "C")
	collB = chainPattern("C", "B", "A")
	honest := chainPattern("A", "A", "A")
	if err := w.WriteLevel(2, []pattern.Pattern{
		{Graph: collA, Code: "~collide", Support: 1, TIDs: pattern.NewTIDSet(0)},
		{Graph: collB, Code: "~collide", Support: 1, TIDs: pattern.NewTIDSet(0)},
		{Graph: honest, Code: "~lonely", Support: 1, TIDs: pattern.NewTIDSet(0)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	patchVersion(t, path, 1)
	return collA, collB
}

// TestOpenLegacyV1Store: a version-1 store with "~" codes opens and
// serves correctly through the old bucket-plus-disambiguate path.
func TestOpenLegacyV1Store(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.tnd")
	collA, collB := writeLegacyStore(t, path)

	r, err := Open(path)
	if err != nil {
		t.Fatalf("open v1 store: %v", err)
	}
	defer r.Close()
	if r.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", r.Version())
	}
	if r.Exact() {
		t.Fatal("a v1 store must not report exact codes")
	}

	// The colliding code buckets both records; SameGraph picks the
	// requested graph out of the bucket — the legacy path intact.
	hits := r.FindByCode("~collide")
	if len(hits) != 2 {
		t.Fatalf("FindByCode(~collide) = %v, want 2 hits", hits)
	}
	var matched int
	for _, i := range hits {
		p, err := r.Pattern(i)
		if err != nil {
			t.Fatal(err)
		}
		if pattern.SameGraph(p.Code, p.Graph, "~collide", collA) {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("SameGraph matched %d of the colliding records for collA, want exactly 1", matched)
	}
	// And the sibling graph matches the other record.
	matched = 0
	for _, i := range hits {
		p, err := r.Pattern(i)
		if err != nil {
			t.Fatal(err)
		}
		if pattern.SameGraph(p.Code, p.Graph, "~collide", collB) {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("SameGraph matched %d of the colliding records for collB, want exactly 1", matched)
	}

	if hits := r.FindByCode("~lonely"); len(hits) != 1 {
		t.Fatalf("FindByCode(~lonely) = %v, want 1 hit", hits)
	}
	// Transactions and level directory are served as usual.
	if r.NumTransactions() != 1 || r.NumPatterns() != 3 {
		t.Fatalf("txns=%d patterns=%d", r.NumTransactions(), r.NumPatterns())
	}
	if _, err := r.Transaction(0); err != nil {
		t.Fatal(err)
	}
}

// TestCurrentWriterProducesCurrentVersion pins the version bump: a
// fresh store opens at the current format version with exact codes.
func TestCurrentWriterProducesCurrentVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cur.tnd")
	w, err := Create(path, Meta{Name: "cur"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != FormatVersion || !r.Exact() {
		t.Fatalf("Version() = %d Exact() = %v, want %d/true", r.Version(), r.Exact(), FormatVersion)
	}
}

// TestRejectUnknownVersionNamesRange: versions outside the readable
// range fail with both bounds named.
func TestRejectUnknownVersionNamesRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.tnd")
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	patchVersion(t, path, FormatVersion+5)
	_, err = Open(path)
	if err == nil {
		t.Fatal("opened a future-version store")
	}
	for _, want := range []string{"version", "1 through 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
	patchVersion(t, path, 0)
	if _, err := Open(path); err == nil {
		t.Fatal("opened a version-0 store")
	}
}
