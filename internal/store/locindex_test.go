package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

// locatablePattern builds a random pattern whose embeddings reference
// only vertices that exist in their transactions — the well-formed
// mining output shape the location index is defined over (randPattern
// from store_test.go deliberately produces dangling references to
// exercise the opaque codec; those disable the index instead).
func locatablePattern(rng *rand.Rand, edges int, txns []*graph.Graph) pattern.Pattern {
	g := graph.New("pat")
	nv := 1 + rng.Intn(3)
	for i := 0; i < nv; i++ {
		g.AddVertex(fmt.Sprintf("L%d", rng.Intn(3)))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(nv)), graph.VertexID(rng.Intn(nv)), "e")
	}
	var tids []int
	for t := range txns {
		if rng.Intn(2) == 0 {
			tids = append(tids, t)
		}
	}
	if len(tids) == 0 {
		tids = []int{rng.Intn(len(txns))}
	}
	p := pattern.Pattern{Graph: g, Code: fmt.Sprintf("c%d:%x", edges, rng.Uint64()),
		Support: len(tids), TIDs: pattern.TIDSetFromSlice(tids)}
	if rng.Intn(4) == 0 {
		// Some records store no lists: they land in the index's
		// no-embeddings count, not under any label.
		if rng.Intn(2) == 0 {
			p.Overflowed = true
		}
		return p
	}
	p.Embs = make([][]iso.DenseEmbedding, len(tids))
	for i, tid := range tids {
		live := txns[tid].Vertices()
		for j := 0; j < rng.Intn(3)+1; j++ {
			verts := make([]graph.VertexID, nv)
			for k := range verts {
				verts[k] = live[rng.Intn(len(live))]
			}
			edgeIDs := make([]graph.EdgeID, edges)
			for k := range edgeIDs {
				edgeIDs[k] = graph.EdgeID(rng.Intn(8))
			}
			p.Embs[i] = append(p.Embs[i], iso.DenseEmbedding{Verts: verts, Edges: edgeIDs})
		}
	}
	return p
}

func writeLocStore(t *testing.T, path string, layout int, txns []*graph.Graph, levels map[int][]pattern.Pattern) {
	t.Helper()
	w, err := Create(path, Meta{Name: "loc", Kind: "fsg", MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if layout != FormatVersion {
		if err := w.SetLayout(layout); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevels(levels); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLocationIndexMatchesLazyInversion is the v4↔v3 property: over
// random well-formed stores, the persisted location index must equal
// the inversion a reader computes record by record from the decoded
// embeddings (the serving layer's lazy path), and the v3 encoding of
// the same content must (a) carry no index and (b) dump
// byte-identically — the index is purely additive.
func TestLocationIndexMatchesLazyInversion(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		numTxns := 2 + rng.Intn(4)
		txns := make([]*graph.Graph, numTxns)
		for i := range txns {
			txns[i] = randGraph(rng, fmt.Sprintf("t%d", i))
			if txns[i].NumVertices() == 0 {
				txns[i].AddVertex("L0")
			}
		}
		levels := map[int][]pattern.Pattern{}
		for edges := 1; edges <= 1+rng.Intn(3); edges++ {
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				levels[edges] = append(levels[edges], locatablePattern(rng, edges, txns))
			}
		}

		dir := t.TempDir()
		v4Path := filepath.Join(dir, "v4.tnd")
		v3Path := filepath.Join(dir, "v3.tnd")
		writeLocStore(t, v4Path, FormatVersion, txns, levels)
		writeLocStore(t, v3Path, 3, txns, levels)

		r4, err := Open(v4Path)
		if err != nil {
			t.Fatal(err)
		}
		defer r4.Close()
		r3, err := Open(v3Path)
		if err != nil {
			t.Fatal(err)
		}
		defer r3.Close()

		if r3.Version() != 3 {
			t.Fatalf("trial %d: SetLayout(3) store opened as v%d", trial, r3.Version())
		}
		if _, _, ok := r3.LocationIndex(); ok {
			t.Fatalf("trial %d: v3 store reports a persisted location index", trial)
		}
		byLabel, noEmb, ok := r4.LocationIndex()
		if !ok {
			t.Fatalf("trial %d: v4 store has no location index", trial)
		}

		// Independent inversion from the decoded records — exactly
		// what a lazy server computes.
		wantByLabel := map[string][]LocationHit{}
		wantNoEmb := 0
		for i := 0; i < r4.NumPatterns(); i++ {
			p, err := r4.Pattern(i)
			if err != nil {
				t.Fatal(err)
			}
			perLabel, err := invertEmbeddings(p, i, r4.Transaction)
			if err != nil {
				t.Fatal(err)
			}
			if perLabel == nil {
				wantNoEmb++
				continue
			}
			for label, h := range perLabel {
				wantByLabel[label] = append(wantByLabel[label], *h)
			}
		}
		if noEmb != wantNoEmb {
			t.Fatalf("trial %d: persisted noEmb=%d, lazy inversion %d", trial, noEmb, wantNoEmb)
		}
		if len(byLabel) != len(wantByLabel) {
			t.Fatalf("trial %d: persisted %d labels, lazy inversion %d", trial, len(byLabel), len(wantByLabel))
		}
		for label, want := range wantByLabel {
			got := byLabel[label]
			if len(got) != len(want) {
				t.Fatalf("trial %d label %q: %d hits, want %d", trial, label, len(got), len(want))
			}
			for i := range want {
				if got[i].Record != want[i].Record || got[i].Occurrences != want[i].Occurrences ||
					!got[i].TIDs.Equal(want[i].TIDs) {
					t.Fatalf("trial %d label %q hit %d: persisted %+v (tids %v), lazy %+v (tids %v)",
						trial, label, i, got[i], got[i].TIDs.Slice(), want[i], want[i].TIDs.Slice())
				}
			}
		}

		// The index is additive: mining content identical across v3/v4.
		d3, err := DumpPatterns(r3)
		if err != nil {
			t.Fatal(err)
		}
		d4, err := DumpPatterns(r4)
		if err != nil {
			t.Fatal(err)
		}
		if d3 != d4 {
			t.Fatalf("trial %d: v3 and v4 dumps diverge", trial)
		}
	}
}

// TestLocationIndexDisabledOnDanglingEmbeddings: a record whose
// embeddings reference vertices missing from their transaction still
// round-trips (the codec treats embeddings as opaque), but the
// optional index section is dropped for the whole store and the stats
// report says so.
func TestLocationIndexDisabledOnDanglingEmbeddings(t *testing.T) {
	txn := graph.New("t0")
	txn.AddVertex("A")
	g := graph.New("pat")
	v := g.AddVertex("A")
	g.AddEdge(v, v, "e")
	p := pattern.Pattern{Graph: g, Code: "dangling", Support: 1, TIDs: pattern.NewTIDSet(0),
		Embs: [][]iso.DenseEmbedding{{{Verts: []graph.VertexID{99}, Edges: []graph.EdgeID{0}}}}}

	path := filepath.Join(t.TempDir(), "dangling.tnd")
	w, err := Create(path, Meta{Name: "dangling"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, []pattern.Pattern{p}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, ok := r.LocationIndex(); ok {
		t.Fatal("store with dangling embeddings kept a location index")
	}
	got, err := r.Pattern(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Embs) != 1 || got.Embs[0][0].Verts[0] != 99 {
		t.Fatalf("dangling embedding did not round-trip: %+v", got.Embs)
	}
	if s := ReadStats(r).String(); !strings.Contains(s, "location index: absent (some embeddings could not be inverted") {
		t.Fatalf("stats missing the disabled-index caption:\n%s", s)
	}
}

// TestSetLayoutContract pins the exported legacy-synthesis hook: only
// before writing, only within the writable range, and the header
// version follows the layout.
func TestSetLayoutContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "layout.tnd")
	w, err := Create(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetLayout(1); err == nil {
		t.Fatal("SetLayout(1) accepted (v1 needs layout 2 plus a header patch)")
	}
	if err := w.SetLayout(FormatVersion + 1); err == nil {
		t.Fatal("SetLayout accepted a future version")
	}
	if err := w.SetLayout(3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLayout(3); err == nil {
		t.Fatal("SetLayout accepted after WriteTransactions")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 3 {
		t.Fatalf("SetLayout(3) store opened as v%d", r.Version())
	}
}
