// Package faultfs is a minimal write-side filesystem abstraction with
// a schedule-driven fault injector. Production code runs on the OS
// passthrough; tests and the CI crash matrix swap in an Injector that
// fails, tears, or "crashes" at chosen operation counts, so every
// durability step of the store writer and the ingest pipeline can be
// exercised against short writes, fsync errors, torn footers, rename
// failures, and process death at arbitrary step boundaries.
//
// The injector is deterministic: a fault schedule names an operation
// kind, an optional path substring, and how many matching operations
// to let through first. Randomised runs (the CI crash matrix) draw
// those counts from a seeded RNG *outside* this package and replay
// identically from the seed.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// File is the write-side file handle surface the store writer and the
// ingest journal need. *os.File satisfies it.
type File interface {
	io.Writer
	io.WriterAt
	Sync() error
	Close() error
}

// FS is the mutation surface threaded through crash-safe writers.
// Reads stay on the plain os package: torn state is produced by
// failing writes, not by lying to readers.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames inside it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS used outside tests.
type OS struct{}

func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Append(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error               { return os.Remove(name) }
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Op names one injectable operation.
type Op uint8

const (
	// OpAny matches every operation — the crash-matrix wildcard.
	OpAny Op = iota
	OpCreate
	OpAppend
	OpWrite
	OpWriteAt
	OpSync
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
)

var opNames = [...]string{"any", "create", "append", "write", "writeat", "sync", "close", "rename", "remove", "truncate", "syncdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Kind selects what a triggered fault does.
type Kind uint8

const (
	// Error fails the operation outright; no bytes are applied.
	Error Kind = iota
	// Short applies only part of a write (per Fault.Keep) and then
	// fails it — a torn write. Non-write operations treat Short like
	// Error.
	Short
	// Crash applies part of a write (per Fault.Keep), fails it, and
	// marks the injector dead: every subsequent operation returns
	// ErrCrashed, simulating the process being killed at this point.
	// Bytes still buffered above the FS (e.g. in the store writer's
	// bufio layer) are lost exactly as they would be in a real kill.
	Crash
)

// Fault is one scheduled injection.
type Fault struct {
	// Op restricts the fault to one operation kind; OpAny matches all.
	Op Op
	// Path, when non-empty, restricts the fault to operations whose
	// path contains it as a substring.
	Path string
	// After is how many matching operations run cleanly before the
	// fault fires. 0 fires on the first match.
	After int
	// Kind is the failure mode.
	Kind Kind
	// Keep bounds the bytes applied by a Short/Crash write fault:
	// n >= 0 keeps n bytes, -1 keeps half the buffer, and k <= -2
	// keeps all but |k| trailing bytes (so -2 tears exactly the last
	// two bytes off — a torn end-of-footer magic).
	Keep int
	// Err overrides the returned error (default ErrInjected, or
	// ErrCrashed for Crash faults).
	Err error
}

func (f *Fault) errFor() error {
	if f.Err != nil {
		return f.Err
	}
	if f.Kind == Crash {
		return ErrCrashed
	}
	return ErrInjected
}

// keepBytes resolves Fault.Keep against an n-byte buffer.
func keepBytes(keep, n int) int {
	switch {
	case keep >= 0:
		if keep > n {
			return n
		}
		return keep
	case keep == -1:
		return n / 2
	default:
		if k := n + keep; k > 0 {
			return k
		}
		return 0
	}
}

// ErrInjected is the default error returned by a triggered fault.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed reports an operation attempted at or after a Crash
// fault: the simulated process is dead and nothing further succeeds.
var ErrCrashed = errors.New("faultfs: simulated crash")

type faultState struct {
	Fault
	remaining int
	fired     bool
}

// Injector wraps an FS with a fault schedule. Safe for concurrent
// use.
type Injector struct {
	base FS

	mu      sync.Mutex
	faults  []*faultState
	ops     int
	crashed bool
}

// NewInjector wraps base with the given schedule.
func NewInjector(base FS, faults ...Fault) *Injector {
	in := &Injector{base: base}
	for _, f := range faults {
		in.AddFault(f)
	}
	return in
}

// AddFault appends one fault to the schedule.
func (in *Injector) AddFault(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &faultState{Fault: f, remaining: f.After})
}

// Ops returns the number of operations observed so far. Enumerating a
// crash matrix runs the workload once fault-free to learn Ops, then
// replays it with a Crash fault at each k in [0, Ops).
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether a Crash fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step accounts one operation and returns the fault to apply, if any.
// A non-nil error means the injector is already crashed.
func (in *Injector) step(op Op, path string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.crashed {
		return nil, ErrCrashed
	}
	for _, fs := range in.faults {
		if fs.fired {
			continue
		}
		if fs.Op != OpAny && fs.Op != op {
			continue
		}
		if fs.Path != "" && !strings.Contains(path, fs.Path) {
			continue
		}
		if fs.remaining > 0 {
			fs.remaining--
			continue
		}
		fs.fired = true
		if fs.Kind == Crash {
			in.crashed = true
		}
		return &fs.Fault, nil
	}
	return nil, nil
}

func (in *Injector) Create(name string) (File, error) {
	fault, err := in.step(OpCreate, name)
	if err != nil {
		return nil, err
	}
	if fault != nil {
		return nil, fault.errFor()
	}
	f, err := in.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{f: f, path: name, in: in}, nil
}

func (in *Injector) Append(name string) (File, error) {
	fault, err := in.step(OpAppend, name)
	if err != nil {
		return nil, err
	}
	if fault != nil {
		return nil, fault.errFor()
	}
	f, err := in.base.Append(name)
	if err != nil {
		return nil, err
	}
	return &file{f: f, path: name, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	return in.plainOp(OpRename, oldpath+" -> "+newpath, func() error { return in.base.Rename(oldpath, newpath) })
}

func (in *Injector) Remove(name string) error {
	return in.plainOp(OpRemove, name, func() error { return in.base.Remove(name) })
}

func (in *Injector) Truncate(name string, size int64) error {
	return in.plainOp(OpTruncate, name, func() error { return in.base.Truncate(name, size) })
}

func (in *Injector) SyncDir(dir string) error {
	return in.plainOp(OpSyncDir, dir, func() error { return in.base.SyncDir(dir) })
}

func (in *Injector) plainOp(op Op, path string, run func() error) error {
	fault, err := in.step(op, path)
	if err != nil {
		return err
	}
	if fault != nil {
		return fault.errFor()
	}
	return run()
}

// file wraps a base File with the injector's schedule.
type file struct {
	f    File
	path string
	in   *Injector
}

func (x *file) Write(b []byte) (int, error) {
	fault, err := x.in.step(OpWrite, x.path)
	if err != nil {
		return 0, err
	}
	if fault == nil {
		return x.f.Write(b)
	}
	n := 0
	if fault.Kind != Error {
		// Torn write: part of the buffer reaches the file before the
		// failure, like a partial write cut off by a kill or a full disk.
		n, _ = x.f.Write(b[:keepBytes(fault.Keep, len(b))])
	}
	return n, fault.errFor()
}

func (x *file) WriteAt(b []byte, off int64) (int, error) {
	fault, err := x.in.step(OpWriteAt, x.path)
	if err != nil {
		return 0, err
	}
	if fault == nil {
		return x.f.WriteAt(b, off)
	}
	n := 0
	if fault.Kind != Error {
		n, _ = x.f.WriteAt(b[:keepBytes(fault.Keep, len(b))], off)
	}
	return n, fault.errFor()
}

func (x *file) Sync() error {
	fault, err := x.in.step(OpSync, x.path)
	if err != nil {
		return err
	}
	if fault != nil {
		return fault.errFor()
	}
	return x.f.Sync()
}

// Close always releases the underlying handle — an in-process
// "crashed" daemon must not leak file descriptors — but reports the
// fault when one applies.
func (x *file) Close() error {
	fault, err := x.in.step(OpClose, x.path)
	cerr := x.f.Close()
	if err != nil {
		return err
	}
	if fault != nil {
		return fault.errFor()
	}
	return cerr
}
