package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.txt")
	var fs FS = OS{}
	f, err := fs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, "b.txt")
	if err := fs.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	a, err := fs.Append(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(q)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("got %q", data)
	}
	if err := fs.Truncate(q, 5); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(q); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := fs.Remove(q); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorErrorFault(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpSync, Kind: Error})
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync err = %v, want ErrInjected", err)
	}
	// The fault fires once; the next sync is clean.
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	in := NewInjector(OS{}, Fault{Op: OpWrite, Kind: Short, Keep: 3})
	f, err := in.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(p)
	if string(data) != "abc" {
		t.Fatalf("file holds %q, want torn prefix \"abc\"", data)
	}
}

func TestInjectorKeepModes(t *testing.T) {
	for _, tc := range []struct{ keep, n, want int }{
		{0, 10, 0}, {4, 10, 4}, {20, 10, 10}, {-1, 10, 5}, {-2, 10, 8}, {-20, 10, 0},
	} {
		if got := keepBytes(tc.keep, tc.n); got != tc.want {
			t.Errorf("keepBytes(%d, %d) = %d, want %d", tc.keep, tc.n, got, tc.want)
		}
	}
}

func TestInjectorCrashKillsEverything(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	in := NewInjector(OS{}, Fault{Op: OpWrite, After: 1, Kind: Crash, Keep: -1})
	f, err := in.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("efgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write err = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// Every later operation fails, including on other paths.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash = %v", err)
	}
	if _, err := in.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after crash = %v", err)
	}
	if err := in.Rename(p, p+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
	// Close still releases the handle but reports the crash.
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Close after crash = %v", err)
	}
	// The torn half-write landed before the crash.
	data, _ := os.ReadFile(p)
	if string(data) != "abcdef" {
		t.Fatalf("file holds %q, want \"abcdef\" (4 clean + 2 torn)", data)
	}
}

func TestInjectorAfterAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpCreate, Path: "journal", After: 1, Kind: Error})
	if _, err := in.Create(filepath.Join(dir, "journal-0")); err != nil {
		t.Fatalf("first matching create should pass: %v", err)
	}
	if _, err := in.Create(filepath.Join(dir, "store-0")); err != nil {
		t.Fatalf("non-matching path should pass: %v", err)
	}
	if _, err := in.Create(filepath.Join(dir, "journal-1")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second matching create = %v, want ErrInjected", err)
	}
}

func TestInjectorOpsCounting(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	f, _ := in.Create(filepath.Join(dir, "a"))
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	in.SyncDir(dir)
	if got := in.Ops(); got != 5 {
		t.Fatalf("Ops = %d, want 5", got)
	}
}
