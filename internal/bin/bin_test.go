package bin

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEqualWidthBasic(t *testing.T) {
	b := NewEqualWidth(0, 45500, 7) // the paper's weight binning
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {6499, 0}, {6500, 1}, {13000, 2}, {19499, 2},
		{45499, 6}, {45500, 6}, {1e6, 6}, {-5, 0},
	}
	for _, c := range cases {
		if got := b.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if b.NumBins() != 7 {
		t.Errorf("NumBins = %d", b.NumBins())
	}
	if got := b.Label(0); got != "[0, 6500)" {
		t.Errorf("Label(0) = %q", got)
	}
	if got := b.Label(2); got != "[13000, 19500)" {
		t.Errorf("Label(2) = %q (the Figure 4 interval)", got)
	}
}

func TestEqualWidthPropertyInRange(t *testing.T) {
	b := NewEqualWidth(0, 100, 10)
	f := func(v float64) bool {
		idx := b.Bin(v)
		return idx >= 0 && idx < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualWidthMonotone(t *testing.T) {
	b := NewEqualWidth(-50, 50, 9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*200 - 100
		y := x + rng.Float64()*10
		if b.Bin(x) > b.Bin(y) {
			t.Fatalf("binning not monotone: Bin(%v)=%d > Bin(%v)=%d", x, b.Bin(x), y, b.Bin(y))
		}
	}
}

func TestBoundaries(t *testing.T) {
	b := NewBoundaries(0, 10, 100, 1000)
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {9.99, 0}, {10, 1}, {99, 1}, {100, 2}, {999, 2}, {1000, 2}, {5000, 2},
	}
	for _, c := range cases {
		if got := b.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := b.Label(1); got != "[10, 100)" {
		t.Errorf("Label(1) = %q", got)
	}
}

func TestEqualFrequency(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	b := EqualFrequency(values, 4)
	counts := make([]int, b.NumBins())
	for _, v := range values {
		counts[b.Bin(v)]++
	}
	for i, c := range counts {
		if c < 15 || c > 35 {
			t.Errorf("bin %d has %d values, want ~25", i, c)
		}
	}
}

func TestEqualFrequencySkewed(t *testing.T) {
	// Heavily repeated values collapse cut points without panicking.
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2, 3}
	b := EqualFrequency(values, 5)
	if b.NumBins() < 1 {
		t.Fatalf("bins = %d", b.NumBins())
	}
	for _, v := range values {
		idx := b.Bin(v)
		if idx < 0 || idx >= b.NumBins() {
			t.Fatalf("Bin(%v) = %d out of range", v, idx)
		}
	}
}

func TestLabelOf(t *testing.T) {
	b := NewEqualWidth(0, 70, 7)
	if got := LabelOf(b, 15); got != "[10, 20)" {
		t.Errorf("LabelOf = %q", got)
	}
	if !strings.HasPrefix(LabelOf(b, -3), "[0,") {
		t.Error("clamped label")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":      func() { NewEqualWidth(0, 1, 0) },
		"inverted range": func() { NewEqualWidth(5, 1, 3) },
		"one cut":        func() { NewBoundaries(1) },
		"unsorted cuts":  func() { NewBoundaries(1, 1) },
		"empty ef":       func() { EqualFrequency(nil, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFractionalLabels(t *testing.T) {
	b := NewEqualWidth(0, 1, 4)
	if got := b.Label(0); got != "[0, 0.25)" {
		t.Errorf("Label(0) = %q", got)
	}
}
