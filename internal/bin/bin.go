// Package bin implements the binning (discretisation) strategy of
// Section 3 of the paper: continuous shipment attributes (distance,
// transit hours, gross weight) are divided into a small number of
// ranges so that edges with similar — though not exactly equal —
// values support the same pattern. The paper uses seven bins for
// gross weight and ten for transit hours.
package bin

import (
	"fmt"
	"math"
	"sort"
)

// Binner maps a continuous value to a bin index and an interval label.
type Binner interface {
	// Bin returns the zero-based bin index for v.
	Bin(v float64) int
	// Label returns the interval label of the given bin, in the
	// "[lo, hi]" style used by the paper's Figure 4.
	Label(bin int) string
	// NumBins returns the number of bins.
	NumBins() int
}

// LabelOf is a convenience that bins v and returns its interval label.
func LabelOf(b Binner, v float64) string { return b.Label(b.Bin(v)) }

// EqualWidth divides [Lo, Hi] into N equal-width bins. Values below
// Lo map to bin 0 and values at or above Hi map to bin N-1, so every
// value has a bin.
type EqualWidth struct {
	Lo, Hi float64
	N      int
}

// NewEqualWidth returns an equal-width binner over [lo, hi] with n
// bins. It panics if n < 1 or hi <= lo.
func NewEqualWidth(lo, hi float64, n int) EqualWidth {
	if n < 1 {
		panic("bin: NewEqualWidth with n < 1")
	}
	if hi <= lo {
		panic("bin: NewEqualWidth with hi <= lo")
	}
	return EqualWidth{Lo: lo, Hi: hi, N: n}
}

// Bin implements Binner.
func (b EqualWidth) Bin(v float64) int {
	if v <= b.Lo {
		return 0
	}
	if v >= b.Hi {
		return b.N - 1
	}
	w := (b.Hi - b.Lo) / float64(b.N)
	idx := int((v - b.Lo) / w)
	if idx >= b.N {
		idx = b.N - 1
	}
	return idx
}

// Label implements Binner.
func (b EqualWidth) Label(bin int) string {
	w := (b.Hi - b.Lo) / float64(b.N)
	lo := b.Lo + float64(bin)*w
	hi := lo + w
	return interval(lo, hi)
}

// NumBins implements Binner.
func (b EqualWidth) NumBins() int { return b.N }

// Boundaries is a binner over explicit ascending cut points. A value
// v falls in bin i when Cuts[i] <= v < Cuts[i+1]; values below the
// first cut go to bin 0 and values at or beyond the last cut go to
// the last bin.
type Boundaries struct {
	Cuts []float64 // ascending; len(Cuts) >= 2; defines len(Cuts)-1 bins
}

// NewBoundaries returns a Boundaries binner. It panics if fewer than
// two cuts are given or the cuts are not strictly ascending.
func NewBoundaries(cuts ...float64) Boundaries {
	if len(cuts) < 2 {
		panic("bin: NewBoundaries needs at least two cuts")
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			panic("bin: NewBoundaries cuts must be strictly ascending")
		}
	}
	return Boundaries{Cuts: cuts}
}

// Bin implements Binner.
func (b Boundaries) Bin(v float64) int {
	n := len(b.Cuts) - 1
	if v < b.Cuts[0] {
		return 0
	}
	idx := sort.SearchFloat64s(b.Cuts, v)
	// SearchFloat64s returns the first i with Cuts[i] >= v.
	if idx < len(b.Cuts) && b.Cuts[idx] == v {
		// v is exactly on a cut: it belongs to the bin starting there.
		if idx >= n {
			return n - 1
		}
		return idx
	}
	idx--
	if idx >= n {
		return n - 1
	}
	return idx
}

// Label implements Binner.
func (b Boundaries) Label(bin int) string {
	return interval(b.Cuts[bin], b.Cuts[bin+1])
}

// NumBins implements Binner.
func (b Boundaries) NumBins() int { return len(b.Cuts) - 1 }

// EqualFrequency builds a Boundaries binner whose cuts place roughly
// equal numbers of the given sample values into each of n bins.
// Duplicate cut points (from heavily repeated values) are collapsed,
// so the result may have fewer than n bins.
func EqualFrequency(values []float64, n int) Boundaries {
	if n < 1 {
		panic("bin: EqualFrequency with n < 1")
	}
	if len(values) == 0 {
		panic("bin: EqualFrequency with no values")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cuts := []float64{sorted[0]}
	for i := 1; i < n; i++ {
		v := sorted[i*len(sorted)/n]
		if v > cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	last := sorted[len(sorted)-1]
	if last > cuts[len(cuts)-1] {
		cuts = append(cuts, last+math.Nextafter(0, 1))
	} else {
		cuts = append(cuts, cuts[len(cuts)-1]+1)
	}
	return Boundaries{Cuts: cuts}
}

// interval formats a half-open interval label. Whole numbers render
// without decimals to match the paper's "[0, 6500]" style.
func interval(lo, hi float64) string {
	return fmt.Sprintf("[%s, %s)", num(lo), num(hi))
}

func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
