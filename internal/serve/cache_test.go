package serve

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

// TestPatternCacheEvictionAccountingUnderChurn drives the cache past
// its byte bound from many goroutines and checks that every ledger
// the cache keeps stays exact: hits+misses == gets, used bytes ==
// the sum of resident bodies, entries == map == list, insertions -
// evictions == resident entries, and the byte bound holds. Run under
// -race this is also the cache's concurrency proof.
func TestPatternCacheEvictionAccountingUnderChurn(t *testing.T) {
	const (
		capBytes  = 1 << 14 // 16 KiB: small enough to evict constantly
		workers   = 8
		opsPer    = 4000
		keySpace  = 256
		oversized = capBytes + 1
	)
	c := newPatternCache(capBytes, cacheMetrics{})
	bodyFor := func(key, variant int) json.RawMessage {
		// Deterministic size in [64, 575], varying per put so the
		// replace path exercises the used-bytes adjustment.
		n := 64 + (key*31+variant*17)%512
		return make(json.RawMessage, n)
	}

	var gets, oversizedPuts int64
	var mu sync.Mutex // guards the tallies above
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var localGets, localOversized int64
			for i := 0; i < opsPer; i++ {
				key := rng.Intn(keySpace)
				switch rng.Intn(4) {
				case 0:
					localGets++
					c.get(key)
				case 1:
					// Oversized bodies must be rejected without
					// touching any ledger.
					localOversized++
					c.put(key, make(json.RawMessage, oversized))
				default:
					c.put(key, bodyFor(key, i))
				}
			}
			mu.Lock()
			gets += localGets
			oversizedPuts += localOversized
			mu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()

	st := c.stats()
	if st.Hits+st.Misses != uint64(gets) {
		t.Fatalf("hits(%d) + misses(%d) != gets(%d)", st.Hits, st.Misses, gets)
	}
	if st.Evictions == 0 {
		t.Fatal("churn past the byte bound produced no evictions — test is not exercising eviction")
	}
	if st.UsedBytes > capBytes {
		t.Fatalf("used %d exceeds capacity %d", st.UsedBytes, capBytes)
	}

	// Internal consistency, recomputed from the ground truth.
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := 0
	listLen := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*cacheItem)
		sum += len(it.body)
		listLen++
		if got, ok := c.items[it.key]; !ok || got != el {
			t.Fatalf("list entry %d not indexed in items map", it.key)
		}
	}
	if sum != c.used {
		t.Fatalf("used = %d, resident body bytes = %d", c.used, sum)
	}
	if listLen != len(c.items) || st.Entries != len(c.items) {
		t.Fatalf("entries diverge: list %d, map %d, stats %d", listLen, len(c.items), st.Entries)
	}
	if c.insertions-c.evictions != uint64(len(c.items)) {
		t.Fatalf("insertions(%d) - evictions(%d) != resident entries(%d)",
			c.insertions, c.evictions, len(c.items))
	}
}

// TestPatternCacheReplaceAdjustsBytes pins the replace path: putting
// a different-sized body under an existing key adjusts used bytes by
// the delta and inserts nothing.
func TestPatternCacheReplaceAdjustsBytes(t *testing.T) {
	c := newPatternCache(1<<20, cacheMetrics{})
	c.put(1, make(json.RawMessage, 100))
	c.put(1, make(json.RawMessage, 300))
	st := c.stats()
	if st.UsedBytes != 300 || st.Entries != 1 {
		t.Fatalf("after replace: used=%d entries=%d, want 300/1", st.UsedBytes, st.Entries)
	}
	if c.insertions != 1 || c.evictions != 0 {
		t.Fatalf("replace counted as insertion/eviction: %d/%d", c.insertions, c.evictions)
	}
	// LRU order: evictions remove the least recently used key.
	small := newPatternCache(250, cacheMetrics{})
	small.put(1, make(json.RawMessage, 100))
	small.put(2, make(json.RawMessage, 100))
	small.get(1) // 2 is now LRU
	small.put(3, make(json.RawMessage, 100))
	if _, ok := small.items[2]; ok {
		t.Fatal("LRU key 2 survived eviction")
	}
	if _, ok := small.items[1]; !ok {
		t.Fatal("recently used key 1 was evicted")
	}
	if small.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", small.evictions)
	}
}
