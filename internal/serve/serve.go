// Package serve is the query daemon over persisted pattern stores —
// the "heavy traffic" leg of the ROADMAP: an HTTP/JSON API that
// answers pattern, support and occurrence queries from the embedding
// lists a mining run already computed and internal/store persisted,
// without ever re-running an isomorphism search.
//
// Endpoints (all GET, all JSON):
//
//	/healthz                             liveness
//	/v1/stores                           mounted stores with meta + level directory
//	/v1/levels                           per-store level listings
//	/v1/levels/{edges}                   pattern summaries at one level
//	/v1/patterns/{code}                  full pattern records for a code
//	/v1/patterns/{code}/support          support counts + TID lists
//	/v1/patterns/{code}/occurrences      embeddings decoded against the
//	                                     stored transactions (locations)
//	/v1/locations/{label}/patterns       patterns occurring at a vertex
//	                                     label, counted from embeddings
//
// Pattern codes are the miners' exact canonical codes (iso.Code):
// equal code means the same pattern, and an Algorithm 1 store keeps
// one record per repetition, so code-keyed endpoints return every
// matching record of that one pattern. Legacy version-1 stores may
// hold the old approximate "~" codes, which can additionally collide
// between non-isomorphic patterns; their matches are served through
// the same multi-record responses (the old disambiguation path —
// callers separate collisions by the returned graphs).
//
// Location queries are answered from a per-mount inverted index
// (vertex label -> patterns whose stored embeddings touch it) built
// lazily on the first /v1/locations query and memoized for the life
// of the mount — stores are immutable once mounted, so the index
// never invalidates. The first query pays one full store scan
// (fanned out per record on the shared internal/engine pool); every
// later query is a map hit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tnkd/internal/engine"
	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/store"
)

// Options configures a Server.
type Options struct {
	// Parallelism is the engine worker count for store scans (<= 0
	// selects GOMAXPROCS).
	Parallelism int
	// ShutdownGrace bounds how long ListenAndServe waits for in-
	// flight requests after its context is cancelled (0 = 5s).
	ShutdownGrace time.Duration
}

// Mount is one named store served by a Server.
type Mount struct {
	// Name keys the store in responses (usually the file base name).
	Name string
	// Reader is the opened store.
	Reader *store.Reader
}

// Server answers queries over one or more mounted stores. It is
// stateless beyond the readers and the lazily built location indices
// and safe for concurrent use.
type Server struct {
	mounts []Mount
	opts   Options
	loc    []locIndex // per mount, aligned with mounts
	// locBody caches the marshaled /v1/locations response per label:
	// the indices are immutable, so the response bytes are too. On
	// label-poor stores (the paper's uniform-label graphs) one label
	// matches every pattern and serialising the half-megabyte answer
	// dominated the warm path; a cached body turns it into a write.
	locBody sync.Map // label -> []byte
}

// New builds a Server over the given mounts. Mount order is response
// order.
func New(mounts []Mount, opts Options) *Server {
	return &Server{mounts: mounts, opts: opts, loc: make([]locIndex, len(mounts))}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stores", s.handleStores)
	mux.HandleFunc("GET /v1/levels", s.handleLevels)
	mux.HandleFunc("GET /v1/levels/{edges}", s.handleLevel)
	mux.HandleFunc("GET /v1/patterns/{code}", s.handlePattern)
	mux.HandleFunc("GET /v1/patterns/{code}/support", s.handleSupport)
	mux.HandleFunc("GET /v1/patterns/{code}/occurrences", s.handleOccurrences)
	mux.HandleFunc("GET /v1/locations/{label}/patterns", s.handleLocation)
	return mux
}

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get
// ShutdownGrace to finish, and nil is returned for a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	// Request contexts deliberately do not derive from ctx: its
	// cancellation means "stop accepting and wind down", not "abort
	// in-flight work" — Shutdown's grace window governs those.
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	grace := s.opts.ShutdownGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// --- JSON shapes ---

// VertexJSON is one pattern-graph vertex.
type VertexJSON struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
}

// EdgeJSON is one pattern-graph edge.
type EdgeJSON struct {
	ID    int    `json:"id"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// GraphJSON is a pattern graph in adjacency form.
type GraphJSON struct {
	Name     string       `json:"name,omitempty"`
	Vertices []VertexJSON `json:"vertices"`
	Edges    []EdgeJSON   `json:"edges"`
}

// PatternSummaryJSON is the record-index view of a pattern (no
// record decode needed).
type PatternSummaryJSON struct {
	Store      string `json:"store"`
	Index      int    `json:"index"`
	Code       string `json:"code"`
	Edges      int    `json:"edges"`
	Support    int    `json:"support"`
	Embeddings int    `json:"embeddings"`
	Complete   bool   `json:"complete"`
	Overflowed bool   `json:"overflowed"`
}

// PatternJSON is one fully decoded pattern record.
type PatternJSON struct {
	PatternSummaryJSON
	Graph GraphJSON `json:"graph"`
	TIDs  []int     `json:"tids"`
}

// StoreJSON describes one mounted store.
type StoreJSON struct {
	Name         string            `json:"name"`
	Path         string            `json:"path"`
	Meta         store.Meta        `json:"meta"`
	Transactions int               `json:"transactions"`
	Patterns     int               `json:"patterns"`
	Levels       []store.LevelInfo `json:"levels"`
}

// LevelJSON is one per-store level-directory row.
type LevelJSON struct {
	Store    string `json:"store"`
	Edges    int    `json:"edges"`
	Patterns int    `json:"patterns"`
}

// SupportJSON answers a support query for one matching record.
type SupportJSON struct {
	Store   string `json:"store"`
	Index   int    `json:"index"`
	Code    string `json:"code"`
	Support int    `json:"support"`
	TIDs    []int  `json:"tids"`
}

// OccVertexJSON maps one pattern vertex into a transaction.
type OccVertexJSON struct {
	PatternVertex int    `json:"pattern_vertex"`
	Vertex        int    `json:"vertex"`
	Label         string `json:"label"`
}

// OccEdgeJSON maps one pattern edge into a transaction.
type OccEdgeJSON struct {
	PatternEdge int    `json:"pattern_edge"`
	Edge        int    `json:"edge"`
	From        int    `json:"from"`
	To          int    `json:"to"`
	Label       string `json:"label"`
}

// OccurrenceJSON is one decoded embedding.
type OccurrenceJSON struct {
	Vertices []OccVertexJSON `json:"vertices"`
	Edges    []OccEdgeJSON   `json:"edges"`
}

// TxnOccurrencesJSON groups a record's occurrences in one
// transaction.
type TxnOccurrencesJSON struct {
	TID         int              `json:"tid"`
	Transaction string           `json:"transaction,omitempty"`
	Occurrences []OccurrenceJSON `json:"occurrences"`
}

// RecordOccurrencesJSON is the occurrence listing of one matching
// record. Complete reports whether the stored lists are the full
// enumeration (overflowed records store warm-start seeds only, so
// their listing is a sample, not a proof of absence).
type RecordOccurrencesJSON struct {
	Store        string               `json:"store"`
	Index        int                  `json:"index"`
	Code         string               `json:"code"`
	Support      int                  `json:"support"`
	Complete     bool                 `json:"complete"`
	Transactions []TxnOccurrencesJSON `json:"transactions"`
}

// LocationPatternJSON is one pattern occurring at a queried location
// label.
type LocationPatternJSON struct {
	Store       string `json:"store"`
	Index       int    `json:"index"`
	Code        string `json:"code"`
	Edges       int    `json:"edges"`
	Support     int    `json:"support"`
	Occurrences int    `json:"occurrences"`
	TIDs        []int  `json:"tids"`
}

// LocationJSON answers a location query.
type LocationJSON struct {
	Label string `json:"label"`
	// Patterns occur at the label, ordered by descending occurrence
	// count then store order.
	Patterns []LocationPatternJSON `json:"patterns"`
	// PatternsWithoutEmbeddings counts records that could not be
	// checked because they store no embedding lists at all.
	PatternsWithoutEmbeddings int `json:"patterns_without_embeddings"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not a server error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleStores(w http.ResponseWriter, r *http.Request) {
	out := make([]StoreJSON, 0, len(s.mounts))
	for _, m := range s.mounts {
		out = append(out, StoreJSON{
			Name:         m.Name,
			Path:         m.Reader.Path(),
			Meta:         m.Reader.Meta(),
			Transactions: m.Reader.NumTransactions(),
			Patterns:     m.Reader.NumPatterns(),
			Levels:       m.Reader.Levels(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLevels(w http.ResponseWriter, r *http.Request) {
	out := []LevelJSON{}
	for _, m := range s.mounts {
		for _, lv := range m.Reader.Levels() {
			out = append(out, LevelJSON{Store: m.Name, Edges: lv.Edges, Patterns: lv.Patterns})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLevel lists the pattern summaries of one level across all
// mounts — index-only, no record decodes.
func (s *Server) handleLevel(w http.ResponseWriter, r *http.Request) {
	edges, err := strconv.Atoi(r.PathValue("edges"))
	if err != nil || edges < 1 {
		writeError(w, http.StatusBadRequest, "level must be a positive edge count, got %q", r.PathValue("edges"))
		return
	}
	out := []PatternSummaryJSON{}
	for _, m := range s.mounts {
		start, end := m.Reader.LevelRange(edges)
		for i := start; i < end; i++ {
			out = append(out, summaryJSON(m.Name, m.Reader.Info(i)))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func summaryJSON(storeName string, info store.PatternInfo) PatternSummaryJSON {
	return PatternSummaryJSON{
		Store:      storeName,
		Index:      info.Index,
		Code:       info.Code,
		Edges:      info.Edges,
		Support:    info.Support,
		Embeddings: info.Embeddings,
		Complete:   info.HasEmbeddings,
		Overflowed: info.Overflowed,
	}
}

// match is one (mount, record) hit for a code.
type match struct {
	mount Mount
	index int
}

func (s *Server) findCode(code string) []match {
	var out []match
	for _, m := range s.mounts {
		for _, i := range m.Reader.FindByCode(code) {
			out = append(out, match{mount: m, index: i})
		}
	}
	return out
}

func (s *Server) handlePattern(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	matches := s.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	out := make([]PatternJSON, 0, len(matches))
	for _, mt := range matches {
		p, err := mt.mount.Reader.PatternLite(mt.index)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "decode %s record %d: %v", mt.mount.Name, mt.index, err)
			return
		}
		out = append(out, PatternJSON{
			PatternSummaryJSON: summaryJSON(mt.mount.Name, mt.mount.Reader.Info(mt.index)),
			Graph:              graphJSON(p.Graph),
			TIDs:               p.TIDs.Slice(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"code": code, "matches": out})
}

func graphJSON(g *graph.Graph) GraphJSON {
	out := GraphJSON{Name: g.Name, Vertices: []VertexJSON{}, Edges: []EdgeJSON{}}
	for _, v := range g.Vertices() {
		out.Vertices = append(out.Vertices, VertexJSON{ID: int(v), Label: g.Vertex(v).Label})
	}
	for _, e := range g.Edges() {
		ed := g.Edge(e)
		out.Edges = append(out.Edges, EdgeJSON{ID: int(e), From: int(ed.From), To: int(ed.To), Label: ed.Label})
	}
	return out
}

func (s *Server) handleSupport(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	matches := s.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	out := make([]SupportJSON, 0, len(matches))
	maxSupport := 0
	for _, mt := range matches {
		p, err := mt.mount.Reader.PatternLite(mt.index)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "decode %s record %d: %v", mt.mount.Name, mt.index, err)
			return
		}
		if p.Support > maxSupport {
			maxSupport = p.Support
		}
		out = append(out, SupportJSON{
			Store: mt.mount.Name, Index: mt.index, Code: p.Code,
			Support: p.Support, TIDs: p.TIDs.Slice(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"code": code, "max_support": maxSupport, "matches": out,
	})
}

func (s *Server) handleOccurrences(w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	limit := 0 // per-transaction occurrence cap; 0 = all
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", q)
			return
		}
		limit = v
	}
	matches := s.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	// Occurrence decoding touches one transaction per TID — fan the
	// matches out on the engine pool (a structural store holds one
	// record per repetition).
	out, err := engine.MapCtx(r.Context(), s.opts.Parallelism, len(matches),
		func(ctx context.Context, i int) (RecordOccurrencesJSON, error) {
			return s.decodeOccurrences(ctx, matches[i], limit)
		})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"code": code, "matches": out})
}

func (s *Server) decodeOccurrences(ctx context.Context, mt match, limit int) (RecordOccurrencesJSON, error) {
	var zero RecordOccurrencesJSON
	rd := mt.mount.Reader
	p, err := rd.Pattern(mt.index)
	if err != nil {
		return zero, err
	}
	out := RecordOccurrencesJSON{
		Store:        mt.mount.Name,
		Index:        mt.index,
		Code:         p.Code,
		Support:      p.Support,
		Complete:     p.HasEmbeddings(),
		Transactions: []TxnOccurrencesJSON{},
	}
	for i, tid := range p.TIDs.All() {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		txn, err := rd.Transaction(tid)
		if err != nil {
			return zero, err
		}
		var list []OccurrenceJSON
		if p.Embs != nil {
			embs := p.Embs[i]
			if limit > 0 && len(embs) > limit {
				embs = embs[:limit]
			}
			list = make([]OccurrenceJSON, 0, len(embs))
			for _, emb := range embs {
				o, err := occurrenceJSON(txn, emb)
				if err != nil {
					return zero, fmt.Errorf("%s record %d tid %d: %w", mt.mount.Name, mt.index, tid, err)
				}
				list = append(list, o)
			}
		}
		out.Transactions = append(out.Transactions, TxnOccurrencesJSON{
			TID: tid, Transaction: txn.Name, Occurrences: list,
		})
	}
	return out, nil
}

// occurrenceJSON decodes one embedding against its transaction. IDs
// are validated rather than trusted: a store is external input, and
// a record whose embeddings reference vertices or edges missing from
// the transaction must surface as a corrupt-store error, not a
// panic.
func occurrenceJSON(txn *graph.Graph, emb iso.DenseEmbedding) (OccurrenceJSON, error) {
	out := OccurrenceJSON{Vertices: []OccVertexJSON{}, Edges: []OccEdgeJSON{}}
	for pv, tv := range emb.Verts {
		if !txn.HasVertex(tv) {
			return out, fmt.Errorf("corrupt store: embedding references missing vertex %d in %s", tv, txn.Name)
		}
		out.Vertices = append(out.Vertices, OccVertexJSON{
			PatternVertex: pv, Vertex: int(tv), Label: txn.Vertex(tv).Label,
		})
	}
	for pe, te := range emb.Edges {
		if !txn.HasEdge(te) {
			return out, fmt.Errorf("corrupt store: embedding references missing edge %d in %s", te, txn.Name)
		}
		ed := txn.Edge(te)
		out.Edges = append(out.Edges, OccEdgeJSON{
			PatternEdge: pe, Edge: int(te), From: int(ed.From), To: int(ed.To), Label: ed.Label,
		})
	}
	return out, nil
}

// locIndex is the lazily built, memoized inverted location index of
// one mount: for every vertex label touched by any stored embedding,
// the patterns occurring there in record order. Stores are immutable
// once mounted, so the index is built at most once (sync.Once) and
// never invalidated; build errors (corrupt stores) are memoized too
// — they are permanent properties of the file.
type locIndex struct {
	once    sync.Once
	err     error
	byLabel map[string][]LocationPatternJSON
	noEmb   int // records with no stored embedding lists at all
}

// locationIndex returns mount mi's inverted index, building it on
// first use. The build scans every record once, fanned out on the
// engine pool; it deliberately runs under context.Background — the
// index outlives the triggering request, so that request's
// cancellation must not poison the memo for everyone after it.
func (s *Server) locationIndex(mi int) (*locIndex, error) {
	idx := &s.loc[mi]
	idx.once.Do(func() {
		m := s.mounts[mi]
		n := m.Reader.NumPatterns()
		hits, err := engine.MapCtx(context.Background(), s.opts.Parallelism, n,
			func(ctx context.Context, i int) (map[string]*LocationPatternJSON, error) {
				return scanRecordLocations(m, i)
			})
		if err != nil {
			idx.err = err
			return
		}
		idx.byLabel = make(map[string][]LocationPatternJSON)
		for _, perLabel := range hits { // record order: engine.MapCtx preserves input order
			if perLabel == nil {
				idx.noEmb++
				continue
			}
			for label, h := range perLabel {
				idx.byLabel[label] = append(idx.byLabel[label], *h)
			}
		}
	})
	return idx, idx.err
}

// scanRecordLocations decodes one record and inverts its embeddings:
// for each vertex label they touch, the occurrence count (embeddings
// containing at least one vertex with the label) and the supporting
// TIDs. Returns nil for records with no stored lists (which cannot
// be checked without re-matching).
func scanRecordLocations(m Mount, i int) (map[string]*LocationPatternJSON, error) {
	if m.Reader.Info(i).Embeddings == 0 {
		return nil, nil
	}
	p, err := m.Reader.Pattern(i)
	if err != nil {
		return nil, err
	}
	info := m.Reader.Info(i)
	out := make(map[string]*LocationPatternJSON)
	var embLabels []string // distinct labels within one embedding
	for j, tid := range p.TIDs.All() {
		if len(p.Embs[j]) == 0 {
			continue
		}
		txn, err := m.Reader.Transaction(tid)
		if err != nil {
			return nil, err
		}
		for _, emb := range p.Embs[j] {
			embLabels = embLabels[:0]
			for _, tv := range emb.Verts {
				if !txn.HasVertex(tv) {
					return nil, fmt.Errorf("corrupt store: %s record %d references missing vertex %d in %s",
						m.Name, i, tv, txn.Name)
				}
				label := txn.Vertex(tv).Label
				seen := false
				for _, l := range embLabels {
					if l == label {
						seen = true
						break
					}
				}
				if !seen {
					embLabels = append(embLabels, label)
				}
			}
			for _, label := range embLabels {
				h := out[label]
				if h == nil {
					h = &LocationPatternJSON{
						Store: m.Name, Index: i, Code: info.Code,
						Edges: info.Edges, Support: info.Support,
					}
					out[label] = h
				}
				h.Occurrences++
				if len(h.TIDs) == 0 || h.TIDs[len(h.TIDs)-1] != tid {
					h.TIDs = append(h.TIDs, tid)
				}
			}
		}
	}
	return out, nil
}

// handleLocation answers "which patterns occur at this location?"
// from the memoized inverted index — a map hit (and, after the first
// query for a label, a cached pre-marshaled body) instead of the
// full-store scan this endpoint used to run per request.
func (s *Server) handleLocation(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	if body, ok := s.locBody.Load(label); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body.([]byte)) //nolint:errcheck // client gone is not a server error
		return
	}
	out := LocationJSON{Label: label, Patterns: []LocationPatternJSON{}}
	for mi := range s.mounts {
		idx, err := s.locationIndex(mi)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out.PatternsWithoutEmbeddings += idx.noEmb
		out.Patterns = append(out.Patterns, idx.byLabel[label]...)
	}
	sort.SliceStable(out.Patterns, func(i, j int) bool {
		return out.Patterns[i].Occurrences > out.Patterns[j].Occurrences
	})
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n') // match writeJSON's Encoder framing
	if len(out.Patterns) > 0 {
		// Only labels that exist get a cached body: empty responses
		// are cheap to recompute, and caching them would let probes
		// for made-up labels grow the cache without bound.
		s.locBody.Store(label, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client gone is not a server error
}
