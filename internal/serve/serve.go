// Package serve is the query daemon over persisted pattern stores —
// the "heavy traffic" leg of the ROADMAP: an HTTP/JSON API that
// answers pattern, support and occurrence queries from the embedding
// lists a mining run already computed and internal/store persisted,
// without ever re-running an isomorphism search.
//
// Endpoints (JSON):
//
//	GET  /healthz                            liveness
//	GET  /v1/stores                          mounted stores with meta,
//	                                         level directory and cache
//	                                         statistics
//	GET  /v1/levels                          per-store level listings
//	GET  /v1/levels/{edges}                  pattern summaries at one level
//	GET  /v1/patterns/{code}                 full pattern records for a code
//	POST /v1/patterns:batch                  full records for many codes in
//	                                         one round trip
//	GET  /v1/patterns/{code}/support         support counts + TID lists
//	GET  /v1/patterns/{code}/occurrences     embeddings decoded against the
//	                                         stored transactions (locations)
//	GET  /v1/locations/{label}/patterns      patterns occurring at a vertex
//	                                         label, counted from embeddings
//	POST /v1/admin/remount                   hot-swap a mounted store for a
//	                                         newer generation (see remount.go)
//
// Pattern codes are the miners' exact canonical codes (iso.Code):
// equal code means the same pattern, and an Algorithm 1 store keeps
// one record per repetition, so code-keyed endpoints return every
// matching record of that one pattern. Legacy version-1 stores may
// hold the old approximate "~" codes, which can additionally collide
// between non-isomorphic patterns; their matches are served through
// the same multi-record responses (the old disambiguation path —
// callers separate collisions by the returned graphs).
//
// Location queries are answered from a per-mount inverted index
// (vertex label -> patterns whose stored embeddings touch it).
// Format-v4 stores persist the index at write time, so mounting one
// loads it straight from the footer — the first location query is a
// map hit, not a store scan. Older stores (and v4 stores whose
// writer could not invert the embeddings) fall back to the lazy
// build: one full scan on the first /v1/locations query, fanned out
// per record on the shared internal/engine pool, memoized for the
// life of the mount.
//
// Mounted stores are immutable, but the set of mounts is not: a
// remount (POST /v1/admin/remount, or the tndserve -watch spool)
// atomically replaces one mount with a newer generation of the same
// lineage. Every request pins the mount snapshot it started on, the
// swap installs the new snapshot for subsequent requests, and the
// replaced reader is closed only after the pinned requests drain —
// no restart, no dropped request. Caches (the location index, the
// pattern-body LRU, marshaled location responses) hang off the
// snapshot machinery, so they never serve stale generations.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tnkd/internal/engine"
	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// Options configures a Server.
type Options struct {
	// Parallelism is the engine worker count for store scans (<= 0
	// selects GOMAXPROCS).
	Parallelism int
	// ShutdownGrace bounds how long ListenAndServe waits for in-
	// flight requests after its context is cancelled (0 = 5s).
	ShutdownGrace time.Duration
	// ReadHeaderTimeout bounds how long the listener waits for a
	// request's headers (0 = 5s, < 0 = no bound). A daemon facing
	// slow or hostile clients must not hold a connection open for
	// free.
	ReadHeaderTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// idle (0 = 120s, < 0 = no bound).
	IdleTimeout time.Duration
	// PatternCacheBytes bounds the per-mount LRU of marshaled
	// pattern-record bodies shared by the point and batch pattern
	// endpoints (0 = 8 MiB, < 0 disables the cache).
	PatternCacheBytes int
	// Metrics is the registry the server instruments into and the
	// GET /metrics endpoint renders (nil = obs.Default). Tests pass
	// their own registry for isolation.
	Metrics *obs.Registry
	// Logger receives the structured access log (one Info line per
	// request) and http.Server error noise (nil = discard).
	Logger *slog.Logger
}

// Mount is one named store served by a Server.
type Mount struct {
	// Name keys the store in responses (usually the file base name).
	Name string
	// Reader is the opened store.
	Reader *store.Reader
}

// mountEntry is one mounted store plus the caches whose lifetime it
// owns: the inverted location index and the marshaled-pattern LRU.
// Records are immutable for the life of the entry, so neither cache
// ever invalidates; a remount installs a fresh entry instead.
type mountEntry struct {
	m     Mount
	loc   locIndex
	cache *patternCache // nil when disabled
}

// state is one immutable snapshot of the mount table. Requests pin
// the snapshot they started on (wg); a remount installs a successor
// snapshot and closes replaced readers only after the pinned
// requests drain. locBody caches marshaled /v1/locations responses —
// those aggregate across mounts, so they hang off the snapshot, not
// an entry.
type state struct {
	entries []*mountEntry
	wg      sync.WaitGroup
	locBody sync.Map // label -> []byte
}

// Server answers queries over one or more mounted stores. It is safe
// for concurrent use, including concurrent remounts.
type Server struct {
	opts    Options
	metrics *obs.Registry
	logger  *slog.Logger

	// Per-route instrument sets, prebuilt in New so the middleware's
	// hot path is one map hit; unmatched catches 404/405 traffic.
	routes     map[string]*routeMetrics
	unmatched  *routeMetrics
	batchCodes *obs.Histogram

	mu  sync.RWMutex
	cur *state // nil after Close
}

// New builds a Server over the given mounts. Mount order is response
// order.
func New(mounts []Mount, opts Options) *Server {
	s := &Server{opts: opts, metrics: opts.Metrics, logger: opts.Logger}
	if s.metrics == nil {
		s.metrics = obs.Default
	}
	if s.logger == nil {
		s.logger = obs.Discard()
	}
	s.routes = make(map[string]*routeMetrics, len(routePatterns))
	for _, pat := range routePatterns {
		s.routes[pat] = newRouteMetrics(s.metrics, pat)
	}
	s.unmatched = newRouteMetrics(s.metrics, unmatchedRoute)
	s.batchCodes = s.metrics.Histogram("tnd_serve_batch_codes", obs.SizeBuckets)
	entries := make([]*mountEntry, len(mounts))
	for i, m := range mounts {
		entries[i] = s.newEntry(m)
	}
	s.cur = &state{entries: entries}
	return s
}

func (s *Server) newEntry(m Mount) *mountEntry {
	e := &mountEntry{m: m}
	capBytes := s.opts.PatternCacheBytes
	if capBytes == 0 {
		capBytes = defaultPatternCacheBytes
	}
	if capBytes > 0 {
		// Cache series are labeled by mount name, not generation, so
		// counters accumulate across remounts of the same mount.
		e.cache = newPatternCache(capBytes, cacheMetrics{
			hits:      s.metrics.Counter("tnd_serve_cache_hits_total", "mount", m.Name),
			misses:    s.metrics.Counter("tnd_serve_cache_misses_total", "mount", m.Name),
			evictions: s.metrics.Counter("tnd_serve_cache_evictions_total", "mount", m.Name),
			usedBytes: s.metrics.Gauge("tnd_serve_cache_used_bytes", "mount", m.Name),
			entries:   s.metrics.Gauge("tnd_serve_cache_entries", "mount", m.Name),
		})
	}
	return e
}

// acquire pins the current mount snapshot for one request. The Add
// happens under the read lock, so a remount's Lock-swap-Wait cannot
// miss it: every pinned request either drains before the old reader
// closes or runs entirely on the new snapshot.
func (s *Server) acquire() (*state, error) {
	s.mu.RLock()
	st := s.cur
	if st != nil {
		st.wg.Add(1)
	}
	s.mu.RUnlock()
	if st == nil {
		return nil, errors.New("serve: server closed")
	}
	return st, nil
}

// Close drains in-flight requests and closes every mounted reader.
// Subsequent requests answer 503.
func (s *Server) Close() error {
	s.mu.Lock()
	st := s.cur
	s.cur = nil
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	st.wg.Wait()
	var first error
	for _, e := range st.entries {
		if err := e.m.Reader.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Handler returns the routed HTTP handler, wrapped in the telemetry
// middleware (per-route metrics + access log). Registered patterns
// must stay in sync with routePatterns, which prebuilds the
// per-route instruments.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stores", s.pinned(s.handleStores))
	mux.HandleFunc("GET /v1/levels", s.pinned(s.handleLevels))
	mux.HandleFunc("GET /v1/levels/{edges}", s.pinned(s.handleLevel))
	mux.HandleFunc("GET /v1/patterns/{code}", s.pinned(s.handlePattern))
	mux.HandleFunc("POST /v1/patterns:batch", s.pinned(s.handleBatch))
	mux.HandleFunc("GET /v1/patterns/{code}/support", s.pinned(s.handleSupport))
	mux.HandleFunc("GET /v1/patterns/{code}/occurrences", s.pinned(s.handleOccurrences))
	mux.HandleFunc("GET /v1/locations/{label}/patterns", s.pinned(s.handleLocation))
	mux.HandleFunc("POST /v1/admin/remount", s.handleRemount)
	return s.instrument(mux)
}

// pinned adapts a snapshot-scoped handler: acquire the current
// state, release it when the response is written.
func (s *Server) pinned(h func(st *state, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := s.acquire()
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		defer st.wg.Done()
		h(st, w, r)
	}
}

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get
// ShutdownGrace to finish, and nil is returned for a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	// Request contexts deliberately do not derive from ctx: its
	// cancellation means "stop accepting and wind down", not "abort
	// in-flight work" — Shutdown's grace window governs those.
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: timeoutOr(s.opts.ReadHeaderTimeout, 5*time.Second),
		IdleTimeout:       timeoutOr(s.opts.IdleTimeout, 120*time.Second),
		// Accept/TLS/panic noise goes through the structured logger
		// instead of the stdlib's default stderr formatting.
		ErrorLog: slog.NewLogLogger(s.logger.Handler(), slog.LevelError),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	grace := s.opts.ShutdownGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func timeoutOr(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0 // http.Server's "no timeout"
	case v == 0:
		return def
	default:
		return v
	}
}

// --- JSON shapes ---

// VertexJSON is one pattern-graph vertex.
type VertexJSON struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
}

// EdgeJSON is one pattern-graph edge.
type EdgeJSON struct {
	ID    int    `json:"id"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// GraphJSON is a pattern graph in adjacency form.
type GraphJSON struct {
	Name     string       `json:"name,omitempty"`
	Vertices []VertexJSON `json:"vertices"`
	Edges    []EdgeJSON   `json:"edges"`
}

// PatternSummaryJSON is the record-index view of a pattern (no
// record decode needed).
type PatternSummaryJSON struct {
	Store      string `json:"store"`
	Index      int    `json:"index"`
	Code       string `json:"code"`
	Edges      int    `json:"edges"`
	Support    int    `json:"support"`
	Embeddings int    `json:"embeddings"`
	Complete   bool   `json:"complete"`
	Overflowed bool   `json:"overflowed"`
}

// PatternJSON is one fully decoded pattern record.
type PatternJSON struct {
	PatternSummaryJSON
	Graph GraphJSON `json:"graph"`
	TIDs  []int     `json:"tids"`
}

// StoreJSON describes one mounted store.
type StoreJSON struct {
	Name         string            `json:"name"`
	Path         string            `json:"path"`
	Version      int               `json:"version"`
	Generation   int               `json:"generation"`
	Meta         store.Meta        `json:"meta"`
	Transactions int               `json:"transactions"`
	Patterns     int               `json:"patterns"`
	Levels       []store.LevelInfo `json:"levels"`
	// LocationIndex says how /v1/locations is answered for this
	// mount: "persisted" (loaded from the v4 store section) or
	// "lazy" (built by scanning on first query).
	LocationIndex string `json:"location_index"`
	// Cache reports the pattern-body LRU; absent when disabled.
	Cache *CacheStatsJSON `json:"cache,omitempty"`
}

// LevelJSON is one per-store level-directory row.
type LevelJSON struct {
	Store    string `json:"store"`
	Edges    int    `json:"edges"`
	Patterns int    `json:"patterns"`
}

// SupportJSON answers a support query for one matching record.
type SupportJSON struct {
	Store   string `json:"store"`
	Index   int    `json:"index"`
	Code    string `json:"code"`
	Support int    `json:"support"`
	TIDs    []int  `json:"tids"`
}

// OccVertexJSON maps one pattern vertex into a transaction.
type OccVertexJSON struct {
	PatternVertex int    `json:"pattern_vertex"`
	Vertex        int    `json:"vertex"`
	Label         string `json:"label"`
}

// OccEdgeJSON maps one pattern edge into a transaction.
type OccEdgeJSON struct {
	PatternEdge int    `json:"pattern_edge"`
	Edge        int    `json:"edge"`
	From        int    `json:"from"`
	To          int    `json:"to"`
	Label       string `json:"label"`
}

// OccurrenceJSON is one decoded embedding.
type OccurrenceJSON struct {
	Vertices []OccVertexJSON `json:"vertices"`
	Edges    []OccEdgeJSON   `json:"edges"`
}

// TxnOccurrencesJSON groups a record's occurrences in one
// transaction.
type TxnOccurrencesJSON struct {
	TID         int              `json:"tid"`
	Transaction string           `json:"transaction,omitempty"`
	Occurrences []OccurrenceJSON `json:"occurrences"`
}

// RecordOccurrencesJSON is the occurrence listing of one matching
// record. Complete reports whether the stored lists are the full
// enumeration (overflowed records store warm-start seeds only, so
// their listing is a sample, not a proof of absence).
type RecordOccurrencesJSON struct {
	Store        string               `json:"store"`
	Index        int                  `json:"index"`
	Code         string               `json:"code"`
	Support      int                  `json:"support"`
	Complete     bool                 `json:"complete"`
	Transactions []TxnOccurrencesJSON `json:"transactions"`
}

// LocationPatternJSON is one pattern occurring at a queried location
// label.
type LocationPatternJSON struct {
	Store       string `json:"store"`
	Index       int    `json:"index"`
	Code        string `json:"code"`
	Edges       int    `json:"edges"`
	Support     int    `json:"support"`
	Occurrences int    `json:"occurrences"`
	TIDs        []int  `json:"tids"`
}

// LocationJSON answers a location query.
type LocationJSON struct {
	Label string `json:"label"`
	// Patterns occur at the label, ordered by descending occurrence
	// count then store order.
	Patterns []LocationPatternJSON `json:"patterns"`
	// PatternsWithoutEmbeddings counts records that could not be
	// checked because they store no embedding lists at all.
	PatternsWithoutEmbeddings int `json:"patterns_without_embeddings"`
}

// BatchResultJSON is one code's resolution in a batch response.
type BatchResultJSON struct {
	Code    string            `json:"code"`
	Matches []json.RawMessage `json:"matches"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not a server error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleStores(st *state, w http.ResponseWriter, r *http.Request) {
	out := make([]StoreJSON, 0, len(st.entries))
	for _, e := range st.entries {
		rd := e.m.Reader
		source := "lazy"
		if _, _, ok := rd.LocationIndex(); ok {
			source = "persisted"
		}
		sj := StoreJSON{
			Name:          e.m.Name,
			Path:          rd.Path(),
			Version:       rd.Version(),
			Generation:    rd.Meta().Generation,
			Meta:          rd.Meta(),
			Transactions:  rd.NumTransactions(),
			Patterns:      rd.NumPatterns(),
			Levels:        rd.Levels(),
			LocationIndex: source,
		}
		if e.cache != nil {
			cs := e.cache.stats()
			sj.Cache = &cs
		}
		out = append(out, sj)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLevels(st *state, w http.ResponseWriter, r *http.Request) {
	out := []LevelJSON{}
	for _, e := range st.entries {
		for _, lv := range e.m.Reader.Levels() {
			out = append(out, LevelJSON{Store: e.m.Name, Edges: lv.Edges, Patterns: lv.Patterns})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLevel lists the pattern summaries of one level across all
// mounts — index-only, no record decodes.
func (s *Server) handleLevel(st *state, w http.ResponseWriter, r *http.Request) {
	edges, err := strconv.Atoi(r.PathValue("edges"))
	if err != nil || edges < 1 {
		writeError(w, http.StatusBadRequest, "level must be a positive edge count, got %q", r.PathValue("edges"))
		return
	}
	out := []PatternSummaryJSON{}
	for _, e := range st.entries {
		start, end := e.m.Reader.LevelRange(edges)
		for i := start; i < end; i++ {
			out = append(out, summaryJSON(e.m.Name, e.m.Reader.Info(i)))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func summaryJSON(storeName string, info store.PatternInfo) PatternSummaryJSON {
	return PatternSummaryJSON{
		Store:      storeName,
		Index:      info.Index,
		Code:       info.Code,
		Edges:      info.Edges,
		Support:    info.Support,
		Embeddings: info.Embeddings,
		Complete:   info.HasEmbeddings,
		Overflowed: info.Overflowed,
	}
}

// match is one (mount, record) hit for a code.
type match struct {
	e     *mountEntry
	index int
}

func (st *state) findCode(code string) []match {
	var out []match
	for _, e := range st.entries {
		for _, i := range e.m.Reader.FindByCode(code) {
			out = append(out, match{e: e, index: i})
		}
	}
	return out
}

// patternBody returns the marshaled PatternJSON of one record,
// through the owning mount's LRU when enabled. Bodies are compact;
// the response encoder re-indents them uniformly.
func patternBody(mt match) (json.RawMessage, error) {
	if mt.e.cache != nil {
		if b, ok := mt.e.cache.get(mt.index); ok {
			return b, nil
		}
	}
	rd := mt.e.m.Reader
	p, err := rd.PatternLite(mt.index)
	if err != nil {
		return nil, fmt.Errorf("decode %s record %d: %w", mt.e.m.Name, mt.index, err)
	}
	body, err := json.Marshal(PatternJSON{
		PatternSummaryJSON: summaryJSON(mt.e.m.Name, rd.Info(mt.index)),
		Graph:              graphJSON(p.Graph),
		TIDs:               p.TIDs.Slice(),
	})
	if err != nil {
		return nil, err
	}
	if mt.e.cache != nil {
		mt.e.cache.put(mt.index, body)
	}
	return body, nil
}

func (s *Server) handlePattern(st *state, w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	matches := st.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	out := make([]json.RawMessage, 0, len(matches))
	for _, mt := range matches {
		body, err := patternBody(mt)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out = append(out, body)
	}
	writeJSON(w, http.StatusOK, map[string]any{"code": code, "matches": out})
}

// maxBatchCodes bounds one batch request: enough for a full level
// fetch, small enough that a request can't pin a state forever.
const maxBatchCodes = 1024

// handleBatch resolves many codes in one request with one engine
// fan-out over every matching record. Unknown codes answer with an
// empty match list (the batch is a lookup, not an assertion); the
// per-record bodies come from the same per-mount LRU as the point
// endpoint, so a batch warms the cache for point queries and vice
// versa.
func (s *Server) handleBatch(st *state, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Codes []string `json:"codes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch request: %v", err)
		return
	}
	if len(req.Codes) == 0 {
		writeError(w, http.StatusBadRequest, "codes must be a non-empty array")
		return
	}
	if len(req.Codes) > maxBatchCodes {
		writeError(w, http.StatusBadRequest, "batch of %d codes exceeds the %d-code limit", len(req.Codes), maxBatchCodes)
		return
	}
	s.batchCodes.Observe(float64(len(req.Codes)))
	type job struct {
		code int // index into req.Codes
		mt   match
	}
	var jobs []job
	for ci, code := range req.Codes {
		for _, mt := range st.findCode(code) {
			jobs = append(jobs, job{code: ci, mt: mt})
		}
	}
	bodies, err := engine.MapCtx(r.Context(), s.opts.Parallelism, len(jobs),
		func(ctx context.Context, i int) (json.RawMessage, error) {
			return patternBody(jobs[i].mt)
		})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	results := make([]BatchResultJSON, len(req.Codes))
	for i := range results {
		results[i] = BatchResultJSON{Code: req.Codes[i], Matches: []json.RawMessage{}}
	}
	for i, j := range jobs {
		results[j.code].Matches = append(results[j.code].Matches, bodies[i])
	}
	found := 0
	for i := range results {
		if len(results[i].Matches) > 0 {
			found++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"codes": len(req.Codes), "found": found, "results": results,
	})
}

func graphJSON(g *graph.Graph) GraphJSON {
	out := GraphJSON{Name: g.Name, Vertices: []VertexJSON{}, Edges: []EdgeJSON{}}
	for _, v := range g.Vertices() {
		out.Vertices = append(out.Vertices, VertexJSON{ID: int(v), Label: g.Vertex(v).Label})
	}
	for _, e := range g.Edges() {
		ed := g.Edge(e)
		out.Edges = append(out.Edges, EdgeJSON{ID: int(e), From: int(ed.From), To: int(ed.To), Label: ed.Label})
	}
	return out
}

func (s *Server) handleSupport(st *state, w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	matches := st.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	out := make([]SupportJSON, 0, len(matches))
	maxSupport := 0
	for _, mt := range matches {
		p, err := mt.e.m.Reader.PatternLite(mt.index)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "decode %s record %d: %v", mt.e.m.Name, mt.index, err)
			return
		}
		if p.Support > maxSupport {
			maxSupport = p.Support
		}
		out = append(out, SupportJSON{
			Store: mt.e.m.Name, Index: mt.index, Code: p.Code,
			Support: p.Support, TIDs: p.TIDs.Slice(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"code": code, "max_support": maxSupport, "matches": out,
	})
}

func (s *Server) handleOccurrences(st *state, w http.ResponseWriter, r *http.Request) {
	code := r.PathValue("code")
	limit := 0 // per-transaction occurrence cap; 0 = all
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", q)
			return
		}
		limit = v
	}
	matches := st.findCode(code)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no pattern with code %q", code)
		return
	}
	// Occurrence decoding touches one transaction per TID — fan the
	// matches out on the engine pool (a structural store holds one
	// record per repetition).
	out, err := engine.MapCtx(r.Context(), s.opts.Parallelism, len(matches),
		func(ctx context.Context, i int) (RecordOccurrencesJSON, error) {
			return decodeOccurrences(ctx, matches[i], limit)
		})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"code": code, "matches": out})
}

func decodeOccurrences(ctx context.Context, mt match, limit int) (RecordOccurrencesJSON, error) {
	var zero RecordOccurrencesJSON
	rd := mt.e.m.Reader
	p, err := rd.Pattern(mt.index)
	if err != nil {
		return zero, err
	}
	out := RecordOccurrencesJSON{
		Store:        mt.e.m.Name,
		Index:        mt.index,
		Code:         p.Code,
		Support:      p.Support,
		Complete:     p.HasEmbeddings(),
		Transactions: []TxnOccurrencesJSON{},
	}
	for i, tid := range p.TIDs.All() {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		txn, err := rd.Transaction(tid)
		if err != nil {
			return zero, err
		}
		var list []OccurrenceJSON
		if p.Embs != nil {
			embs := p.Embs[i]
			if limit > 0 && len(embs) > limit {
				embs = embs[:limit]
			}
			list = make([]OccurrenceJSON, 0, len(embs))
			for _, emb := range embs {
				o, err := occurrenceJSON(txn, emb)
				if err != nil {
					return zero, fmt.Errorf("%s record %d tid %d: %w", mt.e.m.Name, mt.index, tid, err)
				}
				list = append(list, o)
			}
		}
		out.Transactions = append(out.Transactions, TxnOccurrencesJSON{
			TID: tid, Transaction: txn.Name, Occurrences: list,
		})
	}
	return out, nil
}

// occurrenceJSON decodes one embedding against its transaction. IDs
// are validated rather than trusted: a store is external input, and
// a record whose embeddings reference vertices or edges missing from
// the transaction must surface as a corrupt-store error, not a
// panic.
func occurrenceJSON(txn *graph.Graph, emb iso.DenseEmbedding) (OccurrenceJSON, error) {
	out := OccurrenceJSON{Vertices: []OccVertexJSON{}, Edges: []OccEdgeJSON{}}
	for pv, tv := range emb.Verts {
		if !txn.HasVertex(tv) {
			return out, fmt.Errorf("corrupt store: embedding references missing vertex %d in %s", tv, txn.Name)
		}
		out.Vertices = append(out.Vertices, OccVertexJSON{
			PatternVertex: pv, Vertex: int(tv), Label: txn.Vertex(tv).Label,
		})
	}
	for pe, te := range emb.Edges {
		if !txn.HasEdge(te) {
			return out, fmt.Errorf("corrupt store: embedding references missing edge %d in %s", te, txn.Name)
		}
		ed := txn.Edge(te)
		out.Edges = append(out.Edges, OccEdgeJSON{
			PatternEdge: pe, Edge: int(te), From: int(ed.From), To: int(ed.To), Label: ed.Label,
		})
	}
	return out, nil
}

// locIndex is the memoized inverted location index of one mount: for
// every vertex label touched by any stored embedding, the patterns
// occurring there in record order. A mount's records are immutable,
// so the index is built at most once (sync.Once) and never
// invalidated; build errors (corrupt stores) are memoized too — they
// are permanent properties of the file.
type locIndex struct {
	once    sync.Once
	err     error
	source  string // "persisted" (v4 section) or "lazy" (full scan)
	byLabel map[string][]LocationPatternJSON
	noEmb   int // records with no stored embedding lists at all
}

// locationIndex returns a mount's inverted index, loading it on
// first use. Format-v4 stores carry the index persisted at write
// time, so loading is a footer walk with no record decodes; older
// stores scan every record once, fanned out on the engine pool. The
// lazy build deliberately runs under context.Background — the index
// outlives the triggering request, so that request's cancellation
// must not poison the memo for everyone after it.
func (s *Server) locationIndex(e *mountEntry) (*locIndex, error) {
	idx := &e.loc
	idx.once.Do(func() {
		rd := e.m.Reader
		if byLabel, noEmb, ok := rd.LocationIndex(); ok {
			idx.source = "persisted"
			idx.noEmb = noEmb
			idx.byLabel = make(map[string][]LocationPatternJSON, len(byLabel))
			for label, hits := range byLabel {
				lps := make([]LocationPatternJSON, 0, len(hits))
				for _, h := range hits {
					info := rd.Info(h.Record)
					lps = append(lps, LocationPatternJSON{
						Store: e.m.Name, Index: h.Record, Code: info.Code,
						Edges: info.Edges, Support: info.Support,
						Occurrences: h.Occurrences, TIDs: h.TIDs.Slice(),
					})
				}
				idx.byLabel[label] = lps
			}
			return
		}
		idx.source = "lazy"
		n := rd.NumPatterns()
		hits, err := engine.MapCtx(context.Background(), s.opts.Parallelism, n,
			func(ctx context.Context, i int) (map[string]*LocationPatternJSON, error) {
				return scanRecordLocations(e.m, i)
			})
		if err != nil {
			idx.err = err
			return
		}
		idx.byLabel = make(map[string][]LocationPatternJSON)
		for _, perLabel := range hits { // record order: engine.MapCtx preserves input order
			if perLabel == nil {
				idx.noEmb++
				continue
			}
			for label, h := range perLabel {
				idx.byLabel[label] = append(idx.byLabel[label], *h)
			}
		}
	})
	return idx, idx.err
}

// scanRecordLocations decodes one record and inverts its embeddings:
// for each vertex label they touch, the occurrence count (embeddings
// containing at least one vertex with the label) and the supporting
// TIDs. Returns nil for records with no stored lists (which cannot
// be checked without re-matching). This is the lazy twin of the
// write-time inversion persisted in v4 stores; the store package's
// property tests hold the two equal.
func scanRecordLocations(m Mount, i int) (map[string]*LocationPatternJSON, error) {
	if m.Reader.Info(i).Embeddings == 0 {
		return nil, nil
	}
	p, err := m.Reader.Pattern(i)
	if err != nil {
		return nil, err
	}
	info := m.Reader.Info(i)
	out := make(map[string]*LocationPatternJSON)
	var embLabels []string // distinct labels within one embedding
	for j, tid := range p.TIDs.All() {
		if len(p.Embs[j]) == 0 {
			continue
		}
		txn, err := m.Reader.Transaction(tid)
		if err != nil {
			return nil, err
		}
		for _, emb := range p.Embs[j] {
			embLabels = embLabels[:0]
			for _, tv := range emb.Verts {
				if !txn.HasVertex(tv) {
					return nil, fmt.Errorf("corrupt store: %s record %d references missing vertex %d in %s",
						m.Name, i, tv, txn.Name)
				}
				label := txn.Vertex(tv).Label
				seen := false
				for _, l := range embLabels {
					if l == label {
						seen = true
						break
					}
				}
				if !seen {
					embLabels = append(embLabels, label)
				}
			}
			for _, label := range embLabels {
				h := out[label]
				if h == nil {
					h = &LocationPatternJSON{
						Store: m.Name, Index: i, Code: info.Code,
						Edges: info.Edges, Support: info.Support,
					}
					out[label] = h
				}
				h.Occurrences++
				if len(h.TIDs) == 0 || h.TIDs[len(h.TIDs)-1] != tid {
					h.TIDs = append(h.TIDs, tid)
				}
			}
		}
	}
	return out, nil
}

// handleLocation answers "which patterns occur at this location?"
// from the per-mount inverted index — a map hit (and, after the
// first query for a label, a cached pre-marshaled body) instead of
// the full-store scan this endpoint used to run per request.
func (s *Server) handleLocation(st *state, w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	if body, ok := st.locBody.Load(label); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body.([]byte)) //nolint:errcheck // client gone is not a server error
		return
	}
	out := LocationJSON{Label: label, Patterns: []LocationPatternJSON{}}
	for _, e := range st.entries {
		idx, err := s.locationIndex(e)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out.PatternsWithoutEmbeddings += idx.noEmb
		out.Patterns = append(out.Patterns, idx.byLabel[label]...)
	}
	sort.SliceStable(out.Patterns, func(i, j int) bool {
		return out.Patterns[i].Occurrences > out.Patterns[j].Occurrences
	})
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n') // match writeJSON's Encoder framing
	if len(out.Patterns) > 0 {
		// Only labels that exist get a cached body: empty responses
		// are cheap to recompute, and caching them would let probes
		// for made-up labels grow the cache without bound.
		st.locBody.Store(label, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client gone is not a server error
}
