package serve

import (
	"container/list"
	"encoding/json"
	"sync"
)

// defaultPatternCacheBytes sizes the per-mount pattern-body LRU when
// Options.PatternCacheBytes is zero.
const defaultPatternCacheBytes = 8 << 20

// patternCache is a byte-bounded LRU of marshaled pattern-record
// bodies, keyed by record index within one mount. Records are
// immutable for the life of a mount, so entries never invalidate;
// a remount installs a fresh mountEntry, and the old cache dies with
// the old snapshot. The bound is on body bytes (the thing that
// actually grows), not entry count.
type patternCache struct {
	mu       sync.Mutex
	capBytes int
	used     int
	ll       *list.List // front = most recently used
	items    map[int]*list.Element
	hits     uint64
	misses   uint64
}

type cacheItem struct {
	key  int
	body json.RawMessage
}

func newPatternCache(capBytes int) *patternCache {
	return &patternCache{capBytes: capBytes, ll: list.New(), items: make(map[int]*list.Element)}
}

func (c *patternCache) get(key int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).body, true
}

func (c *patternCache) put(key int, body json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(body) > c.capBytes {
		return // a single oversized body would evict everything for nothing
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.used += len(body) - len(it.body)
		it.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
		c.used += len(body)
	}
	for c.used > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.used -= len(it.body)
	}
}

// CacheStatsJSON reports one mount's pattern-body cache in
// /v1/stores.
type CacheStatsJSON struct {
	CapacityBytes int    `json:"capacity_bytes"`
	UsedBytes     int    `json:"used_bytes"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
}

func (c *patternCache) stats() CacheStatsJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStatsJSON{
		CapacityBytes: c.capBytes,
		UsedBytes:     c.used,
		Entries:       len(c.items),
		Hits:          c.hits,
		Misses:        c.misses,
	}
}
