package serve

import (
	"container/list"
	"encoding/json"
	"sync"

	"tnkd/internal/obs"
)

// defaultPatternCacheBytes sizes the per-mount pattern-body LRU when
// Options.PatternCacheBytes is zero.
const defaultPatternCacheBytes = 8 << 20

// cacheMetrics is the registry-backed instrument set of one mount's
// pattern cache. Fields may be nil (obs instruments are nil-safe), so
// a cache built without a registry — direct construction in tests —
// still accounts exactly in its own fields.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	usedBytes *obs.Gauge
	entries   *obs.Gauge
}

// patternCache is a byte-bounded LRU of marshaled pattern-record
// bodies, keyed by record index within one mount. Records are
// immutable for the life of a mount, so entries never invalidate;
// a remount installs a fresh mountEntry, and the old cache dies with
// the old snapshot. The bound is on body bytes (the thing that
// actually grows), not entry count.
type patternCache struct {
	mu         sync.Mutex
	capBytes   int
	used       int
	ll         *list.List // front = most recently used
	items      map[int]*list.Element
	hits       uint64
	misses     uint64
	insertions uint64
	evictions  uint64
	met        cacheMetrics
}

type cacheItem struct {
	key  int
	body json.RawMessage
}

func newPatternCache(capBytes int, met cacheMetrics) *patternCache {
	return &patternCache{capBytes: capBytes, ll: list.New(), items: make(map[int]*list.Element), met: met}
}

func (c *patternCache) get(key int) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.met.misses.Inc()
		return nil, false
	}
	c.hits++
	c.met.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).body, true
}

func (c *patternCache) put(key int, body json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(body) > c.capBytes {
		return // a single oversized body would evict everything for nothing
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.used += len(body) - len(it.body)
		it.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
		c.used += len(body)
		c.insertions++
	}
	for c.used > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.used -= len(it.body)
		c.evictions++
		c.met.evictions.Inc()
	}
	c.met.usedBytes.Set(int64(c.used))
	c.met.entries.Set(int64(len(c.items)))
}

// CacheStatsJSON reports one mount's pattern-body cache in
// /v1/stores.
type CacheStatsJSON struct {
	CapacityBytes int    `json:"capacity_bytes"`
	UsedBytes     int    `json:"used_bytes"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
}

func (c *patternCache) stats() CacheStatsJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStatsJSON{
		CapacityBytes: c.capBytes,
		UsedBytes:     c.used,
		Entries:       len(c.items),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
	}
}
