package loadtest_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
	"tnkd/internal/serve"
	"tnkd/internal/serve/loadtest"
	"tnkd/internal/store"
)

// writeGenStore synthesizes one generation of a lineage with several
// distinct one-edge patterns, enough of a code population for the
// mixed workload (batches need more than one code to beat point
// queries).
func writeGenStore(t *testing.T, path string, gen int, parent string) {
	t.Helper()
	txn := graph.New("t0")
	tv := txn.AddVertex("A")
	te := txn.AddEdge(tv, tv, "e")
	var pats []pattern.Pattern
	for i := 0; i < 8; i++ {
		g := graph.New(fmt.Sprintf("pat%d", i))
		pv := g.AddVertex("A")
		g.AddEdge(pv, pv, "e")
		pats = append(pats, pattern.Pattern{
			Graph: g, Code: fmt.Sprintf("pat%d", i), Support: 1, TIDs: pattern.NewTIDSet(0),
			Embs: [][]iso.DenseEmbedding{{{Verts: []graph.VertexID{tv}, Edges: []graph.EdgeID{te}}}},
		})
	}
	w, err := store.Create(path, store.Meta{Name: "load", Kind: "fsg", Generation: gen, Parent: parent})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, pats); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadUnderRemount runs the CI load scenario in-process: the
// generator hammers a server that hot-swaps to a new generation
// mid-run. The gates are the job's gates: zero failed requests, and
// batch resolution beating point queries on codes per second.
func TestLoadUnderRemount(t *testing.T) {
	dir := t.TempDir()
	gen0 := filepath.Join(dir, "gen0.tnd")
	gen1 := filepath.Join(dir, "gen1.tnd")
	writeGenStore(t, gen0, 0, "")
	writeGenStore(t, gen1, 1, gen0)

	r, err := store.Open(gen0)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New([]serve.Mount{{Name: "load", Reader: r}}, serve.Options{Parallelism: 2})
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx := context.Background()
	codes, labels, err := loadtest.Discover(ctx, ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 8 {
		t.Fatalf("discovered %d codes, want 8", len(codes))
	}
	if len(labels) != 1 || labels[0] != "A" {
		t.Fatalf("discovered labels %v, want [A]", labels)
	}

	const duration = 600 * time.Millisecond
	swapped := make(chan error, 1)
	go func() {
		time.Sleep(duration / 3)
		_, err := srv.RemountAuto(gen1)
		swapped <- err
	}()
	res, err := loadtest.Run(ctx, loadtest.Options{
		BaseURL:  ts.URL,
		Workers:  4,
		Duration: duration,
		// Batch size 4 over 8 codes: each batch request resolves 4x
		// a point request's work.
		BatchSize: 4,
		Codes:     codes,
		Labels:    labels,
		Client:    ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-swapped; err != nil {
		t.Fatalf("remount under load: %v", err)
	}

	if res.Failures != 0 {
		t.Fatalf("%d of %d requests failed across the remount", res.Failures, res.Requests)
	}
	// The server's own /metrics counters must agree exactly with the
	// client tallies: every request the client sent arrived, none was
	// double-counted, and the server returned no 5xx.
	if res.Server == nil {
		t.Fatal("server cross-check missing — /metrics not scraped")
	}
	if !res.Server.Match {
		t.Fatalf("client/server cross-check failed: %s (server %+v, client %d requests)",
			res.Server.Detail, res.Server, res.Requests)
	}
	if res.Server.RequestsDelta != int64(res.Requests) {
		t.Fatalf("server requests delta %d != client %d", res.Server.RequestsDelta, res.Requests)
	}
	point, batch := res.Class("point"), res.Class("batch")
	if point.Requests == 0 || batch.Requests == 0 {
		t.Fatalf("workload did not exercise both point (%d) and batch (%d)", point.Requests, batch.Requests)
	}
	if batch.CodesPerSec <= point.CodesPerSec {
		t.Fatalf("batch resolved %.0f codes/s, point %.0f codes/s — batching buys nothing",
			batch.CodesPerSec, point.CodesPerSec)
	}
	if res.Class("stores").Requests == 0 || res.Class("support").Requests == 0 {
		t.Fatal("mixed workload skipped a class")
	}
	if res.Class("locations").Requests == 0 {
		t.Fatal("locations class skipped despite discovered labels")
	}

	// The swap really happened and really served: generation 1 is
	// mounted, and a fresh run still answers every code.
	var stores []serve.StoreJSON
	if err := getJSON(t, ts, "/v1/stores", &stores); err != nil {
		t.Fatal(err)
	}
	if len(stores) != 1 || stores[0].Generation != 1 {
		t.Fatalf("post-load mount table: %+v", stores)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) error {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
