// Package loadtest is the reusable core of cmd/tndload: a mixed-
// workload load generator for a running tndserve daemon. It drives
// the point-pattern, batch, support, location and store endpoints
// from concurrent workers for a fixed duration and reports per-class
// latency percentiles and throughput — the numbers the CI load job
// gates on (zero failures under remount, batch beating point queries
// on codes resolved per second).
//
// It lives under internal/serve so the in-process tests can hammer
// an httptest server with the exact client the CI job uses.
package loadtest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// Workers is the concurrent client count (0 = 4).
	Workers int
	// Duration bounds the run (0 = 5s).
	Duration time.Duration
	// BatchSize is the codes-per-request of batch queries (0 = 32,
	// capped at len(Codes)).
	BatchSize int
	// Codes are the pattern codes to query; required (Discover fills
	// it from a running server).
	Codes []string
	// Labels are location labels to query; empty skips the
	// locations class.
	Labels []string
	// Client overrides the HTTP client (nil = 30s-timeout default).
	Client *http.Client
}

// ClassStats aggregates one request class.
type ClassStats struct {
	Class    string `json:"class"`
	Requests int    `json:"requests"`
	// Failures counts transport errors and non-200 statuses. A hot
	// remount under fire must keep this at zero.
	Failures int `json:"failures"`
	// Codes counts pattern codes resolved (BatchSize per batch
	// request, 1 per point/support request, 0 elsewhere).
	Codes       int     `json:"codes"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	MaxMillis   float64 `json:"max_ms"`
	RPS         float64 `json:"rps"`
	CodesPerSec float64 `json:"codes_per_sec"`
}

// Result is one completed run.
type Result struct {
	BaseURL     string       `json:"base_url"`
	Workers     int          `json:"workers"`
	DurationSec float64      `json:"duration_sec"`
	Requests    int          `json:"requests"`
	Failures    int          `json:"failures"`
	RPS         float64      `json:"rps"`
	Classes     []ClassStats `json:"classes"`
	// Server cross-checks the server's own /metrics counters against
	// the client-side tallies above. Nil when the server exposes no
	// /metrics endpoint.
	Server *ServerCheck `json:"server,omitempty"`
}

// ServerCheck is the server's view of the run, scraped from /metrics
// before the first and after the last request. Workers finish their
// in-flight request before exiting (the deadline gates issuing, not
// completing), and the server counts requests on middleware entry, so
// with an otherwise idle server both sides must agree exactly.
type ServerCheck struct {
	// RequestsDelta is the growth of tnd_http_requests_total summed
	// over the five workload routes. Must equal Requests.
	RequestsDelta int64 `json:"requests_delta"`
	// FailedDelta is the growth of tnd_http_requests_failed_total
	// (5xx responses) over the same routes. Must be zero.
	FailedDelta int64 `json:"failed_delta"`
	// PerClass maps class name to that route's request growth.
	PerClass map[string]int64 `json:"per_class"`
	// Match reports whether every cross-check held; Detail names the
	// first divergence when it did not.
	Match  bool   `json:"match"`
	Detail string `json:"detail,omitempty"`
}

// Class returns the named class stats (zero value if the class did
// not run).
func (r Result) Class(name string) ClassStats {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassStats{}
}

// sample is one completed request.
type sample struct {
	class  int
	millis float64
	codes  int
	failed bool
}

// The workload mix: point lookups dominate (they are the cache-path
// workhorse), batches and support queries ride along, locations and
// store listings keep the index and admin paths warm.
const (
	classPoint = iota
	classBatch
	classSupport
	classLocations
	classStores
	numClasses
)

var classNames = [numClasses]string{"point", "batch", "support", "locations", "stores"}

// classRoutes are the serve-side route patterns each class lands on —
// the label values of the server's per-route counters. They must stay
// in lockstep with the ServeMux patterns in internal/serve.
var classRoutes = [numClasses]string{
	classPoint:     "GET /v1/patterns/{code}",
	classBatch:     "POST /v1/patterns:batch",
	classSupport:   "GET /v1/patterns/{code}/support",
	classLocations: "GET /v1/locations/{label}/patterns",
	classStores:    "GET /v1/stores",
}

var schedule = [...]int{
	classPoint, classBatch, classPoint, classSupport, classPoint,
	classBatch, classPoint, classLocations, classSupport, classStores,
}

// Run drives the server at opts.BaseURL until opts.Duration elapses
// (or ctx is cancelled, whichever is first) and aggregates the
// samples. Failed requests count; they never abort the run — the
// whole point is measuring behaviour under stress.
func Run(ctx context.Context, opts Options) (Result, error) {
	if opts.BaseURL == "" {
		return Result{}, errors.New("loadtest: BaseURL is required")
	}
	if len(opts.Codes) == 0 {
		return Result{}, errors.New("loadtest: at least one code is required (try Discover)")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	duration := opts.Duration
	if duration <= 0 {
		duration = 5 * time.Second
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 32
	}
	if batch > len(opts.Codes) {
		batch = len(opts.Codes)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	// Scrape the server's counters before the first request. A nil
	// map (no /metrics route) skips the cross-check, not the run.
	before, scrapeErr := scrapeMetrics(ctx, client, opts.BaseURL)

	// The deadline gates *issuing* requests; a request already in
	// flight when it passes still completes and is counted. Cutting
	// requests off mid-flight (a deadline context) would leave the
	// server having counted an arrival the client discarded, and the
	// cross-check below could never be exact.
	start := time.Now()
	deadline := start.Add(duration)
	perWorker := make([][]sample, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + wi)))
			var samples []sample
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				class := schedule[i%len(schedule)]
				if class == classLocations && len(opts.Labels) == 0 {
					class = classPoint
				}
				s := oneRequest(ctx, client, opts, rng, class, batch)
				if ctx.Err() != nil {
					break // external cancel mid-request; server may disagree
				}
				samples = append(samples, s)
			}
			perWorker[wi] = samples
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := Result{BaseURL: opts.BaseURL, Workers: workers, DurationSec: elapsed}
	byClass := make([][]float64, numClasses)
	agg := make([]ClassStats, numClasses)
	for _, samples := range perWorker {
		for _, s := range samples {
			res.Requests++
			agg[s.class].Requests++
			if s.failed {
				res.Failures++
				agg[s.class].Failures++
				continue
			}
			agg[s.class].Codes += s.codes
			byClass[s.class] = append(byClass[s.class], s.millis)
		}
	}
	res.RPS = float64(res.Requests) / elapsed
	for class, lat := range byClass {
		c := agg[class]
		if c.Requests == 0 {
			continue
		}
		c.Class = classNames[class]
		sort.Float64s(lat)
		if len(lat) > 0 {
			c.P50Millis = percentile(lat, 0.50)
			c.P99Millis = percentile(lat, 0.99)
			c.MaxMillis = lat[len(lat)-1]
		}
		c.RPS = float64(c.Requests) / elapsed
		c.CodesPerSec = float64(c.Codes) / elapsed
		res.Classes = append(res.Classes, c)
	}
	if scrapeErr == nil && before != nil {
		after, err := scrapeMetrics(ctx, client, opts.BaseURL)
		if err == nil && after != nil {
			res.Server = crossCheck(before, after, agg, &res)
		}
	}
	return res, nil
}

// crossCheck diffs two /metrics scrapes over the workload routes and
// compares against the client tallies.
func crossCheck(before, after map[string]float64, agg []ClassStats, res *Result) *ServerCheck {
	sc := &ServerCheck{PerClass: make(map[string]int64, numClasses)}
	sc.Match = true
	fail := func(format string, args ...any) {
		if sc.Match {
			sc.Match = false
			sc.Detail = fmt.Sprintf(format, args...)
		}
	}
	for class, route := range classRoutes {
		key := fmt.Sprintf("tnd_http_requests_total{route=%q}", route)
		d := int64(after[key]) - int64(before[key])
		sc.PerClass[classNames[class]] = d
		sc.RequestsDelta += d
		if d != int64(agg[class].Requests) {
			fail("class %s: server saw %d requests, client sent %d",
				classNames[class], d, agg[class].Requests)
		}
		fkey := fmt.Sprintf("tnd_http_requests_failed_total{route=%q}", route)
		sc.FailedDelta += int64(after[fkey]) - int64(before[fkey])
	}
	if sc.FailedDelta != 0 {
		fail("server counted %d failed (5xx) responses", sc.FailedDelta)
	}
	if sc.RequestsDelta != int64(res.Requests) {
		fail("server saw %d requests total, client sent %d", sc.RequestsDelta, res.Requests)
	}
	return sc
}

// scrapeMetrics fetches and parses the server's Prometheus text
// exposition into name{labels} -> value. A 404 returns (nil, nil):
// the server simply has no metrics endpoint.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadtest: GET /metrics: %s", resp.Status)
	}
	vals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		vals[line[:i]] = v
	}
	return vals, sc.Err()
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func oneRequest(ctx context.Context, client *http.Client, opts Options, rng *rand.Rand, class, batch int) sample {
	var (
		method = http.MethodGet
		path   string
		body   io.Reader
		codes  int
	)
	switch class {
	case classPoint:
		path = "/v1/patterns/" + url.PathEscape(opts.Codes[rng.Intn(len(opts.Codes))])
		codes = 1
	case classBatch:
		picked := make([]string, batch)
		off := rng.Intn(len(opts.Codes))
		for i := range picked {
			picked[i] = opts.Codes[(off+i)%len(opts.Codes)]
		}
		payload, _ := json.Marshal(map[string]any{"codes": picked})
		method, path, body = http.MethodPost, "/v1/patterns:batch", bytes.NewReader(payload)
		codes = batch
	case classSupport:
		path = "/v1/patterns/" + url.PathEscape(opts.Codes[rng.Intn(len(opts.Codes))]) + "/support"
		codes = 1
	case classLocations:
		path = "/v1/locations/" + url.PathEscape(opts.Labels[rng.Intn(len(opts.Labels))]) + "/patterns"
	case classStores:
		path = "/v1/stores"
	}
	req, err := http.NewRequestWithContext(ctx, method, opts.BaseURL+path, body)
	if err != nil {
		return sample{class: class, failed: true}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{class: class, failed: true}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return sample{class: class, failed: true}
	}
	return sample{class: class, millis: float64(time.Since(t0).Microseconds()) / 1000, codes: codes}
}

// Discover asks a running server for a workload: every pattern code
// from its level listings, and the vertex labels touched by the
// first code's occurrences (good enough to exercise the location
// path).
func Discover(ctx context.Context, client *http.Client, baseURL string) (codes, labels []string, err error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	var levels []struct {
		Edges int `json:"edges"`
	}
	if err := getJSON(ctx, client, baseURL+"/v1/levels", &levels); err != nil {
		return nil, nil, err
	}
	seenLevel := map[int]bool{}
	seenCode := map[string]bool{}
	for _, lv := range levels {
		if seenLevel[lv.Edges] {
			continue
		}
		seenLevel[lv.Edges] = true
		var summaries []struct {
			Code string `json:"code"`
		}
		if err := getJSON(ctx, client, fmt.Sprintf("%s/v1/levels/%d", baseURL, lv.Edges), &summaries); err != nil {
			return nil, nil, err
		}
		for _, s := range summaries {
			if !seenCode[s.Code] {
				seenCode[s.Code] = true
				codes = append(codes, s.Code)
			}
		}
	}
	if len(codes) == 0 {
		return nil, nil, errors.New("loadtest: server lists no patterns")
	}
	var occ struct {
		Matches []struct {
			Transactions []struct {
				Occurrences []struct {
					Vertices []struct {
						Label string `json:"label"`
					} `json:"vertices"`
				} `json:"occurrences"`
			} `json:"transactions"`
		} `json:"matches"`
	}
	occURL := baseURL + "/v1/patterns/" + url.PathEscape(codes[0]) + "/occurrences?limit=1"
	if err := getJSON(ctx, client, occURL, &occ); err != nil {
		return nil, nil, err
	}
	seenLabel := map[string]bool{}
	for _, m := range occ.Matches {
		for _, txn := range m.Transactions {
			for _, o := range txn.Occurrences {
				for _, v := range o.Vertices {
					if !seenLabel[v.Label] {
						seenLabel[v.Label] = true
						labels = append(labels, v.Label)
					}
				}
			}
		}
	}
	return codes, labels, nil
}

func getJSON(ctx context.Context, client *http.Client, u string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadtest: GET %s: %s: %s", u, resp.Status, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
