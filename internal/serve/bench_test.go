package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"tnkd/internal/store"
)

// benchLocation measures the cold /v1/locations path end to end:
// open the store, mount it, answer one location query. With a v4
// store the index comes persisted from the footer; with the v3
// re-encoding the same query pays the lazy full-store scan — the
// difference is the whole point of the persisted section.
func benchLocation(b *testing.B, path, label string) {
	b.Helper()
	target := "/v1/locations/" + url.PathEscape(label) + "/patterns"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := store.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		srv := New([]Mount{{Name: "mined", Reader: r}}, Options{Parallelism: 4})
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocationsColdPersisted(b *testing.B) {
	fx := newMinedFixture(b)
	benchLocation(b, fx.path, fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label)
}

func BenchmarkLocationsColdLazy(b *testing.B) {
	fx := newMinedFixture(b)
	v3Path := filepath.Join(b.TempDir(), "v3.tnd")
	rewriteAsLayout(b, fx.path, v3Path, 3)
	benchLocation(b, v3Path, fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label)
}

func BenchmarkLocationsWarm(b *testing.B) {
	fx := newMinedFixture(b)
	label := fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label
	target := "/v1/locations/" + url.PathEscape(label) + "/patterns"
	h := fx.srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

func benchCodes(b *testing.B, fx *minedFixture) []string {
	b.Helper()
	seen := map[string]bool{}
	var codes []string
	for i := range fx.result.Patterns {
		if c := fx.result.Patterns[i].Code; !seen[c] {
			seen[c] = true
			codes = append(codes, c)
		}
	}
	if len(codes) == 0 {
		b.Fatal("no codes mined")
	}
	return codes
}

// BenchmarkPatternPoint resolves one code per request; ns/op is cost
// per code over the point endpoint.
func BenchmarkPatternPoint(b *testing.B) {
	fx := newMinedFixture(b)
	codes := benchCodes(b, fx)
	h := fx.srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := "/v1/patterns/" + url.PathEscape(codes[i%len(codes)])
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// BenchmarkPatternBatch resolves 32 codes per request; divide ns/op
// by codes/op for cost per code — the number the CI load gate holds
// at >= 2x the point endpoint's throughput.
func BenchmarkPatternBatch(b *testing.B) {
	fx := newMinedFixture(b)
	codes := benchCodes(b, fx)
	const batch = 32
	picked := make([]string, batch)
	for i := range picked {
		picked[i] = codes[i%len(codes)]
	}
	payload, err := json.Marshal(map[string]any{"codes": picked})
	if err != nil {
		b.Fatal(err)
	}
	h := fx.srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/patterns:batch", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(batch, "codes/op")
}

// BenchmarkRemountSwap measures the full cutover latency — validate,
// flip, drain, close — on an idle server (the under-fire number
// comes from the load test). Stores must advance generations, so the
// chain is pre-built outside the timer.
func BenchmarkRemountSwap(b *testing.B) {
	dir := b.TempDir()
	paths := make([]string, b.N+1)
	for gen := 0; gen <= b.N; gen++ {
		paths[gen] = filepath.Join(dir, fmt.Sprintf("gen%d.tnd", gen))
		parent := ""
		if gen > 0 {
			parent = paths[gen-1]
		}
		writeGenStore(b, paths[gen], gen, parent)
	}
	r, err := store.Open(paths[0])
	if err != nil {
		b.Fatal(err)
	}
	srv := New([]Mount{{Name: "lineage", Reader: r}}, Options{})
	defer srv.Close() //nolint:errcheck
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Remount("lineage", paths[i+1]); err != nil {
			b.Fatal(err)
		}
	}
}
