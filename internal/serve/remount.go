package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tnkd/internal/obs"
	"tnkd/internal/store"
)

// ErrNoSuchStore reports a remount naming an unmounted store.
var ErrNoSuchStore = errors.New("serve: no such store")

// ErrProvenance reports a remount candidate whose lineage does not
// validate against the mounted store: its generation must strictly
// advance the current one, and it must descend from the same lineage
// (its recorded Parent is the mounted path, or it carries the same
// Kind and Name).
var ErrProvenance = errors.New("serve: remount provenance rejected")

// RemountResult reports one completed hot swap.
type RemountResult struct {
	Store         string `json:"store"`
	Path          string `json:"path"`
	OldGeneration int    `json:"old_generation"`
	NewGeneration int    `json:"new_generation"`
	// SwapMillis is the time from validation to the old reader being
	// fully drained and closed — the whole cutover, not just the
	// pointer flip (which is atomic and unmeasurably fast).
	SwapMillis float64 `json:"swap_ms"`
}

// validateLineage checks a candidate reader against the mounted one.
// The generation must strictly increase (PR 5's delta miner stamps
// Generation = parent+1), and the candidate must descend from the
// mounted lineage: its Meta.Parent names the mounted path (directly
// or by base name — spool directories move files around), or it
// carries the same Kind and Name.
func validateLineage(cur, cand *store.Reader) error {
	cm, nm := cur.Meta(), cand.Meta()
	if nm.Generation <= cm.Generation {
		return fmt.Errorf("%w: candidate generation %d does not advance mounted generation %d",
			ErrProvenance, nm.Generation, cm.Generation)
	}
	if nm.Parent == cur.Path() ||
		(nm.Parent != "" && filepath.Base(nm.Parent) == filepath.Base(cur.Path())) {
		return nil
	}
	if nm.Kind == cm.Kind && nm.Name == cm.Name && nm.Name != "" {
		return nil
	}
	return fmt.Errorf("%w: candidate parent %q matches neither mounted path %q nor mounted kind/name %q/%q",
		ErrProvenance, nm.Parent, cur.Path(), cm.Kind, cm.Name)
}

// Remount hot-swaps the named mount for the store at path. The
// candidate is opened and its provenance validated (ErrProvenance on
// generation or lineage mismatch); then the mount table flips
// atomically — requests already running finish against the old
// reader, every later request sees the new one — and the old reader
// is closed only after those in-flight requests drain. No request is
// dropped at any point.
func (s *Server) Remount(name, path string) (RemountResult, error) {
	rd, err := store.Open(path)
	if err != nil {
		s.remountFailed(name, path, remountFailOpen, err)
		return RemountResult{}, fmt.Errorf("serve: open remount candidate: %w", err)
	}
	res, err := s.remountReader(name, rd)
	if err != nil {
		rd.Close() //nolint:errcheck // already failing
	}
	return res, err
}

// RemountAuto is Remount without a mount name: the candidate at path
// is matched against every mount's lineage and swaps in for the
// first one that validates. This is the spool-watch entry point,
// where only the file is known.
func (s *Server) RemountAuto(path string) (RemountResult, error) {
	rd, err := store.Open(path)
	if err != nil {
		s.remountFailed("", path, remountFailOpen, err)
		return RemountResult{}, fmt.Errorf("serve: open remount candidate: %w", err)
	}
	s.mu.RLock()
	st := s.cur
	s.mu.RUnlock()
	if st == nil {
		rd.Close() //nolint:errcheck
		return RemountResult{}, errors.New("serve: server closed")
	}
	name := ""
	for _, e := range st.entries {
		if validateLineage(e.m.Reader, rd) == nil {
			name = e.m.Name
			break
		}
	}
	if name == "" {
		rd.Close() //nolint:errcheck
		err := fmt.Errorf("%w: %s matches no mounted lineage", ErrProvenance, path)
		s.remountFailed("", path, remountFailLineage, err)
		return RemountResult{}, err
	}
	res, err := s.remountReader(name, rd)
	if err != nil {
		rd.Close() //nolint:errcheck
	}
	return res, err
}

// remountReader performs the swap: validate under the lock (against
// the state every concurrent request and remount agrees on), install
// the successor snapshot, then drain and close the replaced reader
// outside the lock. On error the caller owns closing rd.
func (s *Server) remountReader(name string, rd *store.Reader) (RemountResult, error) {
	start := time.Now()
	s.mu.Lock()
	st := s.cur
	if st == nil {
		s.mu.Unlock()
		return RemountResult{}, errors.New("serve: server closed")
	}
	ei := -1
	for i, e := range st.entries {
		if e.m.Name == name {
			ei = i
			break
		}
	}
	if ei < 0 {
		s.mu.Unlock()
		err := fmt.Errorf("%w: %q", ErrNoSuchStore, name)
		s.remountFailed(name, rd.Path(), remountFailLineage, err)
		return RemountResult{}, err
	}
	old := st.entries[ei].m.Reader
	if err := validateLineage(old, rd); err != nil {
		s.mu.Unlock()
		s.remountFailed(name, rd.Path(), remountFailLineage, err)
		return RemountResult{}, err
	}
	entries := make([]*mountEntry, len(st.entries))
	copy(entries, st.entries)
	entries[ei] = s.newEntry(Mount{Name: name, Reader: rd})
	s.cur = &state{entries: entries}
	s.mu.Unlock()

	// Drain-then-close: every request pinned to the old snapshot
	// finishes against the old reader before it closes. Unaffected
	// mounts share their entries (and caches) with the new snapshot.
	drainStart := time.Now()
	st.wg.Wait()
	s.metrics.Histogram("tnd_serve_remount_drain_seconds", obs.LatencyBuckets, "mount", name).
		Observe(time.Since(drainStart).Seconds())
	res := RemountResult{
		Store:         name,
		Path:          rd.Path(),
		OldGeneration: old.Meta().Generation,
		NewGeneration: rd.Meta().Generation,
	}
	err := old.Close()
	if err != nil {
		// The swap itself succeeded, but the remount operation still
		// reports the close failure — an io-kind failure on this mount.
		s.remountFailed(name, rd.Path(), remountFailIO, err)
	}
	res.SwapMillis = float64(time.Since(start).Microseconds()) / 1000
	s.metrics.Counter("tnd_serve_remounts_total", "mount", name).Inc()
	s.logger.Info("remount",
		"mount", name,
		"path", res.Path,
		"old_generation", res.OldGeneration,
		"new_generation", res.NewGeneration,
		"swap_ms", res.SwapMillis,
	)
	if err != nil {
		return res, fmt.Errorf("serve: close replaced reader: %w", err)
	}
	return res, nil
}

// Failure kinds for tnd_serve_remount_failures_total: "open" (the
// candidate file would not open as a store), "lineage" (provenance
// rejected: no such mount, stale generation, or foreign lineage) and
// "io" (the swap ran but an I/O step failed, e.g. closing the
// replaced reader).
const (
	remountFailOpen    = "open"
	remountFailLineage = "lineage"
	remountFailIO      = "io"
)

// remountFailed records one rejected or failed remount attempt,
// labeled by mount and failure kind so a fleet can tell which store
// is failing to swap and why. mount may be empty when the failure
// happens before any mount is matched (open errors, lineage-match
// misses in RemountAuto) — those count under mount="unknown".
func (s *Server) remountFailed(mount, path, kind string, err error) {
	if mount == "" {
		mount = "unknown"
	}
	s.metrics.Counter("tnd_serve_remount_failures_total", "mount", mount, "kind", kind).Inc()
	s.logger.Warn("remount rejected", "mount", mount, "path", path, "kind", kind, "error", err.Error())
}

// handleRemount is the admin endpoint for hot swaps. Body:
// {"store": "name", "path": "file.tnd"} — omit "store" to match the
// candidate against every mount's lineage (RemountAuto).
func (s *Server) handleRemount(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Store string `json:"store"`
		Path  string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid remount request: %v", err)
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "remount requires a path")
		return
	}
	var res RemountResult
	var err error
	if req.Store == "" {
		res, err = s.RemountAuto(req.Path)
	} else {
		res, err = s.Remount(req.Store, req.Path)
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrNoSuchStore):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrProvenance):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// eligibleSpoolName reports whether a spool entry may be mounted: a
// *.tnd file that is not a dotfile and carries no temp marker (".tmp"
// or ".partial") anywhere in its name. Publishers (tndingest, rsync,
// scp) stage uploads under dotted or .tmp/.partial names and
// atomically rename them into place, so the watcher must never
// consider those — a half-written temp file must not be half-mounted
// even transiently, and the two-stable-polls rule alone cannot
// guarantee that for a stalled copy.
func eligibleSpoolName(name string) bool {
	if strings.HasPrefix(name, ".") {
		return false
	}
	if !strings.HasSuffix(name, ".tnd") {
		return false
	}
	if strings.Contains(name, ".tmp") || strings.Contains(name, ".partial") {
		return false
	}
	return true
}

// WatchSpool polls dir every interval for candidate store files and
// hot-swaps any whose lineage validates against a mounted store
// (RemountAuto). A file is considered only once its name, size and
// mtime have been stable across two consecutive polls — a copy still
// in flight must not be mounted half-written. Rejected candidates
// are remembered and not retried until the file changes. Blocks
// until ctx is cancelled; logf (may be nil) receives one line per
// attempt.
func (s *Server) WatchSpool(ctx context.Context, dir string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	type fileKey struct {
		size int64
		mod  int64
	}
	pending := map[string]fileKey{} // seen once, waiting for a stable second look
	handled := map[string]fileKey{} // mounted or rejected at this key
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			logf("watch %s: %v", dir, err)
			continue
		}
		for _, ent := range ents {
			if ent.IsDir() || !eligibleSpoolName(ent.Name()) {
				continue
			}
			info, err := ent.Info()
			if err != nil {
				continue
			}
			p := filepath.Join(dir, ent.Name())
			k := fileKey{size: info.Size(), mod: info.ModTime().UnixNano()}
			if handled[p] == k {
				continue
			}
			if pending[p] != k {
				pending[p] = k
				continue
			}
			delete(pending, p)
			handled[p] = k
			res, err := s.RemountAuto(p)
			if err != nil {
				logf("watch %s: %v", p, err)
				continue
			}
			logf("watch %s: remounted %s generation %d -> %d in %.2fms",
				p, res.Store, res.OldGeneration, res.NewGeneration, res.SwapMillis)
		}
	}
}
