package serve

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tnkd/internal/core"
	"tnkd/internal/dataset"
	"tnkd/internal/partition"
	"tnkd/internal/store"
)

// TestServeStructuralStoreAggregates serves an Algorithm 1 store (one
// record per (pattern, repetition)) and checks that the support
// endpoint's max_support reproduces the in-memory union's support for
// every unioned pattern — the aggregate the paper's Algorithm 1
// reports.
func TestServeStructuralStoreAggregates(t *testing.T) {
	d := dataset.Generate(dataset.TestConfig())
	g := d.BuildGraph(dataset.GraphOptions{Attr: dataset.TransitHours, Vertices: dataset.UniformLabels})
	path := filepath.Join(t.TempDir(), "structural.tnd")
	res, err := core.MineStructural(g, core.StructuralOptions{
		Strategy:    partition.BreadthFirst,
		Partitions:  16,
		Repetitions: 2,
		Support:     5,
		MaxEdges:    3,
		MaxSteps:    100000,
		Seed:        1,
		StorePath:   path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no unioned patterns; fixture is vacuous")
	}
	r, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts := httptest.NewServer(New([]Mount{{Name: "structural", Reader: r}}, Options{}).Handler())
	defer ts.Close()

	multi := 0
	for i := range res.Patterns {
		want := &res.Patterns[i]
		var supResp struct {
			MaxSupport int           `json:"max_support"`
			Matches    []SupportJSON `json:"matches"`
		}
		getJSON(t, ts, "/v1/patterns/"+codePath(want.Code)+"/support", &supResp)
		// Approximate codes can collide between non-isomorphic
		// patterns; max over the code bucket can then only exceed the
		// union support of one member. Equality must hold whenever
		// the bucket is a single pattern, and the served max can
		// never undershoot the union.
		if supResp.MaxSupport < want.Support {
			t.Fatalf("pattern %q: served max_support %d < union support %d",
				want.Code, supResp.MaxSupport, want.Support)
		}
		if want.Runs > 1 {
			multi++
			if len(supResp.Matches) < want.Runs {
				t.Fatalf("pattern %q frequent in %d runs but only %d records served",
					want.Code, want.Runs, len(supResp.Matches))
			}
		}
	}
	if multi == 0 {
		t.Log("no pattern was frequent in both repetitions; multi-record path unexercised")
	}

	// Occurrences across repetitions must stay within the
	// concatenated TID space.
	var occResp struct {
		Matches []RecordOccurrencesJSON `json:"matches"`
	}
	code := res.Patterns[0].Code
	getJSON(t, ts, "/v1/patterns/"+codePath(code)+"/occurrences", &occResp)
	if len(occResp.Matches) == 0 {
		t.Fatalf("no occurrences served for %q", code)
	}
	total := r.NumTransactions()
	for _, m := range occResp.Matches {
		for _, txn := range m.Transactions {
			if txn.TID < 0 || txn.TID >= total {
				t.Fatalf("occurrence TID %d outside concatenated space [0, %d)", txn.TID, total)
			}
		}
	}
}
