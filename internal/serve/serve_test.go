package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"tnkd/internal/fsg"
	"tnkd/internal/graph"
	"tnkd/internal/store"
	"tnkd/internal/synth"
)

// minedFixture mines a small transaction set, persists it through the
// fsg checkpoint path, and returns the in-memory result plus an
// httptest server over the store — the end-to-end flow the daemon
// serves in production.
type minedFixture struct {
	txns   []*graph.Graph
	result *fsg.Result
	ts     *httptest.Server
	path   string
	srv    *Server
}

func newMinedFixture(t testing.TB) *minedFixture {
	return newMinedFixtureOpts(t, Options{Parallelism: 4})
}

// newMinedFixtureOpts is newMinedFixture with caller-chosen server
// options (metrics registry isolation, cache sizing, loggers).
func newMinedFixtureOpts(t testing.TB, opts Options) *minedFixture {
	t.Helper()
	txns := synth.LabelStress(synth.LabelStressConfig{
		Seed: 11, NumTransactions: 18, Lanes: 30, LanesPerTxn: 20,
		Hubs: 3, VertexLabels: 6, EdgeLabels: 3,
	})
	path := filepath.Join(t.TempDir(), "mined.tnd")
	w, err := store.Create(path, store.Meta{Name: "stress", Kind: "fsg", MinSupport: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	res, err := fsg.Mine(txns, fsg.Options{
		MinSupport: 6, MaxEdges: 3,
		Checkpoint: func(lv fsg.LevelStats, pats []fsg.Pattern) error {
			return w.WriteLevel(lv.Edges, pats)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("fixture mined no patterns")
	}
	r, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	srv := New([]Mount{{Name: "mined", Reader: r}}, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &minedFixture{txns: txns, result: res, ts: ts, path: path, srv: srv}
}

// getJSON fetches a path and decodes the body into v, failing on
// non-200 unless wantStatus says otherwise.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any, wantStatus ...int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := http.StatusOK
	if len(wantStatus) > 0 {
		want = wantStatus[0]
	}
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d (want %d): %s", path, resp.StatusCode, want, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
	}
}

func codePath(code string) string { return url.PathEscape(code) }

// TestServeMatchesMiningExactly is the end-to-end acceptance check:
// every pattern the in-memory miner produced is answerable over HTTP
// with identical support, TID list and decoded occurrences.
func TestServeMatchesMiningExactly(t *testing.T) {
	fx := newMinedFixture(t)

	// Store directory reflects the run.
	var stores []StoreJSON
	getJSON(t, fx.ts, "/v1/stores", &stores)
	if len(stores) != 1 || stores[0].Patterns != len(fx.result.Patterns) ||
		stores[0].Transactions != len(fx.txns) {
		t.Fatalf("stores = %+v, want %d patterns over %d txns", stores, len(fx.result.Patterns), len(fx.txns))
	}

	// Level listing matches the per-level pattern counts.
	var levels []LevelJSON
	getJSON(t, fx.ts, "/v1/levels", &levels)
	byEdges := map[int]int{}
	for i := range fx.result.Patterns {
		byEdges[fx.result.Patterns[i].Graph.NumEdges()]++
	}
	if len(levels) != len(byEdges) {
		t.Fatalf("levels = %+v, want %v", levels, byEdges)
	}
	for _, lv := range levels {
		if byEdges[lv.Edges] != lv.Patterns {
			t.Fatalf("level %d reports %d patterns, mined %d", lv.Edges, lv.Patterns, byEdges[lv.Edges])
		}
	}

	for i := range fx.result.Patterns {
		want := &fx.result.Patterns[i]

		// Pattern lookup by code.
		var patResp struct {
			Matches []PatternJSON `json:"matches"`
		}
		getJSON(t, fx.ts, "/v1/patterns/"+codePath(want.Code), &patResp)
		if len(patResp.Matches) != 1 {
			t.Fatalf("pattern %q: %d matches, want 1", want.Code, len(patResp.Matches))
		}
		got := patResp.Matches[0]
		if got.Support != want.Support || !reflect.DeepEqual(got.TIDs, want.TIDs.Slice()) ||
			got.Edges != want.Graph.NumEdges() || len(got.Graph.Vertices) != want.Graph.NumVertices() {
			t.Fatalf("pattern %q: served %+v diverges from mined (support %d, tids %v)",
				want.Code, got, want.Support, want.TIDs)
		}

		// Support query.
		var supResp struct {
			MaxSupport int           `json:"max_support"`
			Matches    []SupportJSON `json:"matches"`
		}
		getJSON(t, fx.ts, "/v1/patterns/"+codePath(want.Code)+"/support", &supResp)
		if supResp.MaxSupport != want.Support || len(supResp.Matches) != 1 ||
			!reflect.DeepEqual(supResp.Matches[0].TIDs, want.TIDs.Slice()) {
			t.Fatalf("pattern %q: support response %+v diverges", want.Code, supResp)
		}

		// Occurrence query: decoded embeddings must be exactly the
		// stored ones, mapped through the stored transactions.
		var occResp struct {
			Matches []RecordOccurrencesJSON `json:"matches"`
		}
		getJSON(t, fx.ts, "/v1/patterns/"+codePath(want.Code)+"/occurrences", &occResp)
		if len(occResp.Matches) != 1 {
			t.Fatalf("pattern %q: %d occurrence matches", want.Code, len(occResp.Matches))
		}
		occ := occResp.Matches[0]
		if occ.Complete != want.HasEmbeddings() {
			t.Fatalf("pattern %q: complete=%v, want %v", want.Code, occ.Complete, want.HasEmbeddings())
		}
		if len(occ.Transactions) != want.TIDs.Len() {
			t.Fatalf("pattern %q: %d occurrence groups for %d TIDs", want.Code, len(occ.Transactions), want.TIDs.Len())
		}
		wantTIDs := want.TIDs.Slice()
		for j, txnOcc := range occ.Transactions {
			tid := wantTIDs[j]
			if txnOcc.TID != tid {
				t.Fatalf("pattern %q: group %d is TID %d, want %d", want.Code, j, txnOcc.TID, tid)
			}
			if want.Embs == nil {
				continue
			}
			if len(txnOcc.Occurrences) != len(want.Embs[j]) {
				t.Fatalf("pattern %q tid %d: %d occurrences, stored %d",
					want.Code, tid, len(txnOcc.Occurrences), len(want.Embs[j]))
			}
			txn := fx.txns[tid]
			for k, o := range txnOcc.Occurrences {
				emb := want.Embs[j][k]
				for pv, tv := range emb.Verts {
					if o.Vertices[pv].Vertex != int(tv) || o.Vertices[pv].Label != txn.Vertex(tv).Label {
						t.Fatalf("pattern %q tid %d occ %d: vertex %d decoded %+v, want %d(%s)",
							want.Code, tid, k, pv, o.Vertices[pv], tv, txn.Vertex(tv).Label)
					}
				}
				for pe, te := range emb.Edges {
					if o.Edges[pe].Edge != int(te) || o.Edges[pe].Label != txn.Edge(te).Label {
						t.Fatalf("pattern %q tid %d occ %d: edge %d decoded %+v, want %d",
							want.Code, tid, k, pe, o.Edges[pe], te)
					}
				}
			}
		}
	}
}

// TestServeLocationQuery cross-checks the inverted location view
// against a direct scan of the in-memory mining result.
func TestServeLocationQuery(t *testing.T) {
	fx := newMinedFixture(t)
	// Pick the first vertex label of the first transaction.
	label := fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label

	var resp LocationJSON
	getJSON(t, fx.ts, "/v1/locations/"+url.PathEscape(label)+"/patterns", &resp)

	wantOcc := map[string]int{} // code -> occurrence count
	for i := range fx.result.Patterns {
		p := &fx.result.Patterns[i]
		if p.Embs == nil {
			continue
		}
		count := 0
		for j, tid := range p.TIDs.All() {
			txn := fx.txns[tid]
			for _, emb := range p.Embs[j] {
				for _, tv := range emb.Verts {
					if txn.Vertex(tv).Label == label {
						count++
						break
					}
				}
			}
		}
		if count > 0 {
			wantOcc[p.Code] = count
		}
	}
	if len(wantOcc) == 0 {
		t.Fatalf("label %q occurs in no mined pattern; fixture is vacuous", label)
	}
	gotOcc := map[string]int{}
	for _, lp := range resp.Patterns {
		gotOcc[lp.Code] = lp.Occurrences
	}
	if !reflect.DeepEqual(gotOcc, wantOcc) {
		t.Fatalf("location %q: served %v, want %v", label, gotOcc, wantOcc)
	}
	// Ordered by descending occurrence count.
	for i := 1; i < len(resp.Patterns); i++ {
		if resp.Patterns[i].Occurrences > resp.Patterns[i-1].Occurrences {
			t.Fatal("location patterns not sorted by occurrences")
		}
	}
}

// TestServeLocationIndexMemoized pins the inverted-index behaviour:
// repeated queries (same and different labels, concurrent cold
// start) return identical, correct responses — the index is built
// once per mount and reused, never rebuilt or invalidated.
func TestServeLocationIndexMemoized(t *testing.T) {
	fx := newMinedFixture(t)
	labels := map[string]bool{}
	for _, txn := range fx.txns {
		for _, v := range txn.Vertices() {
			labels[txn.Vertex(v).Label] = true
		}
	}

	// Concurrent cold start: every first query must see the same
	// fully built index (sync.Once), not a partial one.
	label0 := fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label
	const racers = 8
	cold := make([]LocationJSON, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fx.ts.URL + "/v1/locations/" + url.PathEscape(label0) + "/patterns")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			json.NewDecoder(resp.Body).Decode(&cold[i]) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if !reflect.DeepEqual(cold[i], cold[0]) {
			t.Fatalf("concurrent cold-start responses diverge:\n%+v\n%+v", cold[0], cold[i])
		}
	}

	// Warm queries across every label: identical across repeats.
	for label := range labels {
		path := "/v1/locations/" + url.PathEscape(label) + "/patterns"
		var first, second LocationJSON
		getJSON(t, fx.ts, path, &first)
		getJSON(t, fx.ts, path, &second)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("label %q: repeated query diverged", label)
		}
	}

	// An unknown label answers empty (not 404): the index knows the
	// label simply occurs nowhere.
	var empty LocationJSON
	getJSON(t, fx.ts, "/v1/locations/no-such-place/patterns", &empty)
	if len(empty.Patterns) != 0 {
		t.Fatalf("unknown label matched %d patterns", len(empty.Patterns))
	}
}

// TestServeErrors covers the failure contract: JSON errors with
// accurate statuses.
func TestServeErrors(t *testing.T) {
	fx := newMinedFixture(t)
	var e struct {
		Error string `json:"error"`
	}
	getJSON(t, fx.ts, "/v1/patterns/no-such-code", &e, http.StatusNotFound)
	if e.Error == "" {
		t.Fatal("404 without error body")
	}
	getJSON(t, fx.ts, "/v1/levels/zero", &e, http.StatusBadRequest)
	getJSON(t, fx.ts, "/v1/levels/-1", &e, http.StatusBadRequest)
	code := fx.result.Patterns[0].Code
	getJSON(t, fx.ts, "/v1/patterns/"+codePath(code)+"/occurrences?limit=x", &e, http.StatusBadRequest)
}

// TestServeConcurrentRequests hammers every endpoint from many
// goroutines — with -race this proves the reader/server are safe for
// the daemon's concurrent request handling.
func TestServeConcurrentRequests(t *testing.T) {
	fx := newMinedFixture(t)
	label := fx.txns[0].Vertex(fx.txns[0].Vertices()[0]).Label
	paths := []string{
		"/healthz",
		"/v1/stores",
		"/v1/levels",
		"/v1/levels/1",
		"/v1/patterns/" + codePath(fx.result.Patterns[0].Code),
		"/v1/patterns/" + codePath(fx.result.Patterns[0].Code) + "/support",
		"/v1/patterns/" + codePath(fx.result.Patterns[0].Code) + "/occurrences",
		"/v1/locations/" + url.PathEscape(label) + "/patterns",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				path := paths[(w+i)%len(paths)]
				resp, err := http.Get(fx.ts.URL + path)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: %d", path, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGracefulShutdown: cancelling the context stops ListenAndServe
// cleanly (nil error) after serving.
func TestGracefulShutdown(t *testing.T) {
	fx := newMinedFixture(t)
	// Reuse the fixture's reader through a fresh Server bound to a
	// real listener.
	var stores []StoreJSON
	getJSON(t, fx.ts, "/v1/stores", &stores)

	r, err := store.Open(stores[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := New([]Mount{{Name: "g", Reader: r}}, Options{ShutdownGrace: time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx, addr) }()

	// Wait until it serves, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
