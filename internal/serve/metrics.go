package serve

import (
	"net/http"
	"time"

	"tnkd/internal/obs"
)

// routePatterns lists every pattern Handler registers, in route
// order. Per-route instruments are prebuilt from this list in New, so
// the hot path is a map hit; a request the mux cannot match (404,
// 405) lands on the shared "unmatched" series instead.
var routePatterns = []string{
	"GET /healthz",
	"GET /metrics",
	"GET /v1/stores",
	"GET /v1/levels",
	"GET /v1/levels/{edges}",
	"GET /v1/patterns/{code}",
	"POST /v1/patterns:batch",
	"GET /v1/patterns/{code}/support",
	"GET /v1/patterns/{code}/occurrences",
	"GET /v1/locations/{label}/patterns",
	"POST /v1/admin/remount",
}

// unmatchedRoute is the route label for requests no pattern matched.
const unmatchedRoute = "unmatched"

// routeMetrics is one route's instrument set.
type routeMetrics struct {
	requests *obs.Counter
	failed   *obs.Counter
	bytes    *obs.Counter
	latency  *obs.Histogram
}

func newRouteMetrics(m *obs.Registry, route string) *routeMetrics {
	return &routeMetrics{
		requests: m.Counter("tnd_http_requests_total", "route", route),
		failed:   m.Counter("tnd_http_requests_failed_total", "route", route),
		bytes:    m.Counter("tnd_http_response_bytes_total", "route", route),
		latency:  m.Histogram("tnd_http_request_seconds", obs.LatencyBuckets, "route", route),
	}
}

// countingWriter intercepts the response to record status and body
// size. A 5xx increments the route's failure counter at WriteHeader
// time — before the client can observe the response — so a /metrics
// scrape taken after a response was read always reflects it.
type countingWriter struct {
	http.ResponseWriter
	st     int
	bytes  int
	failed *obs.Counter
}

func (w *countingWriter) WriteHeader(status int) {
	if w.st == 0 {
		w.st = status
		if status >= 500 {
			w.failed.Add(1)
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	if w.st == 0 {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

func (w *countingWriter) status() int {
	if w.st == 0 {
		return http.StatusOK
	}
	return w.st
}

// instrument wraps the routed mux in the telemetry middleware:
// per-route request/failure/byte counters and latency histograms,
// plus one structured access-log line per request. The request
// counter increments on entry, not completion, so the loadtest
// client-vs-server cross-check is exact: any response a client has
// read was already counted when it scrapes /metrics afterwards.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		route := pattern
		rm := s.routes[pattern]
		if rm == nil {
			route = unmatchedRoute
			rm = s.unmatched
		}
		rm.requests.Add(1)
		cw := &countingWriter{ResponseWriter: w, failed: rm.failed}
		start := time.Now()
		mux.ServeHTTP(cw, r)
		elapsed := time.Since(start)
		rm.latency.Observe(elapsed.Seconds())
		rm.bytes.Add(int64(cw.bytes))
		s.logger.Info("request",
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", cw.status(),
			"bytes", cw.bytes,
			"duration", elapsed,
			"remote", r.RemoteAddr,
		)
	})
}

// handleMetrics renders the server's registry in Prometheus text
// exposition format. Like /healthz it does not pin the mount
// snapshot: it must answer even while a remount drains.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // client gone mid-write
}
