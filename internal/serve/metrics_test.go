package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tnkd/internal/obs"
)

// syncBuffer makes a bytes.Buffer safe for the concurrent writes the
// access log produces under parallel requests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func counterValue(t *testing.T, reg *obs.Registry, name, labels string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Labels == labels {
			return s.Value
		}
	}
	return 0
}

func TestMetricsMiddlewareAndEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf syncBuffer
	f := newMinedFixtureOpts(t, Options{
		Parallelism: 4,
		Metrics:     reg,
		Logger:      obs.NewLogger(&logBuf, 0),
	})
	code := f.result.Patterns[0].Code

	getJSON(t, f.ts, "/healthz", nil)
	getJSON(t, f.ts, "/v1/stores", nil)
	// Two hits on the same pattern: one cache miss, one hit.
	getJSON(t, f.ts, "/v1/patterns/"+codePath(code), nil)
	getJSON(t, f.ts, "/v1/patterns/"+codePath(code), nil)
	// A miss on the pattern route still counts on that route.
	getJSON(t, f.ts, "/v1/patterns/no-such-code", nil, http.StatusNotFound)
	// An unrouted path lands on the unmatched series.
	getJSON(t, f.ts, "/nope", nil, http.StatusNotFound)
	// One batch of 2 codes.
	resp, err := http.Post(f.ts.URL+"/v1/patterns:batch", "application/json",
		strings.NewReader(`{"codes":["`+jsonEscape(code)+`","absent"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	patternRoute := `route="GET /v1/patterns/{code}"`
	if got := counterValue(t, reg, "tnd_http_requests_total", patternRoute); got != 3 {
		t.Fatalf("pattern route requests = %d, want 3", got)
	}
	if got := counterValue(t, reg, "tnd_http_requests_total", `route="unmatched"`); got != 1 {
		t.Fatalf("unmatched requests = %d, want 1", got)
	}
	if got := counterValue(t, reg, "tnd_http_requests_failed_total", patternRoute); got != 0 {
		t.Fatalf("pattern route failed = %d, want 0 (404 is not a failure)", got)
	}
	if got := counterValue(t, reg, "tnd_serve_cache_hits_total", `mount="mined"`); got < 1 {
		t.Fatalf("cache hits = %d, want >= 1", got)
	}
	if got := counterValue(t, reg, "tnd_serve_cache_misses_total", `mount="mined"`); got < 1 {
		t.Fatalf("cache misses = %d, want >= 1", got)
	}
	// Histogram count matches requests; sum is positive.
	var hist *obs.HistogramSnapshot
	for _, s := range reg.Snapshot() {
		if s.Name == "tnd_http_request_seconds" && s.Labels == patternRoute {
			hist = s.Hist
		}
	}
	if hist == nil || hist.Count != 3 || hist.Sum <= 0 {
		t.Fatalf("pattern route latency histogram = %+v, want count 3, sum > 0", hist)
	}
	for _, s := range reg.Snapshot() {
		if s.Name == "tnd_serve_batch_codes" {
			if s.Hist.Count != 1 || s.Hist.Sum != 2 {
				t.Fatalf("batch codes histogram = %+v, want one observation of 2", s.Hist)
			}
		}
	}

	// /v1/stores cache stats and registry counters agree.
	var stores []struct {
		Cache *CacheStatsJSON `json:"cache"`
	}
	getJSON(t, f.ts, "/v1/stores", &stores)
	if len(stores) != 1 || stores[0].Cache == nil {
		t.Fatalf("stores response missing cache stats: %+v", stores)
	}
	if int64(stores[0].Cache.Hits) != counterValue(t, reg, "tnd_serve_cache_hits_total", `mount="mined"`) {
		t.Fatalf("cache hits diverge: JSON %d, registry %d",
			stores[0].Cache.Hits, counterValue(t, reg, "tnd_serve_cache_hits_total", `mount="mined"`))
	}

	// The Prometheus endpoint renders the per-route series.
	mresp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"# TYPE tnd_http_requests_total counter",
		`tnd_http_requests_total{route="GET /v1/patterns/{code}"} 3`,
		"# TYPE tnd_http_request_seconds histogram",
		`tnd_serve_cache_hits_total{mount="mined"}`,
		`tnd_http_requests_total{route="GET /metrics"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Access log: one JSON line per request, with the agreed keys.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) < 7 {
		t.Fatalf("access log lines = %d, want >= 7", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line not JSON: %v (%q)", err, lines[0])
	}
	for _, k := range []string{"method", "route", "path", "status", "bytes", "duration", "remote"} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("access log record missing %q: %v", k, rec)
		}
	}
	if rec["msg"] != "request" || rec["route"] != "GET /healthz" {
		t.Fatalf("unexpected first access-log record: %v", rec)
	}
}

func jsonEscape(s string) string {
	b, _ := json.Marshal(s)
	return string(b[1 : len(b)-1])
}

func TestMetricsFailureCounter(t *testing.T) {
	reg := obs.NewRegistry()
	f := newMinedFixtureOpts(t, Options{Parallelism: 1, Metrics: reg})
	// A closed server answers 503 on pinned routes — a 5xx the
	// middleware must count as failed.
	if err := f.srv.Close(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, f.ts, "/v1/stores", nil, http.StatusServiceUnavailable)
	if got := counterValue(t, reg, "tnd_http_requests_failed_total", `route="GET /v1/stores"`); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}
