package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/obs"
	"tnkd/internal/pattern"
	"tnkd/internal/store"
)

// writeGenStore synthesizes one generation of a delta lineage: a
// single one-edge pattern whose support encodes the generation
// (100+gen), so a query response identifies exactly which store
// served it.
func writeGenStore(t testing.TB, path string, gen int, parent string) {
	t.Helper()
	txn := graph.New("t0")
	tv := txn.AddVertex("A")
	te := txn.AddEdge(tv, tv, "e")
	g := graph.New("pat")
	pv := g.AddVertex("A")
	g.AddEdge(pv, pv, "e")
	p := pattern.Pattern{
		Graph: g, Code: "genpat", Support: 100 + gen, TIDs: pattern.NewTIDSet(0),
		Embs: [][]iso.DenseEmbedding{{{Verts: []graph.VertexID{tv}, Edges: []graph.EdgeID{te}}}},
	}
	w, err := store.Create(path, store.Meta{Name: "lineage", Kind: "fsg", Generation: gen, Parent: parent})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteLevel(1, []pattern.Pattern{p}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func mountGen(t *testing.T, path string) (*Server, *httptest.Server) {
	t.Helper()
	r, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := New([]Mount{{Name: "lineage", Reader: r}}, Options{Parallelism: 2})
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestRemountUnderHammer is the zero-dropped-requests proof: many
// goroutines query continuously while the mount hot-swaps through
// two generations. Every response must be a 200 serving exactly one
// complete generation — never an error, never a torn state.
func TestRemountUnderHammer(t *testing.T) {
	dir := t.TempDir()
	paths := map[int]string{}
	for gen := 0; gen <= 2; gen++ {
		paths[gen] = filepath.Join(dir, fmt.Sprintf("gen%d.tnd", gen))
		parent := ""
		if gen > 0 {
			parent = paths[gen-1]
		}
		writeGenStore(t, paths[gen], gen, parent)
	}
	srv, ts := mountGen(t, paths[0])

	stop := make(chan struct{})
	var failures, torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/v1/patterns/genpat")
				if err != nil {
					failures.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close() //nolint:errcheck
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				var out struct {
					Matches []struct {
						Support int `json:"support"`
					} `json:"matches"`
				}
				if err := json.Unmarshal(body, &out); err != nil || len(out.Matches) != 1 {
					torn.Add(1)
					continue
				}
				if s := out.Matches[0].Support; s != 100 && s != 101 && s != 102 {
					torn.Add(1)
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	res, err := srv.Remount("lineage", paths[1])
	if err != nil {
		t.Fatalf("remount gen1: %v", err)
	}
	if res.OldGeneration != 0 || res.NewGeneration != 1 {
		t.Fatalf("remount gen1 reported %d -> %d", res.OldGeneration, res.NewGeneration)
	}
	time.Sleep(20 * time.Millisecond)
	res, err = srv.RemountAuto(paths[2])
	if err != nil {
		t.Fatalf("remount gen2 (auto): %v", err)
	}
	if res.Store != "lineage" || res.NewGeneration != 2 {
		t.Fatalf("auto remount picked %q generation %d", res.Store, res.NewGeneration)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the remounts", n)
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d responses showed a torn or unknown generation", n)
	}
	var stores []StoreJSON
	getJSON(t, ts, "/v1/stores", &stores)
	if len(stores) != 1 || stores[0].Generation != 2 {
		t.Fatalf("final mount table: %+v", stores)
	}
	if stores[0].Path != paths[2] {
		t.Fatalf("final mount path %q, want %q", stores[0].Path, paths[2])
	}
}

// TestRemountValidation pins the provenance contract and the admin
// endpoint's status mapping.
func TestRemountValidation(t *testing.T) {
	dir := t.TempDir()
	gen0 := filepath.Join(dir, "gen0.tnd")
	gen1 := filepath.Join(dir, "gen1.tnd")
	stale := filepath.Join(dir, "stale.tnd")
	alien := filepath.Join(dir, "alien.tnd")
	writeGenStore(t, gen0, 0, "")
	writeGenStore(t, gen1, 1, gen0)
	writeGenStore(t, stale, 0, gen0) // generation does not advance
	// Same shape, unrelated lineage: different name, no parent.
	aw, err := store.Create(alien, store.Meta{Name: "other", Kind: "fsg", Generation: 9})
	if err != nil {
		t.Fatal(err)
	}
	txn := graph.New("t0")
	txn.AddVertex("A")
	if err := aw.WriteTransactions([]*graph.Graph{txn}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	srv, ts := mountGen(t, gen0)

	if _, err := srv.Remount("lineage", stale); !errors.Is(err, ErrProvenance) {
		t.Fatalf("same-generation remount: err = %v, want ErrProvenance", err)
	}
	if _, err := srv.Remount("lineage", alien); !errors.Is(err, ErrProvenance) {
		t.Fatalf("alien-lineage remount: err = %v, want ErrProvenance", err)
	}
	if _, err := srv.Remount("nope", gen1); !errors.Is(err, ErrNoSuchStore) {
		t.Fatalf("unknown-mount remount: err = %v, want ErrNoSuchStore", err)
	}
	if _, err := srv.RemountAuto(alien); !errors.Is(err, ErrProvenance) {
		t.Fatalf("alien auto remount: err = %v, want ErrProvenance", err)
	}

	// Admin endpoint status mapping.
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/remount", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //nolint:errcheck
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, _ := post(`{`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", code)
	}
	if code, _ := post(`{"store":"lineage"}`); code != http.StatusBadRequest {
		t.Fatalf("missing path: status %d", code)
	}
	if code, _ := post(`{"store":"lineage","path":"` + dir + `/does-not-exist.tnd"}`); code != http.StatusBadRequest {
		t.Fatalf("unopenable candidate: status %d", code)
	}
	if code, _ := post(`{"store":"nope","path":"` + gen1 + `"}`); code != http.StatusNotFound {
		t.Fatalf("unknown store: status %d", code)
	}
	if code, body := post(`{"store":"lineage","path":"` + stale + `"}`); code != http.StatusConflict {
		t.Fatalf("stale candidate: status %d: %s", code, body)
	}
	code, body := post(`{"store":"lineage","path":"` + gen1 + `"}`)
	if code != http.StatusOK {
		t.Fatalf("valid remount: status %d: %s", code, body)
	}
	var res RemountResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.OldGeneration != 0 || res.NewGeneration != 1 || res.Store != "lineage" {
		t.Fatalf("remount response: %+v", res)
	}
	var sup struct {
		Matches []SupportJSON `json:"matches"`
	}
	getJSON(t, ts, "/v1/patterns/genpat/support", &sup)
	if len(sup.Matches) != 1 || sup.Matches[0].Support != 101 {
		t.Fatalf("post-remount support: %+v", sup.Matches)
	}
}

// postBatch posts codes to /v1/patterns:batch and decodes the
// response.
func postBatch(t *testing.T, ts *httptest.Server, codes []string, wantStatus int) (found int, results []struct {
	Code    string        `json:"code"`
	Matches []PatternJSON `json:"matches"`
}) {
	t.Helper()
	payload, err := json.Marshal(map[string]any{"codes": codes})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/patterns:batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("batch: status %d (want %d): %s", resp.StatusCode, wantStatus, body)
	}
	if wantStatus != http.StatusOK {
		return 0, nil
	}
	var out struct {
		Codes   int             `json:"codes"`
		Found   int             `json:"found"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("batch: bad JSON: %v\n%s", err, body)
	}
	if err := json.Unmarshal(out.Results, &results); err != nil {
		t.Fatalf("batch: bad results: %v", err)
	}
	if out.Codes != len(codes) {
		t.Fatalf("batch echoed %d codes, want %d", out.Codes, len(codes))
	}
	return out.Found, results
}

// TestBatchMatchesPointQueries is the batch-endpoint equivalence
// check: one batch request must return, per code, exactly the
// matches of the point endpoint — same records, same bodies — with
// unknown codes answering empty instead of failing the whole batch.
func TestBatchMatchesPointQueries(t *testing.T) {
	fx := newMinedFixture(t)
	seen := map[string]bool{}
	var codes []string
	for i := range fx.result.Patterns {
		if c := fx.result.Patterns[i].Code; !seen[c] {
			seen[c] = true
			codes = append(codes, c)
		}
	}
	codes = append(codes, "no-such-code")

	// Warm the cache through the point endpoint so the batch is
	// served from it (hit accounting checked below).
	point := make(map[string][]PatternJSON, len(codes))
	for _, c := range codes[:len(codes)-1] {
		var out struct {
			Matches []PatternJSON `json:"matches"`
		}
		getJSON(t, fx.ts, "/v1/patterns/"+url.PathEscape(c), &out)
		point[c] = out.Matches
	}

	found, results := postBatch(t, fx.ts, codes, http.StatusOK)
	if found != len(codes)-1 {
		t.Fatalf("batch found %d codes, want %d", found, len(codes)-1)
	}
	if len(results) != len(codes) {
		t.Fatalf("batch returned %d results for %d codes", len(results), len(codes))
	}
	for i, r := range results {
		if r.Code != codes[i] {
			t.Fatalf("result %d is %q, want %q (order must follow the request)", i, r.Code, codes[i])
		}
		if r.Code == "no-such-code" {
			if len(r.Matches) != 0 {
				t.Fatalf("unknown code matched %d records", len(r.Matches))
			}
			continue
		}
		if !reflect.DeepEqual(r.Matches, point[r.Code]) {
			t.Fatalf("code %q: batch and point matches diverge:\nbatch: %+v\npoint: %+v",
				r.Code, r.Matches, point[r.Code])
		}
	}

	var stores []StoreJSON
	getJSON(t, fx.ts, "/v1/stores", &stores)
	if len(stores) != 1 || stores[0].Cache == nil {
		t.Fatalf("stores response missing cache stats: %+v", stores)
	}
	if stores[0].Cache.Hits < uint64(len(codes)-1) {
		t.Fatalf("cache hits = %d after a warmed batch of %d codes", stores[0].Cache.Hits, len(codes)-1)
	}
	if stores[0].Cache.UsedBytes <= 0 || stores[0].Cache.UsedBytes > stores[0].Cache.CapacityBytes {
		t.Fatalf("cache accounting out of bounds: %+v", *stores[0].Cache)
	}

	// Error contract.
	postBatch(t, fx.ts, nil, http.StatusBadRequest)
	huge := make([]string, maxBatchCodes+1)
	for i := range huge {
		huge[i] = fmt.Sprintf("c%d", i)
	}
	postBatch(t, fx.ts, huge, http.StatusBadRequest)
}

// rewriteAsLayout re-encodes a store's full content at an older
// layout version — the cross-package twin of the store package's
// legacy synthesis, used to prove the serving layer treats persisted
// and lazy location indices identically.
func rewriteAsLayout(t testing.TB, srcPath, dstPath string, layout int) {
	t.Helper()
	src, err := store.Open(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close() //nolint:errcheck
	w, err := store.Create(dstPath, src.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetLayout(layout); err != nil {
		t.Fatal(err)
	}
	txns := make([]*graph.Graph, src.NumTransactions())
	for i := range txns {
		if txns[i], err = src.Transaction(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteTransactions(txns); err != nil {
		t.Fatal(err)
	}
	for _, lv := range src.Levels() {
		start, end := src.LevelRange(lv.Edges)
		pats := make([]pattern.Pattern, 0, end-start)
		for i := start; i < end; i++ {
			p, err := src.Pattern(i)
			if err != nil {
				t.Fatal(err)
			}
			pats = append(pats, *p)
		}
		if err := w.WriteLevel(lv.Edges, pats); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLocationPersistedMatchesLazyFallback serves the same mining
// content from a v4 store (persisted index) and a v3 re-encoding
// (lazy scan) and requires byte-identical /v1/locations responses
// for every label, plus truthful /v1/stores reporting of which path
// answered.
func TestLocationPersistedMatchesLazyFallback(t *testing.T) {
	fx := newMinedFixture(t)
	v3Path := filepath.Join(t.TempDir(), "v3.tnd")
	rewriteAsLayout(t, fx.path, v3Path, 3)
	r3, err := store.Open(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r3.Close() }) //nolint:errcheck
	// Same mount name so response bodies can be compared bytewise.
	ts3 := httptest.NewServer(New([]Mount{{Name: "mined", Reader: r3}}, Options{Parallelism: 4}).Handler())
	t.Cleanup(ts3.Close)

	var stores4, stores3 []StoreJSON
	getJSON(t, fx.ts, "/v1/stores", &stores4)
	getJSON(t, ts3, "/v1/stores", &stores3)
	if stores4[0].LocationIndex != "persisted" || stores4[0].Version != 4 {
		t.Fatalf("v4 mount reports %q (v%d)", stores4[0].LocationIndex, stores4[0].Version)
	}
	if stores3[0].LocationIndex != "lazy" || stores3[0].Version != 3 {
		t.Fatalf("v3 mount reports %q (v%d)", stores3[0].LocationIndex, stores3[0].Version)
	}

	labels := map[string]bool{}
	for _, txn := range fx.txns {
		for _, v := range txn.Vertices() {
			labels[txn.Vertex(v).Label] = true
		}
	}
	labels["no-such-place"] = true
	get := func(ts *httptest.Server, label string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/locations/" + url.PathEscape(label) + "/patterns")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //nolint:errcheck
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("label %q: status %d: %s", label, resp.StatusCode, body)
		}
		return body
	}
	for label := range labels {
		b4 := get(fx.ts, label)
		b3 := get(ts3, label)
		if !bytes.Equal(b4, b3) {
			t.Fatalf("label %q: persisted and lazy responses diverge:\npersisted: %s\nlazy: %s", label, b4, b3)
		}
	}
}

func TestEligibleSpoolName(t *testing.T) {
	for name, want := range map[string]bool{
		"gen-000001.tnd":     true,
		"run.v2.tnd":         true,
		".hidden.tnd":        false, // dotfile
		".gen-000002.tnd":    false,
		"gen-000002.tnd.tmp": false, // write-to-temp staging name
		"gen-000002.tmp.tnd": false,
		"upload.tnd.partial": false,
		"upload.partial.tnd": false,
		"notes.txt":          false, // not a store file
		"gen-000003":         false,
	} {
		if got := eligibleSpoolName(name); got != want {
			t.Errorf("eligibleSpoolName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestWatchSpoolIgnoresTempNames drops valid next-generation store
// bytes into the spool under dotfile/.tmp/.partial names — which a
// publisher's staged, not-yet-renamed uploads look like — and proves
// the watcher never mounts any of them, while the same bytes under a
// clean name mount promptly.
func TestWatchSpoolIgnoresTempNames(t *testing.T) {
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	if err := os.Mkdir(spool, 0o755); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "gen0.tnd")
	writeGenStore(t, base, 0, "")
	srv, _ := mountGen(t, base)

	// Every decoy is a fully valid generation-1 store: if the watcher
	// ever considered one, the remount would succeed and the test fail.
	for _, name := range []string{".hidden.tnd", "gen1.tnd.tmp", "gen1.tmp.tnd", "up.tnd.partial", "up.partial.tnd"} {
		writeGenStore(t, filepath.Join(spool, name), 1, base)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.WatchSpool(ctx, spool, 5*time.Millisecond, t.Logf)
	}()

	// Give the watcher several polls over the decoys...
	time.Sleep(60 * time.Millisecond)
	if gen := currentGeneration(t, srv); gen != 0 {
		t.Fatalf("a temp-named file was mounted: generation %d", gen)
	}

	// ...then publish properly: the same store under a clean name.
	writeGenStore(t, filepath.Join(spool, "gen1.tnd"), 1, base)
	deadline := time.Now().Add(5 * time.Second)
	for currentGeneration(t, srv) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("clean-named store never mounted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}

func currentGeneration(t *testing.T, srv *Server) int {
	t.Helper()
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.cur == nil || len(srv.cur.entries) == 0 {
		t.Fatal("no mounts")
	}
	return srv.cur.entries[0].m.Reader.Meta().Generation
}

// TestRemountFailureLabels exercises each failure path and asserts
// the failure counter is labeled by mount and kind, so a fleet can
// tell which store is failing to swap and why.
func TestRemountFailureLabels(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "gen0.tnd")
	writeGenStore(t, base, 0, "")
	r, err := store.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := New([]Mount{{Name: "lineage", Reader: r}}, Options{Metrics: reg})
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	// open: the candidate is not a store file.
	bad := filepath.Join(dir, "bad.tnd")
	if err := os.WriteFile(bad, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Remount("lineage", bad); err == nil {
		t.Fatal("remount of a non-store succeeded")
	}

	// lineage, named mount: stale generation.
	stale := filepath.Join(dir, "stale.tnd")
	writeGenStore(t, stale, 0, base)
	if _, err := srv.Remount("lineage", stale); !errors.Is(err, ErrProvenance) {
		t.Fatalf("stale remount err = %v, want ErrProvenance", err)
	}

	// lineage, no mount known: no such store name.
	gen1 := filepath.Join(dir, "gen1.tnd")
	writeGenStore(t, gen1, 1, base)
	if _, err := srv.Remount("nosuch", gen1); !errors.Is(err, ErrNoSuchStore) {
		t.Fatalf("remount of unknown mount err = %v, want ErrNoSuchStore", err)
	}

	// open failure through RemountAuto: before a mount is matched.
	if _, err := srv.RemountAuto(bad); err == nil {
		t.Fatal("auto remount of a non-store succeeded")
	}

	want := map[string]int64{
		`kind="open",mount="lineage"`:    1,
		`kind="lineage",mount="lineage"`: 1,
		`kind="lineage",mount="nosuch"`:  1,
		`kind="open",mount="unknown"`:    1,
	}
	got := map[string]int64{}
	for _, s := range reg.Snapshot() {
		if s.Name == "tnd_serve_remount_failures_total" {
			got[s.Labels] = s.Value
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failure series = %v, want %v", got, want)
	}
}
