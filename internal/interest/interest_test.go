package interest

import (
	"strings"
	"testing"

	"tnkd/internal/fsg"
	"tnkd/internal/graph"
)

// hubTxn builds a transaction containing a correlated 2-edge hub plus
// independent noise edges.
func hubTxn(withHub bool, noise string) *graph.Graph {
	g := graph.New("t")
	if withHub {
		h := g.AddVertex("*")
		a := g.AddVertex("*")
		b := g.AddVertex("*")
		g.AddEdge(h, a, "x")
		g.AddEdge(h, b, "y")
	} else {
		// The same single edges appear, but never together on one hub.
		h1 := g.AddVertex("*")
		a := g.AddVertex("*")
		g.AddEdge(h1, a, "x")
	}
	u := g.AddVertex("*")
	v := g.AddVertex("*")
	g.AddEdge(u, v, noise)
	return g
}

func TestRankLiftSeparatesStructure(t *testing.T) {
	// 8 transactions all containing the x+y hub: the 2-edge pattern's
	// support equals the single edges' support, so its lift over the
	// independence null is high.
	var txns []*graph.Graph
	for i := 0; i < 8; i++ {
		txns = append(txns, hubTxn(true, "z"))
	}
	res, err := fsg.Mine(txns, fsg.Options{MinSupport: 4, MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	scores := Rank(res, txns, Options{})
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	// Top score must be a 2-edge pattern with lift > 1 (support 8,
	// expected 8·1·1 = 8 → lift 1? No: every txn has x and y, so
	// expected = 8; but the hub pattern requires them to SHARE a
	// vertex, which the null ignores — lift measures only co-presence.
	// The hub pattern has support 8 = expected 8 → lift 1, trivial.
	// Still, multi-edge patterns must rank above or equal singles.
	top := scores[0]
	if top.Pattern.NumEdges() < 1 {
		t.Fatal("empty top pattern")
	}
	for _, s := range scores {
		if s.Pattern.NumEdges() == 1 && s.Lift != 1 {
			t.Errorf("single-edge lift = %v, want exactly 1 (null model)", s.Lift)
		}
	}
}

func TestRankFlagsSurprisingCoOccurrence(t *testing.T) {
	// x and y each appear in half the transactions, but always
	// together on a shared hub: the pair pattern's expected support is
	// n·(1/2)·(1/2) = n/4 while observed is n/2 → lift 2.
	var txns []*graph.Graph
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			txns = append(txns, hubTxn(true, "z"))
		} else {
			g := graph.New("t")
			u := g.AddVertex("*")
			v := g.AddVertex("*")
			g.AddEdge(u, v, "z")
			txns = append(txns, g)
		}
	}
	res, err := fsg.Mine(txns, fsg.Options{MinSupport: 3, MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	scores := Rank(res, txns, Options{})
	foundSurprising := false
	for _, s := range scores {
		if s.Pattern.NumEdges() == 2 && s.Lift > 1.5 && !s.Trivial {
			foundSurprising = true
			if s.Leverage <= 0 {
				t.Errorf("surprising pattern with non-positive leverage: %s", s)
			}
		}
	}
	if !foundSurprising {
		for _, s := range scores {
			t.Logf("%d edges: %s", s.Pattern.NumEdges(), s)
		}
		t.Fatal("no surprising 2-edge pattern found")
	}
}

func TestRankOrdering(t *testing.T) {
	var txns []*graph.Graph
	for i := 0; i < 6; i++ {
		txns = append(txns, hubTxn(i%2 == 0, "z"))
	}
	res, err := fsg.Mine(txns, fsg.Options{MinSupport: 2, MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	scores := Rank(res, txns, Options{})
	for i := 1; i < len(scores); i++ {
		if scores[i].Lift > scores[i-1].Lift {
			t.Fatal("scores not sorted by lift")
		}
	}
	out := Summary(scores, 3)
	if !strings.Contains(out, "patterns scored") {
		t.Errorf("summary:\n%s", out)
	}
}

func TestRankEmpty(t *testing.T) {
	res := &fsg.Result{}
	if got := Rank(res, nil, Options{}); got != nil {
		t.Errorf("empty rank = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	g.AddEdge(a, b, "x")
	g.AddEdge(a, c, "x")
	if got := Entropy(g); got != 0 {
		t.Errorf("single-label entropy = %v, want 0", got)
	}
	g.AddEdge(b, c, "y")
	if got := Entropy(g); got <= 0 {
		t.Errorf("mixed-label entropy = %v, want > 0", got)
	}
	empty := graph.New("e")
	if got := Entropy(empty); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
}
