// Package interest implements interestingness metrics for graph
// patterns — the Section 9 challenge that "a variety of metrics have
// been developed to evaluate the interestingness of association
// rules... similar metrics are needed for graph mining". The paper
// found that "even at high support levels... many of these patterns
// turn out to be trivial or uninteresting"; these metrics rank mined
// patterns so the trivial ones sink.
//
// The null model treats each frequent single-edge pattern as an
// independent per-transaction event, so a k-edge pattern's expected
// support is N·∏p(eᵢ) with a size correction; observed support far
// above that expectation marks a structurally surprising pattern.
package interest

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tnkd/internal/fsg"
	"tnkd/internal/graph"
)

// Score is the interestingness evaluation of one pattern.
type Score struct {
	Pattern *graph.Graph
	Support int
	// Expected is the null-model expected number of supporting
	// transactions.
	Expected float64
	// Lift is Support / Expected (capped); > 1 means the structure
	// co-occurs more than independent edges would.
	Lift float64
	// Leverage is (Support - Expected) / N.
	Leverage float64
	// Triviality flags patterns whose lift is indistinguishable from
	// 1 (the "trivial or uninteresting" bulk the paper observed).
	Trivial bool
}

// String renders the score.
func (s Score) String() string {
	return fmt.Sprintf("support=%d expected=%.1f lift=%.2f leverage=%.4f trivial=%v",
		s.Support, s.Expected, s.Lift, s.Leverage, s.Trivial)
}

// Options tunes the scoring.
type Options struct {
	// TrivialLiftBand treats lift within [1/band, band] as trivial
	// (default 1.5).
	TrivialLiftBand float64
}

// Rank scores every pattern of an FSG result against the transaction
// set it was mined from and returns the scores ordered by lift
// descending. Single-edge patterns are by definition trivial (they
// ARE the null model) and rank last.
func Rank(res *fsg.Result, txns []*graph.Graph, opts Options) []Score {
	if opts.TrivialLiftBand <= 1 {
		opts.TrivialLiftBand = 1.5
	}
	n := len(txns)
	if n == 0 {
		return nil
	}
	// Per-transaction probability of each single-edge triple.
	type triple struct{ from, label, to string }
	prob := make(map[triple]float64)
	for _, t := range txns {
		seen := make(map[triple]bool)
		for _, e := range t.Edges() {
			ed := t.Edge(e)
			tr := triple{t.Vertex(ed.From).Label, ed.Label, t.Vertex(ed.To).Label}
			if !seen[tr] {
				seen[tr] = true
				prob[tr] += 1 / float64(n)
			}
		}
	}

	var scores []Score
	for i := range res.Patterns {
		p := &res.Patterns[i]
		expected := float64(n)
		for _, e := range p.Graph.Edges() {
			ed := p.Graph.Edge(e)
			tr := triple{p.Graph.Vertex(ed.From).Label, ed.Label, p.Graph.Vertex(ed.To).Label}
			pe := prob[tr]
			if pe <= 0 {
				pe = 0.5 / float64(n)
			}
			expected *= pe
		}
		if expected < 1e-9 {
			expected = 1e-9
		}
		lift := float64(p.Support) / expected
		if p.Graph.NumEdges() <= 1 {
			lift = 1 // single edges define the null model
		}
		s := Score{
			Pattern:  p.Graph,
			Support:  p.Support,
			Expected: expected,
			Lift:     lift,
			Leverage: (float64(p.Support) - expected) / float64(n),
		}
		s.Trivial = lift <= opts.TrivialLiftBand && lift >= 1/opts.TrivialLiftBand
		scores = append(scores, s)
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Lift != scores[j].Lift {
			return scores[i].Lift > scores[j].Lift
		}
		return scores[i].Support > scores[j].Support
	})
	return scores
}

// Summary renders the top-k scores with their patterns.
func Summary(scores []Score, k int) string {
	var b strings.Builder
	nontrivial := 0
	for _, s := range scores {
		if !s.Trivial {
			nontrivial++
		}
	}
	fmt.Fprintf(&b, "%d patterns scored, %d non-trivial\n", len(scores), nontrivial)
	for i, s := range scores {
		if i == k {
			break
		}
		fmt.Fprintf(&b, "--- rank %d: %s\n%s", i+1, s, s.Pattern.Dump())
	}
	return b.String()
}

// Entropy returns the label entropy of a pattern's edges — a
// secondary signal: patterns mixing several edge labels carry more
// information than single-label stars.
func Entropy(p *graph.Graph) float64 {
	counts := make(map[string]int)
	total := 0
	for _, e := range p.Edges() {
		counts[p.Edge(e).Label]++
		total++
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		pr := float64(c) / float64(total)
		h -= pr * math.Log2(pr)
	}
	return h
}
