package synth

import (
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

func TestPlantEmbedsAllCopies(t *testing.T) {
	pats := DefaultPatterns()
	planted := Plant(PlantConfig{
		Seed: 1, Patterns: pats, CopiesPerPattern: 5, NoiseEdges: 10, JoinEdges: 3,
	})
	wantV, wantE := 0, 0
	for _, p := range pats {
		wantV += 5 * p.NumVertices()
		wantE += 5 * p.NumEdges()
	}
	if planted.Graph.NumVertices() != wantV {
		t.Errorf("vertices = %d, want %d", planted.Graph.NumVertices(), wantV)
	}
	if planted.Graph.NumEdges() < wantE {
		t.Errorf("edges = %d, want >= %d", planted.Graph.NumEdges(), wantE)
	}
	// Every pattern must actually embed.
	for i, p := range pats {
		if !iso.Contains(planted.Graph, p) {
			t.Errorf("pattern %d not embedded", i)
		}
	}
}

func TestRecallScoring(t *testing.T) {
	pats := DefaultPatterns()
	planted := Plant(PlantConfig{Seed: 2, Patterns: pats, CopiesPerPattern: 3})
	if got := planted.Recall(pats); got != 1.0 {
		t.Errorf("perfect recall = %v", got)
	}
	if got := planted.Recall(pats[:1]); got < 0.32 || got > 0.34 {
		t.Errorf("1/3 recall = %v", got)
	}
	if got := planted.Recall(nil); got != 0 {
		t.Errorf("empty recall = %v", got)
	}
	// A non-planted pattern contributes nothing.
	other := graph.New("other")
	a := other.AddVertex("*")
	b := other.AddVertex("*")
	other.AddEdge(a, b, "zzz")
	if got := planted.Recall([]*graph.Graph{other}); got != 0 {
		t.Errorf("foreign recall = %v", got)
	}
}

func TestDefaultPatternsShapes(t *testing.T) {
	pats := DefaultPatterns()
	if len(pats) != 3 {
		t.Fatalf("patterns = %d", len(pats))
	}
	for _, p := range pats {
		if p.NumEdges() < 3 || !p.IsConnected() {
			t.Errorf("pattern %s: edges=%d connected=%v", p.Name, p.NumEdges(), p.IsConnected())
		}
	}
}

func TestLabelStressSharedLanes(t *testing.T) {
	txns := LabelStress(LabelStressConfig{
		Seed: 3, NumTransactions: 10, Lanes: 50, LanesPerTxn: 40,
		VertexLabels: 30, EdgeLabels: 5,
	})
	if len(txns) != 10 {
		t.Fatalf("transactions = %d", len(txns))
	}
	for _, g := range txns {
		if g.NumEdges() != 40 {
			t.Errorf("edges = %d, want 40", g.NumEdges())
		}
	}
	// Lanes recur: the same labeled edge triple must appear in most
	// transactions (that is what makes F1 large).
	type triple struct{ f, e, to string }
	counts := map[triple]int{}
	for _, g := range txns {
		seen := map[triple]bool{}
		for _, e := range g.Edges() {
			ed := g.Edge(e)
			tr := triple{g.Vertex(ed.From).Label, ed.Label, g.Vertex(ed.To).Label}
			if !seen[tr] {
				seen[tr] = true
				counts[tr]++
			}
		}
	}
	recurring := 0
	for _, c := range counts {
		if c >= 5 {
			recurring++
		}
	}
	if recurring < 20 {
		t.Errorf("recurring lane triples = %d, want many", recurring)
	}
}

func TestLabelStressCardinalityGrowsTriples(t *testing.T) {
	distinctTriples := func(vlabels int) int {
		txns := LabelStress(LabelStressConfig{
			Seed: 4, NumTransactions: 5, Lanes: 300, LanesPerTxn: 250,
			VertexLabels: vlabels, EdgeLabels: 5,
		})
		type triple struct{ f, e, to string }
		set := map[triple]bool{}
		for _, g := range txns {
			for _, e := range g.Edges() {
				ed := g.Edge(e)
				set[triple{g.Vertex(ed.From).Label, ed.Label, g.Vertex(ed.To).Label}] = true
			}
		}
		return len(set)
	}
	few := distinctTriples(6)
	many := distinctTriples(600)
	if many <= few {
		t.Errorf("triples: %d labels -> %d, 600 labels -> %d; want growth", 6, few, many)
	}
}
