// Package synth generates synthetic graphs with known planted
// patterns. It plays the role of the Kuramochi–Karypis synthetic
// graph generator the paper used for two purposes:
//
//   - the recall study of Section 5.2.1 footnote 2 ("simulated data
//     constructed by joining subgraphs with known frequent patterns to
//     form a single graph, and then partitioned" — recall ≥ 50% for
//     both traversal orders, better on smaller graphs), and
//   - the label-cardinality stress of Section 8 (transaction sets
//     with many distinct vertex labels blow up FSG's candidate sets).
package synth

import (
	"fmt"
	"math/rand"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// PlantConfig controls planted-pattern graph construction.
type PlantConfig struct {
	Seed int64
	// Patterns are the ground-truth subgraphs to embed. Each is
	// embedded CopiesPerPattern times with fresh vertices.
	Patterns []*graph.Graph
	// CopiesPerPattern is how many disjoint copies of each pattern
	// are joined into the single graph.
	CopiesPerPattern int
	// NoiseEdges adds random edges between existing vertices with
	// labels drawn from NoiseLabels.
	NoiseEdges  int
	NoiseLabels []string
	// JoinEdges adds random edges connecting pattern copies so the
	// result is one graph rather than a disjoint union.
	JoinEdges int
}

// Planted is a single graph with ground truth.
type Planted struct {
	Graph    *graph.Graph
	Patterns []*graph.Graph
	// Copies is the number of embedded copies of each pattern.
	Copies int
}

// Plant builds the single graph.
func Plant(cfg PlantConfig) *Planted {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New("planted")
	for _, pat := range cfg.Patterns {
		for c := 0; c < cfg.CopiesPerPattern; c++ {
			remap := make(map[graph.VertexID]graph.VertexID)
			for _, v := range pat.Vertices() {
				remap[v] = g.AddVertex(pat.Vertex(v).Label)
			}
			for _, e := range pat.Edges() {
				ed := pat.Edge(e)
				g.AddEdge(remap[ed.From], remap[ed.To], ed.Label)
			}
		}
	}
	vs := g.Vertices()
	labels := cfg.NoiseLabels
	if len(labels) == 0 {
		labels = []string{"noise"}
	}
	for i := 0; i < cfg.JoinEdges+cfg.NoiseEdges && len(vs) >= 2; i++ {
		u := vs[rng.Intn(len(vs))]
		v := vs[rng.Intn(len(vs))]
		if u == v {
			continue
		}
		g.AddEdge(u, v, labels[rng.Intn(len(labels))])
	}
	return &Planted{Graph: g, Patterns: cfg.Patterns, Copies: cfg.CopiesPerPattern}
}

// Recall computes the fraction of planted patterns found among the
// mined patterns (matching by isomorphism).
func (p *Planted) Recall(mined []*graph.Graph) float64 {
	if len(p.Patterns) == 0 {
		return 0
	}
	found := 0
	for _, want := range p.Patterns {
		for _, got := range mined {
			if iso.Isomorphic(want, got) {
				found++
				break
			}
		}
	}
	return float64(found) / float64(len(p.Patterns))
}

// DefaultPatterns returns the motif family used by the recall bench:
// a hub-and-spoke, a chain, and a cycle, all over uniform "*" vertex
// labels with a small edge-label alphabet (as in Section 5).
func DefaultPatterns() []*graph.Graph {
	hub := graph.New("hub")
	h := hub.AddVertex("*")
	for i := 0; i < 3; i++ {
		s := hub.AddVertex("*")
		hub.AddEdge(h, s, "w1")
	}

	chain := graph.New("chain")
	prev := chain.AddVertex("*")
	for i := 0; i < 3; i++ {
		next := chain.AddVertex("*")
		chain.AddEdge(prev, next, "w2")
		prev = next
	}

	cycle := graph.New("cycle")
	first := cycle.AddVertex("*")
	cur := first
	for i := 0; i < 2; i++ {
		next := cycle.AddVertex("*")
		cycle.AddEdge(cur, next, "w3")
		cur = next
	}
	cycle.AddEdge(cur, first, "w3")

	return []*graph.Graph{hub, chain, cycle}
}

// LabelStressConfig builds graph-transaction sets with a controlled
// number of distinct vertex labels, reproducing the candidate-set
// explosion of Section 8: the chemical datasets FSG was designed for
// have ~66 vertex labels, while temporally partitioned transportation
// transactions have thousands of unique location labels whose lanes
// recur day after day, so the frequent-1-edge set — and with it the
// level-2 candidate set — grows with label cardinality until memory
// is exhausted.
//
// The generator models exactly that: a fixed universe of "lanes"
// (labeled vertex pairs) shared by all transactions, each transaction
// containing a random majority subset of the lanes (a daily snapshot
// of the recurring network).
type LabelStressConfig struct {
	Seed            int64
	NumTransactions int // daily snapshots
	Lanes           int // lane universe size
	LanesPerTxn     int // lanes active per transaction
	// Hubs is the number of distribution-centre labels every lane
	// originates from (transportation networks are hub-structured;
	// level-2 FSG candidates join lanes at shared hubs, so the
	// candidate count scales with the number of *distinct* frequent
	// lane patterns per hub — the vertex-label cardinality knob).
	Hubs         int
	VertexLabels int // distinct destination-label alphabet
	EdgeLabels   int // distinct edge-label alphabet
}

// LabelStress generates the transaction set.
func LabelStress(cfg LabelStressConfig) []*graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.VertexLabels < 1 {
		cfg.VertexLabels = 1
	}
	if cfg.EdgeLabels < 1 {
		cfg.EdgeLabels = 1
	}
	if cfg.Hubs < 1 {
		cfg.Hubs = 6
	}
	if cfg.LanesPerTxn > cfg.Lanes {
		cfg.LanesPerTxn = cfg.Lanes
	}
	type lane struct {
		fromLabel, toLabel, edgeLabel string
	}
	lanes := make([]lane, cfg.Lanes)
	for i := range lanes {
		lanes[i] = lane{
			fromLabel: fmt.Sprintf("hub%d", rng.Intn(cfg.Hubs)),
			toLabel:   fmt.Sprintf("v%d", rng.Intn(cfg.VertexLabels)),
			edgeLabel: fmt.Sprintf("e%d", rng.Intn(cfg.EdgeLabels)),
		}
	}
	txns := make([]*graph.Graph, 0, cfg.NumTransactions)
	for t := 0; t < cfg.NumTransactions; t++ {
		g := graph.New(fmt.Sprintf("stress/%d", t))
		vertexOf := make(map[string]graph.VertexID)
		vtx := func(label string) graph.VertexID {
			if id, ok := vertexOf[label]; ok {
				return id
			}
			id := g.AddVertex(label)
			vertexOf[label] = id
			return id
		}
		perm := rng.Perm(cfg.Lanes)
		for _, li := range perm[:cfg.LanesPerTxn] {
			ln := lanes[li]
			g.AddEdge(vtx(ln.fromLabel), vtx(ln.toLabel), ln.edgeLabel)
		}
		txns = append(txns, g)
	}
	return txns
}
