package fsg

import (
	"math/rand"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

// prefixTIDs builds the retirement set {0, 1, ..., k-1}.
func prefixTIDs(k int) pattern.TIDSet {
	var s pattern.TIDSet
	for i := 0; i < k; i++ {
		s.Add(i)
	}
	return s
}

// TestAdvanceWindowMatchesFreshMine is the sliding-window property
// test: over 40 random slide schedules (random stream, random initial
// window, three chained slides each retiring and appending random
// amounts under a drifting threshold) × the three embedding-budget
// tiers, every AdvanceWindow step must produce a pattern set
// identical (codes, supports, TID lists, order) to a fresh mine of
// exactly the window's transactions. Most slides retire a prefix —
// the production shape, exercising the Offset(-k) renumber — and one
// slide per schedule retires a random scattered subset to cover the
// rank-table remap. The suite must see real retirement, scattered
// retirement, and threshold movement in both directions, or it fails
// as vacuous.
func TestAdvanceWindowMatchesFreshMine(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	budgets := []int{-1, 0, 3} // unlimited, default, starved-to-seeds
	totalRetired, scatteredSlides, raised, lowered := 0, 0, 0, 0
	for trial := 0; trial < 40; trial++ {
		stream := randomTxns(rng, 16+rng.Intn(10), 5, 8, 2, 2)
		budget := budgets[trial%len(budgets)]
		minSup := 2 + rng.Intn(2)
		opts := Options{MinSupport: minSup, MaxEdges: 4, MaxEmbeddings: budget}

		hi := 4 + rng.Intn(5)
		curTxns := stream[:hi]
		cur, err := Mine(curTxns, opts)
		if err != nil {
			t.Fatal(err)
		}

		for slide := 0; slide < 3; slide++ {
			retireCount := rng.Intn(len(curTxns) + 1)
			addCount := rng.Intn(len(stream) - hi + 1)
			newMinSup := minSup + rng.Intn(3) - 1
			if newMinSup < 1 {
				newMinSup = 1
			}
			var retired pattern.TIDSet
			if slide == 1 && retireCount > 0 && retireCount < len(curTxns) {
				// Scattered retirement: a random subset, not a prefix.
				retired = pattern.TIDSetFromSlice(rng.Perm(len(curTxns))[:retireCount])
				scatteredSlides++
			} else {
				retired = prefixTIDs(retireCount)
			}
			added := stream[hi : hi+addCount]
			windowTxns := append(append([]*graph.Graph{}, RetainTxns(curTxns, retired)...), added...)

			sopts := opts
			sopts.MinSupport = newMinSup
			prior := Prior{Txns: curTxns, Levels: groupByEdges(cur), MinSupport: minSup, Generation: slide}
			got, err := AdvanceWindow(prior, added, retired, sopts)
			if err != nil {
				t.Fatalf("trial %d slide %d: %v", trial, slide, err)
			}
			want, err := Mine(windowTxns, sopts)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := renderMinedSet(got), renderMinedSet(want); g != w {
				t.Fatalf("trial %d slide %d (retire %d of %d, add %d, support %d->%d, budget %d): window diverges from fresh mine\n--- fresh ---\n%s--- window ---\n%s",
					trial, slide, retireCount, len(curTxns), addCount, minSup, newMinSup, budget, w, g)
			}

			totalRetired += retireCount
			if newMinSup > minSup {
				raised++
			} else if newMinSup < minSup {
				lowered++
			}
			cur, curTxns, hi, minSup = got, windowTxns, hi+addCount, newMinSup
		}
	}
	if totalRetired == 0 {
		t.Fatal("no transactions retired across the whole suite; the retirement path went untested")
	}
	if scatteredSlides == 0 {
		t.Fatal("no scattered retirement across the whole suite; the rank-table remap went untested")
	}
	if raised == 0 || lowered == 0 {
		t.Fatalf("threshold drift untested (raised %d, lowered %d)", raised, lowered)
	}
}

// TestRetireDeltaMatchesFreshMine checks the retirement stage alone
// against a fresh mine of the survivors — including the embedding
// lists, which AdvanceWindow's dump comparison cannot see: every
// complete list the retirement kept must still be the exact full
// enumeration for its (renumbered) transaction.
func TestRetireDeltaMatchesFreshMine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	budgets := []int{-1, 0, 3}
	for trial := 0; trial < 20; trial++ {
		txns := randomTxns(rng, 10+rng.Intn(8), 5, 8, 2, 2)
		minSup := 2
		opts := Options{MinSupport: minSup, MaxEdges: 4, MaxEmbeddings: budgets[trial%len(budgets)]}
		prev, err := Mine(txns, opts)
		if err != nil {
			t.Fatal(err)
		}
		k := rng.Intn(len(txns))
		var retired pattern.TIDSet
		if trial%2 == 0 {
			retired = prefixTIDs(k)
		} else {
			retired = pattern.TIDSetFromSlice(rng.Perm(len(txns))[:k])
		}
		survivors := RetainTxns(txns, retired)

		prior := Prior{Txns: txns, Levels: groupByEdges(prev), MinSupport: minSup}
		got, err := RetireDelta(prior, retired, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Mine(survivors, opts)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := renderMinedSet(got), renderMinedSet(want); g != w {
			t.Fatalf("trial %d (retire %d of %d): retirement diverges from fresh mine of survivors\n--- fresh ---\n%s--- retired ---\n%s",
				trial, k, len(txns), w, g)
		}
		for i := range got.Patterns {
			p := &got.Patterns[i]
			if !p.HasEmbeddings() {
				continue
			}
			for j, tid := range p.TIDs.All() {
				if want := iso.CountEmbeddings(p.Graph, survivors[tid], 0); len(p.Embs[j]) != want {
					t.Fatalf("trial %d pattern %q tid %d: retirement kept %d embeddings, full enumeration has %d",
						trial, p.Code, tid, len(p.Embs[j]), want)
				}
			}
		}
	}
}

// TestAdvanceWindowDeterministicAcrossParallelism slides the same
// window serially and with worker pools; under -race this checks both
// determinism and the concurrent fold path downstream of retirement.
func TestAdvanceWindowDeterministicAcrossParallelism(t *testing.T) {
	txns := motifTxns(34, 13)
	opts := Options{MinSupport: 5, MaxEdges: 4}
	prev, err := Mine(txns[:26], opts)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, par := range []int{1, 4, 0} {
		o := opts
		o.Parallelism = par
		prior := Prior{Txns: txns[:26], Levels: groupByEdges(prev), MinSupport: opts.MinSupport}
		res, err := AdvanceWindow(prior, txns[26:], prefixTIDs(6), o)
		if err != nil {
			t.Fatal(err)
		}
		got := renderResult(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallelism %d changed the window result", par)
		}
	}
}

// TestRetireDeltaRefusals pins the exactness guardrails: an unknown
// prior threshold, a lowered threshold, and out-of-range retired TIDs
// all fail loudly instead of silently under-reporting.
func TestRetireDeltaRefusals(t *testing.T) {
	txns := motifTxns(10, 3)
	opts := Options{MinSupport: 2, MaxEdges: 3}
	prev, err := Mine(txns, opts)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(minSup int) Prior {
		return Prior{Txns: txns, Levels: groupByEdges(prev), MinSupport: minSup}
	}
	if _, err := RetireDelta(mk(0), prefixTIDs(2), opts); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown prior threshold not rejected: %v", err)
	}
	low := opts
	low.MinSupport = 1
	if _, err := RetireDelta(mk(2), prefixTIDs(2), low); err == nil || !strings.Contains(err.Error(), "below the prior's") {
		t.Fatalf("lowered threshold not rejected: %v", err)
	}
	if _, err := RetireDelta(mk(2), pattern.NewTIDSet(len(txns)), opts); err == nil || !strings.Contains(err.Error(), "outside the prior's transaction range") {
		t.Fatalf("out-of-range retired TID not rejected: %v", err)
	}
	// AdvanceWindow surfaces the same guardrail when retirement is
	// actually needed, and sidesteps it when nothing retires.
	if _, err := AdvanceWindow(mk(0), nil, prefixTIDs(2), opts); err == nil {
		t.Fatal("AdvanceWindow accepted retirement from an unknown-threshold prior")
	}
	if _, err := AdvanceWindow(mk(0), txns[:2], pattern.TIDSet{}, opts); err != nil {
		t.Fatalf("AdvanceWindow with empty retirement should degrade to a pure fold: %v", err)
	}
}
