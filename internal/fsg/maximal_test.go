package fsg

import (
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

func TestMaximalDropsSubPatterns(t *testing.T) {
	// Every transaction contains the same 3-edge chain, so all of its
	// sub-chains are frequent; Maximal must keep only the 3-edge chain.
	mk := func() *graph.Graph {
		return mkTxn([][3]interface{}{{0, 1, "a"}, {1, 2, "a"}, {2, 3, "a"}})
	}
	txns := []*graph.Graph{mk(), mk(), mk()}
	res, err := Mine(txns, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) < 3 {
		t.Fatalf("expected sub-chains among %d patterns", len(res.Patterns))
	}
	maximal := res.Maximal()
	if len(maximal) != 1 {
		for _, m := range maximal {
			t.Logf("maximal: %s", m.Graph.Dump())
		}
		t.Fatalf("maximal = %d, want 1", len(maximal))
	}
	want := mkTxn([][3]interface{}{{0, 1, "a"}, {1, 2, "a"}, {2, 3, "a"}})
	if !iso.Isomorphic(maximal[0].Graph, want) {
		t.Fatalf("maximal pattern is not the full chain:\n%s", maximal[0].Graph.Dump())
	}
}

func TestClosedKeepsSupportChanges(t *testing.T) {
	// The 1-edge "a" pattern has support 4; the 2-edge "a,a" chain has
	// support 2. Both are closed (different supports); the 1-edge
	// pattern is not maximal.
	long := func() *graph.Graph {
		return mkTxn([][3]interface{}{{0, 1, "a"}, {1, 2, "a"}})
	}
	short := func() *graph.Graph {
		return mkTxn([][3]interface{}{{0, 1, "a"}})
	}
	txns := []*graph.Graph{long(), long(), short(), short()}
	res, err := Mine(txns, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := res.Closed()
	maximal := res.Maximal()
	if len(closed) != 2 {
		t.Fatalf("closed = %d, want 2", len(closed))
	}
	if len(maximal) != 1 {
		t.Fatalf("maximal = %d, want 1", len(maximal))
	}
	// Closed supersets maximal.
	if len(closed) < len(maximal) {
		t.Fatal("closed set smaller than maximal set")
	}
}

func TestMaximalOrdering(t *testing.T) {
	mk := func(edges [][3]interface{}) *graph.Graph { return mkTxn(edges) }
	txns := []*graph.Graph{
		mk([][3]interface{}{{0, 1, "a"}, {1, 2, "b"}}),
		mk([][3]interface{}{{0, 1, "a"}, {1, 2, "b"}}),
		mk([][3]interface{}{{0, 1, "c"}}),
		mk([][3]interface{}{{0, 1, "c"}}),
	}
	res, err := Mine(txns, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	maximal := res.Maximal()
	for i := 1; i < len(maximal); i++ {
		if maximal[i].Graph.NumEdges() > maximal[i-1].Graph.NumEdges() {
			t.Fatal("maximal not sorted by size desc")
		}
	}
}
