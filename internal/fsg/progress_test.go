package fsg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"tnkd/internal/graph"
)

func progressTxns() []*graph.Graph {
	hub := func(noise string) *graph.Graph {
		return mkTxn([][3]interface{}{
			{0, 1, "a"}, {0, 2, "a"}, {0, 3, "b"}, {4, 5, noise},
		})
	}
	return []*graph.Graph{hub("x"), hub("y"), hub("z")}
}

// resultKey flattens the mining outcome into a comparable string.
func resultKey(res *Result) string {
	var b strings.Builder
	for _, p := range res.Patterns {
		fmt.Fprintf(&b, "%s=%d;", p.Code, p.Support)
	}
	return b.String()
}

func TestProgressEmitsOneEventPerLevel(t *testing.T) {
	txns := progressTxns()
	base, err := Mine(txns, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}

	var events []LevelProgress
	res, err := Mine(txns, Options{MinSupport: 3, Progress: func(ev LevelProgress) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Levels) {
		t.Fatalf("events = %d, levels = %d", len(events), len(res.Levels))
	}
	cum := 0
	for i, ev := range events {
		if ev.LevelStats != res.Levels[i] {
			t.Fatalf("event %d stats %+v != level %+v", i, ev.LevelStats, res.Levels[i])
		}
		cum += ev.Frequent
		if ev.Patterns != cum {
			t.Fatalf("event %d cumulative patterns = %d, want %d", i, ev.Patterns, cum)
		}
		if ev.Delta {
			t.Fatalf("event %d flagged Delta on a full mine", i)
		}
		if ev.Elapsed < 0 {
			t.Fatalf("event %d negative elapsed", i)
		}
	}
	// The observer must not change the mining outcome.
	if resultKey(res) != resultKey(base) {
		t.Fatal("Progress observer changed the mining result")
	}
}

func TestProgressFiresOnAbortedLevel(t *testing.T) {
	// Reuse the candidate-budget abort shape: many distinct labels.
	var txns []*graph.Graph
	for i := 0; i < 3; i++ {
		edges := make([][3]interface{}, 0, 12)
		for j := 0; j < 12; j++ {
			edges = append(edges, [3]interface{}{j, j + 1, labelFor(j)})
		}
		txns = append(txns, mkTxn(edges))
	}
	var events []LevelProgress
	res, err := Mine(txns, Options{MinSupport: 3, MaxCandidates: 2, Progress: func(ev LevelProgress) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expected candidate-budget abort")
	}
	if len(events) != len(res.Levels) {
		t.Fatalf("events = %d, levels = %d (abort row must emit too)", len(events), len(res.Levels))
	}
}

func TestDeltaProgressAndProvenanceLog(t *testing.T) {
	txns := progressTxns()
	full, err := Mine(txns[:2], Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	byEdges := make(map[int][]Pattern)
	for _, p := range full.Patterns {
		byEdges[p.Graph.NumEdges()] = append(byEdges[p.Graph.NumEdges()], p)
	}

	var buf bytes.Buffer
	var events []LevelProgress
	prior := Prior{Txns: txns[:2], Levels: byEdges, MinSupport: 2, Generation: 3}
	res, err := MineDelta(prior, txns[2:], Options{
		MinSupport: 2,
		Progress:   func(ev LevelProgress) { events = append(events, ev) },
		Logger:     slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Levels) {
		t.Fatalf("events = %d, levels = %d", len(events), len(res.Levels))
	}
	for i, ev := range events {
		if !ev.Delta {
			t.Fatalf("event %d not flagged Delta on a fold", i)
		}
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("fold log lines = %d, want start + done:\n%s", len(lines), buf.String())
	}
	var start, done map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &start); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &done); err != nil {
		t.Fatal(err)
	}
	if start["msg"] != "delta fold start" || start["generation"] != float64(4) ||
		start["appended_txns"] != float64(1) || start["appended_tids"] != "2..2" {
		t.Fatalf("bad start record: %v", start)
	}
	if done["msg"] != "delta fold done" || done["generation"] != float64(4) {
		t.Fatalf("bad done record: %v", done)
	}
	if _, ok := done["reused"]; !ok {
		t.Fatalf("done record missing reuse tally: %v", done)
	}
}
