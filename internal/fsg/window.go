package fsg

// Transaction retirement and the sliding-window step built on it.
//
// Retirement is the non-monotone half of streaming: transactions
// leave the set, so supports can only fall. Downward closure turns
// that into a gift. Every pattern frequent over the survivors at a
// threshold no lower than the prior run's was already frequent over
// the full prior set — support is monotone under adding transactions
// back — so it sits in the prior's levels verbatim. Retirement is
// therefore a pure filter: subtract the retired TIDs from every
// stored column (a word-parallel TIDSet.AndNot), drop what falls
// below threshold, and no upward "resurrect" search is ever needed.
// Demotion cascades for free too: a superpattern's support is at most
// its subpattern's, so anything above a dropped pattern drops with
// it, level by level, without the code looking.
//
// The exactness precondition is the mirror image of the delta fold's:
// RetireDelta needs the prior's own threshold to be known (> 0) and
// the retirement threshold to be at least that. A *lower* threshold
// would admit patterns that were sub-threshold before retirement,
// which only a re-mine can discover — RetireDelta refuses rather than
// silently under-report.
//
// AdvanceWindow composes retire + append into the one step a sliding
// window needs: retire the expiring TIDs at the prior's own threshold
// (keeping every pattern the append fold might reuse), renumber the
// survivors to the fresh-mine TID space, then MineDelta the arriving
// transactions at the caller's threshold. MineDelta is exact for any
// threshold relationship, so the composition is exact, and the output
// is byte-identical — codes, supports, TID lists, level order — to a
// fresh mine of exactly the window's transactions.

import (
	"fmt"
	"sort"
	"time"

	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// RetireDelta removes the retired transactions from a previous run:
// every stored pattern's TID column is subtracted word-parallel
// (pattern.TIDSet.AndNot), surviving columns are renumbered to the
// post-retirement TID space (survivor i of the prior becomes TID i),
// retired transactions' embedding lists are pruned, and patterns
// whose support falls below opts.MinSupport are dropped. The result
// is identical to mining the surviving transactions from scratch with
// the same Options — downward closure guarantees no frequent pattern
// of the survivors is missing from the prior (see the package-section
// comment above), so the filter is exhaustive, not approximate.
//
// Exactness requires prior.MinSupport > 0 (the prior's threshold must
// be known) and opts.MinSupport >= prior.MinSupport; otherwise an
// error is returned and the caller must re-mine from scratch. Every
// retired TID must lie in [0, len(prior.Txns)). Retired TIDs need not
// occur in any pattern. The prior's structural preconditions are
// those of MineDelta (exact codes, one pattern per code per level);
// violations wrap ErrDeltaPrior.
//
// opts.Checkpoint and opts.Progress fire per surviving level exactly
// as in a mine, so a retirement-only generation can stream to a store
// writer. Budget options (MaxCandidates, MaxSteps, MaxEmbeddings) are
// irrelevant here — retirement enumerates nothing — and are ignored
// beyond normalization.
func RetireDelta(prior Prior, retired pattern.TIDSet, opts Options) (*Result, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}
	if prior.MinSupport <= 0 {
		return nil, fmt.Errorf("fsg: retirement needs the prior's threshold, but it is unknown (store Meta.MinSupport = %d) — re-mine the window from scratch", prior.MinSupport)
	}
	if opts.MinSupport < prior.MinSupport {
		return nil, fmt.Errorf("fsg: retirement threshold %d is below the prior's %d — patterns sub-threshold before retirement could now qualify, which only a fresh mine can discover", opts.MinSupport, prior.MinSupport)
	}
	if retired.Len() > 0 && retired.Max() >= len(prior.Txns) {
		return nil, fmt.Errorf("fsg: retired TID %d outside the prior's transaction range [0, %d)", retired.Max(), len(prior.Txns))
	}
	if _, err := validatePrior(prior); err != nil {
		return nil, err
	}

	// Renumbering: survivor TIDs compact down to 0..n-k-1, matching
	// what a fresh mine of the survivors would assign. The common case
	// — the window's oldest days expiring — retires a prefix [0, k),
	// where the remap is a plain shift (TIDSet.Offset with negative
	// k). Arbitrary retirement sets fall back to a rank table.
	prefix := -1
	if retired.Len() == 0 {
		prefix = 0
	} else if retired.Min() == 0 && retired.Max() == retired.Len()-1 {
		prefix = retired.Len()
	}
	var remap []int
	if prefix < 0 {
		remap = make([]int, len(prior.Txns))
		next := 0
		cur := retired.Cursor()
		for i := range remap {
			if cur.Contains(i) {
				remap[i] = -1
			} else {
				remap[i] = next
				next++
			}
		}
	}

	if l := opts.Logger; l != nil {
		l.Info("retirement start",
			"generation", prior.Generation+1,
			"parent_generation", prior.Generation,
			"prior_txns", len(prior.Txns),
			"retired_tids", retired.Len(),
			"prior_min_support", prior.MinSupport,
			"min_support", opts.MinSupport,
		)
	}

	levels := make([]int, 0, len(prior.Levels))
	for edges := range prior.Levels {
		levels = append(levels, edges)
	}
	sort.Ints(levels)

	res := &Result{}
	for _, edges := range levels {
		levelStart := time.Now()
		pats := prior.Levels[edges]
		var kept []Pattern
		for i := range pats {
			if p, ok := retirePattern(&pats[i], retired, prefix, remap, opts.MinSupport); ok {
				kept = append(kept, p)
			}
		}
		lv := LevelStats{Edges: edges, Candidates: len(pats), Frequent: len(kept), Reused: len(kept)}
		res.Levels = append(res.Levels, lv)
		if opts.Checkpoint != nil && len(kept) > 0 {
			if err := opts.Checkpoint(lv, kept); err != nil {
				return nil, fmt.Errorf("fsg: checkpoint at level %d: %w", edges, err)
			}
		}
		res.Patterns = append(res.Patterns, kept...)
		if opts.Progress != nil {
			opts.Progress(LevelProgress{
				LevelStats: lv,
				Elapsed:    time.Since(levelStart),
				Patterns:   len(res.Patterns),
				Delta:      true,
			})
		}
	}

	if l := opts.Logger; l != nil {
		l.Info("retirement done",
			"generation", prior.Generation+1,
			"levels", len(res.Levels),
			"patterns", len(res.Patterns),
			"dropped", countPriorPatterns(prior)-len(res.Patterns),
		)
	}
	return res, nil
}

// retirePattern applies one retirement to one stored pattern:
// subtract, threshold, renumber, prune embeddings. ok = false when
// the pattern's support fell below minSupport. prefix >= 0 selects
// the prefix-shift remap (retired == [0, prefix)); otherwise remap
// holds the survivor rank table.
func retirePattern(p *Pattern, retired pattern.TIDSet, prefix int, remap []int, minSupport int) (Pattern, bool) {
	kept := p.TIDs.AndNot(retired)
	if kept.Len() < minSupport {
		return Pattern{}, false
	}
	out := *p
	out.Support = kept.Len()
	if prefix == 0 {
		out.TIDs = kept
	} else if prefix > 0 {
		out.TIDs = kept.Offset(-prefix)
	} else {
		var nt pattern.TIDSet
		for _, tid := range kept.All() {
			nt.Add(remap[tid])
		}
		out.TIDs = nt
	}
	if p.Embs != nil {
		// Embedding lists are positional with TIDs.All(); surviving
		// entries keep their order because the renumbering is monotone.
		// A transaction's own list is unaffected by other transactions
		// leaving, so complete lists stay complete.
		embs := p.Embs[:0:0]
		cur := retired.Cursor()
		for pos, tid := range p.TIDs.All() {
			if !cur.Contains(tid) {
				embs = append(embs, p.Embs[pos])
			}
		}
		out.Embs = embs
	}
	if p.Partial.Len() > 0 {
		np := p.Partial.AndNot(retired)
		if prefix > 0 {
			np = np.Offset(-prefix)
		} else if prefix < 0 {
			var nt pattern.TIDSet
			for _, tid := range np.All() {
				nt.Add(remap[tid])
			}
			np = nt
		}
		out.Partial = np
		if np.Len() == 0 {
			// Every partial list was retired: the surviving lists are
			// all complete, so the overflow mark comes off — an empty
			// Partial on an Overflowed pattern would read as the legacy
			// "all seeds" encoding and force needless re-searches.
			out.Overflowed = false
		}
	}
	// An Overflowed pattern with no Partial marks (legacy data, or a
	// bare column with no embedding lists at all) keeps its flag: the
	// lists' completeness is unknown, and "treat everything as seeds"
	// stays the conservative, exact reading over the survivors.
	return out, true
}

func countPriorPatterns(prior Prior) int {
	n := 0
	for _, pats := range prior.Levels {
		n += len(pats)
	}
	return n
}

// RetainTxns returns the transactions that survive retirement, in
// order — the transaction slice of the successor generation, aligned
// with RetireDelta's renumbered TID columns.
func RetainTxns(txns []*graph.Graph, retired pattern.TIDSet) []*graph.Graph {
	if retired.Len() == 0 {
		return txns
	}
	out := make([]*graph.Graph, 0, len(txns)-retired.Len())
	cur := retired.Cursor()
	for i, t := range txns {
		if !cur.Contains(i) {
			out = append(out, t)
		}
	}
	return out
}

// AdvanceWindow slides a window in one step: retire the expiring
// prior TIDs, then fold the arriving transactions, producing one
// Result (and, via opts.Checkpoint, one store write) whose pattern
// set is byte-identical to a fresh mine of exactly the window's
// transactions — RetainTxns(prior.Txns, retired) ++ added — with the
// same Options.
//
// The retirement stage runs at the prior's own threshold (the highest
// threshold that keeps every pattern the fold stage might reuse) with
// Checkpoint and Progress stripped; only the fold stage, which always
// runs, streams to the caller's hooks. opts.MinSupport is the final
// window threshold and may sit on either side of the prior's:
// MineDelta stays exact in both directions (a lower threshold
// re-scans level 1 in full and promotes, a higher one filters). The
// retirement-stage preconditions apply whenever retired is non-empty:
// prior.MinSupport must be known (> 0), else the window must be
// re-mined from scratch. An empty retired set degrades to a pure
// MineDelta fold; an empty added set is a pure retirement.
func AdvanceWindow(prior Prior, added []*graph.Graph, retired pattern.TIDSet, opts Options) (*Result, error) {
	if retired.Len() == 0 {
		return MineDelta(prior, added, opts)
	}
	ropts := opts
	ropts.MinSupport = prior.MinSupport
	ropts.Checkpoint = nil
	ropts.Progress = nil
	r, err := RetireDelta(prior, retired, ropts)
	if err != nil {
		return nil, err
	}
	mid := Prior{
		Txns:       RetainTxns(prior.Txns, retired),
		Levels:     groupPatternsByEdges(r.Patterns),
		MinSupport: prior.MinSupport,
		Generation: prior.Generation,
	}
	return MineDelta(mid, added, opts)
}

// groupPatternsByEdges rebuilds a Prior.Levels map from a flat pattern slice,
// preserving within-level order.
func groupPatternsByEdges(pats []Pattern) map[int][]Pattern {
	byEdges := make(map[int][]Pattern)
	for i := range pats {
		e := pats[i].Graph.NumEdges()
		byEdges[e] = append(byEdges[e], pats[i])
	}
	return byEdges
}
