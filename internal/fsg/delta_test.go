package fsg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

// groupByEdges shapes a mined result as Prior.Levels.
func groupByEdges(r *Result) map[int][]Pattern {
	out := make(map[int][]Pattern)
	for i := range r.Patterns {
		p := r.Patterns[i]
		out[p.Graph.NumEdges()] = append(out[p.Graph.NumEdges()], p)
	}
	return out
}

// renderMinedSet serialises exactly the facts delta mining promises
// to preserve bit-for-bit: codes, supports and TID lists, in output
// order. Embedding lists are deliberately excluded — a reused column
// keeps the store's enumeration order and budget demotions can land
// differently, which is allowed as long as the lists stay valid
// (checked separately).
func renderMinedSet(r *Result) string {
	var b strings.Builder
	for i := range r.Patterns {
		p := &r.Patterns[i]
		fmt.Fprintf(&b, "%d edges=%d code=%q support=%d tids=%v\n",
			i, p.Graph.NumEdges(), p.Code, p.Support, p.TIDs)
	}
	return b.String()
}

// TestMineDeltaMatchesFullMine is the delta-mining property test:
// over many random transaction sets and random split points, mining
// the prefix, then folding the suffix in with MineDelta, yields a
// pattern set identical (codes, supports, TID lists) to mining the
// whole set in one shot — across unlimited, default and starvation
// embedding budgets, so the overflow/seeded/bare rehydration paths
// all participate. It also requires the suite to exercise promotion
// (patterns sub-threshold on the prefix that qualify on the union)
// and store reuse, or the test would be vacuous.
func TestMineDeltaMatchesFullMine(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	budgets := []int{-1, 0, 3} // unlimited, default, starved-to-seeds
	totalPromoted, totalReused := 0, 0
	for trial := 0; trial < 40; trial++ {
		txns := randomTxns(rng, 8+rng.Intn(8), 5, 8, 2, 2)
		minSup := 2 + rng.Intn(2)
		split := rng.Intn(len(txns) + 1) // 0 and len(txns) included
		budget := budgets[trial%len(budgets)]
		opts := Options{MinSupport: minSup, MaxEdges: 4, MaxEmbeddings: budget}

		full, err := Mine(txns, opts)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := Mine(txns[:split], opts) // split may be 0: an empty prefix mines to nothing
		if err != nil {
			t.Fatal(err)
		}
		prior := Prior{Txns: txns[:split], Levels: groupByEdges(prev)}
		if trial%2 == 0 {
			// Half the trials advertise the prior threshold, enabling
			// the incremental level-1 pass; the other half leave it
			// unknown and take the full level-1 rescan. Both must
			// produce identical output.
			prior.MinSupport = minSup
		}
		delta, err := MineDelta(prior, txns[split:], opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderMinedSet(delta), renderMinedSet(full); got != want {
			t.Fatalf("trial %d (split %d/%d, budget %d): delta diverges from full mine\n--- full ---\n%s--- delta ---\n%s",
				trial, split, len(txns), budget, want, got)
		}
		for _, lv := range delta.Levels {
			totalPromoted += lv.Promoted
			totalReused += lv.Reused
		}
		// Every complete embedding list the delta kept must still be
		// the exact full enumeration for its transaction.
		for i := range delta.Patterns {
			p := &delta.Patterns[i]
			if !p.HasEmbeddings() {
				continue
			}
			for j, tid := range p.TIDs.All() {
				if want := iso.CountEmbeddings(p.Graph, txns[tid], 0); len(p.Embs[j]) != want {
					t.Fatalf("trial %d pattern %q tid %d: delta kept %d embeddings, full enumeration has %d",
						trial, p.Code, tid, len(p.Embs[j]), want)
				}
			}
		}
	}
	if totalPromoted == 0 {
		t.Fatal("no promotions across the whole suite; the sub-threshold path went untested")
	}
	if totalReused == 0 {
		t.Fatal("no store reuse across the whole suite; the delta fast path went untested")
	}
}

// TestMineDeltaRisingThreshold folds new transactions in under a
// higher support threshold than the prior run used: stored patterns
// whose combined support falls short must drop out, exactly as a
// re-mine at the new threshold would drop them.
func TestMineDeltaRisingThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		txns := randomTxns(rng, 10+rng.Intn(6), 5, 8, 2, 2)
		split := 3 + rng.Intn(len(txns)-3)
		prevOpts := Options{MinSupport: 2, MaxEdges: 4}
		newOpts := Options{MinSupport: 3, MaxEdges: 4}

		prev, err := Mine(txns[:split], prevOpts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Mine(txns, newOpts)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := MineDelta(Prior{Txns: txns[:split], Levels: groupByEdges(prev), MinSupport: prevOpts.MinSupport}, txns[split:], newOpts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderMinedSet(delta), renderMinedSet(full); got != want {
			t.Fatalf("trial %d: rising-threshold delta diverges\n--- full ---\n%s--- delta ---\n%s", trial, want, got)
		}
	}
}

// TestMineDeltaDeterministicAcrossParallelism mines the same delta
// fold serially and with a worker pool; run under -race this both
// checks determinism and exercises the concurrent rebase/extend path.
func TestMineDeltaDeterministicAcrossParallelism(t *testing.T) {
	txns := motifTxns(30, 13)
	split := 22
	opts := Options{MinSupport: 5, MaxEdges: 4}
	prev, err := Mine(txns[:split], opts)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, par := range []int{1, 4, 0} {
		o := opts
		o.Parallelism = par
		delta, err := MineDelta(Prior{Txns: txns[:split], Levels: groupByEdges(prev)}, txns[split:], o)
		if err != nil {
			t.Fatal(err)
		}
		got := renderResult(delta)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallelism %d changed the delta result", par)
		}
	}
}

// TestMineDeltaRejectsBadPrior pins the Prior validation: approximate
// codes, duplicate codes within a level, and mis-filed levels all
// fail with a clear error instead of mining garbage.
func TestMineDeltaRejectsBadPrior(t *testing.T) {
	g := graph.New("p")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.AddEdge(a, b, "x")
	opts := Options{MinSupport: 1}
	pat := Pattern{Graph: g, Code: iso.Code(g), Support: 1, TIDs: pattern.NewTIDSet(0)}

	approx := pat
	approx.Code = "~deadbeef"
	if _, err := MineDelta(Prior{Txns: []*graph.Graph{g}, Levels: map[int][]Pattern{1: {approx}}}, nil, opts); err == nil || !strings.Contains(err.Error(), "approximate code") {
		t.Fatalf("approximate prior code not rejected: %v", err)
	}
	if _, err := MineDelta(Prior{Txns: []*graph.Graph{g}, Levels: map[int][]Pattern{1: {pat, pat}}}, nil, opts); err == nil || !strings.Contains(err.Error(), "two level-1 patterns") {
		t.Fatalf("duplicate prior code not rejected: %v", err)
	}
	if _, err := MineDelta(Prior{Txns: []*graph.Graph{g}, Levels: map[int][]Pattern{2: {pat}}}, nil, opts); err == nil || !strings.Contains(err.Error(), "has 1 edges") {
		t.Fatalf("mis-filed prior level not rejected: %v", err)
	}
}
