package fsg

import (
	"fmt"
	"strings"
	"testing"

	"tnkd/internal/iso"
	"tnkd/internal/synth"
)

// renderPatterns serialises the frequent-pattern set only (no level
// stats: the incremental and fallback counters legitimately differ in
// IsoTests/Embeddings while their mined output must be identical).
func renderPatterns(r *Result) string {
	var b strings.Builder
	for i := range r.Patterns {
		p := &r.Patterns[i]
		fmt.Fprintf(&b, "pattern %d code=%q support=%d tids=%v\n%s",
			i, p.Code, p.Support, p.TIDs, p.Graph.Dump())
	}
	return b.String()
}

// TestEmbeddingSupportsMatchFullIso is the embedding-API property
// test: supports and TID lists computed by embedding extension equal
// the brute-force iso-based counts, and every stored embedding list
// is exactly the full enumeration for its transaction. Run under
// -race in CI, with a parallel worker pool, this also exercises the
// concurrency of the incremental counter.
func TestEmbeddingSupportsMatchFullIso(t *testing.T) {
	txns := synth.LabelStress(synth.LabelStressConfig{
		Seed: 11, NumTransactions: 18, Lanes: 30, LanesPerTxn: 20,
		Hubs: 3, VertexLabels: 6, EdgeLabels: 3,
	})
	res, err := Mine(txns, Options{MinSupport: 6, MaxEdges: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no frequent patterns mined")
	}
	checkedEmbs := 0
	for i := range res.Patterns {
		p := &res.Patterns[i]
		// TID list vs brute-force containment over every transaction.
		var wantTIDs []int
		for ti, txn := range txns {
			if iso.Contains(txn, p.Graph) {
				wantTIDs = append(wantTIDs, ti)
			}
		}
		if fmt.Sprint(wantTIDs) != fmt.Sprint(p.TIDs) {
			t.Fatalf("pattern %d: TIDs %v, brute force %v\n%s", i, p.TIDs, wantTIDs, p.Graph.Dump())
		}
		if !p.HasEmbeddings() {
			continue
		}
		// Stored embedding lists vs full enumeration per transaction.
		for j, tid := range p.TIDs.All() {
			want := iso.CountEmbeddings(p.Graph, txns[tid], 0)
			if len(p.Embs[j]) != want {
				t.Fatalf("pattern %d tid %d: stored %d embeddings, full search %d",
					i, tid, len(p.Embs[j]), want)
			}
			checkedEmbs += want
		}
	}
	if checkedEmbs == 0 {
		t.Fatal("no stored embeddings checked; property test is vacuous")
	}
}

// TestEmbeddingAndFallbackPathsAgree mines the same transactions with
// unlimited embedding budget (pure incremental counting) and with a
// budget of 1 (every pattern overflows at level 1, forcing the full
// isomorphism fallback everywhere) and asserts identical mined
// output.
func TestEmbeddingAndFallbackPathsAgree(t *testing.T) {
	txns := motifTxns(24, 7)
	incremental, err := Mine(txns, Options{MinSupport: 4, MaxEdges: 4})
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := Mine(txns, Options{MinSupport: 4, MaxEdges: 4, MaxEmbeddings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderPatterns(fallback), renderPatterns(incremental); got != want {
		t.Errorf("fallback mining diverged from incremental:\n--- incremental ---\n%s\n--- fallback ---\n%s",
			want, got)
	}
	for i := range fallback.Patterns {
		if fallback.Patterns[i].HasEmbeddings() && fallback.Patterns[i].NumEmbeddings() > 1 {
			t.Errorf("pattern %d retained %d embeddings over budget 1",
				i, fallback.Patterns[i].NumEmbeddings())
		}
	}
}

// TestMineDeterministicAcrossBudgetAndParallelism asserts that for
// each embedding budget the full observable result is bit-identical
// at every worker count (the PR 1 guarantee extended to the
// incremental counter's overflow paths).
func TestMineDeterministicAcrossBudgetAndParallelism(t *testing.T) {
	txns := motifTxns(24, 3)
	for _, budget := range []int{0, 1, 10, 200} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			var want string
			for _, p := range []int{1, 4} {
				res, err := Mine(txns, Options{
					MinSupport: 5, MaxEdges: 4, MaxEmbeddings: budget, Parallelism: p,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := renderResult(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("budget %d: parallelism %d diverged from serial", budget, p)
				}
			}
		})
	}
}
