package fsg

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"tnkd/internal/store"
)

// TestCheckpointStreamsLevelsToStore mines with a store-backed
// Checkpoint and asserts the persisted file reproduces the in-memory
// result exactly: same level structure, and per record the same
// graph, code, support, TID list, embeddings and overflow flag. This
// is the mined-output half of the store round-trip property (the
// randomised half lives in internal/store); it runs once with
// complete embedding lists and once with a budget of 1, so
// "~"-approximate codes, overflowed patterns and seed lists all cross
// the disk boundary.
func TestCheckpointStreamsLevelsToStore(t *testing.T) {
	txns := motifTxns(24, 7)
	for _, budget := range []int{0, 1} {
		path := filepath.Join(t.TempDir(), "mined.tnd")
		w, err := store.Create(path, store.Meta{Name: "motif", Kind: "fsg", MinSupport: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTransactions(txns); err != nil {
			t.Fatal(err)
		}
		levels := 0
		res, err := Mine(txns, Options{
			MinSupport:    4,
			MaxEdges:      4,
			MaxEmbeddings: budget,
			Checkpoint: func(lv LevelStats, pats []Pattern) error {
				levels++
				return w.WriteLevel(lv.Edges, pats)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if levels == 0 || len(res.Patterns) == 0 {
			t.Fatalf("budget %d: vacuous run (%d levels, %d patterns)", budget, levels, len(res.Patterns))
		}

		r, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumPatterns() != len(res.Patterns) {
			t.Fatalf("budget %d: store has %d patterns, mining produced %d",
				budget, r.NumPatterns(), len(res.Patterns))
		}
		if r.NumTransactions() != len(txns) {
			t.Fatalf("budget %d: store has %d transactions, want %d", budget, r.NumTransactions(), len(txns))
		}
		if got := len(r.Levels()); got != levels {
			t.Fatalf("budget %d: store has %d levels, checkpoint saw %d", budget, got, levels)
		}
		// res.Patterns is level-ordered, exactly the order records
		// were streamed in.
		for i := range res.Patterns {
			want := &res.Patterns[i]
			got, err := r.Pattern(i)
			if err != nil {
				t.Fatal(err)
			}
			if got.Code != want.Code || got.Support != want.Support ||
				got.Overflowed != want.Overflowed ||
				!reflect.DeepEqual(got.TIDs, want.TIDs) ||
				got.Graph.Dump() != want.Graph.Dump() {
				t.Fatalf("budget %d: record %d diverged from mined pattern:\nstore: %+v\nmined: %+v",
					budget, i, got, want)
			}
			if (got.Embs == nil) != (want.Embs == nil) || got.NumEmbeddings() != want.NumEmbeddings() {
				t.Fatalf("budget %d: record %d embeddings diverged (store %d, mined %d)",
					budget, i, got.NumEmbeddings(), want.NumEmbeddings())
			}
			for j := range want.Embs {
				for k := range want.Embs[j] {
					if !reflect.DeepEqual(got.Embs[j][k], want.Embs[j][k]) {
						t.Fatalf("budget %d: record %d emb[%d][%d] diverged", budget, i, j, k)
					}
				}
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointErrorAbortsMine: a failing checkpoint must abort the
// run and surface through Mine's error.
func TestCheckpointErrorAbortsMine(t *testing.T) {
	txns := motifTxns(12, 3)
	boom := errors.New("disk full")
	_, err := Mine(txns, Options{
		MinSupport: 3,
		MaxEdges:   3,
		Checkpoint: func(LevelStats, []Pattern) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want checkpoint error, got %v", err)
	}
}
