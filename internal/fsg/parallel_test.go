package fsg

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"tnkd/internal/graph"
)

// renderResult serialises every observable field of a mining result
// so equivalence across Parallelism values can be asserted
// byte-for-byte.
func renderResult(r *Result) string {
	var b strings.Builder
	for i := range r.Patterns {
		p := &r.Patterns[i]
		fmt.Fprintf(&b, "pattern %d code=%q support=%d tids=%v\n%s",
			i, p.Code, p.Support, p.TIDs, p.Graph.Dump())
	}
	for _, lv := range r.Levels {
		fmt.Fprintf(&b, "level edges=%d candidates=%d frequent=%d isoTests=%d\n",
			lv.Edges, lv.Candidates, lv.Frequent, lv.IsoTests)
	}
	fmt.Fprintf(&b, "aborted=%v reason=%q budgeted=%d\n", r.Aborted, r.AbortReason, r.BudgetedTests)
	return b.String()
}

// motifTxns builds a deterministic pseudo-random transaction set
// with enough shared structure to reach multi-edge levels.
func motifTxns(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"w1", "w2", "w3"}
	txns := make([]*graph.Graph, n)
	for i := range txns {
		g := graph.New(fmt.Sprintf("txn%d", i))
		vs := make([]graph.VertexID, 6)
		for j := range vs {
			vs[j] = g.AddVertex("*")
		}
		// A shared hub motif in most transactions plus random noise.
		if i%4 != 3 {
			g.AddEdge(vs[0], vs[1], "w1")
			g.AddEdge(vs[0], vs[2], "w1")
			g.AddEdge(vs[1], vs[3], "w2")
		}
		for k := 0; k < 4; k++ {
			u, v := rng.Intn(len(vs)), rng.Intn(len(vs))
			if u == v {
				continue
			}
			g.AddEdge(vs[u], vs[v], labels[rng.Intn(len(labels))])
		}
		txns[i] = g
	}
	return txns
}

// TestMineDeterministicAcrossParallelism asserts bit-identical output
// at Parallelism 0 (auto), 1, 4 and GOMAXPROCS, with and without a
// step budget. Run under -race this also exercises the engine fan-out
// for safety.
func TestMineDeterministicAcrossParallelism(t *testing.T) {
	txns := motifTxns(24, 7)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{MinSupport: 6, MaxEdges: 4}},
		{"budgeted", Options{MinSupport: 4, MaxEdges: 4, MaxSteps: 40}},
		{"capped", Options{MinSupport: 2, MaxEdges: 3, MaxCandidates: 25}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want string
			for _, p := range []int{1, 4, 0, runtime.GOMAXPROCS(0)} {
				opts := tc.opts
				opts.Parallelism = p
				res, err := Mine(txns, opts)
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				got := renderResult(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("parallelism %d diverged from serial result:\n--- serial ---\n%s\n--- p=%d ---\n%s",
						p, want, p, got)
				}
			}
		})
	}
}
