package fsg

// Incremental delta mining: fold appended transactions into a
// previous run's frequent-pattern set instead of re-mining from
// scratch.
//
// A full level-wise mine is candidate-first: every level's candidates
// are generated, then counted over every transaction. MineDelta
// inverts that for the transactions the previous run already covered.
// Each level is seeded from the persisted patterns: a candidate whose
// exact canonical code matches a stored pattern inherits the stored
// TID column verbatim (support over the old transactions cannot
// change — supports are monotone under appending transactions) and
// pays only for extending its parent's embeddings over the appended
// TIDs. Only candidates absent from the store — sub-threshold before
// the append, now possibly frequent ("promotions") — are counted over
// the full transaction set, through their parent's rehydrated
// embedding lists, so even the promotion work runs on the incremental
// counter rather than raw isomorphism search.
//
// Level 1 is the one deliberate rescan: single-edge support is a
// linear pass over every edge, and only a rescan can surface triples
// that were sub-threshold in the previous run. Everything above level
// 1 touches old transactions only for promotions.
//
// The result is pattern-for-pattern identical (codes, supports, TID
// lists) to mining the combined transaction set in one shot, provided
// the previous run was itself exact (Result.BudgetedTests == 0 — true
// of every stock configuration; a run whose isomorphism searches were
// cut off by MaxSteps may have under-counted, and MineDelta inherits
// whatever the store says). Embedding lists are equivalent but not
// bit-identical: reused columns keep the stored enumeration order,
// and budget demotions can differ at the margin, which affects only
// how much later levels re-search, never which patterns they find.

import (
	"errors"
	"fmt"

	"tnkd/internal/graph"
	"tnkd/internal/pattern"
)

// ErrDeltaPrior reports a Prior that cannot seed a delta fold:
// approximate legacy codes, patterns filed under the wrong level, or
// duplicate codes within a level. It marks the *prior* (the persisted
// run being folded into) as unusable, never the appended
// transactions — callers like the ingest daemon use it to distinguish
// "my store is bad" from "this batch is bad" when deciding whether to
// retry, quarantine, or halt.
var ErrDeltaPrior = errors.New("fsg: invalid delta prior")

// Prior is the rehydrated state of a previous mining run that
// MineDelta folds new transactions into — typically read back from an
// internal/store file (store.Reader.Transactions and LevelPatterns).
type Prior struct {
	// Txns is the previous run's transaction set in stored order. The
	// delta run mines the concatenation Txns ++ added, so persisted
	// TID lists stay valid verbatim and appended transactions take
	// TIDs len(Txns)...
	Txns []*graph.Graph
	// Levels holds the previous run's frequent patterns grouped by
	// edge count: exact canonical codes, ascending TID lists into
	// Txns, embedding lists as persisted (complete, seeds, or absent).
	Levels map[int][]Pattern
	// MinSupport is the previous run's support threshold (store
	// Meta.MinSupport). When known, and the delta run's threshold is
	// no lower, level 1 goes incremental too: stored single-edge
	// columns are reused and only the appended transactions are
	// scanned in full (old transactions are re-read just for the
	// triples the append introduced). 0 = unknown, which keeps the
	// level-1 full rescan — still exact, just linear in the old data.
	MinSupport int
	// Generation is the parent run's delta generation (store
	// Meta.Generation; 0 for a full mine). Informational: it is only
	// used to label fold-provenance logs, never to steer the mine.
	Generation int
}

// MineDelta mines the transaction set Prior.Txns ++ added, reusing
// the previous run's persisted support columns so that old
// transactions are re-examined only where the append could change the
// outcome. The returned Result is the full result over the combined
// set — codes, supports and TID lists identical to Mine on the
// concatenation with the same Options — with LevelStats.Reused and
// LevelStats.Promoted metering how much of each level came from the
// store versus fresh counting. opts applies to the delta run;
// MinSupport may differ from the previous run's (a higher threshold
// drops stored patterns that no longer qualify, a lower one promotes
// aggressively — both stay exact, the store only ever accelerates).
//
// Prior patterns must carry exact canonical codes (legacy "~" codes
// from version-1 stores cannot key the dedup) and at most one pattern
// per code per level (true of every single-run store; Algorithm 1
// stores keep one record per repetition and are not delta inputs).
func MineDelta(prior Prior, added []*graph.Graph, opts Options) (*Result, error) {
	opts, err := normalizeOptions(opts)
	if err != nil {
		return nil, err
	}
	byLevel, err := validatePrior(prior)
	if err != nil {
		return nil, err
	}
	all := make([]*graph.Graph, 0, len(prior.Txns)+len(added))
	all = append(all, prior.Txns...)
	all = append(all, added...)
	if l := opts.Logger; l != nil {
		l.Info("delta fold start",
			"generation", prior.Generation+1,
			"parent_generation", prior.Generation,
			"prior_txns", len(prior.Txns),
			"appended_txns", len(added),
			"appended_tids", fmt.Sprintf("%d..%d", len(prior.Txns), len(all)-1),
			"prior_min_support", prior.MinSupport,
			"min_support", opts.MinSupport,
		)
	}
	m := &miner{
		txns:            all,
		opts:            opts,
		res:             &Result{},
		prior:           byLevel,
		newStart:        len(prior.Txns),
		priorMinSupport: prior.MinSupport,
	}
	if err := m.run(); err != nil {
		return nil, err
	}
	if l := opts.Logger; l != nil {
		var reused, promoted int
		for _, lv := range m.res.Levels {
			reused += lv.Reused
			promoted += lv.Promoted
		}
		l.Info("delta fold done",
			"generation", prior.Generation+1,
			"levels", len(m.res.Levels),
			"patterns", len(m.res.Patterns),
			"reused", reused,
			"promoted", promoted,
			"aborted", m.res.Aborted,
		)
	}
	return m.res, nil
}

// validatePrior checks the structural preconditions every incremental
// run (MineDelta, RetireDelta) shares — exact canonical codes,
// patterns filed under their own edge count, at most one pattern per
// code per level — and returns the prior indexed by level and code.
// Violations wrap ErrDeltaPrior: the persisted run is unusable, not
// the incoming change.
func validatePrior(prior Prior) (map[int]map[string]*Pattern, error) {
	byLevel := make(map[int]map[string]*Pattern, len(prior.Levels))
	for edges, pats := range prior.Levels {
		lvl := make(map[string]*Pattern, len(pats))
		for i := range pats {
			p := &pats[i]
			if pattern.ApproxCode(p.Code) {
				return nil, fmt.Errorf("%w: level %d holds approximate code %q (a version-1 store?) — delta mining needs exact canonical codes", ErrDeltaPrior, edges, p.Code)
			}
			if p.Graph == nil || p.Graph.NumEdges() != edges {
				return nil, fmt.Errorf("%w: pattern %q filed under level %d has %d edges", ErrDeltaPrior, p.Code, edges, p.Graph.NumEdges())
			}
			if _, dup := lvl[p.Code]; dup {
				return nil, fmt.Errorf("%w: two level-%d patterns with code %q — not a single-run store", ErrDeltaPrior, edges, p.Code)
			}
			lvl[p.Code] = p
		}
		byLevel[edges] = lvl
	}
	return byLevel, nil
}

// priorAt returns the parent run's pattern with the given exact code
// at the given level, or nil outside delta mode / on a miss.
func (m *miner) priorAt(edges int, code string) *Pattern {
	if m.prior == nil {
		return nil
	}
	return m.prior[edges][code]
}

// deltaFilter restricts a candidate TID filter to the appended
// transactions — the only TIDs a store-reused candidate still has to
// count. On bitset columns this trims whole containers below
// newStart's chunk in one step.
func (m *miner) deltaFilter(filter pattern.TIDSet) pattern.TIDSet {
	return filter.TrimBelow(m.newStart)
}
