package fsg

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/bruteforce"
	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// randomTxns builds small random connected-ish transactions.
func randomTxns(rng *rand.Rand, n, maxV, maxE, vLabels, eLabels int) []*graph.Graph {
	txns := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("t%d", i))
		nv := 2 + rng.Intn(maxV-1)
		vs := make([]graph.VertexID, nv)
		for j := range vs {
			vs[j] = g.AddVertex(fmt.Sprintf("v%d", rng.Intn(vLabels)))
		}
		ne := 1 + rng.Intn(maxE)
		for j := 0; j < ne; j++ {
			a := vs[rng.Intn(nv)]
			b := vs[rng.Intn(nv)]
			if a == b {
				continue
			}
			label := fmt.Sprintf("e%d", rng.Intn(eLabels))
			// Keep transactions simple graphs (deduped), as in the
			// paper's pipeline.
			dup := false
			for _, e := range g.OutEdges(a) {
				ed := g.Edge(e)
				if ed.To == b && ed.Label == label {
					dup = true
					break
				}
			}
			if !dup {
				g.AddEdge(a, b, label)
			}
		}
		txns = append(txns, g)
	}
	return txns
}

// TestFSGMatchesBruteForce cross-checks the level-wise miner against
// the exhaustive oracle on many random inputs: identical pattern sets
// and identical supports.
func TestFSGMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20050405))
	for trial := 0; trial < 25; trial++ {
		txns := randomTxns(rng, 4+rng.Intn(4), 5, 7, 2, 2)
		minSup := 2 + rng.Intn(2)
		maxEdges := 3
		want := bruteforce.Mine(txns, minSup, maxEdges)
		got, err := Mine(txns, Options{MinSupport: minSup, MaxEdges: maxEdges})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Patterns) != len(want) {
			t.Fatalf("trial %d: fsg found %d patterns, oracle %d (minsup %d)",
				trial, len(got.Patterns), len(want), minSup)
		}
		// Match each oracle pattern to an FSG pattern by isomorphism
		// and compare supports.
		for _, w := range want {
			matched := false
			for i := range got.Patterns {
				p := &got.Patterns[i]
				if p.Graph.NumEdges() != w.Graph.NumEdges() || p.Graph.NumVertices() != w.Graph.NumVertices() {
					continue
				}
				if iso.Isomorphic(p.Graph, w.Graph) {
					matched = true
					if p.Support != w.Support {
						t.Fatalf("trial %d: support mismatch %d vs %d for\n%s",
							trial, p.Support, w.Support, w.Graph.Dump())
					}
					break
				}
			}
			if !matched {
				t.Fatalf("trial %d: oracle pattern missing from fsg output:\n%s", trial, w.Graph.Dump())
			}
		}
	}
}

// TestFSGMatchesBruteForceUniformLabels repeats the cross-check in the
// Section 5 regime: all vertices share one label, so candidate
// symmetry (and canonical-code dedup) is maximally stressed.
func TestFSGMatchesBruteForceUniformLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		txns := randomTxns(rng, 5, 5, 6, 1, 3)
		minSup := 2
		maxEdges := 3
		want := bruteforce.Mine(txns, minSup, maxEdges)
		got, err := Mine(txns, Options{MinSupport: minSup, MaxEdges: maxEdges})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Patterns) != len(want) {
			for _, w := range want {
				t.Logf("oracle: sup=%d\n%s", w.Support, w.Graph.Dump())
			}
			for _, p := range got.Patterns {
				t.Logf("fsg: sup=%d\n%s", p.Support, p.Graph.Dump())
			}
			t.Fatalf("trial %d: fsg %d patterns, oracle %d", trial, len(got.Patterns), len(want))
		}
	}
}
