package fsg

import (
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// mkTxn builds a transaction from edge triples over "*"-labeled
// vertices identified by small ints.
func mkTxn(edges [][3]interface{}) *graph.Graph {
	g := graph.New("txn")
	ids := map[int]graph.VertexID{}
	v := func(i int) graph.VertexID {
		if id, ok := ids[i]; ok {
			return id
		}
		id := g.AddVertex("*")
		ids[i] = id
		return id
	}
	for _, e := range edges {
		g.AddEdge(v(e[0].(int)), v(e[1].(int)), e[2].(string))
	}
	return g
}

func TestMineSingleEdgeSupport(t *testing.T) {
	txns := []*graph.Graph{
		mkTxn([][3]interface{}{{0, 1, "a"}}),
		mkTxn([][3]interface{}{{0, 1, "a"}, {1, 2, "b"}}),
		mkTxn([][3]interface{}{{0, 1, "b"}}),
	}
	res, err := Mine(txns, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// "a" edge has support 2, "b" edge support 2; nothing larger is
	// frequent (the a-b path appears once).
	if len(res.Patterns) != 2 {
		for _, p := range res.Patterns {
			t.Logf("pattern support=%d: %s", p.Support, p.Graph.Dump())
		}
		t.Fatalf("patterns = %d, want 2", len(res.Patterns))
	}
	for _, p := range res.Patterns {
		if p.Support != 2 {
			t.Errorf("support = %d, want 2", p.Support)
		}
		if p.Graph.NumEdges() != 1 {
			t.Errorf("pattern edges = %d, want 1", p.Graph.NumEdges())
		}
	}
}

func TestMineFindsHubPattern(t *testing.T) {
	// Three transactions each containing a 3-spoke hub with labels
	// a, a, b plus noise; minsup 3 should surface the hub pattern.
	hub := func(noise string) *graph.Graph {
		return mkTxn([][3]interface{}{
			{0, 1, "a"}, {0, 2, "a"}, {0, 3, "b"}, {4, 5, noise},
		})
	}
	txns := []*graph.Graph{hub("x"), hub("y"), hub("z")}
	res, err := Mine(txns, Options{MinSupport: 3, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := mkTxn([][3]interface{}{{0, 1, "a"}, {0, 2, "a"}, {0, 3, "b"}})
	found := false
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() == 3 && iso.Isomorphic(p.Graph, want) {
			found = true
			if p.Support != 3 {
				t.Errorf("hub support = %d, want 3", p.Support)
			}
		}
	}
	if !found {
		t.Fatal("3-edge hub pattern not found")
	}
}

func TestMineFindsChainPattern(t *testing.T) {
	chain := func() *graph.Graph {
		return mkTxn([][3]interface{}{
			{0, 1, "a"}, {1, 2, "a"}, {2, 3, "a"},
		})
	}
	txns := []*graph.Graph{chain(), chain(), chain(), mkTxn([][3]interface{}{{0, 1, "b"}})}
	res, err := Mine(txns, Options{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	best := res.MaxPattern()
	if best == nil || best.Graph.NumEdges() != 3 {
		t.Fatalf("max pattern = %v, want 3-edge chain", best)
	}
	want := mkTxn([][3]interface{}{{0, 1, "a"}, {1, 2, "a"}, {2, 3, "a"}})
	if !iso.Isomorphic(best.Graph, want) {
		t.Fatalf("max pattern is not the chain:\n%s", best.Graph.Dump())
	}
}

func TestMineUniqueVertexLabels(t *testing.T) {
	// Unique labels (Section 6 style): pattern must match locations.
	mk := func(a, b, c string) *graph.Graph {
		g := graph.New("txn")
		va := g.AddVertex(a)
		vb := g.AddVertex(b)
		vc := g.AddVertex(c)
		g.AddEdge(va, vb, "w1")
		g.AddEdge(va, vc, "w1")
		return g
	}
	txns := []*graph.Graph{
		mk("GB", "CHI", "MKE"),
		mk("GB", "CHI", "MKE"),
		mk("GB", "DET", "CLE"), // different spokes: shares only GB label
	}
	res, err := Mine(txns, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// GB->CHI and GB->MKE single edges have support 2; the 2-spoke
	// pattern {GB->CHI, GB->MKE} has support 2. GB->DET has support 1.
	var twoEdge int
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() == 2 {
			twoEdge++
			if p.Support != 2 {
				t.Errorf("2-edge pattern support = %d, want 2", p.Support)
			}
		}
	}
	if twoEdge != 1 {
		t.Fatalf("two-edge frequent patterns = %d, want 1", twoEdge)
	}
}

func TestMineCandidateBudgetAborts(t *testing.T) {
	// Many distinct vertex labels explode candidates; a tiny budget
	// must abort cleanly rather than grow without bound.
	var txns []*graph.Graph
	for i := 0; i < 4; i++ {
		g := graph.New("txn")
		prev := g.AddVertex("v0")
		for j := 1; j < 8; j++ {
			next := g.AddVertex(labelFor(j))
			g.AddEdge(prev, next, "e")
			prev = next
		}
		txns = append(txns, g)
	}
	res, err := Mine(txns, Options{MinSupport: 2, MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("expected candidate-budget abort")
	}
	if res.AbortReason == "" {
		t.Fatal("abort reason missing")
	}
}

func labelFor(i int) string { return string(rune('a' + i)) }

func TestMinSupportFraction(t *testing.T) {
	if got := MinSupportFraction(53, 0.05); got != 3 {
		t.Errorf("5%% of 53 = %d, want 3", got)
	}
	if got := MinSupportFraction(100, 0.05); got != 5 {
		t.Errorf("5%% of 100 = %d, want 5", got)
	}
	if got := MinSupportFraction(1, 0.0); got != 1 {
		t.Errorf("floor = %d, want 1", got)
	}
}

func TestMineEmptyAndErrors(t *testing.T) {
	if _, err := Mine(nil, Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport 0 should error")
	}
	res, err := Mine(nil, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Fatal("no transactions should yield no patterns")
	}
}
