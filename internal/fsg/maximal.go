package fsg

import (
	"sort"

	"tnkd/internal/iso"
)

// Maximal returns the frequent patterns that are not contained in any
// larger frequent pattern. Section 9 of the paper points to "recent
// work in finding maximal graph patterns, i.e., ignoring sub-patterns
// of a frequent pattern" as the answer to the flood of trivial
// frequent patterns it observed even at high supports.
func (r *Result) Maximal() []Pattern {
	var out []Pattern
	for i := range r.Patterns {
		p := &r.Patterns[i]
		maximal := true
		for j := range r.Patterns {
			q := &r.Patterns[j]
			if q.Graph.NumEdges() <= p.Graph.NumEdges() {
				continue
			}
			if iso.Contains(q.Graph, p.Graph) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, *p)
		}
	}
	sortPatterns(out)
	return out
}

// Closed returns the frequent patterns with no super-pattern of equal
// support: the lossless compression of the frequent-pattern set
// (every frequent pattern's support is recoverable from the closed
// set).
func (r *Result) Closed() []Pattern {
	var out []Pattern
	for i := range r.Patterns {
		p := &r.Patterns[i]
		closed := true
		for j := range r.Patterns {
			q := &r.Patterns[j]
			if q.Graph.NumEdges() <= p.Graph.NumEdges() || q.Support != p.Support {
				continue
			}
			if iso.Contains(q.Graph, p.Graph) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, *p)
		}
	}
	sortPatterns(out)
	return out
}

func sortPatterns(ps []Pattern) {
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Graph.NumEdges() != ps[j].Graph.NumEdges() {
			return ps[i].Graph.NumEdges() > ps[j].Graph.NumEdges()
		}
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		return ps[i].Code < ps[j].Code
	})
}
