// Package subdue reimplements the SUBDUE substructure discovery
// system (Holder, Cook & Djoko 1994) used in Section 5.1 of the
// paper: a beam search over substructures of a single labeled graph,
// evaluated by how well replacing their instances compresses the
// graph, under either the Minimum Description Length principle or the
// Size principle. Instances are counted without overlap (vertex- and
// edge-disjoint), exactly as the paper ran the original system.
package subdue

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"tnkd/internal/engine"
	"tnkd/internal/graph"
	"tnkd/internal/iso"
	"tnkd/internal/pattern"
)

// Principle selects the substructure evaluation heuristic.
type Principle int

const (
	// MDL evaluates a substructure by description-length compression:
	// DL(G) / (DL(S) + DL(G|S)). With uniformly labeled vertices it
	// favours small, very frequent substructures — the paper found it
	// "tends to give trivial results" on transportation data.
	MDL Principle = iota
	// Size evaluates by raw size compression: size(G) / (size(S) +
	// size(G|S)) with size = |V| + |E|. The paper found it surfaces
	// larger, more interesting patterns, at much higher cost.
	Size
)

// String names the principle.
func (p Principle) String() string {
	if p == MDL {
		return "MDL"
	}
	return "Size"
}

// Options configures a discovery run.
type Options struct {
	Principle Principle
	// BeamWidth bounds the substructures kept per search level
	// (paper: beam 4 and 5).
	BeamWidth int
	// MaxBest is the number of best substructures to report
	// (paper: best 3, 5, 15).
	MaxBest int
	// MaxVertices caps substructure size in vertices (paper: "up to
	// size 6"); 0 = unlimited.
	MaxVertices int
	// Limit caps the number of substructures expanded (SUBDUE's
	// -limit); 0 derives the classic default |E|/2.
	Limit int
	// MaxInstances caps instances tracked per substructure (both for
	// counting and extension generation); 0 = unlimited.
	MaxInstances int
	// MaxSteps bounds each isomorphism search (0 = unlimited).
	MaxSteps int
	// MinInstances filters reported substructures (default 2: a
	// pattern occurring once compresses nothing).
	MinInstances int
	// Parallelism is the worker count for beam-candidate evaluation:
	// each beam parent's instance-driven extension and scoring runs
	// as one unit of work on the engine pool. <= 0 selects
	// GOMAXPROCS; 1 runs fully serial. Results are identical for
	// every value.
	Parallelism int
}

// DefaultOptions mirrors the paper's MDL run: beam 4, best 3.
func DefaultOptions() Options {
	return Options{
		Principle:    MDL,
		BeamWidth:    4,
		MaxBest:      3,
		MaxInstances: 500,
		MaxSteps:     200000,
		MinInstances: 2,
	}
}

// Substructure is a discovered pattern with its evaluation.
type Substructure struct {
	Graph *graph.Graph
	Code  string
	// Instances is the non-overlapping (vertex- and edge-disjoint)
	// instance count, the support notion the paper's SUBDUE runs
	// used ("without allowing overlap").
	Instances int
	// Value is the evaluation score; higher is better.
	Value float64
	// pat is the shared pattern-store representation (internal/
	// pattern): the substructure graph with its canonical code and
	// all discovered (possibly overlapping) instances as a
	// single-target embedding list. The instances seed the next
	// extension round — the classic SUBDUE instance-growth design
	// that avoids global isomorphism searches.
	pat *pattern.Pattern
}

// String renders a one-line summary.
func (s Substructure) String() string {
	return fmt.Sprintf("sub{V=%d E=%d instances=%d value=%.4f}",
		s.Graph.NumVertices(), s.Graph.NumEdges(), s.Instances, s.Value)
}

// Result is the outcome of one discovery pass.
type Result struct {
	Best       []Substructure // descending by value
	Considered int            // substructures expanded
	Generated  int            // candidate substructures evaluated
}

// Discover runs one SUBDUE pass over g.
func Discover(g *graph.Graph, opts Options) *Result {
	d := newDiscoverer(g, opts)
	return d.run()
}

type discoverer struct {
	g    *graph.Graph
	opts Options
	eval evaluator

	seen map[string]bool
	res  *Result
}

func newDiscoverer(g *graph.Graph, opts Options) *discoverer {
	if opts.BeamWidth < 1 {
		opts.BeamWidth = 4
	}
	if opts.MaxBest < 1 {
		opts.MaxBest = 3
	}
	if opts.Limit <= 0 {
		opts.Limit = g.NumEdges()/2 + 1
	}
	if opts.MinInstances <= 0 {
		opts.MinInstances = 2
	}
	return &discoverer{
		g:    g,
		opts: opts,
		eval: newEvaluator(g, opts.Principle),
		seen: make(map[string]bool),
		res:  &Result{},
	}
}

// alreadySeen reports whether an isomorphic pattern was evaluated
// before, and records the code if not. Codes are exact canonical
// codes (iso.Code), so dedup is a plain set-membership test.
func (d *discoverer) alreadySeen(code string) bool {
	if d.seen[code] {
		return true
	}
	d.seen[code] = true
	return false
}

func (d *discoverer) run() *Result {
	parents := d.initialSubstructures()
	var best []Substructure
	for d.res.Considered < d.opts.Limit && len(parents) > 0 {
		// Expand as many beam parents as the -limit allows this
		// level. Each parent's extension+scoring is independent of
		// the others, so the beam fans out across the engine pool;
		// the cross-parent isomorphism dedup below stays serial and
		// walks parents in beam order, which keeps the child list —
		// and therefore the whole search — identical at every
		// Parallelism.
		expand := parents
		if remain := d.opts.Limit - d.res.Considered; len(expand) > remain {
			expand = expand[:remain]
		}
		outs := engine.Map(d.opts.Parallelism, len(expand), func(i int) []rawCand {
			return d.extend(&expand[i])
		})
		d.res.Considered += len(expand)
		// Serial cross-parent dedup in beam order, then a second
		// fan-out scoring only the survivors — duplicate patterns
		// (common between sibling parents) are never scored.
		var survivors []rawCand
		for _, cands := range outs {
			for _, rc := range cands {
				if d.alreadySeen(rc.code) {
					continue
				}
				d.res.Generated++
				survivors = append(survivors, rc)
			}
		}
		children := engine.Map(d.opts.Parallelism, len(survivors), func(i int) Substructure {
			return d.score(survivors[i].pattern, survivors[i].code, survivors[i].embs)
		})
		for _, sub := range children {
			if sub.Instances >= d.opts.MinInstances && sub.Graph.NumEdges() > 0 {
				best = insertCapped(best, sub, d.opts.MaxBest)
			}
		}
		sortByValue(children)
		if len(children) > d.opts.BeamWidth {
			children = children[:d.opts.BeamWidth]
		}
		parents = children
	}
	d.res.Best = best
	return d.res
}

// initialSubstructures builds one single-vertex substructure per
// distinct vertex label, with every matching vertex as an instance.
func (d *discoverer) initialSubstructures() []Substructure {
	var subs []Substructure
	for _, label := range d.g.VertexLabels() {
		pg := graph.New("sub")
		pg.AddVertex(label)
		var embs []iso.DenseEmbedding
		for _, v := range d.g.Vertices() {
			if d.g.Vertex(v).Label != label {
				continue
			}
			embs = append(embs, iso.DenseEmbedding{Verts: []graph.VertexID{v}})
			if d.opts.MaxInstances > 0 && len(embs) >= d.opts.MaxInstances {
				break
			}
		}
		if len(embs) == 0 {
			continue
		}
		subs = append(subs, d.score(pg, iso.Code(pg), embs))
	}
	sortByValue(subs)
	if len(subs) > d.opts.BeamWidth {
		subs = subs[:d.opts.BeamWidth]
	}
	return subs
}

// score computes the non-overlapping instance count and evaluation
// value of a pattern given its canonical code (already computed by
// the extend/dedup stage) and its discovered embeddings.
func (d *discoverer) score(pg *graph.Graph, code string, embs []iso.DenseEmbedding) Substructure {
	disjoint := iso.GreedyNonOverlapDense(embs)
	return Substructure{
		Graph:     pg,
		Code:      code,
		Instances: len(disjoint),
		Value:     d.eval.value(pg, len(disjoint)),
		pat:       pattern.NewSingle(pg, code, embs),
	}
}

// extCandidate accumulates the instances of one extension pattern.
type extCandidate struct {
	pattern *graph.Graph
	embs    []iso.DenseEmbedding
	seen    map[string]bool // instance dedup by target vertex+edge sets
	// re re-anchors instances reached through a different isomorphic
	// construction onto pattern, built lazily on first need and
	// reused so each re-anchor costs O(pattern), not O(target).
	re *iso.Reanchorer
}

// descKey identifies an extension construction independent of the
// target edge that induced it: extending the parent pattern at the
// given pattern vertices with an edge of the given label (and, for
// new-vertex extensions, a new endpoint with the given vertex label)
// always produces the identical extension graph, so its fingerprint
// and candidate grouping can be computed once and cached.
type descKey struct {
	kind   byte // 'b' both-in, 'o' out to new vertex, 'i' in from new vertex
	a, b   graph.VertexID
	elabel string
	vlabel string
}

// descInfo caches one extension construction.
type descInfo struct {
	cand *extCandidate
	// pattern is the graph built for this construction; its vertex
	// and edge IDs are deterministic, so embeddings can be built
	// without re-cloning.
	pattern *graph.Graph
	pe      graph.EdgeID   // the added pattern edge
	nv      graph.VertexID // the added pattern vertex ('o'/'i' kinds)
	// needsReanchor is true when cand.pattern is a different
	// (isomorphic) construction, so embeddings must be re-anchored.
	needsReanchor bool
}

// rawCand is one unscored extension pattern produced by extend, with
// the canonical code used for cross-parent dedup. Scoring happens
// after dedup so duplicates are never scored.
type rawCand struct {
	code    string
	pattern *graph.Graph
	embs    []iso.DenseEmbedding
}

// extend generates all one-edge extensions of sub that occur in the
// graph, growing each parent instance by one incident edge — the
// classic SUBDUE instance-driven extension, which never performs a
// global isomorphism search. Extension patterns are grouped by exact
// canonical code (equal code ⟺ isomorphic), so isomorphic
// constructions merge with no verification search. It reads only the
// shared graph (never the shared seen-set or result counters), so
// distinct parents extend safely in parallel.
func (d *discoverer) extend(sub *Substructure) []rawCand {
	candidates := make(map[string]*extCandidate)
	var order []string // codes in first-seen order, for determinism
	descs := make(map[descKey]*descInfo)

	// resolveDesc builds the extension pattern for a construction the
	// first time it appears and merges it with the isomorphic
	// candidate when one exists.
	resolveDesc := func(key descKey) *descInfo {
		if info, ok := descs[key]; ok {
			return info
		}
		ext := sub.Graph.Clone()
		info := &descInfo{pattern: ext, nv: -1}
		switch key.kind {
		case 'b':
			info.pe = ext.AddEdge(key.a, key.b, key.elabel)
		case 'o':
			info.nv = ext.AddVertex(key.vlabel)
			info.pe = ext.AddEdge(key.a, info.nv, key.elabel)
		case 'i':
			info.nv = ext.AddVertex(key.vlabel)
			info.pe = ext.AddEdge(info.nv, key.a, key.elabel)
		}
		code := iso.Code(ext)
		if c, ok := candidates[code]; ok {
			info.cand = c
			info.needsReanchor = true
		} else {
			info.cand = &extCandidate{pattern: ext, seen: make(map[string]bool)}
			candidates[code] = info.cand
			order = append(order, code)
		}
		descs[key] = info

		return info
	}

	// Pattern vertices in ascending ID order: instance vertex maps
	// are walked in a fixed order because the order here decides
	// instance insertion order, fingerprint first-seen order and the
	// MaxInstances cutoff, all of which must be deterministic. Dense
	// embeddings are indexed by pattern vertex ID, so ascending ID
	// order is simply slice order.
	pvs := sub.Graph.Vertices()
	for _, emb := range sub.pat.Instances() {
		// Reverse map: target vertex -> pattern vertex.
		rev := make(map[graph.VertexID]graph.VertexID, len(emb.Verts))
		for pv, tv := range emb.Verts {
			rev[tv] = graph.VertexID(pv)
		}
		usedEdges := make(map[graph.EdgeID]bool, len(emb.Edges))
		for _, te := range emb.Edges {
			usedEdges[te] = true
		}
		atVertexCap := d.opts.MaxVertices > 0 && sub.Graph.NumVertices() >= d.opts.MaxVertices
		for _, pv := range pvs {
			tv := emb.Verts[pv]
			for _, te := range append(d.g.OutEdges(tv), d.g.InEdges(tv)...) {
				if usedEdges[te] {
					continue
				}
				ed := d.g.Edge(te)
				pFrom, fromIn := rev[ed.From]
				pTo, toIn := rev[ed.To]
				if ed.From == ed.To && !(fromIn && toIn) {
					continue // self-loops attach only via both-in
				}
				var key descKey
				var newTarget graph.VertexID // target vertex mapped by the new pattern vertex
				switch {
				case fromIn && toIn:
					key = descKey{kind: 'b', a: pFrom, b: pTo, elabel: ed.Label}
				case fromIn:
					if atVertexCap {
						continue
					}
					key = descKey{kind: 'o', a: pFrom, elabel: ed.Label, vlabel: d.g.Vertex(ed.To).Label}
					newTarget = ed.To
				case toIn:
					if atVertexCap {
						continue
					}
					key = descKey{kind: 'i', a: pTo, elabel: ed.Label, vlabel: d.g.Vertex(ed.From).Label}
					newTarget = ed.From
				default:
					continue
				}
				info := resolveDesc(key)
				cand := info.cand
				if d.opts.MaxInstances > 0 && len(cand.embs) >= d.opts.MaxInstances {
					continue
				}
				// Dense growth: the added pattern vertex/edge IDs are
				// exactly the parent's caps (patterns are built by
				// Clone+Add), so the embedding extends by appending.
				newEmb := emb.Clone()
				if info.nv >= 0 {
					newEmb.Verts = append(newEmb.Verts, newTarget)
				}
				newEmb.Edges = append(newEmb.Edges, te)
				ikey := instanceKey(newEmb)
				if cand.seen[ikey] {
					continue
				}
				cand.seen[ikey] = true
				if info.needsReanchor {
					// The same instance subgraph reached through a
					// different construction: re-anchor the embedding
					// onto the candidate's pattern graph.
					if cand.re == nil {
						maxSteps := d.opts.MaxSteps
						if maxSteps <= 0 {
							maxSteps = 10000
						}
						cand.re = iso.NewReanchorer(cand.pattern, d.g, maxSteps)
					}
					re, ok := cand.re.ReanchorDense(newEmb)
					if !ok {
						continue
					}
					newEmb = re
				}
				cand.embs = append(cand.embs, newEmb)
			}
		}
	}

	var out []rawCand
	for _, code := range order {
		cand := candidates[code]
		out = append(out, rawCand{code: code, pattern: cand.pattern, embs: cand.embs})
	}
	return out
}

// instanceKey identifies an instance by its target vertex and edge
// sets, independent of the pattern-side numbering.
func instanceKey(e iso.DenseEmbedding) string {
	vs := make([]int, 0, len(e.Verts))
	for _, tv := range e.Verts {
		vs = append(vs, int(tv))
	}
	es := make([]int, 0, len(e.Edges))
	for _, te := range e.Edges {
		es = append(es, int(te))
	}
	sort.Ints(vs)
	sort.Ints(es)
	buf := make([]byte, 0, 8*(len(vs)+len(es))+2)
	for _, v := range vs {
		buf = strconv.AppendInt(buf, int64(v), 36)
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for _, e := range es {
		buf = strconv.AppendInt(buf, int64(e), 36)
		buf = append(buf, ',')
	}
	return string(buf)
}

func sortByValue(subs []Substructure) {
	sort.SliceStable(subs, func(i, j int) bool {
		if subs[i].Value != subs[j].Value {
			return subs[i].Value > subs[j].Value
		}
		// Tie-break toward more instances, then larger patterns.
		if subs[i].Instances != subs[j].Instances {
			return subs[i].Instances > subs[j].Instances
		}
		return subs[i].Graph.NumEdges() > subs[j].Graph.NumEdges()
	})
}

func insertCapped(best []Substructure, s Substructure, cap int) []Substructure {
	best = append(best, s)
	sortByValue(best)
	if len(best) > cap {
		best = best[:cap]
	}
	return best
}

// evaluator scores substructures under a principle.
type evaluator struct {
	principle Principle
	numV      int
	numE      int
	vLabels   int
	eLabels   int
	dlG       float64
	sizeG     float64
}

func newEvaluator(g *graph.Graph, p Principle) evaluator {
	ev := evaluator{
		principle: p,
		numV:      g.NumVertices(),
		numE:      g.NumEdges(),
		vLabels:   len(g.VertexLabels()),
		eLabels:   len(g.EdgeLabels()),
	}
	ev.dlG = ev.dl(ev.numV, ev.numE, 0)
	ev.sizeG = float64(ev.numV + ev.numE)
	return ev
}

// dl is the description length (bits) of a graph with v vertices and
// e edges over the global label alphabets; instances supervertices
// add extraInst pointer costs.
func (ev evaluator) dl(v, e, extraInst int) float64 {
	if v <= 0 {
		return 0
	}
	vBits := float64(v) * log2(float64(ev.vLabels)+1)
	eBits := float64(e) * (2*log2(float64(v)) + log2(float64(ev.eLabels)+1))
	instBits := float64(extraInst) * log2(float64(v)+1)
	return vBits + eBits + instBits
}

func log2(x float64) float64 {
	if x <= 1 {
		return 1 // at least one bit per element keeps DL monotone
	}
	return math.Log2(x)
}

// value computes the compression score of a substructure with the
// given non-overlapping instance count.
func (ev evaluator) value(sub *graph.Graph, instances int) float64 {
	vs, es := sub.NumVertices(), sub.NumEdges()
	if instances == 0 {
		return 0
	}
	// Compressed graph: each instance collapses to one supervertex.
	cv := ev.numV - instances*(vs-1)
	ce := ev.numE - instances*es
	if cv < 1 {
		cv = 1
	}
	if ce < 0 {
		ce = 0
	}
	switch ev.principle {
	case MDL:
		den := ev.dl(vs, es, 0) + ev.dl(cv, ce, instances)
		if den <= 0 {
			return 0
		}
		return ev.dlG / den
	default: // Size
		den := float64(vs+es) + float64(cv+ce)
		if den <= 0 {
			return 0
		}
		return ev.sizeG / den
	}
}

// Compress replaces every non-overlapping instance of sub in g with a
// single supervertex carrying the given label; edges between an
// instance and the rest of the graph re-attach to the supervertex.
// It returns the compact compressed graph and the instance count.
// This is the step SUBDUE repeats to build a hierarchical description
// of the graph's regularities.
func Compress(g *graph.Graph, sub *graph.Graph, label string, maxInstances, maxSteps int) (*graph.Graph, int) {
	insts := iso.FindNonOverlapping(sub, g, maxInstances, maxSteps)
	if len(insts) == 0 {
		c, _ := g.Compact()
		return c, 0
	}
	// Map each covered target vertex to its instance index.
	owner := make(map[graph.VertexID]int)
	coveredEdge := make(map[graph.EdgeID]bool)
	for i, emb := range insts {
		for _, tv := range emb.Vertices {
			owner[tv] = i
		}
		for _, te := range emb.Edges {
			coveredEdge[te] = true
		}
	}
	out := graph.New(g.Name + "+compressed")
	remap := make(map[graph.VertexID]graph.VertexID)
	super := make([]graph.VertexID, len(insts))
	for i := range insts {
		super[i] = out.AddVertex(label)
	}
	for _, v := range g.Vertices() {
		if i, ok := owner[v]; ok {
			remap[v] = super[i]
			continue
		}
		remap[v] = out.AddVertex(g.Vertex(v).Label)
	}
	for _, e := range g.Edges() {
		if coveredEdge[e] {
			continue
		}
		ed := g.Edge(e)
		from, to := remap[ed.From], remap[ed.To]
		if from == to {
			// Edge internal to one instance that the pattern did not
			// cover (parallel duplicate): drop it, compression keeps
			// the description minimal.
			continue
		}
		out.AddEdge(from, to, ed.Label)
	}
	return out, len(insts)
}

// HierarchyLevel is one pass of hierarchical discovery.
type HierarchyLevel struct {
	Sub        Substructure
	Instances  int
	GraphAfter *graph.Graph
}

// DiscoverHierarchy runs `passes` discovery+compression rounds,
// labeling pass i's best substructure "SUB_i", the way SUBDUE builds
// a hierarchical description of structural regularities.
func DiscoverHierarchy(g *graph.Graph, opts Options, passes int) []HierarchyLevel {
	var levels []HierarchyLevel
	cur := g
	for i := 0; i < passes; i++ {
		res := Discover(cur, opts)
		if len(res.Best) == 0 {
			break
		}
		best := res.Best[0]
		compressed, n := Compress(cur, best.Graph, fmt.Sprintf("SUB_%d", i+1), opts.MaxInstances, opts.MaxSteps)
		if n < 2 {
			break
		}
		levels = append(levels, HierarchyLevel{Sub: best, Instances: n, GraphAfter: compressed})
		cur = compressed
	}
	return levels
}

// Render draws a substructure as an indented adjacency list, the
// textual analogue of the paper's Figures 1–3.
func Render(s Substructure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "substructure (%d vertices, %d edges, %d instances, value %.4f)\n",
		s.Graph.NumVertices(), s.Graph.NumEdges(), s.Instances, s.Value)
	b.WriteString(s.Graph.Dump())
	return b.String()
}
