package subdue

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// renderDiscovery serialises the observable outcome of a discovery
// run for byte-for-byte equivalence checks.
func renderDiscovery(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "considered=%d generated=%d\n", r.Considered, r.Generated)
	for i, s := range r.Best {
		fmt.Fprintf(&b, "best %d instances=%d value=%.12g\n%s",
			i, s.Instances, s.Value, s.Graph.Dump())
	}
	return b.String()
}

// TestDiscoverDeterministicAcrossParallelism asserts that the beam
// search reports identical substructures, scores and counters at
// Parallelism 1, 4 and GOMAXPROCS. Run under -race this also
// exercises the concurrent beam evaluation for safety.
func TestDiscoverDeterministicAcrossParallelism(t *testing.T) {
	g := planted(12, 20, 3)
	for _, principle := range []Principle{MDL, Size} {
		t.Run(principle.String(), func(t *testing.T) {
			var want string
			for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				res := Discover(g, Options{
					Principle:    principle,
					BeamWidth:    4,
					MaxBest:      4,
					Limit:        15,
					MaxInstances: 100,
					MaxSteps:     100000,
					MinInstances: 2,
					Parallelism:  p,
				})
				got := renderDiscovery(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("parallelism %d diverged from serial result:\n--- serial ---\n%s\n--- p=%d ---\n%s",
						p, want, p, got)
				}
			}
		})
	}
}
