package subdue

import (
	"math/rand"
	"strings"
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// planted builds a graph with n copies of a 3-edge "bowtie-ish"
// motif (a->b, a->c, b->c) plus random noise edges.
func planted(n, noise int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("planted")
	for i := 0; i < n; i++ {
		a := g.AddVertex("*")
		b := g.AddVertex("*")
		c := g.AddVertex("*")
		g.AddEdge(a, b, "w1")
		g.AddEdge(a, c, "w1")
		g.AddEdge(b, c, "w2")
	}
	vs := g.Vertices()
	for i := 0; i < noise; i++ {
		u := vs[rng.Intn(len(vs))]
		v := vs[rng.Intn(len(vs))]
		if u == v {
			continue
		}
		g.AddEdge(u, v, "w9")
	}
	return g
}

func TestDiscoverFindsPlantedMotif(t *testing.T) {
	g := planted(10, 5, 1)
	res := Discover(g, Options{
		Principle:    Size,
		BeamWidth:    6,
		MaxBest:      5,
		MaxInstances: 100,
		MaxSteps:     100000,
		MinInstances: 2,
	})
	if len(res.Best) == 0 {
		t.Fatal("no substructures found")
	}
	motif := graph.New("motif")
	a := motif.AddVertex("*")
	b := motif.AddVertex("*")
	c := motif.AddVertex("*")
	motif.AddEdge(a, b, "w1")
	motif.AddEdge(a, c, "w1")
	motif.AddEdge(b, c, "w2")
	found := false
	for _, s := range res.Best {
		if iso.Isomorphic(s.Graph, motif) {
			found = true
			if s.Instances < 8 {
				t.Errorf("motif instances = %d, want >= 8", s.Instances)
			}
		}
	}
	if !found {
		for _, s := range res.Best {
			t.Logf("best: %s", s)
		}
		t.Fatal("planted motif not among best substructures")
	}
}

func TestMDLPrefersFrequentSmallPatterns(t *testing.T) {
	// The paper's central MDL finding: with uniform vertex labels,
	// MDL favours very frequent small substructures over larger rare
	// ones. 40 copies of a 1-edge pattern vs 2 copies of a 5-edge
	// chain.
	g := graph.New("g")
	for i := 0; i < 40; i++ {
		u := g.AddVertex("*")
		v := g.AddVertex("*")
		g.AddEdge(u, v, "common")
	}
	for i := 0; i < 2; i++ {
		prev := g.AddVertex("*")
		for j := 0; j < 5; j++ {
			next := g.AddVertex("*")
			g.AddEdge(prev, next, "rare")
			prev = next
		}
	}
	res := Discover(g, Options{
		Principle: MDL, BeamWidth: 4, MaxBest: 3,
		MaxInstances: 200, MaxSteps: 100000, MinInstances: 2,
	})
	if len(res.Best) == 0 {
		t.Fatal("no substructures found")
	}
	top := res.Best[0]
	if top.Graph.NumEdges() > 2 {
		t.Errorf("MDL top pattern has %d edges; expected a small frequent pattern", top.Graph.NumEdges())
	}
	if top.Instances < 20 {
		t.Errorf("MDL top pattern instances = %d; expected the frequent one", top.Instances)
	}
}

func TestSizePrefersLargerPatterns(t *testing.T) {
	// Size principle on the same graph should rank the long chain
	// higher relative to MDL (the paper's qualitative contrast).
	g := graph.New("g")
	for i := 0; i < 12; i++ {
		u := g.AddVertex("*")
		v := g.AddVertex("*")
		g.AddEdge(u, v, "common")
	}
	for i := 0; i < 3; i++ {
		prev := g.AddVertex("*")
		for j := 0; j < 6; j++ {
			next := g.AddVertex("*")
			g.AddEdge(prev, next, "rare")
			prev = next
		}
	}
	res := Discover(g, Options{
		Principle: Size, BeamWidth: 8, MaxBest: 5,
		MaxInstances: 200, MaxSteps: 200000, MinInstances: 2,
	})
	if len(res.Best) == 0 {
		t.Fatal("no substructures found")
	}
	maxEdges := 0
	for _, s := range res.Best {
		if s.Graph.NumEdges() > maxEdges {
			maxEdges = s.Graph.NumEdges()
		}
	}
	if maxEdges < 3 {
		t.Errorf("Size principle best patterns max edges = %d, want >= 3", maxEdges)
	}
}

func TestCompressReplacesInstances(t *testing.T) {
	g := planted(5, 0, 2)
	motif := graph.New("motif")
	a := motif.AddVertex("*")
	b := motif.AddVertex("*")
	c := motif.AddVertex("*")
	motif.AddEdge(a, b, "w1")
	motif.AddEdge(a, c, "w1")
	motif.AddEdge(b, c, "w2")
	compressed, n := Compress(g, motif, "SUB_1", 0, 0)
	if n != 5 {
		t.Fatalf("compressed instances = %d, want 5", n)
	}
	if compressed.NumVertices() != 5 {
		t.Fatalf("compressed vertices = %d, want 5 supervertices", compressed.NumVertices())
	}
	if compressed.NumEdges() != 0 {
		t.Fatalf("compressed edges = %d, want 0", compressed.NumEdges())
	}
	for _, v := range compressed.Vertices() {
		if compressed.Vertex(v).Label != "SUB_1" {
			t.Fatalf("unexpected label %q", compressed.Vertex(v).Label)
		}
	}
}

func TestCompressKeepsCrossEdges(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	g.AddEdge(a, b, "in") // the instance
	g.AddEdge(b, c, "out")
	pat := graph.New("p")
	pa := pat.AddVertex("*")
	pb := pat.AddVertex("*")
	pat.AddEdge(pa, pb, "in")
	compressed, n := Compress(g, pat, "S", 0, 0)
	if n != 1 {
		t.Fatalf("instances = %d, want 1", n)
	}
	// Supervertex + c remain, with the "out" edge re-attached.
	if compressed.NumVertices() != 2 || compressed.NumEdges() != 1 {
		t.Fatalf("compressed = %s, want 2 vertices / 1 edge", compressed)
	}
	e := compressed.Edge(compressed.Edges()[0])
	if e.Label != "out" {
		t.Fatalf("surviving edge label = %q, want out", e.Label)
	}
	if compressed.Vertex(e.From).Label != "S" {
		t.Fatalf("edge should leave the supervertex, leaves %q", compressed.Vertex(e.From).Label)
	}
}

func TestDiscoverHierarchy(t *testing.T) {
	g := planted(8, 3, 3)
	levels := DiscoverHierarchy(g, Options{
		Principle: MDL, BeamWidth: 4, MaxBest: 3,
		MaxInstances: 100, MaxSteps: 100000,
	}, 3)
	if len(levels) == 0 {
		t.Fatal("hierarchy has no levels")
	}
	prevSize := g.NumVertices() + g.NumEdges()
	for i, l := range levels {
		size := l.GraphAfter.NumVertices() + l.GraphAfter.NumEdges()
		if size >= prevSize {
			t.Errorf("level %d did not shrink the graph: %d -> %d", i, prevSize, size)
		}
		prevSize = size
	}
}

func TestRender(t *testing.T) {
	g := planted(2, 0, 4)
	res := Discover(g, Options{Principle: MDL, BeamWidth: 4, MaxBest: 1, MaxInstances: 10, MaxSteps: 10000})
	if len(res.Best) == 0 {
		t.Fatal("no result")
	}
	out := Render(res.Best[0])
	if !strings.Contains(out, "instances") || !strings.Contains(out, "->") {
		t.Fatalf("render output unexpected:\n%s", out)
	}
}

func TestDiscoverRespectsMaxVertices(t *testing.T) {
	g := planted(6, 0, 5)
	res := Discover(g, Options{
		Principle: Size, BeamWidth: 6, MaxBest: 5, MaxVertices: 2,
		MaxInstances: 100, MaxSteps: 100000,
	})
	for _, s := range res.Best {
		if s.Graph.NumVertices() > 2 {
			t.Fatalf("substructure exceeds MaxVertices: %s", s)
		}
	}
}
