package engine

import (
	"context"
	"errors"
	"testing"
)

// Pool gauges are process-global, so assertions are delta-based and
// check the settle-to-zero invariant rather than absolute values.
func TestPoolGaugesSettle(t *testing.T) {
	q0, i0, t0 := tasksQueued.Value(), tasksInFlight.Value(), tasksTotal.Value()

	got := Map(4, 50, func(i int) int { return i * i })
	if len(got) != 50 || got[7] != 49 {
		t.Fatalf("Map result wrong: len=%d", len(got))
	}
	if d := tasksTotal.Value() - t0; d != 50 {
		t.Fatalf("tasks_total delta = %d, want 50", d)
	}
	if tasksQueued.Value() != q0 || tasksInFlight.Value() != i0 {
		t.Fatalf("gauges did not settle: queued %d->%d inflight %d->%d",
			q0, tasksQueued.Value(), i0, tasksInFlight.Value())
	}
}

func TestPoolGaugesSettleOnError(t *testing.T) {
	q0, i0 := tasksQueued.Value(), tasksInFlight.Value()
	boom := errors.New("boom")
	for _, p := range []int{1, 4} {
		_, err := MapCtx(context.Background(), p, 64, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("p=%d: err = %v, want boom", p, err)
		}
		if tasksQueued.Value() != q0 || tasksInFlight.Value() != i0 {
			t.Fatalf("p=%d: gauges did not settle after error: queued %d->%d inflight %d->%d",
				p, q0, tasksQueued.Value(), i0, tasksInFlight.Value())
		}
	}
}

func TestPoolGaugesSettleOnCancel(t *testing.T) {
	q0, i0 := tasksQueued.Value(), tasksInFlight.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 4, 32, func(context.Context, int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("expected cancellation error")
	}
	if tasksQueued.Value() != q0 || tasksInFlight.Value() != i0 {
		t.Fatalf("gauges did not settle after cancel: queued %d->%d inflight %d->%d",
			q0, tasksQueued.Value(), i0, tasksInFlight.Value())
	}
}
