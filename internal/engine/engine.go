// Package engine is the shared concurrent execution layer of the
// mining pipelines: a context-aware worker pool with bounded
// parallelism, deterministic input-ordered result merging, shared
// work accounting backed by atomic counters, and cancellation on
// abort.
//
// Every miner in this repository fans independent units of work —
// subgraph-isomorphism tests per (candidate × transaction) in FSG,
// beam-candidate extension in SUBDUE, the m random partitionings of
// Algorithm 1, per-day graph construction in the Section 6 temporal
// pipeline — through this package. Results are merged in input order,
// so mining output is byte-for-byte identical regardless of the
// worker count.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"tnkd/internal/obs"
)

// Pool gauges on the process-wide registry: how much work is queued
// behind the pool, how much is executing right now, and how much has
// ever completed. Every MapCtx call (and Map, which wraps it)
// contributes; early error/cancellation exits return their unclaimed
// remainder so the gauges settle back to zero.
var (
	tasksQueued   = obs.Default.Gauge("tnd_engine_tasks_queued")
	tasksInFlight = obs.Default.Gauge("tnd_engine_tasks_inflight")
	tasksTotal    = obs.Default.Counter("tnd_engine_tasks_total")
)

// taskMeter tracks one MapCtx call's contribution to the pool gauges.
type taskMeter struct {
	n       int
	started atomic.Int64
}

func newTaskMeter(n int) *taskMeter {
	tasksQueued.Add(int64(n))
	return &taskMeter{n: n}
}

// start moves one task from queued to in-flight.
func (m *taskMeter) start() {
	m.started.Add(1)
	tasksQueued.Add(-1)
	tasksInFlight.Add(1)
}

// finish retires one in-flight task.
func (m *taskMeter) finish() {
	tasksInFlight.Add(-1)
	tasksTotal.Inc()
}

// close returns whatever never started to the queue gauge.
func (m *taskMeter) close() {
	tasksQueued.Add(m.started.Load() - int64(m.n))
}

// Parallelism normalises a user-supplied worker count: values <= 0
// select runtime.GOMAXPROCS(0) (one worker per schedulable CPU), and
// any positive value is used as given.
func Parallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Map runs fn(i) for every i in [0, n) on at most p workers (after
// Parallelism normalisation) and returns the results in input order.
// With p == 1 or n <= 1 it runs inline with no goroutines, so a
// serial run has zero scheduling overhead and is trivially identical
// to the parallel one.
func Map[T any](p, n int, fn func(i int) T) []T {
	res, _ := MapCtx(context.Background(), p, n, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	return res
}

// MapCtx is Map with cancellation: fn receives a context that is
// cancelled as soon as any call returns a non-nil error (or the
// parent context is cancelled), remaining indices are skipped, and
// the first error in input order is returned. On success every slot
// of the result is filled and the slice is in input order.
func MapCtx[T any](ctx context.Context, p, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	p = Parallelism(p)
	if p > n {
		p = n
	}
	results := make([]T, n)
	meter := newTaskMeter(n)
	defer meter.close()
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			meter.start()
			v, err := fn(ctx, i)
			meter.finish()
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   atomic.Int64 // next index to claim
		wg     sync.WaitGroup
		errMu  sync.Mutex
		firstI = n // input index of the earliest error seen
		firstE error
	)
	report := func(i int, err error) {
		// Cancellation fallout is not an error source: once a real
		// error has been reported (report precedes cancel, so firstE
		// is set before wctx reads cancelled), a later fn returning
		// the group's own context.Canceled from a lower index must
		// not mask it. Parent-context cancellation is surfaced by the
		// ctx.Err() check after Wait.
		if errors.Is(err, context.Canceled) && wctx.Err() != nil && ctx.Err() == nil {
			return
		}
		errMu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		errMu.Unlock()
		cancel()
	}
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if wctx.Err() != nil {
					return
				}
				meter.start()
				v, err := fn(wctx, i)
				meter.finish()
				if err != nil {
					report(i, err)
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	// The parent context may have been cancelled after the last claim.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Counter is a shared atomic tally (iso tests performed, budgeted
// aborts observed, candidates generated, ...). The zero value is
// ready to use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int) { c.n.Add(int64(d)) }

// Load returns the current value.
func (c *Counter) Load() int { return int(c.n.Load()) }
