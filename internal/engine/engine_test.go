package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelismNormalisation(t *testing.T) {
	if got := Parallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(7); got != 7 {
		t.Errorf("Parallelism(7) = %d, want 7", got)
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, p := range []int{1, 2, 4, 16, 0} {
		got := Map(p, n, func(i int) int { return i * i })
		if len(got) != n {
			t.Fatalf("p=%d: got %d results, want %d", p, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: result[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map over 0 items = %v, want nil", got)
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const p = 3
	var cur, max atomic.Int64
	Map(p, 64, func(i int) int {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		defer cur.Add(-1)
		runtime.Gosched()
		return i
	})
	if m := max.Load(); m > p {
		t.Errorf("observed %d concurrent workers, want <= %d", m, p)
	}
}

func TestMapCtxFirstErrorInInputOrder(t *testing.T) {
	errBoom := errors.New("boom")
	// Every odd index fails; the reported error must be the one with
	// the smallest input index regardless of scheduling.
	_, err := MapCtx(context.Background(), 8, 50, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("index %d: %w", i, errBoom)
		}
		return i, nil
	})
	if err == nil || err.Error() != "index 1: boom" {
		t.Errorf("err = %v, want index 1: boom", err)
	}
}

func TestMapCtxCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 4, 10, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMapCtxCancellationSkipsRemainingWork(t *testing.T) {
	var calls atomic.Int64
	_, err := MapCtx(context.Background(), 1, 1000, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if c := calls.Load(); c != 4 {
		t.Errorf("fn called %d times after serial abort at index 3, want 4", c)
	}
}

// TestMapCtxRealErrorNotMaskedByCancellation: a worker observing the
// group's own cancellation (after another worker's real error) must
// not report context.Canceled from a lower input index and mask the
// real error.
func TestMapCtxRealErrorNotMaskedByCancellation(t *testing.T) {
	errBoom := errors.New("boom")
	release := make(chan struct{})
	_, err := MapCtx(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			// Cooperatively honor cancellation, like a well-behaved fn.
			<-release
			<-ctx.Done()
			return 0, ctx.Err()
		}
		defer close(release)
		return 0, fmt.Errorf("index %d: %w", i, errBoom)
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want the real error from index 1, not cancellation fallout", err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	Map(4, 100, func(i int) struct{} {
		c.Add(2)
		return struct{}{}
	})
	if c.Load() != 200 {
		t.Errorf("Counter = %d, want 200", c.Load())
	}
}
