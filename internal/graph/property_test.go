package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyOpSequence drives a random operation sequence against
// the graph and a naive reference model, checking counts, degrees and
// component invariants stay consistent throughout.
func TestPropertyOpSequence(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New("prop")
		type refEdge struct {
			from, to VertexID
			alive    bool
		}
		var refVerts []bool
		var refEdges []refEdge

		aliveVertices := func() []VertexID {
			var vs []VertexID
			for i, alive := range refVerts {
				if alive {
					vs = append(vs, VertexID(i))
				}
			}
			return vs
		}

		for _, op := range opsRaw {
			switch op % 4 {
			case 0: // add vertex
				g.AddVertex("*")
				refVerts = append(refVerts, true)
			case 1: // add edge
				vs := aliveVertices()
				if len(vs) < 2 {
					continue
				}
				a := vs[rng.Intn(len(vs))]
				b := vs[rng.Intn(len(vs))]
				g.AddEdge(a, b, "e")
				refEdges = append(refEdges, refEdge{a, b, true})
			case 2: // remove edge
				if len(refEdges) == 0 {
					continue
				}
				i := rng.Intn(len(refEdges))
				g.RemoveEdge(EdgeID(i))
				refEdges[i].alive = false
			case 3: // remove vertex
				vs := aliveVertices()
				if len(vs) == 0 {
					continue
				}
				v := vs[rng.Intn(len(vs))]
				g.RemoveVertex(v)
				refVerts[v] = false
				for i := range refEdges {
					if refEdges[i].alive && (refEdges[i].from == v || refEdges[i].to == v) {
						refEdges[i].alive = false
					}
				}
			}
		}

		// Invariants.
		nv, ne := 0, 0
		for _, alive := range refVerts {
			if alive {
				nv++
			}
		}
		outDeg := map[VertexID]int{}
		inDeg := map[VertexID]int{}
		for _, e := range refEdges {
			if e.alive {
				ne++
				outDeg[e.from]++
				inDeg[e.to]++
			}
		}
		if g.NumVertices() != nv || g.NumEdges() != ne {
			return false
		}
		for i, alive := range refVerts {
			v := VertexID(i)
			if g.HasVertex(v) != alive {
				return false
			}
			if alive && (g.OutDegree(v) != outDeg[v] || g.InDegree(v) != inDeg[v]) {
				return false
			}
		}
		// Compact preserves counts.
		c, _ := g.Compact()
		if c.NumVertices() != nv || c.NumEdges() != ne {
			return false
		}
		// Component vertex sets partition the live vertices.
		total := 0
		for _, comp := range g.WeaklyConnectedComponents() {
			total += len(comp)
		}
		return total == nv
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
