package graph

import (
	"reflect"
	"sync"
	"testing"
)

func buildLabeled() (*Graph, VertexID, VertexID, VertexID) {
	g := New("t")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("A")
	g.AddEdge(a, b, "x") // e0
	g.AddEdge(a, b, "y") // e1
	g.AddEdge(a, b, "x") // e2 parallel duplicate
	g.AddEdge(b, c, "x") // e3
	return g, a, b, c
}

func TestLabeledLookups(t *testing.T) {
	g, a, b, c := buildLabeled()
	if got := g.OutEdgesLabeled(a, "x"); !reflect.DeepEqual(got, []EdgeID{0, 2}) {
		t.Errorf("OutEdgesLabeled(a, x) = %v, want [0 2]", got)
	}
	if got := g.OutEdgesLabeled(a, "y"); !reflect.DeepEqual(got, []EdgeID{1}) {
		t.Errorf("OutEdgesLabeled(a, y) = %v, want [1]", got)
	}
	if got := g.InEdgesLabeled(b, "x"); !reflect.DeepEqual(got, []EdgeID{0, 2}) {
		t.Errorf("InEdgesLabeled(b, x) = %v, want [0 2]", got)
	}
	if got := g.OutEdgesLabeled(c, "x"); got != nil {
		t.Errorf("OutEdgesLabeled(c, x) = %v, want nil", got)
	}
	if got := g.VerticesWithLabel("A"); !reflect.DeepEqual(got, []VertexID{a, c}) {
		t.Errorf("VerticesWithLabel(A) = %v, want [%d %d]", got, a, c)
	}
	if got := g.VerticesWithLabel("missing"); got != nil {
		t.Errorf("VerticesWithLabel(missing) = %v, want nil", got)
	}
}

func TestLabelIndexInvalidatedOnMutation(t *testing.T) {
	g, a, b, _ := buildLabeled()
	if got := len(g.OutEdgesLabeled(a, "x")); got != 2 {
		t.Fatalf("precondition: %d x-edges, want 2", got)
	}
	g.RemoveEdge(0)
	if got := g.OutEdgesLabeled(a, "x"); !reflect.DeepEqual(got, []EdgeID{2}) {
		t.Errorf("after RemoveEdge: OutEdgesLabeled(a, x) = %v, want [2]", got)
	}
	id := g.AddEdge(a, b, "x")
	if got := g.OutEdgesLabeled(a, "x"); !reflect.DeepEqual(got, []EdgeID{2, id}) {
		t.Errorf("after AddEdge: OutEdgesLabeled(a, x) = %v, want [2 %d]", got, id)
	}
	d := g.AddVertex("D")
	if got := g.VerticesWithLabel("D"); !reflect.DeepEqual(got, []VertexID{d}) {
		t.Errorf("after AddVertex: VerticesWithLabel(D) = %v, want [%d]", got, d)
	}
	g.RemoveVertex(b)
	if got := g.OutEdgesLabeled(a, "x"); got != nil {
		t.Errorf("after RemoveVertex(b): OutEdgesLabeled(a, x) = %v, want nil", got)
	}
	if got := g.VerticesWithLabel("B"); got != nil {
		t.Errorf("after RemoveVertex(b): VerticesWithLabel(B) = %v, want nil", got)
	}
	g.RemoveOrphans()
	if got := g.VerticesWithLabel("D"); got != nil {
		t.Errorf("after RemoveOrphans: VerticesWithLabel(D) = %v, want nil", got)
	}
}

func TestLabelIndexCloneIsIndependent(t *testing.T) {
	g, a, _, _ := buildLabeled()
	g.OutEdgesLabeled(a, "x") // force index build
	c := g.Clone()
	c.RemoveEdge(0)
	if got := len(g.OutEdgesLabeled(a, "x")); got != 2 {
		t.Errorf("mutating a clone changed the original index: %d x-edges, want 2", got)
	}
	if got := len(c.OutEdgesLabeled(a, "x")); got != 1 {
		t.Errorf("clone OutEdgesLabeled(a, x) has %d edges, want 1", got)
	}
}

// TestLabelIndexConcurrentReads exercises the lazy build from many
// goroutines at once; run with -race to verify safety.
func TestLabelIndexConcurrentReads(t *testing.T) {
	g, a, b, _ := buildLabeled()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if n := len(g.OutEdgesLabeled(a, "x")); n != 2 {
					t.Errorf("OutEdgesLabeled saw %d edges, want 2", n)
					return
				}
				if n := len(g.InEdgesLabeled(b, "y")); n != 1 {
					t.Errorf("InEdgesLabeled saw %d edges, want 1", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}
