package graph

import (
	"fmt"
	"strings"
)

// DegreeStats summarises the in- and out-degree distribution of a
// graph, matching the statistics reported in Section 3 of the paper
// (min/max/average out-degree 1/2373/12; in-degree 1/832/6).
type DegreeStats struct {
	MinOut, MaxOut int
	MinIn, MaxIn   int
	AvgOut, AvgIn  float64
}

// Degrees computes DegreeStats over the live vertices of g. Vertices
// with zero out-degree are excluded from the out-degree minimum (the
// paper computes degree statistics over vertices that act as origins
// or destinations respectively), and symmetrically for in-degree.
func (g *Graph) Degrees() DegreeStats {
	s := DegreeStats{MinOut: -1, MinIn: -1}
	totalOut, totalIn := 0, 0
	nOut, nIn := 0, 0
	for _, v := range g.Vertices() {
		out := g.OutDegree(v)
		in := g.InDegree(v)
		if out > 0 {
			nOut++
			totalOut += out
			if s.MinOut == -1 || out < s.MinOut {
				s.MinOut = out
			}
			if out > s.MaxOut {
				s.MaxOut = out
			}
		}
		if in > 0 {
			nIn++
			totalIn += in
			if s.MinIn == -1 || in < s.MinIn {
				s.MinIn = in
			}
			if in > s.MaxIn {
				s.MaxIn = in
			}
		}
	}
	if nOut > 0 {
		s.AvgOut = float64(totalOut) / float64(nOut)
	}
	if nIn > 0 {
		s.AvgIn = float64(totalIn) / float64(nIn)
	}
	if s.MinOut == -1 {
		s.MinOut = 0
	}
	if s.MinIn == -1 {
		s.MinIn = 0
	}
	return s
}

// String renders the degree statistics in the form used by the paper.
func (d DegreeStats) String() string {
	return fmt.Sprintf("out-degree min/max/avg = %d/%d/%.0f, in-degree min/max/avg = %d/%d/%.0f",
		d.MinOut, d.MaxOut, d.AvgOut, d.MinIn, d.MaxIn, d.AvgIn)
}

// TransactionStats summarises a set of graph transactions the way
// Tables 2 and 3 of the paper do.
type TransactionStats struct {
	NumTransactions     int
	DistinctEdgeLabels  int
	DistinctVertexLabel int
	AvgEdges            float64
	AvgVertices         float64
	MaxEdges            int
	MaxVertices         int
	// SizeHistogram counts transactions whose edge count falls in
	// each bucket [Lo, Hi).
	SizeHistogram []SizeBucket
}

// SizeBucket is one row of the transaction-size histogram in Table 2.
type SizeBucket struct {
	Lo, Hi int
	Count  int
}

// DefaultSizeBuckets are the edge-count buckets used in Table 2 of
// the paper: 1-10, 10-100, 100-1000, 1000-2000, 2000-5000.
var DefaultSizeBuckets = []SizeBucket{
	{Lo: 1, Hi: 10}, {Lo: 10, Hi: 100}, {Lo: 100, Hi: 1000},
	{Lo: 1000, Hi: 2000}, {Lo: 2000, Hi: 5000},
}

// SummarizeTransactions computes Table 2/3-style statistics over a
// set of graph transactions.
func SummarizeTransactions(txns []*Graph) TransactionStats {
	st := TransactionStats{NumTransactions: len(txns)}
	edgeLabels := make(map[string]bool)
	vertexLabels := make(map[string]bool)
	totalE, totalV := 0, 0
	st.SizeHistogram = make([]SizeBucket, len(DefaultSizeBuckets))
	copy(st.SizeHistogram, DefaultSizeBuckets)
	for _, t := range txns {
		for _, l := range t.EdgeLabels() {
			edgeLabels[l] = true
		}
		for _, l := range t.VertexLabels() {
			vertexLabels[l] = true
		}
		e, v := t.NumEdges(), t.NumVertices()
		totalE += e
		totalV += v
		if e > st.MaxEdges {
			st.MaxEdges = e
		}
		if v > st.MaxVertices {
			st.MaxVertices = v
		}
		for i := range st.SizeHistogram {
			b := &st.SizeHistogram[i]
			if e >= b.Lo && e < b.Hi {
				b.Count++
			}
		}
	}
	st.DistinctEdgeLabels = len(edgeLabels)
	st.DistinctVertexLabel = len(vertexLabels)
	if len(txns) > 0 {
		st.AvgEdges = float64(totalE) / float64(len(txns))
		st.AvgVertices = float64(totalV) / float64(len(txns))
	}
	return st
}

// String renders the statistics in the row format of Table 2.
func (s TransactionStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Number of Input Transactions: %d\n", s.NumTransactions)
	fmt.Fprintf(&b, "Number of Distinct Edge Labels: %d\n", s.DistinctEdgeLabels)
	fmt.Fprintf(&b, "Number of Distinct Vertex Labels: %d\n", s.DistinctVertexLabel)
	fmt.Fprintf(&b, "Average Number of Edges In a Transaction: %.0f\n", s.AvgEdges)
	fmt.Fprintf(&b, "Average Number of Vertices In a Transaction: %.0f\n", s.AvgVertices)
	fmt.Fprintf(&b, "Max Number of Edges In a Transaction: %d\n", s.MaxEdges)
	fmt.Fprintf(&b, "Max Number of Vertices In a Transaction: %d\n", s.MaxVertices)
	for _, bucket := range s.SizeHistogram {
		fmt.Fprintf(&b, "The Number of Graph Transactions with Size between %d to %d: %d\n",
			bucket.Lo, bucket.Hi, bucket.Count)
	}
	return b.String()
}
