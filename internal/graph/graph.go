// Package graph implements the labeled directed multigraph used to
// model transportation networks: vertices are locations (origins and
// destinations), edges are shipments from origin to destination, and
// both carry string labels. Multiple edges between the same ordered
// vertex pair represent repeated shipments on the same lane.
//
// The representation follows Section 3 of Jiang et al. (ICDE 2005):
// the six-month origin–destination dataset forms one large directed
// multigraph whose edge labels come from binned shipment attributes
// (gross weight, transit hours, or total distance).
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// VertexID identifies a vertex within a Graph. IDs are assigned
// densely from zero in insertion order and are stable for the life of
// the graph (removal tombstones the slot rather than renumbering).
type VertexID int

// EdgeID identifies an edge within a Graph, assigned like VertexIDs.
type EdgeID int

// Vertex is a labeled graph vertex.
type Vertex struct {
	ID    VertexID
	Label string
}

// Edge is a labeled directed edge from From to To.
type Edge struct {
	ID    EdgeID
	From  VertexID
	To    VertexID
	Label string
}

// Graph is a mutable labeled directed multigraph. The zero value is
// not ready to use; call New.
type Graph struct {
	// Name identifies the graph in reports (e.g. "OD_GW").
	Name string

	vertices []Vertex
	edges    []Edge

	vertexAlive []bool
	edgeAlive   []bool

	out [][]EdgeID // per-vertex outgoing edge IDs
	in  [][]EdgeID // per-vertex incoming edge IDs

	numVertices int
	numEdges    int

	// idx caches the per-label adjacency index. It is built lazily on
	// first labeled lookup and dropped on any mutation. The pointer is
	// atomic so concurrent read-only users (parallel mining workers)
	// can share one graph: racing builders construct identical
	// indices, and whichever Store lands last wins.
	idx atomic.Pointer[labelIndex]
}

// labelIndex accelerates label-constrained lookups: live outgoing and
// incoming edges grouped by edge label per vertex, and live vertices
// grouped by vertex label. All slices are in ascending ID order.
type labelIndex struct {
	out             []map[string][]EdgeID
	in              []map[string][]EdgeID
	verticesByLabel map[string][]VertexID
}

// labelIdx returns the current index, building it if needed.
func (g *Graph) labelIdx() *labelIndex {
	if idx := g.idx.Load(); idx != nil {
		return idx
	}
	idx := &labelIndex{
		out:             make([]map[string][]EdgeID, len(g.vertices)),
		in:              make([]map[string][]EdgeID, len(g.vertices)),
		verticesByLabel: make(map[string][]VertexID),
	}
	for i, alive := range g.vertexAlive {
		if alive {
			v := &g.vertices[i]
			idx.verticesByLabel[v.Label] = append(idx.verticesByLabel[v.Label], v.ID)
		}
	}
	for i, alive := range g.edgeAlive {
		if !alive {
			continue
		}
		e := &g.edges[i]
		if idx.out[e.From] == nil {
			idx.out[e.From] = make(map[string][]EdgeID)
		}
		idx.out[e.From][e.Label] = append(idx.out[e.From][e.Label], e.ID)
		if idx.in[e.To] == nil {
			idx.in[e.To] = make(map[string][]EdgeID)
		}
		idx.in[e.To][e.Label] = append(idx.in[e.To][e.Label], e.ID)
	}
	g.idx.Store(idx)
	return idx
}

// invalidateIdx drops the cached label index after a mutation.
func (g *Graph) invalidateIdx() { g.idx.Store(nil) }

// OutEdgesLabeled returns the live outgoing edges of v carrying the
// given label, in ascending ID order.
func (g *Graph) OutEdgesLabeled(v VertexID, label string) []EdgeID {
	if m := g.labelIdx().out[v]; m != nil {
		return m[label]
	}
	return nil
}

// InEdgesLabeled returns the live incoming edges of v carrying the
// given label, in ascending ID order.
func (g *Graph) InEdgesLabeled(v VertexID, label string) []EdgeID {
	if m := g.labelIdx().in[v]; m != nil {
		return m[label]
	}
	return nil
}

// VerticesWithLabel returns the live vertices carrying the given
// label, in ascending ID order.
func (g *Graph) VerticesWithLabel(label string) []VertexID {
	return g.labelIdx().verticesByLabel[label]
}

// VertexCap returns an exclusive upper bound on vertex IDs in g
// (tombstoned slots included), for sizing dense per-vertex arrays.
func (g *Graph) VertexCap() int { return len(g.vertices) }

// EdgeCap returns an exclusive upper bound on edge IDs in g
// (tombstoned slots included), for sizing dense per-edge arrays.
func (g *Graph) EdgeCap() int { return len(g.edges) }

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddVertex adds a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	id := VertexID(len(g.vertices))
	g.vertices = append(g.vertices, Vertex{ID: id, Label: label})
	g.vertexAlive = append(g.vertexAlive, true)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.numVertices++
	g.invalidateIdx()
	return id
}

// AddEdge adds a directed edge from -> to with the given label and
// returns its ID. Both endpoints must exist and be alive.
func (g *Graph) AddEdge(from, to VertexID, label string) EdgeID {
	if !g.HasVertex(from) || !g.HasVertex(to) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with missing endpoint", from, to))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Label: label})
	g.edgeAlive = append(g.edgeAlive, true)
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.numEdges++
	g.invalidateIdx()
	return id
}

// HasVertex reports whether id refers to a live vertex.
func (g *Graph) HasVertex(id VertexID) bool {
	return id >= 0 && int(id) < len(g.vertices) && g.vertexAlive[id]
}

// HasEdge reports whether id refers to a live edge.
func (g *Graph) HasEdge(id EdgeID) bool {
	return id >= 0 && int(id) < len(g.edges) && g.edgeAlive[id]
}

// Vertex returns the vertex with the given ID. It panics if the
// vertex does not exist or has been removed.
func (g *Graph) Vertex(id VertexID) Vertex {
	if !g.HasVertex(id) {
		panic(fmt.Sprintf("graph: Vertex(%d) missing", id))
	}
	return g.vertices[id]
}

// Edge returns the edge with the given ID. It panics if the edge does
// not exist or has been removed.
func (g *Graph) Edge(id EdgeID) Edge {
	if !g.HasEdge(id) {
		panic(fmt.Sprintf("graph: Edge(%d) missing", id))
	}
	return g.edges[id]
}

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Vertices returns the IDs of all live vertices in ascending order.
func (g *Graph) Vertices() []VertexID {
	ids := make([]VertexID, 0, g.numVertices)
	for i, alive := range g.vertexAlive {
		if alive {
			ids = append(ids, VertexID(i))
		}
	}
	return ids
}

// Edges returns the IDs of all live edges in ascending order.
func (g *Graph) Edges() []EdgeID {
	ids := make([]EdgeID, 0, g.numEdges)
	for i, alive := range g.edgeAlive {
		if alive {
			ids = append(ids, EdgeID(i))
		}
	}
	return ids
}

// OutEdges returns the live outgoing edge IDs of v.
func (g *Graph) OutEdges(v VertexID) []EdgeID {
	return g.liveEdges(g.out[v])
}

// InEdges returns the live incoming edge IDs of v.
func (g *Graph) InEdges(v VertexID) []EdgeID {
	return g.liveEdges(g.in[v])
}

func (g *Graph) liveEdges(ids []EdgeID) []EdgeID {
	res := make([]EdgeID, 0, len(ids))
	for _, id := range ids {
		if g.edgeAlive[id] {
			res = append(res, id)
		}
	}
	return res
}

// OutDegree returns the number of live outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int {
	n := 0
	for _, id := range g.out[v] {
		if g.edgeAlive[id] {
			n++
		}
	}
	return n
}

// InDegree returns the number of live incoming edges of v.
func (g *Graph) InDegree(v VertexID) int {
	n := 0
	for _, id := range g.in[v] {
		if g.edgeAlive[id] {
			n++
		}
	}
	return n
}

// Degree returns InDegree(v) + OutDegree(v).
func (g *Graph) Degree(v VertexID) int { return g.InDegree(v) + g.OutDegree(v) }

// RemoveEdge removes the edge with the given ID. Removing an already
// removed edge is a no-op.
func (g *Graph) RemoveEdge(id EdgeID) {
	if !g.HasEdge(id) {
		return
	}
	g.edgeAlive[id] = false
	g.numEdges--
	g.invalidateIdx()
}

// RemoveVertex removes v and all edges incident on it.
func (g *Graph) RemoveVertex(v VertexID) {
	if !g.HasVertex(v) {
		return
	}
	for _, id := range g.out[v] {
		g.RemoveEdge(id)
	}
	for _, id := range g.in[v] {
		g.RemoveEdge(id)
	}
	g.vertexAlive[v] = false
	g.numVertices--
	g.invalidateIdx()
}

// RemoveOrphans removes all vertices with no live incident edges.
// It returns the number of vertices removed. This is the "orphaned
// vertex" cleanup step of Algorithm 2 in the paper.
func (g *Graph) RemoveOrphans() int {
	removed := 0
	for i, alive := range g.vertexAlive {
		if alive && g.Degree(VertexID(i)) == 0 {
			g.vertexAlive[i] = false
			g.numVertices--
			removed++
		}
	}
	if removed > 0 {
		g.invalidateIdx()
	}
	return removed
}

// Clone returns a deep copy of g, preserving IDs (including
// tombstoned slots).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:        g.Name,
		vertices:    append([]Vertex(nil), g.vertices...),
		edges:       append([]Edge(nil), g.edges...),
		vertexAlive: append([]bool(nil), g.vertexAlive...),
		edgeAlive:   append([]bool(nil), g.edgeAlive...),
		out:         make([][]EdgeID, len(g.out)),
		in:          make([][]EdgeID, len(g.in)),
		numVertices: g.numVertices,
		numEdges:    g.numEdges,
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// Compact returns a copy of g with dense IDs: tombstoned vertices and
// edges are dropped and the remainder renumbered in ascending order of
// their old IDs. The returned map gives old→new vertex IDs.
func (g *Graph) Compact() (*Graph, map[VertexID]VertexID) {
	c := New(g.Name)
	remap := make(map[VertexID]VertexID, g.numVertices)
	for _, v := range g.Vertices() {
		remap[v] = c.AddVertex(g.vertices[v].Label)
	}
	for _, e := range g.Edges() {
		ed := g.edges[e]
		c.AddEdge(remap[ed.From], remap[ed.To], ed.Label)
	}
	return c, remap
}

// InducedSubgraph returns a new compact graph containing the given
// vertices and every live edge whose endpoints are both in the set.
func (g *Graph) InducedSubgraph(name string, vs []VertexID) *Graph {
	keep := make(map[VertexID]bool, len(vs))
	for _, v := range vs {
		if g.HasVertex(v) {
			keep[v] = true
		}
	}
	sub := New(name)
	remap := make(map[VertexID]VertexID, len(keep))
	sorted := make([]VertexID, 0, len(keep))
	for v := range keep {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, v := range sorted {
		remap[v] = sub.AddVertex(g.vertices[v].Label)
	}
	for _, e := range g.Edges() {
		ed := g.edges[e]
		if keep[ed.From] && keep[ed.To] {
			sub.AddEdge(remap[ed.From], remap[ed.To], ed.Label)
		}
	}
	return sub
}

// Neighbors returns the distinct live vertices adjacent to v in
// either direction, in ascending order.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	seen := make(map[VertexID]bool)
	for _, id := range g.out[v] {
		if g.edgeAlive[id] {
			seen[g.edges[id].To] = true
		}
	}
	for _, id := range g.in[v] {
		if g.edgeAlive[id] {
			seen[g.edges[id].From] = true
		}
	}
	delete(seen, v)
	res := make([]VertexID, 0, len(seen))
	for u := range seen {
		res = append(res, u)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	return res
}

// DedupEdges returns a compact copy of g in which at most one edge
// with a given (from, to, label) triple is retained. Section 6 of the
// paper requires this before running FSG, which operates on graphs,
// not multigraphs. The second result is the number of duplicate edges
// dropped.
func (g *Graph) DedupEdges() (*Graph, int) {
	type key struct {
		from, to VertexID
		label    string
	}
	c := New(g.Name)
	remap := make(map[VertexID]VertexID, g.numVertices)
	for _, v := range g.Vertices() {
		remap[v] = c.AddVertex(g.vertices[v].Label)
	}
	seen := make(map[key]bool)
	dropped := 0
	for _, e := range g.Edges() {
		ed := g.edges[e]
		k := key{remap[ed.From], remap[ed.To], ed.Label}
		if seen[k] {
			dropped++
			continue
		}
		seen[k] = true
		c.AddEdge(k.from, k.to, ed.Label)
	}
	return c, dropped
}

// VertexLabels returns the distinct vertex labels in g.
func (g *Graph) VertexLabels() []string {
	set := make(map[string]bool)
	for _, v := range g.Vertices() {
		set[g.vertices[v].Label] = true
	}
	return sortedKeys(set)
}

// EdgeLabels returns the distinct edge labels in g.
func (g *Graph) EdgeLabels() []string {
	set := make(map[string]bool)
	for _, e := range g.Edges() {
		set[g.edges[e].Label] = true
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String returns a compact one-line summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{V=%d, E=%d}", g.Name, g.numVertices, g.numEdges)
}

// Dump renders the graph as an adjacency listing, one edge per line,
// suitable for debugging and for reproducing the paper's figures in
// text form.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s: %d vertices, %d edges\n", g.Name, g.numVertices, g.numEdges)
	for _, e := range g.Edges() {
		ed := g.edges[e]
		fmt.Fprintf(&b, "  v%d(%s) -[%s]-> v%d(%s)\n",
			ed.From, g.vertices[ed.From].Label, ed.Label, ed.To, g.vertices[ed.To].Label)
	}
	return b.String()
}
