package graph

import (
	"strings"
	"testing"
)

func build(t *testing.T) (*Graph, []VertexID, []EdgeID) {
	t.Helper()
	g := New("t")
	v0 := g.AddVertex("a")
	v1 := g.AddVertex("b")
	v2 := g.AddVertex("c")
	e0 := g.AddEdge(v0, v1, "x")
	e1 := g.AddEdge(v1, v2, "y")
	e2 := g.AddEdge(v0, v1, "x") // parallel edge (multigraph)
	return g, []VertexID{v0, v1, v2}, []EdgeID{e0, e1, e2}
}

func TestAddAndQuery(t *testing.T) {
	g, vs, es := build(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Vertex(vs[0]).Label != "a" {
		t.Error("vertex label wrong")
	}
	if g.Edge(es[1]).Label != "y" {
		t.Error("edge label wrong")
	}
	if got := g.OutDegree(vs[0]); got != 2 {
		t.Errorf("out-degree v0 = %d, want 2 (parallel edges)", got)
	}
	if got := g.InDegree(vs[1]); got != 2 {
		t.Errorf("in-degree v1 = %d, want 2", got)
	}
	if got := g.Degree(vs[1]); got != 3 {
		t.Errorf("degree v1 = %d, want 3", got)
	}
}

func TestRemoveEdgeAndOrphans(t *testing.T) {
	g, vs, es := build(t)
	g.RemoveEdge(es[1])
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if g.HasEdge(es[1]) {
		t.Error("edge should be gone")
	}
	g.RemoveEdge(es[1]) // idempotent
	if g.NumEdges() != 2 {
		t.Error("double removal changed count")
	}
	removed := g.RemoveOrphans()
	if removed != 1 || g.HasVertex(vs[2]) {
		t.Errorf("orphan removal: removed=%d hasV2=%v", removed, g.HasVertex(vs[2]))
	}
}

func TestRemoveVertexCascades(t *testing.T) {
	g, vs, _ := build(t)
	g.RemoveVertex(vs[1])
	if g.NumVertices() != 2 {
		t.Errorf("vertices = %d, want 2", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0 (all incident on v1)", g.NumEdges())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, vs, _ := build(t)
	c := g.Clone()
	c.RemoveVertex(vs[0])
	if g.NumVertices() != 3 {
		t.Error("clone mutation affected original")
	}
	if c.NumVertices() != 2 {
		t.Error("clone removal failed")
	}
}

func TestCompactRenumbers(t *testing.T) {
	g, vs, es := build(t)
	g.RemoveEdge(es[0])
	g.RemoveEdge(es[2])
	g.RemoveVertex(vs[0])
	c, remap := g.Compact()
	if c.NumVertices() != 2 || c.NumEdges() != 1 {
		t.Fatalf("compact = %s", c)
	}
	if _, ok := remap[vs[0]]; ok {
		t.Error("dead vertex in remap")
	}
	// IDs must be dense.
	for i, v := range c.Vertices() {
		if int(v) != i {
			t.Errorf("vertex IDs not dense: %v", c.Vertices())
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, vs, _ := build(t)
	sub := g.InducedSubgraph("sub", []VertexID{vs[0], vs[1]})
	if sub.NumVertices() != 2 {
		t.Fatalf("vertices = %d", sub.NumVertices())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (both parallel x edges)", sub.NumEdges())
	}
}

func TestDedupEdges(t *testing.T) {
	g, _, _ := build(t)
	deduped, dropped := g.DedupEdges()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if deduped.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", deduped.NumEdges())
	}
}

func TestLabels(t *testing.T) {
	g, _, _ := build(t)
	if got := g.VertexLabels(); len(got) != 3 || got[0] != "a" {
		t.Errorf("vertex labels = %v", got)
	}
	if got := g.EdgeLabels(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("edge labels = %v", got)
	}
}

func TestNeighbors(t *testing.T) {
	g, vs, _ := build(t)
	n := g.Neighbors(vs[1])
	if len(n) != 2 {
		t.Errorf("neighbors of v1 = %v, want v0 and v2", n)
	}
}

func TestComponents(t *testing.T) {
	g := New("c")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	g.AddEdge(a, b, "e")
	c := g.AddVertex("*")
	d := g.AddVertex("*")
	g.AddEdge(c, d, "e")
	g.AddVertex("*") // isolated

	comps := g.WeaklyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 {
		t.Errorf("largest component size = %d", len(comps[0]))
	}
	split := g.SplitComponents()
	if len(split) != 3 {
		t.Fatalf("split = %d graphs", len(split))
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	sub := g.InducedSubgraph("s", comps[0])
	if !sub.IsConnected() {
		t.Error("single component should be connected")
	}
}

func TestDegreesStats(t *testing.T) {
	g, _, _ := build(t)
	d := g.Degrees()
	if d.MaxOut != 2 || d.MinOut != 1 {
		t.Errorf("out stats = %+v", d)
	}
	if d.MaxIn != 2 || d.MinIn != 1 {
		t.Errorf("in stats = %+v", d)
	}
}

func TestSummarizeTransactions(t *testing.T) {
	g1 := New("t1")
	a := g1.AddVertex("p")
	b := g1.AddVertex("q")
	g1.AddEdge(a, b, "l1")
	g2 := New("t2")
	c := g2.AddVertex("p")
	d := g2.AddVertex("r")
	for i := 0; i < 15; i++ {
		g2.AddEdge(c, d, "l2")
	}
	st := SummarizeTransactions([]*Graph{g1, g2})
	if st.NumTransactions != 2 {
		t.Errorf("txns = %d", st.NumTransactions)
	}
	if st.DistinctEdgeLabels != 2 || st.DistinctVertexLabel != 3 {
		t.Errorf("labels = %d/%d", st.DistinctEdgeLabels, st.DistinctVertexLabel)
	}
	if st.MaxEdges != 15 || st.AvgEdges != 8 {
		t.Errorf("edges max/avg = %d/%.1f", st.MaxEdges, st.AvgEdges)
	}
	// Histogram: g1 (1 edge) in [1,10), g2 (15) in [10,100).
	if st.SizeHistogram[0].Count != 1 || st.SizeHistogram[1].Count != 1 {
		t.Errorf("histogram = %+v", st.SizeHistogram)
	}
	if !strings.Contains(st.String(), "Number of Input Transactions: 2") {
		t.Error("Table 2 rendering wrong")
	}
}

func TestDumpAndString(t *testing.T) {
	g, _, _ := build(t)
	if !strings.Contains(g.String(), "V=3") {
		t.Error("String() format")
	}
	dump := g.Dump()
	if !strings.Contains(dump, "-[x]->") || !strings.Contains(dump, "(a)") {
		t.Errorf("Dump() format:\n%s", dump)
	}
}

func TestPanicsOnBadAccess(t *testing.T) {
	g := New("p")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing vertex")
		}
	}()
	g.Vertex(0)
}

func TestDOT(t *testing.T) {
	g, _, _ := build(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "v0 [label=\"a\"]", "v0 -> v1 [label=\"x\"]", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
