package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, the usual way to
// visualise the figures' patterns. Vertex names are v<ID>; labels
// escape double quotes.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	for _, v := range g.Vertices() {
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v, g.Vertex(v).Label)
	}
	for _, e := range g.Edges() {
		ed := g.Edge(e)
		fmt.Fprintf(&b, "  v%d -> v%d [label=%q];\n", ed.From, ed.To, ed.Label)
	}
	b.WriteString("}\n")
	return b.String()
}
