package graph

import "sort"

// WeaklyConnectedComponents partitions the live vertices of g into
// weakly connected components (treating every edge as undirected) and
// returns each component as a sorted vertex-ID slice, largest first.
func (g *Graph) WeaklyConnectedComponents() [][]VertexID {
	visited := make(map[VertexID]bool, g.numVertices)
	var comps [][]VertexID
	for _, start := range g.Vertices() {
		if visited[start] {
			continue
		}
		comp := []VertexID{}
		stack := []VertexID{start}
		visited[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// SplitComponents returns one compact graph per weakly connected
// component of g. Section 6 of the paper breaks each disconnected
// per-day graph transaction into multiple connected graph
// transactions before handing them to FSG.
func (g *Graph) SplitComponents() []*Graph {
	comps := g.WeaklyConnectedComponents()
	graphs := make([]*Graph, 0, len(comps))
	for i, comp := range comps {
		name := g.Name
		if len(comps) > 1 {
			name = g.Name + "/" + itoa(i)
		}
		graphs = append(graphs, g.InducedSubgraph(name, comp))
	}
	return graphs
}

// IsConnected reports whether g is weakly connected (and non-empty).
func (g *Graph) IsConnected() bool {
	if g.numVertices == 0 {
		return false
	}
	return len(g.WeaklyConnectedComponents()) == 1
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
