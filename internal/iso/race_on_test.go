//go:build race

package iso

// raceEnabled reports whether the race detector instruments this
// build; wall-clock budget tests skip themselves under it.
const raceEnabled = true
