package iso

import (
	"fmt"
	"sort"
	"strings"

	"tnkd/internal/graph"
)

// Code returns a quasi-canonical string code for g: isomorphic graphs
// always receive equal codes, and non-isomorphic graphs receive
// distinct codes unless the permutation budget is exceeded (large
// automorphism classes), in which case the code is prefixed with "~"
// and callers must fall back to Isomorphic for exact comparison.
// Pattern graphs in this codebase are small (a few dozen vertices at
// most), so the exact path is the overwhelmingly common one.
func Code(g *graph.Graph) string {
	vs := g.Vertices()
	if len(vs) == 0 {
		return "∅"
	}
	classes := refine(g, vs)
	perms := countPerms(classes)
	const permBudget = 50000
	if perms > permBudget {
		return "~" + invariantCode(g, vs)
	}
	best := ""
	enumerate(classes, func(order []graph.VertexID) {
		c := renderCode(g, order)
		if best == "" || c < best {
			best = c
		}
	})
	return best
}

// CodesEqual reports whether two codes certify isomorphism: exact
// codes compare directly; approximate codes (prefix "~") only certify
// inequality when different.
func CodesEqual(a, b string) (equal, exact bool) {
	if strings.HasPrefix(a, "~") || strings.HasPrefix(b, "~") {
		return a == b, false
	}
	return a == b, true
}

// Fingerprint returns a cheap isomorphism-invariant string for g:
// isomorphic graphs always share a fingerprint, but distinct graphs
// may occasionally collide, so callers must confirm with Isomorphic.
// Use this instead of Code in hot paths where patterns may be large
// or highly symmetric (Code's canonical search is exponential in
// automorphism-class size).
func Fingerprint(g *graph.Graph) string {
	return invariantCode(g, g.Vertices())
}

// vertexInvariant is the refinement key of a vertex: its label plus
// the multiset of (direction, edge label) of incident edges.
func vertexInvariant(g *graph.Graph, v graph.VertexID) string {
	var parts []string
	for _, e := range g.OutEdges(v) {
		parts = append(parts, ">"+g.Edge(e).Label)
	}
	for _, e := range g.InEdges(v) {
		parts = append(parts, "<"+g.Edge(e).Label)
	}
	sort.Strings(parts)
	return g.Vertex(v).Label + "|" + strings.Join(parts, ",")
}

// refine partitions vertices into ordered equivalence classes by
// iterated Weisfeiler–Leman-style refinement over labels and
// neighborhood class signatures.
func refine(g *graph.Graph, vs []graph.VertexID) [][]graph.VertexID {
	sig := make(map[graph.VertexID]string, len(vs))
	for _, v := range vs {
		sig[v] = vertexInvariant(g, v)
	}
	for iter := 0; iter < len(vs); iter++ {
		next := make(map[graph.VertexID]string, len(vs))
		for _, v := range vs {
			var nbr []string
			for _, e := range g.OutEdges(v) {
				nbr = append(nbr, ">"+g.Edge(e).Label+"/"+sig[g.Edge(e).To])
			}
			for _, e := range g.InEdges(v) {
				nbr = append(nbr, "<"+g.Edge(e).Label+"/"+sig[g.Edge(e).From])
			}
			sort.Strings(nbr)
			next[v] = hashStr(sig[v] + "#" + strings.Join(nbr, ","))
		}
		if countClasses(vs, next) == countClasses(vs, sig) {
			sig = next
			break
		}
		sig = next
	}
	bySig := make(map[string][]graph.VertexID)
	for _, v := range vs {
		bySig[sig[v]] = append(bySig[sig[v]], v)
	}
	keys := make([]string, 0, len(bySig))
	for k := range bySig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	classes := make([][]graph.VertexID, 0, len(keys))
	for _, k := range keys {
		class := bySig[k]
		sort.Slice(class, func(i, j int) bool { return class[i] < class[j] })
		classes = append(classes, class)
	}
	return classes
}

func countClasses(vs []graph.VertexID, sig map[graph.VertexID]string) int {
	set := make(map[string]bool, len(vs))
	for _, v := range vs {
		set[sig[v]] = true
	}
	return len(set)
}

// hashStr compresses long signature strings with FNV-1a to keep
// refinement cheap; collisions only cost permutation budget, never
// correctness (renderCode compares real adjacency).
func hashStr(s string) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

func countPerms(classes [][]graph.VertexID) int {
	total := 1
	for _, c := range classes {
		f := 1
		for i := 2; i <= len(c); i++ {
			f *= i
			if f > 1<<30 {
				return 1 << 30
			}
		}
		total *= f
		if total > 1<<30 {
			return 1 << 30
		}
	}
	return total
}

// enumerate calls fn with every vertex ordering obtained by permuting
// vertices within their refinement classes (classes stay in order).
func enumerate(classes [][]graph.VertexID, fn func([]graph.VertexID)) {
	order := make([]graph.VertexID, 0)
	var rec func(i int)
	rec = func(i int) {
		if i == len(classes) {
			fn(order)
			return
		}
		permute(classes[i], func(p []graph.VertexID) {
			order = append(order, p...)
			rec(i + 1)
			order = order[:len(order)-len(p)]
		})
	}
	rec(0)
}

// permute enumerates permutations of s (Heap's algorithm, iterative
// copy per call for safety).
func permute(s []graph.VertexID, fn func([]graph.VertexID)) {
	n := len(s)
	if n == 0 {
		fn(nil)
		return
	}
	a := append([]graph.VertexID(nil), s...)
	c := make([]int, n)
	fn(a)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				a[0], a[i] = a[i], a[0]
			} else {
				a[c[i]], a[i] = a[i], a[c[i]]
			}
			fn(a)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// renderCode serialises g under the given vertex ordering.
func renderCode(g *graph.Graph, order []graph.VertexID) string {
	pos := make(map[graph.VertexID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	var b strings.Builder
	for i, v := range order {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(g.Vertex(v).Label)
	}
	b.WriteByte('|')
	edges := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		ed := g.Edge(e)
		edges = append(edges, fmt.Sprintf("%d>%d:%s", pos[ed.From], pos[ed.To], ed.Label))
	}
	sort.Strings(edges)
	b.WriteString(strings.Join(edges, ";"))
	return b.String()
}

// invariantCode is the fallback code when the permutation budget is
// exceeded: vertex-invariant multiset plus edge multiset keyed by
// endpoint invariants. It never separates isomorphic graphs but may
// conflate non-isomorphic ones, hence the "~" marker added by Code.
func invariantCode(g *graph.Graph, vs []graph.VertexID) string {
	inv := make(map[graph.VertexID]string, len(vs))
	var vparts []string
	for _, v := range vs {
		inv[v] = vertexInvariant(g, v)
		vparts = append(vparts, inv[v])
	}
	sort.Strings(vparts)
	var eparts []string
	for _, e := range g.Edges() {
		ed := g.Edge(e)
		eparts = append(eparts, inv[ed.From]+">"+ed.Label+">"+inv[ed.To])
	}
	sort.Strings(eparts)
	return strings.Join(vparts, ";") + "|" + strings.Join(eparts, ";")
}
