package iso

import (
	"fmt"
	"testing"

	"tnkd/internal/graph"
)

// benchGraphs is the canonical-coding benchmark suite: the typical
// mining-path shapes (small, mostly asymmetric patterns), the
// high-symmetry shapes that define the worst case (cycles, stars,
// complete bipartite), and the hub that previously exceeded the
// permutation budget and fell back to a "~" code.
func benchGraphs() map[string]*graph.Graph {
	gs := make(map[string]*graph.Graph)

	// Typical 6-edge mining pattern: distinct labels, low symmetry.
	p := graph.New("pattern6")
	a := p.AddVertex("A")
	b := p.AddVertex("B")
	c := p.AddVertex("C")
	d := p.AddVertex("D")
	e := p.AddVertex("A")
	p.AddEdge(a, b, "x")
	p.AddEdge(b, c, "y")
	p.AddEdge(c, d, "x")
	p.AddEdge(d, e, "z")
	p.AddEdge(a, c, "z")
	p.AddEdge(b, d, "x")
	gs["pattern6"] = p

	// Directed cycle C12, uniform labels: one refinement class, cyclic
	// automorphism group.
	gs["cycle12"] = benchCycle("c12", 12)

	// Star with 20 identical spokes.
	gs["star20"] = benchStar(20)

	// Star with 60 identical spokes: 60! orderings in one refinement
	// class — the shape that previously exceeded permBudget.
	gs["star60"] = benchStar(60)

	// Complete bipartite K4,4, all edges one direction, uniform
	// labels: (4!)^2 leaf orderings without pruning.
	kb := graph.New("k44")
	var left, right []graph.VertexID
	for i := 0; i < 4; i++ {
		left = append(left, kb.AddVertex("*"))
	}
	for i := 0; i < 4; i++ {
		right = append(right, kb.AddVertex("*"))
	}
	for _, u := range left {
		for _, v := range right {
			kb.AddEdge(u, v, "w")
		}
	}
	gs["bipartite44"] = kb

	return gs
}

func benchCycle(name string, n int) *graph.Graph {
	g := graph.New(name)
	vs := make([]graph.VertexID, n)
	for i := range vs {
		vs[i] = g.AddVertex("*")
	}
	for i := range vs {
		g.AddEdge(vs[i], vs[(i+1)%n], "e")
	}
	return g
}

func benchStar(spokes int) *graph.Graph {
	g := graph.New(fmt.Sprintf("star%d", spokes))
	h := g.AddVertex("*")
	for i := 0; i < spokes; i++ {
		s := g.AddVertex("*")
		g.AddEdge(h, s, "w")
	}
	return g
}

// BenchmarkCode measures full canonical coding per graph shape.
func BenchmarkCode(b *testing.B) {
	for name, g := range benchGraphs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Code(g)
			}
		})
	}
}

// BenchmarkRefine measures the partition-refinement step alone (no
// individualisation search, no rendering).
func BenchmarkRefine(b *testing.B) {
	for name, g := range benchGraphs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refineBench(g)
			}
		})
	}
}

// refineBench runs the dense-view build plus one full equitable
// refinement — the per-call cost of the common (asymmetric) case
// minus the search and rendering.
func refineBench(g *graph.Graph) {
	l := labelerPool.Get().(*labeler)
	l.build(g, -1, false)
	colors := l.colorsAt(0)
	copy(colors, l.vlab)
	l.refine(colors)
	labelerPool.Put(l)
}
