package iso

import (
	"testing"

	"tnkd/internal/graph"
)

func TestCodeEmptyGraph(t *testing.T) {
	a, b := graph.New("e1"), graph.New("e2")
	if Code(a) == "" {
		t.Error("empty graph must still have a code")
	}
	if Code(a) != Code(b) {
		t.Error("empty graphs with different codes")
	}
	one := graph.New("one")
	one.AddVertex("x")
	if Code(one) == Code(a) {
		t.Error("single-vertex graph shares the empty code")
	}
}

func TestCodeSingleVertices(t *testing.T) {
	a := graph.New("a")
	a.AddVertex("p")
	b := graph.New("b")
	b.AddVertex("p")
	c := graph.New("c")
	c.AddVertex("q")
	if Code(a) != Code(b) {
		t.Error("equal single-vertex graphs with different codes")
	}
	if Code(a) == Code(c) {
		t.Error("differently labeled vertices share a code")
	}
	// Isolated vertices count: one p-vertex vs two.
	d := graph.New("d")
	d.AddVertex("p")
	d.AddVertex("p")
	if Code(a) == Code(d) {
		t.Error("different vertex counts share a code")
	}
}

// TestCodeExactOnHugeSymmetry is the shape that previously exceeded
// the permutation budget and degraded to a "~" code: a hub with 60
// identical spokes (60! orderings within one refinement cell). The
// individualisation-refinement labeler must code it exactly — equal
// for isomorphic copies, different from near-misses.
func TestCodeExactOnHugeSymmetry(t *testing.T) {
	mkStar := func(name string, spokes int) *graph.Graph {
		g := graph.New(name)
		h := g.AddVertex("*")
		for i := 0; i < spokes; i++ {
			s := g.AddVertex("*")
			g.AddEdge(h, s, "w")
		}
		return g
	}
	code := Code(mkStar("hub", 60))
	if code != Code(mkStar("hub2", 60)) {
		t.Error("isomorphic 60-spoke hubs with different codes")
	}
	if code == Code(mkStar("hub59", 59)) {
		t.Error("59- and 60-spoke hubs share a code")
	}
	// One reversed spoke breaks the symmetry and the isomorphism.
	rev := mkStar("hubrev", 59)
	s := rev.AddVertex("*")
	rev.AddEdge(s, 0, "w")
	if code == Code(rev) {
		t.Error("hub with one reversed spoke shares the 60-spoke code")
	}
}

// TestCodeSeparatesC12FromTwoC6 is the engineered collision of the
// PR 2 invariant codes: a single directed 12-cycle versus two
// disjoint 6-cycles have identical degree/label refinement views but
// are not isomorphic. Exact codes must separate them.
func TestCodeSeparatesC12FromTwoC6(t *testing.T) {
	cycle := func(g *graph.Graph, n int) {
		vs := make([]graph.VertexID, n)
		for i := range vs {
			vs[i] = g.AddVertex("*")
		}
		for i := range vs {
			g.AddEdge(vs[i], vs[(i+1)%n], "e")
		}
	}
	c12 := graph.New("c12")
	cycle(c12, 12)
	twoC6 := graph.New("2c6")
	cycle(twoC6, 6)
	cycle(twoC6, 6)
	if Code(c12) == Code(twoC6) {
		t.Fatal("C12 and C6+C6 share a canonical code")
	}
	c12b := graph.New("c12b")
	cycle(c12b, 12)
	if Code(c12) != Code(c12b) {
		t.Fatal("isomorphic C12 copies with different codes")
	}
	if Isomorphic(c12, twoC6) {
		t.Fatal("sanity: C12 and C6+C6 reported isomorphic")
	}
}

// TestCodeMaskedEqualsCompactedSubgraph: the masked code of (g, e)
// must equal the code of the materialised subgraph with e deleted and
// orphans dropped — the downward-closure equality fsg relies on.
func TestCodeMaskedEqualsCompactedSubgraph(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	d := g.AddVertex("B")
	e1 := g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	g.AddEdge(c, d, "x")
	e4 := g.AddEdge(d, a, "z")

	for _, skip := range []graph.EdgeID{e1, e4} {
		sub := g.Clone()
		sub.RemoveEdge(skip)
		sub.RemoveOrphans()
		compact, _ := sub.Compact()
		if got, want := CodeMasked(g, skip), Code(compact); got != want {
			t.Errorf("masked code for skip=%d diverges from compacted subgraph code", skip)
		}
	}

	// Masking the only edge into a leaf drops the orphaned vertex.
	h := graph.New("h")
	x := h.AddVertex("X")
	y := h.AddVertex("Y")
	z := h.AddVertex("Z")
	h.AddEdge(x, y, "e")
	leafEdge := h.AddEdge(y, z, "f")
	sub := h.Clone()
	sub.RemoveEdge(leafEdge)
	sub.RemoveOrphans()
	compact, _ := sub.Compact()
	if CodeMasked(h, leafEdge) != Code(compact) {
		t.Error("masked code kept the orphaned leaf vertex")
	}
}

func TestCanonicalFormMatchesCode(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("p")
	b := g.AddVertex("q")
	g.AddEdge(a, b, "e")
	if len(CanonicalForm(g)) == 0 {
		t.Fatal("empty canonical form")
	}
	// Code is a pure encoding of the form: stable across calls.
	if Code(g) != Code(g) {
		t.Fatal("Code not deterministic")
	}
}

// TestCodeParallelEdges: multigraph edge multiplicities are part of
// the code.
func TestCodeParallelEdges(t *testing.T) {
	single := graph.New("s")
	a := single.AddVertex("p")
	b := single.AddVertex("q")
	single.AddEdge(a, b, "e")
	double := graph.New("d")
	c := double.AddVertex("p")
	d := double.AddVertex("q")
	double.AddEdge(c, d, "e")
	double.AddEdge(c, d, "e")
	if Code(single) == Code(double) {
		t.Error("parallel-edge multiplicity not in the code")
	}
}

func TestEmbedInSubgraphRespectsRestriction(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	e1 := g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "x")
	pat := graph.New("p")
	pa := pat.AddVertex("*")
	pb := pat.AddVertex("*")
	pat.AddEdge(pa, pb, "x")

	vset := map[graph.VertexID]bool{a: true, b: true}
	eset := map[graph.EdgeID]bool{e1: true}
	emb, ok := EmbedInSubgraph(pat, g, vset, eset, 1000)
	if !ok {
		t.Fatal("restricted embedding not found")
	}
	for _, tv := range emb.Vertices {
		if !vset[tv] {
			t.Error("embedding escaped vertex restriction")
		}
	}
	// Restricting to a set that cannot host the pattern fails.
	if _, ok := EmbedInSubgraph(pat, g, map[graph.VertexID]bool{a: true}, eset, 1000); ok {
		t.Error("embedding into a single vertex should fail")
	}
}

func TestGreedyNonOverlapOrderSensitivity(t *testing.T) {
	mk := func(vs []graph.VertexID, es []graph.EdgeID) Embedding {
		e := Embedding{Vertices: map[graph.VertexID]graph.VertexID{}, Edges: map[graph.EdgeID]graph.EdgeID{}}
		for i, v := range vs {
			e.Vertices[graph.VertexID(i)] = v
		}
		for i, id := range es {
			e.Edges[graph.EdgeID(i)] = id
		}
		return e
	}
	embs := []Embedding{
		mk([]graph.VertexID{0, 1}, []graph.EdgeID{0}),
		mk([]graph.VertexID{1, 2}, []graph.EdgeID{1}), // shares vertex 1
		mk([]graph.VertexID{3, 4}, []graph.EdgeID{2}),
	}
	out := GreedyNonOverlap(embs)
	if len(out) != 2 {
		t.Fatalf("disjoint = %d, want 2", len(out))
	}
}
