package iso

import (
	"strings"
	"testing"

	"tnkd/internal/graph"
)

func TestCodeEmptyGraph(t *testing.T) {
	g := graph.New("e")
	if Code(g) != "∅" {
		t.Errorf("empty code = %q", Code(g))
	}
}

func TestCodeFallbackOnHugeSymmetry(t *testing.T) {
	// A hub with 60 identical spokes has 60! orderings within one
	// refinement class — far past the permutation budget, so Code
	// must fall back to the flagged invariant code instead of
	// enumerating.
	g := graph.New("hub")
	h := g.AddVertex("*")
	for i := 0; i < 60; i++ {
		s := g.AddVertex("*")
		g.AddEdge(h, s, "w")
	}
	code := Code(g)
	if !strings.HasPrefix(code, "~") {
		t.Errorf("expected fallback (~) code, got %.40q...", code)
	}
	// The fallback still matches an isomorphic copy.
	g2 := graph.New("hub2")
	h2 := g2.AddVertex("*")
	for i := 0; i < 60; i++ {
		s := g2.AddVertex("*")
		g2.AddEdge(h2, s, "w")
	}
	if Code(g2) != code {
		t.Error("isomorphic hubs with different fallback codes")
	}
}

func TestCodesEqualSemantics(t *testing.T) {
	if eq, exact := CodesEqual("a", "a"); !eq || !exact {
		t.Error("exact equal codes")
	}
	if eq, exact := CodesEqual("a", "b"); eq || !exact {
		t.Error("exact different codes")
	}
	if eq, exact := CodesEqual("~a", "~a"); !eq || exact {
		t.Error("approx equal codes must not certify exactness")
	}
	if eq, _ := CodesEqual("~a", "~b"); eq {
		t.Error("approx different codes")
	}
}

func TestFingerprintMatchesIsomorphs(t *testing.T) {
	a := graph.New("a")
	a1 := a.AddVertex("p")
	a2 := a.AddVertex("q")
	a.AddEdge(a1, a2, "e")
	b := graph.New("b")
	b2 := b.AddVertex("q")
	b1 := b.AddVertex("p")
	b.AddEdge(b1, b2, "e")
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("isomorphic graphs with different fingerprints")
	}
}

func TestEmbedInSubgraphRespectsRestriction(t *testing.T) {
	g := graph.New("g")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	e1 := g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "x")
	pat := graph.New("p")
	pa := pat.AddVertex("*")
	pb := pat.AddVertex("*")
	pat.AddEdge(pa, pb, "x")

	vset := map[graph.VertexID]bool{a: true, b: true}
	eset := map[graph.EdgeID]bool{e1: true}
	emb, ok := EmbedInSubgraph(pat, g, vset, eset, 1000)
	if !ok {
		t.Fatal("restricted embedding not found")
	}
	for _, tv := range emb.Vertices {
		if !vset[tv] {
			t.Error("embedding escaped vertex restriction")
		}
	}
	// Restricting to a set that cannot host the pattern fails.
	if _, ok := EmbedInSubgraph(pat, g, map[graph.VertexID]bool{a: true}, eset, 1000); ok {
		t.Error("embedding into a single vertex should fail")
	}
}

func TestGreedyNonOverlapOrderSensitivity(t *testing.T) {
	mk := func(vs []graph.VertexID, es []graph.EdgeID) Embedding {
		e := Embedding{Vertices: map[graph.VertexID]graph.VertexID{}, Edges: map[graph.EdgeID]graph.EdgeID{}}
		for i, v := range vs {
			e.Vertices[graph.VertexID(i)] = v
		}
		for i, id := range es {
			e.Edges[graph.EdgeID(i)] = id
		}
		return e
	}
	embs := []Embedding{
		mk([]graph.VertexID{0, 1}, []graph.EdgeID{0}),
		mk([]graph.VertexID{1, 2}, []graph.EdgeID{1}), // shares vertex 1
		mk([]graph.VertexID{3, 4}, []graph.EdgeID{2}),
	}
	out := GreedyNonOverlap(embs)
	if len(out) != 2 {
		t.Fatalf("disjoint = %d, want 2", len(out))
	}
}
