package iso

import (
	"tnkd/internal/graph"
)

// DenseEmbedding is the slice-backed form of an Embedding for
// patterns with dense IDs (every vertex ID in [0, NumVertices) and
// every edge ID in [0, NumEdges), which holds for all pattern graphs
// built by Clone+AddVertex+AddEdge): Verts[pv] is the target vertex
// matched by pattern vertex pv, Edges[pe] the target edge matched by
// pattern edge pe. It is the storage format of the embedding lists in
// internal/pattern — two small slices instead of two maps, so storing
// and extending hundreds of thousands of embeddings stays cheap.
type DenseEmbedding struct {
	Verts []graph.VertexID
	Edges []graph.EdgeID
}

// UsesVertex reports whether tv is already matched by some pattern
// vertex. Pattern sides are tiny (a few dozen vertices at most), so a
// linear scan beats any hashing.
func (e DenseEmbedding) UsesVertex(tv graph.VertexID) bool {
	for _, v := range e.Verts {
		if v == tv {
			return true
		}
	}
	return false
}

// UsesEdge reports whether te is already matched by some pattern
// edge.
func (e DenseEmbedding) UsesEdge(te graph.EdgeID) bool {
	for _, t := range e.Edges {
		if t == te {
			return true
		}
	}
	return false
}

// Clone returns a deep copy with room for one more vertex and edge
// (the one-edge extension growth pattern).
func (e DenseEmbedding) Clone() DenseEmbedding {
	verts := make([]graph.VertexID, len(e.Verts), len(e.Verts)+1)
	copy(verts, e.Verts)
	edges := make([]graph.EdgeID, len(e.Edges), len(e.Edges)+1)
	copy(edges, e.Edges)
	return DenseEmbedding{Verts: verts, Edges: edges}
}

// ToEmbedding converts to the map-backed public shape.
func (e DenseEmbedding) ToEmbedding() Embedding {
	out := Embedding{
		Vertices: make(map[graph.VertexID]graph.VertexID, len(e.Verts)),
		Edges:    make(map[graph.EdgeID]graph.EdgeID, len(e.Edges)),
	}
	for pv, tv := range e.Verts {
		out.Vertices[graph.VertexID(pv)] = tv
	}
	for pe, te := range e.Edges {
		out.Edges[graph.EdgeID(pe)] = te
	}
	return out
}

// extended returns a copy of e grown by the new edge's target match
// (and, when nv >= 0, the new vertex's).
func (e DenseEmbedding) extended(nv graph.VertexID, te graph.EdgeID) DenseEmbedding {
	c := e.Clone()
	if nv >= 0 {
		c.Verts = append(c.Verts, nv)
	}
	c.Edges = append(c.Edges, te)
	return c
}

// Embeddings enumerates the embeddings of pattern into target in
// dense form, on the same slice-backed matcher state FindEmbeddings
// uses. The pattern must have dense IDs. The second result reports
// whether the search ran to completion (false when Options.MaxSteps
// aborted it, in which case the list may be incomplete).
func Embeddings(target, pattern *graph.Graph, opts Options) ([]DenseEmbedding, bool) {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return nil, true
	}
	m := newMatcher(pattern, target, opts)
	m.dense = true
	m.search(0)
	return m.denseResults, !m.aborted
}

// ExtendEmbedding enumerates the one-edge extensions of emb: given an
// embedding of the parent pattern (child minus newEdge, minus the new
// endpoint if newEdge introduced one) into target, it finds every way
// to extend emb across newEdge and appends the grown embeddings to
// out. Because child was built from the parent by
// Clone (+AddVertex) +AddEdge, IDs are preserved, so a new endpoint is
// recognised by its ID lying beyond emb.Verts.
//
// Embeddings follow the matcher's semantics: one embedding per
// injective vertex map, with each pattern edge carrying the first
// compatible target edge as its witness — parallel duplicate target
// edges do not multiply embeddings. The child pattern must not repeat
// a (from, to, label) edge signature (FSG candidate generation never
// does), so the greedy witness choice is never lossy.
//
// This is the incremental step of FSG-style support counting: every
// embedding of child restricts to exactly one embedding of its
// parent, so extending a complete parent list yields the complete
// child list, each embedding exactly once. limit > 0 stops once out
// holds that many embeddings (existence checks pass 1).
func ExtendEmbedding(target, child *graph.Graph, emb DenseEmbedding, newEdge graph.EdgeID, limit int, out []DenseEmbedding) []DenseEmbedding {
	ed := child.Edge(newEdge)
	fromNew := int(ed.From) >= len(emb.Verts)
	toNew := int(ed.To) >= len(emb.Verts)
	switch {
	case !fromNew && !toNew:
		// New edge between mapped endpoints: the vertex map is already
		// fixed, so the first unused target edge on that lane with the
		// right label is the single witness.
		tf, tt := emb.Verts[ed.From], emb.Verts[ed.To]
		for _, te := range target.OutEdgesLabeled(tf, ed.Label) {
			if target.Edge(te).To != tt || emb.UsesEdge(te) {
				continue
			}
			out = append(out, emb.extended(-1, te))
			break
		}
	case !fromNew:
		// New edge out of a mapped vertex to a new endpoint: one
		// extension per distinct compatible endpoint (first edge as
		// witness). A target edge into an unmapped vertex cannot
		// already be used (used edges connect mapped vertices), so
		// only injectivity and the endpoint label need checking.
		start := len(out)
		tf := emb.Verts[ed.From]
		label := child.Vertex(ed.To).Label
		for _, te := range target.OutEdgesLabeled(tf, ed.Label) {
			tv := target.Edge(te).To
			if target.Vertex(tv).Label != label || emb.UsesVertex(tv) {
				continue
			}
			if endpointSeen(out[start:], tv) {
				continue
			}
			out = append(out, emb.extended(tv, te))
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	case !toNew:
		// New edge into a mapped vertex from a new endpoint.
		start := len(out)
		tt := emb.Verts[ed.To]
		label := child.Vertex(ed.From).Label
		for _, te := range target.InEdgesLabeled(tt, ed.Label) {
			tv := target.Edge(te).From
			if target.Vertex(tv).Label != label || emb.UsesVertex(tv) {
				continue
			}
			if endpointSeen(out[start:], tv) {
				continue
			}
			out = append(out, emb.extended(tv, te))
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	// Both endpoints new would mean a disconnected extension; one-edge
	// candidate generation never produces one.
	return out
}

// endpointSeen reports whether one of this call's extensions already
// mapped the new pattern vertex (the last Verts slot) to tv —
// deduping parallel target edges to the same endpoint. Extension
// counts per embedding are degree-bounded and small, so a linear scan
// beats a set.
func endpointSeen(batch []DenseEmbedding, tv graph.VertexID) bool {
	for i := range batch {
		if batch[i].Verts[len(batch[i].Verts)-1] == tv {
			return true
		}
	}
	return false
}

// GreedyNonOverlapDense is GreedyNonOverlap over dense embeddings: a
// maximal prefix-greedy subset that is pairwise vertex- and
// edge-disjoint.
func GreedyNonOverlapDense(embs []DenseEmbedding) []DenseEmbedding {
	usedV := make(map[graph.VertexID]bool)
	usedE := make(map[graph.EdgeID]bool)
	var out []DenseEmbedding
	for _, emb := range embs {
		ok := true
		for _, tv := range emb.Verts {
			if usedV[tv] {
				ok = false
				break
			}
		}
		if ok {
			for _, te := range emb.Edges {
				if usedE[te] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for _, tv := range emb.Verts {
			usedV[tv] = true
		}
		for _, te := range emb.Edges {
			usedE[te] = true
		}
		out = append(out, emb)
	}
	return out
}

// ReanchorDense is Reanchor for dense embeddings: it maps the pattern
// onto exactly the target vertices and edges covered by emb (an
// embedding of some isomorphic construction of the pattern),
// returning an embedding keyed to the pattern's own dense IDs.
func (r *Reanchorer) ReanchorDense(emb DenseEmbedding) (DenseEmbedding, bool) {
	m := r.m
	if m.pattern.NumVertices() != len(emb.Verts) {
		return DenseEmbedding{}, false
	}
	for _, tv := range emb.Verts {
		m.restrictVertex[tv] = true
	}
	for _, te := range emb.Edges {
		m.restrictEdge[te] = true
	}
	m.dense = true
	m.search(0)
	var out DenseEmbedding
	ok := len(m.denseResults) > 0
	if ok {
		out = m.denseResults[0]
	}
	for _, tv := range emb.Verts {
		m.restrictVertex[tv] = false
	}
	for _, te := range emb.Edges {
		m.restrictEdge[te] = false
	}
	m.dense = false
	m.resetSearch()
	return out, ok
}
