package iso

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tnkd/internal/graph"
)

// withoutFastPath runs f with the interchangeable-cell short-circuit
// disabled — the exhaustive individualisation search the fast path
// must be byte-identical to.
func withoutFastPath(f func()) {
	canonNoFastPath = true
	defer func() { canonNoFastPath = false }()
	f()
}

// fastPathFixtures are the shapes the certificate must handle on both
// sides: ones where it fires (stars, cliques, complete bipartite,
// independent sets inside larger graphs) and ones where it must
// refuse (cycles, matchings, near-symmetric graphs with one defect).
func fastPathFixtures() map[string]*graph.Graph {
	gs := map[string]*graph.Graph{
		"star5":       benchStar(5),
		"star20":      benchStar(20),
		"star60":      benchStar(60),
		"cycle12":     benchCycle("c12f", 12),
		"bipartite44": benchGraphs()["bipartite44"],
		"pattern6":    benchGraphs()["pattern6"],
	}

	// Directed clique K5: uniform all-ordered-pairs coupling.
	k5 := graph.New("k5")
	var kv []graph.VertexID
	for i := 0; i < 5; i++ {
		kv = append(kv, k5.AddVertex("*"))
	}
	for _, u := range kv {
		for _, v := range kv {
			if u != v {
				k5.AddEdge(u, v, "e")
			}
		}
	}
	gs["clique5"] = k5

	// Symmetric clique with self-loops on every vertex.
	loop := graph.New("loopclique")
	var lv []graph.VertexID
	for i := 0; i < 4; i++ {
		lv = append(lv, loop.AddVertex("*"))
	}
	for _, u := range lv {
		loop.AddEdge(u, u, "s")
		for _, v := range lv {
			if u != v {
				loop.AddEdge(u, v, "e")
			}
		}
	}
	gs["loopclique4"] = loop

	// Perfect matching: one refinement cell, but transpositions across
	// pairs are not automorphisms — the certificate must refuse.
	match := graph.New("matching")
	for i := 0; i < 5; i++ {
		a := match.AddVertex("*")
		b := match.AddVertex("*")
		match.AddEdge(a, b, "e")
		match.AddEdge(b, a, "e")
	}
	gs["matching5"] = match

	// Star with one defective spoke (a doubled edge): the spoke cell
	// splits after refinement; the remaining cell is interchangeable.
	defect := graph.New("defectstar")
	hub := defect.AddVertex("*")
	for i := 0; i < 12; i++ {
		s := defect.AddVertex("*")
		defect.AddEdge(hub, s, "w")
		if i == 0 {
			defect.AddEdge(hub, s, "w")
		}
	}
	gs["defectstar"] = defect

	// Double star: two hubs joined by an edge, each with its own spoke
	// set — two interchangeable cells alive at once.
	double := graph.New("doublestar")
	h1 := double.AddVertex("h")
	h2 := double.AddVertex("h")
	double.AddEdge(h1, h2, "b")
	for i := 0; i < 8; i++ {
		double.AddEdge(h1, double.AddVertex("*"), "w")
		double.AddEdge(h2, double.AddVertex("*"), "w")
	}
	gs["doublestar"] = double

	return gs
}

// TestFastPathMatchesExhaustiveSearch pins the tentpole invariant:
// the interchangeable-cell short-circuit changes nothing about the
// canonical form, on symmetric shapes where it fires and asymmetric
// ones where it must refuse.
func TestFastPathMatchesExhaustiveSearch(t *testing.T) {
	for name, g := range fastPathFixtures() {
		fast := Code(g)
		var slow string
		withoutFastPath(func() { slow = Code(g) })
		if fast != slow {
			t.Errorf("%s: fast path code %q != exhaustive %q", name, fast, slow)
		}
	}
}

// TestFastPathMatchesOnRandomGraphs fuzzes the equality over random
// multigraphs (self-loops, parallel edges, skewed label alphabets
// that manufacture large refinement cells).
func TestFastPathMatchesOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 300; trial++ {
		g := graph.New(fmt.Sprintf("r%d", trial))
		nv := 2 + rng.Intn(9)
		labels := 1 + rng.Intn(3) // few labels: big symmetric cells
		for i := 0; i < nv; i++ {
			g.AddVertex(fmt.Sprintf("L%d", rng.Intn(labels)))
		}
		ne := rng.Intn(2 * nv)
		for i := 0; i < ne; i++ {
			g.AddEdge(graph.VertexID(rng.Intn(nv)), graph.VertexID(rng.Intn(nv)),
				fmt.Sprintf("w%d", rng.Intn(2)))
		}
		fast := Code(g)
		var slow string
		withoutFastPath(func() { slow = Code(g) })
		if fast != slow {
			t.Fatalf("trial %d: fast %q != slow %q\n%s", trial, fast, slow, g.Dump())
		}
	}
}

// TestFastPathStar60Budget pins the acceptance criterion that
// motivated the fast path: the 60-spoke star — 60! orderings in one
// refinement class, 4.97ms under the exhaustive search — must code in
// under a millisecond.
func TestFastPathStar60Budget(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	g := benchStar(60)
	Code(g) // warm the pool
	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		Code(g)
	}
	if per := time.Since(start) / reps; per > time.Millisecond {
		t.Fatalf("star60 canonical code took %v per call, budget 1ms", per)
	}
}
