package iso

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/graph"
)

// buildGraph constructs a graph from vertex labels and edge triples.
func buildGraph(t testing.TB, vlabels []string, edges [][3]interface{}) *graph.Graph {
	t.Helper()
	g := graph.New("t")
	ids := make([]graph.VertexID, len(vlabels))
	for i, l := range vlabels {
		ids[i] = g.AddVertex(l)
	}
	for _, e := range edges {
		g.AddEdge(ids[e[0].(int)], ids[e[1].(int)], e[2].(string))
	}
	return g
}

func TestContainsSingleEdge(t *testing.T) {
	target := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {1, 2, "b"},
	})
	pat := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "a"}})
	if !Contains(target, pat) {
		t.Fatal("pattern a-edge should be contained")
	}
	patC := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "c"}})
	if Contains(target, patC) {
		t.Fatal("pattern c-edge should not be contained")
	}
}

func TestContainsRespectsDirection(t *testing.T) {
	target := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "a"}})
	pat := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{1, 0, "a"}})
	// Pattern is 1->0 which is isomorphic to 0->1 under relabeling, so
	// it IS contained (vertex identity doesn't matter, only structure).
	if !Contains(target, pat) {
		t.Fatal("direction-reversed pattern is isomorphic to the target edge")
	}
	// A two-edge path 0->1->2 is not in a single-edge graph.
	path2 := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{{0, 1, "a"}, {1, 2, "a"}})
	if Contains(target, path2) {
		t.Fatal("two-edge path cannot embed in one-edge graph")
	}
}

func TestContainsVertexLabels(t *testing.T) {
	target := buildGraph(t, []string{"x", "y"}, [][3]interface{}{{0, 1, "a"}})
	patGood := buildGraph(t, []string{"x", "y"}, [][3]interface{}{{0, 1, "a"}})
	patBad := buildGraph(t, []string{"y", "x"}, [][3]interface{}{{0, 1, "a"}})
	if !Contains(target, patGood) {
		t.Fatal("label-matching pattern should embed")
	}
	if Contains(target, patBad) {
		t.Fatal("pattern y->x should not embed in x->y")
	}
}

func TestEmbeddingCountsHubAndChain(t *testing.T) {
	// Hub with three identical spokes: 3! = 6 embeddings of the
	// 2-spoke hub pattern (ordered choice of 2 of 3 spokes).
	hub := buildGraph(t, []string{"*", "*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 2, "a"}, {0, 3, "a"},
	})
	pat := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 2, "a"},
	})
	if got := CountEmbeddings(pat, hub, 0); got != 6 {
		t.Fatalf("hub embeddings = %d, want 6", got)
	}
	// Chain x->y->z embeds exactly once in itself... times
	// automorphisms of the pattern (none here).
	chain := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {1, 2, "b"},
	})
	if got := CountEmbeddings(chain, chain, 0); got != 1 {
		t.Fatalf("chain self-embeddings = %d, want 1", got)
	}
}

func TestMultigraphEdgeInjective(t *testing.T) {
	// Target has two parallel a-edges; pattern needs two distinct
	// a-edges between the same pair.
	target := buildGraph(t, []string{"*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 1, "a"},
	})
	pat := buildGraph(t, []string{"*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 1, "a"},
	})
	if !Contains(target, pat) {
		t.Fatal("double edge should embed in double edge")
	}
	single := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "a"}})
	if Contains(single, pat) {
		t.Fatal("double edge must not embed in single edge (edge-injectivity)")
	}
}

func TestSelfLoop(t *testing.T) {
	target := buildGraph(t, []string{"*"}, [][3]interface{}{{0, 0, "a"}})
	pat := buildGraph(t, []string{"*"}, [][3]interface{}{{0, 0, "a"}})
	if !Contains(target, pat) {
		t.Fatal("self-loop should embed in self-loop")
	}
	if !Isomorphic(target, pat) {
		t.Fatal("identical self-loops should be isomorphic")
	}
}

func TestIsomorphicRelabeledTriangle(t *testing.T) {
	a := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "x"}, {1, 2, "y"}, {2, 0, "z"},
	})
	b := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{2, 0, "x"}, {0, 1, "y"}, {1, 2, "z"},
	})
	if !Isomorphic(a, b) {
		t.Fatal("rotated triangles should be isomorphic")
	}
	c := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "x"}, {1, 2, "y"}, {0, 2, "z"}, // z reversed
	})
	if Isomorphic(a, c) {
		t.Fatal("triangle with reversed edge should not be isomorphic")
	}
}

func TestCodeIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		g := graph.New("g")
		for i := 0; i < n; i++ {
			g.AddVertex("*")
		}
		labels := []string{"a", "b", "c"}
		m := n + rng.Intn(2*n)
		for i := 0; i < m; i++ {
			g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), labels[rng.Intn(3)])
		}
		// Random relabeled copy.
		perm := rng.Perm(n)
		h := graph.New("h")
		for i := 0; i < n; i++ {
			h.AddVertex("*")
		}
		type edge struct {
			f, t int
			l    string
		}
		var edges []edge
		for _, e := range g.Edges() {
			ed := g.Edge(e)
			edges = append(edges, edge{perm[ed.From], perm[ed.To], ed.Label})
		}
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			h.AddEdge(graph.VertexID(e.f), graph.VertexID(e.t), e.l)
		}
		cg, ch := Code(g), Code(h)
		if cg != ch {
			t.Fatalf("trial %d: codes differ for isomorphic graphs:\n%s\n%s\n%s", trial, cg, ch, g.Dump())
		}
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: relabeled copy not isomorphic", trial)
		}
	}
}

func TestCodeSeparatesNonIsomorphic(t *testing.T) {
	path := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {1, 2, "a"},
	})
	fork := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 2, "a"},
	})
	if Code(path) == Code(fork) {
		t.Fatal("path and fork must have different codes")
	}
}

func TestCountNonOverlapping(t *testing.T) {
	// Two disjoint a-edges plus one b-edge: the a-edge pattern has
	// exactly two non-overlapping instances.
	g := buildGraph(t, []string{"*", "*", "*", "*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {2, 3, "a"}, {4, 5, "b"},
	})
	pat := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "a"}})
	if got := CountNonOverlapping(pat, g, 0); got != 2 {
		t.Fatalf("non-overlapping count = %d, want 2", got)
	}
}

func TestCountNonOverlappingSharedVertex(t *testing.T) {
	// Hub with 4 spokes: 2-spoke pattern fits twice edge-disjointly.
	g := buildGraph(t, []string{"*", "*", "*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 2, "a"}, {0, 3, "a"}, {0, 4, "a"},
	})
	pat := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {0, 2, "a"},
	})
	if got := CountNonOverlapping(pat, g, 0); got != 2 {
		t.Fatalf("non-overlapping hub count = %d, want 2", got)
	}
}

func TestFindEmbeddingsLimitAndBudget(t *testing.T) {
	g := graph.New("g")
	for i := 0; i < 30; i++ {
		g.AddVertex("*")
	}
	for i := 0; i < 29; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1), "a")
	}
	pat := buildGraph(t, []string{"*", "*"}, [][3]interface{}{{0, 1, "a"}})
	if got := len(FindEmbeddings(pat, g, Options{Limit: 5})); got != 5 {
		t.Fatalf("limited embeddings = %d, want 5", got)
	}
	found, completed := ContainsBudget(g, pat, 1)
	if !found && completed {
		t.Fatal("budget=1 search reported completed without finding")
	}
}

func TestEmbeddingEdgeMapIsValid(t *testing.T) {
	target := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {1, 2, "b"}, {0, 2, "c"},
	})
	pat := buildGraph(t, []string{"*", "*", "*"}, [][3]interface{}{
		{0, 1, "a"}, {1, 2, "b"},
	})
	embs := FindEmbeddings(pat, target, Options{})
	if len(embs) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(embs))
	}
	for pe, te := range embs[0].Edges {
		ped, ted := pat.Edge(pe), target.Edge(te)
		if ped.Label != ted.Label {
			t.Fatalf("edge label mismatch: %s vs %s", ped.Label, ted.Label)
		}
		if embs[0].Vertices[ped.From] != ted.From || embs[0].Vertices[ped.To] != ted.To {
			t.Fatal("edge endpoints inconsistent with vertex mapping")
		}
	}
}

func BenchmarkContains100Vertices(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New("g")
	for i := 0; i < 100; i++ {
		g.AddVertex("*")
	}
	for i := 0; i < 550; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(100)), graph.VertexID(rng.Intn(100)), fmt.Sprint(rng.Intn(7)))
	}
	pat := graph.New("p")
	p0 := pat.AddVertex("*")
	p1 := pat.AddVertex("*")
	p2 := pat.AddVertex("*")
	pat.AddEdge(p0, p1, "1")
	pat.AddEdge(p1, p2, "2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contains(g, pat)
	}
}
