package iso

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/graph"
)

func randGraphLoops(rng *rand.Rand, maxV, maxE, vLabels, eLabels int) *graph.Graph {
	g := graph.New("r")
	nv := 1 + rng.Intn(maxV)
	vs := make([]graph.VertexID, nv)
	for i := range vs {
		vs[i] = g.AddVertex(fmt.Sprintf("v%d", rng.Intn(vLabels)))
	}
	ne := rng.Intn(maxE + 1)
	for i := 0; i < ne; i++ {
		a, b := vs[rng.Intn(nv)], vs[rng.Intn(nv)]
		g.AddEdge(a, b, fmt.Sprintf("e%d", rng.Intn(eLabels)))
	}
	return g
}

func TestStressCodeWithSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		vl, el := 1+rng.Intn(3), 1+rng.Intn(3)
		a := randGraphLoops(rng, 7, 12, vl, el)
		b := randGraphLoops(rng, 7, 12, vl, el)
		isoAB := Isomorphic(a, b)
		if isoAB != (Code(a) == Code(b)) {
			t.Fatalf("trial %d: Isomorphic=%v codeEq=%v\n%s\n%s", trial, isoAB, !isoAB, a.Dump(), b.Dump())
		}
		p := permuteGraph(rng, a)
		if Code(a) != Code(p) {
			t.Fatalf("trial %d: permuted copy changed code\n%s\n%s", trial, a.Dump(), p.Dump())
		}
	}
}

func TestStressMaskedWithSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 800; trial++ {
		g := randGraphLoops(rng, 6, 9, 2, 2)
		for _, e := range g.Edges() {
			sub := g.Clone()
			sub.RemoveEdge(e)
			sub.RemoveOrphans()
			compact, _ := sub.Compact()
			if CodeMasked(g, e) != Code(compact) {
				t.Fatalf("trial %d edge %d masked code diverges\n%s", trial, e, g.Dump())
			}
		}
	}
}
