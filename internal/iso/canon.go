package iso

import (
	"encoding/base64"
	"encoding/binary"
	"slices"
	"sort"
	"sync"

	"tnkd/internal/graph"
)

// This file implements exact canonical labeling for labeled directed
// multigraphs via individualisation–refinement (the bliss/nauty
// family of algorithms), replacing the earlier quasi-canonical string
// codes and their permutation-budget "~" fallback.
//
// The pipeline per graph:
//
//  1. Build a dense integer view: live vertices renumbered 0..n-1,
//     vertex and edge labels interned to ranks of their sorted
//     distinct values, adjacency flattened into one CSR arc array.
//     No strings are touched after this point.
//  2. Equitable refinement: vertices are partitioned by iterated
//     Weisfeiler–Leman-style splitting on (color, sorted multiset of
//     (direction, edge label, neighbor color)), entirely on packed
//     uint64 keys.
//  3. Individualisation search: while the partition is not discrete,
//     pick the first smallest non-singleton cell, individualise each
//     member in turn and recurse. Leaves are discrete partitions; the
//     canonical form is the minimum leaf edge encoding.
//  4. Automorphism pruning: two leaves with equal forms certify an
//     automorphism. Discovered generators prune target-cell members
//     in the same orbit (under generators fixing the individualised
//     prefix), and a leaf that reproduces the first leaf's form on a
//     leftmost descent prunes its whole branch back to the node where
//     it diverged from the first path (McKay's backjump).
//
// The canonical form is a compact []byte (label alphabets, counts,
// vertex-label sequence, canonically ordered edge triples). Equal
// forms hold exactly for isomorphic graphs; bytes.Compare is a fast
// total order. Code returns the form base64url-encoded so it stays
// JSON- and URL-safe for the store and serving layers.

// maxCanonVertices bounds the dense view. Canonical labeling is for
// pattern-sized graphs; the packed leaf edge keys need n*n*labels to
// fit in 62 bits.
const maxCanonVertices = 1 << 20

// Code returns the canonical code of g: an exact isomorphism
// invariant. Two graphs receive equal codes if and only if they are
// isomorphic — no fallback, no collisions. Codes are URL- and
// JSON-safe (base64url of the canonical form) and their bytewise
// comparison is a total order usable for deterministic sorting.
func Code(g *graph.Graph) string {
	l := labelerPool.Get().(*labeler)
	defer labelerPool.Put(l)
	form := l.canonicalForm(g, -1, false)
	return base64.RawURLEncoding.EncodeToString(form)
}

// CodeMasked returns the canonical code of the view of g with edge
// skip removed and any vertex that loses its last incident edge
// dropped — the one-edge-deleted subpattern of downward-closure
// checks, coded without materialising it. CodeMasked(g, e) equals
// Code of the compacted subgraph exactly. Vertices isolated in g
// itself are also dropped from the masked view (patterns built by
// edge extension never have any).
func CodeMasked(g *graph.Graph, skip graph.EdgeID) string {
	l := labelerPool.Get().(*labeler)
	defer labelerPool.Put(l)
	form := l.canonicalForm(g, skip, true)
	return base64.RawURLEncoding.EncodeToString(form)
}

// CanonicalForm returns the raw canonical form of g: a compact byte
// string equal across isomorphic graphs and distinct otherwise.
// bytes.Compare over forms is a fast total order. Most callers want
// Code (the encoded, text-safe version); the raw form exists for
// binary storage and ordering without the base64 step.
func CanonicalForm(g *graph.Graph) []byte {
	l := labelerPool.Get().(*labeler)
	defer labelerPool.Put(l)
	form := l.canonicalForm(g, -1, false)
	out := make([]byte, len(form))
	copy(out, form)
	return out
}

var labelerPool = sync.Pool{New: func() any { return &labeler{} }}

// arc packing: each adjacency entry is (edgeLabel<<1 | direction) in
// the high 32 bits and the dense neighbor index (during build) or the
// neighbor's current color (during refinement) in the low 32 bits.
const arcLow = 0xffffffff

// labeler holds the dense view and all scratch state of one
// canonical labeling. Instances are pooled and reused; every slice
// is resized with append semantics so steady-state calls on
// pattern-sized graphs allocate nothing.
type labeler struct {
	// dense view
	n, m    int
	denseOf []int32  // graph vertex ID -> dense index, -1 absent
	vlab    []int32  // dense vertex -> vertex-label rank
	vLabels []string // sorted distinct vertex labels
	eLabels []string // sorted distinct edge labels
	adjOff  []int32  // CSR offsets, len n+1
	adjArc  []uint64 // CSR arcs (label+dir high, neighbor low)
	eFrom   []int32  // dense edges
	eTo     []int32
	eLab    []int32

	// refinement scratch
	sigArc   []uint64 // per-arc keys, CSR layout parallel to adjArc
	ord      []int32
	newColor []int32
	cellCnt  []int32

	// search state
	colorStack [][]int32 // per-depth color scratch
	prefix     []int32   // individualised vertices along current path
	firstPath  []int32   // child chosen per depth on the first descent
	firstPos   []int32   // first leaf: dense vertex -> position
	posInv     []int32   // scratch: position -> vertex
	firstKeys  []uint64  // first leaf edge keys
	bestKeys   []uint64  // minimum leaf edge keys
	leafKeys   []uint64  // scratch
	gens       [][]int32 // automorphism generators
	uf         []int32   // union-find scratch for orbit pruning
	haveFirst  bool
	haveBest   bool
	jump       int // backjump target depth, -1 none

	// label interning scratch
	labScratch  []string
	vlabScratch []string
	// form rendering scratch
	formBuf []byte
	// interchangeable-cell certificate scratch
	fpSig, fpRefSig, fpIntra []uint64
}

// canonNoFastPath disables the interchangeable-cell short-circuit.
// Tests flip it to cross-check the fast path against the exhaustive
// search on the same graphs.
var canonNoFastPath = false

// maxGens caps the retained automorphism generators: pruning stays
// sound with any subset, and pathological searches must not grow
// memory without bound.
const maxGens = 64

// canonicalForm computes the canonical form of g (masked: minus edge
// skip, minus vertices the mask orphans). The returned slice aliases
// the labeler's scratch buffer — callers copy or encode before the
// labeler is reused.
func (l *labeler) canonicalForm(g *graph.Graph, skip graph.EdgeID, masked bool) []byte {
	l.build(g, skip, masked)
	if l.n >= maxCanonVertices || len(l.eLabels) >= 1<<20 {
		panic("iso: graph too large for canonical coding")
	}
	l.haveFirst, l.haveBest = false, false
	l.jump = -1
	l.gens = l.gens[:0]
	l.prefix = l.prefix[:0]
	l.firstPath = l.firstPath[:0]
	l.firstKeys = l.firstKeys[:0]
	l.bestKeys = l.bestKeys[:0]
	if l.n > 0 {
		colors := l.colorsAt(0)
		copy(colors, l.vlab)
		l.search(colors, 0, -1, false)
	}
	return l.render()
}

// build constructs the dense integer view of g.
func (l *labeler) build(g *graph.Graph, skip graph.EdgeID, masked bool) {
	vcap, ecap := g.VertexCap(), g.EdgeCap()
	l.denseOf = resizeI32(l.denseOf, vcap)
	for i := range l.denseOf {
		l.denseOf[i] = -1
	}
	// One pass over the edge space: collect endpoints (graph IDs for
	// now), labels and degrees. Degrees under the mask decide which
	// vertices the masked view keeps; the unmasked view keeps every
	// live vertex.
	l.cellCnt = resizeI32(l.cellCnt, vcap) // reused as degree scratch
	deg := l.cellCnt
	for i := range deg {
		deg[i] = 0
	}
	l.eFrom = l.eFrom[:0]
	l.eTo = l.eTo[:0]
	l.labScratch = l.labScratch[:0]
	for id := 0; id < ecap; id++ {
		e := graph.EdgeID(id)
		if e == skip || !g.HasEdge(e) {
			continue
		}
		ed := g.Edge(e)
		l.eFrom = append(l.eFrom, int32(ed.From))
		l.eTo = append(l.eTo, int32(ed.To))
		l.labScratch = append(l.labScratch, ed.Label)
		deg[ed.From]++
		deg[ed.To]++
	}
	m := len(l.eFrom)
	n := 0
	l.vlabScratch = l.vlabScratch[:0]
	for id := 0; id < vcap; id++ {
		v := graph.VertexID(id)
		if !g.HasVertex(v) || (masked && deg[id] == 0) {
			continue
		}
		l.denseOf[id] = int32(n)
		n++
		l.vlabScratch = append(l.vlabScratch, g.Vertex(v).Label)
	}
	l.n, l.m = n, m

	// Intern labels: sort distinct, rank by binary search.
	l.vLabels = internLabels(l.vLabels[:0], l.vlabScratch)
	l.vlab = resizeI32(l.vlab, n)
	for i, s := range l.vlabScratch {
		l.vlab[i] = int32(sort.SearchStrings(l.vLabels, s))
	}
	l.eLabels = internLabels(l.eLabels[:0], l.labScratch)
	l.eLab = resizeI32(l.eLab, m)
	for k := 0; k < m; k++ {
		l.eLab[k] = int32(sort.SearchStrings(l.eLabels, l.labScratch[k]))
		l.eFrom[k] = l.denseOf[l.eFrom[k]]
		l.eTo[k] = l.denseOf[l.eTo[k]]
	}

	// CSR adjacency: every edge contributes an out-arc at From and an
	// in-arc at To (self-loops contribute both to the same vertex).
	l.adjOff = resizeI32(l.adjOff, n+1)
	for i := range l.adjOff {
		l.adjOff[i] = 0
	}
	for k := 0; k < m; k++ {
		l.adjOff[l.eFrom[k]+1]++
		l.adjOff[l.eTo[k]+1]++
	}
	for i := 1; i <= n; i++ {
		l.adjOff[i] += l.adjOff[i-1]
	}
	l.adjArc = resizeU64(l.adjArc, 2*m)
	l.newColor = resizeI32(l.newColor, n) // reused as fill cursor
	fill := l.newColor
	for i := range fill {
		fill[i] = 0
	}
	for k := 0; k < m; k++ {
		f, t, lab := l.eFrom[k], l.eTo[k], uint64(l.eLab[k])
		l.adjArc[l.adjOff[f]+fill[f]] = (lab << 33) | uint64(t)
		fill[f]++
		l.adjArc[l.adjOff[t]+fill[t]] = (lab<<33 | 1<<32) | uint64(f)
		fill[t]++
	}
	l.sigArc = resizeU64(l.sigArc, 2*m)
}

// internLabels fills dst with the sorted distinct strings of src.
func internLabels(dst, src []string) []string {
	dst = append(dst, src...)
	sort.Strings(dst)
	uniq := dst[:0]
	for i, s := range dst {
		if i == 0 || s != dst[i-1] {
			uniq = append(uniq, s)
		}
	}
	return uniq
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// colorsAt returns the per-depth color scratch slice, growing the
// stack as the search deepens.
func (l *labeler) colorsAt(depth int) []int32 {
	for len(l.colorStack) <= depth {
		l.colorStack = append(l.colorStack, nil)
	}
	l.colorStack[depth] = resizeI32(l.colorStack[depth], l.n)
	return l.colorStack[depth]
}

// refine refines colors in place to the coarsest equitable partition
// at least as fine as the input, re-ranking colors to 0..k-1 (cell
// order follows the input color order, ties split by signature
// order). Returns the number of colors k.
func (l *labeler) refine(colors []int32) int {
	n := l.n
	l.ord = resizeI32(l.ord, n)
	l.newColor = resizeI32(l.newColor, n)
	cur := -1 // the first pass always runs: it densifies spread colors
	for {
		// Per-vertex signature: arcs re-keyed by neighbor color, sorted.
		for v := 0; v < n; v++ {
			lo, hi := l.adjOff[v], l.adjOff[v+1]
			for k := lo; k < hi; k++ {
				a := l.adjArc[k]
				l.sigArc[k] = (a &^ arcLow) | uint64(uint32(colors[a&arcLow]))
			}
			sortU64(l.sigArc[lo:hi])
		}
		// Order vertices by (color, signature), then re-rank.
		for i := range l.ord {
			l.ord[i] = int32(i)
		}
		l.sortVerts(colors)
		next := 0
		prev := int32(-1)
		for i, v := range l.ord {
			if i > 0 {
				if colors[v] != colors[prev] || !l.sameSig(v, prev) {
					next++
				}
			}
			l.newColor[v] = int32(next)
			prev = v
		}
		copy(colors, l.newColor)
		if next+1 == cur || next+1 == n {
			return next + 1
		}
		cur = next + 1
	}
}

// sortVerts insertion-sorts l.ord by (color, signature). Pattern
// graphs are small; insertion sort beats sort.Slice here and
// allocates nothing.
func (l *labeler) sortVerts(colors []int32) {
	ord := l.ord
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && l.vertLess(colors, ord[j], ord[j-1]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
}

func (l *labeler) vertLess(colors []int32, a, b int32) bool {
	if colors[a] != colors[b] {
		return colors[a] < colors[b]
	}
	return l.cmpSig(a, b) < 0
}

func (l *labeler) cmpSig(a, b int32) int {
	alo, ahi := l.adjOff[a], l.adjOff[a+1]
	blo, bhi := l.adjOff[b], l.adjOff[b+1]
	la, lb := ahi-alo, bhi-blo
	min := la
	if lb < min {
		min = lb
	}
	for k := int32(0); k < min; k++ {
		x, y := l.sigArc[alo+k], l.sigArc[blo+k]
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	}
	return 0
}

func (l *labeler) sameSig(a, b int32) bool { return l.cmpSig(a, b) == 0 }

// sortU64 is an insertion sort for the short per-vertex arc slices.
func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// search explores the individualisation-refinement tree under the
// given colors (consumed in place). divergedAt is the depth at which
// this path left the first path (-1 while still on it); leftmost
// reports whether every choice strictly below the divergence point
// was the first explored child, which is the precondition for the
// first-leaf backjump.
func (l *labeler) search(colors []int32, depth, divergedAt int, leftmost bool) {
	k := l.refine(colors)
	if k == l.n {
		l.leaf(colors, divergedAt, leftmost)
		return
	}
	// Target cell: first smallest non-singleton (cellCnt is fresh
	// from refine's final countColors... recompute to be safe).
	target := l.targetCell(colors, k)
	// Collect the cell members in ascending dense order into the
	// per-depth scratch tail of posInv... use a local small slice.
	var cellBuf [16]int32
	cell := cellBuf[:0]
	for v := 0; v < l.n; v++ {
		if colors[v] == target {
			cell = append(cell, int32(v))
		}
	}
	if len(cell) > 1 && !canonNoFastPath && l.interchangeable(colors, cell, target) {
		// Every member of the cell is provably in one orbit of the
		// prefix-stabilising automorphism group, so each member's
		// subtree yields the same set of leaf forms: exploring the
		// first alone is the generator-based orbit pruning below,
		// computed directly instead of waiting for discovered
		// generators. High-automorphism shapes (stars, complete
		// bipartite cores) collapse from factorial fan-out to a single
		// descent.
		cell = cell[:1]
	}
	firstDescent := !l.haveFirst
	if firstDescent {
		l.firstPath = append(l.firstPath, -1)
	}

	explored := 0
	ufGens := -1
	for _, u := range cell {
		if explored > 0 {
			// Orbit pruning: skip u when an automorphism fixing the
			// individualised prefix maps it onto an earlier cell member
			// (explored directly, or itself pruned into one — the orbit
			// relation is transitive either way).
			if len(l.gens) != ufGens {
				l.buildOrbits()
				ufGens = len(l.gens)
			}
			pruned := false
			ru := l.find(u)
			for _, w := range cell {
				if w == u {
					break
				}
				if l.find(w) == ru {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
		}
		child := l.colorsAt(depth + 1)
		individualise(child, colors, u, target)
		childDiverged := divergedAt
		childLeftmost := leftmost && explored == 0
		if firstDescent && explored == 0 {
			l.firstPath[depth] = u
		} else if divergedAt < 0 && (depth >= len(l.firstPath) || l.firstPath[depth] != u) {
			childDiverged = depth
			childLeftmost = true
		}
		l.prefix = append(l.prefix, u)
		l.search(child, depth+1, childDiverged, childLeftmost)
		l.prefix = l.prefix[:len(l.prefix)-1]
		explored++
		if l.jump >= 0 {
			if l.jump < depth {
				return // keep unwinding to the divergence node
			}
			l.jump = -1 // this node is the target: continue siblings
		}
	}
}

// Tags for the combined per-member signature interchangeable builds:
// external arcs are raw adjArc entries (< 2^53), self-loops and
// normalised intra-cell arcs are tagged into disjoint high-bit ranges.
const (
	fpSelfTag  = uint64(1) << 62
	fpIntraTag = uint64(1) << 63
)

// interchangeable reports whether swapping any two members of the
// target cell is an automorphism of the dense graph, which proves the
// whole cell is a single orbit of the automorphism group fixing the
// individualised prefix (prefix vertices are singletons, hence
// outside the cell). The certificate:
//
//	(a) every member carries the same multiset of (labdir, neighbor)
//	    arcs to vertices outside the cell — the same actual
//	    neighbors, not just the same neighbor colors;
//	(b) every member carries the same self-loop labdir multiset;
//	(c) intra-cell arcs are absent or uniformly coupled: every member
//	    reaches every other member, with the same labdir multiset on
//	    every ordered pair.
//
// Under (a)-(c) a transposition of two members fixes all external
// arcs, maps self-loops onto equal self-loops, and permutes the
// uniform intra-cell arcs among themselves — an automorphism. The
// symmetric group on the cell therefore acts by prefix-fixing
// automorphisms, which is exactly the premise the generator-based
// orbit pruning in search relies on; the resulting canonical form is
// byte-identical with the fast path on or off.
func (l *labeler) interchangeable(colors []int32, cell []int32, target int32) bool {
	ok := true
	refSig := l.fpRefSig[:0]
	sig := l.fpSig[:0]
	intra := l.fpIntra[:0]
	for mi, v := range cell {
		sig = sig[:0]
		intra = intra[:0]
		for k := l.adjOff[v]; k < l.adjOff[v+1]; k++ {
			a := l.adjArc[k]
			w := int32(a & arcLow)
			switch {
			case w == v:
				sig = append(sig, fpSelfTag|(a>>32))
			case colors[w] == target:
				// Sortable by (partner, labdir): labdir < 2^21,
				// partner < 2^20 (maxCanonVertices).
				intra = append(intra, uint64(w)<<22|(a>>32))
			default:
				sig = append(sig, a)
			}
		}
		// Per-member uniformity of the intra-cell coupling: the sorted
		// arcs must split into len(cell)-1 equal-size blocks, each a
		// single partner, all with element-wise equal labdir runs (or
		// there are no intra arcs at all). Together with the
		// cross-member signature comparison below — which carries the
		// partner-stripped intra multiset — a pass means every member
		// reaches every other member with one shared labdir multiset.
		sortU64Long(intra)
		if len(intra) > 0 {
			if len(intra)%(len(cell)-1) != 0 {
				ok = false
				break
			}
			per := len(intra) / (len(cell) - 1)
			for i, x := range intra {
				if x>>22 != intra[(i/per)*per]>>22 || x&(1<<22-1) != intra[i%per]&(1<<22-1) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		for _, x := range intra {
			sig = append(sig, fpIntraTag|(x&(1<<22-1)))
		}
		sortU64Long(sig)
		if mi == 0 {
			refSig = append(refSig[:0], sig...)
		} else if !equalU64(sig, refSig) {
			ok = false
			break
		}
	}
	l.fpSig, l.fpRefSig, l.fpIntra = sig[:0], refSig[:0], intra[:0]
	return ok
}

// targetCell picks the first smallest non-singleton cell.
func (l *labeler) targetCell(colors []int32, k int) int32 {
	l.cellCnt = resizeI32(l.cellCnt, k)
	for i := range l.cellCnt {
		l.cellCnt[i] = 0
	}
	for _, c := range colors {
		l.cellCnt[c]++
	}
	best := int32(-1)
	var bestSize int32
	for c := int32(0); c < int32(k); c++ {
		if sz := l.cellCnt[c]; sz > 1 && (best < 0 || sz < bestSize) {
			best, bestSize = c, sz
		}
	}
	return best
}

// individualise writes into dst the coloring that splits u out of its
// cell, ordered before the remainder. Color values are spread (×2) so
// the new cell slots in without renumbering; refine re-ranks.
func individualise(dst, src []int32, u, cell int32) {
	for i, c := range src {
		d := 2 * c
		if c == cell && int32(i) != u {
			d++
		}
		dst[i] = d
	}
}

// leaf handles a discrete partition: render the edge keys, update the
// best form, and derive an automorphism when the form reproduces the
// first leaf's.
func (l *labeler) leaf(pos []int32, divergedAt int, leftmost bool) {
	n := uint64(l.n)
	labBits := uint(20)
	l.leafKeys = resizeU64(l.leafKeys, l.m)
	for k := 0; k < l.m; k++ {
		pf := uint64(pos[l.eFrom[k]])
		pt := uint64(pos[l.eTo[k]])
		l.leafKeys[k] = ((pf*n + pt) << labBits) | uint64(l.eLab[k])
	}
	sortU64Long(l.leafKeys)
	if !l.haveFirst {
		l.haveFirst = true
		l.firstKeys = append(l.firstKeys[:0], l.leafKeys...)
		l.firstPos = append(l.firstPos[:0], pos...)
	} else if equalU64(l.leafKeys, l.firstKeys) {
		l.recordAutomorphism(pos)
		if divergedAt >= 0 && leftmost {
			l.jump = divergedAt
		}
	}
	if !l.haveBest || lessU64(l.leafKeys, l.bestKeys) {
		l.haveBest = true
		l.bestKeys = append(l.bestKeys[:0], l.leafKeys...)
	}
}

// recordAutomorphism derives the automorphism mapping this leaf's
// labeling onto the first leaf's and appends it as a generator.
func (l *labeler) recordAutomorphism(pos []int32) {
	if len(l.gens) >= maxGens {
		return
	}
	l.posInv = resizeI32(l.posInv, l.n)
	for v, p := range l.firstPos {
		l.posInv[p] = int32(v)
	}
	gen := make([]int32, l.n)
	identity := true
	for v := 0; v < l.n; v++ {
		gen[v] = l.posInv[pos[v]]
		if gen[v] != int32(v) {
			identity = false
		}
	}
	if !identity {
		l.gens = append(l.gens, gen)
	}
}

// buildOrbits rebuilds the union-find over the orbits of the
// generators that fix the current individualised prefix pointwise.
func (l *labeler) buildOrbits() {
	l.uf = resizeI32(l.uf, l.n)
	for i := range l.uf {
		l.uf[i] = int32(i)
	}
	for _, gen := range l.gens {
		fixes := true
		for _, p := range l.prefix {
			if gen[p] != p {
				fixes = false
				break
			}
		}
		if !fixes {
			continue
		}
		for v := 0; v < l.n; v++ {
			l.union(int32(v), gen[v])
		}
	}
}

func (l *labeler) find(x int32) int32 {
	for l.uf[x] != x {
		l.uf[x] = l.uf[l.uf[x]]
		x = l.uf[x]
	}
	return x
}

func (l *labeler) union(a, b int32) {
	ra, rb := l.find(a), l.find(b)
	if ra != rb {
		l.uf[ra] = rb
	}
}

// sortU64Long sorts leaf key slices; they can be larger than arc
// slices, so fall back to the stdlib above a small threshold.
func sortU64Long(s []uint64) {
	if len(s) <= 32 {
		sortU64(s)
		return
	}
	slices.Sort(s)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessU64(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// render serialises the canonical form from the best leaf:
//
//	uvarint #vertexLabels, each label (uvarint len + bytes)
//	uvarint #edgeLabels, each label
//	uvarint n, uvarint m
//	vertex-label rank per canonical position (invariant across
//	leaves: refinement preserves the initial label ordering)
//	per edge in key order: uvarint fromPos, toPos, labelRank
func (l *labeler) render() []byte {
	b := l.formBuf[:0]
	b = binary.AppendUvarint(b, uint64(len(l.vLabels)))
	for _, s := range l.vLabels {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = binary.AppendUvarint(b, uint64(len(l.eLabels)))
	for _, s := range l.eLabels {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = binary.AppendUvarint(b, uint64(l.n))
	b = binary.AppendUvarint(b, uint64(l.m))
	// The vertex-label sequence by position is the sorted vlab
	// multiset (initial colors are label ranks and refinement only
	// ever splits cells in order).
	l.ord = resizeI32(l.ord, l.n)
	copy(l.ord, l.vlab)
	sortI32(l.ord)
	for _, r := range l.ord {
		b = binary.AppendUvarint(b, uint64(r))
	}
	n := uint64(l.n)
	for _, key := range l.bestKeys {
		lab := key & (1<<20 - 1)
		ft := key >> 20
		b = binary.AppendUvarint(b, ft/n)
		b = binary.AppendUvarint(b, ft%n)
		b = binary.AppendUvarint(b, lab)
	}
	l.formBuf = b
	return b
}

func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
