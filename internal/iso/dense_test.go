package iso

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tnkd/internal/graph"
)

// renderDense serialises a dense embedding for set comparison.
func renderDense(e DenseEmbedding) string {
	return fmt.Sprintf("%v|%v", e.Verts, e.Edges)
}

func sortedRenders(embs []DenseEmbedding) []string {
	out := make([]string, 0, len(embs))
	for _, e := range embs {
		out = append(out, renderDense(e))
	}
	sort.Strings(out)
	return out
}

// randGraph builds a random dense-ID labeled digraph.
func denseRandGraph(rng *rand.Rand, nv, ne, vLabels, eLabels int) *graph.Graph {
	g := graph.New("t")
	vs := make([]graph.VertexID, nv)
	for i := range vs {
		vs[i] = g.AddVertex(fmt.Sprintf("v%d", rng.Intn(vLabels)))
	}
	for i := 0; i < ne; i++ {
		a, b := vs[rng.Intn(nv)], vs[rng.Intn(nv)]
		if a == b {
			continue
		}
		g.AddEdge(a, b, fmt.Sprintf("e%d", rng.Intn(eLabels)))
	}
	return g
}

// TestEmbeddingsMatchesFindEmbeddings cross-checks the dense
// enumeration against the map-backed one.
func TestEmbeddingsMatchesFindEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		target := denseRandGraph(rng, 4+rng.Intn(5), 6+rng.Intn(6), 2, 2)
		pat := denseRandGraph(rng, 2+rng.Intn(2), 1+rng.Intn(2), 2, 2)
		dense, completed := Embeddings(target, pat, Options{})
		if !completed {
			t.Fatalf("trial %d: unbudgeted search reported incomplete", trial)
		}
		maps := FindEmbeddings(pat, target, Options{})
		if len(dense) != len(maps) {
			t.Fatalf("trial %d: dense found %d embeddings, map-backed %d", trial, len(dense), len(maps))
		}
		for i, de := range dense {
			me := de.ToEmbedding()
			for pv, tv := range maps[i].Vertices {
				if me.Vertices[pv] != tv {
					t.Fatalf("trial %d: embedding %d vertex mismatch", trial, i)
				}
			}
			for pe, te := range maps[i].Edges {
				if me.Edges[pe] != te {
					t.Fatalf("trial %d: embedding %d edge mismatch", trial, i)
				}
			}
		}
	}
}

// TestExtendEmbeddingComplete is the incremental-counting invariant:
// for a child pattern built from its parent by one ID-preserving edge
// addition, extending every parent embedding across the new edge
// yields exactly the child's embedding set, each embedding once.
func TestExtendEmbeddingComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(20050405))
	trials := 0
	for trials < 60 {
		target := denseRandGraph(rng, 5+rng.Intn(5), 8+rng.Intn(8), 2, 2)
		parent := denseRandGraph(rng, 2+rng.Intn(3), 1+rng.Intn(3), 2, 2)
		if parent.NumEdges() == 0 {
			continue
		}
		// Build a child by one random extension: new edge between
		// existing vertices, or a new vertex attached by one edge.
		child := parent.Clone()
		vs := child.Vertices()
		u := vs[rng.Intn(len(vs))]
		var newEdge graph.EdgeID
		switch rng.Intn(3) {
		case 0:
			v := vs[rng.Intn(len(vs))]
			label := fmt.Sprintf("e%d", rng.Intn(2))
			// The extension contract forbids duplicate (from, to,
			// label) signatures, as in FSG candidate generation.
			if v == u || hasEdge(child, u, v, label) {
				continue
			}
			newEdge = child.AddEdge(u, v, label)
		case 1:
			w := child.AddVertex(fmt.Sprintf("v%d", rng.Intn(2)))
			newEdge = child.AddEdge(u, w, fmt.Sprintf("e%d", rng.Intn(2)))
		default:
			w := child.AddVertex(fmt.Sprintf("v%d", rng.Intn(2)))
			newEdge = child.AddEdge(w, u, fmt.Sprintf("e%d", rng.Intn(2)))
		}
		trials++

		parentEmbs, _ := Embeddings(target, parent, Options{})
		var extended []DenseEmbedding
		for _, pe := range parentEmbs {
			extended = ExtendEmbedding(target, child, pe, newEdge, 0, extended)
		}
		direct, _ := Embeddings(target, child, Options{})
		got, want := sortedRenders(extended), sortedRenders(direct)
		if len(got) != len(want) {
			t.Fatalf("trial %d: extension found %d embeddings, full search %d\nchild:\n%s",
				trials, len(got), len(want), child.Dump())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: embedding sets differ at %d:\n%s\nvs\n%s", trials, i, got[i], want[i])
			}
		}
	}
}

func hasEdge(g *graph.Graph, from, to graph.VertexID, label string) bool {
	for _, e := range g.OutEdges(from) {
		ed := g.Edge(e)
		if ed.To == to && ed.Label == label {
			return true
		}
	}
	return false
}

// TestExtendEmbeddingLimit checks the existence-check fast path stops
// at the requested number of extensions.
func TestExtendEmbeddingLimit(t *testing.T) {
	target := graph.New("t")
	hub := target.AddVertex("h")
	for i := 0; i < 5; i++ {
		s := target.AddVertex("s")
		target.AddEdge(hub, s, "e")
	}
	parent := graph.New("p")
	parent.AddVertex("h")
	child := parent.Clone()
	w := child.AddVertex("s")
	ne := child.AddEdge(0, w, "e")
	emb := DenseEmbedding{Verts: []graph.VertexID{hub}}
	if got := ExtendEmbedding(target, child, emb, ne, 1, nil); len(got) != 1 {
		t.Fatalf("limit 1: got %d extensions", len(got))
	}
	if got := ExtendEmbedding(target, child, emb, ne, 0, nil); len(got) != 5 {
		t.Fatalf("unlimited: got %d extensions, want 5", len(got))
	}
}

// TestReanchorDenseMatchesReanchor cross-checks the dense re-anchorer
// against the map-backed one on a shuffled isomorphic construction.
func TestReanchorDenseMatchesReanchor(t *testing.T) {
	target := graph.New("t")
	a := target.AddVertex("a")
	b := target.AddVertex("b")
	c := target.AddVertex("c")
	target.AddEdge(a, b, "x")
	target.AddEdge(b, c, "y")

	// Pattern constructed in a different vertex order than the
	// instance's natural one.
	pat := graph.New("p")
	pc := pat.AddVertex("c")
	pb := pat.AddVertex("b")
	pa := pat.AddVertex("a")
	pat.AddEdge(pb, pc, "y")
	pat.AddEdge(pa, pb, "x")

	emb := DenseEmbedding{
		Verts: []graph.VertexID{a, b, c},
		Edges: []graph.EdgeID{0, 1},
	}
	re := NewReanchorer(pat, target, 0)
	dense, ok := re.ReanchorDense(emb)
	if !ok {
		t.Fatal("ReanchorDense failed")
	}
	if dense.Verts[pa] != a || dense.Verts[pb] != b || dense.Verts[pc] != c {
		t.Fatalf("ReanchorDense mapped %v", dense.Verts)
	}
	mapped, ok := re.Reanchor(emb.ToEmbedding())
	if !ok {
		t.Fatal("Reanchor failed")
	}
	for pv, tv := range mapped.Vertices {
		if dense.Verts[pv] != tv {
			t.Fatalf("dense and map re-anchor disagree at %d: %d vs %d", pv, dense.Verts[pv], tv)
		}
	}
}
