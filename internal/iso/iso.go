// Package iso implements subgraph isomorphism, graph isomorphism and
// exact canonical codes for the labeled directed multigraphs of
// package graph.
//
// Section 4 of the paper defines when two subgraphs support the same
// pattern: there must be a bijection between their vertices that
// preserves vertex labels and maps every labeled edge onto a
// correspondingly labeled edge. This package supplies exactly that
// matching relation, used by both the FSG reimplementation (support
// counting, candidate deduplication) and the SUBDUE reimplementation
// (instance discovery).
package iso

import (
	"sort"

	"tnkd/internal/graph"
)

// Embedding records one occurrence of a pattern inside a target
// graph: an injective vertex mapping plus the specific target edge
// matched by each pattern edge (edge-injective, so multigraph
// instances consume distinct parallel edges).
type Embedding struct {
	Vertices map[graph.VertexID]graph.VertexID // pattern vertex -> target vertex
	Edges    map[graph.EdgeID]graph.EdgeID     // pattern edge -> target edge
}

// matcher holds the state of one backtracking search. All per-step
// state lives in dense slice-backed arrays sized to the pattern and
// target graphs (indexed by vertex/edge ID), replacing the map-backed
// state that dominated the profile of support counting: assignment,
// rollback and membership tests are plain array stores with no
// hashing and no allocation on the search path.
type matcher struct {
	pattern, target *graph.Graph

	order  []graph.VertexID // pattern vertex assignment order
	pEdges []graph.EdgeID   // live pattern edges, ascending

	assigned   []graph.VertexID // pattern vertex ID -> target vertex (-1 unassigned)
	usedVertex []bool           // target vertex ID in use
	usedEdge   []bool           // target edge ID in use
	edgeMap    []graph.EdgeID   // pattern edge ID -> target edge (-1 unassigned)

	// excluded/restrict are the Options sets densified over target
	// IDs; hasRestrict* distinguishes "no restriction" from an empty
	// restriction set.
	excludedEdge    []bool
	excludedVertex  []bool
	restrictVertex  []bool
	restrictEdge    []bool
	hasRestrictVert bool
	hasRestrictEdge bool

	// candScratch[d] is reused by candidates() at search depth d to
	// collect and deduplicate candidate vertices without allocating.
	// One buffer per depth: an outer depth is still iterating its
	// slice while deeper recursion levels build theirs.
	candScratch [][]graph.VertexID
	candSeen    []bool // target vertex ID already collected (reset per call)

	limit   int
	results []Embedding
	// dense switches result collection to DenseEmbedding (requires a
	// dense-ID pattern); the map-backed results slice stays empty.
	dense        bool
	denseResults []DenseEmbedding
	// maxSteps bounds the number of search-tree nodes expanded; 0
	// means unbounded. Exceeding the budget aborts the search with
	// whatever results were found.
	maxSteps int
	steps    int
	aborted  bool
}

// newMatcher builds the dense search state for one pattern/target
// pair.
func newMatcher(pattern, target *graph.Graph, opts Options) *matcher {
	m := &matcher{
		pattern:    pattern,
		target:     target,
		order:      searchOrder(pattern),
		pEdges:     pattern.Edges(),
		assigned:   make([]graph.VertexID, pattern.VertexCap()),
		usedVertex: make([]bool, target.VertexCap()),
		usedEdge:   make([]bool, target.EdgeCap()),
		edgeMap:    make([]graph.EdgeID, pattern.EdgeCap()),
		candSeen:   make([]bool, target.VertexCap()),
		limit:      opts.Limit,
		maxSteps:   opts.MaxSteps,
	}
	m.candScratch = make([][]graph.VertexID, len(m.order))
	for i := range m.assigned {
		m.assigned[i] = -1
	}
	for i := range m.edgeMap {
		m.edgeMap[i] = -1
	}
	if len(opts.ExcludedEdges) > 0 {
		m.excludedEdge = densifyEdges(opts.ExcludedEdges, target.EdgeCap())
	}
	if len(opts.ExcludedVertices) > 0 {
		m.excludedVertex = densifyVertices(opts.ExcludedVertices, target.VertexCap())
	}
	if opts.RestrictVertices != nil {
		m.hasRestrictVert = true
		m.restrictVertex = densifyVertices(opts.RestrictVertices, target.VertexCap())
	}
	if opts.RestrictEdges != nil {
		m.hasRestrictEdge = true
		m.restrictEdge = densifyEdges(opts.RestrictEdges, target.EdgeCap())
	}
	return m
}

func densifyVertices(set map[graph.VertexID]bool, cap int) []bool {
	dense := make([]bool, cap)
	for id, ok := range set {
		if ok && int(id) < cap && id >= 0 {
			dense[id] = true
		}
	}
	return dense
}

func densifyEdges(set map[graph.EdgeID]bool, cap int) []bool {
	dense := make([]bool, cap)
	for id, ok := range set {
		if ok && int(id) < cap && id >= 0 {
			dense[id] = true
		}
	}
	return dense
}

// excludeEmbedding bars emb's target edges (and, when vertices is
// set, its target vertices) from subsequent searches on this matcher.
func (m *matcher) excludeEmbedding(emb Embedding, vertices bool) {
	if m.excludedEdge == nil {
		m.excludedEdge = make([]bool, m.target.EdgeCap())
	}
	for _, te := range emb.Edges {
		m.excludedEdge[te] = true
	}
	if vertices {
		if m.excludedVertex == nil {
			m.excludedVertex = make([]bool, m.target.VertexCap())
		}
		for _, tv := range emb.Vertices {
			m.excludedVertex[tv] = true
		}
	}
}

// resetSearch clears per-search state in O(pattern) — after a search
// ends, the only live entries in the dense arrays are the current
// (possibly partial, on abort) assignment — so the matcher can run
// again against the same target without reallocating its graph-sized
// state. Exclusions persist.
func (m *matcher) resetSearch() {
	for _, pv := range m.order {
		if tv := m.assigned[pv]; tv >= 0 {
			m.usedVertex[tv] = false
			m.assigned[pv] = -1
		}
	}
	for _, pe := range m.pEdges {
		if te := m.edgeMap[pe]; te >= 0 {
			m.usedEdge[te] = false
			m.edgeMap[pe] = -1
		}
	}
	m.results = nil
	m.denseResults = nil
	m.steps = 0
	m.aborted = false
}

// Options tunes a matching call.
type Options struct {
	// Limit stops after this many embeddings (<= 0 finds all).
	Limit int
	// MaxSteps bounds backtracking-node expansions (<= 0 unbounded);
	// searches that exceed it return partial results.
	MaxSteps int
	// ExcludedEdges are target edges the match may not use.
	ExcludedEdges map[graph.EdgeID]bool
	// ExcludedVertices are target vertices the match may not use.
	ExcludedVertices map[graph.VertexID]bool
	// RestrictVertices, when non-nil, limits the match to these
	// target vertices (used to verify an instance candidate against
	// a specific target subgraph).
	RestrictVertices map[graph.VertexID]bool
	// RestrictEdges, when non-nil, limits the match to these target
	// edges.
	RestrictEdges map[graph.EdgeID]bool
}

// FindEmbeddings returns embeddings of pattern into target under the
// Section 4 matching relation. The pattern must have at least one
// vertex. Results are deterministic for identical inputs.
func FindEmbeddings(pattern, target *graph.Graph, opts Options) []Embedding {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return nil
	}
	m := newMatcher(pattern, target, opts)
	m.search(0)
	return m.results
}

// Contains reports whether target contains at least one embedding of
// pattern.
func Contains(target, pattern *graph.Graph) bool {
	return len(FindEmbeddings(pattern, target, Options{Limit: 1})) > 0
}

// ContainsBudget is Contains with a step budget; it returns
// (found, completed) where completed is false if the search aborted
// on budget before finding anything.
func ContainsBudget(target, pattern *graph.Graph, maxSteps int) (found, completed bool) {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return false, true
	}
	m := newMatcher(pattern, target, Options{Limit: 1, MaxSteps: maxSteps})
	m.search(0)
	return len(m.results) > 0, !m.aborted
}

// searchOrder returns the pattern vertices ordered so that after the
// first, every vertex is adjacent to an earlier one when possible
// (connected patterns then never branch on disconnected candidates).
// Ties break toward higher degree for earlier pruning.
func searchOrder(p *graph.Graph) []graph.VertexID {
	vs := p.Vertices()
	if len(vs) == 0 {
		return nil
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := p.Degree(vs[i]), p.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	order := []graph.VertexID{vs[0]}
	placed := map[graph.VertexID]bool{vs[0]: true}
	for len(order) < len(vs) {
		best := graph.VertexID(-1)
		bestDeg := -1
		// Prefer vertices adjacent to the placed set.
		for _, v := range vs {
			if placed[v] {
				continue
			}
			adj := false
			for _, u := range p.Neighbors(v) {
				if placed[u] {
					adj = true
					break
				}
			}
			if adj && p.Degree(v) > bestDeg {
				best, bestDeg = v, p.Degree(v)
			}
		}
		if best == -1 {
			for _, v := range vs {
				if !placed[v] {
					best = v
					break
				}
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

func (m *matcher) search(depth int) bool {
	if m.maxSteps > 0 {
		m.steps++
		if m.steps > m.maxSteps {
			m.aborted = true
			return true // stop everything
		}
	}
	if depth == len(m.order) {
		if m.dense {
			m.denseResults = append(m.denseResults, m.emitDense())
		} else {
			m.results = append(m.results, m.emit())
		}
		return m.limit > 0 && len(m.results)+len(m.denseResults) >= m.limit
	}
	pv := m.order[depth]
	for _, tv := range m.candidates(depth, pv) {
		if m.usedVertex[tv] || (m.excludedVertex != nil && m.excludedVertex[tv]) {
			continue
		}
		if m.hasRestrictVert && !m.restrictVertex[tv] {
			continue
		}
		chosen, ok := m.tryAssign(pv, tv)
		if !ok {
			continue
		}
		m.assigned[pv] = tv
		m.usedVertex[tv] = true
		if m.search(depth + 1) {
			return true
		}
		m.unassign(pv, tv, chosen)
	}
	return false
}

// emit materialises the current dense assignment as a map-backed
// Embedding (the public result shape).
func (m *matcher) emit() Embedding {
	e := Embedding{
		Vertices: make(map[graph.VertexID]graph.VertexID, len(m.order)),
		Edges:    make(map[graph.EdgeID]graph.EdgeID, len(m.pEdges)),
	}
	for _, pv := range m.order {
		e.Vertices[pv] = m.assigned[pv]
	}
	for _, pe := range m.pEdges {
		if te := m.edgeMap[pe]; te >= 0 {
			e.Edges[pe] = te
		}
	}
	return e
}

// emitDense materialises the current assignment in dense form. The
// pattern must have dense IDs (assigned/edgeMap fully populated over
// [0, cap)), which holds for every pattern graph the miners build.
func (m *matcher) emitDense() DenseEmbedding {
	e := DenseEmbedding{
		Verts: make([]graph.VertexID, len(m.assigned)),
		Edges: make([]graph.EdgeID, len(m.edgeMap)),
	}
	copy(e.Verts, m.assigned)
	copy(e.Edges, m.edgeMap)
	return e
}

// candidates returns plausible target vertices for pattern vertex pv.
// If pv has an already-assigned neighbor, candidates come from that
// neighbor's label-indexed adjacency (only target edges carrying the
// anchoring pattern edge's label are considered); otherwise the
// target's vertices with pv's label are scanned. The returned slice
// is the depth's scratch buffer, valid until the next call at the
// same depth.
func (m *matcher) candidates(depth int, pv graph.VertexID) []graph.VertexID {
	plabel := m.pattern.Vertex(pv).Label
	// Find an assigned pattern neighbor to anchor the candidate set.
	for _, pe := range m.pattern.OutEdges(pv) {
		ped := m.pattern.Edge(pe)
		if tv := m.assigned[ped.To]; tv >= 0 {
			return m.collectAnchored(depth, m.target.InEdgesLabeled(tv, ped.Label), true, plabel, pv)
		}
	}
	for _, pe := range m.pattern.InEdges(pv) {
		ped := m.pattern.Edge(pe)
		if tv := m.assigned[ped.From]; tv >= 0 {
			return m.collectAnchored(depth, m.target.OutEdgesLabeled(tv, ped.Label), false, plabel, pv)
		}
	}
	return m.filterCands(depth, m.target.VerticesWithLabel(plabel), plabel, pv)
}

// collectAnchored gathers the distinct endpoints (From when fromSide,
// else To) of the given target edges into the depth's scratch slice,
// then filters by label and degree.
func (m *matcher) collectAnchored(depth int, edges []graph.EdgeID, fromSide bool, plabel string, pv graph.VertexID) []graph.VertexID {
	cands := m.candScratch[depth][:0]
	for _, e := range edges {
		ed := m.target.Edge(e)
		v := ed.To
		if fromSide {
			v = ed.From
		}
		if !m.candSeen[v] {
			m.candSeen[v] = true
			cands = append(cands, v)
		}
	}
	for _, v := range cands {
		m.candSeen[v] = false
	}
	m.candScratch[depth] = cands
	return m.filterCands(depth, cands, plabel, pv)
}

// filterCands keeps candidates whose label and degrees are compatible
// with pv, writing into the depth's scratch buffer. When cands is
// that same buffer the filter runs in place (the write index never
// passes the read index); index-owned slices are never modified.
func (m *matcher) filterCands(depth int, cands []graph.VertexID, plabel string, pv graph.VertexID) []graph.VertexID {
	pOut, pIn := m.pattern.OutDegree(pv), m.pattern.InDegree(pv)
	res := m.candScratch[depth][:0]
	if cap(res) < len(cands) {
		res = make([]graph.VertexID, 0, len(cands))
	}
	for _, tv := range cands {
		if m.target.Vertex(tv).Label != plabel {
			continue
		}
		if m.target.OutDegree(tv) < pOut || m.target.InDegree(tv) < pIn {
			continue
		}
		res = append(res, tv)
	}
	m.candScratch[depth] = res
	return res
}

// tryAssign checks that mapping pv -> tv is consistent with edges to
// already-assigned vertices, greedily reserving one unused target
// edge per pattern edge. It returns the reserved pattern edges for
// rollback.
func (m *matcher) tryAssign(pv, tv graph.VertexID) ([]graph.EdgeID, bool) {
	var reserved []graph.EdgeID
	rollback := func() {
		for _, pe := range reserved {
			te := m.edgeMap[pe]
			m.edgeMap[pe] = -1
			m.usedEdge[te] = false
		}
	}
	// Outgoing pattern edges pv -> assigned. A self-loop's endpoint is
	// pv itself, not yet in m.assigned (search records the assignment
	// only after tryAssign succeeds), so it anchors on tv directly —
	// loop edges must reserve distinct target loops like any other
	// parallel edge class, or multiplicities would go unchecked.
	for _, pe := range m.pattern.OutEdges(pv) {
		ped := m.pattern.Edge(pe)
		tu := m.assigned[ped.To]
		if ped.To == pv {
			tu = tv
		}
		if tu < 0 {
			continue
		}
		if !m.reserveEdge(pe, tv, tu, ped.Label, &reserved) {
			rollback()
			return nil, false
		}
	}
	// Incoming pattern edges assigned -> pv.
	for _, pe := range m.pattern.InEdges(pv) {
		ped := m.pattern.Edge(pe)
		tu := m.assigned[ped.From]
		if tu < 0 {
			continue
		}
		if m.edgeMap[pe] >= 0 {
			continue // self-loop already reserved via the OutEdges pass
		}
		if !m.reserveEdge(pe, tu, tv, ped.Label, &reserved) {
			rollback()
			return nil, false
		}
	}
	return reserved, true
}

// reserveEdge finds an unused target edge from -> to with the given
// label and reserves it for pattern edge pe. The label index narrows
// the scan to correctly labeled edges up front.
func (m *matcher) reserveEdge(pe graph.EdgeID, from, to graph.VertexID, label string, reserved *[]graph.EdgeID) bool {
	for _, te := range m.target.OutEdgesLabeled(from, label) {
		if m.target.Edge(te).To != to {
			continue
		}
		if m.usedEdge[te] || (m.excludedEdge != nil && m.excludedEdge[te]) {
			continue
		}
		if m.hasRestrictEdge && !m.restrictEdge[te] {
			continue
		}
		m.usedEdge[te] = true
		m.edgeMap[pe] = te
		*reserved = append(*reserved, pe)
		return true
	}
	return false
}

func (m *matcher) unassign(pv, tv graph.VertexID, reserved []graph.EdgeID) {
	for _, pe := range reserved {
		te := m.edgeMap[pe]
		m.edgeMap[pe] = -1
		m.usedEdge[te] = false
	}
	m.assigned[pv] = -1
	m.usedVertex[tv] = false
}

// Isomorphic reports whether a and b are isomorphic labeled directed
// multigraphs (Section 4's "identical" relation).
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() == 0 {
		return true
	}
	// An injective, edge-injective embedding between equal-size
	// graphs is a bijection on both vertices and edges.
	return Contains(b, a)
}

// CountEmbeddings returns the number of embeddings of pattern in
// target, up to limit (<= 0 for all). Automorphic images of the same
// subgraph are counted separately.
func CountEmbeddings(pattern, target *graph.Graph, limit int) int {
	return len(FindEmbeddings(pattern, target, Options{Limit: limit}))
}

// CountNonOverlapping greedily counts pairwise edge-disjoint
// instances of pattern in target. SUBDUE evaluates substructures by
// the number of non-overlapping instances (the paper runs it "without
// allowing overlap"); greedy extraction gives the standard lower
// bound used by the original system.
func CountNonOverlapping(pattern, target *graph.Graph, maxSteps int) int {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return 0
	}
	// One matcher serves every extraction round: exclusions
	// accumulate in its dense state and each round resets in
	// O(pattern), instead of rebuilding graph-sized state per
	// instance.
	m := newMatcher(pattern, target, Options{Limit: 1, MaxSteps: maxSteps})
	count := 0
	for {
		m.search(0)
		if len(m.results) == 0 {
			return count
		}
		count++
		m.excludeEmbedding(m.results[0], false)
		m.resetSearch()
	}
}

// Reanchorer repeatedly verifies that concrete target subgraphs are
// instances of one fixed pattern, returning embeddings keyed to that
// pattern's IDs. It reuses one matcher's dense graph-sized state
// across calls — each Reanchor costs O(pattern), not O(target) —
// which is what SUBDUE's instance re-anchoring needs: one pattern,
// one big target, many candidate subgraphs. Not safe for concurrent
// use; create one per goroutine.
type Reanchorer struct {
	m *matcher
}

// NewReanchorer prepares re-anchoring of subgraphs of target onto
// pattern. maxSteps bounds each search (<= 0 unbounded).
func NewReanchorer(pattern, target *graph.Graph, maxSteps int) *Reanchorer {
	m := newMatcher(pattern, target, Options{Limit: 1, MaxSteps: maxSteps})
	m.restrictVertex = make([]bool, target.VertexCap())
	m.restrictEdge = make([]bool, target.EdgeCap())
	m.hasRestrictVert = true
	m.hasRestrictEdge = true
	return &Reanchorer{m: m}
}

// Reanchor maps the pattern onto exactly the target vertices and
// edges covered by emb (an embedding of some isomorphic construction
// of the pattern), returning an embedding keyed to the pattern's own
// vertex/edge IDs.
func (r *Reanchorer) Reanchor(emb Embedding) (Embedding, bool) {
	m := r.m
	if m.pattern.NumVertices() != len(emb.Vertices) {
		return Embedding{}, false
	}
	for _, tv := range emb.Vertices {
		m.restrictVertex[tv] = true
	}
	for _, te := range emb.Edges {
		m.restrictEdge[te] = true
	}
	m.search(0)
	var out Embedding
	ok := len(m.results) > 0
	if ok {
		out = m.results[0]
	}
	for _, tv := range emb.Vertices {
		m.restrictVertex[tv] = false
	}
	for _, te := range emb.Edges {
		m.restrictEdge[te] = false
	}
	m.resetSearch()
	return out, ok
}

// EmbedInSubgraph finds one embedding of pattern using only the given
// target vertices and edges — verifying that a concrete target
// subgraph is an instance of pattern. The search space is tiny
// (pattern-sized), but each call pays one allocation of dense
// matcher state sized to the target graph; for repeated checks
// against one pattern use Reanchorer.
func EmbedInSubgraph(pattern, target *graph.Graph, vset map[graph.VertexID]bool, eset map[graph.EdgeID]bool, maxSteps int) (Embedding, bool) {
	embs := FindEmbeddings(pattern, target, Options{
		Limit: 1, MaxSteps: maxSteps,
		RestrictVertices: vset, RestrictEdges: eset,
	})
	if len(embs) == 0 {
		return Embedding{}, false
	}
	return embs[0], true
}

// GreedyNonOverlap selects a maximal prefix-greedy subset of
// embeddings that are pairwise vertex- and edge-disjoint — the
// "no overlap" instance count SUBDUE evaluates with.
func GreedyNonOverlap(embs []Embedding) []Embedding {
	usedV := make(map[graph.VertexID]bool)
	usedE := make(map[graph.EdgeID]bool)
	var out []Embedding
	for _, emb := range embs {
		ok := true
		for _, tv := range emb.Vertices {
			if usedV[tv] {
				ok = false
				break
			}
		}
		if ok {
			for _, te := range emb.Edges {
				if usedE[te] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for _, tv := range emb.Vertices {
			usedV[tv] = true
		}
		for _, te := range emb.Edges {
			usedE[te] = true
		}
		out = append(out, emb)
	}
	return out
}

// FindNonOverlapping greedily extracts pairwise vertex- and
// edge-disjoint instances of pattern in target, up to maxInstances
// (<= 0 for all). Vertex-disjointness is the "no overlap" notion of
// the paper's SUBDUE runs and guarantees termination even for
// edgeless patterns.
func FindNonOverlapping(pattern, target *graph.Graph, maxInstances, maxSteps int) []Embedding {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return nil
	}
	// One matcher serves every extraction round (see
	// CountNonOverlapping).
	m := newMatcher(pattern, target, Options{Limit: 1, MaxSteps: maxSteps})
	var result []Embedding
	for maxInstances <= 0 || len(result) < maxInstances {
		m.search(0)
		if len(m.results) == 0 {
			return result
		}
		emb := m.results[0]
		result = append(result, emb)
		m.excludeEmbedding(emb, true)
		m.resetSearch()
	}
	return result
}
