// Package iso implements subgraph isomorphism, graph isomorphism and
// quasi-canonical codes for the labeled directed multigraphs of
// package graph.
//
// Section 4 of the paper defines when two subgraphs support the same
// pattern: there must be a bijection between their vertices that
// preserves vertex labels and maps every labeled edge onto a
// correspondingly labeled edge. This package supplies exactly that
// matching relation, used by both the FSG reimplementation (support
// counting, candidate deduplication) and the SUBDUE reimplementation
// (instance discovery).
package iso

import (
	"sort"

	"tnkd/internal/graph"
)

// Embedding records one occurrence of a pattern inside a target
// graph: an injective vertex mapping plus the specific target edge
// matched by each pattern edge (edge-injective, so multigraph
// instances consume distinct parallel edges).
type Embedding struct {
	Vertices map[graph.VertexID]graph.VertexID // pattern vertex -> target vertex
	Edges    map[graph.EdgeID]graph.EdgeID     // pattern edge -> target edge
}

// clone deep-copies an embedding.
func (e Embedding) clone() Embedding {
	c := Embedding{
		Vertices: make(map[graph.VertexID]graph.VertexID, len(e.Vertices)),
		Edges:    make(map[graph.EdgeID]graph.EdgeID, len(e.Edges)),
	}
	for k, v := range e.Vertices {
		c.Vertices[k] = v
	}
	for k, v := range e.Edges {
		c.Edges[k] = v
	}
	return c
}

// matcher holds the state of one backtracking search.
type matcher struct {
	pattern, target *graph.Graph

	order []graph.VertexID // pattern vertex assignment order

	assigned   map[graph.VertexID]graph.VertexID // pattern -> target
	usedVertex map[graph.VertexID]bool           // target vertices in use
	usedEdge   map[graph.EdgeID]bool             // target edges in use
	edgeMap    map[graph.EdgeID]graph.EdgeID

	// excludedEdges / excludedVertices are target elements
	// unavailable to this search (used by non-overlapping instance
	// counting).
	excludedEdges    map[graph.EdgeID]bool
	excludedVertices map[graph.VertexID]bool
	restrictVertices map[graph.VertexID]bool
	restrictEdges    map[graph.EdgeID]bool

	limit   int
	results []Embedding
	// maxSteps bounds the number of search-tree nodes expanded; 0
	// means unbounded. Exceeding the budget aborts the search with
	// whatever results were found.
	maxSteps int
	steps    int
	aborted  bool
}

// Options tunes a matching call.
type Options struct {
	// Limit stops after this many embeddings (<= 0 finds all).
	Limit int
	// MaxSteps bounds backtracking-node expansions (<= 0 unbounded);
	// searches that exceed it return partial results.
	MaxSteps int
	// ExcludedEdges are target edges the match may not use.
	ExcludedEdges map[graph.EdgeID]bool
	// ExcludedVertices are target vertices the match may not use.
	ExcludedVertices map[graph.VertexID]bool
	// RestrictVertices, when non-nil, limits the match to these
	// target vertices (used to verify an instance candidate against
	// a specific target subgraph).
	RestrictVertices map[graph.VertexID]bool
	// RestrictEdges, when non-nil, limits the match to these target
	// edges.
	RestrictEdges map[graph.EdgeID]bool
}

// FindEmbeddings returns embeddings of pattern into target under the
// Section 4 matching relation. The pattern must have at least one
// vertex. Results are deterministic for identical inputs.
func FindEmbeddings(pattern, target *graph.Graph, opts Options) []Embedding {
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return nil
	}
	m := &matcher{
		pattern:          pattern,
		target:           target,
		order:            searchOrder(pattern),
		assigned:         make(map[graph.VertexID]graph.VertexID, pattern.NumVertices()),
		usedVertex:       make(map[graph.VertexID]bool, pattern.NumVertices()),
		usedEdge:         make(map[graph.EdgeID]bool, pattern.NumEdges()),
		edgeMap:          make(map[graph.EdgeID]graph.EdgeID, pattern.NumEdges()),
		excludedEdges:    opts.ExcludedEdges,
		excludedVertices: opts.ExcludedVertices,
		restrictVertices: opts.RestrictVertices,
		restrictEdges:    opts.RestrictEdges,
		limit:            opts.Limit,
		maxSteps:         opts.MaxSteps,
	}
	m.search(0)
	return m.results
}

// Contains reports whether target contains at least one embedding of
// pattern.
func Contains(target, pattern *graph.Graph) bool {
	return len(FindEmbeddings(pattern, target, Options{Limit: 1})) > 0
}

// ContainsBudget is Contains with a step budget; it returns
// (found, completed) where completed is false if the search aborted
// on budget before finding anything.
func ContainsBudget(target, pattern *graph.Graph, maxSteps int) (found, completed bool) {
	m := &matcher{
		pattern:    pattern,
		target:     target,
		order:      searchOrder(pattern),
		assigned:   make(map[graph.VertexID]graph.VertexID, pattern.NumVertices()),
		usedVertex: make(map[graph.VertexID]bool, pattern.NumVertices()),
		usedEdge:   make(map[graph.EdgeID]bool, pattern.NumEdges()),
		edgeMap:    make(map[graph.EdgeID]graph.EdgeID, pattern.NumEdges()),
		limit:      1,
		maxSteps:   maxSteps,
	}
	if pattern.NumVertices() == 0 || pattern.NumVertices() > target.NumVertices() ||
		pattern.NumEdges() > target.NumEdges() {
		return false, true
	}
	m.search(0)
	return len(m.results) > 0, !m.aborted
}

// searchOrder returns the pattern vertices ordered so that after the
// first, every vertex is adjacent to an earlier one when possible
// (connected patterns then never branch on disconnected candidates).
// Ties break toward higher degree for earlier pruning.
func searchOrder(p *graph.Graph) []graph.VertexID {
	vs := p.Vertices()
	if len(vs) == 0 {
		return nil
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := p.Degree(vs[i]), p.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	order := []graph.VertexID{vs[0]}
	placed := map[graph.VertexID]bool{vs[0]: true}
	for len(order) < len(vs) {
		best := graph.VertexID(-1)
		bestDeg := -1
		// Prefer vertices adjacent to the placed set.
		for _, v := range vs {
			if placed[v] {
				continue
			}
			adj := false
			for _, u := range p.Neighbors(v) {
				if placed[u] {
					adj = true
					break
				}
			}
			if adj && p.Degree(v) > bestDeg {
				best, bestDeg = v, p.Degree(v)
			}
		}
		if best == -1 {
			for _, v := range vs {
				if !placed[v] {
					best = v
					break
				}
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}

func (m *matcher) search(depth int) bool {
	if m.maxSteps > 0 {
		m.steps++
		if m.steps > m.maxSteps {
			m.aborted = true
			return true // stop everything
		}
	}
	if depth == len(m.order) {
		m.results = append(m.results, Embedding{Vertices: m.assigned, Edges: m.edgeMap}.clone())
		return m.limit > 0 && len(m.results) >= m.limit
	}
	pv := m.order[depth]
	for _, tv := range m.candidates(pv) {
		if m.usedVertex[tv] || (m.excludedVertices != nil && m.excludedVertices[tv]) {
			continue
		}
		if m.restrictVertices != nil && !m.restrictVertices[tv] {
			continue
		}
		chosen, ok := m.tryAssign(pv, tv)
		if !ok {
			continue
		}
		m.assigned[pv] = tv
		m.usedVertex[tv] = true
		if m.search(depth + 1) {
			return true
		}
		m.unassign(pv, tv, chosen)
	}
	return false
}

// candidates returns plausible target vertices for pattern vertex pv.
// If pv has an already-assigned neighbor, candidates come from that
// neighbor's adjacency; otherwise all target vertices are scanned.
func (m *matcher) candidates(pv graph.VertexID) []graph.VertexID {
	plabel := m.pattern.Vertex(pv).Label
	// Find an assigned pattern neighbor to anchor the candidate set.
	for _, pe := range m.pattern.OutEdges(pv) {
		to := m.pattern.Edge(pe).To
		if tv, ok := m.assigned[to]; ok {
			return m.filterCands(m.inNeighbors(tv), plabel, pv)
		}
	}
	for _, pe := range m.pattern.InEdges(pv) {
		from := m.pattern.Edge(pe).From
		if tv, ok := m.assigned[from]; ok {
			return m.filterCands(m.outNeighbors(tv), plabel, pv)
		}
	}
	var all []graph.VertexID
	for _, tv := range m.target.Vertices() {
		all = append(all, tv)
	}
	return m.filterCands(all, plabel, pv)
}

func (m *matcher) inNeighbors(tv graph.VertexID) []graph.VertexID {
	var res []graph.VertexID
	seen := map[graph.VertexID]bool{}
	for _, e := range m.target.InEdges(tv) {
		f := m.target.Edge(e).From
		if !seen[f] {
			seen[f] = true
			res = append(res, f)
		}
	}
	return res
}

func (m *matcher) outNeighbors(tv graph.VertexID) []graph.VertexID {
	var res []graph.VertexID
	seen := map[graph.VertexID]bool{}
	for _, e := range m.target.OutEdges(tv) {
		t := m.target.Edge(e).To
		if !seen[t] {
			seen[t] = true
			res = append(res, t)
		}
	}
	return res
}

func (m *matcher) filterCands(cands []graph.VertexID, plabel string, pv graph.VertexID) []graph.VertexID {
	pOut, pIn := m.pattern.OutDegree(pv), m.pattern.InDegree(pv)
	res := cands[:0]
	for _, tv := range cands {
		if m.target.Vertex(tv).Label != plabel {
			continue
		}
		if m.target.OutDegree(tv) < pOut || m.target.InDegree(tv) < pIn {
			continue
		}
		res = append(res, tv)
	}
	return res
}

// tryAssign checks that mapping pv -> tv is consistent with edges to
// already-assigned vertices, greedily reserving one unused target
// edge per pattern edge. It returns the reserved pattern edges for
// rollback.
func (m *matcher) tryAssign(pv, tv graph.VertexID) ([]graph.EdgeID, bool) {
	var reserved []graph.EdgeID
	rollback := func() {
		for _, pe := range reserved {
			te := m.edgeMap[pe]
			delete(m.edgeMap, pe)
			delete(m.usedEdge, te)
		}
	}
	// Outgoing pattern edges pv -> assigned.
	for _, pe := range m.pattern.OutEdges(pv) {
		ped := m.pattern.Edge(pe)
		tu, ok := m.assigned[ped.To]
		if !ok {
			continue
		}
		if !m.reserveEdge(pe, tv, tu, ped.Label, &reserved) {
			rollback()
			return nil, false
		}
	}
	// Incoming pattern edges assigned -> pv.
	for _, pe := range m.pattern.InEdges(pv) {
		ped := m.pattern.Edge(pe)
		tu, ok := m.assigned[ped.From]
		if !ok {
			continue
		}
		if m.hasEdgeMap(pe) {
			continue // self-loop already reserved via the OutEdges pass
		}
		if !m.reserveEdge(pe, tu, tv, ped.Label, &reserved) {
			rollback()
			return nil, false
		}
	}
	return reserved, true
}

func (m *matcher) hasEdgeMap(pe graph.EdgeID) bool {
	_, ok := m.edgeMap[pe]
	return ok
}

// reserveEdge finds an unused target edge from -> to with the given
// label and reserves it for pattern edge pe.
func (m *matcher) reserveEdge(pe graph.EdgeID, from, to graph.VertexID, label string, reserved *[]graph.EdgeID) bool {
	for _, te := range m.target.OutEdges(from) {
		ted := m.target.Edge(te)
		if ted.To != to || ted.Label != label {
			continue
		}
		if m.usedEdge[te] || (m.excludedEdges != nil && m.excludedEdges[te]) {
			continue
		}
		if m.restrictEdges != nil && !m.restrictEdges[te] {
			continue
		}
		m.usedEdge[te] = true
		m.edgeMap[pe] = te
		*reserved = append(*reserved, pe)
		return true
	}
	return false
}

func (m *matcher) unassign(pv, tv graph.VertexID, reserved []graph.EdgeID) {
	for _, pe := range reserved {
		te := m.edgeMap[pe]
		delete(m.edgeMap, pe)
		delete(m.usedEdge, te)
	}
	delete(m.assigned, pv)
	delete(m.usedVertex, tv)
}

// Isomorphic reports whether a and b are isomorphic labeled directed
// multigraphs (Section 4's "identical" relation).
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() == 0 {
		return true
	}
	// An injective, edge-injective embedding between equal-size
	// graphs is a bijection on both vertices and edges.
	return Contains(b, a)
}

// CountEmbeddings returns the number of embeddings of pattern in
// target, up to limit (<= 0 for all). Automorphic images of the same
// subgraph are counted separately.
func CountEmbeddings(pattern, target *graph.Graph, limit int) int {
	return len(FindEmbeddings(pattern, target, Options{Limit: limit}))
}

// CountNonOverlapping greedily counts pairwise edge-disjoint
// instances of pattern in target. SUBDUE evaluates substructures by
// the number of non-overlapping instances (the paper runs it "without
// allowing overlap"); greedy extraction gives the standard lower
// bound used by the original system.
func CountNonOverlapping(pattern, target *graph.Graph, maxSteps int) int {
	excluded := make(map[graph.EdgeID]bool)
	count := 0
	for {
		embs := FindEmbeddings(pattern, target, Options{
			Limit: 1, MaxSteps: maxSteps, ExcludedEdges: excluded,
		})
		if len(embs) == 0 {
			return count
		}
		count++
		for _, te := range embs[0].Edges {
			excluded[te] = true
		}
	}
}

// EmbedInSubgraph finds one embedding of pattern using only the given
// target vertices and edges — verifying that a concrete target
// subgraph is an instance of pattern. The search space is tiny
// (pattern-sized), so this is cheap.
func EmbedInSubgraph(pattern, target *graph.Graph, vset map[graph.VertexID]bool, eset map[graph.EdgeID]bool, maxSteps int) (Embedding, bool) {
	embs := FindEmbeddings(pattern, target, Options{
		Limit: 1, MaxSteps: maxSteps,
		RestrictVertices: vset, RestrictEdges: eset,
	})
	if len(embs) == 0 {
		return Embedding{}, false
	}
	return embs[0], true
}

// GreedyNonOverlap selects a maximal prefix-greedy subset of
// embeddings that are pairwise vertex- and edge-disjoint — the
// "no overlap" instance count SUBDUE evaluates with.
func GreedyNonOverlap(embs []Embedding) []Embedding {
	usedV := make(map[graph.VertexID]bool)
	usedE := make(map[graph.EdgeID]bool)
	var out []Embedding
	for _, emb := range embs {
		ok := true
		for _, tv := range emb.Vertices {
			if usedV[tv] {
				ok = false
				break
			}
		}
		if ok {
			for _, te := range emb.Edges {
				if usedE[te] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for _, tv := range emb.Vertices {
			usedV[tv] = true
		}
		for _, te := range emb.Edges {
			usedE[te] = true
		}
		out = append(out, emb)
	}
	return out
}

// FindNonOverlapping greedily extracts pairwise vertex- and
// edge-disjoint instances of pattern in target, up to maxInstances
// (<= 0 for all). Vertex-disjointness is the "no overlap" notion of
// the paper's SUBDUE runs and guarantees termination even for
// edgeless patterns.
func FindNonOverlapping(pattern, target *graph.Graph, maxInstances, maxSteps int) []Embedding {
	exEdges := make(map[graph.EdgeID]bool)
	exVertices := make(map[graph.VertexID]bool)
	var result []Embedding
	for maxInstances <= 0 || len(result) < maxInstances {
		embs := FindEmbeddings(pattern, target, Options{
			Limit: 1, MaxSteps: maxSteps,
			ExcludedEdges: exEdges, ExcludedVertices: exVertices,
		})
		if len(embs) == 0 {
			return result
		}
		result = append(result, embs[0])
		for _, te := range embs[0].Edges {
			exEdges[te] = true
		}
		for _, tv := range embs[0].Vertices {
			exVertices[tv] = true
		}
	}
	return result
}
