package iso

import (
	"fmt"
	"math/rand"
	"testing"

	"tnkd/internal/graph"
)

// randGraph builds a random labeled directed graph.
func randGraph(rng *rand.Rand, maxV, maxE, vLabels, eLabels int) *graph.Graph {
	g := graph.New("r")
	nv := 2 + rng.Intn(maxV-1)
	vs := make([]graph.VertexID, nv)
	for i := range vs {
		vs[i] = g.AddVertex(fmt.Sprintf("v%d", rng.Intn(vLabels)))
	}
	ne := 1 + rng.Intn(maxE)
	for i := 0; i < ne; i++ {
		a, b := vs[rng.Intn(nv)], vs[rng.Intn(nv)]
		if a != b {
			g.AddEdge(a, b, fmt.Sprintf("e%d", rng.Intn(eLabels)))
		}
	}
	return g
}

// randomConnectedSubgraph extracts a random connected subgraph of g
// (guaranteed embeddable by construction).
func randomConnectedSubgraph(rng *rand.Rand, g *graph.Graph, edges int) *graph.Graph {
	all := g.Edges()
	if len(all) == 0 {
		return nil
	}
	start := all[rng.Intn(len(all))]
	chosen := map[graph.EdgeID]bool{start: true}
	touched := map[graph.VertexID]bool{}
	ed := g.Edge(start)
	touched[ed.From], touched[ed.To] = true, true
	for len(chosen) < edges {
		var candidates []graph.EdgeID
		for v := range touched {
			for _, e := range append(g.OutEdges(v), g.InEdges(v)...) {
				if !chosen[e] {
					candidates = append(candidates, e)
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		e := candidates[rng.Intn(len(candidates))]
		chosen[e] = true
		eed := g.Edge(e)
		touched[eed.From], touched[eed.To] = true, true
	}
	sub := graph.New("sub")
	remap := map[graph.VertexID]graph.VertexID{}
	vtx := func(v graph.VertexID) graph.VertexID {
		if id, ok := remap[v]; ok {
			return id
		}
		id := sub.AddVertex(g.Vertex(v).Label)
		remap[v] = id
		return id
	}
	for e := range chosen {
		eed := g.Edge(e)
		sub.AddEdge(vtx(eed.From), vtx(eed.To), eed.Label)
	}
	return sub
}

// PropertySubgraphAlwaysEmbeds: a subgraph extracted from g must be
// found by the matcher — completeness on positive instances.
func TestPropertySubgraphAlwaysEmbeds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(rng, 8, 14, 2, 3)
		sub := randomConnectedSubgraph(rng, g, 1+rng.Intn(4))
		if sub == nil {
			continue
		}
		if !Contains(g, sub) {
			t.Fatalf("trial %d: extracted subgraph not found\ngraph:\n%starget:\n%s",
				trial, g.Dump(), sub.Dump())
		}
	}
}

// PropertyEmbeddingIsValid: every reported embedding maps labels,
// directions and multiplicities correctly.
func TestPropertyEmbeddingIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		g := randGraph(rng, 7, 12, 2, 2)
		pat := randomConnectedSubgraph(rng, g, 1+rng.Intn(3))
		if pat == nil {
			continue
		}
		embs := FindEmbeddings(pat, g, Options{Limit: 10})
		if len(embs) == 0 {
			t.Fatalf("trial %d: no embedding for extracted subgraph", trial)
		}
		for _, emb := range embs {
			// Vertex injectivity.
			seen := map[graph.VertexID]bool{}
			for pv, tv := range emb.Vertices {
				if seen[tv] {
					t.Fatalf("trial %d: vertex mapping not injective", trial)
				}
				seen[tv] = true
				if pat.Vertex(pv).Label != g.Vertex(tv).Label {
					t.Fatalf("trial %d: vertex label mismatch", trial)
				}
			}
			// Edge consistency and injectivity.
			seenE := map[graph.EdgeID]bool{}
			for pe, te := range emb.Edges {
				if seenE[te] {
					t.Fatalf("trial %d: edge mapping not injective", trial)
				}
				seenE[te] = true
				ped, ted := pat.Edge(pe), g.Edge(te)
				if ped.Label != ted.Label {
					t.Fatalf("trial %d: edge label mismatch", trial)
				}
				if emb.Vertices[ped.From] != ted.From || emb.Vertices[ped.To] != ted.To {
					t.Fatalf("trial %d: edge endpoints mismatch", trial)
				}
			}
			if len(emb.Edges) != pat.NumEdges() {
				t.Fatalf("trial %d: incomplete edge mapping", trial)
			}
		}
	}
}

// PropertyIsomorphismEquivalence: Isomorphic is reflexive and
// symmetric, and canonical codes are an exact iso invariant: equal
// codes if and only if isomorphic.
func TestPropertyIsomorphismEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 80; trial++ {
		a := randGraph(rng, 6, 9, 2, 2)
		b := randGraph(rng, 6, 9, 2, 2)
		if !Isomorphic(a, a) {
			t.Fatalf("trial %d: not reflexive", trial)
		}
		ab, ba := Isomorphic(a, b), Isomorphic(b, a)
		if ab != ba {
			t.Fatalf("trial %d: not symmetric", trial)
		}
		if ab != (Code(a) == Code(b)) {
			t.Fatalf("trial %d: Isomorphic=%v but code equality=%v\n%s\n%s",
				trial, ab, !ab, a.Dump(), b.Dump())
		}
	}
}

// permuteGraph rebuilds g with vertices inserted in a random order
// and edges shuffled — an isomorphic copy with a scrambled ID space.
func permuteGraph(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	vs := g.Vertices()
	perm := rng.Perm(len(vs))
	out := graph.New(g.Name + "#perm")
	remap := make(map[graph.VertexID]graph.VertexID, len(vs))
	for _, i := range perm {
		remap[vs[i]] = out.AddVertex(g.Vertex(vs[i]).Label)
	}
	es := g.Edges()
	rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	for _, e := range es {
		ed := g.Edge(e)
		out.AddEdge(remap[ed.From], remap[ed.To], ed.Label)
	}
	return out
}

// PropertyCodeInvariantUnderPermutation: a permuted copy always gets
// the identical code — over random graphs including near-uniform
// labelings whose refinement cells stay large.
func TestPropertyCodeInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		// Alternate between label-rich and label-poor (symmetric) graphs.
		vl, el := 3, 3
		if trial%2 == 0 {
			vl, el = 1, 1
		}
		g := randGraph(rng, 8, 12, vl, el)
		p := permuteGraph(rng, g)
		if Code(g) != Code(p) {
			t.Fatalf("trial %d: permuted copy changed the code\n%s\n%s",
				trial, g.Dump(), p.Dump())
		}
	}
}

// PropertyCodeExactOnSymmetricFamilies covers the automorphism-heavy
// shapes that previously exceeded the permutation budget: cycles,
// stars, complete bipartite blocks and disjoint cycle unions. Equal
// codes must coincide exactly with isomorphism across the family.
func TestPropertyCodeExactOnSymmetricFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var family []*graph.Graph
	addCycles := func(name string, lens ...int) {
		g := graph.New(name)
		for _, n := range lens {
			vs := make([]graph.VertexID, n)
			for i := range vs {
				vs[i] = g.AddVertex("*")
			}
			for i := range vs {
				g.AddEdge(vs[i], vs[(i+1)%n], "e")
			}
		}
		family = append(family, g)
	}
	addCycles("c12", 12)
	addCycles("c6c6", 6, 6)
	addCycles("c8c4", 8, 4)
	addCycles("c5c7", 5, 7)
	star := func(name string, spokes int, flip int) *graph.Graph {
		g := graph.New(name)
		h := g.AddVertex("*")
		for i := 0; i < spokes; i++ {
			s := g.AddVertex("*")
			if i < flip {
				g.AddEdge(s, h, "w")
			} else {
				g.AddEdge(h, s, "w")
			}
		}
		return g
	}
	family = append(family, star("s40", 40, 0), star("s40f1", 40, 1), star("s40f2", 40, 2))
	bip := func(name string, a, b int) *graph.Graph {
		g := graph.New(name)
		var left, right []graph.VertexID
		for i := 0; i < a; i++ {
			left = append(left, g.AddVertex("*"))
		}
		for i := 0; i < b; i++ {
			right = append(right, g.AddVertex("*"))
		}
		for _, u := range left {
			for _, v := range right {
				g.AddEdge(u, v, "w")
			}
		}
		return g
	}
	family = append(family, bip("k33", 3, 3), bip("k34", 3, 4), bip("k43", 4, 3), bip("k44", 4, 4))

	for i, a := range family {
		pa := permuteGraph(rng, a)
		if Code(a) != Code(pa) {
			t.Fatalf("%s: permuted copy changed the code", a.Name)
		}
		for j, b := range family {
			if i == j {
				continue
			}
			iso := Isomorphic(a, b)
			if iso != (Code(a) == Code(b)) {
				t.Fatalf("%s vs %s: Isomorphic=%v but codes %s",
					a.Name, b.Name, iso, map[bool]string{true: "equal", false: "differ"}[Code(a) == Code(b)])
			}
		}
	}
}

// PropertyMaskedCodeEqualsSubgraphCode: for random graphs and every
// maskable edge, CodeMasked equals the code of the materialised
// one-edge-deleted subgraph.
func TestPropertyMaskedCodeEqualsSubgraphCode(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		g := randGraph(rng, 7, 10, 2, 2)
		for _, e := range g.Edges() {
			sub := g.Clone()
			sub.RemoveEdge(e)
			sub.RemoveOrphans()
			compact, _ := sub.Compact()
			if CodeMasked(g, e) != Code(compact) {
				t.Fatalf("trial %d: masked code for edge %d diverges\n%s", trial, e, g.Dump())
			}
		}
	}
}

// PropertyNonOverlapDisjoint: instances returned by FindNonOverlapping
// share no vertices or edges.
func TestPropertyNonOverlapDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		g := randGraph(rng, 10, 18, 1, 2)
		pat := randomConnectedSubgraph(rng, g, 1+rng.Intn(2))
		if pat == nil {
			continue
		}
		insts := FindNonOverlapping(pat, g, 0, 100000)
		usedV := map[graph.VertexID]bool{}
		usedE := map[graph.EdgeID]bool{}
		for _, inst := range insts {
			for _, tv := range inst.Vertices {
				if usedV[tv] {
					t.Fatalf("trial %d: shared vertex across instances", trial)
				}
				usedV[tv] = true
			}
			for _, te := range inst.Edges {
				if usedE[te] {
					t.Fatalf("trial %d: shared edge across instances", trial)
				}
				usedE[te] = true
			}
		}
	}
}
