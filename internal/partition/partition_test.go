package partition

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"tnkd/internal/dataset"
	"tnkd/internal/graph"
)

// ring builds a ring of n vertices with labeled edges.
func ring(n int) *graph.Graph {
	g := graph.New("ring")
	vs := make([]graph.VertexID, n)
	for i := range vs {
		vs[i] = g.AddVertex("*")
	}
	for i := range vs {
		g.AddEdge(vs[i], vs[(i+1)%n], "e")
	}
	return g
}

func TestSplitGraphPartitionsAllEdges(t *testing.T) {
	g := ring(40)
	for _, strat := range []Strategy{BreadthFirst, DepthFirst} {
		parts := SplitGraph(g, SplitOptions{K: 5, Strategy: strat, Rand: rand.New(rand.NewSource(3))})
		total := 0
		for _, p := range parts {
			total += p.NumEdges()
			if p.NumEdges() == 0 {
				t.Errorf("%v: empty partition", strat)
			}
		}
		if total != g.NumEdges() {
			t.Errorf("%v: partitioned edges = %d, want %d (edge-disjoint cover)", strat, total, g.NumEdges())
		}
		if g.NumEdges() != 40 {
			t.Error("input graph was mutated")
		}
	}
}

func TestSplitGraphSimilarSizes(t *testing.T) {
	g := ring(100)
	parts := SplitGraph(g, SplitOptions{K: 10, Strategy: DepthFirst, Rand: rand.New(rand.NewSource(7))})
	for _, p := range parts {
		if p.NumEdges() > 30 {
			t.Errorf("partition too large: %d edges (target ~10)", p.NumEdges())
		}
	}
}

func TestSplitGraphPreservesLabels(t *testing.T) {
	g := graph.New("lab")
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.AddEdge(a, b, "x")
	parts := SplitGraph(g, SplitOptions{K: 1})
	if len(parts) != 1 {
		t.Fatalf("parts = %d", len(parts))
	}
	p := parts[0]
	if p.NumEdges() != 1 {
		t.Fatal("edge missing")
	}
	e := p.Edge(p.Edges()[0])
	if p.Vertex(e.From).Label != "A" || p.Vertex(e.To).Label != "B" || e.Label != "x" {
		t.Errorf("labels/direction corrupted: %s", p.Dump())
	}
}

func TestSplitGraphBFPreservesHubs(t *testing.T) {
	// A star with 12 spokes: BF partitioning into 2 parts should keep
	// large fan-outs together; check some partition has a vertex with
	// out-degree >= 6.
	g := graph.New("star")
	hub := g.AddVertex("*")
	for i := 0; i < 12; i++ {
		s := g.AddVertex("*")
		g.AddEdge(hub, s, "w")
	}
	parts := SplitGraph(g, SplitOptions{K: 2, Strategy: BreadthFirst, Rand: rand.New(rand.NewSource(1))})
	maxOut := 0
	for _, p := range parts {
		for _, v := range p.Vertices() {
			if d := p.OutDegree(v); d > maxOut {
				maxOut = d
			}
		}
	}
	if maxOut < 6 {
		t.Errorf("BF max out-degree = %d, expected hub largely intact", maxOut)
	}
}

func TestSplitGraphDFPreservesChains(t *testing.T) {
	// A long path: DF partitioning should produce long chain pieces.
	g := graph.New("path")
	prev := g.AddVertex("*")
	for i := 0; i < 30; i++ {
		next := g.AddVertex("*")
		g.AddEdge(prev, next, "w")
		prev = next
	}
	parts := SplitGraph(g, SplitOptions{K: 3, Strategy: DepthFirst, Rand: rand.New(rand.NewSource(2))})
	longest := 0
	for _, p := range parts {
		if p.NumEdges() > longest {
			longest = p.NumEdges()
		}
	}
	if longest < 8 {
		t.Errorf("DF longest piece = %d edges, want long chain runs", longest)
	}
}

func TestSplitGraphDeterministicWithSeed(t *testing.T) {
	g := ring(24)
	a := SplitGraph(g, SplitOptions{K: 4, Strategy: BreadthFirst, Rand: rand.New(rand.NewSource(9))})
	b := SplitGraph(g, SplitOptions{K: 4, Strategy: BreadthFirst, Rand: rand.New(rand.NewSource(9))})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NumEdges() != b[i].NumEdges() || a[i].NumVertices() != b[i].NumVertices() {
			t.Fatalf("partition %d differs", i)
		}
	}
}

func TestSplitGraphPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for K=0")
		}
	}()
	SplitGraph(ring(4), SplitOptions{K: 0})
}

// temporalDataset builds a tiny dataset with two lanes active on
// overlapping windows.
func temporalDataset() *dataset.Dataset {
	day := func(d int) time.Time { return time.Date(2004, 1, 5+d, 0, 0, 0, 0, time.UTC) }
	a := dataset.LatLon{Lat: 44.5, Lon: -88.0}
	b := dataset.LatLon{Lat: 41.9, Lon: -87.6}
	c := dataset.LatLon{Lat: 43.0, Lon: -87.9}
	return &dataset.Dataset{Transactions: []dataset.Transaction{
		{ID: 1, ReqPickup: day(0), ReqDelivery: day(1), Origin: a, Dest: b, Distance: 200, GrossWeight: 5000, TransitHours: 5, Mode: dataset.LessThanTruckload},
		{ID: 2, ReqPickup: day(0), ReqDelivery: day(0), Origin: a, Dest: c, Distance: 110, GrossWeight: 4000, TransitHours: 3, Mode: dataset.LessThanTruckload},
		{ID: 3, ReqPickup: day(1), ReqDelivery: day(2), Origin: a, Dest: b, Distance: 200, GrossWeight: 5200, TransitHours: 5, Mode: dataset.LessThanTruckload},
		// Duplicate lane+bin on day 1 (should dedup).
		{ID: 4, ReqPickup: day(1), ReqDelivery: day(1), Origin: a, Dest: b, Distance: 200, GrossWeight: 5100, TransitHours: 5, Mode: dataset.LessThanTruckload},
	}}
}

func TestTemporalActiveWindows(t *testing.T) {
	res := Temporal(temporalDataset(), TemporalOptions{
		Attr: dataset.GrossWeight, SplitComponents: false, DedupEdges: false, DropSingleEdge: false,
	})
	// Days: txn1 on d0,d1; txn2 d0; txn3 d1,d2; txn4 d1 => 3 days.
	if res.DaysTotal != 3 {
		t.Fatalf("days = %d, want 3", res.DaysTotal)
	}
	if len(res.Transactions) != 3 {
		t.Fatalf("transactions = %d, want 3", len(res.Transactions))
	}
	// Day 0: txn1 + txn2 = 2 edges. Day 1: txn1 + txn3 + txn4 = 3.
	if res.Transactions[0].NumEdges() != 2 {
		t.Errorf("day0 edges = %d, want 2", res.Transactions[0].NumEdges())
	}
	if res.Transactions[1].NumEdges() != 3 {
		t.Errorf("day1 edges = %d, want 3", res.Transactions[1].NumEdges())
	}
	// One whole-day transaction per day: boundaries are 0,1,2.
	if want := []int{0, 1, 2}; !slices.Equal(res.DayStarts, want) {
		t.Errorf("DayStarts = %v, want %v", res.DayStarts, want)
	}
}

func TestTemporalDayStartsSliceIntoPrefixRuns(t *testing.T) {
	// A MaxDays=k run must equal the first k day-ranges of the full
	// run — the prefix property arrival streams rely on to slice
	// per-day batches out of a fixed dataset.
	full := Temporal(temporalDataset(), DefaultTemporalOptions())
	if len(full.DayStarts) != 3 {
		t.Fatalf("DayStarts = %v, want 3 entries", full.DayStarts)
	}
	for k := 1; k <= 3; k++ {
		opts := DefaultTemporalOptions()
		opts.MaxDays = k
		pre := Temporal(temporalDataset(), opts)
		end := len(full.Transactions)
		if k < len(full.DayStarts) {
			end = full.DayStarts[k]
		}
		if len(pre.Transactions) != end {
			t.Errorf("MaxDays=%d: %d transactions, want prefix length %d", k, len(pre.Transactions), end)
		}
		for i, g := range pre.Transactions {
			if g.Name != full.Transactions[i].Name {
				t.Errorf("MaxDays=%d txn %d: name %q != full run's %q", k, i, g.Name, full.Transactions[i].Name)
			}
		}
	}
}

func TestTemporalDedupAndFilters(t *testing.T) {
	res := Temporal(temporalDataset(), DefaultTemporalOptions())
	// Day 1 has txn1 (5000) txn3 (5200) txn4 (5100) on lane a->b: all
	// in weight bin [0,6500) so two duplicates drop; day 1 then has a
	// single edge and is filtered; day 2 single edge filtered; day 0
	// has 2 edges in one component.
	if res.DuplicateEdgesDropped != 2 {
		t.Errorf("duplicates dropped = %d, want 2", res.DuplicateEdgesDropped)
	}
	if res.SingleEdgeDropped != 2 {
		t.Errorf("single-edge dropped = %d, want 2", res.SingleEdgeDropped)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("surviving transactions = %d, want 1", len(res.Transactions))
	}
	if res.Transactions[0].NumEdges() != 2 {
		t.Errorf("surviving edges = %d, want 2", res.Transactions[0].NumEdges())
	}
}

func TestTemporalUniqueVertexLabels(t *testing.T) {
	res := Temporal(temporalDataset(), TemporalOptions{
		Attr: dataset.GrossWeight, SplitComponents: false, DedupEdges: false, DropSingleEdge: false,
	})
	g := res.Transactions[0]
	labels := g.VertexLabels()
	if len(labels) != g.NumVertices() {
		t.Errorf("labels not unique per vertex: %v", labels)
	}
	found := false
	for _, l := range labels {
		if l == "44.5,-88.0" {
			found = true
		}
	}
	if !found {
		t.Errorf("lat-lon label missing: %v", labels)
	}
}

func TestTemporalVertexLabelCap(t *testing.T) {
	res := Temporal(temporalDataset(), TemporalOptions{
		Attr: dataset.GrossWeight, MaxVertexLabels: 3,
		SplitComponents: false, DedupEdges: false, DropSingleEdge: false,
	})
	// The cap keeps days with FEWER THAN 3 distinct labels (as the
	// paper kept days with fewer than 200): day 0 has 3 locations ->
	// filtered; days 1 and 2 have 2 -> kept.
	if res.FilteredByVertexLabels != 1 {
		t.Errorf("filtered = %d, want 1", res.FilteredByVertexLabels)
	}
	for _, g := range res.Transactions {
		if len(g.VertexLabels()) >= 3 {
			t.Errorf("transaction with %d labels survived cap", len(g.VertexLabels()))
		}
	}
}

func TestTemporalComponentSplit(t *testing.T) {
	res := Temporal(temporalDataset(), TemporalOptions{
		Attr: dataset.GrossWeight, SplitComponents: true, DedupEdges: true, DropSingleEdge: false,
	})
	// Day 0's graph a->b, a->c is one connected component; every
	// transaction must be connected after splitting.
	for _, g := range res.Transactions {
		if !g.IsConnected() {
			t.Errorf("disconnected transaction survived: %s", g)
		}
	}
}

func TestActiveWindowDays(t *testing.T) {
	d := temporalDataset()
	if got := ActiveWindowDays(d.Transactions[0]); got != 2 {
		t.Errorf("window = %d, want 2", got)
	}
	if got := ActiveWindowDays(d.Transactions[1]); got != 1 {
		t.Errorf("window = %d, want 1", got)
	}
	rev := d.Transactions[0]
	rev.ReqDelivery = rev.ReqPickup.AddDate(0, 0, -1)
	if got := ActiveWindowDays(rev); got != 0 {
		t.Errorf("inverted window = %d, want 0", got)
	}
}
