package partition

import (
	"fmt"
	"sort"
	"time"

	"tnkd/internal/bin"
	"tnkd/internal/dataset"
	"tnkd/internal/engine"
	"tnkd/internal/graph"
)

// TemporalOptions configures the Section 6 temporal partitioning.
type TemporalOptions struct {
	// Attr labels edges (the paper's temporal experiment uses gross
	// weight ranges).
	Attr dataset.EdgeAttr
	// Binner bins the attribute; nil selects Attr.DefaultBinner().
	Binner bin.Binner
	// SplitComponents breaks each disconnected daily transaction
	// into one transaction per connected component (the paper does
	// this; FSG's results are unaffected but transactions shrink).
	SplitComponents bool
	// DropSingleEdge removes transactions with only one edge, which
	// cannot produce interesting patterns (the paper drops them).
	DropSingleEdge bool
	// DedupEdges removes duplicate (from, to, label) edges within a
	// transaction, since FSG operates on graphs, not multigraphs.
	DedupEdges bool
	// MaxVertexLabels, when > 0, keeps only DAYS whose whole graph
	// has fewer than this many distinct vertex labels, before any
	// component splitting — the paper's final run was "limited to
	// dates with fewer than 200 distinct vertex labels" (Table 3).
	MaxVertexLabels int
	// MaxDays, when > 0, keeps only the earliest MaxDays calendar
	// days (applied after day bucketing, before any per-day work).
	// Because days are processed in calendar order and each day's
	// transactions depend on nothing outside the day, a MaxDays=k run
	// produces a transaction list that is an exact prefix of the
	// MaxDays=k+1 run's — the arrival simulation knob delta mining's
	// end-to-end checks fold forward over. 0 keeps every day.
	MaxDays int
	// Parallelism is the worker count for building the ~180 per-day
	// transaction batches (graph build, dedup, filtering, component
	// split — each day is independent). <= 0 selects GOMAXPROCS; 1
	// runs fully serial. Results are merged in calendar order and
	// identical for every value.
	Parallelism int
}

// DefaultTemporalOptions mirrors the paper's Section 6 pipeline
// (before the Table 3 size filter).
func DefaultTemporalOptions() TemporalOptions {
	return TemporalOptions{
		Attr:            dataset.GrossWeight,
		SplitComponents: true,
		DropSingleEdge:  true,
		DedupEdges:      true,
	}
}

// TemporalResult carries the per-day graph transactions plus the
// bookkeeping numbers reported in Tables 2 and 3.
type TemporalResult struct {
	Transactions []*graph.Graph
	// DayStarts maps each processed calendar day (in order) to the
	// index of its first transaction in Transactions: day i
	// contributed Transactions[DayStarts[i]:DayStarts[i+1]] (to
	// len(Transactions) for the last day). A day whose transactions
	// were all filtered away still has an entry (an empty range).
	// Because a MaxDays=k run is an exact prefix of a MaxDays=k+1
	// run, DayStarts is how arrival streams slice a fixed dataset
	// into the per-day batches an incremental fold consumes.
	DayStarts []int
	// DaysTotal is the number of calendar days with at least one
	// active OD pair (before any filtering).
	DaysTotal int
	// DuplicateEdgesDropped counts multigraph duplicates removed.
	DuplicateEdgesDropped int
	// SingleEdgeDropped counts transactions removed by the
	// single-edge filter.
	SingleEdgeDropped int
	// FilteredByVertexLabels counts transactions removed by the
	// MaxVertexLabels filter.
	FilteredByVertexLabels int
}

// WindowRange returns the transaction index range [lo, hi) covered by
// the 1-based day window firstDay..lastDay — the day→TID translation
// a sliding-window mine retires and re-thresholds by. Both bounds are
// clamped to the processed days, so WindowRange(1, len(DayStarts))
// spans every transaction; an inverted or out-of-range window yields
// an empty range.
func (r *TemporalResult) WindowRange(firstDay, lastDay int) (lo, hi int) {
	n := len(r.DayStarts)
	if firstDay < 1 {
		firstDay = 1
	}
	if lastDay > n {
		lastDay = n
	}
	if firstDay > lastDay {
		return 0, 0
	}
	lo = r.DayStarts[firstDay-1]
	if lastDay == n {
		return lo, len(r.Transactions)
	}
	return lo, r.DayStarts[lastDay]
}

// Stats summarises the surviving transactions in Table 2/3 form.
func (r *TemporalResult) Stats() graph.TransactionStats {
	return graph.SummarizeTransactions(r.Transactions)
}

// Temporal partitions the dataset into per-day graph transactions:
// an OD pair is an active edge of day d's graph when d lies between
// the requested pickup and delivery dates of one of its transactions.
// Vertices carry unique lat-lon labels so patterns are tied to
// locations across days (Section 6).
func Temporal(d *dataset.Dataset, opts TemporalOptions) *TemporalResult {
	binner := opts.Binner
	if binner == nil {
		binner = opts.Attr.DefaultBinner()
	}

	// Bucket transactions by active day.
	byDay := make(map[string][]dataset.Transaction)
	for _, t := range d.Transactions {
		for day := t.ReqPickup; !day.After(t.ReqDelivery); day = day.AddDate(0, 0, 1) {
			key := day.Format("2006-01-02")
			byDay[key] = append(byDay[key], t)
		}
	}
	days := make([]string, 0, len(byDay))
	for day := range byDay {
		days = append(days, day)
	}
	sort.Strings(days)
	if opts.MaxDays > 0 && len(days) > opts.MaxDays {
		days = days[:opts.MaxDays]
	}

	res := &TemporalResult{DaysTotal: len(days)}

	// Each day's batch — graph build, dedup, vertex-label filter,
	// component split, single-edge filter — is independent of every
	// other day, so the ~180 batches fan out across the engine pool.
	// The merge walks days in calendar order, keeping transactions
	// and counters identical at every Parallelism.
	type dayBatch struct {
		txns             []*graph.Graph
		duplicateDropped int
		filteredByLabels int
		singleDropped    int
	}
	batches := engine.Map(opts.Parallelism, len(days), func(i int) dayBatch {
		day := days[i]
		g := buildDayGraph(day, byDay[day], opts.Attr, binner)
		var b dayBatch
		if opts.DedupEdges {
			deduped, dropped := g.DedupEdges()
			b.duplicateDropped = dropped
			g = deduped
		}
		if opts.MaxVertexLabels > 0 && len(g.VertexLabels()) >= opts.MaxVertexLabels {
			b.filteredByLabels = 1
			return b
		}
		var txns []*graph.Graph
		if opts.SplitComponents {
			txns = g.SplitComponents()
		} else {
			txns = []*graph.Graph{g}
		}
		for _, txn := range txns {
			if opts.DropSingleEdge && txn.NumEdges() <= 1 {
				b.singleDropped++
				continue
			}
			b.txns = append(b.txns, txn)
		}
		return b
	})
	for _, b := range batches {
		res.DayStarts = append(res.DayStarts, len(res.Transactions))
		res.Transactions = append(res.Transactions, b.txns...)
		res.DuplicateEdgesDropped += b.duplicateDropped
		res.FilteredByVertexLabels += b.filteredByLabels
		res.SingleEdgeDropped += b.singleDropped
	}
	return res
}

// buildDayGraph assembles one day's active-edge graph with unique
// lat-lon vertex labels.
func buildDayGraph(day string, txns []dataset.Transaction, attr dataset.EdgeAttr, binner bin.Binner) *graph.Graph {
	g := graph.New(fmt.Sprintf("day/%s", day))
	idx := make(map[dataset.LatLon]graph.VertexID)
	vertexOf := func(p dataset.LatLon) graph.VertexID {
		if id, ok := idx[p]; ok {
			return id
		}
		id := g.AddVertex(p.String())
		idx[p] = id
		return id
	}
	for _, t := range txns {
		from := vertexOf(t.Origin)
		to := vertexOf(t.Dest)
		g.AddEdge(from, to, bin.LabelOf(binner, attr.Value(t)))
	}
	return g
}

// ActiveWindowDays returns the number of days in the active window
// of a transaction (inclusive of both endpoints); exposed for tests
// and workload analysis.
func ActiveWindowDays(t dataset.Transaction) int {
	if t.ReqDelivery.Before(t.ReqPickup) {
		return 0
	}
	return int(t.ReqDelivery.Sub(t.ReqPickup)/(24*time.Hour)) + 1
}
