// Package partition implements the two ways the paper turns its
// single transportation graph into sets of graph transactions:
//
//   - Structural partitioning (Section 5.2, Algorithm 2): incremental
//     breadth-first or depth-first extraction of edge-disjoint
//     subgraphs of a target size, repeated with different random
//     partitionings (Algorithm 1).
//   - Temporal partitioning (Section 6): one graph transaction per
//     calendar day containing the OD pairs active on that day, split
//     into connected components, de-duplicated and filtered.
package partition

import (
	"fmt"
	"math/rand"

	"tnkd/internal/graph"
)

// Strategy selects the vertex-expansion order of Algorithm 2.
type Strategy int

const (
	// BreadthFirst grows partitions with a FIFO queue, preserving
	// high-out-degree (hub-and-spoke) patterns.
	BreadthFirst Strategy = iota
	// DepthFirst grows partitions with a LIFO stack, preserving long
	// chain patterns.
	DepthFirst
)

// String names the strategy as in the paper's figures ("BF"/"DF").
func (s Strategy) String() string {
	if s == BreadthFirst {
		return "BF"
	}
	return "DF"
}

// SplitOptions configures SplitGraph.
type SplitOptions struct {
	// K is the number of transactions to partition the graph into
	// (Algorithm 2's k). Must be >= 1.
	K int
	// Strategy selects breadth-first or depth-first growth.
	Strategy Strategy
	// Rand drives the random starting-vertex choices. nil uses a
	// fixed-seed source, making the split deterministic.
	Rand *rand.Rand
}

// SplitGraph implements Algorithm 2: it partitions g into
// edge-disjoint sub-graph transactions by repeatedly growing a
// subgraph from a random start vertex (queue = breadth first, stack =
// depth first), removing its edges from the working copy, and
// dropping orphaned vertices. The input graph is not modified.
//
// The algorithm targets |E|/(k - i) edges for the i-th partition so
// partition sizes stay similar; disconnection during consumption can
// still produce smaller and larger partitions, as the paper notes.
func SplitGraph(g *graph.Graph, opts SplitOptions) []*graph.Graph {
	if opts.K < 1 {
		panic(fmt.Sprintf("partition: SplitGraph with K=%d", opts.K))
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	work := g.Clone()
	var parts []*graph.Graph
	for txn := 0; txn < opts.K && work.NumEdges() > 0; txn++ {
		remaining := opts.K - txn
		budget := work.NumEdges() / remaining
		if budget < 1 {
			budget = 1
		}
		part := extractOne(work, budget, opts.Strategy, rng)
		if part.NumEdges() > 0 {
			parts = append(parts, part)
		}
		work.RemoveOrphans()
	}
	// Consume any residue (possible when early partitions run small
	// because the graph disconnected).
	for work.NumEdges() > 0 {
		part := extractOne(work, work.NumEdges(), opts.Strategy, rng)
		if part.NumEdges() == 0 {
			break
		}
		parts = append(parts, part)
		work.RemoveOrphans()
	}
	for i, p := range parts {
		p.Name = fmt.Sprintf("%s/%s%d", g.Name, opts.Strategy, i)
	}
	return parts
}

// extractOne pulls one subgraph of up to `budget` edges out of work,
// removing those edges from work. It implements the inner loops of
// Algorithm 2 for both orderings.
func extractOne(work *graph.Graph, budget int, strat Strategy, rng *rand.Rand) *graph.Graph {
	part := graph.New("")
	remap := make(map[graph.VertexID]graph.VertexID)
	addVertex := func(v graph.VertexID) graph.VertexID {
		if id, ok := remap[v]; ok {
			return id
		}
		id := part.AddVertex(work.Vertex(v).Label)
		remap[v] = id
		return id
	}

	edges := budget
	// Ordering structure q: queue for breadth-first, stack for
	// depth-first.
	var q []graph.VertexID
	inQ := make(map[graph.VertexID]bool)
	push := func(v graph.VertexID) {
		if !inQ[v] {
			q = append(q, v)
			inQ[v] = true
		}
	}
	pop := func() graph.VertexID {
		var v graph.VertexID
		if strat == BreadthFirst {
			v = q[0]
			q = q[1:]
		} else {
			v = q[len(q)-1]
			q = q[:len(q)-1]
		}
		return v
	}

	start, ok := randomVertexWithEdges(work, rng)
	if !ok {
		return part
	}
	push(start)
	for edges > 0 && len(q) > 0 {
		v := pop()
		pv := addVertex(v)
		for edges > 0 {
			e, ok := anyIncidentEdge(work, v)
			if !ok {
				break
			}
			ed := work.Edge(e)
			other := ed.From
			if ed.From == v {
				other = ed.To
			}
			po := addVertex(other)
			if ed.From == v {
				part.AddEdge(pv, po, ed.Label)
			} else {
				part.AddEdge(po, pv, ed.Label)
			}
			work.RemoveEdge(e)
			edges--
			push(other)
		}
	}
	return part
}

// anyIncidentEdge returns a live edge incident on v (outgoing first).
func anyIncidentEdge(work *graph.Graph, v graph.VertexID) (graph.EdgeID, bool) {
	if outs := work.OutEdges(v); len(outs) > 0 {
		return outs[0], true
	}
	if ins := work.InEdges(v); len(ins) > 0 {
		return ins[0], true
	}
	return 0, false
}

// randomVertexWithEdges picks a uniformly random live vertex that has
// at least one live incident edge.
func randomVertexWithEdges(work *graph.Graph, rng *rand.Rand) (graph.VertexID, bool) {
	vs := work.Vertices()
	if len(vs) == 0 {
		return 0, false
	}
	// Try random probes first; fall back to a scan.
	for i := 0; i < 32; i++ {
		v := vs[rng.Intn(len(vs))]
		if work.Degree(v) > 0 {
			return v, true
		}
	}
	for _, v := range vs {
		if work.Degree(v) > 0 {
			return v, true
		}
	}
	return 0, false
}
