// Package bruteforce is an exact, exponential-time frequent-subgraph
// miner used as a test oracle for the FSG reimplementation: it
// enumerates every connected subgraph of every transaction up to a
// size bound, canonicalises each, and counts per-transaction support
// directly. Its output is ground truth; internal/fsg must match it on
// small inputs.
package bruteforce

import (
	"sort"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

// Pattern is a frequent subgraph with exact support.
type Pattern struct {
	Graph   *graph.Graph
	Code    string
	Support int
}

// Mine returns all connected subgraph patterns with at most maxEdges
// edges occurring in at least minSupport transactions, sorted by code.
func Mine(txns []*graph.Graph, minSupport, maxEdges int) []Pattern {
	counts := make(map[string]int)
	rep := make(map[string]*graph.Graph)
	for _, t := range txns {
		for code, sub := range connectedSubgraphs(t, maxEdges) {
			counts[code]++
			if _, ok := rep[code]; !ok {
				rep[code] = sub
			}
		}
	}
	var out []Pattern
	for code, c := range counts {
		if c >= minSupport {
			out = append(out, Pattern{Graph: rep[code], Code: code, Support: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// connectedSubgraphs enumerates the distinct (up to isomorphism)
// connected subgraphs of t with 1..maxEdges edges, keyed by canonical
// code. Distinctness is per transaction: each isomorphism class
// counts once regardless of how many embeddings exist.
func connectedSubgraphs(t *graph.Graph, maxEdges int) map[string]*graph.Graph {
	edges := t.Edges()
	found := make(map[string]*graph.Graph)
	// Grow connected edge sets from every starting edge; dedup edge
	// sets via a bitmask-ish key over sorted edge ids.
	type state struct {
		set []graph.EdgeID
	}
	seenSet := make(map[string]bool)
	setKey := func(set []graph.EdgeID) string {
		ids := make([]int, len(set))
		for i, e := range set {
			ids[i] = int(e)
		}
		sort.Ints(ids)
		b := make([]byte, 0, len(ids)*3)
		for _, id := range ids {
			b = append(b, byte(id), byte(id>>8), ',')
		}
		return string(b)
	}
	record := func(set []graph.EdgeID) {
		sub := subgraphFromEdges(t, set)
		code := iso.Code(sub)
		if _, ok := found[code]; !ok {
			found[code] = sub
		}
	}
	var queue []state
	for _, e := range edges {
		s := state{set: []graph.EdgeID{e}}
		k := setKey(s.set)
		if !seenSet[k] {
			seenSet[k] = true
			queue = append(queue, s)
			record(s.set)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.set) == maxEdges {
			continue
		}
		// Vertices touched by the current set.
		touched := make(map[graph.VertexID]bool)
		inSet := make(map[graph.EdgeID]bool)
		for _, e := range cur.set {
			ed := t.Edge(e)
			touched[ed.From] = true
			touched[ed.To] = true
			inSet[e] = true
		}
		for v := range touched {
			for _, e := range append(t.OutEdges(v), t.InEdges(v)...) {
				if inSet[e] {
					continue
				}
				next := append(append([]graph.EdgeID{}, cur.set...), e)
				k := setKey(next)
				if seenSet[k] {
					continue
				}
				seenSet[k] = true
				queue = append(queue, state{set: next})
				record(next)
			}
		}
	}
	return found
}

// subgraphFromEdges builds the compact subgraph induced by an edge set.
func subgraphFromEdges(t *graph.Graph, set []graph.EdgeID) *graph.Graph {
	sub := graph.New("sub")
	remap := make(map[graph.VertexID]graph.VertexID)
	vtx := func(v graph.VertexID) graph.VertexID {
		if id, ok := remap[v]; ok {
			return id
		}
		id := sub.AddVertex(t.Vertex(v).Label)
		remap[v] = id
		return id
	}
	ids := make([]int, len(set))
	for i, e := range set {
		ids[i] = int(e)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ed := t.Edge(graph.EdgeID(id))
		sub.AddEdge(vtx(ed.From), vtx(ed.To), ed.Label)
	}
	return sub
}
