package bruteforce

import (
	"testing"

	"tnkd/internal/graph"
	"tnkd/internal/iso"
)

func path3() *graph.Graph {
	g := graph.New("p")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	g.AddEdge(a, b, "x")
	g.AddEdge(b, c, "y")
	return g
}

func TestMineEnumeratesAllSubgraphs(t *testing.T) {
	// Two identical 2-edge paths: patterns are x, y, and x->y path,
	// each with support 2.
	txns := []*graph.Graph{path3(), path3()}
	got := Mine(txns, 2, 3)
	if len(got) != 3 {
		for _, p := range got {
			t.Logf("sup=%d\n%s", p.Support, p.Graph.Dump())
		}
		t.Fatalf("patterns = %d, want 3", len(got))
	}
	for _, p := range got {
		if p.Support != 2 {
			t.Errorf("support = %d, want 2", p.Support)
		}
	}
}

func TestMineSupportThreshold(t *testing.T) {
	single := graph.New("s")
	a := single.AddVertex("*")
	b := single.AddVertex("*")
	single.AddEdge(a, b, "x")
	txns := []*graph.Graph{path3(), single}
	got := Mine(txns, 2, 3)
	// Only the x edge is shared.
	if len(got) != 1 {
		t.Fatalf("patterns = %d, want 1", len(got))
	}
	want := graph.New("w")
	wa := want.AddVertex("*")
	wb := want.AddVertex("*")
	want.AddEdge(wa, wb, "x")
	if !iso.Isomorphic(got[0].Graph, want) {
		t.Fatalf("wrong pattern:\n%s", got[0].Graph.Dump())
	}
}

func TestMineMaxEdgesBound(t *testing.T) {
	txns := []*graph.Graph{path3(), path3()}
	got := Mine(txns, 2, 1)
	for _, p := range got {
		if p.Graph.NumEdges() > 1 {
			t.Fatalf("pattern exceeds edge bound:\n%s", p.Graph.Dump())
		}
	}
	if len(got) != 2 {
		t.Fatalf("1-edge patterns = %d, want 2", len(got))
	}
}

func TestMinePerTransactionDistinctness(t *testing.T) {
	// A transaction with two disjoint copies of the same edge pattern
	// still contributes support 1 for that pattern.
	g := graph.New("d")
	a := g.AddVertex("*")
	b := g.AddVertex("*")
	c := g.AddVertex("*")
	d := g.AddVertex("*")
	g.AddEdge(a, b, "x")
	g.AddEdge(c, d, "x")
	got := Mine([]*graph.Graph{g}, 1, 1)
	if len(got) != 1 || got[0].Support != 1 {
		t.Fatalf("got %+v, want one pattern with support 1", got)
	}
}
