// Package dtree implements a C4.5-style decision-tree classifier
// over nominal attributes (gain-ratio splits, minimum-leaf stopping),
// the stand-in for Weka's J4.8 used in Section 7.2 of the paper.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Instance is one row: values indexed like the schema's attributes.
type Instance []string

// Options configures training.
type Options struct {
	// MinLeaf is the minimum number of instances per leaf (default 2,
	// J4.8's -M 2).
	MinLeaf int
	// MaxDepth caps tree depth (0 = unlimited).
	MaxDepth int
}

// Tree is a trained decision tree.
type Tree struct {
	Attrs      []string
	ClassAttr  string
	classIndex int
	root       *node
}

type node struct {
	// Leaf fields.
	leaf  bool
	class string
	count int // training instances reaching the node
	// Internal fields.
	attr     int // attribute index tested
	children map[string]*node
	fallback string // majority class for unseen values
}

// Train builds a tree predicting classAttr from the remaining
// attributes. attrs names each Instance column.
func Train(attrs []string, data []Instance, classAttr string, opts Options) (*Tree, error) {
	ci := -1
	for i, a := range attrs {
		if a == classAttr {
			ci = i
			break
		}
	}
	if ci == -1 {
		return nil, fmt.Errorf("dtree: class attribute %q not in schema %v", classAttr, attrs)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("dtree: no training data")
	}
	for i, row := range data {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("dtree: row %d has %d values, schema has %d", i, len(row), len(attrs))
		}
	}
	if opts.MinLeaf < 1 {
		opts.MinLeaf = 2
	}
	t := &Tree{Attrs: attrs, ClassAttr: classAttr, classIndex: ci}
	avail := make([]bool, len(attrs))
	for i := range attrs {
		avail[i] = i != ci
	}
	t.root = t.build(data, avail, opts, 0)
	return t, nil
}

func (t *Tree) build(data []Instance, avail []bool, opts Options, depth int) *node {
	majority, pure := t.majorityClass(data)
	if pure || len(data) < 2*opts.MinLeaf || (opts.MaxDepth > 0 && depth >= opts.MaxDepth) {
		return &node{leaf: true, class: majority, count: len(data)}
	}
	bestAttr, ok := t.bestSplit(data, avail, opts)
	if !ok {
		return &node{leaf: true, class: majority, count: len(data)}
	}
	groups := groupBy(data, bestAttr)
	childAvail := append([]bool(nil), avail...)
	childAvail[bestAttr] = false
	n := &node{attr: bestAttr, children: make(map[string]*node, len(groups)), fallback: majority, count: len(data)}
	for v, rows := range groups {
		n.children[v] = t.build(rows, childAvail, opts, depth+1)
	}
	return n
}

func (t *Tree) majorityClass(data []Instance) (string, bool) {
	counts := make(map[string]int)
	for _, row := range data {
		counts[row[t.classIndex]]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	for _, c := range keys {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	return best, len(counts) == 1
}

// bestSplit picks the attribute with the highest gain ratio among
// attributes with above-average information gain (Quinlan's C4.5
// heuristic avoiding high-arity bias).
func (t *Tree) bestSplit(data []Instance, avail []bool, opts Options) (int, bool) {
	baseEnt := t.entropy(data)
	type cand struct {
		attr  int
		gain  float64
		ratio float64
	}
	var cands []cand
	for ai, ok := range avail {
		if !ok {
			continue
		}
		groups := groupBy(data, ai)
		if len(groups) < 2 {
			continue
		}
		// Require that a split produces at least two usable branches.
		usable := 0
		for _, rows := range groups {
			if len(rows) >= opts.MinLeaf {
				usable++
			}
		}
		if usable < 2 {
			continue
		}
		cond, split := 0.0, 0.0
		for _, rows := range groups {
			p := float64(len(rows)) / float64(len(data))
			cond += p * t.entropy(rows)
			split -= p * math.Log2(p)
		}
		gain := baseEnt - cond
		if gain <= 1e-12 || split <= 1e-12 {
			continue
		}
		cands = append(cands, cand{attr: ai, gain: gain, ratio: gain / split})
	}
	if len(cands) == 0 {
		return 0, false
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	bestRatio := -1.0
	sort.Slice(cands, func(i, j int) bool { return cands[i].attr < cands[j].attr })
	for _, c := range cands {
		if c.gain+1e-12 >= avgGain && c.ratio > bestRatio {
			best, bestRatio = c.attr, c.ratio
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

func (t *Tree) entropy(data []Instance) float64 {
	counts := make(map[string]int)
	for _, row := range data {
		counts[row[t.classIndex]]++
	}
	ent := 0.0
	for _, c := range counts {
		p := float64(c) / float64(len(data))
		ent -= p * math.Log2(p)
	}
	return ent
}

func groupBy(data []Instance, attr int) map[string][]Instance {
	groups := make(map[string][]Instance)
	for _, row := range data {
		groups[row[attr]] = append(groups[row[attr]], row)
	}
	return groups
}

// Predict classifies one instance.
func (t *Tree) Predict(row Instance) string {
	n := t.root
	for !n.leaf {
		child, ok := n.children[row[n.attr]]
		if !ok {
			return n.fallback
		}
		n = child
	}
	return n.class
}

// Accuracy evaluates the tree on labeled data.
func (t *Tree) Accuracy(data []Instance) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, row := range data {
		if t.Predict(row) == row[t.classIndex] {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// RootAttr returns the attribute tested at the root, or "" for a
// single-leaf tree. The paper reports that J4.8's tree "first splits
// on the GROSS_WEIGHT attribute".
func (t *Tree) RootAttr() string {
	if t.root.leaf {
		return ""
	}
	return t.Attrs[t.root.attr]
}

// Depth returns the tree depth (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	max := 0
	for _, c := range n.children {
		if d := depthOf(c); d > max {
			max = d
		}
	}
	return max + 1
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int { return leavesOf(t.root) }

func leavesOf(n *node) int {
	if n.leaf {
		return 1
	}
	total := 0
	for _, c := range n.children {
		total += leavesOf(c)
	}
	return total
}

// CrossValidate runs k-fold cross-validation and returns mean
// accuracy. Folds are contiguous blocks; callers should pre-shuffle
// if the data is ordered.
func CrossValidate(attrs []string, data []Instance, classAttr string, k int, opts Options) (float64, error) {
	if k < 2 || k > len(data) {
		return 0, fmt.Errorf("dtree: k=%d invalid for %d rows", k, len(data))
	}
	total := 0.0
	for fold := 0; fold < k; fold++ {
		lo := fold * len(data) / k
		hi := (fold + 1) * len(data) / k
		test := data[lo:hi]
		train := make([]Instance, 0, len(data)-len(test))
		train = append(train, data[:lo]...)
		train = append(train, data[hi:]...)
		tree, err := Train(attrs, train, classAttr, opts)
		if err != nil {
			return 0, err
		}
		total += tree.Accuracy(test)
	}
	return total / float64(k), nil
}

// Render prints the tree in Weka's indented text form.
func (t *Tree) Render() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, indent int) {
	pad := strings.Repeat("|   ", indent)
	if n.leaf {
		fmt.Fprintf(b, "%s=> %s (%d)\n", pad, n.class, n.count)
		return
	}
	values := make([]string, 0, len(n.children))
	for v := range n.children {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		fmt.Fprintf(b, "%s%s = %s\n", pad, t.Attrs[n.attr], v)
		t.render(b, n.children[v], indent+1)
	}
}
