package dtree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

var attrs = []string{"weight", "dist", "mode"}

// modeData builds rows where mode is fully determined by weight, plus
// a configurable number of noise rows.
func modeData(n, noise int, seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		w := "light"
		m := "LTL"
		if rng.Intn(2) == 0 {
			w, m = "heavy", "TL"
		}
		d := []string{"short", "medium", "long"}[rng.Intn(3)]
		if i < noise {
			if m == "LTL" {
				m = "TL"
			} else {
				m = "LTL"
			}
		}
		rows = append(rows, Instance{w, d, m})
	}
	return rows
}

func TestTrainPerfectSplit(t *testing.T) {
	rows := modeData(100, 0, 1)
	tree, err := Train(attrs, rows, "mode", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Accuracy(rows); got != 1.0 {
		t.Errorf("training accuracy = %v, want 1.0", got)
	}
	if tree.RootAttr() != "weight" {
		t.Errorf("root = %s, want weight", tree.RootAttr())
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d, want 1", tree.Depth())
	}
}

func TestTrainWithNoise(t *testing.T) {
	rows := modeData(200, 8, 2) // 4% noise, like the generator
	tree, err := Train(attrs, rows, "mode", Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := tree.Accuracy(rows)
	if acc < 0.9 || acc > 1.0 {
		t.Errorf("accuracy = %v, want ~0.96", acc)
	}
	if tree.RootAttr() != "weight" {
		t.Errorf("root = %s, want weight", tree.RootAttr())
	}
}

func TestPredictUnseenValueFallsBack(t *testing.T) {
	rows := modeData(50, 0, 3)
	tree, err := Train(attrs, rows, "mode", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "featherweight" was never seen: prediction falls back to the
	// node majority rather than panicking.
	got := tree.Predict(Instance{"featherweight", "short", "?"})
	if got != "LTL" && got != "TL" {
		t.Errorf("fallback prediction = %q", got)
	}
}

func TestCrossValidate(t *testing.T) {
	rows := modeData(200, 8, 4)
	acc, err := CrossValidate(attrs, rows, "mode", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 || acc > 1.0 {
		t.Errorf("cv accuracy = %v", acc)
	}
	if _, err := CrossValidate(attrs, rows, "mode", 1, Options{}); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := CrossValidate(attrs, rows[:3], "mode", 5, Options{}); err == nil {
		t.Error("k > len should error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(attrs, nil, "mode", Options{}); err == nil {
		t.Error("no data should error")
	}
	if _, err := Train(attrs, modeData(10, 0, 5), "nope", Options{}); err == nil {
		t.Error("unknown class should error")
	}
	if _, err := Train(attrs, []Instance{{"a", "b"}}, "mode", Options{}); err == nil {
		t.Error("ragged row should error")
	}
}

func TestMaxDepthAndMinLeaf(t *testing.T) {
	rows := modeData(200, 20, 6)
	shallow, err := Train(attrs, rows, "mode", Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Depth() > 1 {
		t.Errorf("depth = %d exceeds cap", shallow.Depth())
	}
	bigLeaf, err := Train(attrs, rows, "mode", Options{MinLeaf: 150})
	if err != nil {
		t.Fatal(err)
	}
	if bigLeaf.Depth() != 0 {
		t.Errorf("huge MinLeaf should force a single leaf, depth=%d", bigLeaf.Depth())
	}
}

func TestGainRatioAvoidsHighArityBias(t *testing.T) {
	// An "id"-like attribute with unique values perfectly splits the
	// training data but has enormous split info; gain ratio with
	// usable-branch filtering must prefer the real attribute.
	schema := []string{"id", "weight", "mode"}
	var rows []Instance
	for i := 0; i < 60; i++ {
		w, m := "light", "LTL"
		if i%2 == 0 {
			w, m = "heavy", "TL"
		}
		rows = append(rows, Instance{fmt.Sprint("id", i), w, m})
	}
	tree, err := Train(schema, rows, "mode", Options{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.RootAttr() != "weight" {
		t.Errorf("root = %s, want weight (id split should be rejected)", tree.RootAttr())
	}
}

func TestRender(t *testing.T) {
	rows := modeData(50, 0, 7)
	tree, err := Train(attrs, rows, "mode", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	if !strings.Contains(out, "weight = ") || !strings.Contains(out, "=>") {
		t.Errorf("render:\n%s", out)
	}
	if tree.NumLeaves() < 2 {
		t.Errorf("leaves = %d", tree.NumLeaves())
	}
}
