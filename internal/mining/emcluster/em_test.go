package emcluster

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// blobs generates k well-separated Gaussian blobs in 2D.
func blobs(k, perCluster int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		cx, cy := float64(c*100), float64(c*50)
		for i := 0; i < perCluster; i++ {
			rows = append(rows, []float64{cx + rng.NormFloat64()*2, cy + rng.NormFloat64()*2})
			truth = append(truth, c)
		}
	}
	return rows, truth
}

func TestFitSeparatesBlobs(t *testing.T) {
	rows, truth := blobs(3, 60, 1)
	model, asg, err := Fit([]string{"x", "y"}, rows, Options{K: 3, MaxIter: 80, Tol: 1e-8, Seed: 2, MinStdDev: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Clusters must align with ground truth up to permutation: check
	// purity.
	counts := make(map[[2]int]int)
	for i, c := range asg.Cluster {
		counts[[2]int{truth[i], c}]++
	}
	pure := 0
	for tc := 0; tc < 3; tc++ {
		best := 0
		for mc := 0; mc < 3; mc++ {
			if counts[[2]int{tc, mc}] > best {
				best = counts[[2]int{tc, mc}]
			}
		}
		pure += best
	}
	if purity := float64(pure) / float64(len(rows)); purity < 0.95 {
		t.Errorf("purity = %.3f, want >= 0.95", purity)
	}
	if model.Iterations < 2 {
		t.Errorf("iterations = %d", model.Iterations)
	}
}

func TestFitIsolatesTinyOutlierCluster(t *testing.T) {
	// The Figure 5 scenario: a large population plus 3 extreme
	// outliers; EM with enough components isolates the outliers.
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	for i := 0; i < 400; i++ {
		rows = append(rows, []float64{200 + rng.NormFloat64()*80, 30 + rng.NormFloat64()*10})
	}
	for i := 0; i < 3; i++ {
		rows = append(rows, []float64{3100 + rng.NormFloat64()*20, 15 + rng.NormFloat64()})
	}
	model, asg, err := Fit([]string{"dist", "hours"}, rows, Options{K: 4, MaxIter: 100, Tol: 1e-8, Seed: 5, MinStdDev: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for k := 0; k < model.K; k++ {
		if asg.Sizes[k] > 0 && asg.Sizes[k] <= 6 && model.Means[k][0] > 2500 {
			found = true
		}
	}
	if !found {
		t.Errorf("outlier cluster not isolated: sizes=%v", asg.Sizes)
	}
}

func TestClusterMeans(t *testing.T) {
	rows, _ := blobs(2, 30, 7)
	model, _, err := Fit([]string{"x", "y"}, rows, Options{K: 2, MaxIter: 50, Tol: 1e-8, Seed: 1, MinStdDev: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := model.ClusterMeans("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 2 {
		t.Fatalf("means = %v", xs)
	}
	lo, hi := math.Min(xs[0], xs[1]), math.Max(xs[0], xs[1])
	if lo > 20 || hi < 80 {
		t.Errorf("cluster x means = %v, want ~0 and ~100", xs)
	}
	if _, err := model.ClusterMeans("zzz"); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := Fit([]string{"x"}, nil, DefaultOptions()); err == nil {
		t.Error("no rows should error")
	}
	if _, _, err := Fit([]string{"x"}, [][]float64{{1, 2}}, Options{K: 1}); err == nil {
		t.Error("dim mismatch should error")
	}
	if _, _, err := Fit([]string{"x"}, [][]float64{{1}}, Options{K: 5}); err == nil {
		t.Error("K > rows should error")
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	rows, _ := blobs(3, 40, 9)
	opts := Options{K: 3, MaxIter: 50, Tol: 1e-8, Seed: 42, MinStdDev: 1e-6}
	m1, a1, err := Fit([]string{"x", "y"}, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, a2, err := Fit([]string{"x", "y"}, rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m1.LogLikelihood != m2.LogLikelihood {
		t.Error("log-likelihood differs across identical runs")
	}
	for i := range a1.Cluster {
		if a1.Cluster[i] != a2.Cluster[i] {
			t.Fatal("assignments differ across identical runs")
		}
	}
}

func TestFitConstantAttribute(t *testing.T) {
	// A constant column must not produce NaNs (MinStdDev floor).
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}, {100, 5}, {101, 5}}
	model, _, err := Fit([]string{"x", "c"}, rows, Options{K: 2, MaxIter: 30, Tol: 1e-8, Seed: 1, MinStdDev: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.LogLikelihood) || math.IsInf(model.LogLikelihood, 0) {
		t.Errorf("log-likelihood = %v", model.LogLikelihood)
	}
}

func TestSummary(t *testing.T) {
	rows, _ := blobs(2, 20, 11)
	model, asg, err := Fit([]string{"x", "y"}, rows, Options{K: 2, MaxIter: 30, Tol: 1e-8, Seed: 1, MinStdDev: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	out := Summary(model, asg)
	if !strings.Contains(out, "cluster 0:") || !strings.Contains(out, "k=2") {
		t.Errorf("summary:\n%s", out)
	}
}
