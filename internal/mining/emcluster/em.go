// Package emcluster implements expectation–maximisation clustering
// with diagonal-covariance Gaussian mixtures — the stand-in for
// Weka's EM used in Section 7.3 of the paper (Figures 5 and 6).
package emcluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Options configures a clustering run.
type Options struct {
	// K is the number of clusters (the paper's run settled on 9).
	K int
	// MaxIter caps EM iterations (default 100).
	MaxIter int
	// Tol stops when log-likelihood improves by less (default 1e-6
	// relative).
	Tol float64
	// Seed drives the k-means++-style initialisation.
	Seed int64
	// MinStdDev floors per-dimension standard deviations to keep the
	// model proper on near-constant attributes (Weka uses 1e-6).
	MinStdDev float64
}

// DefaultOptions mirrors the paper's run with k=9.
func DefaultOptions() Options {
	return Options{K: 9, MaxIter: 100, Tol: 1e-6, Seed: 1, MinStdDev: 1e-6}
}

// Model is a fitted Gaussian mixture.
type Model struct {
	Attrs   []string
	K       int
	Weights []float64   // mixing proportions
	Means   [][]float64 // [k][dim]
	StdDevs [][]float64 // [k][dim]
	// LogLikelihood is the final per-row average log-likelihood.
	LogLikelihood float64
	Iterations    int
}

// Assignment is the clustering of the training data.
type Assignment struct {
	Cluster []int // per-row hard assignment (max responsibility)
	Sizes   []int // rows per cluster
}

// Fit runs EM over rows (each a vector aligned with attrs).
func Fit(attrs []string, rows [][]float64, opts Options) (*Model, *Assignment, error) {
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("emcluster: no rows")
	}
	dim := len(attrs)
	for i, r := range rows {
		if len(r) != dim {
			return nil, nil, fmt.Errorf("emcluster: row %d has %d values, want %d", i, len(r), dim)
		}
	}
	if opts.K < 1 || opts.K > len(rows) {
		return nil, nil, fmt.Errorf("emcluster: K=%d invalid for %d rows", opts.K, len(rows))
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MinStdDev <= 0 {
		opts.MinStdDev = 1e-6
	}

	m := &Model{Attrs: attrs, K: opts.K}
	m.initialize(rows, opts)

	resp := make([][]float64, len(rows))
	for i := range resp {
		resp[i] = make([]float64, opts.K)
	}
	prevLL := math.Inf(-1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		ll := m.eStep(rows, resp)
		m.mStep(rows, resp, opts.MinStdDev)
		m.LogLikelihood = ll / float64(len(rows))
		m.Iterations = iter + 1
		if iter > 0 && math.Abs(ll-prevLL) <= opts.Tol*math.Abs(prevLL) {
			break
		}
		prevLL = ll
	}

	asg := &Assignment{Cluster: make([]int, len(rows)), Sizes: make([]int, opts.K)}
	for i := range rows {
		best, bestP := 0, resp[i][0]
		for k := 1; k < opts.K; k++ {
			if resp[i][k] > bestP {
				best, bestP = k, resp[i][k]
			}
		}
		asg.Cluster[i] = best
		asg.Sizes[best]++
	}
	return m, asg, nil
}

// initialize seeds means deterministically: the first centre is the
// row nearest the global mean, and each further centre is the row
// farthest (in variance-normalised distance) from all existing
// centres. Farthest-point seeding guarantees extreme outliers — like
// the paper's three air-freight shipments — receive their own
// component, which sampling-based seeding only finds by luck.
func (m *Model) initialize(rows [][]float64, opts Options) {
	rng := rand.New(rand.NewSource(opts.Seed))
	dim := len(m.Attrs)
	globalMean := make([]float64, dim)
	globalVar := make([]float64, dim)
	for _, r := range rows {
		for d, v := range r {
			globalMean[d] += v
		}
	}
	for d := range globalMean {
		globalMean[d] /= float64(len(rows))
	}
	for _, r := range rows {
		for d, v := range r {
			diff := v - globalMean[d]
			globalVar[d] += diff * diff
		}
	}
	for d := range globalVar {
		globalVar[d] /= float64(len(rows))
		if globalVar[d] < opts.MinStdDev*opts.MinStdDev {
			globalVar[d] = opts.MinStdDev * opts.MinStdDev
		}
	}

	m.Means = make([][]float64, m.K)
	m.StdDevs = make([][]float64, m.K)
	m.Weights = make([]float64, m.K)

	// First centre: the row nearest the global mean.
	first := 0
	bestD := math.Inf(1)
	for i, r := range rows {
		if d := normSqDist(r, globalMean, globalVar); d < bestD {
			first, bestD = i, d
		}
	}
	m.Means[0] = append([]float64(nil), rows[first]...)

	// Remaining centres: farthest-point traversal.
	minDist := make([]float64, len(rows))
	for i, r := range rows {
		minDist[i] = normSqDist(r, m.Means[0], globalVar)
	}
	for k := 1; k < m.K; k++ {
		idx := 0
		far := -1.0
		for i, d := range minDist {
			if d > far {
				idx, far = i, d
			}
		}
		if far <= 0 {
			idx = rng.Intn(len(rows)) // duplicate rows: any seed works
		}
		m.Means[k] = append([]float64(nil), rows[idx]...)
		for i, r := range rows {
			if d := normSqDist(r, m.Means[k], globalVar); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	for k := 0; k < m.K; k++ {
		m.Weights[k] = 1 / float64(m.K)
		sd := make([]float64, dim)
		for d := range sd {
			sd[d] = math.Sqrt(globalVar[d])
		}
		m.StdDevs[k] = sd
	}
}

func normSqDist(a, b, variance []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff / variance[d]
	}
	return s
}

// eStep fills responsibilities and returns the total log-likelihood.
func (m *Model) eStep(rows [][]float64, resp [][]float64) float64 {
	ll := 0.0
	logW := make([]float64, m.K)
	for k, w := range m.Weights {
		logW[k] = math.Log(math.Max(w, 1e-300))
	}
	for i, r := range rows {
		maxLog := math.Inf(-1)
		for k := 0; k < m.K; k++ {
			lp := logW[k] + m.logGauss(r, k)
			resp[i][k] = lp
			if lp > maxLog {
				maxLog = lp
			}
		}
		// Log-sum-exp normalisation.
		sum := 0.0
		for k := 0; k < m.K; k++ {
			resp[i][k] = math.Exp(resp[i][k] - maxLog)
			sum += resp[i][k]
		}
		for k := 0; k < m.K; k++ {
			resp[i][k] /= sum
		}
		ll += maxLog + math.Log(sum)
	}
	return ll
}

func (m *Model) logGauss(r []float64, k int) float64 {
	lp := 0.0
	for d, v := range r {
		sd := m.StdDevs[k][d]
		diff := (v - m.Means[k][d]) / sd
		lp += -0.5*diff*diff - math.Log(sd) - 0.5*math.Log(2*math.Pi)
	}
	return lp
}

// mStep re-estimates weights, means and standard deviations.
func (m *Model) mStep(rows [][]float64, resp [][]float64, minSD float64) {
	dim := len(m.Attrs)
	for k := 0; k < m.K; k++ {
		nk := 0.0
		mean := make([]float64, dim)
		for i, r := range rows {
			w := resp[i][k]
			nk += w
			for d, v := range r {
				mean[d] += w * v
			}
		}
		if nk < 1e-10 {
			// Dead cluster: keep its parameters, zero weight.
			m.Weights[k] = 0
			continue
		}
		for d := range mean {
			mean[d] /= nk
		}
		sd := make([]float64, dim)
		for i, r := range rows {
			w := resp[i][k]
			for d, v := range r {
				diff := v - mean[d]
				sd[d] += w * diff * diff
			}
		}
		for d := range sd {
			sd[d] = math.Sqrt(sd[d] / nk)
			if sd[d] < minSD {
				sd[d] = minSD
			}
		}
		m.Weights[k] = nk / float64(len(rows))
		m.Means[k] = mean
		m.StdDevs[k] = sd
	}
}

// ClusterMeans returns per-cluster means of one attribute, the series
// plotted in Figure 6 ("Cluster Comparison").
func (m *Model) ClusterMeans(attr string) ([]float64, error) {
	d := -1
	for i, a := range m.Attrs {
		if a == attr {
			d = i
			break
		}
	}
	if d == -1 {
		return nil, fmt.Errorf("emcluster: attribute %q not in model", attr)
	}
	out := make([]float64, m.K)
	for k := 0; k < m.K; k++ {
		out[k] = m.Means[k][d]
	}
	return out, nil
}

// Summary renders cluster sizes and means, the Figure 5-style table.
func Summary(m *Model, a *Assignment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EM clustering: k=%d, iterations=%d, avg log-likelihood=%.4f\n",
		m.K, m.Iterations, m.LogLikelihood)
	order := make([]int, m.K)
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for _, k := range order {
		fmt.Fprintf(&b, "cluster %d: n=%d", k, a.Sizes[k])
		for d, attr := range m.Attrs {
			fmt.Fprintf(&b, "  %s=%.1f", attr, m.Means[k][d])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
